GO ?= go

.PHONY: check ci fmt vet build test race bench soak reconfig trace critpath replay multiproc fleetobs

## check: everything a PR must pass — formatting, vet, build, race tests.
check: fmt vet build race

## ci: the continuous-integration gate — vet, build, full race-detector
## run, plus the benchmark regression gates (budgets in
## BENCH_monitor.json / BENCH_flight.json / BENCH_redist.json /
## BENCH_obsplane.json; all run without -race so the measurements are
## honest).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run TestNopOverheadBudget -count=1 ./internal/monitor/
	$(GO) test -run TestFlightNopOverheadBudget -count=1 ./internal/flight/
	$(GO) test -run TestRedistMappingBudget -count=1 .
	$(GO) test -run TestTCPStatsNopBudget -count=1 ./internal/evpath/
	$(GO) test -run TestDirectoryLookupBudget -count=1 ./internal/directory/
	$(GO) test -run TestObsplaneMergeBudget -count=1 ./internal/obsplane/
	$(MAKE) multiproc
	$(MAKE) soak
	$(MAKE) fleetobs

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector run over the packages on the M×N data path.
race:
	$(GO) test -race -count=1 ./internal/core/ ./internal/ndarray/ ./internal/shm/ \
		./internal/monitor/ ./internal/coupled/

## bench: redistribution benchmarks with allocation counts, archived as
## newline-delimited JSON in BENCH_redist.json.
bench:
	$(GO) test -run XXX -bench 'PackUnpack|Redistribution|RedistPlanSteadyState' \
		-benchmem -benchtime=1s . | tee /tmp/bench_redist.txt
	awk 'BEGIN { print "[" ; first=1 } \
	     /^Benchmark/ { \
	       gsub(/"/, "\\\"", $$1); \
	       line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", $$1, $$2); \
	       for (i = 3; i + 1 <= NF; i += 2) { \
	         v = $$i; u = $$(i+1); gsub(/\//, "_per_", u); gsub(/[^A-Za-z0-9_]/, "_", u); \
	         line = line sprintf(", \"%s\": %s", u, v); \
	       } \
	       line = line "}"; \
	       if (!first) printf(",\n"); printf("%s", line); first=0 \
	     } \
	     END { print "\n]" }' /tmp/bench_redist.txt > BENCH_redist.json
	@echo "wrote BENCH_redist.json"

## reconfig: mid-run reconfiguration experiment over real core streams;
## archives drain/wall costs per N -> N' delta in BENCH_reconfig.json.
reconfig:
	$(GO) run ./cmd/flexbench -exp reconfig

## trace: observability walkthrough — runs an instrumented stream through
## a mid-run reconfiguration plus the observation-steered coupled model,
## writing trace.json (load in ui.perfetto.dev or about:tracing) and
## metrics.json, with live /metrics served during the run.
trace:
	$(GO) run ./cmd/flexbench -exp trace -metrics 127.0.0.1:0

## critpath: flight-recorder walkthrough — journals the switched coupled
## run, extracts each step's critical path (edges must sum to the step's
## span envelope within 5%), writes journal.json + critpath.json, and
## refreshes the recorder micro-benchmarks in BENCH_flight.json while
## preserving the committed nop budget.
critpath:
	$(GO) run ./cmd/flexbench -exp critpath

## multiproc: the real-deployment drill — re-execs flexbench into one
## directory server plus four flexnode daemons (writer leader + worker,
## reader leader + worker) coupled purely over TCP/TLS sockets, injects
## a mid-stream disconnect, reconfigures the readers mid-run, ships a DC
## plug-in across processes, and requires the output to be byte-identical
## to a single-process shared-memory run. The driver carries its own 90s
## deadline; the outer timeout is a belt-and-braces guard for `make ci`
## (falls back to running bare where coreutils' timeout is absent).
multiproc:
	timeout 150 $(GO) run ./cmd/flexbench -exp multiproc \
		|| { [ $$? -eq 127 ] && $(GO) run ./cmd/flexbench -exp multiproc; }

## soak: the multi-tenant stream-fabric drill under the race detector —
## 32 tenants x 16 epochs share one staging pool, one transport fabric
## and one sharded directory; a quota-limited hot tenant must
## backpressure against its own credit window without inflating any
## steady tenant's P99 step latency, and two tenants are grown/shrunk
## mid-run from observed signals. The outer timeout is a guard for
## `make ci` (falls back to running bare where coreutils' timeout is
## absent).
soak:
	timeout 150 $(GO) run -race ./cmd/flexbench -exp tenants \
		|| { [ $$? -eq 127 ] && $(GO) run -race ./cmd/flexbench -exp tenants; }

## fleetobs: the fleet observability drill under the race detector — a
## directory server plus four flexnode daemons stream two tenants over
## TCP while a collector discovers them through leased obs! entries,
## scrapes their monitor endpoints, stitches cross-process step traces
## (stitched counts must equal the writers' flight journals exactly,
## zero span gaps), extracts a critical path that crosses the process
## boundary over send.tcp, and latches an SLO breach on the slow tenant
## that drives a fabric resize. The outer timeout is a guard for
## `make ci` (falls back to running bare where coreutils' timeout is
## absent).
fleetobs:
	timeout 150 $(GO) run -race ./cmd/flexbench -exp fleetobs \
		|| { [ $$? -eq 127 ] && $(GO) run -race ./cmd/flexbench -exp fleetobs; }

## replay: determinism check — re-runs the journaled scenario from the
## same configuration and diffs the event streams; exits non-zero on any
## divergence. `make replay PERTURB=-perturb` injects one and must fail.
replay:
	$(GO) run ./cmd/flexbench -exp replay $(PERTURB)

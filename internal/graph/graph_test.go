package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int, w float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, w)
	}
	return g
}

func TestAddEdgeSymmetricAccumulates(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	if g.Weight(0, 1) != 5 || g.Weight(1, 0) != 5 {
		t.Fatalf("weight = %g/%g, want 5", g.Weight(0, 1), g.Weight(1, 0))
	}
	g.AddEdge(2, 2, 9) // self loop ignored
	if g.Weight(2, 2) != 0 {
		t.Fatal("self loop must be ignored")
	}
	g.AddEdge(0, 1, -4) // non-positive ignored
	if g.Weight(0, 1) != 5 {
		t.Fatal("negative weight must be ignored")
	}
	g.AddEdge(-1, 5, 1) // out of range ignored
}

func TestDegreeAndTotal(t *testing.T) {
	g := ring(4, 1)
	if g.Degree(0) != 2 {
		t.Fatalf("degree = %g", g.Degree(0))
	}
	if g.TotalWeight() != 4 {
		t.Fatalf("total = %g", g.TotalWeight())
	}
}

func TestCutCost(t *testing.T) {
	g := ring(4, 1)
	// Split {0,1} | {2,3}: cut edges 1-2 and 3-0.
	if got := g.CutCost([]int{0, 0, 1, 1}); got != 2 {
		t.Fatalf("cut = %g, want 2", got)
	}
	if got := g.CutCost([]int{0, 0, 0, 0}); got != 0 {
		t.Fatalf("single part cut = %g", got)
	}
}

func TestBisectRing(t *testing.T) {
	// An 8-ring's optimal bisection cuts exactly 2 edges; greedy+refine
	// must find a contiguous split.
	g := ring(8, 1)
	verts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	part, err := Bisect(g, verts)
	if err != nil {
		t.Fatal(err)
	}
	sizes := [2]int{}
	for _, p := range part {
		sizes[p]++
	}
	if sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	if cut := g.CutCost(partFull(part, verts, 8)); cut > 2 {
		t.Fatalf("ring bisection cut = %g, want 2", cut)
	}
}

// partFull expands a subset partition into a full assignment for CutCost.
func partFull(part []int, verts []int, n int) []int {
	full := make([]int, n)
	for i := range full {
		full[i] = -1
	}
	for i, v := range verts {
		full[v] = part[i]
	}
	return full
}

func TestPartitionCapacities(t *testing.T) {
	g := New(6)
	verts := []int{0, 1, 2, 3, 4, 5}
	part, err := PartitionBalanced(g, verts, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for _, p := range part {
		load[p]++
	}
	for p, l := range load {
		if l > 2 {
			t.Fatalf("part %d overloaded: %d", p, l)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := New(4)
	if _, err := PartitionBalanced(g, []int{0, 1}, nil); err == nil {
		t.Error("zero parts must error")
	}
	if _, err := PartitionBalanced(g, []int{0, 1, 2}, []int{1, 1}); err == nil {
		t.Error("insufficient capacity must error")
	}
	if _, err := PartitionBalanced(g, []int{0}, []int{-1, 2}); err == nil {
		t.Error("negative capacity must error")
	}
}

func TestPartitionKeepsCliquesTogether(t *testing.T) {
	// Two 3-cliques with a weak bridge: the partitioner must not split a
	// clique.
	g := New(6)
	for _, c := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		g.AddEdge(c[0], c[1], 10)
		g.AddEdge(c[1], c[2], 10)
		g.AddEdge(c[0], c[2], 10)
	}
	g.AddEdge(2, 3, 1) // bridge
	part, err := PartitionBalanced(g, []int{0, 1, 2, 3, 4, 5}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != part[1] || part[1] != part[2] {
		t.Fatalf("clique A split: %v", part)
	}
	if part[3] != part[4] || part[4] != part[5] {
		t.Fatalf("clique B split: %v", part)
	}
	if part[0] == part[3] {
		t.Fatalf("cliques merged: %v", part)
	}
}

func TestPartitionCoupledPairs(t *testing.T) {
	// The data-aware pattern: sim rank i talks to analytics rank i with
	// heavy weight; partitioning into pairs must co-locate them.
	const pairs = 8
	g := New(2 * pairs)
	for i := 0; i < pairs; i++ {
		g.AddEdge(i, pairs+i, 100)
	}
	verts := make([]int, 2*pairs)
	caps := make([]int, pairs)
	for i := range verts {
		verts[i] = i
	}
	for i := range caps {
		caps[i] = 2
	}
	part, err := PartitionBalanced(g, verts, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pairs; i++ {
		if part[i] != part[pairs+i] {
			t.Fatalf("pair %d split: sim in %d, ana in %d", i, part[i], part[pairs+i])
		}
	}
}

func TestPartitionRespectsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(20)
		g := New(n)
		for e := 0; e < n*2; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n), float64(1+r.Intn(10)))
		}
		k := 1 + r.Intn(4)
		caps := make([]int, k)
		total := 0
		for i := range caps {
			caps[i] = 1 + r.Intn(n)
			total += caps[i]
		}
		if total < n {
			caps[0] += n - total
		}
		verts := make([]int, n)
		for i := range verts {
			verts[i] = i
		}
		part, err := PartitionBalanced(g, verts, caps)
		if err != nil {
			return false
		}
		load := make([]int, k)
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
			load[p]++
		}
		for i := range load {
			if load[i] > caps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinementImprovesBadSeed(t *testing.T) {
	// Build a graph where greedy could seed poorly: verify final cut is
	// no worse than a naive contiguous split.
	r := rand.New(rand.NewSource(7))
	const n = 24
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i/12 == j/12 {
				g.AddEdge(i, j, 5+float64(r.Intn(5)))
			} else if r.Intn(4) == 0 {
				g.AddEdge(i, j, 1)
			}
		}
	}
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	part, err := PartitionBalanced(g, verts, []int{12, 12})
	if err != nil {
		t.Fatal(err)
	}
	naive := make([]int, n)
	for i := range naive {
		naive[i] = 0
		if i%2 == 1 {
			naive[i] = 1
		}
	}
	if g.CutCost(part) > g.CutCost(naive) {
		t.Fatalf("partition cut %g worse than interleaved naive %g", g.CutCost(part), g.CutCost(naive))
	}
}

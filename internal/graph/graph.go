// Package graph provides weighted communication graphs and the balanced
// k-way partitioning / refinement primitives that FlexIO's placement
// algorithms are built on (Section III.B). The original system used the
// SCOTCH library for graph mapping; this package implements the same
// class of algorithm from scratch: greedy balanced growth followed by
// Kernighan-Lin-style boundary refinement, applied recursively over the
// machine's architecture tree by internal/placement.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected weighted graph over vertices 0..N-1, stored as
// adjacency maps (communication matrices are sparse for nearest-neighbor
// patterns, dense only for small coupled groups).
type Graph struct {
	N   int
	adj []map[int]float64
}

// New creates an empty graph with n vertices.
func New(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// AddEdge accumulates weight onto the undirected edge {u, v}. Self-loops
// and non-positive weights are ignored.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v || w <= 0 || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// Weight reports the edge weight between u and v (0 if absent).
func (g *Graph) Weight(u, v int) float64 {
	if u < 0 || u >= g.N {
		return 0
	}
	return g.adj[u][v]
}

// Neighbors iterates u's neighbors in deterministic order.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree returns the total edge weight incident to u.
func (g *Graph) Degree(u int) float64 {
	var d float64
	for _, w := range g.adj[u] {
		d += w
	}
	return d
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var t float64
	for u := range g.adj {
		t += g.Degree(u)
	}
	return t / 2
}

// CutCost returns the weight of edges crossing parts under the given
// assignment (part[v] = part index).
func (g *Graph) CutCost(part []int) float64 {
	var cut float64
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if v > u && part[u] != part[v] {
				cut += w
			}
		}
	}
	return cut
}

// PartitionBalanced splits the vertex subset `verts` into k parts with the
// given capacities (len(capacities) == k, sum >= len(verts)), minimizing
// the weighted cut heuristically. It returns part[i] for each verts[i].
// All vertices have unit size; see PartitionWeighted for sized vertices.
func PartitionBalanced(g *Graph, verts []int, capacities []int) ([]int, error) {
	return PartitionWeighted(g, verts, nil, capacities)
}

// PartitionWeighted is PartitionBalanced with per-vertex sizes: vertex
// verts[i] consumes sizes[i] units of a part's capacity (processes with
// multiple OpenMP threads occupy several cores). nil sizes means all 1.
//
// Algorithm: greedy seeded growth — repeatedly place the unassigned
// vertex with the strongest connection to any part that still fits it
// (falling back to the emptiest part for isolated vertices) — then
// boundary refinement by profitable single moves (a KL/FM-style pass).
func PartitionWeighted(g *Graph, verts []int, sizes []int, capacities []int) ([]int, error) {
	k := len(capacities)
	if k == 0 {
		return nil, fmt.Errorf("graph: no parts")
	}
	if sizes == nil {
		sizes = make([]int, len(verts))
		for i := range sizes {
			sizes[i] = 1
		}
	}
	if len(sizes) != len(verts) {
		return nil, fmt.Errorf("graph: %d sizes for %d vertices", len(sizes), len(verts))
	}
	total, need := 0, 0
	for i, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("graph: part %d capacity %d", i, c)
		}
		total += c
	}
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("graph: vertex %d size %d", verts[i], s)
		}
		need += s
	}
	if total < need {
		return nil, fmt.Errorf("graph: capacity %d < required %d", total, need)
	}

	inSet := make(map[int]int, len(verts)) // vertex -> index in verts
	for i, v := range verts {
		inSet[v] = i
	}
	part := make([]int, len(verts))
	for i := range part {
		part[i] = -1
	}
	load := make([]int, k)

	// conn[i][p] = weight from verts[i] into part p (maintained lazily).
	conn := make([][]float64, len(verts))
	for i := range conn {
		conn[i] = make([]float64, k)
	}

	assign := func(i, p int) {
		part[i] = p
		load[p] += sizes[i]
		for _, nb := range g.Neighbors(verts[i]) {
			if j, ok := inSet[nb]; ok && part[j] == -1 {
				conn[j][p] += g.Weight(verts[i], nb)
			}
		}
	}

	for n := 0; n < len(verts); n++ {
		bestI, bestP, bestGain := -1, -1, -1.0
		for i := range verts {
			if part[i] != -1 {
				continue
			}
			for p := 0; p < k; p++ {
				if load[p]+sizes[i] > capacities[p] {
					continue
				}
				gain := conn[i][p]
				// Prefer emptier parts on ties so isolated vertices
				// spread out instead of piling into part 0, and prefer
				// heavier vertices first via a small size bonus.
				gain -= 1e-9 * float64(load[p])
				gain += 1e-12 * float64(sizes[i])
				if gain > bestGain {
					bestGain, bestI, bestP = gain, i, p
				}
			}
		}
		if bestI == -1 {
			return nil, fmt.Errorf("graph: no feasible assignment (fragmented capacity)")
		}
		assign(bestI, bestP)
	}

	refineMoves(g, verts, sizes, part, load, capacities, k)
	refineSwaps(g, verts, sizes, part)
	refineMoves(g, verts, sizes, part, load, capacities, k)
	return part, nil
}

// refineSwaps performs Kernighan-Lin-style pairwise exchanges between
// equal-sized vertices in different parts. Unlike single moves, swaps
// make progress even when every part is exactly full — the common case
// when processes tile the machine.
func refineSwaps(g *Graph, verts []int, sizes, part []int) {
	inSet := make(map[int]int, len(verts))
	for i, v := range verts {
		inSet[v] = i
	}
	// connTo(i, p): weight from verts[i] into part p.
	connTo := func(i int) map[int]float64 {
		m := make(map[int]float64)
		for _, nb := range g.Neighbors(verts[i]) {
			if j, ok := inSet[nb]; ok {
				m[part[j]] += g.Weight(verts[i], nb)
			}
		}
		return m
	}
	const maxPasses = 3
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		// Restrict to boundary vertices (those with any external edge).
		var boundary []int
		for i, v := range verts {
			for _, nb := range g.Neighbors(v) {
				if j, ok := inSet[nb]; ok && part[j] != part[i] {
					boundary = append(boundary, i)
					break
				}
			}
		}
		for ai := 0; ai < len(boundary); ai++ {
			a := boundary[ai]
			ca := connTo(a)
			for bi := ai + 1; bi < len(boundary); bi++ {
				b := boundary[bi]
				if part[a] == part[b] || sizes[a] != sizes[b] {
					continue
				}
				cb := connTo(b)
				pa, pb := part[a], part[b]
				// Gain of swapping a<->b: external becomes internal and
				// vice versa; subtract twice the direct edge (it stays
				// cut either way but is counted in both conn terms).
				direct := g.Weight(verts[a], verts[b])
				gain := (ca[pb] - ca[pa]) + (cb[pa] - cb[pb]) - 2*direct
				if gain > 1e-12 {
					part[a], part[b] = pb, pa
					improved = true
					ca = connTo(a)
				}
			}
		}
		if !improved {
			return
		}
	}
}

// refineMoves performs greedy single-vertex moves while they reduce the
// cut and respect capacities (a bounded FM-style pass).
func refineMoves(g *Graph, verts []int, sizes, part, load, capacities []int, k int) {
	inSet := make(map[int]int, len(verts))
	for i, v := range verts {
		inSet[v] = i
	}
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i, v := range verts {
			cur := part[i]
			// Connection of v to each part.
			connTo := make([]float64, k)
			for _, nb := range g.Neighbors(v) {
				if j, ok := inSet[nb]; ok {
					connTo[part[j]] += g.Weight(v, nb)
				}
			}
			bestP, bestGain := cur, 0.0
			for p := 0; p < k; p++ {
				if p == cur || load[p]+sizes[i] > capacities[p] {
					continue
				}
				gain := connTo[p] - connTo[cur]
				if gain > bestGain+1e-12 {
					bestGain, bestP = gain, p
				}
			}
			if bestP != cur {
				load[cur] -= sizes[i]
				load[bestP] += sizes[i]
				part[i] = bestP
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// Bisect splits verts into two parts of sizes (ceil(n/2), floor(n/2)).
func Bisect(g *Graph, verts []int) ([]int, error) {
	n := len(verts)
	return PartitionBalanced(g, verts, []int{(n + 1) / 2, n / 2})
}

package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockDecompose2D(t *testing.T) {
	dec, err := BlockDecompose([]int64{9, 6}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumRanks() != 9 {
		t.Fatalf("NumRanks = %d, want 9", dec.NumRanks())
	}
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	if !dec.Covers() {
		t.Fatal("block decomposition must tile the global box")
	}
	// Rank 0 gets the leading block: rows [0,3), cols [0,2).
	want := NewBox([]int64{0, 0}, []int64{3, 2})
	if !dec.Boxes[0].Equal(want) {
		t.Fatalf("rank 0 box = %v, want %v", dec.Boxes[0], want)
	}
	// Row-major rank order: rank 1 is next column block.
	want = NewBox([]int64{0, 2}, []int64{3, 4})
	if !dec.Boxes[1].Equal(want) {
		t.Fatalf("rank 1 box = %v, want %v", dec.Boxes[1], want)
	}
}

func TestBlockDecomposeRemainder(t *testing.T) {
	// 10 elements over 3 blocks: 4, 3, 3.
	dec, err := BlockDecompose([]int64{10}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int64{4, 3, 3}
	for r, w := range wantSizes {
		if got := dec.Boxes[r].NumElements(); got != w {
			t.Errorf("rank %d size = %d, want %d", r, got, w)
		}
	}
	if !dec.Covers() {
		t.Fatal("must cover")
	}
}

func TestBlockDecomposeErrors(t *testing.T) {
	if _, err := BlockDecompose([]int64{4, 4}, []int{2}); err == nil {
		t.Error("rank mismatch must error")
	}
	if _, err := BlockDecompose([]int64{4}, []int{0}); err == nil {
		t.Error("zero grid dim must error")
	}
}

func TestBlockDecomposeCoversProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(3)
		shape := make([]int64, nd)
		grid := make([]int, nd)
		for d := 0; d < nd; d++ {
			grid[d] = 1 + r.Intn(4)
			shape[d] = int64(grid[d]) + int64(r.Intn(20))
		}
		dec, err := BlockDecompose(shape, grid)
		if err != nil {
			return false
		}
		return dec.Covers()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorGrid(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{12, 2, []int{4, 3}},
		{8, 3, []int{2, 2, 2}},
		{1, 2, []int{1, 1}},
		{7, 2, []int{7, 1}},
		{64, 3, []int{4, 4, 4}},
	}
	for _, c := range cases {
		got := FactorGrid(c.n, c.nd)
		prod := 1
		for _, g := range got {
			prod *= g
		}
		if prod != c.n {
			t.Errorf("FactorGrid(%d,%d) = %v: product %d != %d", c.n, c.nd, got, prod, c.n)
		}
		for i, w := range c.want {
			if got[i] != w {
				t.Errorf("FactorGrid(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
				break
			}
		}
	}
}

func TestFactorGridProductProperty(t *testing.T) {
	f := func(n uint8, nd uint8) bool {
		ranks := int(n%200) + 1
		dims := int(nd%4) + 1
		g := FactorGrid(ranks, dims)
		prod := 1
		for _, x := range g {
			prod *= x
		}
		return prod == ranks && len(g) == dims
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapsMxN(t *testing.T) {
	// A 2-D array split among 9 writers, read by 2 readers split along
	// rows, mirroring Figure 3 of the paper.
	writers, err := BlockDecompose([]int64{6, 6}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	readers, err := BlockDecompose([]int64{6, 6}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Writer 0 owns rows [0,2) — entirely inside reader 0's rows [0,3).
	ov := Overlaps(writers.Boxes[0], readers)
	if len(ov) != 1 {
		t.Fatalf("writer 0 overlaps %d readers, want 1", len(ov))
	}
	if !ov[0].Equal(writers.Boxes[0]) {
		t.Fatalf("overlap = %v, want writer box %v", ov[0], writers.Boxes[0])
	}
	// Middle-row writer (rank 3, rows [2,4)) straddles both readers.
	ov = Overlaps(writers.Boxes[3], readers)
	if len(ov) != 2 {
		t.Fatalf("writer 3 overlaps %d readers, want 2", len(ov))
	}
	// Total elements transferred must equal total elements written.
	var moved int64
	for w := range writers.Boxes {
		for _, b := range Overlaps(writers.Boxes[w], readers) {
			moved += b.NumElements()
		}
	}
	if moved != 36 {
		t.Fatalf("moved %d elements, want 36", moved)
	}
}

func TestOverlapsConservationProperty(t *testing.T) {
	// For random tiling decompositions on both sides, the sum of overlap
	// elements equals the global element count (no data lost, none
	// duplicated).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(3)
		shape := make([]int64, nd)
		wg := make([]int, nd)
		rg := make([]int, nd)
		for d := 0; d < nd; d++ {
			wg[d] = 1 + r.Intn(3)
			rg[d] = 1 + r.Intn(3)
			m := wg[d]
			if rg[d] > m {
				m = rg[d]
			}
			shape[d] = int64(m + r.Intn(10))
		}
		writers, err := BlockDecompose(shape, wg)
		if err != nil {
			return false
		}
		readers, err := BlockDecompose(shape, rg)
		if err != nil {
			return false
		}
		var moved int64
		for w := range writers.Boxes {
			for _, b := range Overlaps(writers.Boxes[w], readers) {
				moved += b.NumElements()
			}
		}
		return moved == writers.Global.NumElements()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsOverlap(t *testing.T) {
	dec := &Decomposition{
		Global: BoxFromShape([]int64{10}),
		Boxes: []Box{
			NewBox([]int64{0}, []int64{6}),
			NewBox([]int64{5}, []int64{10}),
		},
	}
	if err := dec.Validate(); err == nil {
		t.Fatal("overlapping boxes must fail validation")
	}
}

func TestValidateDetectsOutOfBounds(t *testing.T) {
	dec := &Decomposition{
		Global: BoxFromShape([]int64{10}),
		Boxes:  []Box{NewBox([]int64{5}, []int64{12})},
	}
	if err := dec.Validate(); err == nil {
		t.Fatal("out-of-bounds box must fail validation")
	}
}

// Package ndarray provides N-dimensional index boxes, block decompositions
// and strided copy routines. These are the geometric core of FlexIO's MxN
// global-array redistribution: each writer and reader rank owns a Box of the
// global array, and data movement is driven by box intersections.
package ndarray

import (
	"fmt"
	"strings"
)

// MaxDims is the maximum number of array dimensions supported. The paper's
// workloads use 2-D (GTS particle arrays) and 3-D (S3D species arrays);
// eight matches ADIOS's practical limit.
const MaxDims = 8

// Box is a half-open N-dimensional index range [Lo[d], Hi[d]) for each
// dimension d. A Box with Hi[d] <= Lo[d] in any dimension is empty.
type Box struct {
	Lo []int64
	Hi []int64
}

// NewBox returns a box spanning [lo, hi). It panics if the slices have
// different lengths or exceed MaxDims, since that is a programming error in
// the caller, not a runtime condition.
func NewBox(lo, hi []int64) Box {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("ndarray: NewBox dimension mismatch %d vs %d", len(lo), len(hi)))
	}
	if len(lo) > MaxDims {
		panic(fmt.Sprintf("ndarray: NewBox %d dims exceeds MaxDims=%d", len(lo), MaxDims))
	}
	b := Box{Lo: make([]int64, len(lo)), Hi: make([]int64, len(hi))}
	copy(b.Lo, lo)
	copy(b.Hi, hi)
	return b
}

// BoxFromShape returns the box [0, shape[d]) covering an entire array.
func BoxFromShape(shape []int64) Box {
	lo := make([]int64, len(shape))
	return NewBox(lo, shape)
}

// NDims reports the number of dimensions.
func (b Box) NDims() int { return len(b.Lo) }

// Shape returns the extent of the box in each dimension. Negative extents
// (from an empty box) are clamped to zero.
func (b Box) Shape() []int64 {
	s := make([]int64, len(b.Lo))
	for d := range b.Lo {
		if b.Hi[d] > b.Lo[d] {
			s[d] = b.Hi[d] - b.Lo[d]
		}
	}
	return s
}

// NumElements returns the number of index points inside the box.
func (b Box) NumElements() int64 {
	if len(b.Lo) == 0 {
		return 0
	}
	n := int64(1)
	for d := range b.Lo {
		ext := b.Hi[d] - b.Lo[d]
		if ext <= 0 {
			return 0
		}
		n *= ext
	}
	return n
}

// Empty reports whether the box contains no index points.
func (b Box) Empty() bool { return b.NumElements() == 0 }

// Equal reports whether two boxes cover exactly the same index range.
func (b Box) Equal(o Box) bool {
	if len(b.Lo) != len(o.Lo) {
		return false
	}
	for d := range b.Lo {
		if b.Lo[d] != o.Lo[d] || b.Hi[d] != o.Hi[d] {
			return false
		}
	}
	return true
}

// Contains reports whether the index point pt lies inside the box.
func (b Box) Contains(pt []int64) bool {
	if len(pt) != len(b.Lo) {
		return false
	}
	for d := range pt {
		if pt[d] < b.Lo[d] || pt[d] >= b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in any box of the same rank.
func (b Box) ContainsBox(o Box) bool {
	if len(o.Lo) != len(b.Lo) {
		return false
	}
	if o.Empty() {
		return true
	}
	for d := range b.Lo {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of two boxes and whether it is non-empty.
func (b Box) Intersect(o Box) (Box, bool) {
	if len(b.Lo) != len(o.Lo) {
		return Box{}, false
	}
	r := Box{Lo: make([]int64, len(b.Lo)), Hi: make([]int64, len(b.Lo))}
	for d := range b.Lo {
		r.Lo[d] = max64(b.Lo[d], o.Lo[d])
		r.Hi[d] = min64(b.Hi[d], o.Hi[d])
		if r.Hi[d] <= r.Lo[d] {
			return Box{}, false
		}
	}
	return r, true
}

// Offset returns the row-major linear offset of global point pt within the
// box, i.e. treating the box's own shape as the array layout.
func (b Box) Offset(pt []int64) int64 {
	off := int64(0)
	for d := range b.Lo {
		off = off*(b.Hi[d]-b.Lo[d]) + (pt[d] - b.Lo[d])
	}
	return off
}

// Strides returns row-major element strides for the box's shape: the last
// dimension is contiguous.
func (b Box) Strides() []int64 {
	n := len(b.Lo)
	st := make([]int64, n)
	if n == 0 {
		return st
	}
	st[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		st[d] = st[d+1] * (b.Hi[d+1] - b.Lo[d+1])
	}
	return st
}

func (b Box) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for d := range b.Lo {
		if d > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d:%d", b.Lo[d], b.Hi[d])
	}
	sb.WriteByte(']')
	return sb.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

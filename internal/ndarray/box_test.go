package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBoxBasics(t *testing.T) {
	b := NewBox([]int64{1, 2}, []int64{4, 6})
	if got := b.NDims(); got != 2 {
		t.Fatalf("NDims = %d, want 2", got)
	}
	if got := b.NumElements(); got != 12 {
		t.Fatalf("NumElements = %d, want 12", got)
	}
	if b.Empty() {
		t.Fatal("box should not be empty")
	}
	s := b.Shape()
	if s[0] != 3 || s[1] != 4 {
		t.Fatalf("Shape = %v, want [3 4]", s)
	}
}

func TestNewBoxCopiesInput(t *testing.T) {
	lo := []int64{0}
	hi := []int64{5}
	b := NewBox(lo, hi)
	lo[0] = 99
	hi[0] = 99
	if b.Lo[0] != 0 || b.Hi[0] != 5 {
		t.Fatalf("NewBox must copy its inputs, got %v", b)
	}
}

func TestNewBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched dims")
		}
	}()
	NewBox([]int64{0}, []int64{1, 2})
}

func TestBoxFromShape(t *testing.T) {
	b := BoxFromShape([]int64{3, 4, 5})
	if got := b.NumElements(); got != 60 {
		t.Fatalf("NumElements = %d, want 60", got)
	}
	for d := 0; d < 3; d++ {
		if b.Lo[d] != 0 {
			t.Fatalf("Lo[%d] = %d, want 0", d, b.Lo[d])
		}
	}
}

func TestEmptyBox(t *testing.T) {
	cases := []Box{
		NewBox([]int64{5}, []int64{5}),
		NewBox([]int64{5}, []int64{3}),
		NewBox([]int64{0, 0}, []int64{10, 0}),
		{},
	}
	for i, b := range cases {
		if !b.Empty() {
			t.Errorf("case %d: %v should be empty", i, b)
		}
		if b.NumElements() != 0 {
			t.Errorf("case %d: NumElements = %d, want 0", i, b.NumElements())
		}
	}
}

func TestEmptyBoxShapeClamped(t *testing.T) {
	b := NewBox([]int64{5, 0}, []int64{3, 4})
	s := b.Shape()
	if s[0] != 0 || s[1] != 4 {
		t.Fatalf("Shape = %v, want [0 4]", s)
	}
}

func TestContains(t *testing.T) {
	b := NewBox([]int64{1, 1}, []int64{4, 4})
	if !b.Contains([]int64{1, 1}) {
		t.Error("should contain lower corner")
	}
	if b.Contains([]int64{4, 4}) {
		t.Error("upper bound is exclusive")
	}
	if b.Contains([]int64{3}) {
		t.Error("wrong rank point must not be contained")
	}
	if !b.Contains([]int64{3, 3}) {
		t.Error("should contain interior point")
	}
}

func TestContainsBox(t *testing.T) {
	b := NewBox([]int64{0, 0}, []int64{10, 10})
	if !b.ContainsBox(NewBox([]int64{2, 3}, []int64{5, 7})) {
		t.Error("inner box should be contained")
	}
	if b.ContainsBox(NewBox([]int64{2, 3}, []int64{5, 11})) {
		t.Error("overhanging box must not be contained")
	}
	if !b.ContainsBox(NewBox([]int64{50, 50}, []int64{50, 50})) {
		t.Error("empty box of same rank is contained")
	}
	if b.ContainsBox(NewBox([]int64{0}, []int64{1})) {
		t.Error("wrong-rank box must not be contained")
	}
}

func TestIntersect(t *testing.T) {
	a := NewBox([]int64{0, 0}, []int64{5, 5})
	b := NewBox([]int64{3, 3}, []int64{8, 8})
	ov, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := NewBox([]int64{3, 3}, []int64{5, 5})
	if !ov.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", ov, want)
	}
	// Disjoint
	c := NewBox([]int64{5, 0}, []int64{9, 5})
	if _, ok := a.Intersect(c); ok {
		t.Fatal("half-open boxes touching at 5 must not intersect")
	}
	// Mismatched rank
	if _, ok := a.Intersect(NewBox([]int64{0}, []int64{1})); ok {
		t.Fatal("mismatched rank must not intersect")
	}
}

func TestOffsetAndStrides(t *testing.T) {
	b := NewBox([]int64{2, 3}, []int64{5, 7}) // shape 3x4
	st := b.Strides()
	if st[0] != 4 || st[1] != 1 {
		t.Fatalf("Strides = %v, want [4 1]", st)
	}
	if got := b.Offset([]int64{2, 3}); got != 0 {
		t.Fatalf("Offset lower corner = %d, want 0", got)
	}
	if got := b.Offset([]int64{3, 5}); got != 6 {
		t.Fatalf("Offset = %d, want 6", got)
	}
	if got := b.Offset([]int64{4, 6}); got != 11 {
		t.Fatalf("Offset last = %d, want 11", got)
	}
}

func TestBoxString(t *testing.T) {
	b := NewBox([]int64{1, 2}, []int64{3, 4})
	if got := b.String(); got != "[1:3,2:4]" {
		t.Fatalf("String = %q", got)
	}
}

// randomBox builds a small random box for property tests.
func randomBox(r *rand.Rand, nd int) Box {
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	for d := 0; d < nd; d++ {
		lo[d] = int64(r.Intn(20))
		hi[d] = lo[d] + int64(r.Intn(20))
	}
	return Box{Lo: lo, Hi: hi}
}

func TestIntersectCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(4)
		a := randomBox(r, nd)
		b := randomBox(r, nd)
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA {
			return false
		}
		if okAB && !ab.Equal(ba) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectContainedProperty(t *testing.T) {
	// The intersection must be contained in both operands, and every
	// corner point of the intersection must be in both boxes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(4)
		a := randomBox(r, nd)
		b := randomBox(r, nd)
		ov, ok := a.Intersect(b)
		if !ok {
			return true
		}
		if !a.ContainsBox(ov) || !b.ContainsBox(ov) {
			return false
		}
		return a.Contains(ov.Lo) && b.Contains(ov.Lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(4)
		a := randomBox(r, nd)
		ov, ok := a.Intersect(a)
		if a.Empty() {
			return !ok
		}
		return ok && ov.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

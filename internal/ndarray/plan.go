package ndarray

import "fmt"

// copyShape is the precomputed geometry of one region transfer between
// two row-major layouts: the region is decomposed into `runs` contiguous
// byte runs of `runBytes` each, and the per-run source/destination
// offsets are produced by an odometer over the outer (non-coalesced)
// dimensions using incremental jumps — no per-row offset dot-product and
// no heap allocation at execution time.
//
// Coalescing: starting from the innermost dimension, dimension k-1 is
// merged into the run whenever dimensions k..nd-1 of the region span the
// full extent of *both* layouts (then stepping dim k-1 advances both
// offsets exactly by the run length, so adjacent rows are contiguous).
// A fully-overlapping transfer therefore collapses to a single memmove.
type copyShape struct {
	runs     int64
	runBytes int64
	nOuter   int            // odometer dims (dims 0..nOuter-1 of region)
	counts   [MaxDims]int64 // outer-dim extents
	srcJump  [MaxDims]int64 // byte delta when that dim increments (inner dims wrapped)
	dstJump  [MaxDims]int64
	srcBase  int64 // byte offset of the first run
	dstBase  int64
}

// stridesInto writes row-major element strides for box b into st without
// allocating. Returns false if the box has more than MaxDims dims.
func stridesInto(b Box, st *[MaxDims]int64) bool {
	n := len(b.Lo)
	if n > MaxDims {
		return false
	}
	if n == 0 {
		return true
	}
	st[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		st[d] = st[d+1] * (b.Hi[d+1] - b.Lo[d+1])
	}
	return true
}

// computeShape builds the transfer geometry for copying region between a
// source laid out as srcBox and a destination laid out as dstBox. The
// caller must have validated containment; computeShape only requires the
// ranks to agree and not exceed MaxDims.
func computeShape(dstBox, srcBox, region Box, elemSize int) (copyShape, error) {
	var s copyShape
	nd := region.NDims()
	if nd > MaxDims || dstBox.NDims() != nd || srcBox.NDims() != nd {
		return s, fmt.Errorf("ndarray: copy rank mismatch or beyond MaxDims: dst %d src %d region %d",
			dstBox.NDims(), srcBox.NDims(), nd)
	}
	if nd == 0 || region.Empty() {
		return s, nil // runs == 0: nothing to move
	}
	var srcStrides, dstStrides [MaxDims]int64
	stridesInto(srcBox, &srcStrides)
	stridesInto(dstBox, &dstStrides)

	// Coalesce trailing dimensions into a single contiguous run.
	runElems := region.Hi[nd-1] - region.Lo[nd-1]
	k := nd - 1
	for k > 0 &&
		region.Hi[k]-region.Lo[k] == srcBox.Hi[k]-srcBox.Lo[k] &&
		region.Hi[k]-region.Lo[k] == dstBox.Hi[k]-dstBox.Lo[k] {
		k--
		runElems *= region.Hi[k] - region.Lo[k]
	}
	s.runBytes = runElems * int64(elemSize)
	s.nOuter = k
	s.runs = 1
	for d := 0; d < k; d++ {
		s.counts[d] = region.Hi[d] - region.Lo[d]
		s.runs *= s.counts[d]
	}
	for d := 0; d < nd; d++ {
		s.srcBase += (region.Lo[d] - srcBox.Lo[d]) * srcStrides[d]
		s.dstBase += (region.Lo[d] - dstBox.Lo[d]) * dstStrides[d]
	}
	s.srcBase *= int64(elemSize)
	s.dstBase *= int64(elemSize)
	// Jump for dim d: applied when dim d increments after dims d+1..k-1
	// wrapped back to zero.
	for d := 0; d < k; d++ {
		sj, dj := srcStrides[d], dstStrides[d]
		for e := d + 1; e < k; e++ {
			sj -= (s.counts[e] - 1) * srcStrides[e]
			dj -= (s.counts[e] - 1) * dstStrides[e]
		}
		s.srcJump[d] = sj * int64(elemSize)
		s.dstJump[d] = dj * int64(elemSize)
	}
	return s, nil
}

// execute performs the copy. It does no bounds validation beyond what
// Go's slice indexing enforces; Plan.Execute wraps it with length checks.
func (s *copyShape) execute(dst, src []byte) {
	if s.runs == 0 {
		return
	}
	so, do, rb := s.srcBase, s.dstBase, s.runBytes
	if s.runs == 1 {
		copy(dst[do:do+rb], src[so:so+rb])
		return
	}
	var ctr [MaxDims]int64
	k := s.nOuter
	for {
		copy(dst[do:do+rb], src[so:so+rb])
		d := k - 1
		for ; d >= 0; d-- {
			ctr[d]++
			if ctr[d] < s.counts[d] {
				so += s.srcJump[d]
				do += s.dstJump[d]
				break
			}
			ctr[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// Plan is a reusable, immutable schedule for moving one region between
// two row-major layouts. Computing a Plan once per (variable, writer
// decomposition, reader selection) and executing it every timestep is
// FlexIO's steady-state fast path: Execute allocates nothing and touches
// only the bytes of the region.
type Plan struct {
	DstBox   Box // destination layout
	SrcBox   Box // source layout
	Region   Box // transferred region (contained in both boxes)
	ElemSize int

	shape      copyShape
	minSrcLen  int64
	minDstLen  int64
	regionSize int64 // bytes moved per Execute
}

// NewPlan validates and precomputes a transfer of region from a buffer
// laid out as srcBox into a buffer laid out as dstBox.
func NewPlan(dstBox, srcBox, region Box, elemSize int) (*Plan, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("ndarray: plan elemSize %d", elemSize)
	}
	if !srcBox.ContainsBox(region) || !dstBox.ContainsBox(region) {
		return nil, fmt.Errorf("ndarray: plan region %v not inside src %v and dst %v", region, srcBox, dstBox)
	}
	shape, err := computeShape(dstBox, srcBox, region, elemSize)
	if err != nil {
		return nil, err
	}
	return &Plan{
		DstBox:     dstBox,
		SrcBox:     srcBox,
		Region:     region,
		ElemSize:   elemSize,
		shape:      shape,
		minSrcLen:  srcBox.NumElements() * int64(elemSize),
		minDstLen:  dstBox.NumElements() * int64(elemSize),
		regionSize: region.NumElements() * int64(elemSize),
	}, nil
}

// NewPackPlan precomputes the writer-side "pack strides for one
// receiver" step: region is gathered from a srcBox-layout buffer into a
// dense row-major buffer of exactly the region's shape.
func NewPackPlan(srcBox, region Box, elemSize int) (*Plan, error) {
	return NewPlan(region, srcBox, region, elemSize)
}

// NewUnpackPlan precomputes the reader-side scatter: a dense region
// buffer (as produced by a pack plan) is placed into a dstBox-layout
// assembly buffer.
func NewUnpackPlan(dstBox, region Box, elemSize int) (*Plan, error) {
	return NewPlan(dstBox, region, region, elemSize)
}

// Bytes reports how many payload bytes one Execute moves.
func (p *Plan) Bytes() int64 { return p.regionSize }

// Runs reports the number of contiguous memmoves per Execute (after
// coalescing); 1 means the transfer degenerated to a single copy.
func (p *Plan) Runs() int64 { return p.shape.runs }

// Execute performs the planned copy. Buffers may be shorter than the
// full layout only if the plan moves nothing. Execute is safe for
// concurrent use with distinct or even identical buffers as long as the
// destination regions of concurrent plans do not overlap.
func (p *Plan) Execute(dst, src []byte) error {
	if p.regionSize == 0 {
		return nil
	}
	if int64(len(src)) < p.minSrcLen {
		return fmt.Errorf("ndarray: plan src %d bytes, layout %v needs %d", len(src), p.SrcBox, p.minSrcLen)
	}
	if int64(len(dst)) < p.minDstLen {
		return fmt.Errorf("ndarray: plan dst %d bytes, layout %v needs %d", len(dst), p.DstBox, p.minDstLen)
	}
	p.shape.execute(dst, src)
	return nil
}

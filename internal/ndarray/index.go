package ndarray

import (
	"sort"
	"sync"
)

// Interval index over a Decomposition's rank boxes. The seed mapper
// (Overlaps) walked every (sender, receiver) pair, which is O(M·N) box
// intersections per reconfigure; at 2048×64 that is ~131k Intersect calls
// and a fresh map per writer. The index below is built once per
// decomposition and answers "which ranks overlap this query box" in
// O(log n + candidates) by scanning a sorted interval list along a single
// pivot dimension, so the whole M×N mapping costs O(actual overlaps).
//
// Layout: for each dimension d the index stores the distinct (lo, hi)
// intervals of the rank boxes, sorted by lo, each carrying the ranks that
// own it. prefixMaxHi[i] is max(entries[0..i].hi), which lets a backward
// scan stop as soon as no earlier interval can still reach the query
// (classic sorted-endpoint sweep). Queries use the pivot dimension — the
// one with the most distinct intervals, i.e. the most discriminating cut —
// and verify candidates with a full per-dimension intersection test, so
// correctness never depends on the pivot choice.

// OverlapTarget is one (receiver rank, overlap region) pair produced by a
// mapping query. Region's Lo/Hi slices belong to the arena passed to
// AppendOverlaps and are overwritten by the next query that reuses the
// arena; callers that retain a region across queries must copy it
// (NewBox).
type OverlapTarget struct {
	Rank   int
	Region Box
}

// dimEntry is one distinct interval along a dimension and the ranks whose
// boxes project onto exactly [lo, hi) there.
type dimEntry struct {
	lo, hi int64
	ranks  []int32
}

type dimIndex struct {
	entries     []dimEntry
	prefixMaxHi []int64
}

// IntervalIndex answers box-overlap queries against a fixed set of rank
// boxes. It is immutable after construction and safe for concurrent
// queries.
type IntervalIndex struct {
	ndims int
	boxes []Box // aliases the source decomposition's boxes
	dims  []dimIndex
	pivot int
}

// NewIntervalIndex builds an index over boxes (typically
// Decomposition.Boxes). Empty boxes and boxes whose rank differs from the
// first non-empty box are unindexed and never returned. The boxes slice
// is retained (not copied); mutating it afterwards invalidates the index.
func NewIntervalIndex(boxes []Box) *IntervalIndex {
	ix := &IntervalIndex{ndims: -1, boxes: boxes}
	for _, b := range boxes {
		if !b.Empty() {
			ix.ndims = b.NDims()
			break
		}
	}
	if ix.ndims <= 0 {
		return ix
	}
	type rec struct {
		lo, hi int64
		rank   int32
	}
	recs := make([]rec, 0, len(boxes))
	ix.dims = make([]dimIndex, ix.ndims)
	for d := 0; d < ix.ndims; d++ {
		recs = recs[:0]
		for r, b := range boxes {
			if b.Empty() || b.NDims() != ix.ndims {
				continue
			}
			recs = append(recs, rec{lo: b.Lo[d], hi: b.Hi[d], rank: int32(r)})
		}
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].lo != recs[j].lo {
				return recs[i].lo < recs[j].lo
			}
			if recs[i].hi != recs[j].hi {
				return recs[i].hi < recs[j].hi
			}
			return recs[i].rank < recs[j].rank
		})
		di := &ix.dims[d]
		for i := 0; i < len(recs); {
			j := i
			for j < len(recs) && recs[j].lo == recs[i].lo && recs[j].hi == recs[i].hi {
				j++
			}
			ranks := make([]int32, j-i)
			for k := i; k < j; k++ {
				ranks[k-i] = recs[k].rank
			}
			di.entries = append(di.entries, dimEntry{lo: recs[i].lo, hi: recs[i].hi, ranks: ranks})
			i = j
		}
		di.prefixMaxHi = make([]int64, len(di.entries))
		for i, e := range di.entries {
			di.prefixMaxHi[i] = e.hi
			if i > 0 && di.prefixMaxHi[i-1] > e.hi {
				di.prefixMaxHi[i] = di.prefixMaxHi[i-1]
			}
		}
		if len(di.entries) > len(ix.dims[ix.pivot].entries) {
			ix.pivot = d
		}
	}
	return ix
}

// AppendOverlaps appends one OverlapTarget per indexed rank whose box
// overlaps q, in ascending rank order, and returns the extended slice.
// dst is reset to length zero first: passing the previous result back in
// reuses both the slice and each entry's Region storage, making
// steady-state queries allocation-free. Results are identical (as a set)
// to the reference all-pairs Overlaps.
func (ix *IntervalIndex) AppendOverlaps(dst []OverlapTarget, q Box) []OverlapTarget {
	dst = dst[:0]
	if ix.ndims <= 0 || q.NDims() != ix.ndims || q.Empty() {
		return dst
	}
	di := &ix.dims[ix.pivot]
	qlo, qhi := q.Lo[ix.pivot], q.Hi[ix.pivot]
	// Binary search for the first interval starting at or beyond q's end;
	// everything from there on cannot overlap along the pivot.
	lo, hi := 0, len(di.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if di.entries[mid].lo < qhi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Scan backward; prefixMaxHi bounds how far an earlier interval can
	// reach, so the scan stops at the first position that cannot overlap.
	for i := lo - 1; i >= 0; i-- {
		if di.prefixMaxHi[i] <= qlo {
			break
		}
		e := &di.entries[i]
		if e.hi <= qlo {
			continue
		}
		for _, r := range e.ranks {
			dst = ix.appendIfOverlaps(dst, int(r), q)
		}
	}
	// Each rank appears in exactly one pivot interval, so dst is
	// duplicate-free; insertion sort restores ascending rank order without
	// allocating (candidate lists are short and nearly sorted).
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Rank < dst[j-1].Rank; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// appendIfOverlaps extends dst with the (rank, overlap) pair if rank's box
// overlaps q in every dimension, reusing dst's entry storage.
func (ix *IntervalIndex) appendIfOverlaps(dst []OverlapTarget, rank int, q Box) []OverlapTarget {
	b := ix.boxes[rank]
	nd := ix.ndims
	n := len(dst)
	if n < cap(dst) {
		dst = dst[:n+1]
	} else {
		dst = append(dst, OverlapTarget{})
	}
	t := &dst[n]
	if cap(t.Region.Lo) < nd {
		t.Region.Lo = make([]int64, nd)
	}
	if cap(t.Region.Hi) < nd {
		t.Region.Hi = make([]int64, nd)
	}
	rlo, rhi := t.Region.Lo[:nd], t.Region.Hi[:nd]
	for d := 0; d < nd; d++ {
		l, h := max64(q.Lo[d], b.Lo[d]), min64(q.Hi[d], b.Hi[d])
		if h <= l {
			return dst[:n]
		}
		rlo[d], rhi[d] = l, h
	}
	t.Rank = rank
	t.Region.Lo, t.Region.Hi = rlo, rhi
	return dst
}

// indexMu guards the lazily-built index pointer on every Decomposition.
// Contention is negligible: the lock covers a pointer check, and distinct
// decompositions only collide on the first build after an invalidation.
var indexMu sync.Mutex

// Index returns the decomposition's interval index, building and caching
// it on first use. The cache is invalidated by InvalidateIndex (call it
// after mutating Boxes). Safe for concurrent use.
func (d *Decomposition) Index() *IntervalIndex {
	indexMu.Lock()
	defer indexMu.Unlock()
	if d.idx == nil {
		d.idx = NewIntervalIndex(d.Boxes)
	}
	return d.idx
}

// InvalidateIndex drops the cached interval index; the next Index call
// rebuilds it. Must be called after mutating d.Boxes in place.
func (d *Decomposition) InvalidateIndex() {
	indexMu.Lock()
	d.idx = nil
	indexMu.Unlock()
}

// FirstOverlap returns the indices (i, j), i < j, of one overlapping pair
// among boxes, or (-1, -1) when all pairs are disjoint. It sorts box
// indices by Lo[0] and sweeps: a later box whose Lo[0] has passed an
// earlier box's Hi[0] can never overlap it, so each box is compared only
// against its actual neighbors along dimension 0 — O(n log n + overlapping
// candidates) instead of the all-pairs O(n²). Empty boxes and boxes of
// mismatched rank never overlap anything.
func FirstOverlap(boxes []Box) (int, int) {
	order := make([]int32, 0, len(boxes))
	for i, b := range boxes {
		if !b.Empty() {
			order = append(order, int32(i))
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return boxes[order[a]].Lo[0] < boxes[order[b]].Lo[0]
	})
	for a := 0; a < len(order); a++ {
		ba := boxes[order[a]]
		for b := a + 1; b < len(order); b++ {
			bb := boxes[order[b]]
			if bb.Lo[0] >= ba.Hi[0] {
				break
			}
			if boxesOverlap(ba, bb) {
				i, j := int(order[a]), int(order[b])
				if i > j {
					i, j = j, i
				}
				return i, j
			}
		}
	}
	return -1, -1
}

// boxesOverlap reports whether two non-empty boxes share any index point,
// without allocating the intersection.
func boxesOverlap(a, b Box) bool {
	if len(a.Lo) != len(b.Lo) {
		return false
	}
	for d := range a.Lo {
		if min64(a.Hi[d], b.Hi[d]) <= max64(a.Lo[d], b.Lo[d]) {
			return false
		}
	}
	return true
}

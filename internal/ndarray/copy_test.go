package ndarray

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// fillBox writes, for every global point in box, a unique value derived
// from the point's global coordinates into the buffer laid out as box.
func fillBox(buf []byte, box Box, elemSize int) {
	nd := box.NDims()
	pt := make([]int64, nd)
	copy(pt, box.Lo)
	strides := box.Strides()
	for {
		var off, tag int64
		for d := 0; d < nd; d++ {
			off += (pt[d] - box.Lo[d]) * strides[d]
			tag = tag*1000 + pt[d]
		}
		binary.LittleEndian.PutUint32(buf[off*int64(elemSize):], uint32(tag))
		d := nd - 1
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < box.Hi[d] {
				break
			}
			pt[d] = box.Lo[d]
		}
		if d < 0 {
			return
		}
	}
}

// checkBox verifies that every point of region in a buffer laid out as box
// carries the tag for its global coordinate.
func checkBox(t *testing.T, buf []byte, box, region Box, elemSize int) {
	t.Helper()
	nd := box.NDims()
	pt := make([]int64, nd)
	copy(pt, region.Lo)
	strides := box.Strides()
	for {
		var off, tag int64
		for d := 0; d < nd; d++ {
			off += (pt[d] - box.Lo[d]) * strides[d]
			tag = tag*1000 + pt[d]
		}
		got := binary.LittleEndian.Uint32(buf[off*int64(elemSize):])
		if got != uint32(tag) {
			t.Fatalf("point %v: got %d, want %d", pt, got, uint32(tag))
		}
		d := nd - 1
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < region.Hi[d] {
				break
			}
			pt[d] = region.Lo[d]
		}
		if d < 0 {
			return
		}
	}
}

func TestPackUnpackRoundTrip2D(t *testing.T) {
	const es = 4
	src := NewBox([]int64{0, 0}, []int64{6, 8})
	dst := NewBox([]int64{2, 2}, []int64{8, 10})
	region := NewBox([]int64{2, 2}, []int64{6, 8})

	srcBuf := make([]byte, src.NumElements()*es)
	fillBox(srcBuf, src, es)

	packed, err := Pack(nil, srcBuf, src, region, es)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(packed)) != region.NumElements()*es {
		t.Fatalf("packed %d bytes, want %d", len(packed), region.NumElements()*es)
	}

	dstBuf := make([]byte, dst.NumElements()*es)
	if err := Unpack(dstBuf, packed, dst, region, es); err != nil {
		t.Fatal(err)
	}
	checkBox(t, dstBuf, dst, region, es)
}

func TestPackErrors(t *testing.T) {
	src := NewBox([]int64{0}, []int64{4})
	if _, err := Pack(nil, make([]byte, 16), src, NewBox([]int64{2}, []int64{6}), 4); err == nil {
		t.Error("region outside src must error")
	}
	if _, err := Pack(nil, make([]byte, 4), src, src, 4); err == nil {
		t.Error("short src buffer must error")
	}
}

func TestUnpackErrors(t *testing.T) {
	dst := NewBox([]int64{0}, []int64{4})
	if err := Unpack(make([]byte, 16), make([]byte, 16), dst, NewBox([]int64{2}, []int64{6}), 4); err == nil {
		t.Error("region outside dst must error")
	}
	if err := Unpack(make([]byte, 16), make([]byte, 4), dst, dst, 4); err == nil {
		t.Error("short packed buffer must error")
	}
	if err := Unpack(make([]byte, 4), make([]byte, 16), dst, dst, 4); err == nil {
		t.Error("short dst buffer must error")
	}
}

func TestPackReusesDst(t *testing.T) {
	src := BoxFromShape([]int64{4, 4})
	srcBuf := make([]byte, 64)
	fillBox(srcBuf, src, 4)
	scratch := make([]byte, 0, 64)
	packed, err := Pack(scratch, srcBuf, src, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &packed[0] != &scratch[:1][0] {
		t.Error("Pack should reuse a dst with sufficient capacity")
	}
}

func TestPackEmptyRegion(t *testing.T) {
	src := BoxFromShape([]int64{4})
	packed, err := Pack(nil, make([]byte, 16), src, NewBox([]int64{2}, []int64{2}), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 0 {
		t.Fatalf("packed %d bytes for empty region", len(packed))
	}
}

func TestCopyRegionDirect3D(t *testing.T) {
	const es = 4
	src := NewBox([]int64{0, 0, 0}, []int64{4, 5, 6})
	dst := NewBox([]int64{1, 2, 3}, []int64{5, 7, 9})
	region := NewBox([]int64{1, 2, 3}, []int64{4, 5, 6})

	srcBuf := make([]byte, src.NumElements()*es)
	fillBox(srcBuf, src, es)
	dstBuf := make([]byte, dst.NumElements()*es)
	if err := CopyRegion(dstBuf, srcBuf, dst, src, region, es); err != nil {
		t.Fatal(err)
	}
	checkBox(t, dstBuf, dst, region, es)
}

func TestCopyRegionErrors(t *testing.T) {
	a := BoxFromShape([]int64{4})
	b := BoxFromShape([]int64{2})
	if err := CopyRegion(make([]byte, 8), make([]byte, 16), b, a, a, 4); err == nil {
		t.Error("region outside dst must error")
	}
}

// TestRedistributionEquivalenceProperty checks that Pack→Unpack between
// random MxN decompositions reconstructs the full array: the core
// correctness invariant of FlexIO's global-array redistribution.
func TestRedistributionEquivalenceProperty(t *testing.T) {
	const es = 4
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nd := 1 + r.Intn(3)
		shape := make([]int64, nd)
		wg := make([]int, nd)
		rg := make([]int, nd)
		for d := 0; d < nd; d++ {
			wg[d] = 1 + r.Intn(3)
			rg[d] = 1 + r.Intn(3)
			m := wg[d]
			if rg[d] > m {
				m = rg[d]
			}
			shape[d] = int64(m + r.Intn(8))
		}
		writers, err := BlockDecompose(shape, wg)
		if err != nil {
			return false
		}
		readers, err := BlockDecompose(shape, rg)
		if err != nil {
			return false
		}
		// Global reference array.
		global := BoxFromShape(shape)
		ref := make([]byte, global.NumElements()*es)
		fillBox(ref, global, es)

		// Writers own packed copies of their boxes.
		wbufs := make([][]byte, writers.NumRanks())
		for w, wb := range writers.Boxes {
			buf, err := Pack(nil, ref, global, wb, es)
			if err != nil {
				return false
			}
			wbufs[w] = buf
		}
		// Redistribute to readers.
		rbufs := make([][]byte, readers.NumRanks())
		for rr, rb := range readers.Boxes {
			rbufs[rr] = make([]byte, rb.NumElements()*es)
		}
		for w, wb := range writers.Boxes {
			for rr, ov := range Overlaps(wb, readers) {
				packed, err := Pack(nil, wbufs[w], wb, ov, es)
				if err != nil {
					return false
				}
				if err := Unpack(rbufs[rr], packed, readers.Boxes[rr], ov, es); err != nil {
					return false
				}
			}
		}
		// Each reader buffer must byte-equal the reference region.
		for rr, rb := range readers.Boxes {
			want, err := Pack(nil, ref, global, rb, es)
			if err != nil {
				return false
			}
			if !bytes.Equal(rbufs[rr], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package ndarray

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkAgainstOverlaps asserts AppendOverlaps is set-identical to the
// reference all-pairs Overlaps for query q against dec.
func checkAgainstOverlaps(t *testing.T, dec *Decomposition, q Box, arena []OverlapTarget) []OverlapTarget {
	t.Helper()
	want := Overlaps(q, dec)
	arena = dec.Index().AppendOverlaps(arena, q)
	if len(arena) != len(want) {
		t.Fatalf("query %v: sweep found %d targets, reference %d (%v vs %v)",
			q, len(arena), len(want), arena, want)
	}
	prev := -1
	for _, tg := range arena {
		if tg.Rank <= prev {
			t.Fatalf("query %v: targets not in ascending rank order: %v", q, arena)
		}
		prev = tg.Rank
		ref, ok := want[tg.Rank]
		if !ok {
			t.Fatalf("query %v: sweep reported rank %d, reference did not", q, tg.Rank)
		}
		if !tg.Region.Equal(ref) {
			t.Fatalf("query %v rank %d: sweep region %v != reference %v", q, tg.Rank, tg.Region, ref)
		}
	}
	return arena
}

// randomDecomp builds a randomized decomposition: an uneven block grid,
// optionally dilated by ghost cells (making boxes overlap), with some
// boxes degenerate (single cell) or empty.
func randomDecomp(rng *rand.Rand) *Decomposition {
	nd := 1 + rng.Intn(3)
	shape := make([]int64, nd)
	grid := make([]int, nd)
	for d := range shape {
		shape[d] = int64(1 + rng.Intn(40))
		grid[d] = 1 + rng.Intn(4)
	}
	dec, err := BlockDecompose(shape, grid)
	if err != nil {
		panic(err)
	}
	ghost := int64(rng.Intn(3))
	for r := range dec.Boxes {
		b := &dec.Boxes[r]
		switch rng.Intn(10) {
		case 0: // empty box: rank holds nothing this round
			for d := range b.Lo {
				b.Hi[d] = b.Lo[d]
			}
		case 1: // degenerate 1-cell box
			for d := range b.Lo {
				b.Hi[d] = b.Lo[d] + 1
			}
		default: // dilate by ghost cells, clipped to the global box
			for d := range b.Lo {
				b.Lo[d] = max64(b.Lo[d]-ghost, dec.Global.Lo[d])
				b.Hi[d] = min64(b.Hi[d]+ghost, dec.Global.Hi[d])
			}
		}
	}
	dec.InvalidateIndex()
	return dec
}

func randomQuery(rng *rand.Rand, global Box) Box {
	nd := global.NDims()
	lo := make([]int64, nd)
	hi := make([]int64, nd)
	for d := 0; d < nd; d++ {
		ext := global.Hi[d] - global.Lo[d]
		lo[d] = global.Lo[d] + rng.Int63n(ext)
		hi[d] = lo[d] + 1 + rng.Int63n(ext-(lo[d]-global.Lo[d]))
	}
	return Box{Lo: lo, Hi: hi}
}

// TestIndexMatchesOverlapsProperty drives the sweep mapper against the
// all-pairs reference on hundreds of randomized decompositions: uneven
// grids, ghost-dilated (overlapping) boxes, degenerate 1-cell boxes and
// empty ranks, with both random sub-box queries and the rank boxes
// themselves as queries (the M×N case).
func TestIndexMatchesOverlapsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var arena []OverlapTarget
	for round := 0; round < 300; round++ {
		dec := randomDecomp(rng)
		for q := 0; q < 8; q++ {
			arena = checkAgainstOverlaps(t, dec, randomQuery(rng, dec.Global), arena)
		}
		for _, wb := range dec.Boxes {
			arena = checkAgainstOverlaps(t, dec, wb, arena)
		}
	}
}

// FuzzIndexMatchesOverlaps is the seed-corpus form of the same property,
// so `go test -fuzz` can explore decomposition shapes beyond the fixed
// random rounds.
func FuzzIndexMatchesOverlaps(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		dec := randomDecomp(rng)
		var arena []OverlapTarget
		for q := 0; q < 4; q++ {
			arena = checkAgainstOverlaps(t, dec, randomQuery(rng, dec.Global), arena)
		}
		for _, wb := range dec.Boxes {
			arena = checkAgainstOverlaps(t, dec, wb, arena)
		}
	})
}

// TestIndexArenaReuse verifies the arena contract: reusing the returned
// slice across queries yields correct results, and regions written by a
// later query overwrite storage from an earlier one (so retained regions
// must be copied).
func TestIndexArenaReuse(t *testing.T) {
	dec, err := BlockDecompose([]int64{16, 16}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	idx := dec.Index()
	q1 := Box{Lo: []int64{0, 0}, Hi: []int64{8, 8}}   // exactly rank 0
	q2 := Box{Lo: []int64{8, 8}, Hi: []int64{16, 16}} // exactly rank 3
	arena := idx.AppendOverlaps(nil, q1)
	if len(arena) != 1 || arena[0].Rank != 0 {
		t.Fatalf("q1 targets = %v, want rank 0 only", arena)
	}
	held := arena[0].Region // not copied: the arena owns this storage
	arena = idx.AppendOverlaps(arena, q2)
	if len(arena) != 1 || arena[0].Rank != 3 {
		t.Fatalf("q2 targets = %v, want rank 3 only", arena)
	}
	if held.Lo[0] != 8 {
		t.Fatalf("arena region storage not reused: held.Lo = %v, want overwritten to 8", held.Lo)
	}
	kept := NewBox(arena[0].Region.Lo, arena[0].Region.Hi)
	idx.AppendOverlaps(arena, q1)
	if kept.Lo[0] != 8 || kept.Hi[0] != 16 {
		t.Fatalf("copied region mutated by later query: %v", kept)
	}
}

// TestIndexInvalidation checks that Index() caches and InvalidateIndex
// forces a rebuild that observes mutated boxes.
func TestIndexInvalidation(t *testing.T) {
	dec, err := BlockDecompose([]int64{8}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Index() != dec.Index() {
		t.Fatal("Index() rebuilt despite no invalidation")
	}
	q := Box{Lo: []int64{0}, Hi: []int64{8}}
	if got := dec.Index().AppendOverlaps(nil, q); len(got) != 2 {
		t.Fatalf("initial query found %d targets, want 2", len(got))
	}
	dec.Boxes[1] = Box{Lo: []int64{4}, Hi: []int64{4}} // rank 1 now empty
	dec.InvalidateIndex()
	if got := dec.Index().AppendOverlaps(nil, q); len(got) != 1 || got[0].Rank != 0 {
		t.Fatalf("post-invalidation query = %v, want rank 0 only", got)
	}
}

// TestFirstOverlapMatchesPairwise compares the sort-based sweep against
// the brute-force pairwise check on randomized box sets.
func TestFirstOverlapMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 500; round++ {
		n := rng.Intn(12)
		boxes := make([]Box, n)
		for i := range boxes {
			lo := rng.Int63n(20)
			boxes[i] = Box{
				Lo: []int64{lo, rng.Int63n(20)},
				Hi: []int64{lo + rng.Int63n(6), rng.Int63n(20)},
			}
			boxes[i].Hi[1] = boxes[i].Lo[1] + rng.Int63n(6)
		}
		anyPair := false
		for i := 0; i < n && !anyPair; i++ {
			for j := i + 1; j < n; j++ {
				if boxesOverlap(boxes[i], boxes[j]) {
					anyPair = true
					break
				}
			}
		}
		i, j := FirstOverlap(boxes)
		if anyPair != (i >= 0) {
			t.Fatalf("round %d: FirstOverlap=(%d,%d), pairwise says overlap=%v, boxes=%v",
				round, i, j, anyPair, boxes)
		}
		if i >= 0 && !boxesOverlap(boxes[i], boxes[j]) {
			t.Fatalf("round %d: FirstOverlap returned disjoint pair (%d,%d): %v", round, i, j, boxes)
		}
	}
}

// TestIndexAllocFree verifies the steady-state query path performs no
// heap allocation once the arena has warmed up.
func TestIndexAllocFree(t *testing.T) {
	dec, err := BlockDecompose([]int64{4096, 4096}, FactorGrid(64, 2))
	if err != nil {
		t.Fatal(err)
	}
	writers, err := BlockDecompose([]int64{4096, 4096}, FactorGrid(256, 2))
	if err != nil {
		t.Fatal(err)
	}
	idx := dec.Index()
	var arena []OverlapTarget
	for _, wb := range writers.Boxes { // warm the arena
		arena = idx.AppendOverlaps(arena, wb)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, wb := range writers.Boxes {
			arena = idx.AppendOverlaps(arena, wb)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state mapping allocated %v times per run, want 0", allocs)
	}
}

func ExampleIntervalIndex() {
	dec, _ := BlockDecompose([]int64{8, 8}, []int{2, 2})
	writer := Box{Lo: []int64{2, 2}, Hi: []int64{6, 6}}
	for _, t := range dec.Index().AppendOverlaps(nil, writer) {
		fmt.Printf("rank %d gets %v\n", t.Rank, t.Region)
	}
	// Output:
	// rank 0 gets [2:4,2:4]
	// rank 1 gets [2:4,4:6]
	// rank 2 gets [4:6,2:4]
	// rank 3 gets [4:6,4:6]
}

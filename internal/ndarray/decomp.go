package ndarray

import (
	"fmt"
	"sort"
)

// Decomposition describes how a global N-d array is split into per-rank
// boxes. It is the information exchanged during FlexIO's handshake protocol
// (Steps 1-3 in the paper): once every process knows the peer side's
// decomposition it can compute the MxN mapping independently.
type Decomposition struct {
	Global Box   // full index space of the array
	Boxes  []Box // Boxes[r] is the region owned by rank r; may be empty

	idx *IntervalIndex // lazily built by Index(); guarded by indexMu
}

// NumRanks reports the number of ranks in the decomposition.
func (d *Decomposition) NumRanks() int { return len(d.Boxes) }

// Validate checks that every rank box lies inside the global box and that
// no two boxes overlap. It does not require the boxes to tile the global
// space (readers may request sub-regions).
func (d *Decomposition) Validate() error {
	for r, b := range d.Boxes {
		if b.Empty() {
			continue
		}
		if !d.Global.ContainsBox(b) {
			return fmt.Errorf("ndarray: rank %d box %v outside global %v", r, b, d.Global)
		}
	}
	if r, q := FirstOverlap(d.Boxes); r >= 0 {
		ov, _ := d.Boxes[r].Intersect(d.Boxes[q])
		return fmt.Errorf("ndarray: rank %d and %d overlap on %v", r, q, ov)
	}
	return nil
}

// Covers reports whether the union of rank boxes exactly tiles the global
// box (element counts match and Validate passes).
func (d *Decomposition) Covers() bool {
	if d.Validate() != nil {
		return false
	}
	var total int64
	for _, b := range d.Boxes {
		total += b.NumElements()
	}
	return total == d.Global.NumElements()
}

// BlockDecompose splits the global shape into a grid of procGrid[d] blocks
// per dimension, in row-major rank order. Remainder elements are spread
// over the leading blocks of each dimension, matching the usual HPC block
// distribution. It returns an error when the grid rank does not match the
// shape rank or a grid dimension is not positive.
func BlockDecompose(shape []int64, procGrid []int) (*Decomposition, error) {
	if len(procGrid) != len(shape) {
		return nil, fmt.Errorf("ndarray: grid rank %d != shape rank %d", len(procGrid), len(shape))
	}
	nranks := 1
	for d, p := range procGrid {
		if p <= 0 {
			return nil, fmt.Errorf("ndarray: grid dim %d is %d, want > 0", d, p)
		}
		nranks *= p
	}
	dec := &Decomposition{Global: BoxFromShape(shape), Boxes: make([]Box, nranks)}
	coord := make([]int, len(shape))
	for r := 0; r < nranks; r++ {
		lo := make([]int64, len(shape))
		hi := make([]int64, len(shape))
		for d := range shape {
			lo[d], hi[d] = blockRange(shape[d], procGrid[d], coord[d])
		}
		dec.Boxes[r] = Box{Lo: lo, Hi: hi}
		// advance row-major coordinate (last dim fastest)
		for d := len(coord) - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < procGrid[d] {
				break
			}
			coord[d] = 0
		}
	}
	return dec, nil
}

// blockRange returns the [lo, hi) range of block i out of p blocks over n
// elements, spreading the remainder across leading blocks.
func blockRange(n int64, p, i int) (int64, int64) {
	base := n / int64(p)
	rem := n % int64(p)
	var lo int64
	if int64(i) < rem {
		lo = int64(i) * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (int64(i)-rem)*base
	return lo, lo + base
}

// FactorGrid factors nranks into a process grid of the given rank that is
// as close to cubic as possible, largest factors first. This mirrors
// MPI_Dims_create and is used by the application proxies to build their
// logical process layouts.
func FactorGrid(nranks, ndims int) []int {
	grid := make([]int, ndims)
	for i := range grid {
		grid[i] = 1
	}
	if nranks <= 0 || ndims <= 0 {
		return grid
	}
	primes := factorize(nranks)
	// Distribute factors largest-first onto the currently smallest grid dim.
	sort.Sort(sort.Reverse(sort.IntSlice(primes)))
	for _, f := range primes {
		mi := 0
		for d := 1; d < ndims; d++ {
			if grid[d] < grid[mi] {
				mi = d
			}
		}
		grid[mi] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(grid)))
	return grid
}

func factorize(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// Overlaps computes, for one rank's box on the sender side, the pieces it
// must send to each receiver rank: the intersection of senderBox with each
// receiver box. The result maps receiver rank to the overlap box, omitting
// empty overlaps. This is the per-process mapping computation of the
// FlexIO data movement protocol (Step 4).
//
// This is the reference all-pairs implementation: O(ranks) intersections
// and a fresh map per call. The production mapper is
// Index().AppendOverlaps, which is sub-linear and allocation-free in
// steady state; Overlaps is kept as the oracle the property tests compare
// it against.
func Overlaps(senderBox Box, readers *Decomposition) map[int]Box {
	out := make(map[int]Box)
	for r, rb := range readers.Boxes {
		if ov, ok := senderBox.Intersect(rb); ok {
			out[r] = ov
		}
	}
	return out
}

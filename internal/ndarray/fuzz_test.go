package ndarray

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPackUnpackEdgeCases pins down the corner geometries of the pack
// path: 1-D and 4-D regions, empty intersections, every supported element
// width, and dst-capacity reuse semantics.
func TestPackUnpackEdgeCases(t *testing.T) {
	t.Run("1D", func(t *testing.T) {
		for _, es := range []int{1, 4, 8} {
			src := BoxFromShape([]int64{64})
			region := NewBox([]int64{17}, []int64{53})
			buf := make([]byte, src.NumElements()*int64(es))
			fillPattern(buf)
			packed, err := Pack(nil, buf, src, region, es)
			if err != nil {
				t.Fatal(err)
			}
			want := buf[17*es : 53*es]
			if !bytes.Equal(packed, want) {
				t.Fatalf("1D pack elem%d mismatch", es)
			}
			dst := make([]byte, len(buf))
			if err := Unpack(dst, packed, src, region, es); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dst[17*es:53*es], want) {
				t.Fatalf("1D unpack elem%d mismatch", es)
			}
		}
	})
	t.Run("4D", func(t *testing.T) {
		src := BoxFromShape([]int64{4, 5, 6, 7})
		region := NewBox([]int64{1, 1, 2, 3}, []int64{3, 4, 5, 6})
		buf := make([]byte, src.NumElements()*4)
		fillPattern(buf)
		packed, err := Pack(nil, buf, src, region, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(packed, referencePack(buf, src, region, 4)) {
			t.Fatal("4D pack mismatch vs reference")
		}
	})
	t.Run("empty-intersection", func(t *testing.T) {
		a := BoxFromShape([]int64{8, 8})
		b := NewBox([]int64{8, 8}, []int64{16, 16})
		if _, ok := a.Intersect(b); ok {
			t.Fatal("disjoint boxes intersect")
		}
		empty := NewBox([]int64{3, 3}, []int64{3, 8})
		packed, err := Pack(nil, make([]byte, 8*8*8), a, empty, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != 0 {
			t.Fatalf("empty region packed %d bytes", len(packed))
		}
		if err := Unpack(make([]byte, 8*8*8), nil, a, empty, 8); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("dst-capacity-reuse", func(t *testing.T) {
		src := BoxFromShape([]int64{16, 16})
		region := NewBox([]int64{4, 4}, []int64{12, 12})
		buf := make([]byte, src.NumElements()*8)
		fillPattern(buf)
		big := make([]byte, 0, 16*16*8)
		packed, err := Pack(big, buf, src, region, 8)
		if err != nil {
			t.Fatal(err)
		}
		if &packed[0] != &big[:1][0] {
			t.Fatal("Pack did not reuse sufficient dst capacity")
		}
		if int64(len(packed)) != region.NumElements()*8 {
			t.Fatalf("packed len %d", len(packed))
		}
		// Too-small capacity: a fresh allocation, original untouched.
		small := make([]byte, 0, 8)
		packed2, err := Pack(small, buf, src, region, 8)
		if err != nil {
			t.Fatal(err)
		}
		if cap(packed2) == cap(small) {
			t.Fatal("Pack reused insufficient dst")
		}
		if !bytes.Equal(packed, packed2) {
			t.Fatal("reused and fresh packs differ")
		}
	})
}

// FuzzPackUnpack asserts Pack→Unpack is the identity on the overlap
// region for fuzzer-chosen geometries: after unpacking into a zeroed
// destination, re-packing the destination yields the original packed
// bytes, and bytes outside the region stay zero.
func FuzzPackUnpack(f *testing.F) {
	f.Add(int64(8), int64(8), int64(1), int64(1), int64(7), int64(7), uint8(8), uint8(2))
	f.Add(int64(4), int64(16), int64(0), int64(3), int64(4), int64(13), uint8(4), uint8(2))
	f.Add(int64(32), int64(1), int64(5), int64(0), int64(30), int64(1), uint8(1), uint8(2))
	f.Add(int64(6), int64(6), int64(2), int64(2), int64(2), int64(5), uint8(8), uint8(1))
	f.Add(int64(3), int64(4), int64(0), int64(0), int64(3), int64(4), uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, d0, d1, lo0, lo1, hi0, hi1 int64, elem uint8, ndSeed uint8) {
		nd := int(ndSeed%3) + 1 // 1-D, 2-D or 3-D
		es := int(elem)
		if es != 1 && es != 4 && es != 8 {
			t.Skip()
		}
		clamp := func(v, lim int64) int64 {
			if v < 0 {
				v = -v
			}
			return v % (lim + 1)
		}
		d0, d1 = clamp(d0, 24)+1, clamp(d1, 24)+1
		dims := []int64{d0, d1, 5}[:nd]
		src := BoxFromShape(dims)
		lo := []int64{clamp(lo0, d0), clamp(lo1, d1), 1}[:nd]
		hi := []int64{clamp(hi0, d0), clamp(hi1, d1), 4}[:nd]
		region := NewBox(lo, hi)
		if !src.ContainsBox(region) {
			t.Skip()
		}
		buf := make([]byte, src.NumElements()*int64(es))
		for i := range buf {
			buf[i] = byte(i%255 + 1) // never zero: distinguishes copied vs untouched
		}
		packed, err := Pack(nil, buf, src, region, es)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, src.NumElements()*int64(es))
		if err := Unpack(dst, packed, src, region, es); err != nil {
			t.Fatal(err)
		}
		repacked, err := Pack(nil, dst, src, region, es)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(packed, repacked) {
			t.Fatalf("pack→unpack→pack not identity for src=%v region=%v elem=%d", src, region, es)
		}
		// Everything outside the region must still be zero.
		inRegion := func(flat int64) bool {
			pt := make([]int64, nd)
			rem := flat
			for d := nd - 1; d >= 0; d-- {
				ext := src.Hi[d] - src.Lo[d]
				pt[d] = rem%ext + src.Lo[d]
				rem /= ext
			}
			return region.Contains(pt)
		}
		for i := int64(0); i < src.NumElements(); i++ {
			zero := true
			for j := int64(0); j < int64(es); j++ {
				if dst[i*int64(es)+j] != 0 {
					zero = false
					break
				}
			}
			if inRegion(i) == zero && !region.Empty() {
				t.Fatalf("element %d: inRegion=%v but zero=%v (%s)", i, inRegion(i), zero,
					fmt.Sprintf("src=%v region=%v", src, region))
			}
		}
	})
}

package ndarray

import "fmt"

// Pack copies the elements of region from a source buffer laid out as
// srcBox (row-major) into a dense destination slice sized for region.
// elemSize is the per-element byte size. The returned slice aliases dst if
// dst has sufficient capacity, otherwise a new slice is allocated. Pack is
// the "pack strides for each receiver" step of the data movement protocol.
//
// The copy itself runs on the coalesced-run kernel (see copyShape): full
// trailing rows collapse into single memmoves and per-run offsets advance
// incrementally, so Pack performs no heap allocation beyond (possibly)
// growing dst.
func Pack(dst []byte, src []byte, srcBox, region Box, elemSize int) ([]byte, error) {
	if !srcBox.ContainsBox(region) {
		return nil, fmt.Errorf("ndarray: pack region %v not inside source box %v", region, srcBox)
	}
	need := region.NumElements() * int64(elemSize)
	if int64(len(src)) < srcBox.NumElements()*int64(elemSize) {
		return nil, fmt.Errorf("ndarray: source buffer %d bytes, box %v needs %d",
			len(src), srcBox, srcBox.NumElements()*int64(elemSize))
	}
	if int64(cap(dst)) < need {
		dst = make([]byte, need)
	} else {
		dst = dst[:need]
	}
	if need == 0 {
		return dst, nil
	}
	shape, err := computeShape(region, srcBox, region, elemSize)
	if err != nil {
		return nil, err
	}
	shape.execute(dst, src)
	return dst, nil
}

// Unpack copies a dense packed buffer holding region's elements into a
// destination buffer laid out as dstBox (row-major). It is the receiver
// side of Pack ("copies received strides into the target buffer").
func Unpack(dst []byte, packed []byte, dstBox, region Box, elemSize int) error {
	if !dstBox.ContainsBox(region) {
		return fmt.Errorf("ndarray: unpack region %v not inside dest box %v", region, dstBox)
	}
	need := region.NumElements() * int64(elemSize)
	if int64(len(packed)) < need {
		return fmt.Errorf("ndarray: packed buffer %d bytes, region %v needs %d", len(packed), region, need)
	}
	if int64(len(dst)) < dstBox.NumElements()*int64(elemSize) {
		return fmt.Errorf("ndarray: dest buffer %d bytes, box %v needs %d",
			len(dst), dstBox, dstBox.NumElements()*int64(elemSize))
	}
	if need == 0 {
		return nil
	}
	shape, err := computeShape(dstBox, region, region, elemSize)
	if err != nil {
		return err
	}
	shape.execute(dst, packed)
	return nil
}

// CopyRegion copies region directly from a source buffer laid out as
// srcBox into a destination buffer laid out as dstBox, without an
// intermediate packed form. Used by the shared-memory (xpmem-style)
// zero-intermediate-copy path.
func CopyRegion(dst, src []byte, dstBox, srcBox, region Box, elemSize int) error {
	if !srcBox.ContainsBox(region) || !dstBox.ContainsBox(region) {
		return fmt.Errorf("ndarray: region %v not inside src %v and dst %v", region, srcBox, dstBox)
	}
	if region.Empty() {
		return nil
	}
	shape, err := computeShape(dstBox, srcBox, region, elemSize)
	if err != nil {
		return err
	}
	shape.execute(dst, src)
	return nil
}

package ndarray

import "fmt"

// Pack copies the elements of region from a source buffer laid out as
// srcBox (row-major) into a dense destination slice sized for region.
// elemSize is the per-element byte size. The returned slice aliases dst if
// dst has sufficient capacity, otherwise a new slice is allocated. Pack is
// the "pack strides for each receiver" step of the data movement protocol.
func Pack(dst []byte, src []byte, srcBox, region Box, elemSize int) ([]byte, error) {
	if !srcBox.ContainsBox(region) {
		return nil, fmt.Errorf("ndarray: pack region %v not inside source box %v", region, srcBox)
	}
	need := region.NumElements() * int64(elemSize)
	if int64(len(src)) < srcBox.NumElements()*int64(elemSize) {
		return nil, fmt.Errorf("ndarray: source buffer %d bytes, box %v needs %d",
			len(src), srcBox, srcBox.NumElements()*int64(elemSize))
	}
	if int64(cap(dst)) < need {
		dst = make([]byte, need)
	} else {
		dst = dst[:need]
	}
	if need == 0 {
		return dst, nil
	}
	copyRegion(dst, src, srcBox, region, region, elemSize, true)
	return dst, nil
}

// Unpack copies a dense packed buffer holding region's elements into a
// destination buffer laid out as dstBox (row-major). It is the receiver
// side of Pack ("copies received strides into the target buffer").
func Unpack(dst []byte, packed []byte, dstBox, region Box, elemSize int) error {
	if !dstBox.ContainsBox(region) {
		return fmt.Errorf("ndarray: unpack region %v not inside dest box %v", region, dstBox)
	}
	need := region.NumElements() * int64(elemSize)
	if int64(len(packed)) < need {
		return fmt.Errorf("ndarray: packed buffer %d bytes, region %v needs %d", len(packed), region, need)
	}
	if int64(len(dst)) < dstBox.NumElements()*int64(elemSize) {
		return fmt.Errorf("ndarray: dest buffer %d bytes, box %v needs %d",
			len(dst), dstBox, dstBox.NumElements()*int64(elemSize))
	}
	if need == 0 {
		return nil
	}
	copyRegion(dst, packed, dstBox, region, region, elemSize, false)
	return nil
}

// CopyRegion copies region directly from a source buffer laid out as
// srcBox into a destination buffer laid out as dstBox, without an
// intermediate packed form. Used by the shared-memory (xpmem-style)
// zero-intermediate-copy path.
func CopyRegion(dst, src []byte, dstBox, srcBox, region Box, elemSize int) error {
	if !srcBox.ContainsBox(region) || !dstBox.ContainsBox(region) {
		return fmt.Errorf("ndarray: region %v not inside src %v and dst %v", region, srcBox, dstBox)
	}
	if region.Empty() {
		return nil
	}
	// Iterate rows of the region: all dims except the last are looped, the
	// last dim is a contiguous memmove.
	nd := region.NDims()
	rowElems := region.Hi[nd-1] - region.Lo[nd-1]
	rowBytes := rowElems * int64(elemSize)
	srcStrides := srcBox.Strides()
	dstStrides := dstBox.Strides()
	pt := make([]int64, nd)
	copy(pt, region.Lo)
	for {
		var so, do int64
		for d := 0; d < nd; d++ {
			so += (pt[d] - srcBox.Lo[d]) * srcStrides[d]
			do += (pt[d] - dstBox.Lo[d]) * dstStrides[d]
		}
		copy(dst[do*int64(elemSize):do*int64(elemSize)+rowBytes],
			src[so*int64(elemSize):so*int64(elemSize)+rowBytes])
		// advance to next row (dims 0..nd-2)
		d := nd - 2
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < region.Hi[d] {
				break
			}
			pt[d] = region.Lo[d]
		}
		if d < 0 {
			return nil
		}
	}
}

// copyRegion implements Pack (packing=true: dst is dense over packedBox)
// and Unpack (packing=false: src is dense over packedBox).
func copyRegion(dst, src []byte, stridedBox, region, packedBox Box, elemSize int, packing bool) {
	nd := region.NDims()
	rowElems := region.Hi[nd-1] - region.Lo[nd-1]
	rowBytes := rowElems * int64(elemSize)
	stridedStrides := stridedBox.Strides()
	packedStrides := packedBox.Strides()
	pt := make([]int64, nd)
	copy(pt, region.Lo)
	for {
		var so, po int64
		for d := 0; d < nd; d++ {
			so += (pt[d] - stridedBox.Lo[d]) * stridedStrides[d]
			po += (pt[d] - packedBox.Lo[d]) * packedStrides[d]
		}
		sb := so * int64(elemSize)
		pb := po * int64(elemSize)
		if packing {
			copy(dst[pb:pb+rowBytes], src[sb:sb+rowBytes])
		} else {
			copy(dst[sb:sb+rowBytes], src[pb:pb+rowBytes])
		}
		d := nd - 2
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < region.Hi[d] {
				break
			}
			pt[d] = region.Lo[d]
		}
		if d < 0 {
			return
		}
	}
}

package ndarray

import (
	"bytes"
	"fmt"
	"testing"
)

// fillPattern writes a distinct byte sequence so misplaced copies are
// detectable.
func fillPattern(b []byte) {
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
}

// referencePack is the straightforward per-element pack used as an
// oracle for the coalesced kernel.
func referencePack(src []byte, srcBox, region Box, elemSize int) []byte {
	out := make([]byte, region.NumElements()*int64(elemSize))
	if region.Empty() {
		return out
	}
	nd := region.NDims()
	pt := make([]int64, nd)
	copy(pt, region.Lo)
	srcStrides := srcBox.Strides()
	regStrides := region.Strides()
	for {
		var so, ro int64
		for d := 0; d < nd; d++ {
			so += (pt[d] - srcBox.Lo[d]) * srcStrides[d]
			ro += (pt[d] - region.Lo[d]) * regStrides[d]
		}
		copy(out[ro*int64(elemSize):(ro+1)*int64(elemSize)],
			src[so*int64(elemSize):(so+1)*int64(elemSize)])
		d := nd - 1
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < region.Hi[d] {
				break
			}
			pt[d] = region.Lo[d]
		}
		if d < 0 {
			return out
		}
	}
}

func TestPlanMatchesReference(t *testing.T) {
	cases := []struct {
		name   string
		src    Box
		region Box
	}{
		{"1D-middle", BoxFromShape([]int64{40}), NewBox([]int64{7}, []int64{31})},
		{"1D-full", BoxFromShape([]int64{40}), BoxFromShape([]int64{40})},
		{"2D-inner", BoxFromShape([]int64{9, 11}), NewBox([]int64{2, 3}, []int64{7, 9})},
		{"2D-full-rows", BoxFromShape([]int64{9, 11}), NewBox([]int64{2, 0}, []int64{7, 11})},
		{"3D-inner", BoxFromShape([]int64{5, 6, 7}), NewBox([]int64{1, 2, 3}, []int64{4, 5, 6})},
		{"3D-full-rows", BoxFromShape([]int64{5, 6, 7}), NewBox([]int64{1, 0, 0}, []int64{4, 6, 7})},
		{"3D-partial-middle", BoxFromShape([]int64{5, 6, 7}), NewBox([]int64{0, 2, 0}, []int64{5, 5, 7})},
		{"4D", BoxFromShape([]int64{3, 4, 5, 6}), NewBox([]int64{1, 1, 1, 1}, []int64{3, 3, 4, 5})},
		{"4D-single-point", BoxFromShape([]int64{3, 4, 5, 6}), NewBox([]int64{1, 1, 1, 1}, []int64{2, 2, 2, 2})},
		{"offset-src-box", NewBox([]int64{10, 20}, []int64{18, 31}), NewBox([]int64{12, 24}, []int64{16, 29})},
	}
	for _, es := range []int{1, 4, 8} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/elem%d", tc.name, es), func(t *testing.T) {
				src := make([]byte, tc.src.NumElements()*int64(es))
				fillPattern(src)
				want := referencePack(src, tc.src, tc.region, es)

				got, err := Pack(nil, src, tc.src, tc.region, es)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("Pack mismatch for %s", tc.name)
				}

				plan, err := NewPackPlan(tc.src, tc.region, es)
				if err != nil {
					t.Fatal(err)
				}
				planned := make([]byte, len(want))
				if err := plan.Execute(planned, src); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(planned, want) {
					t.Fatalf("PackPlan mismatch for %s (runs=%d)", tc.name, plan.Runs())
				}

				// Round-trip through an unpack plan restores the region.
				dst := make([]byte, tc.src.NumElements()*int64(es))
				up, err := NewUnpackPlan(tc.src, tc.region, es)
				if err != nil {
					t.Fatal(err)
				}
				if err := up.Execute(dst, planned); err != nil {
					t.Fatal(err)
				}
				reread, err := Pack(nil, dst, tc.src, tc.region, es)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(reread, want) {
					t.Fatalf("unpack round-trip mismatch for %s", tc.name)
				}
			})
		}
	}
}

func TestPlanCoalescing(t *testing.T) {
	// A fully-overlapping transfer must degenerate to a single run.
	box := BoxFromShape([]int64{8, 16, 32})
	p, err := NewPackPlan(box, box, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs() != 1 {
		t.Fatalf("full-box pack: %d runs, want 1", p.Runs())
	}
	// Full trailing rows coalesce across the two inner dims.
	region := NewBox([]int64{2, 0, 0}, []int64{6, 16, 32})
	p, err = NewPackPlan(box, region, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs() != 1 {
		t.Fatalf("full-rows pack: %d runs, want 1", p.Runs())
	}
	// An interior region keeps one run per (outer, middle) row pair.
	region = NewBox([]int64{2, 4, 8}, []int64{6, 12, 24})
	p, err = NewPackPlan(box, region, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs() != 4*8 {
		t.Fatalf("interior pack: %d runs, want 32", p.Runs())
	}
	if p.Bytes() != 4*8*16*8 {
		t.Fatalf("interior pack: %d bytes, want %d", p.Bytes(), 4*8*16*8)
	}
}

func TestPlanDirectCopy(t *testing.T) {
	// Strided-to-strided plan (both sides non-dense) matches CopyRegion.
	srcBox := NewBox([]int64{0, 0}, []int64{10, 12})
	dstBox := NewBox([]int64{4, 2}, []int64{14, 16})
	region := NewBox([]int64{5, 3}, []int64{9, 11})
	src := make([]byte, srcBox.NumElements()*4)
	fillPattern(src)
	want := make([]byte, dstBox.NumElements()*4)
	if err := CopyRegion(want, src, dstBox, srcBox, region, 4); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(dstBox, srcBox, region, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := p.Execute(got, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("plan direct copy differs from CopyRegion")
	}
}

func TestPlanErrors(t *testing.T) {
	box := BoxFromShape([]int64{4, 4})
	outside := NewBox([]int64{2, 2}, []int64{6, 6})
	if _, err := NewPackPlan(box, outside, 8); err == nil {
		t.Fatal("region outside box must fail")
	}
	if _, err := NewPlan(box, box, box, 0); err == nil {
		t.Fatal("elemSize 0 must fail")
	}
	if _, err := NewPlan(box, BoxFromShape([]int64{4}), box, 8); err == nil {
		t.Fatal("rank mismatch must fail")
	}
	p, err := NewPackPlan(box, box, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Execute(make([]byte, 8), make([]byte, 4*4*8)); err == nil {
		t.Fatal("short dst must fail")
	}
	if err := p.Execute(make([]byte, 4*4*8), make([]byte, 8)); err == nil {
		t.Fatal("short src must fail")
	}
	// Beyond-MaxDims boxes are rejected rather than silently truncated.
	lo := make([]int64, MaxDims+1)
	hi := make([]int64, MaxDims+1)
	for i := range hi {
		hi[i] = 2
	}
	big := Box{Lo: lo, Hi: hi}
	if _, err := NewPlan(big, big, big, 8); err == nil {
		t.Fatal("rank > MaxDims must fail")
	}
}

func TestPlanEmptyRegion(t *testing.T) {
	box := BoxFromShape([]int64{4, 4})
	empty := NewBox([]int64{2, 2}, []int64{2, 4})
	p, err := NewPackPlan(box, empty, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bytes() != 0 || p.Runs() != 0 {
		t.Fatalf("empty plan moves %d bytes in %d runs", p.Bytes(), p.Runs())
	}
	// Executing an empty plan must not touch the (nil) buffers.
	if err := p.Execute(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanExecuteAllocs(t *testing.T) {
	box := BoxFromShape([]int64{32, 32, 32})
	region := NewBox([]int64{8, 8, 8}, []int64{24, 24, 24})
	p, err := NewPackPlan(box, region, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, box.NumElements()*8)
	dst := make([]byte, region.NumElements()*8)
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.Execute(dst, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Plan.Execute allocates %.1f per run, want 0", allocs)
	}
}

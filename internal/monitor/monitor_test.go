package monitor

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveAggregates(t *testing.T) {
	m := New("rank0")
	m.Observe("xfer", 1.0)
	m.Observe("xfer", 3.0)
	m.Observe("xfer", 2.0)
	r := m.Snapshot()
	st := r.Timings["xfer"]
	if st.Count != 3 || st.Total != 6.0 || st.Min != 1.0 || st.Max != 3.0 {
		t.Fatalf("stat = %+v", st)
	}
	if st.Mean() != 2.0 {
		t.Fatalf("mean = %g", st.Mean())
	}
}

func TestStartStop(t *testing.T) {
	m := New("r")
	stop := m.Start("op")
	time.Sleep(2 * time.Millisecond)
	stop()
	st := m.Snapshot().Timings["op"]
	if st.Count != 1 || st.Total <= 0 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestVolumesAndCounts(t *testing.T) {
	m := New("r")
	m.AddVolume("stream", 100)
	m.AddVolume("stream", 50)
	m.Incr("handshakes", 2)
	r := m.Snapshot()
	if r.Volumes["stream"] != 150 || r.Counts["handshakes"] != 2 {
		t.Fatalf("report = %+v", r)
	}
}

func TestGauges(t *testing.T) {
	m := New("r")
	if m.Gauge("session.epoch") != 0 {
		t.Fatal("unset gauge must read 0")
	}
	m.Set("session.epoch", 1)
	m.Set("session.epoch", 3)
	if m.Gauge("session.epoch") != 3 {
		t.Fatalf("gauge = %d, want 3 (last write wins)", m.Gauge("session.epoch"))
	}
	r := m.Snapshot()
	if r.Gauges["session.epoch"] != 3 {
		t.Fatalf("snapshot gauge = %d", r.Gauges["session.epoch"])
	}

	a, b := New("a"), New("b")
	a.Set("session.epoch", 2)
	b.Set("session.epoch", 3)
	b.Set("queue.depth", 7)
	merged := Merge("all", a.Snapshot(), b.Snapshot())
	if merged.Gauges["session.epoch"] != 3 || merged.Gauges["queue.depth"] != 7 {
		t.Fatalf("merged gauges = %+v, want max across ranks", merged.Gauges)
	}

	var sb strings.Builder
	if err := merged.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gauge  session.epoch") {
		t.Fatalf("trace missing gauge line:\n%s", sb.String())
	}
}

func TestMemoryPeak(t *testing.T) {
	m := New("r")
	m.RecordAlloc(100)
	m.RecordAlloc(200)
	m.RecordFree(150)
	m.RecordAlloc(50)
	r := m.Snapshot()
	if r.MemCur != 200 || r.MemPeak != 300 {
		t.Fatalf("mem cur=%d peak=%d, want 200/300", r.MemCur, r.MemPeak)
	}
}

func TestMeanEmpty(t *testing.T) {
	if (TimingStat{}).Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestMerge(t *testing.T) {
	a := New("a")
	a.Observe("x", 1)
	a.AddVolume("v", 10)
	a.Incr("c", 1)
	a.RecordAlloc(100)
	b := New("b")
	b.Observe("x", 5)
	b.Observe("y", 2)
	b.AddVolume("v", 20)
	b.RecordAlloc(300)
	b.RecordFree(250)

	m := Merge("all", a.Snapshot(), b.Snapshot())
	if st := m.Timings["x"]; st.Count != 2 || st.Total != 6 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("merged x = %+v", st)
	}
	if _, ok := m.Timings["y"]; !ok {
		t.Fatal("merged report missing y")
	}
	if m.Volumes["v"] != 30 || m.Counts["c"] != 1 {
		t.Fatalf("merged volumes/counts wrong: %+v", m)
	}
	if m.MemCur != 150 || m.MemPeak != 300 {
		t.Fatalf("merged mem cur=%d peak=%d", m.MemCur, m.MemPeak)
	}
}

func TestWriteTrace(t *testing.T) {
	m := New("rank3")
	m.Observe("move", 0.5)
	m.AddVolume("move", 1024)
	m.Incr("steps", 4)
	var sb strings.Builder
	if err := m.Snapshot().WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rank3", "timing move", "volume move", "count  steps", "memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New("r")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Observe("p", 0.001)
				m.AddVolume("p", 1)
				m.Incr("n", 1)
				m.RecordAlloc(8)
				m.RecordFree(8)
			}
		}()
	}
	wg.Wait()
	r := m.Snapshot()
	if r.Timings["p"].Count != 8000 || r.Volumes["p"] != 8000 || r.Counts["n"] != 8000 {
		t.Fatalf("lost updates: %+v", r)
	}
	if r.MemCur != 0 {
		t.Fatalf("mem should balance to 0, got %d", r.MemCur)
	}
}

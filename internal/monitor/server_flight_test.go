package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"flexio/internal/flight"
)

// TestServerFlightEndpoints: /journal and /critpath 404 until a flight
// source is attached, then serve the journal dump (with its stream
// fingerprint) and the per-step critical-path analysis.
func TestServerFlightEndpoints(t *testing.T) {
	srv := NewServer(func() Report { return New("live").Snapshot() })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/journal"); code != http.StatusNotFound {
		t.Fatalf("/journal without source = %d, want 404", code)
	}
	if code, _ := get("/critpath"); code != http.StatusNotFound {
		t.Fatalf("/critpath without source = %d, want 404", code)
	}

	j := flight.NewJournal(0)
	p := j.Record(flight.Event{Kind: flight.KindCompute, Point: "writer.flush", T: 1, Dur: 0.5, Step: 3})
	j.Record(flight.Event{Kind: flight.KindSend, Point: "send.shm", Parent: p, T: 1.5, Dur: 0.25, Step: 3, Bytes: 64})
	srv.SetFlightSource(func() *flight.Journal { return j })

	code, body := get("/journal")
	if code != http.StatusOK {
		t.Fatalf("/journal = %d", code)
	}
	var dump flight.JournalDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/journal invalid: %v", err)
	}
	if dump.Seen != 2 || len(dump.Events) != 2 || dump.Hash == "" {
		t.Fatalf("/journal dump = %+v", dump)
	}

	code, body = get("/critpath")
	if code != http.StatusOK {
		t.Fatalf("/critpath = %d", code)
	}
	var an flight.Analysis
	if err := json.Unmarshal([]byte(body), &an); err != nil {
		t.Fatalf("/critpath invalid: %v", err)
	}
	if len(an.Steps) != 1 || an.Steps[0].Step != 3 || an.Dominant != "writer.flush" {
		t.Fatalf("/critpath analysis = %+v", an)
	}

	srv.SetFlightSource(nil)
	if code, _ := get("/journal"); code != http.StatusNotFound {
		t.Fatalf("/journal after detach = %d, want 404", code)
	}
}

package monitor

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// Cross-process merge coverage: the fleet collector merges reports that
// crossed a JSON wire boundary, so these tests round-trip every input
// through the export encoding before merging — exercising the
// empty-stat ±Inf guards and the sparse histogram form under exactly
// the conditions /fleet/metrics sees.

// roundTrip pushes a report through its JSON wire form, as a collector
// scraping /report would receive it.
func roundTrip(t *testing.T, r Report) Report {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out Report
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

// TestMergeCrossProcessDisjointStatSets merges two wire-round-tripped
// reports whose timing points do not overlap at all: both sets must
// survive intact, and a point present in only one process must keep its
// exact count/extrema (no contamination from the other report's maps).
func TestMergeCrossProcessDisjointStatSets(t *testing.T) {
	a := New("writerd")
	a.SetIdentity("writerd", "node-a")
	a.Observe("writer.pack", 0.010)
	a.Observe("writer.pack", 0.020)
	a.AddVolume("data.bytes.sent", 4096)

	b := New("readerd")
	b.SetIdentity("readerd", "node-b")
	b.Observe("reader.assemble", 0.040)
	b.Incr("data.msgs.recv", 7)

	merged := Merge("fleet", roundTrip(t, a.Snapshot()), roundTrip(t, b.Snapshot()))
	if len(merged.Timings) != 2 {
		t.Fatalf("merged %d timing points, want 2 disjoint", len(merged.Timings))
	}
	pack := merged.Timings["writer.pack"]
	if pack.Count != 2 || pack.Min != 0.010 || pack.Max != 0.020 {
		t.Fatalf("writer.pack contaminated: count=%d min=%v max=%v", pack.Count, pack.Min, pack.Max)
	}
	asm := merged.Timings["reader.assemble"]
	if asm.Count != 1 || asm.Min != 0.040 || asm.Max != 0.040 {
		t.Fatalf("reader.assemble contaminated: count=%d min=%v max=%v", asm.Count, asm.Min, asm.Max)
	}
	if merged.Volumes["data.bytes.sent"] != 4096 || merged.Counts["data.msgs.recv"] != 7 {
		t.Fatalf("volumes/counts lost: %v %v", merged.Volumes, merged.Counts)
	}
	if len(merged.Origins) != 2 {
		t.Fatalf("origins = %v, want both processes attributed", merged.Origins)
	}
}

// TestMergeCrossProcessEmptyReports merges empty and declared-but-empty
// reports (both wire-round-tripped) into a populated one: the empty
// inputs must not perturb extrema — the round-trip restores the
// internal Min=+Inf/Max=-Inf invariant, so a later observation on the
// merged stat still compares correctly — and must not ship ±Inf.
func TestMergeCrossProcessEmptyReports(t *testing.T) {
	empty := roundTrip(t, New("idle").Snapshot())

	decl := New("declared")
	decl.Declare("writer.flush")
	declared := roundTrip(t, decl.Snapshot())
	ds := declared.Timings["writer.flush"]
	if !math.IsInf(ds.Min, 1) || !math.IsInf(ds.Max, -1) {
		t.Fatalf("round-trip lost the empty-stat invariant: min=%v max=%v", ds.Min, ds.Max)
	}

	busy := New("busy")
	busy.Observe("writer.flush", 0.005)

	merged := Merge("fleet", empty, declared, roundTrip(t, busy.Snapshot()))
	st := merged.Timings["writer.flush"]
	if st.Count != 1 || st.Min != 0.005 || st.Max != 0.005 {
		t.Fatalf("empty inputs perturbed the merge: count=%d min=%v max=%v", st.Count, st.Min, st.Max)
	}
	// Merging only empties must stay empty and still serialize safely.
	onlyEmpty := Merge("fleet", empty, declared)
	var buf bytes.Buffer
	if err := onlyEmpty.WriteJSON(&buf); err != nil {
		t.Fatalf("empty merge does not serialize: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte("Inf")) {
		t.Fatal("empty merge leaked ±Inf into JSON")
	}
}

// TestMergeInfPinnedBuckets merges stats from two processes that each
// observed a duration beyond the histogram's resolved range (a hung
// stage): such observations pin to the final bucket, whose upper bound
// is +Inf. The pinned counts must sum across processes, quantiles must
// stay finite (clamped to the Max envelope), and the wire round-trip
// must preserve the pinned counts exactly.
func TestMergeInfPinnedBuckets(t *testing.T) {
	const hung = 1e10 // seconds; > 2^31s, lands in the +Inf-bounded bucket 63
	mk := func(name string) Report {
		m := New(name)
		m.Observe("send.tcp", 0.001)
		m.Observe("send.tcp", hung)
		return m.Snapshot()
	}
	merged := Merge("fleet", roundTrip(t, mk("p1")), roundTrip(t, mk("p2")))
	st := merged.Timings["send.tcp"]
	if st.Count != 4 {
		t.Fatalf("count = %d, want 4", st.Count)
	}
	if got := st.Hist[HistBuckets-1]; got != 2 {
		t.Fatalf("+Inf-pinned bucket = %d across processes, want 2", got)
	}
	if st.Max != hung {
		t.Fatalf("merged Max = %v, want %v preserved", st.Max, hung)
	}
	// P99 targets the pinned bucket; the estimate is the bucket's finite
	// geometric midpoint clamped to [Min, Max] — never NaN or ±Inf.
	if p := st.P99(); math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Fatalf("P99 over a pinned bucket = %v", p)
	}
	// A second-level merge (fleet of fleets) must keep summing buckets.
	again := Merge("global", merged, merged)
	if got := again.Timings["send.tcp"].Hist[HistBuckets-1]; got != 4 {
		t.Fatalf("re-merged pinned bucket = %d, want 4", got)
	}
}

// TestMergeIdentityAndCursor: identity fields travel per process and
// merge into Origins; span cursors sum so the fleet total-ever-recorded
// count survives aggregation.
func TestMergeIdentityAndCursor(t *testing.T) {
	a := New("wd0")
	a.SetIdentity("wd0", "host-a")
	a.StartSpan("writer.flush", 1, 0).End()
	b := New("rd0")
	b.SetIdentity("rd0", "host-b")
	b.StartSpan("reader.assemble", 1, 0).End()
	b.StartSpan("reader.assemble", 2, 0).End()

	ra, rb := roundTrip(t, a.Snapshot()), roundTrip(t, b.Snapshot())
	if ra.Daemon != "wd0" || ra.Node != "host-a" || ra.PID == 0 {
		t.Fatalf("identity lost on the wire: %+v", ra)
	}
	if ra.SpanCursor != 1 || rb.SpanCursor != 2 {
		t.Fatalf("cursors = %d, %d want 1, 2", ra.SpanCursor, rb.SpanCursor)
	}
	merged := Merge("fleet", ra, rb)
	if merged.SpanCursor != 3 {
		t.Fatalf("merged cursor = %d, want 3", merged.SpanCursor)
	}
	if len(merged.Origins) != 2 || merged.Origins[0] == merged.Origins[1] {
		t.Fatalf("origins = %v, want two distinct process identities", merged.Origins)
	}
	// Merging a merge must carry origins through, not re-derive them.
	again := Merge("global", merged)
	if len(again.Origins) != 2 {
		t.Fatalf("second-level origins = %v", again.Origins)
	}
}

package monitor

// Span is one timed stage of a timestep — a pack, a transport send, an
// assemble, a plug-in execution — attributed to a step, session epoch and
// rank, optionally linked to a parent span (the enclosing stage). Spans
// from writer and reader monitors correlate by (Point ordering, Step,
// Epoch): a single step can be followed pack → send → assemble → plug-in
// across ranks. Timestamps are seconds on the owning monitor's Clock.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Point  string `json:"point"`
	// Origin is the recording monitor's name (e.g. "writers"); it becomes
	// the process lane in the Chrome trace export.
	Origin string `json:"origin,omitempty"`
	// Scope is the tenant-qualified stream key ("tenant/stream" in the
	// directory.Qualify grammar) the span belongs to. It is the join key
	// cross-process stitching uses: a writer-side send span and a
	// reader-side assemble span scraped from different daemons correlate
	// by {Scope, Epoch, Step}. Empty on spans outside any stream.
	Scope string  `json:"scope,omitempty"`
	Step  int64   `json:"step"`
	Epoch uint64  `json:"epoch,omitempty"`
	Rank  int     `json:"rank"`
	Start float64 `json:"start"` // seconds on the monitor's clock
	Dur   float64 `json:"dur"`   // seconds
}

// ActiveSpan is an in-flight span handle returned by StartSpan. It is a
// small value type: copy it freely, call End exactly once. The zero
// value (from a nil monitor) is a no-op.
type ActiveSpan struct {
	m  *Monitor
	sp Span
}

// StartSpan opens a span at `point` for (step, rank), timestamped on the
// monitor's clock. On a nil monitor it returns an inert handle and does
// no work — the disabled-path cost is one branch.
func (m *Monitor) StartSpan(point string, step int64, rank int) ActiveSpan {
	if m == nil {
		return ActiveSpan{}
	}
	m.mu.Lock()
	m.nextSpanID++
	id := m.nextSpanID
	c := m.clock
	m.mu.Unlock()
	if c == nil {
		c = wallClock{}
	}
	return ActiveSpan{m: m, sp: Span{
		ID:    id,
		Point: point,
		Step:  step,
		Rank:  rank,
		Start: c.Now(),
	}}
}

// SetParent links the span under an enclosing span's ID (chainable).
func (s ActiveSpan) SetParent(id uint64) ActiveSpan {
	s.sp.Parent = id
	return s
}

// SetEpoch tags the span with the session epoch it ran under (chainable).
func (s ActiveSpan) SetEpoch(epoch uint64) ActiveSpan {
	s.sp.Epoch = epoch
	return s
}

// SetScope tags the span with its tenant-qualified stream key
// (chainable). On the no-op handle this is a field write on a value
// copy — the nil-monitor path stays branch-cheap.
func (s ActiveSpan) SetScope(scope string) ActiveSpan {
	s.sp.Scope = scope
	return s
}

// SpanID returns the span's ID for parent links (0 on the no-op handle).
func (s ActiveSpan) SpanID() uint64 { return s.sp.ID }

// End closes the span: its duration lands in the ring buffer and is also
// folded into the point's latency histogram, so every traced stage gets
// P50/P95/P99 for free.
func (s ActiveSpan) End() {
	if s.m == nil {
		return
	}
	m := s.m
	sp := s.sp
	m.mu.Lock()
	c := m.clock
	if c == nil {
		c = wallClock{}
	}
	sp.Dur = c.Now() - sp.Start
	sp.Origin = m.Name
	m.recordSpanLocked(sp)
	m.observeLocked(sp.Point, sp.Dur)
	m.mu.Unlock()
}

// RecordSpan records a fully-formed span with explicit timestamps — the
// path virtual-time simulators use to emit modeled stages. A zero ID is
// assigned; an empty Origin takes the monitor's name. The duration is
// folded into the point's histogram like an End'ed span.
func (m *Monitor) RecordSpan(sp Span) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if sp.ID == 0 {
		m.nextSpanID++
		sp.ID = m.nextSpanID
	}
	if sp.Origin == "" {
		sp.Origin = m.Name
	}
	m.recordSpanLocked(sp)
	m.observeLocked(sp.Point, sp.Dur)
	m.mu.Unlock()
}

// recordSpanLocked appends to the bounded ring. Caller holds m.mu.
func (m *Monitor) recordSpanLocked(sp Span) {
	if m.spanCap <= 0 {
		return
	}
	if len(m.spans) < m.spanCap {
		m.spans = append(m.spans, sp)
	} else {
		m.spans[m.spanNext] = sp
		m.spanNext = (m.spanNext + 1) % m.spanCap
	}
	m.spanSeen++
}

// snapshotSpansLocked copies the ring out oldest-first. Caller holds m.mu.
func (m *Monitor) snapshotSpansLocked() []Span {
	if len(m.spans) == 0 {
		return nil
	}
	out := make([]Span, 0, len(m.spans))
	out = append(out, m.spans[m.spanNext:]...)
	out = append(out, m.spans[:m.spanNext]...)
	return out
}

package monitor

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// timingStatJSON is TimingStat's wire form. Extrema are guarded for the
// empty case (a declared-but-unobserved point must not ship ±Inf, which
// encoding/json rejects and which used to silently break the writer's
// online report shipping), quantiles are precomputed for consumers that
// don't want the buckets, and the histogram travels sparsely as
// [bucket, count] pairs.
type timingStatJSON struct {
	Count int64      `json:"count"`
	Total float64    `json:"total"`
	Min   float64    `json:"min"`
	Max   float64    `json:"max"`
	P50   float64    `json:"p50"`
	P95   float64    `json:"p95"`
	P99   float64    `json:"p99"`
	Hist  [][2]int64 `json:"hist,omitempty"`
}

// MarshalJSON implements json.Marshaler with the empty-stat guard.
func (s TimingStat) MarshalJSON() ([]byte, error) {
	j := timingStatJSON{Count: s.Count, Total: s.Total}
	if s.Count > 0 {
		j.Min = finiteOrZero(s.Min)
		j.Max = finiteOrZero(s.Max)
		j.P50 = s.P50()
		j.P95 = s.P95()
		j.P99 = s.P99()
	}
	for b, n := range s.Hist {
		if n != 0 {
			j.Hist = append(j.Hist, [2]int64{int64(b), n})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a stat, including the internal ±Inf extrema
// invariant for the empty case so later merges compare correctly.
func (s *TimingStat) UnmarshalJSON(data []byte) error {
	var j timingStatJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = TimingStat{Count: j.Count, Total: j.Total, Min: j.Min, Max: j.Max}
	if j.Count == 0 {
		s.Min = math.Inf(1)
		s.Max = math.Inf(-1)
	}
	for _, bc := range j.Hist {
		if bc[0] >= 0 && bc[0] < HistBuckets {
			s.Hist[bc[0]] = bc[1]
		}
	}
	return nil
}

// WriteJSON emits the machine-readable report (metrics.json): every
// timing point with count/total/extrema/P50/P95/P99 and sparse histogram
// buckets, plus volumes, counters, gauges, memory, and buffered spans.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and about:tracing load).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the report's spans as Chrome trace-event JSON,
// loadable in about:tracing or https://ui.perfetto.dev. Each span Origin
// (monitor name) becomes a named process lane, each rank a thread within
// it; step, epoch and parent links travel in the event args so one
// timestep's pack → send → assemble → plug-in stages can be correlated
// across writer and reader ranks by selecting on args.step.
func (r Report) WriteChromeTrace(w io.Writer) error {
	// Deterministic pid assignment per origin.
	origins := make([]string, 0, 4)
	seen := make(map[string]int)
	for _, sp := range r.Spans {
		if _, ok := seen[sp.Origin]; !ok {
			seen[sp.Origin] = 0
			origins = append(origins, sp.Origin)
		}
	}
	sort.Strings(origins)
	for i, o := range origins {
		seen[o] = i + 1
	}

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	for _, o := range origins {
		name := o
		if name == "" {
			name = "(unnamed)"
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: seen[o],
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range r.Spans {
		args := map[string]any{"step": sp.Step, "id": sp.ID}
		if sp.Epoch != 0 {
			args["epoch"] = sp.Epoch
		}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: sp.Point,
			Cat:  "flexio",
			Ph:   "X",
			Ts:   sp.Start * 1e6,
			Dur:  sp.Dur * 1e6,
			Pid:  seen[sp.Origin],
			Tid:  sp.Rank,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

package monitor

import (
	"net"
	"net/http"
	"sync"
	"time"

	"flexio/internal/flight"
)

// Server exposes a live monitoring source over HTTP so a running
// experiment can be watched mid-flight (including mid-reconfiguration):
//
//	/metrics   human-readable point table with P50/P95/P99 per timing
//	/trace     Chrome trace-event JSON of the buffered spans
//	/spans     raw span list as JSON
//	/report    the full machine-readable report
//	/journal   flight-recorder event journal as JSON (with stream hash)
//	/critpath  per-step critical-path analysis of the journal as JSON
//
// The source callback is invoked per request, so every response is a
// fresh snapshot; typical sources Merge the live writer- and reader-side
// monitors. /journal and /critpath respond 404 until SetFlightSource
// attaches a flight recorder.
//
// Concurrency contract: every handler materializes a complete copied
// snapshot (Snapshot/Dump hold the monitor or journal lock only while
// copying) and encodes from that copy, so no monitor lock is ever held
// across JSON encoding or a slow client write — a scraper hammering
// /spans during a live run stalls neither the data path nor other
// requests. /spans responses keep the report's SpanCursor and
// SpansDropped fields, so sweeping scrapers can window the ring without
// double-counting (see Report.SpanCursor).
type Server struct {
	src func() Report

	mu     sync.Mutex
	flight func() *flight.Journal
	srv    *http.Server
	ln     net.Listener
}

// NewServer wraps a report source (never nil).
func NewServer(src func() Report) *Server {
	return &Server{src: src}
}

// SetFlightSource attaches a flight-recorder source serving /journal and
// /critpath. Like the report source it is invoked per request; a nil
// source (or a source returning nil) detaches the endpoints.
func (s *Server) SetFlightSource(src func() *flight.Journal) {
	s.mu.Lock()
	s.flight = src
	s.mu.Unlock()
}

func (s *Server) flightJournal() (*flight.Journal, bool) {
	s.mu.Lock()
	src := s.flight
	s.mu.Unlock()
	if src == nil {
		return nil, false
	}
	j := src()
	return j, j != nil
}

// Handler returns the endpoint mux, for embedding into an existing
// server or httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.src().WriteTrace(w) //nolint:errcheck // client hang-up mid-write
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.src().WriteChromeTrace(w) //nolint:errcheck
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rep := s.src()
		rep.Timings, rep.Volumes, rep.Counts, rep.Gauges = nil, nil, nil, nil
		rep.WriteJSON(w) //nolint:errcheck
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.src().WriteJSON(w) //nolint:errcheck
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, req *http.Request) {
		j, ok := s.flightJournal()
		if !ok {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		flight.WriteJSON(w, j) //nolint:errcheck
	})
	mux.HandleFunc("/critpath", func(w http.ResponseWriter, req *http.Request) {
		j, ok := s.flightJournal()
		if !ok {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		flight.WriteAnalysisJSON(w, flight.Analyze(j.Snapshot())) //nolint:errcheck
	})
	return mux
}

// Start begins serving on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address. The server runs until Close.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.srv = srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// Package monitor implements FlexIO's runtime performance monitoring
// (Section II.G): measurement points across the software stack record
// data-movement timings, transferred volumes, D.C. plug-in execution
// times, and memory usage during data movement. Reports can be dumped as
// trace files for offline tuning or gathered online (Merge) so the
// analytics side can steer data-movement scheduling and plug-in placement.
package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// TimingStat aggregates observations of one measurement point.
type TimingStat struct {
	Count int64
	Total float64 // seconds
	Min   float64
	Max   float64
}

// Mean returns the average duration in seconds (0 when empty).
func (s TimingStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total / float64(s.Count)
}

// Monitor collects measurements. All methods are safe for concurrent use;
// a Monitor typically belongs to one FlexIO process (rank).
type Monitor struct {
	Name string

	mu      sync.Mutex
	timings map[string]*TimingStat
	volumes map[string]int64
	counts  map[string]int64
	gauges  map[string]int64
	memCur  int64
	memPeak int64
}

// New creates a named monitor.
func New(name string) *Monitor {
	return &Monitor{
		Name:    name,
		timings: make(map[string]*TimingStat),
		volumes: make(map[string]int64),
		counts:  make(map[string]int64),
		gauges:  make(map[string]int64),
	}
}

// Start begins timing a measurement point; invoke the returned func to
// stop. Usage: defer m.Start("redistribute")().
func (m *Monitor) Start(point string) func() {
	t0 := time.Now()
	return func() { m.Observe(point, time.Since(t0).Seconds()) }
}

// Observe records a duration (in seconds) for a measurement point. Used
// directly by the virtual-time simulator, where durations are modeled
// rather than measured.
func (m *Monitor) Observe(point string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.timings[point]
	if st == nil {
		st = &TimingStat{Min: math.Inf(1), Max: math.Inf(-1)}
		m.timings[point] = st
	}
	st.Count++
	st.Total += seconds
	if seconds < st.Min {
		st.Min = seconds
	}
	if seconds > st.Max {
		st.Max = seconds
	}
}

// AddVolume accumulates transferred bytes at a measurement point.
func (m *Monitor) AddVolume(point string, bytes int64) {
	m.mu.Lock()
	m.volumes[point] += bytes
	m.mu.Unlock()
}

// Incr bumps a named counter.
func (m *Monitor) Incr(point string, n int64) {
	m.mu.Lock()
	m.counts[point] += n
	m.mu.Unlock()
}

// Set records the current value of a gauge — a point-in-time level such
// as `session.epoch` or a queue depth, as opposed to the monotonic
// accumulation of Incr.
func (m *Monitor) Set(point string, v int64) {
	m.mu.Lock()
	m.gauges[point] = v
	m.mu.Unlock()
}

// Gauge reads back a gauge value (0 if never set).
func (m *Monitor) Gauge(point string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[point]
}

// RecordAlloc tracks dynamic memory allocated inside FlexIO's data path
// ("dynamic memory allocation points within FlexIO are also instrumented").
func (m *Monitor) RecordAlloc(bytes int64) {
	m.mu.Lock()
	m.memCur += bytes
	if m.memCur > m.memPeak {
		m.memPeak = m.memCur
	}
	m.mu.Unlock()
}

// RecordFree tracks the release of data-path memory.
func (m *Monitor) RecordFree(bytes int64) {
	m.mu.Lock()
	m.memCur -= bytes
	m.mu.Unlock()
}

// Report is an immutable snapshot of a monitor.
type Report struct {
	Name    string
	Timings map[string]TimingStat
	Volumes map[string]int64
	Counts  map[string]int64
	Gauges  map[string]int64
	MemCur  int64
	MemPeak int64
}

// Snapshot captures the current state.
func (m *Monitor) Snapshot() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{
		Name:    m.Name,
		Timings: make(map[string]TimingStat, len(m.timings)),
		Volumes: make(map[string]int64, len(m.volumes)),
		Counts:  make(map[string]int64, len(m.counts)),
		Gauges:  make(map[string]int64, len(m.gauges)),
		MemCur:  m.memCur,
		MemPeak: m.memPeak,
	}
	for k, v := range m.timings {
		r.Timings[k] = *v
	}
	for k, v := range m.volumes {
		r.Volumes[k] = v
	}
	for k, v := range m.counts {
		r.Counts[k] = v
	}
	for k, v := range m.gauges {
		r.Gauges[k] = v
	}
	return r
}

// Merge combines reports (e.g. gathered from all simulation ranks) into
// one: timings aggregate, volumes and counters sum, memory peaks take the
// max-of-peaks and sum-of-current.
func Merge(name string, reports ...Report) Report {
	out := Report{
		Name:    name,
		Timings: make(map[string]TimingStat),
		Volumes: make(map[string]int64),
		Counts:  make(map[string]int64),
		Gauges:  make(map[string]int64),
	}
	for _, r := range reports {
		for k, v := range r.Timings {
			cur, ok := out.Timings[k]
			if !ok {
				out.Timings[k] = v
				continue
			}
			cur.Count += v.Count
			cur.Total += v.Total
			if v.Min < cur.Min {
				cur.Min = v.Min
			}
			if v.Max > cur.Max {
				cur.Max = v.Max
			}
			out.Timings[k] = cur
		}
		for k, v := range r.Volumes {
			out.Volumes[k] += v
		}
		for k, v := range r.Counts {
			out.Counts[k] += v
		}
		// Gauges are levels, not flows: a merged gauge takes the max across
		// ranks (e.g. session.epoch is identical on every rank in a healthy
		// session, and max surfaces a rank that raced ahead).
		for k, v := range r.Gauges {
			if cur, ok := out.Gauges[k]; !ok || v > cur {
				out.Gauges[k] = v
			}
		}
		out.MemCur += r.MemCur
		if r.MemPeak > out.MemPeak {
			out.MemPeak = r.MemPeak
		}
	}
	return out
}

// WriteTrace dumps the report as a human-readable trace for offline
// performance tuning.
func (r Report) WriteTrace(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# flexio trace: %s\n", r.Name); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Timings))
	for k := range r.Timings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := r.Timings[k]
		if _, err := fmt.Fprintf(w, "timing %-32s count=%-8d total=%.6fs mean=%.6fs min=%.6fs max=%.6fs\n",
			k, t.Count, t.Total, t.Mean(), t.Min, t.Max); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Volumes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "volume %-32s bytes=%d\n", k, r.Volumes[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "count  %-32s n=%d\n", k, r.Counts[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "gauge  %-32s v=%d\n", k, r.Gauges[k]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "memory cur=%dB peak=%dB\n", r.MemCur, r.MemPeak)
	return err
}

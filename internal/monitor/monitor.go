// Package monitor implements FlexIO's runtime performance monitoring
// (Section II.G): measurement points across the software stack record
// data-movement timings, transferred volumes, D.C. plug-in execution
// times, and memory usage during data movement. Reports can be dumped as
// trace files for offline tuning or gathered online (Merge) so the
// analytics side can steer data-movement scheduling and plug-in placement.
//
// Timings are log-bucketed histograms, so merged reports expose tail
// latency (P50/P95/P99) per measurement point, not just min/max. Spans
// (span.go) add per-step structure: one timestep's pack → send → assemble
// → plug-in stages can be followed end to end across ranks and exported
// as a Chrome trace (export.go) or served live (server.go).
//
// Timestamps come from an injectable Clock. The default is the wall
// clock; virtual-time simulations inject their discrete-event engine
// (simnet.Engine satisfies Clock) so modeled and measured seconds are
// never mixed in the same TimingStat.
//
// A nil *Monitor is a valid no-op monitor: every method is nil-safe and
// returns immediately, so instrumented code needs no guards and pays
// (benchmarked) near-zero cost when monitoring is disabled.
package monitor

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Clock supplies timestamps in seconds. The zero point is arbitrary but
// must be fixed for the clock's lifetime: only differences and relative
// ordering are interpreted. simnet.Engine's virtual clock satisfies this
// interface directly.
type Clock interface {
	Now() float64
}

// processStart anchors the wall clock so every monitor in the process
// shares one time base and spans from different monitors correlate.
var processStart = time.Now()

type wallClock struct{}

func (wallClock) Now() float64 { return time.Since(processStart).Seconds() }

// WallClock returns the default clock: monotonic seconds since process
// start.
func WallClock() Clock { return wallClock{} }

// HistBuckets is the number of log2 latency buckets a TimingStat carries.
const HistBuckets = 64

// histZero is the bucket index covering [1s, 2s): bucket b spans
// [2^(b-histZero), 2^(b-histZero+1)) seconds, so the histogram resolves
// durations from ~0.23ns (bucket 0) to ~2^31s (bucket 63).
const histZero = 32

// histBucket maps a duration in seconds to its bucket.
func histBucket(seconds float64) int {
	if seconds <= 0 || math.IsNaN(seconds) {
		return 0
	}
	if math.IsInf(seconds, 1) {
		return HistBuckets - 1
	}
	_, exp := math.Frexp(seconds) // seconds = f * 2^exp, f in [0.5, 1)
	b := exp - 1 + histZero       // floor(log2 seconds) + histZero
	if b < 0 {
		return 0
	}
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// bucketMid is a bucket's representative duration: the geometric midpoint
// of its bounds.
func bucketMid(b int) float64 {
	return math.Exp2(float64(b-histZero) + 0.5)
}

// TimingStat aggregates observations of one measurement point: count,
// total, extrema, and a log2-bucketed histogram for quantiles. Stats are
// mergeable across ranks bucket-wise. The zero value is NOT an empty
// stat (its Min would compare wrong); empty stats are created internally
// with Min=+Inf/Max=-Inf and serialize safely (export.go guards them).
type TimingStat struct {
	Count int64
	Total float64 // seconds
	Min   float64
	Max   float64
	Hist  [HistBuckets]int64
}

func newTimingStat() *TimingStat {
	return &TimingStat{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Mean returns the average duration in seconds (0 when empty).
func (s TimingStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total / float64(s.Count)
}

// add folds one observation in.
func (s *TimingStat) add(seconds float64) {
	s.Count++
	s.Total += seconds
	if seconds < s.Min {
		s.Min = seconds
	}
	if seconds > s.Max {
		s.Max = seconds
	}
	s.Hist[histBucket(seconds)]++
}

// merge folds another stat in bucket-wise.
func (s *TimingStat) merge(o TimingStat) {
	s.Count += o.Count
	s.Total += o.Total
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for b, n := range o.Hist {
		s.Hist[b] += n
	}
}

// Quantile estimates the q-quantile (0 < q < 1) from the histogram. The
// estimate is the geometric midpoint of the bucket holding the target
// observation, clamped to the exact [Min, Max] envelope; it is accurate
// to within a factor of sqrt(2). Returns 0 when empty.
func (s TimingStat) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < HistBuckets; b++ {
		cum += s.Hist[b]
		if cum >= target {
			v := bucketMid(b)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// P50 is the median duration estimate.
func (s TimingStat) P50() float64 { return s.Quantile(0.50) }

// P95 is the 95th-percentile duration estimate.
func (s TimingStat) P95() float64 { return s.Quantile(0.95) }

// P99 is the 99th-percentile duration estimate.
func (s TimingStat) P99() float64 { return s.Quantile(0.99) }

// DefaultSpanCapacity bounds the per-monitor span ring buffer; once full,
// the oldest spans are overwritten (Report.SpansDropped counts them).
const DefaultSpanCapacity = 4096

// Monitor collects measurements. All methods are safe for concurrent use
// and nil-safe (a nil *Monitor is the no-op fast path); a Monitor
// typically belongs to one FlexIO process group.
type Monitor struct {
	Name string

	mu      sync.Mutex
	clock   Clock
	daemon  string // SetIdentity: owning daemon id
	node    string // SetIdentity: host/node name
	pid     int    // SetIdentity: recording process id
	timings map[string]*TimingStat
	volumes map[string]int64
	counts  map[string]int64
	gauges  map[string]int64
	memCur  int64
	memPeak int64

	spans      []Span // ring buffer, oldest at spanNext once saturated
	spanCap    int
	spanNext   int
	spanSeen   int64
	nextSpanID uint64
}

// New creates a named monitor on the wall clock.
func New(name string) *Monitor {
	return &Monitor{
		Name:    name,
		timings: make(map[string]*TimingStat),
		volumes: make(map[string]int64),
		counts:  make(map[string]int64),
		gauges:  make(map[string]int64),
		spanCap: DefaultSpanCapacity,
	}
}

// SetClock injects the timestamp source for Start and StartSpan; nil
// restores the wall clock. Virtual-time runs pass their simnet engine so
// modeled seconds never mix with wall seconds.
func (m *Monitor) SetClock(c Clock) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.clock = c
	m.mu.Unlock()
}

// SetSpanCapacity resizes the span ring buffer (existing spans are
// dropped); n <= 0 disables span recording entirely.
func (m *Monitor) SetSpanCapacity(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if n < 0 {
		n = 0
	}
	m.spanCap = n
	m.spans = nil
	m.spanNext = 0
	m.spanSeen = 0
	m.mu.Unlock()
}

// SetIdentity stamps the monitor with the recording process's identity:
// the daemon id and node (host) name travel on every Report, together
// with the process pid, so merged fleet artifacts stay attributable to
// the process that produced each sample. An empty node keeps the
// previously set (or os.Hostname-derived) value.
func (m *Monitor) SetIdentity(daemon, node string) {
	if m == nil {
		return
	}
	if node == "" {
		node, _ = os.Hostname() //nolint:errcheck // "" is an acceptable fallback
	}
	m.mu.Lock()
	m.daemon = daemon
	if node != "" {
		m.node = node
	}
	m.pid = os.Getpid()
	m.mu.Unlock()
}

// now reads the injected clock (wall clock when unset).
func (m *Monitor) now() float64 {
	m.mu.Lock()
	c := m.clock
	m.mu.Unlock()
	if c == nil {
		return wallClock{}.Now()
	}
	return c.Now()
}

// Start begins timing a measurement point on the monitor's clock; invoke
// the returned func to stop. Usage: defer m.Start("redistribute")().
func (m *Monitor) Start(point string) func() {
	if m == nil {
		return func() {}
	}
	t0 := m.now()
	return func() { m.Observe(point, m.now()-t0) }
}

// Observe records a duration (in seconds) for a measurement point. Used
// directly by the virtual-time simulator, where durations are modeled
// rather than measured.
func (m *Monitor) Observe(point string, seconds float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.observeLocked(point, seconds)
	m.mu.Unlock()
}

func (m *Monitor) observeLocked(point string, seconds float64) {
	st := m.timings[point]
	if st == nil {
		st = newTimingStat()
		m.timings[point] = st
	}
	st.add(seconds)
}

// Declare pre-registers a measurement point with no observations, so
// exports and the live endpoints show it before the first sample. An
// empty stat reports zero Min/Max/quantiles (never +Inf).
func (m *Monitor) Declare(point string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.timings[point] == nil {
		m.timings[point] = newTimingStat()
	}
	m.mu.Unlock()
}

// AddVolume accumulates transferred bytes at a measurement point.
func (m *Monitor) AddVolume(point string, bytes int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.volumes[point] += bytes
	m.mu.Unlock()
}

// Incr bumps a named counter.
func (m *Monitor) Incr(point string, n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counts[point] += n
	m.mu.Unlock()
}

// Set records the current value of a gauge — a point-in-time level such
// as `session.epoch` or a queue depth, as opposed to the monotonic
// accumulation of Incr.
func (m *Monitor) Set(point string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[point] = v
	m.mu.Unlock()
}

// Gauge reads back a gauge value (0 if never set).
func (m *Monitor) Gauge(point string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[point]
}

// RecordAlloc tracks dynamic memory allocated inside FlexIO's data path
// ("dynamic memory allocation points within FlexIO are also instrumented").
func (m *Monitor) RecordAlloc(bytes int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.memCur += bytes
	if m.memCur > m.memPeak {
		m.memPeak = m.memCur
	}
	m.mu.Unlock()
}

// RecordFree tracks the release of data-path memory.
func (m *Monitor) RecordFree(bytes int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.memCur -= bytes
	m.mu.Unlock()
}

// Report is an immutable snapshot of a monitor.
type Report struct {
	Name string `json:"name"`
	// Daemon, PID and Node identify the recording process (SetIdentity);
	// they make merged fleet artifacts attributable. On a Merge output
	// the per-process identities move into Origins instead.
	Daemon  string                `json:"daemon,omitempty"`
	PID     int                   `json:"pid,omitempty"`
	Node    string                `json:"node,omitempty"`
	Origins []string              `json:"origins,omitempty"`
	Timings map[string]TimingStat `json:"timings,omitempty"`
	Volumes map[string]int64      `json:"volumes,omitempty"`
	Counts  map[string]int64      `json:"counts,omitempty"`
	Gauges  map[string]int64      `json:"gauges,omitempty"`
	MemCur  int64                 `json:"mem_cur,omitempty"`
	MemPeak int64                 `json:"mem_peak,omitempty"`
	// Spans holds the ring buffer's contents, oldest first;
	// SpansDropped counts spans already overwritten by the bound.
	Spans        []Span `json:"spans,omitempty"`
	SpansDropped int64  `json:"spans_dropped,omitempty"`
	// SpanCursor is the total number of spans ever recorded by this
	// monitor — a monotonic position, so a scraper holding the cursor of
	// its previous sweep can tell exactly which of Spans are new
	// (Spans covers positions [SpanCursor-len(Spans), SpanCursor)) and
	// whether the ring evicted spans it never saw (a gap, when the
	// previous cursor is below the window start) instead of silently
	// double-counting or missing spans between sweeps.
	SpanCursor int64 `json:"span_cursor,omitempty"`
}

// Snapshot captures the current state. A nil monitor snapshots empty.
func (m *Monitor) Snapshot() Report {
	if m == nil {
		return Report{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{
		Name:    m.Name,
		Daemon:  m.daemon,
		PID:     m.pid,
		Node:    m.node,
		Timings: make(map[string]TimingStat, len(m.timings)),
		Volumes: make(map[string]int64, len(m.volumes)),
		Counts:  make(map[string]int64, len(m.counts)),
		Gauges:  make(map[string]int64, len(m.gauges)),
		MemCur:  m.memCur,
		MemPeak: m.memPeak,
	}
	for k, v := range m.timings {
		r.Timings[k] = *v
	}
	for k, v := range m.volumes {
		r.Volumes[k] = v
	}
	for k, v := range m.counts {
		r.Counts[k] = v
	}
	for k, v := range m.gauges {
		r.Gauges[k] = v
	}
	r.Spans = m.snapshotSpansLocked()
	r.SpanCursor = m.spanSeen
	if dropped := m.spanSeen - int64(len(m.spans)); dropped > 0 {
		r.SpansDropped = dropped
	}
	return r
}

// origin renders a report's process identity for Merge attribution.
func (r Report) origin() string {
	switch {
	case r.Daemon != "" && r.Node != "":
		return fmt.Sprintf("%s@%s/%d", r.Daemon, r.Node, r.PID)
	case r.Daemon != "":
		return fmt.Sprintf("%s/%d", r.Daemon, r.PID)
	case r.Name != "":
		return r.Name
	}
	return ""
}

// Merge combines reports (e.g. gathered from all simulation ranks, or
// scraped from every daemon of a fleet) into one: timings aggregate
// bucket-wise, volumes and counters sum, memory peaks take the
// max-of-peaks and sum-of-current, and spans concatenate in timestamp
// order. Each input's process identity (or its own Origins, when the
// input is itself a merge) is preserved in the output's Origins list,
// deduplicated in first-seen order, so a merged fleet artifact never
// loses track of which processes contributed. SpanCursor sums: it stays
// the total spans ever recorded across the merged processes, though
// per-process gap accounting must happen before merging.
func Merge(name string, reports ...Report) Report {
	out := Report{
		Name:    name,
		Timings: make(map[string]TimingStat),
		Volumes: make(map[string]int64),
		Counts:  make(map[string]int64),
		Gauges:  make(map[string]int64),
	}
	seenOrigin := make(map[string]bool)
	addOrigin := func(o string) {
		if o != "" && !seenOrigin[o] {
			seenOrigin[o] = true
			out.Origins = append(out.Origins, o)
		}
	}
	for _, r := range reports {
		if len(r.Origins) > 0 {
			for _, o := range r.Origins {
				addOrigin(o)
			}
		} else {
			addOrigin(r.origin())
		}
		for k, v := range r.Timings {
			cur, ok := out.Timings[k]
			if !ok {
				out.Timings[k] = v
				continue
			}
			cur.merge(v)
			out.Timings[k] = cur
		}
		for k, v := range r.Volumes {
			out.Volumes[k] += v
		}
		for k, v := range r.Counts {
			out.Counts[k] += v
		}
		// Gauges are levels, not flows: a merged gauge takes the max across
		// ranks (e.g. session.epoch is identical on every rank in a healthy
		// session, and max surfaces a rank that raced ahead).
		for k, v := range r.Gauges {
			if cur, ok := out.Gauges[k]; !ok || v > cur {
				out.Gauges[k] = v
			}
		}
		out.MemCur += r.MemCur
		if r.MemPeak > out.MemPeak {
			out.MemPeak = r.MemPeak
		}
		out.Spans = append(out.Spans, r.Spans...)
		out.SpansDropped += r.SpansDropped
		out.SpanCursor += r.SpanCursor
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start < out.Spans[j].Start })
	return out
}

// finiteOrZero guards an empty stat's ±Inf extrema for display/export.
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// WriteTrace dumps the report as a human-readable trace for offline
// performance tuning, including per-point tail latency.
func (r Report) WriteTrace(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# flexio trace: %s\n", r.Name); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.Timings))
	for k := range r.Timings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := r.Timings[k]
		if _, err := fmt.Fprintf(w, "timing %-32s count=%-8d total=%.6fs mean=%.6fs min=%.6fs max=%.6fs p50=%.6fs p95=%.6fs p99=%.6fs\n",
			k, t.Count, t.Total, t.Mean(), finiteOrZero(t.Min), finiteOrZero(t.Max),
			t.P50(), t.P95(), t.P99()); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Volumes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "volume %-32s bytes=%d\n", k, r.Volumes[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "count  %-32s n=%d\n", k, r.Counts[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range r.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "gauge  %-32s v=%d\n", k, r.Gauges[k]); err != nil {
			return err
		}
	}
	if len(r.Spans) > 0 || r.SpansDropped > 0 {
		if _, err := fmt.Fprintf(w, "spans  buffered=%d dropped=%d\n", len(r.Spans), r.SpansDropped); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "memory cur=%dB peak=%dB\n", r.MemCur, r.MemPeak)
	return err
}

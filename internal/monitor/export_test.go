package monitor

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	w := New("writers")
	r := New("readers")
	cw := &fakeClock{t: 1}
	cr := &fakeClock{t: 1}
	w.SetClock(cw)
	r.SetClock(cr)

	sp := w.StartSpan("writer.pack", 3, 0).SetEpoch(2)
	cw.t = 1.5
	sp.End()
	sp2 := r.StartSpan("reader.assemble", 3, 1).SetEpoch(2)
	cr.t = 2
	sp2.End()

	merged := Merge("trace", w.Snapshot(), r.Snapshot())
	var buf bytes.Buffer
	if err := merged.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var metas, complete int
	pids := map[string]float64{} // span name -> pid
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			complete++
			pids[ev["name"].(string)] = ev["pid"].(float64)
			args := ev["args"].(map[string]any)
			if args["step"].(float64) != 3 || args["epoch"].(float64) != 2 {
				t.Fatalf("span args lost: %+v", ev)
			}
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("non-positive dur: %+v", ev)
			}
		}
	}
	if metas != 2 || complete != 2 {
		t.Fatalf("got %d process-name metas, %d complete events; want 2/2", metas, complete)
	}
	// Writer and reader spans land in different process lanes.
	if pids["writer.pack"] == pids["reader.assemble"] {
		t.Fatalf("writer and reader spans share a pid")
	}
}

func TestWriteJSONMachineReadable(t *testing.T) {
	m := New("json")
	m.Observe("flush", 0.125)
	m.AddVolume("data.bytes", 4096)
	m.Set("session.epoch", 2)
	var buf bytes.Buffer
	if err := m.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	timings := doc["timings"].(map[string]any)
	flush := timings["flush"].(map[string]any)
	for _, k := range []string{"count", "total", "min", "max", "p50", "p95", "p99"} {
		if _, ok := flush[k]; !ok {
			t.Fatalf("machine report missing %q: %+v", k, flush)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	m := New("live")
	for i := 0; i < 100; i++ {
		m.Observe("writer.pack", 1e-3)
	}
	m.StartSpan("writer.pack", 1, 0).End()

	srv := NewServer(func() Report { return m.Snapshot() })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "writer.pack") || !strings.Contains(metrics, "p95=") {
		t.Fatalf("/metrics lacks quantiles:\n%s", metrics)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/trace")), &tr); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("/trace empty")
	}
	var spans Report
	if err := json.Unmarshal([]byte(get("/spans")), &spans); err != nil {
		t.Fatalf("/spans invalid: %v", err)
	}
	if len(spans.Spans) != 1 {
		t.Fatalf("/spans returned %d spans, want 1", len(spans.Spans))
	}
	var full Report
	if err := json.Unmarshal([]byte(get("/report")), &full); err != nil {
		t.Fatalf("/report invalid: %v", err)
	}
	if full.Timings["writer.pack"].Count != 101 {
		t.Fatalf("/report count = %d, want 101", full.Timings["writer.pack"].Count)
	}
}

func TestSteeringTriggersOnSustainedInterference(t *testing.T) {
	m := New("sim")
	st := &Steering{Point: "sim.interval", Baseline: "sim.compute", Threshold: 1.10, Patience: 2}

	// Epochs 0..9: baseline 1s; interference ramps from 1.0x to 1.45x in
	// 0.05 steps. The per-epoch ratio first exceeds 1.10 at epoch 3; with
	// patience 2 the trigger fires at epoch 4.
	firedAt := -1
	for e := 0; e < 10; e++ {
		m.Observe("sim.compute", 1.0)
		m.Observe("sim.interval", 1.0+0.05*float64(e))
		if st.Observe(m.Snapshot()) {
			firedAt = e
		}
	}
	if firedAt != 4 {
		t.Fatalf("fired at epoch %d, want 4 (threshold crossing + patience)", firedAt)
	}
	if !st.Fired() {
		t.Fatal("Fired() false after trigger")
	}
	if st.Epochs() != 10 {
		t.Fatalf("epochs = %d", st.Epochs())
	}
	// Signal keeps tracking the *latest* epoch after firing (delta, not
	// cumulative mean): epoch 9 observed 1.45/1.0.
	if got := st.LastSignal(); got < 1.40 || got > 1.50 {
		t.Fatalf("last signal %v, want ~1.45", got)
	}
}

func TestSteeringDoesNotFireBelowThreshold(t *testing.T) {
	m := New("sim")
	st := &Steering{Point: "sim.interval", Baseline: "sim.compute", Threshold: 1.10, Patience: 1}
	for e := 0; e < 20; e++ {
		m.Observe("sim.compute", 1.0)
		m.Observe("sim.interval", 1.05) // steady 5%: under threshold
		if st.Observe(m.Snapshot()) {
			t.Fatalf("fired at %d on sub-threshold signal", e)
		}
	}
	// A single spike with patience 2 must not fire either.
	st2 := &Steering{Point: "sim.interval", Baseline: "sim.compute", Threshold: 1.10, Patience: 2}
	m2 := New("sim2")
	for e := 0; e < 10; e++ {
		m2.Observe("sim.compute", 1.0)
		if e == 5 {
			m2.Observe("sim.interval", 2.0) // one-epoch spike
		} else {
			m2.Observe("sim.interval", 1.0)
		}
		if st2.Observe(m2.Snapshot()) {
			t.Fatalf("patience 2 fired on a single spike (epoch %d)", e)
		}
	}
}

func TestSteeringCustomSignal(t *testing.T) {
	st := &Steering{
		Signal:    func(r Report) float64 { return float64(r.Gauges["mpki.shared"]) / 100 },
		Threshold: 0.5,
	}
	rep := Report{Gauges: map[string]int64{"mpki.shared": 40}}
	if st.Observe(rep) {
		t.Fatal("fired below threshold")
	}
	rep.Gauges["mpki.shared"] = 80
	if !st.Observe(rep) {
		t.Fatal("custom signal did not fire")
	}
	if st.Observe(rep) {
		t.Fatal("re-fired")
	}
}

package monitor

import "sync"

// Steering closes the paper's monitor → placement loop (Section II.G:
// "monitoring data ... can be gathered online and transferred to the
// analytics side [which] can then use it to dynamically schedule data
// movement and decide the placement"): it consumes a stream of merged
// per-epoch reports and fires when an observed interference signal stays
// above a threshold for Patience consecutive epochs.
//
// The default signal is the ratio of the *per-epoch deltas* of two timing
// points — an observed interval (Point, e.g. "sim.interval") over its
// clean baseline (Baseline, e.g. "sim.compute"). Reports are cumulative,
// so differencing consecutive reports isolates what the latest epoch
// contributed; a ratio of 1.10 means the simulation's intervals ran 10%
// over baseline during that epoch. A custom Signal callback replaces the
// ratio entirely.
type Steering struct {
	// Point and Baseline name the timing points whose delta-mean ratio is
	// the default interference signal.
	Point    string
	Baseline string
	// Signal, when non-nil, replaces the default: it receives the latest
	// cumulative report and returns the interference signal.
	Signal func(Report) float64
	// Threshold is the signal level that counts as interference.
	Threshold float64
	// Patience is how many consecutive epochs must exceed Threshold
	// before the trigger fires (values < 1 behave as 1), so a single
	// noisy epoch cannot flip the placement.
	Patience int

	mu      sync.Mutex
	prev    Report
	hasPrev bool
	streak  int
	fired   bool
	last    float64
	epochs  int64
}

// Observe feeds one merged per-epoch report. It returns true exactly
// once: on the epoch the trigger first fires. Further reports keep
// updating LastSignal but never re-fire.
func (s *Steering) Observe(rep Report) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochs++
	sig := s.signalLocked(rep)
	s.last = sig
	s.prev = rep
	s.hasPrev = true
	if s.fired {
		return false
	}
	if sig > s.Threshold {
		s.streak++
	} else {
		s.streak = 0
	}
	patience := s.Patience
	if patience < 1 {
		patience = 1
	}
	if s.streak >= patience {
		s.fired = true
		return true
	}
	return false
}

// signalLocked computes the interference signal for the latest epoch.
func (s *Steering) signalLocked(rep Report) float64 {
	if s.Signal != nil {
		return s.Signal(rep)
	}
	cur, base := rep.Timings[s.Point], rep.Timings[s.Baseline]
	var prevCur, prevBase TimingStat
	if s.hasPrev {
		prevCur = s.prev.Timings[s.Point]
		prevBase = s.prev.Timings[s.Baseline]
	}
	dCurN := cur.Count - prevCur.Count
	dBaseN := base.Count - prevBase.Count
	if dCurN <= 0 || dBaseN <= 0 {
		return 0
	}
	dCur := (cur.Total - prevCur.Total) / float64(dCurN)
	dBase := (base.Total - prevBase.Total) / float64(dBaseN)
	if dBase <= 0 {
		return 0
	}
	return dCur / dBase
}

// Fired reports whether the trigger has fired.
func (s *Steering) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// LastSignal returns the most recently computed interference signal.
func (s *Steering) LastSignal() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Epochs returns how many reports have been observed.
func (s *Steering) Epochs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

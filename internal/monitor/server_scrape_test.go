package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestServerConcurrentScrape hammers the snapshot endpoints from several
// HTTP clients while writer goroutines observe timings and record spans
// as fast as they can. Run under -race (make ci does) this proves the
// endpoints serve from copied snapshots: no lock is held across JSON
// encoding, no scrape tears a live map or the span ring, and every
// response is a complete, decodable report whose span window is
// consistent with its cursor.
func TestServerConcurrentScrape(t *testing.T) {
	m := New("scrape")
	m.SetIdentity("scrape-daemon", "testnode")
	srv := NewServer(func() Report { return m.Snapshot() })
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close() //nolint:errcheck

	var stop atomic.Bool
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for step := int64(0); !stop.Load(); step++ {
				sp := m.StartSpan("writer.pack", step, w).SetEpoch(1).SetScope("t/gts")
				m.Observe("flush", 0.0001)
				m.AddVolume("data.bytes", 64)
				m.Set("session.epoch", 1)
				sp.End()
			}
		}()
	}

	var scrapers sync.WaitGroup
	errCh := make(chan error, 64)
	for c := 0; c < 3; c++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				for _, ep := range []string{"/spans", "/report", "/metrics", "/trace"} {
					resp, err := http.Get("http://" + addr + ep)
					if err != nil {
						errCh <- fmt.Errorf("GET %s: %w", ep, err)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close() //nolint:errcheck
					if err != nil {
						errCh <- fmt.Errorf("read %s: %w", ep, err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("%s: status %d", ep, resp.StatusCode)
						return
					}
					if ep != "/spans" && ep != "/report" {
						continue
					}
					var rep Report
					if err := json.Unmarshal(body, &rep); err != nil {
						errCh <- fmt.Errorf("decode %s: %w", ep, err)
						return
					}
					if rep.Daemon != "scrape-daemon" || rep.PID == 0 {
						errCh <- fmt.Errorf("%s: identity missing: daemon=%q pid=%d", ep, rep.Daemon, rep.PID)
						return
					}
					// Window consistency: the buffered spans cover ring
					// positions [cursor-len, cursor), so cursor must bound
					// both the window length and the drop count.
					if int64(len(rep.Spans)) > rep.SpanCursor {
						errCh <- fmt.Errorf("%s: %d spans > cursor %d", ep, len(rep.Spans), rep.SpanCursor)
						return
					}
					if rep.SpansDropped != 0 && rep.SpansDropped+int64(len(rep.Spans)) != rep.SpanCursor {
						errCh <- fmt.Errorf("%s: dropped %d + buffered %d != cursor %d",
							ep, rep.SpansDropped, len(rep.Spans), rep.SpanCursor)
						return
					}
				}
			}
		}()
	}
	scrapers.Wait()
	stop.Store(true)
	writers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

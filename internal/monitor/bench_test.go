package monitor

import "testing"

// The Nop fast path: a nil *Monitor must cost ~nothing, so instrumented
// code can stay instrumented in production builds. BenchmarkSpanNop vs.
// BenchmarkBaseline is the comparison `make ci` gates on (nop_gate_test.go
// enforces the budget recorded in BENCH_monitor.json).

var sinkU uint64

// benchWork is the stand-in for "uninstrumented code": enough real work
// that the comparison is not 0ns-vs-0ns compiler folding.
func benchWork(i int) uint64 {
	return uint64(i)*2654435761 ^ sinkU
}

func BenchmarkBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU = benchWork(i)
	}
}

func BenchmarkSpanNop(b *testing.B) {
	var m *Monitor // disabled monitoring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := m.StartSpan("writer.pack", int64(i), 0).SetEpoch(1)
		sinkU = benchWork(i)
		sp.End()
	}
}

func BenchmarkObserveNop(b *testing.B) {
	var m *Monitor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe("point", 1e-3)
		sinkU = benchWork(i)
	}
}

func BenchmarkSpanRecorded(b *testing.B) {
	m := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := m.StartSpan("writer.pack", int64(i), 0).SetEpoch(1)
		sinkU = benchWork(i)
		sp.End()
	}
}

func BenchmarkObserve(b *testing.B) {
	m := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe("point", 1e-3)
	}
}

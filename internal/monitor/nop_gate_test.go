//go:build !race

package monitor

import (
	"encoding/json"
	"os"
	"testing"
)

// TestNopOverheadBudget is the CI regression gate for the disabled-path
// cost: the per-iteration overhead of a nil-monitor span (StartSpan +
// SetEpoch + End around real work) relative to the uninstrumented
// baseline must stay under the budget recorded in BENCH_monitor.json.
// The budget is deliberately generous — the measured overhead is ~20ns
// (three value-receiver calls copying the span handle); the gate catches
// an accidental allocation or lock on the nil path, not scheduler jitter. Excluded under -race
// (instrumented builds time nothing meaningful).
func TestNopOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("../../BENCH_monitor.json")
	if err != nil {
		t.Fatalf("BENCH_monitor.json missing (run `make bench-monitor` to record): %v", err)
	}
	var budget struct {
		NopSpanBudgetNs float64 `json:"nop_span_budget_ns"`
	}
	if err := json.Unmarshal(blob, &budget); err != nil {
		t.Fatalf("BENCH_monitor.json: %v", err)
	}
	if budget.NopSpanBudgetNs <= 0 {
		t.Fatal("BENCH_monitor.json has no nop_span_budget_ns")
	}

	base := testing.Benchmark(BenchmarkBaseline)
	nop := testing.Benchmark(BenchmarkSpanNop)
	overhead := float64(nop.NsPerOp()) - float64(base.NsPerOp())
	if overhead < 0 {
		overhead = 0 // within noise: the nop path measured faster
	}
	t.Logf("baseline %dns/op, nop span %dns/op, overhead %.1fns (budget %.1fns)",
		base.NsPerOp(), nop.NsPerOp(), overhead, budget.NopSpanBudgetNs)
	if overhead > budget.NopSpanBudgetNs {
		t.Fatalf("Nop-monitor span overhead %.1fns/op exceeds budget %.1fns/op (BENCH_monitor.json)",
			overhead, budget.NopSpanBudgetNs)
	}
	if allocs := nop.AllocsPerOp(); allocs != 0 {
		t.Fatalf("Nop-monitor span path allocates (%d allocs/op)", allocs)
	}
}

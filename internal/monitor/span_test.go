package monitor

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fakeClock is a hand-advanced Clock for deterministic span times.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestStartUsesInjectedClock(t *testing.T) {
	m := New("virt")
	c := &fakeClock{}
	m.SetClock(c)
	stop := m.Start("op")
	c.t = 5.0 // five *virtual* seconds elapse; wall time is nanoseconds
	stop()
	st := m.Snapshot().Timings["op"]
	if st.Count != 1 || math.Abs(st.Total-5.0) > 1e-12 {
		t.Fatalf("virtual-clock Start observed %+v, want one 5s sample", st)
	}
	// Restoring the nil clock falls back to wall time: the sample must be
	// tiny, not another 5s (i.e. no stale virtual base leaks through).
	m.SetClock(nil)
	stop = m.Start("wall")
	stop()
	if got := m.Snapshot().Timings["wall"].Max; got > 1.0 {
		t.Fatalf("wall-clock sample after SetClock(nil) = %v s, want < 1s", got)
	}
}

func TestSpanLifecycleAndAttributes(t *testing.T) {
	m := New("writers")
	c := &fakeClock{t: 10}
	m.SetClock(c)

	root := m.StartSpan("writer.flush", 7, 0).SetEpoch(2)
	c.t = 10.5
	child := m.StartSpan("writer.pack", 7, 1).SetEpoch(2).SetParent(root.SpanID())
	c.t = 11
	child.End()
	c.t = 12
	root.End()

	rep := m.Snapshot()
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rep.Spans))
	}
	// Ring order is by completion; the child ended first.
	ch, rt := rep.Spans[0], rep.Spans[1]
	if ch.Point != "writer.pack" || ch.Step != 7 || ch.Epoch != 2 || ch.Rank != 1 {
		t.Fatalf("child attrs wrong: %+v", ch)
	}
	if ch.Parent != rt.ID {
		t.Fatalf("child parent %d != root id %d", ch.Parent, rt.ID)
	}
	if ch.Origin != "writers" || rt.Origin != "writers" {
		t.Fatalf("origin not stamped: %+v %+v", ch, rt)
	}
	if math.Abs(ch.Start-10.5) > 1e-12 || math.Abs(ch.Dur-0.5) > 1e-12 {
		t.Fatalf("child times wrong: start=%v dur=%v", ch.Start, ch.Dur)
	}
	if math.Abs(rt.Start-10) > 1e-12 || math.Abs(rt.Dur-2) > 1e-12 {
		t.Fatalf("root times wrong: start=%v dur=%v", rt.Start, rt.Dur)
	}
	// Span durations feed the point histograms.
	if st := rep.Timings["writer.pack"]; st.Count != 1 || math.Abs(st.Total-0.5) > 1e-12 {
		t.Fatalf("span did not observe histogram: %+v", st)
	}
}

func TestSpanRingBufferBounded(t *testing.T) {
	m := New("ring")
	m.SetSpanCapacity(4)
	c := &fakeClock{}
	m.SetClock(c)
	for i := 0; i < 10; i++ {
		c.t = float64(i)
		m.RecordSpan(Span{Point: "p", Step: int64(i), Start: float64(i), Dur: 0.1})
	}
	rep := m.Snapshot()
	if len(rep.Spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(rep.Spans))
	}
	if rep.SpansDropped != 6 {
		t.Fatalf("dropped = %d, want 6", rep.SpansDropped)
	}
	// Oldest-first: steps 6,7,8,9 survive.
	for i, sp := range rep.Spans {
		if sp.Step != int64(6+i) {
			t.Fatalf("span %d has step %d, want %d (oldest-first order)", i, sp.Step, 6+i)
		}
	}
	// Histogram still saw all 10.
	if st := rep.Timings["p"]; st.Count != 10 {
		t.Fatalf("histogram count %d, want 10 (ring bound must not drop observations)", st.Count)
	}
}

func TestSpanCapacityZeroDisables(t *testing.T) {
	m := New("off")
	m.SetSpanCapacity(0)
	m.StartSpan("x", 1, 0).End()
	rep := m.Snapshot()
	if len(rep.Spans) != 0 {
		t.Fatalf("spans recorded with capacity 0")
	}
	if rep.Timings["x"].Count != 1 {
		t.Fatalf("histogram observation lost when spans disabled")
	}
}

func TestNilMonitorIsNop(t *testing.T) {
	var m *Monitor
	// Every method must be callable on nil without panicking.
	m.SetClock(&fakeClock{})
	m.SetSpanCapacity(8)
	m.Start("a")()
	m.Observe("a", 1)
	m.Declare("a")
	m.AddVolume("a", 1)
	m.Incr("a", 1)
	m.Set("a", 1)
	_ = m.Gauge("a")
	m.RecordAlloc(1)
	m.RecordFree(1)
	sp := m.StartSpan("a", 1, 0).SetEpoch(1).SetParent(2)
	if sp.SpanID() != 0 {
		t.Fatalf("nil monitor allocated a span id")
	}
	sp.End()
	m.RecordSpan(Span{Point: "a"})
	rep := m.Snapshot()
	if rep.Name != "" || len(rep.Timings) != 0 || len(rep.Spans) != 0 {
		t.Fatalf("nil monitor snapshot not empty: %+v", rep)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	m := New("q")
	// 90 fast samples at 1ms, 9 at 100ms, 1 at 1.6s: p50 lands in the 1ms
	// bucket, p95 in the 100ms bucket, p99 at the border of the tail.
	for i := 0; i < 90; i++ {
		m.Observe("lat", 1e-3)
	}
	for i := 0; i < 9; i++ {
		m.Observe("lat", 0.1)
	}
	m.Observe("lat", 1.6)
	st := m.Snapshot().Timings["lat"]
	if st.Count != 100 {
		t.Fatalf("count %d", st.Count)
	}
	p50, p95, p99 := st.P50(), st.P95(), st.P99()
	// Log2 buckets are accurate to sqrt(2): check band membership.
	if p50 < 0.5e-3 || p50 > 2e-3 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p95 < 0.05 || p95 > 0.2 {
		t.Fatalf("p95 = %v, want ~100ms", p95)
	}
	if p99 < 0.05 || p99 > 1.7 {
		t.Fatalf("p99 = %v, want in the tail band", p99)
	}
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	// Quantiles clamp to the exact envelope.
	if st.Quantile(0) != st.Min || st.Quantile(1) != st.Max {
		t.Fatalf("q0/q1 = %v/%v, want %v/%v", st.Quantile(0), st.Quantile(1), st.Min, st.Max)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	if b := histBucket(1.0); b != histZero {
		t.Fatalf("bucket(1s) = %d, want %d", b, histZero)
	}
	if b := histBucket(0); b != 0 {
		t.Fatalf("bucket(0) = %d, want 0", b)
	}
	if b := histBucket(-5); b != 0 {
		t.Fatalf("bucket(-5) = %d, want 0", b)
	}
	if b := histBucket(math.Inf(1)); b != HistBuckets-1 {
		t.Fatalf("bucket(+Inf) = %d, want %d", b, HistBuckets-1)
	}
	if b := histBucket(1e-300); b != 0 {
		t.Fatalf("tiny duration bucket = %d, want clamp to 0", b)
	}
}

func TestEmptyTimingStatJSON(t *testing.T) {
	// Regression: a point created but never observed used to serialize
	// Min as +Inf, which encoding/json rejects — json.Marshal of the whole
	// snapshot failed, silently dropping the writer's online reports.
	m := New("empty")
	m.Declare("never.observed")
	snap := m.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal of snapshot with empty point: %v", err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	st, ok := back.Timings["never.observed"]
	if !ok {
		t.Fatalf("empty point lost in round trip")
	}
	if st.Count != 0 {
		t.Fatalf("count %d, want 0", st.Count)
	}
	// The restored empty stat keeps the internal invariant so a later
	// merge with real data takes the data's extrema.
	merged := Merge("m", back, func() Report {
		mm := New("x")
		mm.Observe("never.observed", 0.25)
		return mm.Snapshot()
	}())
	got := merged.Timings["never.observed"]
	if got.Count != 1 || got.Min != 0.25 || got.Max != 0.25 {
		t.Fatalf("merge after empty round trip: %+v", got)
	}
	// Human trace must render 0, not +Inf, for the empty point.
	var sb strings.Builder
	if err := snap.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Inf") {
		t.Fatalf("WriteTrace leaked Inf:\n%s", sb.String())
	}
}

func TestTimingStatJSONRoundTripWithData(t *testing.T) {
	m := New("rt")
	for _, d := range []float64{1e-4, 2e-4, 5e-2, 1.5} {
		m.Observe("lat", d)
	}
	blob, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	want := m.Snapshot().Timings["lat"]
	got := back.Timings["lat"]
	if got.Count != want.Count || got.Total != want.Total || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("scalar fields changed: got %+v want %+v", got, want)
	}
	if got.Hist != want.Hist {
		t.Fatalf("histogram buckets changed in round trip")
	}
	if got.P95() != want.P95() {
		t.Fatalf("p95 changed: %v -> %v", want.P95(), got.P95())
	}
}

package monitor

import (
	"sync"
	"testing"
)

// Merge edge cases: empty reports, disjoint point sets, gauge
// max-semantics, histogram bucket merging — exercised under -race
// together with concurrent Observe/Snapshot (see `make race`).

func TestMergeEmptyReports(t *testing.T) {
	if got := Merge("none"); len(got.Timings) != 0 || len(got.Spans) != 0 {
		t.Fatalf("merge of nothing not empty: %+v", got)
	}
	m := New("a")
	m.Observe("x", 1)
	got := Merge("m", m.Snapshot(), Report{}, (*Monitor)(nil).Snapshot())
	if st := got.Timings["x"]; st.Count != 1 || st.Total != 1 {
		t.Fatalf("merging empty reports disturbed data: %+v", st)
	}
}

func TestMergeDisjointPoints(t *testing.T) {
	a, b := New("a"), New("b")
	a.Observe("pack", 0.5)
	a.AddVolume("tx", 10)
	b.Observe("send", 0.25)
	b.AddVolume("rx", 20)
	b.Incr("msgs", 3)
	got := Merge("m", a.Snapshot(), b.Snapshot())
	if got.Timings["pack"].Count != 1 || got.Timings["send"].Count != 1 {
		t.Fatalf("disjoint timings lost: %+v", got.Timings)
	}
	if got.Volumes["tx"] != 10 || got.Volumes["rx"] != 20 || got.Counts["msgs"] != 3 {
		t.Fatalf("disjoint volumes/counts lost: %+v %+v", got.Volumes, got.Counts)
	}
}

func TestMergeGaugeMaxSemantics(t *testing.T) {
	a, b, c := New("a"), New("b"), New("c")
	a.Set("session.epoch", 2)
	b.Set("session.epoch", 3) // a rank that raced ahead surfaces
	c.Set("session.epoch", 1)
	c.Set("queue.depth", 7) // only one rank reports this gauge
	got := Merge("m", a.Snapshot(), b.Snapshot(), c.Snapshot())
	if got.Gauges["session.epoch"] != 3 {
		t.Fatalf("gauge merge = %d, want max 3", got.Gauges["session.epoch"])
	}
	if got.Gauges["queue.depth"] != 7 {
		t.Fatalf("solo gauge lost: %+v", got.Gauges)
	}
}

func TestMergeHistogramBuckets(t *testing.T) {
	a, b := New("a"), New("b")
	for i := 0; i < 50; i++ {
		a.Observe("lat", 1e-3) // one bucket on rank a
	}
	for i := 0; i < 50; i++ {
		b.Observe("lat", 1.0) // a different bucket on rank b
	}
	got := Merge("m", a.Snapshot(), b.Snapshot()).Timings["lat"]
	if got.Count != 100 {
		t.Fatalf("count %d", got.Count)
	}
	if got.Hist[histBucket(1e-3)] != 50 || got.Hist[histBucket(1.0)] != 50 {
		t.Fatalf("bucket merge wrong: %v in 1ms bucket, %v in 1s bucket",
			got.Hist[histBucket(1e-3)], got.Hist[histBucket(1.0)])
	}
	// The merged quantiles straddle the two populations.
	if p50 := got.P50(); p50 > 2e-3 {
		t.Fatalf("merged p50 = %v, want in the fast bucket", p50)
	}
	if p95 := got.P95(); p95 < 0.5 {
		t.Fatalf("merged p95 = %v, want in the slow bucket", p95)
	}
	if got.Min != 1e-3 || got.Max != 1.0 {
		t.Fatalf("extrema: min=%v max=%v", got.Min, got.Max)
	}
}

func TestMergeSpansAndDropCounts(t *testing.T) {
	a, b := New("a"), New("b")
	a.SetSpanCapacity(2)
	a.RecordSpan(Span{Point: "x", Start: 3, Dur: 1})
	a.RecordSpan(Span{Point: "x", Start: 5, Dur: 1})
	a.RecordSpan(Span{Point: "x", Start: 7, Dur: 1}) // drops the first
	b.RecordSpan(Span{Point: "y", Start: 4, Dur: 1})
	got := Merge("m", a.Snapshot(), b.Snapshot())
	if len(got.Spans) != 3 || got.SpansDropped != 1 {
		t.Fatalf("spans=%d dropped=%d, want 3/1", len(got.Spans), got.SpansDropped)
	}
	// Timestamp-ordered across origins.
	for i := 1; i < len(got.Spans); i++ {
		if got.Spans[i].Start < got.Spans[i-1].Start {
			t.Fatalf("merged spans unsorted: %+v", got.Spans)
		}
	}
}

// TestConcurrentObserveSnapshotMerge hammers Observe/StartSpan against
// Snapshot+Merge from other goroutines; -race proves the paths are safe.
func TestConcurrentObserveSnapshotMerge(t *testing.T) {
	m1, m2 := New("w"), New("r")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, m := range []*Monitor{m1, m2} {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Observe("lat", float64(i%7)*1e-4)
				m.StartSpan("stage", int64(i), i%4).SetEpoch(1).End()
				m.Set("epoch", int64(i%3))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		merged := Merge("live", m1.Snapshot(), m2.Snapshot())
		if merged.Timings["lat"].Count < 0 {
			t.Fatal("impossible")
		}
	}
	close(stop)
	wg.Wait()
	final := Merge("final", m1.Snapshot(), m2.Snapshot())
	lat := final.Timings["lat"]
	var inBuckets int64
	for _, n := range lat.Hist {
		inBuckets += n
	}
	if inBuckets != lat.Count {
		t.Fatalf("histogram mass %d != count %d", inBuckets, lat.Count)
	}
}

package core

import (
	"testing"

	"flexio/internal/flight"
	"flexio/internal/ndarray"
)

// TestStreamJournalsCausalChain: a journaled stream records the step
// chain writer.flush -> writer.pack -> send.<transport> with explicit
// causal parents, and the reader side lands accept/assemble events on
// the same steps — the raw material for live critical-path analysis.
func TestStreamJournalsCausalChain(t *testing.T) {
	h := newHarness()
	j := flight.NewJournal(0)
	shape := []int64{16, 16}
	global := ndarray.BoxFromShape(shape)
	const steps = 3
	wg, err := NewWriterGroup(h.net, h.dir, "flight-chain", 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "flight-chain", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.SetJournal(j)
	rg.SetJournal(j)

	done := make(chan error, 1)
	go func() {
		wr := wg.Writer(0)
		for s := 0; s < steps; s++ {
			if err := wr.BeginStep(int64(s)); err != nil {
				done <- err
				return
			}
			meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: global}
			if err := wr.Write(meta, fillArrayBytes(global, global)); err != nil {
				done <- err
				return
			}
			if err := wr.EndStep(); err != nil {
				done <- err
				return
			}
		}
		done <- wg.Close()
	}()
	rd := rg.Reader(0)
	if err := rd.SelectArray("f", global); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if _, ok := rd.BeginStep(); !ok {
			t.Fatalf("step %d: unexpected EOS", s)
		}
		data, _, err := rd.ReadArray("f")
		if err != nil {
			t.Fatal(err)
		}
		rd.ReleaseArray(data)
		rd.EndStep()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rg.Close()

	evs := j.Snapshot()
	byID := map[flight.EventID]*flight.Event{}
	for i := range evs {
		byID[evs[i].ID] = &evs[i]
	}
	counts := map[string]int{}
	for i := range evs {
		ev := &evs[i]
		counts[ev.Point]++
		switch ev.Point {
		case "writer.pack", "send.chan":
			p := byID[ev.Parent]
			if p == nil || p.Point != "writer.flush" || p.Step != ev.Step {
				t.Fatalf("%s (step %d) parent = %+v, want same-step writer.flush", ev.Point, ev.Step, p)
			}
		case "writer.flush":
			if ev.Kind != flight.KindCompute || ev.Dur <= 0 {
				t.Fatalf("flush event lacks extent: %+v", ev)
			}
		}
	}
	for _, pt := range []string{"writer.flush", "writer.pack", "send.chan", "reader.accept", "reader.assemble"} {
		if counts[pt] < steps {
			t.Fatalf("point %q journaled %d times, want >= %d (counts %v)", pt, counts[pt], steps, counts)
		}
	}

	// The journaled steps analyze into per-step critical paths.
	an := flight.Analyze(evs)
	if len(an.Steps) < steps {
		t.Fatalf("analysis covers %d steps, want >= %d", len(an.Steps), steps)
	}
	for i := range an.Steps {
		if an.Steps[i].EdgeSum() <= 0 {
			t.Fatalf("step %d has an empty critical path", an.Steps[i].Step)
		}
	}
}

package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexio/internal/evpath"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// waitWriterState polls until the writer session reaches the given state
// — the test-side stand-in for "the reconfig request is parked".
func waitWriterState(t *testing.T, g *WriterGroup, want SessionState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.SessionState() != want {
		if time.Now().After(deadline) {
			t.Errorf("writer session stuck in %v, want %v", g.SessionState(), want)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// writeFieldSteps drives one writer rank through steps [from, to).
func writeFieldSteps(t *testing.T, wr *Writer, box ndarray.Box, shape []int64, global ndarray.Box, from, to int) {
	t.Helper()
	for s := from; s < to; s++ {
		if err := wr.BeginStep(int64(s)); err != nil {
			t.Errorf("writer %d: %v", wr.Rank, err)
			return
		}
		meta := VarMeta{Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
			GlobalShape: shape, Box: box}
		if err := wr.Write(meta, fillArrayBytes(box, global)); err != nil {
			t.Errorf("writer %d: %v", wr.Rank, err)
			return
		}
		if err := wr.EndStep(); err != nil {
			t.Errorf("writer %d step %d: %v", wr.Rank, s, err)
			return
		}
	}
}

// readFieldSteps drives one reader rank through steps [from, to),
// verifying every delivered byte against the ground-truth pattern — the
// byte-identical-to-baseline check: fillArrayBytes(box, global) is
// exactly what a never-reconfigured run delivers for that selection.
func readFieldSteps(t *testing.T, rd *Reader, global ndarray.Box, from, to int) {
	t.Helper()
	for s := from; s < to; s++ {
		step, ok := rd.BeginStep()
		if !ok || step != int64(s) {
			t.Errorf("reader %d: step %d ok=%v, want %d", rd.Rank, step, ok, s)
			return
		}
		data, box, err := rd.ReadArray("field")
		if err != nil {
			t.Errorf("reader %d step %d: %v", rd.Rank, s, err)
			return
		}
		if !bytes.Equal(data, fillArrayBytes(box, global)) {
			t.Errorf("reader %d step %d: data differs from baseline", rd.Rank, s)
			return
		}
		if err := rd.EndStep(); err != nil {
			t.Errorf("reader %d step %d: %v", rd.Rank, s, err)
			return
		}
	}
}

// TestMidRunPlacementSwitch is the issue's acceptance scenario: a 2-writer
// stream feeds 2 readers for 3 steps, the reader group reconfigures to 3
// ranks with a different decomposition AND a different node placement
// (flipping at least one pair from shm to rdma), and 3 more steps flow.
// Every step must be byte-identical to a never-reconfigured baseline and
// exactly one reconfiguration must be recorded.
func TestMidRunPlacementSwitch(t *testing.T) {
	const nw, preSteps, postSteps = 2, 3, 3
	h := newHarness()
	shape := []int64{24, 24}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	oldDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))
	newDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(3, 2))

	wm := monitor.New("writers")
	rm := monitor.New("readers")
	// Initial placement: everything on node 0 over shm.
	opts := Options{
		Transport: func(w, r int) (evpath.TransportKind, int, int) {
			return evpath.ShmTransport, 0, 0
		},
		WriterNode: func(w int) int { return 0 },
	}
	wgp, err := NewWriterGroup(h.net, h.dir, "switch", nw, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "switch", 2, rm)
	if err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wgp.Writer(w)
			writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, 0, preSteps)
			// Hold the step-boundary until the reconfig request is parked so
			// the boundary is deterministic (no replay in this scenario).
			waitWriterState(t, wgp, StateReconfiguring)
			writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, preSteps, preSteps+postSteps)
		}()
	}

	var olds sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		olds.Add(1)
		go func() {
			defer olds.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", oldDec.Boxes[r]); err != nil {
				t.Error(err)
				return
			}
			readFieldSteps(t, rd, global, 0, preSteps)
		}()
	}
	olds.Wait()

	// Re-place: 3 ranks, new decomposition; rank 0 stays on the writers'
	// node (shm), ranks 1-2 move to node 1 (rdma) — the shm->rdma flip.
	err = rg.Reconfigure(ReconfigSpec{
		NReaders: 3,
		Arrays:   map[string][]ndarray.Box{"field": newDec.Boxes},
		Nodes:    []int{0, 1, 1},
	})
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	var news sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		news.Add(1)
		go func() {
			defer news.Done()
			rd := rg.Reader(r)
			readFieldSteps(t, rd, global, preSteps, preSteps+postSteps)
			if _, ok := rd.BeginStep(); ok {
				t.Errorf("reader %d: expected EOS", r)
			}
		}()
	}
	writers.Wait()
	if err := wgp.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}
	news.Wait()
	rg.Close()

	if e := wgp.SessionEpoch(); e != 2 {
		t.Errorf("writer epoch = %d, want 2", e)
	}
	if e := rg.SessionEpoch(); e != 2 {
		t.Errorf("reader epoch = %d, want 2", e)
	}
	ws := wm.Snapshot()
	rs := rm.Snapshot()
	if ws.Gauges["session.epoch"] != 2 {
		t.Errorf("writer session.epoch gauge = %d, want 2", ws.Gauges["session.epoch"])
	}
	if ws.Counts["reconfig.count"] != 1 {
		t.Errorf("writer reconfig.count = %d, want 1", ws.Counts["reconfig.count"])
	}
	if rs.Counts["reconfig.count"] != 1 {
		t.Errorf("reader reconfig.count = %d, want 1", rs.Counts["reconfig.count"])
	}
	if ws.Counts["reconfig.drain_ns"] <= 0 {
		t.Errorf("reconfig.drain_ns not recorded")
	}
	// Epoch 1 dialed 2x2 pairs over shm; epoch 2 dialed 2x3 pairs of which
	// rank 0's are shm and ranks 1-2's are rdma.
	if got := ws.Counts["conn.dial.shm"]; got != 6 {
		t.Errorf("conn.dial.shm = %d, want 6", got)
	}
	if got := ws.Counts["conn.dial.rdma"]; got != 4 {
		t.Errorf("conn.dial.rdma = %d, want 4", got)
	}
}

// TestReconfigReplaysInFlightSteps covers the no-step-lost guarantee: the
// writer flushes a step under the old regime after the readers stopped
// consuming; the reconfigured ranks must still observe it, byte-identical,
// assembled locally from the buffered old-rank pieces. A scalar rides
// along to cover non-array replay.
func TestReconfigReplaysInFlightSteps(t *testing.T) {
	const nw = 2
	h := newHarness()
	shape := []int64{24, 24}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	oldDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))
	newDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(3, 2))

	wgp, err := NewWriterGroup(h.net, h.dir, "replay", nw, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "replay", 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	writeStep := func(wr *Writer, s int) {
		if err := wr.BeginStep(int64(s)); err != nil {
			t.Errorf("writer %d: %v", wr.Rank, err)
			return
		}
		meta := VarMeta{Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
			GlobalShape: shape, Box: wdec.Boxes[wr.Rank]}
		if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[wr.Rank], global)); err != nil {
			t.Errorf("writer %d: %v", wr.Rank, err)
			return
		}
		if wr.Rank == 0 {
			val := make([]byte, 8)
			binary.LittleEndian.PutUint64(val, uint64(1000+s))
			if err := wr.Write(VarMeta{Name: "time", Kind: ScalarVar, ElemSize: 8}, val); err != nil {
				t.Errorf("writer %d: %v", wr.Rank, err)
				return
			}
		}
		if err := wr.EndStep(); err != nil {
			t.Errorf("writer %d step %d: %v", wr.Rank, s, err)
		}
	}

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wgp.Writer(w)
			// Steps 0-3 flush under the old regime — the readers only consume
			// 0-2 before reconfiguring, so step 3 is in flight and must be
			// replayed. Steps 4-5 flush under the new regime.
			for s := 0; s < 4; s++ {
				writeStep(wr, s)
			}
			waitWriterState(t, wgp, StateReconfiguring)
			for s := 4; s < 6; s++ {
				writeStep(wr, s)
			}
		}()
	}

	var olds sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		olds.Add(1)
		go func() {
			defer olds.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", oldDec.Boxes[r]); err != nil {
				t.Error(err)
				return
			}
			readFieldSteps(t, rd, global, 0, 3)
		}()
	}
	olds.Wait()

	if err := rg.Reconfigure(ReconfigSpec{
		NReaders: 3,
		Arrays:   map[string][]ndarray.Box{"field": newDec.Boxes},
	}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	var news sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		news.Add(1)
		go func() {
			defer news.Done()
			rd := rg.Reader(r)
			for s := 3; s < 6; s++ {
				step, ok := rd.BeginStep()
				if !ok || step != int64(s) {
					t.Errorf("reader %d: step %d ok=%v, want %d", r, step, ok, s)
					return
				}
				data, box, err := rd.ReadArray("field")
				if err != nil {
					t.Errorf("reader %d step %d: %v", r, s, err)
					return
				}
				if !bytes.Equal(data, fillArrayBytes(box, global)) {
					t.Errorf("reader %d step %d: data differs from baseline", r, s)
					return
				}
				val, err := rd.ReadScalar("time")
				if err != nil {
					t.Errorf("reader %d step %d scalar: %v", r, s, err)
					return
				}
				if got := binary.LittleEndian.Uint64(val); got != uint64(1000+s) {
					t.Errorf("reader %d step %d: scalar = %d, want %d", r, s, got, 1000+s)
					return
				}
				rd.EndStep()
			}
			if _, ok := rd.BeginStep(); ok {
				t.Errorf("reader %d: expected EOS", r)
			}
		}()
	}
	writers.Wait()
	wgp.Close()
	news.Wait()
	rg.Close()

	// Replay state must not linger once every new rank consumed it.
	rg.mu.Lock()
	left := len(rg.replay)
	rg.mu.Unlock()
	if left != 0 {
		t.Errorf("%d replay steps retained", left)
	}
}

// TestReconfigSelectionChangeAllCachingLevels changes only the selection
// decomposition (same rank count, same placement) mid-run under each of
// the three handshake caching levels; the cached state on both sides must
// be invalidated by the epoch bump, never served stale.
func TestReconfigSelectionChangeAllCachingLevels(t *testing.T) {
	for _, level := range []CachingLevel{NoCaching, CachingLocal, CachingAll} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			const nw, preSteps, postSteps = 3, 3, 3
			h := newHarness()
			shape := []int64{24, 24}
			global := ndarray.BoxFromShape(shape)
			wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
			// Same N, orthogonal split: every writer-reader overlap changes.
			oldDec, _ := ndarray.BlockDecompose(shape, []int{2, 1})
			newDec, _ := ndarray.BlockDecompose(shape, []int{1, 2})

			stream := fmt.Sprintf("resel-%v", level)
			wgp, err := NewWriterGroup(h.net, h.dir, stream, nw, Options{Caching: level}, nil)
			if err != nil {
				t.Fatal(err)
			}
			rg, err := NewReaderGroup(h.net, h.dir, stream, 2, nil)
			if err != nil {
				t.Fatal(err)
			}

			var writers sync.WaitGroup
			for w := 0; w < nw; w++ {
				w := w
				writers.Add(1)
				go func() {
					defer writers.Done()
					wr := wgp.Writer(w)
					writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, 0, preSteps)
					waitWriterState(t, wgp, StateReconfiguring)
					writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, preSteps, preSteps+postSteps)
				}()
			}
			var olds sync.WaitGroup
			for r := 0; r < 2; r++ {
				r := r
				olds.Add(1)
				go func() {
					defer olds.Done()
					rd := rg.Reader(r)
					if err := rd.SelectArray("field", oldDec.Boxes[r]); err != nil {
						t.Error(err)
						return
					}
					readFieldSteps(t, rd, global, 0, preSteps)
				}()
			}
			olds.Wait()

			if err := rg.Reconfigure(ReconfigSpec{
				NReaders: 2,
				Arrays:   map[string][]ndarray.Box{"field": newDec.Boxes},
			}); err != nil {
				t.Fatalf("Reconfigure: %v", err)
			}

			var news sync.WaitGroup
			for r := 0; r < 2; r++ {
				r := r
				news.Add(1)
				go func() {
					defer news.Done()
					readFieldSteps(t, rg.Reader(r), global, preSteps, preSteps+postSteps)
				}()
			}
			writers.Wait()
			wgp.Close()
			news.Wait()
			rg.Close()
		})
	}
}

// TestReconfigConcurrentWithAsync reconfigures while the writer runs in
// async mode — the request lands while queued steps are still being
// flushed by the background worker; run under -race this doubles as the
// concurrency check on the quiesce path.
func TestReconfigConcurrentWithAsync(t *testing.T) {
	const nw, preSteps, postSteps = 2, 4, 4
	h := newHarness()
	shape := []int64{24, 24}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	oldDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))
	newDec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(3, 2))

	wgp, err := NewWriterGroup(h.net, h.dir, "async-re", nw, Options{Async: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "async-re", 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wgp.Writer(w)
			writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, 0, preSteps)
			// EndStep only queues in async mode: the worker may still be
			// flushing earlier steps when the reconfig request arrives.
			waitWriterState(t, wgp, StateReconfiguring)
			writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, preSteps, preSteps+postSteps)
		}()
	}
	var olds sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		olds.Add(1)
		go func() {
			defer olds.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", oldDec.Boxes[r]); err != nil {
				t.Error(err)
				return
			}
			readFieldSteps(t, rd, global, 0, preSteps)
		}()
	}
	olds.Wait()

	if err := rg.Reconfigure(ReconfigSpec{
		NReaders: 3,
		Arrays:   map[string][]ndarray.Box{"field": newDec.Boxes},
	}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	var news sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		news.Add(1)
		go func() {
			defer news.Done()
			rd := rg.Reader(r)
			readFieldSteps(t, rd, global, preSteps, preSteps+postSteps)
			if _, ok := rd.BeginStep(); ok {
				t.Errorf("reader %d: expected EOS", r)
			}
		}()
	}
	writers.Wait()
	wgp.Close()
	news.Wait()
	rg.Close()
}

// TestWriterBoxChangeCachingAll changes the writer-side decomposition
// mid-run under CACHING_ALL: the cached distribution must be detected as
// stale (fingerprint change), re-exchanged exactly once, and the reader's
// assembly must stay byte-identical.
func TestWriterBoxChangeCachingAll(t *testing.T) {
	const nw, flipAt, steps = 2, 3, 6
	h := newHarness()
	shape := []int64{24, 24}
	global := ndarray.BoxFromShape(shape)
	decA, _ := ndarray.BlockDecompose(shape, []int{2, 1})
	decB, _ := ndarray.BlockDecompose(shape, []int{1, 2})

	wm := monitor.New("writers")
	wgp, err := NewWriterGroup(h.net, h.dir, "wbox", nw, Options{Caching: CachingAll}, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "wbox", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wgp.Writer(w)
			writeFieldSteps(t, wr, decA.Boxes[w], shape, global, 0, flipAt)
			writeFieldSteps(t, wr, decB.Boxes[w], shape, global, flipAt, steps)
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				t.Error(err)
				return
			}
			readFieldSteps(t, rd, global, 0, steps)
		}()
	}
	writers.Wait()
	wgp.Close()
	readers.Wait()
	rg.Close()

	// CACHING_ALL sends the distribution once per distinct decomposition.
	if got := wm.Snapshot().Counts["handshake.writer-dist.sent"]; got != 2 {
		t.Errorf("writer-dist sent %d times, want 2 (one per decomposition)", got)
	}
}

// TestReconfigValidation exercises the request guards.
func TestReconfigValidation(t *testing.T) {
	h := newHarness()
	wgp, _ := NewWriterGroup(h.net, h.dir, "reval", 1, Options{}, nil)
	rg, err := NewReaderGroup(h.net, h.dir, "reval", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wgp.Close()
	defer rg.Close()

	if err := rg.Reconfigure(ReconfigSpec{NReaders: 0}); err == nil {
		t.Error("zero ranks must fail")
	}
	if err := rg.Reconfigure(ReconfigSpec{NReaders: 2,
		Arrays: map[string][]ndarray.Box{"x": make([]ndarray.Box, 3)}}); err == nil {
		t.Error("box count mismatch must fail")
	}
	if err := rg.Reconfigure(ReconfigSpec{NReaders: 2, Nodes: []int{1}}); err == nil {
		t.Error("node count mismatch must fail")
	}
	if err := rg.Reconfigure(ReconfigSpec{NReaders: 2, PG: [][]int{{0}}}); err == nil {
		t.Error("pg claim count mismatch must fail")
	}
	// Before the first BeginStep no selections were sent yet.
	if err := rg.Reconfigure(ReconfigSpec{NReaders: 2}); err == nil {
		t.Error("reconfig before streaming must fail")
	}
}

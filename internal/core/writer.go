package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/shm"
)

// ErrSessionClosed reports that the peer side hung up the session
// mid-stream (an orderly session-closed notice or a dead coordinator
// connection); further steps cannot be moved.
var ErrSessionClosed = errors.New("core: session closed by peer")

// WriterGroup is the writer-program side of a stream: M writer ranks plus
// an elected coordinator (rank 0). In stream mode, "creating a file"
// registers the stream name with the directory server; the analytics that
// "opens the named file" is connected underneath by the transport
// (Section II.B). The control-plane half (handshake, reconfiguration,
// teardown) lives in controlplane.go; this file is the data plane.
type WriterGroup struct {
	Stream   string
	NWriters int
	// key is the tenant-qualified directory key (directory.Qualify of
	// Options.Tenant and Stream): what the coordinator contact and every
	// epoch-qualified data contact register under.
	key     string
	opts    Options
	net     *evpath.Net
	dir     directory.Directory
	mon     *monitor.Monitor
	credits *creditWindow
	journal *flight.Journal // attached via SetJournal; nil = off
	sess    *session

	writers []*Writer

	coordListener *evpath.Listener
	coordConn     evpath.Conn

	selMu    sync.Mutex
	selCond  *sync.Cond
	selReady bool
	sel      readerSelections
	selErr   error
	// Reconfiguration and teardown state (guarded by selMu): a pending
	// reconfig request parked by the control plane until the next step
	// boundary, and the peer/self closed flags.
	pendingReconfig *reconfigRequest
	readerClosed    bool
	closed          bool

	nReaders int
	// curTransport maps pairs to transports for the *current* epoch. It
	// starts as Options.Transport and is replaced when a reconfiguration
	// ships a new node placement. Touched only on the flush goroutine.
	curTransport func(w, r int) (evpath.TransportKind, int, int)

	// connMu guards the connection tables' slice headers; the conns of
	// the current epoch are in conns, earlier epochs' rows retire into
	// retired until the reader (or Close) hangs them up.
	connMu  sync.Mutex
	conns   [][]evpath.Conn // [writer][reader], nil where never used
	retired [][]evpath.Conn

	plugins writerPlugins // codelets deployed from the reader side

	stepMu      sync.Mutex
	open        map[int64]*pendingStep // steps with outstanding deposits
	asyncCh     chan *pendingStep
	asyncDone   chan struct{}
	asyncErr    error
	asyncErrMu  sync.Mutex
	lastDist    map[string]string // var -> fingerprint of writer boxes last handshaken
	sentAnyDist bool

	// Redistribution plan cache: precompiled pack schedules per
	// (variable, writer rank), invalidated by the session epoch or a
	// changed writer box. payloadPool recycles packed piece payloads and
	// deposited variable copies across timesteps.
	planMu      sync.Mutex
	plans       map[varPlanKey]*varPlanEntry
	payloadPool *shm.BufferPool

	closeOnce sync.Once
}

// Writer is one writer rank's handle.
type Writer struct {
	g        *WriterGroup
	Rank     int
	cur      *pendingStep // step this rank currently has open
	lastStep int64        // last step this rank completed (for ordering)
	begun    bool
}

// pendingStep accumulates one timestep's variables from all ranks.
type pendingStep struct {
	step     int64
	vars     map[int][]varData // writer rank -> written vars (in order)
	deposits int
	// staged counts payload bytes holding tenant credits; they return to
	// the credit window when the step's flush retires.
	staged int64
	done   chan struct{}
	err    error
}

type varData struct {
	meta VarMeta
	data []byte
}

// readerSelections is the reader-side distribution received during the
// handshake (Step 2 from the peer's perspective).
type readerSelections struct {
	nReaders int
	// gen is the session epoch the selections belong to; the plan cache
	// keys its validity on it, so a re-selection or reconfiguration
	// invalidates every cached plan.
	gen uint64
	// arrays[var][reader] is the reader's requested box (empty box = not
	// selected by that reader).
	arrays map[string][]ndarray.Box
	// decomps wraps each variable's reader boxes as a Decomposition so the
	// mapper's interval index is built once per selection generation and
	// shared by every writer rank's plan build. Populated by
	// decodeReaderSelections; may be nil for hand-built selections.
	decomps map[string]*ndarray.Decomposition
	// pgClaims[writerRank] lists reader ranks consuming that writer's
	// process groups.
	pgClaims map[int][]int
}

// NewWriterGroup creates the writer side of a stream and registers it
// with the directory. mon may be nil.
func NewWriterGroup(net *evpath.Net, dir directory.Directory, stream string, nWriters int, opts Options, mon *monitor.Monitor) (*WriterGroup, error) {
	if nWriters <= 0 {
		return nil, fmt.Errorf("core: writer group needs at least 1 rank")
	}
	if err := directory.ValidateTenant(opts.Tenant); err != nil {
		return nil, err
	}
	if opts.Quota.MaxRanks > 0 && nWriters > opts.Quota.MaxRanks {
		return nil, fmt.Errorf("%w: %d writer ranks over MaxRanks %d", ErrOverQuota, nWriters, opts.Quota.MaxRanks)
	}
	g := &WriterGroup{
		Stream:      stream,
		NWriters:    nWriters,
		key:         directory.Qualify(opts.Tenant, stream),
		opts:        opts.withDefaults(),
		net:         net,
		dir:         dir,
		mon:         mon,
		credits:     newCreditWindow(opts.Tenant, opts.Quota, mon),
		sess:        newSession("writer", mon),
		lastDist:    make(map[string]string),
		open:        make(map[int64]*pendingStep),
		plans:       make(map[varPlanKey]*varPlanEntry),
		payloadPool: shm.NewBufferPool(opts.PoolMaxBytes),
	}
	g.selCond = sync.NewCond(&g.selMu)
	g.curTransport = g.opts.Transport

	contact := g.key + ".coord"
	l, err := net.Listen(contact)
	if err != nil {
		return nil, err
	}
	g.coordListener = l
	if err := dir.Register(g.key, contact); err != nil {
		l.Close()
		return nil, err
	}
	g.writers = make([]*Writer, nWriters)
	for i := range g.writers {
		g.writers[i] = &Writer{g: g, Rank: i}
	}
	// Accept the reader coordinator's connection in the background; the
	// first EndStep blocks until selections arrive.
	go g.acceptCoordinator()

	if g.opts.Async {
		g.asyncCh = make(chan *pendingStep, g.opts.AsyncQueueDepth)
		g.asyncDone = make(chan struct{})
		go g.asyncWorker()
	}
	return g, nil
}

// Writer returns rank w's handle.
func (g *WriterGroup) Writer(w int) *Writer { return g.writers[w] }

// BeginStep starts timestep `step` for this rank. Each rank must write
// steps in increasing order; ranks may be at most one step apart (the
// usual bulk-synchronous discipline), which the per-step deposit
// accounting below tolerates without a global barrier.
func (w *Writer) BeginStep(step int64) error {
	g := w.g
	g.stepMu.Lock()
	defer g.stepMu.Unlock()
	if w.cur != nil {
		return fmt.Errorf("core: rank %d began step %d with step %d still open", w.Rank, step, w.cur.step)
	}
	if w.begun && step <= w.lastStep {
		return fmt.Errorf("core: rank %d began step %d after step %d", w.Rank, step, w.lastStep)
	}
	ps, ok := g.open[step]
	if !ok {
		ps = &pendingStep{
			step: step,
			vars: make(map[int][]varData),
			done: make(chan struct{}),
		}
		g.open[step] = ps
	}
	w.cur = ps
	w.begun = true
	w.lastStep = step
	return nil
}

// Write deposits one variable for the current step. Data is copied, so
// the caller may reuse its buffer immediately (the copy is the first of
// the transport's memory copies and what makes the async API safe).
func (w *Writer) Write(meta VarMeta, data []byte) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	need := int64(len(data))
	switch meta.Kind {
	case GlobalArrayVar:
		if want := meta.Box.NumElements() * int64(meta.ElemSize); need != want {
			return fmt.Errorf("core: %q: %d bytes for box %v (want %d)", meta.Name, need, meta.Box, want)
		}
	case ScalarVar:
		if need != int64(meta.ElemSize) {
			return fmt.Errorf("core: scalar %q: %d bytes, want %d", meta.Name, need, meta.ElemSize)
		}
	}
	g := w.g
	// Tenant backpressure: staging these bytes must fit the tenant's
	// credit window. Blocks (outside any group lock) until earlier steps
	// flush and hand credits back — the hot writer stalls here, on its own
	// window, before its data ever reaches the shared transport.
	if err := g.credits.acquireBytes(need); err != nil {
		return err
	}
	cp, err := g.payloadPool.Get(len(data))
	if err != nil {
		g.credits.releaseBytes(need)
		return err
	}
	copy(cp, data)
	if g.mon != nil {
		g.mon.RecordAlloc(int64(len(cp)))
	}
	g.stepMu.Lock()
	defer g.stepMu.Unlock()
	if w.cur == nil {
		g.payloadPool.Put(cp)
		g.credits.releaseBytes(need)
		return fmt.Errorf("core: rank %d Write before BeginStep", w.Rank)
	}
	w.cur.vars[w.Rank] = append(w.cur.vars[w.Rank], varData{meta: meta, data: cp})
	w.cur.staged += need
	return nil
}

// EndStep completes the rank's participation in the step. When the last
// rank arrives, the step is flushed — synchronously (EndStep returns when
// data movement finished) or asynchronously (EndStep returns once the
// step is queued).
func (w *Writer) EndStep() error {
	g := w.g
	g.stepMu.Lock()
	ps := w.cur
	if ps == nil {
		g.stepMu.Unlock()
		return fmt.Errorf("core: rank %d EndStep before BeginStep", w.Rank)
	}
	w.cur = nil
	ps.deposits++
	last := ps.deposits == g.NWriters
	if last {
		delete(g.open, ps.step)
	}
	g.stepMu.Unlock()

	if !last {
		if g.opts.Async {
			return nil
		}
		<-ps.done
		return ps.err
	}
	if g.opts.Async {
		g.asyncErrMu.Lock()
		err := g.asyncErr
		g.asyncErrMu.Unlock()
		if err != nil {
			return err
		}
		// Tenant backpressure: each queued step holds an in-flight slot
		// until its flush retires; at MaxInflightSteps the completing rank
		// stalls here, on its own tenant's window.
		if err := g.credits.acquireStep(); err != nil {
			return err
		}
		g.asyncCh <- ps
		return nil
	}
	if err := g.credits.acquireStep(); err != nil {
		return err
	}
	ps.err = g.flush(ps)
	g.retireStepCredits(ps)
	close(ps.done)
	return ps.err
}

// retireStepCredits returns a flushed step's tenant credits — its staged
// bytes and its in-flight slot — waking producers blocked on the window.
func (g *WriterGroup) retireStepCredits(ps *pendingStep) {
	g.credits.releaseBytes(ps.staged)
	g.credits.releaseStep()
}

func (g *WriterGroup) asyncWorker() {
	defer close(g.asyncDone)
	for ps := range g.asyncCh {
		if err := g.flush(ps); err != nil {
			g.asyncErrMu.Lock()
			g.asyncErr = err
			g.asyncErrMu.Unlock()
		}
		g.retireStepCredits(ps)
		ps.err = nil
		close(ps.done)
	}
}

// distFingerprint summarizes the writer-side distribution of a variable
// so the caching logic can detect changes (particle counts changing
// across timesteps force re-handshaking even under CACHING_ALL).
func distFingerprint(metaByRank map[int][]varData, name string, nWriters int) string {
	s := ""
	for w := 0; w < nWriters; w++ {
		for _, v := range metaByRank[w] {
			if v.meta.Name == name {
				s += v.meta.Box.String() + ";"
			}
		}
	}
	return s
}

// stepTrace carries the correlation attributes every span opened on one
// timestep's data path shares: the session epoch and the id of the
// enclosing writer.flush span, so a Chrome trace links pack → send →
// assemble → plug-in events across ranks. jparent is the same link for
// the flight journal: the flush event every pack/send event descends
// from, which is what lets the critical-path extractor chain them.
type stepTrace struct {
	epoch   uint64
	parent  uint64
	jparent flight.EventID
}

// flush performs the per-step protocol: apply a parked reconfiguration
// (this is the quiesce point — flushes are serialized, so any in-flight
// step and the async queue up to here have drained), (re-)handshake as
// the caching level demands, then pack and send each writer's pieces
// (Step 4.s).
func (g *WriterGroup) flush(ps *pendingStep) error {
	var stopTimer func()
	if g.mon != nil {
		stopTimer = g.mon.Start("flush")
		defer stopTimer()
	}
	flushSpan := g.mon.StartSpan("writer.flush", ps.step, 0).SetEpoch(g.sess.Epoch()).SetScope(g.key)
	defer flushSpan.End()
	flushEv := g.journal.Begin(flight.Event{
		Kind: flight.KindCompute, Point: "writer.flush", Scope: g.key,
		Step: ps.step, Epoch: g.sess.Epoch(),
	})
	defer g.journal.End(flushEv)
	tr := stepTrace{epoch: g.sess.Epoch(), parent: flushSpan.SpanID(), jparent: flushEv}
	g.selMu.Lock()
	readerGone := g.readerClosed
	g.selMu.Unlock()
	if readerGone {
		return ErrSessionClosed
	}
	if err := g.applyPendingReconfig(ps.step); err != nil {
		return err
	}
	sel, err := g.waitSelections()
	if err != nil {
		return err
	}
	if err := g.ensureConns(); err != nil {
		return err
	}

	// Collect variable names in deterministic order (gather Step 1.s —
	// free of cost here because ranks share an address space, but still a
	// distinct protocol step whose skipping CachingLocal+ records).
	var names []string
	seen := map[string]bool{}
	for w := 0; w < g.NWriters; w++ {
		for _, v := range ps.vars[w] {
			if !seen[v.meta.Name] {
				seen[v.meta.Name] = true
				names = append(names, v.meta.Name)
			}
		}
	}
	if g.mon != nil && g.opts.Caching == NoCaching {
		g.mon.Incr("handshake.local-gather", int64(len(names)))
	}

	// Steps 2-3: exchange distribution with the peer coordinator when the
	// caching level or a distribution change demands it.
	for _, name := range names {
		fp := distFingerprint(ps.vars, name, g.NWriters)
		cached := g.lastDist[name] == fp && g.sentAnyDist
		need := false
		switch g.opts.Caching {
		case NoCaching:
			need = true
		case CachingLocal:
			need = true // local info reused, but peer exchange still happens
		case CachingAll:
			need = !cached
		}
		if need {
			if err := g.sendWriterDist(ps, name); err != nil {
				return err
			}
			g.lastDist[name] = fp
		}
	}
	g.sentAnyDist = true

	// Step 4.s: pack strides per receiver and send.
	if g.opts.Batching {
		err = g.sendBatched(ps, sel, tr)
	} else {
		err = g.sendPerVariable(ps, sel, tr)
	}
	if err != nil {
		return err
	}

	// Step completion markers let readers detect step boundaries without
	// trusting piece counts.
	for w := 0; w < g.NWriters; w++ {
		for r := 0; r < sel.nReaders; r++ {
			ev := &evpath.Event{Meta: evpath.Record{
				"kind": msgStepDone, "step": ps.step, "writer": int64(w),
			}}
			if err := g.sendEvent(w, r, ev, ps.step, tr); err != nil {
				return err
			}
		}
	}
	// Release deposited buffers back to the payload pool: every event
	// referencing them has been encoded onto its connection by now.
	for _, vars := range ps.vars {
		for _, v := range vars {
			if g.mon != nil {
				g.mon.RecordFree(int64(len(v.data)))
			}
			g.payloadPool.Put(v.data)
		}
	}
	// Online monitoring: gather this side's counters and ship them to
	// the analytics side for runtime management (Section II.G).
	g.shipMonitorReport(ps.step)
	// First successful flush completes the handshake stage; after a
	// reconfiguration the session likewise returns through Handshaking.
	if g.sess.State() == StateHandshaking {
		g.sess.tryTransition(StateStreaming)
	}
	return nil
}

// sendPerVariable moves each variable separately (default granularity).
// Writer ranks proceed in parallel on the bounded executor: each rank
// owns its own row of data connections, so per-rank packing and sending
// are independent.
func (g *WriterGroup) sendPerVariable(ps *pendingStep, sel readerSelections, tr stepTrace) error {
	return parallelFor(g.NWriters, g.opts.PackWorkers, func(w int) error {
		for _, v := range ps.vars[w] {
			packSpan := g.mon.StartSpan("writer.pack", ps.step, w).SetEpoch(tr.epoch).SetParent(tr.parent).SetScope(g.key)
			packEv := g.journal.Begin(flight.Event{
				Kind: flight.KindCompute, Point: "writer.pack", Scope: g.key,
				Rank: w, Step: ps.step, Epoch: tr.epoch, Parent: tr.jparent,
			})
			pieces, err := g.piecesFor(ps.step, w, v, sel)
			g.journal.End(packEv)
			packSpan.End()
			if err != nil {
				return err
			}
			if err := g.sendOutgoing(w, ps.step, pieces, tr); err != nil {
				return err
			}
		}
		return nil
	})
}

// sendOutgoing runs the plug-in chain and ships one variable's outgoing
// events. Pool-owned payloads are either handed off to a same-node
// reader by reference (returned to the pool by the reader's release) or
// returned here once the copying send has encoded them.
func (g *WriterGroup) sendOutgoing(w int, step int64, pieces map[int][]outgoing, tr stepTrace) error {
	defer g.releaseOutgoing(pieces)
	for r := range pieces {
		ogs := pieces[r]
		for i := range ogs {
			og := &ogs[i]
			out, err := g.applyWriterPlugins(og.ev, step, w, tr)
			if err != nil {
				return err
			}
			if out == nil {
				continue
			}
			// Hand-off is only sound while the event's Data still is exactly
			// the pool buffer; a plug-in that rewrote the payload breaks the
			// aliasing and forces the copying path.
			eligible := og.payload
			if eligible != nil && !sameBytes(out.Data, eligible) {
				eligible = nil
			}
			handed, err := g.sendPiece(w, r, out, step, tr, eligible)
			if handed {
				og.payload = nil // now owned by the receiver's release path
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// releaseOutgoing returns every payload not handed off back to the pool.
func (g *WriterGroup) releaseOutgoing(pieces map[int][]outgoing) {
	for _, ogs := range pieces {
		for i := range ogs {
			if ogs[i].payload != nil {
				g.payloadPool.Put(ogs[i].payload)
				ogs[i].payload = nil
			}
		}
	}
}

// sameBytes reports whether a and b are the identical slice (same base
// pointer and length), i.e. a still aliases exactly b.
func sameBytes(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// applyWriterPlugins runs the deployed data-conditioning chain on one
// outgoing event, recording a dc.plugin span (writer's address space)
// when any codelet is installed. nil, nil means the event was dropped.
func (g *WriterGroup) applyWriterPlugins(ev *evpath.Event, step int64, w int, tr stepTrace) (*evpath.Event, error) {
	if g.plugins.empty() {
		return ev, nil
	}
	sp := g.mon.StartSpan("dc.plugin", step, w).SetEpoch(tr.epoch).SetParent(tr.parent).SetScope(g.key)
	out, err := g.plugins.apply(ev)
	sp.End()
	if err != nil {
		return nil, err
	}
	if out == nil {
		if g.mon != nil {
			g.mon.Incr("dc.writer.dropped", 1)
		}
		return nil, nil
	}
	return out, nil
}

// sendBatched packs all of a writer's pieces for one reader into a single
// framed transfer, aggregating handshaking and data messages. As in
// sendPerVariable, writer ranks run in parallel.
func (g *WriterGroup) sendBatched(ps *pendingStep, sel readerSelections, tr stepTrace) error {
	return parallelFor(g.NWriters, g.opts.PackWorkers, func(w int) error {
		// Batching concatenates payloads into one frame per reader, so the
		// pooled buffers are always copied (never handed off) and returned
		// once every batch has been encoded.
		var pooled [][]byte
		defer func() {
			for _, buf := range pooled {
				g.payloadPool.Put(buf)
			}
		}()
		perReader := make(map[int][]*evpath.Event)
		for _, v := range ps.vars[w] {
			packSpan := g.mon.StartSpan("writer.pack", ps.step, w).SetEpoch(tr.epoch).SetParent(tr.parent).SetScope(g.key)
			packEv := g.journal.Begin(flight.Event{
				Kind: flight.KindCompute, Point: "writer.pack", Scope: g.key,
				Rank: w, Step: ps.step, Epoch: tr.epoch, Parent: tr.jparent,
			})
			pieces, err := g.piecesFor(ps.step, w, v, sel)
			g.journal.End(packEv)
			packSpan.End()
			if err != nil {
				return err
			}
			for r, ogs := range pieces {
				for _, og := range ogs {
					perReader[r] = append(perReader[r], og.ev)
					if og.payload != nil {
						pooled = append(pooled, og.payload)
					}
				}
			}
		}
		for r, evs := range perReader {
			if len(evs) == 0 {
				continue
			}
			// Frame: concatenated encoded sub-events with a count.
			var payload []byte
			kept := 0
			for _, ev := range evs {
				out, err := g.applyWriterPlugins(ev, ps.step, w, tr)
				if err != nil {
					return err
				}
				if out == nil {
					continue
				}
				ev = out
				kept++
				b, err := evpath.EncodeEvent(ev)
				if err != nil {
					return err
				}
				var hdr [8]byte
				putLen(hdr[:], len(b))
				payload = append(payload, hdr[:]...)
				payload = append(payload, b...)
			}
			if kept == 0 {
				continue
			}
			batch := &evpath.Event{
				Meta: evpath.Record{"kind": msgBatch, "step": ps.step, "writer": int64(w), "count": int64(kept)},
				Data: payload,
			}
			if err := g.sendEvent(w, r, batch, ps.step, tr); err != nil {
				return err
			}
		}
		return nil
	})
}

// outgoing pairs one data event with the pool-owned buffer backing its
// Data, when the event has a dedicated packed payload. A nil payload
// means Data is shared state (a deposited variable copy broadcast to
// several readers) that the flush path releases; a non-nil payload is
// owned by exactly this event and is either handed off to a same-node
// reader by reference or returned to the pool after the copying send.
type outgoing struct {
	ev      *evpath.Event
	payload []byte
}

// piecesFor computes the pieces writer w must send for variable v,
// keyed by reader rank. This is the per-process mapping computation: the
// overlap of the writer's box with each reader's requested box. For
// global arrays the geometry comes from the redistribution plan cache,
// and packed payloads are drawn from the payload pool; ownership of
// those buffers passes to the caller with the returned outgoing entries
// (releaseOutgoing returns any that are not handed off). On error no
// pooled buffer remains checked out.
func (g *WriterGroup) piecesFor(step int64, w int, v varData, sel readerSelections) (map[int][]outgoing, error) {
	out := make(map[int][]outgoing)
	switch v.meta.Kind {
	case ScalarVar:
		// Rank 0 broadcasts scalars.
		if w != 0 {
			return out, nil
		}
		for r := 0; r < sel.nReaders; r++ {
			out[r] = append(out[r], outgoing{ev: &evpath.Event{
				Meta: evpath.Record{
					"kind": msgData, "step": step, "var": v.meta.Name,
					"varkind": int64(ScalarVar), "elemsize": int64(v.meta.ElemSize),
					"writer": int64(w),
				},
				Data: v.data,
			}})
		}
	case ProcessGroupVar:
		for _, r := range sel.pgClaims[w] {
			out[r] = append(out[r], outgoing{ev: &evpath.Event{
				Meta: evpath.Record{
					"kind": msgData, "step": step, "var": v.meta.Name,
					"varkind": int64(ProcessGroupVar), "elemsize": int64(v.meta.ElemSize),
					"writer": int64(w),
				},
				Data: v.data,
			}})
		}
	case GlobalArrayVar:
		selBoxes, ok := sel.arrays[v.meta.Name]
		if !ok {
			return out, nil // nobody reads this variable
		}
		if len(selBoxes) != sel.nReaders {
			// A well-formed reader-dist message always carries one box per
			// reader rank (empty boxes for non-selecting ranks); anything
			// else would silently starve the trailing readers.
			return nil, fmt.Errorf("core: %q: reader selection has %d boxes for %d readers",
				v.meta.Name, len(selBoxes), sel.nReaders)
		}
		entry, err := g.packPlansFor(w, v, sel, selBoxes)
		if err != nil {
			return nil, err
		}
		nd := int64(len(v.meta.GlobalShape))
		for i := range entry.targets {
			tgt := &entry.targets[i]
			packed, err := g.payloadPool.Get(int(tgt.plan.Bytes()))
			if err == nil {
				err = tgt.plan.Execute(packed, v.data)
				if err != nil {
					g.payloadPool.Put(packed)
				}
			}
			if err != nil {
				g.releaseOutgoing(out)
				return nil, err
			}
			out[tgt.reader] = append(out[tgt.reader], outgoing{
				ev: &evpath.Event{
					Meta: evpath.Record{
						"kind": msgData, "step": step, "var": v.meta.Name,
						"varkind": int64(GlobalArrayVar), "elemsize": int64(v.meta.ElemSize),
						"ndims": nd, "box": tgt.boxMeta,
						"writer": int64(w),
					},
					Data: packed,
				},
				payload: packed,
			})
		}
	}
	return out, nil
}

func (g *WriterGroup) sendEvent(w, r int, ev *evpath.Event, step int64, tr stepTrace) error {
	_, err := g.sendPiece(w, r, ev, step, tr, nil)
	return err
}

// sendPiece delivers one event to reader r. When payload is non-nil (a
// pool buffer aliased exactly by ev.Data) and the connection supports
// handle passing, only the encoded metadata header crosses by copy: the
// payload is handed to the reader by reference and returns to the pool
// through the release callback once the reader unpacked it. handedOff
// reports whether that transfer of ownership happened; if false the
// caller still owns payload. The send span/journal event keeps the
// "send.<transport>" point either way — on the zero-copy path its Bytes
// shrink to the header, which is how the critical path shows the
// writer→reader seam collapsing to handle-passing cost.
func (g *WriterGroup) sendPiece(w, r int, ev *evpath.Event, step int64, tr stepTrace, payload []byte) (handedOff bool, err error) {
	conn := g.conns[w][r]
	var hc evpath.HandleConn
	if payload != nil && !g.opts.NoZeroCopy {
		hc, _ = conn.(evpath.HandleConn)
	}
	var buf []byte
	if hc != nil {
		// Meta-only header: the reader reattaches the referenced payload,
		// reconstructing exactly EncodeEvent(ev)'s framing.
		hdr := evpath.Event{Meta: ev.Meta}
		buf, err = evpath.EncodeEvent(&hdr)
	} else {
		buf, err = evpath.EncodeEvent(ev)
	}
	if err != nil {
		return false, err
	}
	var sendSpan monitor.ActiveSpan
	if g.mon != nil { // guard: span name concat must not run on the nil path
		sendSpan = g.mon.StartSpan("send."+conn.Transport(), step, w).SetEpoch(tr.epoch).SetParent(tr.parent).SetScope(g.key)
	}
	var sendEv flight.EventID
	if g.journal != nil { // same guard for the channel-name formatting
		wire := int64(len(buf))
		if wc, ok := conn.(evpath.WireConn); ok {
			// Real wire transports frame every message; attribute the
			// bytes actually on the wire, not just the payload.
			wire += int64(wc.WireOverhead())
		}
		sendEv = g.journal.Begin(flight.Event{
			Kind: flight.KindSend, Point: "send." + conn.Transport(),
			Channel: fmt.Sprintf("w%d>r%d", w, r), Scope: g.key,
			Rank: w, Step: step, Epoch: tr.epoch, Parent: tr.jparent,
			Bytes: wire,
		})
	}
	if hc != nil {
		err = hc.SendHandle(buf, payload, func() { g.payloadPool.Put(payload) })
		switch {
		case err == nil:
			handedOff = true
		case errors.Is(err, evpath.ErrNoHandle):
			// Header too large for the inline queue: re-encode with the
			// payload attached and copy it across.
			if buf, err = evpath.EncodeEvent(ev); err == nil {
				err = g.sendWithRetry(conn, buf)
			}
		}
	} else {
		err = g.sendWithRetry(conn, buf)
	}
	g.journal.End(sendEv)
	sendSpan.End()
	if g.mon != nil && payload != nil && conn.Transport() == "shm" {
		// Same-node array payload: did it cross by reference?
		if handedOff {
			g.mon.Incr("shm.zerocopy_hits", 1)
		} else {
			g.mon.Incr("shm.zerocopy_fallbacks", 1)
		}
	}
	if err != nil {
		if !errors.Is(err, ErrSessionClosed) {
			g.selMu.Lock()
			gone := g.readerClosed
			g.selMu.Unlock()
			if gone {
				err = fmt.Errorf("%w: %v", ErrSessionClosed, err)
			}
		}
		return handedOff, err
	}
	if g.mon != nil {
		g.mon.Incr("data.msgs", 1)
		g.mon.AddVolume("data.bytes", int64(len(buf))+int64(len(payload)*btoi(handedOff)))
	}
	return handedOff, nil
}

// btoi is 1 for true, 0 for false (volume accounting: a handed-off
// payload still moved to the reader even though it was not copied).
func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sendWithRetry implements the runtime's timeout-and-retry resiliency
// scheme (Section II.H): transient transport faults are retried with a
// short backoff up to Options.SendRetries times; permanent failures (and
// exhausted budgets) surface to the caller. A failure caused by the peer
// hanging up the session surfaces as ErrSessionClosed.
func (g *WriterGroup) sendWithRetry(conn evpath.Conn, buf []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = conn.Send(buf)
		if err == nil {
			return nil
		}
		if !errors.Is(err, evpath.ErrTransient) || attempt >= g.opts.SendRetries {
			g.selMu.Lock()
			gone := g.readerClosed
			g.selMu.Unlock()
			if gone {
				return fmt.Errorf("%w: %v", ErrSessionClosed, err)
			}
			return err
		}
		if g.mon != nil {
			g.mon.Incr("send.retries", 1)
		}
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
}

// Close flushes pending async steps, closes every connection (readers see
// End-of-Stream), and unregisters the stream.
func (g *WriterGroup) Close() error {
	var err error
	g.closeOnce.Do(func() {
		g.selMu.Lock()
		g.closed = true
		g.selMu.Unlock()
		g.credits.close()
		g.sess.tryTransition(StateDraining)
		if g.opts.Async {
			close(g.asyncCh)
			<-g.asyncDone
			g.asyncErrMu.Lock()
			err = g.asyncErr
			g.asyncErrMu.Unlock()
		}
		g.closeDataConns()
		g.selMu.Lock()
		coord := g.coordConn
		g.selMu.Unlock()
		if coord != nil {
			coord.Close()
		}
		g.coordListener.Close()
		g.dir.Unregister(g.key) //nolint:errcheck
		g.sess.tryTransition(StateClosed)
	})
	return err
}

func putLen(b []byte, n int) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (8 * i))
	}
}

func getLen(b []byte) int {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return int(v)
}

// Package core implements the FlexIO runtime — the paper's primary
// contribution (Section II). It couples an M-rank writer program
// (simulation) to an N-rank reader program (analytics) through named
// streams, translating high-level write/read calls into data movement
// over whichever transport the placement dictates:
//
//   - connection management through a directory server with per-side
//     coordinators (Section II.C.1),
//   - the four-step handshake protocol that exchanges array
//     distributions and computes the MxN re-distribution mapping
//     (Section II.C.2, Figure 3),
//   - handshake caching levels (NO_CACHING / CACHING_LOCAL /
//     CACHING_ALL), variable batching, and synchronous vs. asynchronous
//     writes — the paper's three protocol optimizations,
//   - per-rank performance monitoring hooks.
//
// Ranks are goroutines within one process; every byte still travels
// through evpath connections backed by the shm or rdma transports, so the
// full protocol machinery is exercised for real.
package core

import (
	"fmt"

	"flexio/internal/evpath"
	"flexio/internal/ndarray"
)

// CachingLevel controls how much of the handshake protocol is re-executed
// on each timestep (Section II.C.2).
type CachingLevel int

const (
	// NoCaching performs the full handshake for each variable at each
	// timestep.
	NoCaching CachingLevel = iota
	// CachingLocal reuses the local side's gathered distribution (skips
	// Step 1) but still exchanges distributions with the peer (Steps 2-4).
	CachingLocal
	// CachingAll reuses both sides' distribution data; handshaking is
	// completely avoided while distributions stay unchanged.
	CachingAll
)

func (c CachingLevel) String() string {
	switch c {
	case NoCaching:
		return "NO_CACHING"
	case CachingLocal:
		return "CACHING_LOCAL"
	case CachingAll:
		return "CACHING_ALL"
	}
	return fmt.Sprintf("CachingLevel(%d)", int(c))
}

// VarKind distinguishes the paper's two stream-mode I/O patterns plus
// scalars.
type VarKind int

const (
	// ScalarVar is a single value replicated to every reader.
	ScalarVar VarKind = iota
	// GlobalArrayVar is a multi-dimensional array distributed across
	// writer ranks and re-distributed to reader ranks (Figure 3).
	GlobalArrayVar
	// ProcessGroupVar is an opaque per-writer-rank block; readers select
	// the writer ranks whose groups they consume.
	ProcessGroupVar
)

func (k VarKind) String() string {
	switch k {
	case ScalarVar:
		return "scalar"
	case GlobalArrayVar:
		return "global-array"
	case ProcessGroupVar:
		return "process-group"
	}
	return fmt.Sprintf("VarKind(%d)", int(k))
}

// VarMeta describes one variable written in a timestep.
type VarMeta struct {
	Name        string
	Kind        VarKind
	ElemSize    int
	GlobalShape []int64     // GlobalArrayVar only
	Box         ndarray.Box // writer's local region (GlobalArrayVar only)
}

// Validate checks a variable description at write time.
func (m *VarMeta) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("core: variable needs a name")
	}
	if m.ElemSize <= 0 {
		return fmt.Errorf("core: variable %q: elem size %d", m.Name, m.ElemSize)
	}
	if m.Kind == GlobalArrayVar {
		if len(m.GlobalShape) == 0 {
			return fmt.Errorf("core: global array %q needs a shape", m.Name)
		}
		if m.Box.NDims() != len(m.GlobalShape) {
			return fmt.Errorf("core: global array %q: box rank %d != shape rank %d",
				m.Name, m.Box.NDims(), len(m.GlobalShape))
		}
		g := ndarray.BoxFromShape(m.GlobalShape)
		if !g.ContainsBox(m.Box) {
			return fmt.Errorf("core: global array %q: box %v outside global %v", m.Name, m.Box, g)
		}
	}
	return nil
}

// Options configures a stream endpoint. The zero value is usable:
// synchronous writes, no caching, no batching, chan transport everywhere.
type Options struct {
	// Tenant scopes the stream under a tenant namespace: every directory
	// key (coordinator contact, epoch-qualified data contacts) is
	// registered as "tenant/stream" (directory.Qualify), so many tenants
	// can run identically-named streams on one shared directory. Empty
	// means the legacy single-tenant namespace. Both endpoints of a
	// stream must agree on the tenant.
	Tenant string
	// Quota bounds this tenant group's footprint on the shared fabric
	// (see TenantQuota); the zero value is unlimited.
	Quota TenantQuota
	// Caching selects the handshake caching level.
	Caching CachingLevel
	// Batching packs all variables of a timestep into one framed transfer
	// per writer-reader pair instead of one per variable.
	Batching bool
	// Async makes EndStep return once the step is queued; a background
	// worker performs the actual movement (overlapping it with the
	// writer's compute, like the paper's asynchronous write API).
	Async bool
	// AsyncQueueDepth bounds queued steps in async mode (default 2,
	// matching a double-buffering discipline).
	AsyncQueueDepth int
	// Transport maps a (writerRank, readerRank) pair to the transport
	// kind and the two node ids — this is where placement decisions
	// materialize. Nil means ChanTransport for all pairs.
	Transport func(w, r int) (evpath.TransportKind, int, int)
	// WriterNode maps a writer rank to its node id. It is consulted when a
	// Reconfigure carries new reader node placements: pairs on the same
	// node get the shm transport, cross-node pairs get rdma. Nil keeps the
	// chan transport for all re-placed pairs.
	WriterNode func(w int) int
	// WrapConn, if set, wraps every data connection after dialing (used
	// for fault injection and instrumentation).
	WrapConn func(evpath.Conn) evpath.Conn
	// SendRetries bounds the timeout-and-retry policy for transient data
	// movement faults (Section II.H); default 3, 0 keeps the default,
	// negative disables retries.
	SendRetries int
	// PackWorkers bounds the worker pool that executes redistribution
	// plans (packing and sending) across writer ranks in parallel.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	PackWorkers int
	// PoolMaxBytes caps the bytes the payload buffer pool retains on its
	// free lists between steps (0 = unbounded). Excess buffers are
	// released to the garbage collector, mirroring the shared-memory
	// pool's configurable threshold.
	PoolMaxBytes int64
	// NoZeroCopy disables same-node handle passing: packed array payloads
	// are copied through the shm channel even when the transport could
	// hand the writer's pool buffer to the reader by reference. The zero
	// value (zero-copy enabled) is the paper's XPMEM mode; disabling it is
	// for A/B measurement and diagnosis.
	NoZeroCopy bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.AsyncQueueDepth <= 0 {
		out.AsyncQueueDepth = 2
	}
	if out.Transport == nil {
		out.Transport = func(w, r int) (evpath.TransportKind, int, int) {
			return evpath.ChanTransport, 0, 0
		}
	}
	if out.SendRetries == 0 {
		out.SendRetries = 3
	}
	if out.SendRetries < 0 {
		out.SendRetries = 0
	}
	return out
}

// Wire message kinds used on coordinator and data connections.
const (
	msgWriterDist = "writer-dist" // coordinator: writer-side distribution for a step/var
	msgReaderDist = "reader-dist" // coordinator: reader-side selections
	msgData       = "data"        // data connection: one variable piece
	msgBatch      = "batch"       // data connection: batched variables
	msgStepDone   = "step-done"   // data connection: writer finished this step
)

// encodeBoxes flattens a box list for the codec: rank-major lo/hi pairs.
func encodeBoxes(boxes []ndarray.Box, nd int) []int64 {
	out := make([]int64, 0, len(boxes)*nd*2)
	for _, b := range boxes {
		for d := 0; d < nd; d++ {
			if b.NDims() == 0 {
				out = append(out, 0)
			} else {
				out = append(out, b.Lo[d])
			}
		}
		for d := 0; d < nd; d++ {
			if b.NDims() == 0 {
				out = append(out, 0)
			} else {
				out = append(out, b.Hi[d])
			}
		}
	}
	return out
}

// decodeBoxes reverses encodeBoxes.
func decodeBoxes(flat []int64, nd, count int) ([]ndarray.Box, error) {
	if nd <= 0 || len(flat) != count*nd*2 {
		return nil, fmt.Errorf("core: bad box encoding: %d values for %d boxes of rank %d", len(flat), count, nd)
	}
	out := make([]ndarray.Box, count)
	for i := 0; i < count; i++ {
		lo := make([]int64, nd)
		hi := make([]int64, nd)
		copy(lo, flat[i*nd*2:])
		copy(hi, flat[i*nd*2+nd:])
		out[i] = ndarray.Box{Lo: lo, Hi: hi}
	}
	return out, nil
}

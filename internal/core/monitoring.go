package core

import (
	"encoding/json"
	"fmt"

	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
	"flexio/internal/monitor"
)

// Online performance monitoring (Section II.G): besides dumping traces
// for offline tuning, "monitoring data captured from the simulation side
// can be gathered online and transferred to the analytics side. The
// analytics process(es) can then use it to dynamically schedule data
// movement and decide the placement of DC Plug-ins." The writer group
// ships a snapshot of its monitor after every flushed step over the
// coordinator channel; the reader side keeps the latest report and offers
// a placement heuristic built on it.

const msgMonitorReport = "monitor-report"

// shipMonitorReport sends the writer-side monitor snapshot to the reader
// coordinator. Failures are ignored: monitoring is advisory and must
// never disturb the data path.
func (g *WriterGroup) shipMonitorReport(step int64) {
	if g.mon == nil {
		return
	}
	g.selMu.Lock()
	coord := g.coordConn
	g.selMu.Unlock()
	if coord == nil {
		return
	}
	snap := g.mon.Snapshot()
	// Spans stay local: the per-rank ring can hold thousands of entries and
	// the reader only needs the aggregate histograms for steering. Trace
	// export merges span buffers from the monitors directly.
	snap.Spans = nil
	snap.SpansDropped = 0
	payload, err := json.Marshal(snap)
	if err != nil {
		return
	}
	buf, err := evpath.EncodeEvent(&evpath.Event{
		Meta: evpath.Record{"kind": msgMonitorReport, "step": step},
		Data: payload,
	})
	if err != nil {
		return
	}
	coord.Send(buf) //nolint:errcheck // advisory traffic
}

// handleMonitorReport stores the latest writer-side report (coordPump).
func (g *ReaderGroup) handleMonitorReport(ev *evpath.Event) {
	var rep monitor.Report
	if err := json.Unmarshal(ev.Data, &rep); err != nil {
		return
	}
	step, _ := ev.Meta.GetInt("step")
	g.mu.Lock()
	g.writerReport = &rep
	g.writerReportStep = step
	g.cond.Broadcast()
	g.mu.Unlock()
}

// WriterReport returns the most recent monitoring report received from
// the simulation side and the step it covers; ok=false before the first
// report arrives.
func (g *ReaderGroup) WriterReport() (rep monitor.Report, step int64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.writerReport == nil {
		return monitor.Report{}, 0, false
	}
	return *g.writerReport, g.writerReportStep, true
}

// PluginSide names where AutoDeployPlugin decided a codelet should run.
type PluginSide string

const (
	WriterSide PluginSide = "writer"
	ReaderSide PluginSide = "reader"
)

// AutoDeployPlugin is the runtime-management policy the paper sketches:
// it reads the writer side's monitoring report and places the
// data-conditioning plug-in where it saves the most — into the writers'
// address space when the observed per-step stream volume exceeds
// bytesPerStepThreshold (condition data *before* it crosses the
// transport), on the reader side otherwise (keep the simulation's cores
// untouched). It requires at least one report; call after a step has
// been consumed.
func (g *ReaderGroup) AutoDeployPlugin(p dcplugin.Plugin, bytesPerStepThreshold int64) (PluginSide, error) {
	rep, step, ok := g.WriterReport()
	if !ok {
		return "", fmt.Errorf("core: no writer monitoring report yet")
	}
	steps := step + 1
	if steps <= 0 {
		steps = 1
	}
	perStep := rep.Volumes["data.bytes"] / steps
	if perStep > bytesPerStepThreshold {
		if err := g.DeployPluginToWriters(p); err != nil {
			return "", err
		}
		return WriterSide, nil
	}
	filter, err := p.Filter()
	if err != nil {
		return "", err
	}
	g.InstallNamedPlugin(p.Name, filter)
	return ReaderSide, nil
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/shm"
)

// ErrEndOfStream reports that the writer closed the stream: the return
// the paper's analytics receive from read calls after the simulation
// closes the file.
var ErrEndOfStream = errors.New("core: end of stream")

// ReaderGroup is the analytics-program side of a stream: N reader ranks
// plus a coordinator (rank 0) that performed the directory lookup.
type ReaderGroup struct {
	Stream   string
	NReaders int
	net      *evpath.Net
	dir      directory.Directory
	mon      *monitor.Monitor

	readers   []*Reader
	coordConn evpath.Conn
	listeners []*evpath.Listener

	mu         sync.Mutex
	cond       *sync.Cond
	selSent    bool
	enteredCnt int
	arraySel   map[string][]ndarray.Box // var -> per-reader box
	pgSel      [][]int64                // per-reader claimed writer ranks
	steps      map[int64]*readerStep
	writerCnt  map[int]int // writers seen per reader (from hello)
	nWriters   int
	eofConns   int
	totalConn  int
	started    bool
	dists      map[string]distInfo // latest writer distribution per var
	plugins    []pluginEntry
	pluginAcks map[string]chan error
	nextAnon   int

	// Unpack plan cache and assembly-buffer pool: selections are fixed
	// once reading starts, so the scatter geometry of each arriving piece
	// region is computed once and replayed every step; assembly buffers
	// are recycled through asmPool when the application returns them via
	// ReleaseArray.
	upPlans map[upKey][]upEntry
	asmPool *shm.BufferPool

	writerReport     *monitor.Report
	writerReportStep int64
	closeOnce        sync.Once
}

type pluginEntry struct {
	name string
	fn   evpath.FilterFunc
}

// distInfo is the writer-side distribution observed via the coordinator
// (handshake Steps 2-3, reader's view).
type distInfo struct {
	step     int64
	ndims    int
	elemSize int
	boxes    []ndarray.Box
}

// readerStep accumulates arriving pieces for one timestep.
type readerStep struct {
	step        int64
	perReader   map[int]map[string][]piece // reader -> var -> pieces
	doneWriters map[int]map[int]bool       // reader -> set of writers done
}

type piece struct {
	writer   int
	kind     VarKind
	elemSize int
	box      ndarray.Box // overlap region (GlobalArrayVar)
	data     []byte
}

// Reader is one reader rank's handle.
type Reader struct {
	g        *ReaderGroup
	Rank     int
	curStep  int64
	nextStep int64
	inStep   bool
	entered  bool
}

// NewReaderGroup opens the named stream: looks it up in the directory,
// connects to the writer coordinator, and starts per-rank listeners for
// the writers' data connections. mon may be nil.
func NewReaderGroup(net *evpath.Net, dir directory.Directory, stream string, nReaders int, mon *monitor.Monitor) (*ReaderGroup, error) {
	if nReaders <= 0 {
		return nil, fmt.Errorf("core: reader group needs at least 1 rank")
	}
	contact, err := dir.WaitLookup(stream, 30*time.Second)
	if err != nil {
		return nil, err
	}
	g := &ReaderGroup{
		Stream:    stream,
		NReaders:  nReaders,
		net:       net,
		dir:       dir,
		mon:       mon,
		arraySel:  make(map[string][]ndarray.Box),
		pgSel:     make([][]int64, nReaders),
		steps:     make(map[int64]*readerStep),
		writerCnt: make(map[int]int),
		dists:     make(map[string]distInfo),
		upPlans:   make(map[upKey][]upEntry),
		asmPool:   shm.NewBufferPool(0),
	}
	g.cond = sync.NewCond(&g.mu)
	// Per-rank data listeners must exist before the writers dial.
	for r := 0; r < nReaders; r++ {
		l, err := net.Listen(fmt.Sprintf("%s.r%d", stream, r))
		if err != nil {
			return nil, err
		}
		g.listeners = append(g.listeners, l)
		go g.acceptLoop(r, l)
	}
	conn, err := net.Dial(contact, evpath.ChanTransport, 0, 0)
	if err != nil {
		return nil, err
	}
	g.coordConn = conn
	go g.coordPump()
	g.readers = make([]*Reader, nReaders)
	for i := range g.readers {
		g.readers[i] = &Reader{g: g, Rank: i}
	}
	return g, nil
}

// Reader returns rank r's handle.
func (g *ReaderGroup) Reader(r int) *Reader { return g.readers[r] }

// InstallPlugin adds a data-conditioning filter applied (in order) to
// every arriving data event on the reader side (plug-in execution in the
// analytics' address space). For deployment into the simulation's address
// space see DeployPluginToWriters.
func (g *ReaderGroup) InstallPlugin(fn evpath.FilterFunc) {
	g.mu.Lock()
	name := fmt.Sprintf("anon-%d", g.nextAnon)
	g.nextAnon++
	g.plugins = append(g.plugins, pluginEntry{name: name, fn: fn})
	g.mu.Unlock()
}

// InstallNamedPlugin is InstallPlugin with a caller-chosen name so the
// filter can later be removed or migrated.
func (g *ReaderGroup) InstallNamedPlugin(name string, fn evpath.FilterFunc) {
	g.mu.Lock()
	g.plugins = append(g.plugins, pluginEntry{name: name, fn: fn})
	g.mu.Unlock()
}

func (g *ReaderGroup) coordPump() {
	for {
		buf, err := g.coordConn.Recv()
		if err != nil {
			return
		}
		ev, err := evpath.DecodeEvent(buf)
		if err != nil {
			continue
		}
		switch kind, _ := ev.Meta.GetString("kind"); kind {
		case msgWriterDist:
			g.handleWriterDist(ev)
		case msgPluginAck:
			g.handlePluginAck(ev)
		case msgMonitorReport:
			g.handleMonitorReport(ev)
		}
	}
}

func (g *ReaderGroup) handleWriterDist(ev *evpath.Event) {
	name, _ := ev.Meta.GetString("var")
	nd, _ := ev.Meta.GetInt("ndims")
	nw, _ := ev.Meta.GetInt("nwriters")
	es, _ := ev.Meta.GetInt("elemsize")
	step, _ := ev.Meta.GetInt("step")
	flat, _ := ev.Meta.GetInts("boxes")
	boxes, err := decodeBoxes(flat, int(nd), int(nw))
	if err != nil {
		return
	}
	g.mu.Lock()
	g.dists[name] = distInfo{step: step, ndims: int(nd), elemSize: int(es), boxes: boxes}
	g.nWriters = int(nw)
	g.cond.Broadcast()
	g.mu.Unlock()
	if g.mon != nil {
		g.mon.Incr("handshake.writer-dist.recv", 1)
	}
}

func (g *ReaderGroup) acceptLoop(r int, l *evpath.Listener) {
	for {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		g.mu.Lock()
		g.totalConn++
		g.mu.Unlock()
		go g.dataPump(r, conn)
	}
}

func (g *ReaderGroup) dataPump(r int, conn evpath.Conn) {
	for {
		buf, err := conn.Recv()
		if err != nil {
			g.mu.Lock()
			g.eofConns++
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		ev, err := evpath.DecodeEvent(buf)
		if err != nil {
			continue
		}
		g.routeEvent(r, ev)
	}
}

func (g *ReaderGroup) routeEvent(r int, ev *evpath.Event) {
	kind, _ := ev.Meta.GetString("kind")
	switch kind {
	case "hello":
		w, _ := ev.Meta.GetInt("writer")
		nw, _ := ev.Meta.GetInt("nwriters")
		g.mu.Lock()
		g.writerCnt[r]++
		if int(nw) > g.nWriters {
			g.nWriters = int(nw)
		}
		if int(w)+1 > g.nWriters {
			g.nWriters = int(w) + 1
		}
		g.cond.Broadcast()
		g.mu.Unlock()
	case msgBatch:
		// Unpack sub-events: length-prefixed frames in the payload.
		data := ev.Data
		for len(data) >= 8 {
			n := getLen(data[:8])
			data = data[8:]
			if n > len(data) {
				return
			}
			sub, err := evpath.DecodeEvent(data[:n])
			data = data[n:]
			if err != nil {
				return
			}
			g.routeEvent(r, sub)
		}
	case msgData:
		g.acceptData(r, ev)
	case msgStepDone:
		step, _ := ev.Meta.GetInt("step")
		w, _ := ev.Meta.GetInt("writer")
		g.mu.Lock()
		st := g.step(step)
		if st.doneWriters[r] == nil {
			st.doneWriters[r] = make(map[int]bool)
		}
		st.doneWriters[r][int(w)] = true
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// acceptData runs the installed plug-ins and stores the piece.
func (g *ReaderGroup) acceptData(r int, ev *evpath.Event) {
	g.mu.Lock()
	plugins := g.plugins
	g.mu.Unlock()
	for _, p := range plugins {
		out, err := p.fn(ev)
		if err != nil || out == nil {
			if g.mon != nil && err == nil {
				g.mon.Incr("dc.dropped", 1)
			}
			return
		}
		ev = out
	}

	step, _ := ev.Meta.GetInt("step")
	name, _ := ev.Meta.GetString("var")
	vk, _ := ev.Meta.GetInt("varkind")
	es, _ := ev.Meta.GetInt("elemsize")
	w, _ := ev.Meta.GetInt("writer")
	p := piece{writer: int(w), kind: VarKind(vk), elemSize: int(es), data: ev.Data}
	if VarKind(vk) == GlobalArrayVar {
		nd, _ := ev.Meta.GetInt("ndims")
		flat, _ := ev.Meta.GetInts("box")
		boxes, err := decodeBoxes(flat, int(nd), 1)
		if err != nil {
			return
		}
		p.box = boxes[0]
	}
	g.mu.Lock()
	st := g.step(step)
	if st.perReader[r] == nil {
		st.perReader[r] = make(map[string][]piece)
	}
	st.perReader[r][name] = append(st.perReader[r][name], p)
	g.cond.Broadcast()
	g.mu.Unlock()
	if g.mon != nil {
		g.mon.Incr("data.msgs.recv", 1)
		g.mon.AddVolume("data.bytes.recv", int64(len(ev.Data)))
	}
}

// step returns (creating if needed) the state for a timestep. Caller
// holds g.mu.
func (g *ReaderGroup) step(step int64) *readerStep {
	st, ok := g.steps[step]
	if !ok {
		st = &readerStep{
			step:        step,
			perReader:   make(map[int]map[string][]piece),
			doneWriters: make(map[int]map[int]bool),
		}
		g.steps[step] = st
	}
	return st
}

// SelectArray declares that this reader wants the given region of a
// global array. Must be called before the rank's first BeginStep.
func (r *Reader) SelectArray(name string, box ndarray.Box) error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.selSent {
		return fmt.Errorf("core: selections are fixed once reading starts")
	}
	sel, ok := g.arraySel[name]
	if !ok {
		sel = make([]ndarray.Box, g.NReaders)
		g.arraySel[name] = sel
	}
	sel[r.Rank] = box
	return nil
}

// SelectProcessGroups declares the writer ranks whose process groups this
// reader consumes.
func (r *Reader) SelectProcessGroups(writers []int) error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.selSent {
		return fmt.Errorf("core: selections are fixed once reading starts")
	}
	ws := make([]int64, len(writers))
	for i, w := range writers {
		ws[i] = int64(w)
	}
	g.pgSel[r.Rank] = ws
	return nil
}

// sendSelections transmits the reader-side distribution to the writer
// coordinator (handshake Step 2, reader's half). Runs once, triggered by
// the first BeginStep after all ranks entered.
func (g *ReaderGroup) sendSelections() error {
	meta := evpath.Record{
		"kind":     msgReaderDist,
		"nreaders": int64(g.NReaders),
	}
	// Array selections: one field pair per variable.
	names := make([]string, 0, len(g.arraySel))
	for name := range g.arraySel {
		names = append(names, name)
	}
	var nameList string
	for i, name := range names {
		if i > 0 {
			nameList += "\x00"
		}
		nameList += name
		boxes := g.arraySel[name]
		nd := 0
		for _, b := range boxes {
			if b.NDims() > 0 {
				nd = b.NDims()
			}
		}
		// Normalize empty boxes to rank-nd empties.
		norm := make([]ndarray.Box, len(boxes))
		for i, b := range boxes {
			if b.NDims() != nd {
				norm[i] = ndarray.Box{Lo: make([]int64, nd), Hi: make([]int64, nd)}
			} else {
				norm[i] = b
			}
		}
		meta["sel."+name+".ndims"] = int64(nd)
		meta["sel."+name+".boxes"] = encodeBoxes(norm, nd)
	}
	meta["selvars"] = nameList
	// PG claims: flattened (reader, count, writers...) list.
	var pg []int64
	for r, ws := range g.pgSel {
		if len(ws) == 0 {
			continue
		}
		pg = append(pg, int64(r), int64(len(ws)))
		pg = append(pg, ws...)
	}
	meta["pgsel"] = pg
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta})
	if err != nil {
		return err
	}
	if err := g.coordConn.Send(buf); err != nil {
		return err
	}
	if g.mon != nil {
		g.mon.Incr("handshake.reader-dist.sent", 1)
	}
	return nil
}

// decodeReaderSelections parses the reader coordinator's message on the
// writer side.
func decodeReaderSelections(ev *evpath.Event) (readerSelections, error) {
	sel := readerSelections{
		arrays:   make(map[string][]ndarray.Box),
		pgClaims: make(map[int][]int),
	}
	n, _ := ev.Meta.GetInt("nreaders")
	sel.nReaders = int(n)
	if sel.nReaders <= 0 {
		return sel, fmt.Errorf("core: reader-dist without nreaders")
	}
	if names, ok := ev.Meta.GetString("selvars"); ok && names != "" {
		for _, name := range splitNames(names) {
			nd, _ := ev.Meta.GetInt("sel." + name + ".ndims")
			flat, _ := ev.Meta.GetInts("sel." + name + ".boxes")
			if nd == 0 {
				continue
			}
			boxes, err := decodeBoxes(flat, int(nd), sel.nReaders)
			if err != nil {
				return sel, err
			}
			sel.arrays[name] = boxes
		}
	}
	if pg, ok := ev.Meta.GetInts("pgsel"); ok {
		for i := 0; i < len(pg); {
			if i+2 > len(pg) {
				break
			}
			r := int(pg[i])
			cnt := int(pg[i+1])
			i += 2
			for j := 0; j < cnt && i < len(pg); j++ {
				w := int(pg[i])
				i++
				sel.pgClaims[w] = append(sel.pgClaims[w], r)
			}
		}
	}
	return sel, nil
}

func splitNames(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\x00' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// BeginStep blocks until the next timestep is fully delivered to this
// rank, returning its step index. ok=false signals End-of-Stream.
func (r *Reader) BeginStep() (step int64, ok bool) {
	g := r.g
	g.mu.Lock()
	// First BeginStep is a group rendezvous: selections are sent to the
	// writer coordinator only once every reader rank has entered, so no
	// rank's SelectArray/SelectProcessGroups call can be missed.
	if !r.entered {
		r.entered = true
		g.enteredCnt++
		if g.enteredCnt == g.NReaders {
			g.selSent = true
			g.mu.Unlock()
			if err := g.sendSelections(); err != nil {
				return 0, false
			}
			g.mu.Lock()
			g.cond.Broadcast()
		} else {
			for !g.selSent {
				g.cond.Wait()
			}
		}
	}
	defer g.mu.Unlock()
	want := r.nextStep
	for {
		if st, okS := g.steps[want]; okS && g.nWriters > 0 && len(st.doneWriters[r.Rank]) == g.nWriters {
			r.curStep = want
			r.inStep = true
			r.nextStep = want + 1
			return want, true
		}
		// EOS: every data connection for this rank saw EOF and the step
		// never completed.
		if g.totalConn > 0 && g.eofConns >= g.totalConn {
			if st, okS := g.steps[want]; okS && g.nWriters > 0 && len(st.doneWriters[r.Rank]) == g.nWriters {
				continue
			}
			return 0, false
		}
		g.cond.Wait()
	}
}

// parallelUnpackBytes is the minimum total payload size before ReadArray
// fans piece unpacking out to the worker pool; below it the
// orchestration overhead outweighs the copies.
const parallelUnpackBytes = 256 << 10

// ReadArray assembles this reader's declared selection of a global array
// for the current step. It returns the packed bytes (row-major over the
// selection box) plus the box itself. The returned buffer comes from the
// group's assembly pool; the application may hand it back with
// ReleaseArray once done to make steady-state reads allocation-free, or
// simply drop it for the garbage collector.
func (r *Reader) ReadArray(name string) ([]byte, ndarray.Box, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, ndarray.Box{}, fmt.Errorf("core: ReadArray outside BeginStep/EndStep")
	}
	sel, ok := g.arraySel[name]
	if !ok || sel[r.Rank].Empty() {
		return nil, ndarray.Box{}, fmt.Errorf("core: reader %d did not select %q", r.Rank, name)
	}
	box := sel[r.Rank]
	st := g.steps[r.curStep]
	var ps []piece
	if st != nil && st.perReader[r.Rank] != nil {
		ps = st.perReader[r.Rank][name]
	}
	var elemSize int
	for _, p := range ps {
		elemSize = p.elemSize
	}
	if elemSize == 0 {
		// No data arrived for the selection (writers had no overlap).
		return nil, box, fmt.Errorf("core: no data for %q selection %v at step %d", name, box, r.curStep)
	}
	need := box.NumElements() * int64(elemSize)
	out, err := g.asmPool.Get(int(need))
	if err != nil {
		return nil, box, err
	}
	// Pooled buffers carry stale bytes; gaps the pieces don't cover must
	// read as zero, like a freshly allocated buffer.
	for i := range out {
		out[i] = 0
	}
	// Resolve every piece's cached scatter plan first, then execute —
	// concurrently when the pieces are big enough and provably disjoint.
	plans := make([]*ndarray.Plan, len(ps))
	var total int64
	for i := range ps {
		plans[i], err = g.unpackPlanFor(name, r.Rank, box, ps[i].box, elemSize)
		if err != nil {
			g.asmPool.Put(out)
			return nil, box, err
		}
		total += plans[i].Bytes()
	}
	if len(ps) >= 2 && total >= parallelUnpackBytes && disjointRegions(ps) {
		err = parallelFor(len(ps), 0, func(i int) error {
			return plans[i].Execute(out, ps[i].data)
		})
	} else {
		for i := range ps {
			if err = plans[i].Execute(out, ps[i].data); err != nil {
				break
			}
		}
	}
	if err != nil {
		g.asmPool.Put(out)
		return nil, box, err
	}
	return out, box, nil
}

// ReleaseArray returns a buffer obtained from ReadArray to the assembly
// pool for reuse by a later step. The caller must not touch the buffer
// afterwards. Passing any other slice is a misuse that at worst parks
// the slice on a never-matching free list.
func (r *Reader) ReleaseArray(buf []byte) {
	if buf == nil {
		return
	}
	r.g.asmPool.Put(buf)
}

// ReadScalar returns a scalar variable's bytes for the current step.
func (r *Reader) ReadScalar(name string) ([]byte, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, fmt.Errorf("core: ReadScalar outside BeginStep/EndStep")
	}
	st := g.steps[r.curStep]
	if st == nil || st.perReader[r.Rank] == nil {
		return nil, fmt.Errorf("core: no scalar %q at step %d", name, r.curStep)
	}
	for _, p := range st.perReader[r.Rank][name] {
		if p.kind == ScalarVar {
			return p.data, nil
		}
	}
	return nil, fmt.Errorf("core: no scalar %q at step %d", name, r.curStep)
}

// ReadProcessGroups returns the process-group payloads this reader
// claimed, keyed by writer rank, for one variable.
func (r *Reader) ReadProcessGroups(name string) (map[int][]byte, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, fmt.Errorf("core: ReadProcessGroups outside BeginStep/EndStep")
	}
	out := make(map[int][]byte)
	st := g.steps[r.curStep]
	if st == nil || st.perReader[r.Rank] == nil {
		return out, nil
	}
	for _, p := range st.perReader[r.Rank][name] {
		if p.kind == ProcessGroupVar {
			out[p.writer] = p.data
		}
	}
	return out, nil
}

// WriterDistribution exposes the writer-side distribution the coordinator
// received for a variable (empty result before the first handshake).
// Analytics uses it for re-distribution planning and monitoring.
func (g *ReaderGroup) WriterDistribution(name string) ([]ndarray.Box, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.dists[name]
	if !ok {
		return nil, false
	}
	out := make([]ndarray.Box, len(d.boxes))
	copy(out, d.boxes)
	return out, true
}

// EndStep releases the current step's buffered pieces for this rank.
func (r *Reader) EndStep() error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return fmt.Errorf("core: EndStep outside a step")
	}
	r.inStep = false
	st := g.steps[r.curStep]
	if st != nil {
		delete(st.perReader, r.Rank)
		// Drop the whole step once every rank has consumed it.
		if len(st.perReader) == 0 {
			allDone := true
			for rr := 0; rr < g.NReaders; rr++ {
				if len(st.doneWriters[rr]) != g.nWriters {
					allDone = false
					break
				}
			}
			consumed := true
			for rr := 0; rr < g.NReaders; rr++ {
				if g.readers[rr].nextStep <= st.step {
					consumed = false
					break
				}
			}
			if allDone && consumed {
				delete(g.steps, st.step)
			}
		}
	}
	return nil
}

// Close hangs up the reader side.
func (g *ReaderGroup) Close() error {
	g.closeOnce.Do(func() {
		for _, l := range g.listeners {
			l.Close()
		}
		if g.coordConn != nil {
			g.coordConn.Close()
		}
	})
	return nil
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/shm"
)

// ErrEndOfStream reports that the writer closed the stream: the return
// the paper's analytics receive from read calls after the simulation
// closes the file.
var ErrEndOfStream = errors.New("core: end of stream")

// ReaderGroup is the analytics-program side of a stream: N reader ranks
// plus a coordinator (rank 0) that performed the directory lookup. The
// control-plane half (handshake, Reconfigure, teardown signalling) lives
// in controlplane.go; this file is the data plane.
type ReaderGroup struct {
	Stream   string
	NReaders int
	// key is the tenant-qualified directory key (directory.Qualify of the
	// tenant and Stream) under which the stream and its epoch-qualified
	// data contacts resolve.
	key     string
	quota   TenantQuota
	net     *evpath.Net
	dir     directory.Directory
	mon     *monitor.Monitor
	journal *flight.Journal // attached via SetJournal; nil = off
	sess    *session

	readers   []*Reader
	coordConn evpath.Conn
	listeners []*evpath.Listener // current epoch's data listeners

	mu         sync.Mutex
	cond       *sync.Cond
	selSent    bool
	enteredCnt int
	arraySel   map[string][]ndarray.Box // var -> per-reader box
	pgSel      [][]int64                // per-reader claimed writer ranks
	steps      map[int64]*readerStep
	writerCnt  map[int]int // writers seen per reader (from hello)
	nWriters   int
	// Connection accounting is epoch-scoped: a retiring epoch's pumps
	// must not feed End-of-Stream detection for the current one.
	dataEpoch uint64
	connCnt   map[uint64]int
	eofCnt    map[uint64]int
	dataConns []epochConn
	dists     map[string]distInfo // latest writer distribution per var
	plugins   []pluginEntry
	// deployed tracks plug-ins shipped into the writers' address space so
	// a reconfiguration can re-ship them to the new peer set.
	deployed   []dcplugin.Plugin
	pluginAcks map[string]chan error
	nextAnon   int

	// Reconfiguration state: the pending ack channel, the in-progress
	// flag, and steps the writer flushed under the old regime that the
	// new ranks replay from buffered pieces.
	reconfiguring bool
	reconfigAck   chan reconfigAckMsg
	replay        map[int64]*replayStep

	// Unpack plan cache and assembly-buffer pool: selections are fixed
	// per epoch, so the scatter geometry of each arriving piece region is
	// computed once and replayed every step; assembly buffers are
	// recycled through asmPool when the application returns them via
	// ReleaseArray.
	upPlans map[upKey][]upEntry
	asmPool *shm.BufferPool

	writerReport     *monitor.Report
	writerReportStep int64
	closeOnce        sync.Once
}

// epochConn tags an accepted data connection with its session epoch so a
// reconfiguration can retire exactly the old epoch's connections.
type epochConn struct {
	epoch uint64
	conn  evpath.Conn
}

type pluginEntry struct {
	name string
	fn   evpath.FilterFunc
}

// distInfo is the writer-side distribution observed via the coordinator
// (handshake Steps 2-3, reader's view).
type distInfo struct {
	step     int64
	ndims    int
	elemSize int
	boxes    []ndarray.Box
}

// readerStep accumulates arriving pieces for one timestep.
type readerStep struct {
	step        int64
	perReader   map[int]map[string][]piece // reader -> var -> pieces
	doneWriters map[int]map[int]bool       // reader -> set of writers done
}

// replayStep is a step the writer flushed to the old rank layout during
// a reconfiguration: the union of every old rank's pieces, re-sliced for
// the new selections at read time. left counts new ranks yet to consume.
type replayStep struct {
	arrays  map[string][]piece
	scalars map[string]piece
	pgs     map[string]map[int][]byte // var -> writer rank -> payload
	left    int
}

type piece struct {
	writer   int
	kind     VarKind
	elemSize int
	box      ndarray.Box // overlap region (GlobalArrayVar)
	data     []byte
	// release is non-nil when data references the writer's pool buffer
	// (same-node zero-copy hand-off). It must be called exactly once when
	// the piece's bytes are no longer needed — EndStep for consumed steps,
	// snapshotReplay after cloning — returning the buffer to the writer.
	release func()
}

// Reader is one reader rank's handle.
type Reader struct {
	g        *ReaderGroup
	Rank     int
	curStep  int64
	nextStep int64
	inStep   bool
	inReplay bool
	entered  bool
}

// ReaderOptions configures the analytics side of a stream. The zero
// value is the legacy single-tenant, unlimited-quota behavior.
type ReaderOptions struct {
	// Tenant scopes the stream lookup and every data contact under the
	// tenant namespace; must match the writer side's Options.Tenant.
	Tenant string
	// Quota bounds the group's rank count, at construction and at every
	// Reconfigure (MaxRanks; the flow-control fields act writer-side).
	Quota TenantQuota
}

// NewReaderGroup opens the named stream: looks it up in the directory,
// connects to the writer coordinator, and starts per-rank listeners for
// the writers' data connections. mon may be nil.
func NewReaderGroup(net *evpath.Net, dir directory.Directory, stream string, nReaders int, mon *monitor.Monitor) (*ReaderGroup, error) {
	return NewReaderGroupOpts(net, dir, stream, nReaders, ReaderOptions{}, mon)
}

// NewReaderGroupOpts is NewReaderGroup under a tenant namespace and
// quota.
func NewReaderGroupOpts(net *evpath.Net, dir directory.Directory, stream string, nReaders int, ropts ReaderOptions, mon *monitor.Monitor) (*ReaderGroup, error) {
	if nReaders <= 0 {
		return nil, fmt.Errorf("core: reader group needs at least 1 rank")
	}
	if err := directory.ValidateTenant(ropts.Tenant); err != nil {
		return nil, err
	}
	if ropts.Quota.MaxRanks > 0 && nReaders > ropts.Quota.MaxRanks {
		return nil, fmt.Errorf("%w: %d reader ranks over MaxRanks %d", ErrOverQuota, nReaders, ropts.Quota.MaxRanks)
	}
	key := directory.Qualify(ropts.Tenant, stream)
	contact, err := dir.WaitLookup(key, 30*time.Second)
	if err != nil {
		return nil, err
	}
	g := &ReaderGroup{
		Stream:    stream,
		NReaders:  nReaders,
		key:       key,
		quota:     ropts.Quota,
		net:       net,
		dir:       dir,
		mon:       mon,
		sess:      newSession("reader", mon),
		arraySel:  make(map[string][]ndarray.Box),
		pgSel:     make([][]int64, nReaders),
		steps:     make(map[int64]*readerStep),
		writerCnt: make(map[int]int),
		dataEpoch: 1,
		connCnt:   make(map[uint64]int),
		eofCnt:    make(map[uint64]int),
		dists:     make(map[string]distInfo),
		replay:    make(map[int64]*replayStep),
		upPlans:   make(map[upKey][]upEntry),
		asmPool:   shm.NewBufferPool(0),
	}
	g.cond = sync.NewCond(&g.mu)
	// Per-rank data listeners must exist before the writers dial. Names
	// are epoch-qualified under the tenant namespace; the first
	// configuration is epoch 1.
	for r := 0; r < nReaders; r++ {
		l, err := net.Listen(dataContact(key, 1, r))
		if err != nil {
			return nil, err
		}
		g.listeners = append(g.listeners, l)
		go g.acceptLoop(1, r, l)
	}
	conn, err := net.Dial(contact, evpath.ChanTransport, 0, 0)
	if err != nil {
		return nil, err
	}
	g.coordConn = conn
	g.sess.tryTransition(StateHandshaking) //nolint:errcheck
	go g.coordPump()
	g.readers = make([]*Reader, nReaders)
	for i := range g.readers {
		g.readers[i] = &Reader{g: g, Rank: i}
	}
	return g, nil
}

// Reader returns rank r's handle. After a Reconfigure the group has new
// handles; fetch them again.
func (g *ReaderGroup) Reader(r int) *Reader {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.readers[r]
}

// InstallPlugin adds a data-conditioning filter applied (in order) to
// every arriving data event on the reader side (plug-in execution in the
// analytics' address space). For deployment into the simulation's address
// space see DeployPluginToWriters.
func (g *ReaderGroup) InstallPlugin(fn evpath.FilterFunc) {
	g.mu.Lock()
	name := fmt.Sprintf("anon-%d", g.nextAnon)
	g.nextAnon++
	g.plugins = append(g.plugins, pluginEntry{name: name, fn: fn})
	g.mu.Unlock()
}

// InstallNamedPlugin is InstallPlugin with a caller-chosen name so the
// filter can later be removed or migrated.
func (g *ReaderGroup) InstallNamedPlugin(name string, fn evpath.FilterFunc) {
	g.mu.Lock()
	g.plugins = append(g.plugins, pluginEntry{name: name, fn: fn})
	g.mu.Unlock()
}

func (g *ReaderGroup) acceptLoop(epoch uint64, r int, l *evpath.Listener) {
	for {
		conn, ok := l.Accept()
		if !ok {
			return
		}
		g.mu.Lock()
		g.connCnt[epoch]++
		g.dataConns = append(g.dataConns, epochConn{epoch: epoch, conn: conn})
		g.mu.Unlock()
		go g.dataPump(epoch, r, conn)
	}
}

func (g *ReaderGroup) dataPump(epoch uint64, r int, conn evpath.Conn) {
	// Same-node connections deliver array payloads by reference: the
	// header is received by copy, the payload stays in the writer's pool
	// buffer until the release callback hands it back.
	hc, _ := conn.(evpath.HandleConn)
	for {
		var buf, payload []byte
		var release func()
		var err error
		if hc != nil {
			buf, payload, release, err = hc.RecvHandle()
		} else {
			buf, err = conn.Recv()
		}
		if err != nil {
			g.mu.Lock()
			g.eofCnt[epoch]++
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		ev, err := evpath.DecodeEvent(buf)
		if err != nil {
			if release != nil {
				release()
			}
			continue
		}
		if payload != nil {
			// buf was the meta-only header; reattaching the referenced
			// payload reconstructs the event the writer encoded.
			ev.Data = payload
		}
		g.routeEvent(r, ev, release)
	}
}

// routeEvent dispatches one arriving event. release, when non-nil, owns
// the hand-off of ev.Data back to the writer; every path must either
// store it with the piece or invoke it.
func (g *ReaderGroup) routeEvent(r int, ev *evpath.Event, release func()) {
	kind, _ := ev.Meta.GetString("kind")
	switch kind {
	case "hello":
		if release != nil {
			release()
		}
		w, _ := ev.Meta.GetInt("writer")
		nw, _ := ev.Meta.GetInt("nwriters")
		g.mu.Lock()
		g.writerCnt[r]++
		if int(nw) > g.nWriters {
			g.nWriters = int(nw)
		}
		if int(w)+1 > g.nWriters {
			g.nWriters = int(w) + 1
		}
		g.cond.Broadcast()
		g.mu.Unlock()
	case msgBatch:
		// The writer never hands off batch frames, but a foreign producer
		// might: detach from the referenced buffer before slicing
		// sub-events out of it, since their Data would alias it.
		if release != nil {
			ev.Data = append([]byte(nil), ev.Data...)
			release()
		}
		// Unpack sub-events: length-prefixed frames in the payload.
		data := ev.Data
		for len(data) >= 8 {
			n := getLen(data[:8])
			data = data[8:]
			if n > len(data) {
				return
			}
			sub, err := evpath.DecodeEvent(data[:n])
			data = data[n:]
			if err != nil {
				return
			}
			g.routeEvent(r, sub, nil)
		}
	case msgData:
		g.acceptData(r, ev, release)
	case msgStepDone:
		if release != nil {
			release()
		}
		step, _ := ev.Meta.GetInt("step")
		w, _ := ev.Meta.GetInt("writer")
		g.mu.Lock()
		st := g.step(step)
		if st.doneWriters[r] == nil {
			st.doneWriters[r] = make(map[int]bool)
		}
		st.doneWriters[r][int(w)] = true
		g.cond.Broadcast()
		g.mu.Unlock()
	default:
		if release != nil {
			release()
		}
	}
}

// acceptData runs the installed plug-ins and stores the piece. release
// (non-nil for zero-copy deliveries) is stored with the piece while
// ev.Data still references the writer's buffer; if a plug-in drops the
// event or substitutes its payload, the buffer goes back to the writer
// here instead.
func (g *ReaderGroup) acceptData(r int, ev *evpath.Event, release func()) {
	// The step is read before the plug-in chain runs so the dc.plugin span
	// correlates with the writer-side spans of the same timestep even when
	// a filter rewrites or drops the event.
	preStep, _ := ev.Meta.GetInt("step")
	orig := ev.Data
	g.mu.Lock()
	plugins := g.plugins
	g.mu.Unlock()
	if len(plugins) > 0 {
		sp := g.mon.StartSpan("dc.plugin", preStep, r).SetEpoch(g.sess.Epoch()).SetScope(g.key)
		defer sp.End()
	}
	for _, p := range plugins {
		out, err := p.fn(ev)
		if err != nil || out == nil {
			if g.mon != nil && err == nil {
				g.mon.Incr("dc.dropped", 1)
			}
			if release != nil {
				release()
			}
			return
		}
		ev = out
	}
	if release != nil && !sameBytes(ev.Data, orig) {
		// A plug-in rewrote the payload: the stored piece owns the
		// plug-in's bytes, the writer gets its buffer back now.
		release()
		release = nil
	}

	step, _ := ev.Meta.GetInt("step")
	name, _ := ev.Meta.GetString("var")
	vk, _ := ev.Meta.GetInt("varkind")
	es, _ := ev.Meta.GetInt("elemsize")
	w, _ := ev.Meta.GetInt("writer")
	p := piece{writer: int(w), kind: VarKind(vk), elemSize: int(es), data: ev.Data, release: release}
	if VarKind(vk) == GlobalArrayVar {
		nd, _ := ev.Meta.GetInt("ndims")
		flat, _ := ev.Meta.GetInts("box")
		boxes, err := decodeBoxes(flat, int(nd), 1)
		if err != nil {
			if release != nil {
				release()
			}
			return
		}
		p.box = boxes[0]
	}
	g.mu.Lock()
	st := g.step(step)
	if st.perReader[r] == nil {
		st.perReader[r] = make(map[string][]piece)
	}
	st.perReader[r][name] = append(st.perReader[r][name], p)
	g.cond.Broadcast()
	g.mu.Unlock()
	if g.mon != nil {
		g.mon.Incr("data.msgs.recv", 1)
		g.mon.AddVolume("data.bytes.recv", int64(len(ev.Data)))
	}
	if j := g.journal; j != nil {
		// The channel mirrors the writer-side send event's "w<M>>r<N>"
		// string: after a cross-process journal merge this pairing is the
		// only surviving recv↔send join key (event IDs get remapped).
		j.Record(flight.Event{
			Kind: flight.KindRecv, Point: "reader.accept",
			Channel: fmt.Sprintf("w%d>r%d", w, r), Scope: g.key,
			Rank: r, Step: step, Epoch: g.sess.Epoch(),
			T: j.Now(), Bytes: int64(len(ev.Data)),
		})
	}
}

// step returns (creating if needed) the state for a timestep. Caller
// holds g.mu.
func (g *ReaderGroup) step(step int64) *readerStep {
	st, ok := g.steps[step]
	if !ok {
		st = &readerStep{
			step:        step,
			perReader:   make(map[int]map[string][]piece),
			doneWriters: make(map[int]map[int]bool),
		}
		g.steps[step] = st
	}
	return st
}

// snapshotReplay captures one old-regime step for replay: the union of
// the old ranks' buffered pieces, to be re-sliced under the new
// selections. Caller holds g.mu.
func snapshotReplay(st *readerStep, oldN, newN int) *replayStep {
	rs := &replayStep{
		arrays:  make(map[string][]piece),
		scalars: make(map[string]piece),
		pgs:     make(map[string]map[int][]byte),
		left:    newN,
	}
	if st == nil {
		return rs
	}
	for r := 0; r < oldN; r++ {
		for name, pieces := range st.perReader[r] {
			for i := range pieces {
				if pieces[i].release != nil {
					// Replay outlives the current epoch's connections; a
					// zero-copy piece must not pin the writer's buffer that
					// long. Snapshot the bytes and return the buffer now.
					pieces[i].data = append([]byte(nil), pieces[i].data...)
					pieces[i].release()
					pieces[i].release = nil
				}
				p := pieces[i]
				switch p.kind {
				case GlobalArrayVar:
					rs.arrays[name] = append(rs.arrays[name], p)
				case ScalarVar:
					if _, have := rs.scalars[name]; !have {
						rs.scalars[name] = p
					}
				case ProcessGroupVar:
					if rs.pgs[name] == nil {
						rs.pgs[name] = make(map[int][]byte)
					}
					rs.pgs[name][p.writer] = p.data
				}
			}
		}
	}
	return rs
}

// SelectArray declares that this reader wants the given region of a
// global array. Must be called before the rank's first BeginStep. To
// change selections later, use ReaderGroup.Reconfigure.
func (r *Reader) SelectArray(name string, box ndarray.Box) error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.selSent {
		return fmt.Errorf("core: selections are fixed once reading starts (use Reconfigure)")
	}
	sel, ok := g.arraySel[name]
	if !ok {
		sel = make([]ndarray.Box, g.NReaders)
		g.arraySel[name] = sel
	}
	sel[r.Rank] = box
	return nil
}

// SelectProcessGroups declares the writer ranks whose process groups this
// reader consumes.
func (r *Reader) SelectProcessGroups(writers []int) error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.selSent {
		return fmt.Errorf("core: selections are fixed once reading starts (use Reconfigure)")
	}
	ws := make([]int64, len(writers))
	for i, w := range writers {
		ws[i] = int64(w)
	}
	g.pgSel[r.Rank] = ws
	return nil
}

// BeginStep blocks until the next timestep is fully delivered to this
// rank, returning its step index. ok=false signals End-of-Stream.
// Replayed steps (flushed under the old regime during a reconfiguration)
// are served before live ones, preserving step order exactly.
func (r *Reader) BeginStep() (step int64, ok bool) {
	g := r.g
	g.mu.Lock()
	// First BeginStep is a group rendezvous: selections are sent to the
	// writer coordinator only once every reader rank has entered, so no
	// rank's SelectArray/SelectProcessGroups call can be missed.
	if !r.entered {
		r.entered = true
		g.enteredCnt++
		if g.enteredCnt == g.NReaders {
			g.selSent = true
			g.mu.Unlock()
			if err := g.sendSelections(); err != nil {
				return 0, false
			}
			g.mu.Lock()
			g.cond.Broadcast()
		} else {
			for !g.selSent {
				g.cond.Wait()
			}
		}
	}
	defer g.mu.Unlock()
	want := r.nextStep
	for {
		if _, isReplay := g.replay[want]; isReplay {
			r.curStep = want
			r.inStep = true
			r.inReplay = true
			r.nextStep = want + 1
			return want, true
		}
		if st, okS := g.steps[want]; okS && g.nWriters > 0 && len(st.doneWriters[r.Rank]) == g.nWriters {
			r.curStep = want
			r.inStep = true
			r.nextStep = want + 1
			return want, true
		}
		// EOS: every data connection of the current epoch for this rank
		// saw EOF and the step never completed.
		cur := g.dataEpoch
		if g.connCnt[cur] > 0 && g.eofCnt[cur] >= g.connCnt[cur] {
			if st, okS := g.steps[want]; okS && g.nWriters > 0 && len(st.doneWriters[r.Rank]) == g.nWriters {
				continue
			}
			return 0, false
		}
		g.cond.Wait()
	}
}

// parallelUnpackBytes is the minimum total payload size before ReadArray
// fans piece unpacking out to the worker pool; below it the
// orchestration overhead outweighs the copies.
const parallelUnpackBytes = 256 << 10

// ReadArray assembles this reader's declared selection of a global array
// for the current step. It returns the packed bytes (row-major over the
// selection box) plus the box itself. The returned buffer comes from the
// group's assembly pool; the application may hand it back with
// ReleaseArray once done to make steady-state reads allocation-free, or
// simply drop it for the garbage collector.
func (r *Reader) ReadArray(name string) ([]byte, ndarray.Box, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, ndarray.Box{}, fmt.Errorf("core: ReadArray outside BeginStep/EndStep")
	}
	sel, ok := g.arraySel[name]
	if !ok || sel[r.Rank].Empty() {
		return nil, ndarray.Box{}, fmt.Errorf("core: reader %d did not select %q", r.Rank, name)
	}
	box := sel[r.Rank]
	sp := g.mon.StartSpan("reader.assemble", r.curStep, r.Rank).SetEpoch(g.sess.Epoch()).SetScope(g.key)
	defer sp.End()
	asmEv := g.journal.Begin(flight.Event{
		Kind: flight.KindCompute, Point: "reader.assemble", Scope: g.key,
		Rank: r.Rank, Step: r.curStep, Epoch: g.sess.Epoch(),
	})
	defer g.journal.End(asmEv)
	if r.inReplay {
		return r.readReplayArray(name, box)
	}
	st := g.steps[r.curStep]
	var ps []piece
	if st != nil && st.perReader[r.Rank] != nil {
		ps = st.perReader[r.Rank][name]
	}
	var elemSize int
	for _, p := range ps {
		elemSize = p.elemSize
	}
	if elemSize == 0 {
		// No data arrived for the selection (writers had no overlap).
		return nil, box, fmt.Errorf("core: no data for %q selection %v at step %d", name, box, r.curStep)
	}
	need := box.NumElements() * int64(elemSize)
	out, err := g.asmPool.Get(int(need))
	if err != nil {
		return nil, box, err
	}
	// Pooled buffers carry stale bytes; gaps the pieces don't cover must
	// read as zero, like a freshly allocated buffer.
	for i := range out {
		out[i] = 0
	}
	// Resolve every piece's cached scatter plan first, then execute —
	// concurrently when the pieces are big enough and provably disjoint.
	plans := make([]*ndarray.Plan, len(ps))
	var total int64
	for i := range ps {
		plans[i], err = g.unpackPlanFor(name, r.Rank, box, ps[i].box, elemSize)
		if err != nil {
			g.asmPool.Put(out)
			return nil, box, err
		}
		total += plans[i].Bytes()
	}
	if len(ps) >= 2 && total >= parallelUnpackBytes && disjointRegions(ps) {
		err = parallelFor(len(ps), 0, func(i int) error {
			return plans[i].Execute(out, ps[i].data)
		})
	} else {
		for i := range ps {
			if err = plans[i].Execute(out, ps[i].data); err != nil {
				break
			}
		}
	}
	if err != nil {
		g.asmPool.Put(out)
		return nil, box, err
	}
	return out, box, nil
}

// readReplayArray assembles a replayed step's selection directly from
// the buffered old-regime pieces: each piece's overlap with the new
// selection box is copied box-to-box (no intermediate packed form).
// Caller holds g.mu.
func (r *Reader) readReplayArray(name string, box ndarray.Box) ([]byte, ndarray.Box, error) {
	g := r.g
	rs := g.replay[r.curStep]
	if rs == nil {
		return nil, box, fmt.Errorf("core: replay state missing for step %d", r.curStep)
	}
	ps := rs.arrays[name]
	var elemSize int
	for _, p := range ps {
		elemSize = p.elemSize
	}
	if elemSize == 0 {
		return nil, box, fmt.Errorf("core: no replay data for %q at step %d", name, r.curStep)
	}
	need := box.NumElements() * int64(elemSize)
	out, err := g.asmPool.Get(int(need))
	if err != nil {
		return nil, box, err
	}
	for i := range out {
		out[i] = 0
	}
	for _, p := range ps {
		ov, has := p.box.Intersect(box)
		if !has {
			continue
		}
		if err := ndarray.CopyRegion(out, p.data, box, p.box, ov, elemSize); err != nil {
			g.asmPool.Put(out)
			return nil, box, err
		}
	}
	return out, box, nil
}

// ReleaseArray returns a buffer obtained from ReadArray to the assembly
// pool for reuse by a later step. The caller must not touch the buffer
// afterwards. Passing any other slice is a misuse that at worst parks
// the slice on a never-matching free list.
func (r *Reader) ReleaseArray(buf []byte) {
	if buf == nil {
		return
	}
	r.g.asmPool.Put(buf)
}

// ReadScalar returns a scalar variable's bytes for the current step.
func (r *Reader) ReadScalar(name string) ([]byte, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, fmt.Errorf("core: ReadScalar outside BeginStep/EndStep")
	}
	if r.inReplay {
		if rs := g.replay[r.curStep]; rs != nil {
			if p, ok := rs.scalars[name]; ok {
				return p.data, nil
			}
		}
		return nil, fmt.Errorf("core: no scalar %q at step %d", name, r.curStep)
	}
	st := g.steps[r.curStep]
	if st == nil || st.perReader[r.Rank] == nil {
		return nil, fmt.Errorf("core: no scalar %q at step %d", name, r.curStep)
	}
	for _, p := range st.perReader[r.Rank][name] {
		if p.kind == ScalarVar {
			return p.data, nil
		}
	}
	return nil, fmt.Errorf("core: no scalar %q at step %d", name, r.curStep)
}

// ReadProcessGroups returns the process-group payloads this reader
// claimed, keyed by writer rank, for one variable.
func (r *Reader) ReadProcessGroups(name string) (map[int][]byte, error) {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return nil, fmt.Errorf("core: ReadProcessGroups outside BeginStep/EndStep")
	}
	out := make(map[int][]byte)
	if r.inReplay {
		rs := g.replay[r.curStep]
		if rs == nil {
			return out, nil
		}
		for _, w := range g.pgSel[r.Rank] {
			if data, ok := rs.pgs[name][int(w)]; ok {
				out[int(w)] = data
			}
		}
		return out, nil
	}
	st := g.steps[r.curStep]
	if st == nil || st.perReader[r.Rank] == nil {
		return out, nil
	}
	for _, p := range st.perReader[r.Rank][name] {
		if p.kind == ProcessGroupVar {
			out[p.writer] = p.data
		}
	}
	return out, nil
}

// WriterDistribution exposes the writer-side distribution the coordinator
// received for a variable (empty result before the first handshake).
// Analytics uses it for re-distribution planning and monitoring.
func (g *ReaderGroup) WriterDistribution(name string) ([]ndarray.Box, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.dists[name]
	if !ok {
		return nil, false
	}
	out := make([]ndarray.Box, len(d.boxes))
	copy(out, d.boxes)
	return out, true
}

// EndStep releases the current step's buffered pieces for this rank.
func (r *Reader) EndStep() error {
	g := r.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if !r.inStep {
		return fmt.Errorf("core: EndStep outside a step")
	}
	r.inStep = false
	if r.inReplay {
		r.inReplay = false
		if rs := g.replay[r.curStep]; rs != nil {
			rs.left--
			if rs.left <= 0 {
				delete(g.replay, r.curStep)
			}
		}
		return nil
	}
	st := g.steps[r.curStep]
	if st != nil {
		// Hand zero-copy payloads back to the writer: the step's pieces —
		// unpacked by ReadArray or never read at all — are dead once the
		// rank leaves the step.
		for _, pieces := range st.perReader[r.Rank] {
			for i := range pieces {
				if pieces[i].release != nil {
					pieces[i].release()
					pieces[i].release = nil
				}
			}
		}
		delete(st.perReader, r.Rank)
		// Drop the whole step once every rank has consumed it.
		if len(st.perReader) == 0 {
			allDone := true
			for rr := 0; rr < g.NReaders; rr++ {
				if len(st.doneWriters[rr]) != g.nWriters {
					allDone = false
					break
				}
			}
			consumed := true
			for rr := 0; rr < g.NReaders; rr++ {
				if g.readers[rr].nextStep <= st.step {
					consumed = false
					break
				}
			}
			if allDone && consumed {
				delete(g.steps, st.step)
			}
		}
	}
	return nil
}

// Close hangs up the reader side: a session-closed notice travels to the
// writer over the coordinator connection (so the writer can tear its
// data plane down instead of leaving connections and goroutines
// dangling), then every local connection and listener is closed.
func (g *ReaderGroup) Close() error {
	g.closeOnce.Do(func() {
		g.sess.tryTransition(StateDraining) //nolint:errcheck
		if g.coordConn != nil {
			if buf, err := evpath.EncodeEvent(&evpath.Event{
				Meta: evpath.Record{"kind": msgSessionClosed},
			}); err == nil {
				g.coordConn.Send(buf) //nolint:errcheck // Recv-failure path covers a lost notice
			}
		}
		for _, l := range g.listeners {
			l.Close()
		}
		g.mu.Lock()
		conns := make([]evpath.Conn, 0, len(g.dataConns))
		for _, ec := range g.dataConns {
			conns = append(conns, ec.conn)
		}
		g.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		if g.coordConn != nil {
			g.coordConn.Close()
		}
		g.sess.tryTransition(StateClosed) //nolint:errcheck
	})
	return nil
}

package core

import (
	"fmt"
	"time"

	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
	"flexio/internal/ndarray"
)

// Control plane of a coupled stream. Everything in this file runs over
// the single coordinator connection (or reacts to what arrives on it):
// the four-step handshake's distribution exchange, DC plug-in
// deployment routing, mid-run reconfiguration, and session teardown.
// The data plane — per-pair data connections moving packed pieces — is
// in writer.go / reader.go and is rewired by this layer at epoch
// boundaries without participating in the decisions.

// Control message kinds carried on the coordinator connection (the data
// kinds live in types.go).
const (
	msgReconfig      = "reconfig"       // reader -> writer: new selections / rank count / placement
	msgReconfigAck   = "reconfig-ack"   // writer -> reader: {epoch, boundary}
	msgSessionClosed = "session-closed" // either side: orderly mid-stream hangup
)

// reconfigRequest is a decoded msgReconfig held by the writer until the
// next step boundary.
type reconfigRequest struct {
	sel     readerSelections
	after   int64   // last step the readers consumed under the old regime
	nodes   []int64 // optional node id per new reader rank (placement change)
	arrived time.Time
}

// reconfigAckMsg is the writer's answer: the new session epoch and the
// boundary B — the first step flushed under the new regime. Steps in
// (after, B) were flushed under the old regime and are replayed
// reader-side.
type reconfigAckMsg struct {
	epoch    uint64
	boundary int64
}

// ---------------------------------------------------------------------
// Writer-side control plane

// acceptCoordinator accepts the reader coordinator's connection and pumps
// its control messages for the life of the session: selections (initial
// handshake and re-selections), plug-in deployment, reconfiguration
// requests, and the session-closed notice.
func (g *WriterGroup) acceptCoordinator() {
	conn, ok := g.coordListener.Accept()
	if !ok {
		g.failSelections(fmt.Errorf("core: stream %q closed before readers connected", g.Stream))
		return
	}
	g.selMu.Lock()
	g.coordConn = conn
	g.selMu.Unlock()
	g.sess.tryTransition(StateHandshaking)
	for {
		buf, err := conn.Recv()
		if err != nil {
			// The peer vanished (or we are closing): treat like an explicit
			// session-closed so the data plane is torn down either way.
			g.peerClosed()
			return
		}
		ev, err := evpath.DecodeEvent(buf)
		if err != nil {
			g.failSelections(fmt.Errorf("core: bad coordinator message: %w", err))
			return
		}
		kind, _ := ev.Meta.GetString("kind")
		switch kind {
		case msgDeployPlugin, msgRemovePlugin:
			ack := g.handlePluginControl(ev)
			if buf, err := evpath.EncodeEvent(ack); err == nil {
				conn.Send(buf) //nolint:errcheck // reader times out if lost
			}
		case msgReaderDist:
			sel, err := decodeReaderSelections(ev)
			if err != nil {
				g.failSelections(err)
				return
			}
			g.selMu.Lock()
			sel.gen = g.sess.Epoch()
			g.sel = sel
			g.nReaders = sel.nReaders
			g.selReady = true
			g.selCond.Broadcast()
			g.selMu.Unlock()
			if g.mon != nil {
				g.mon.Incr("handshake.reader-dist.recv", 1)
			}
		case msgReconfig:
			g.handleReconfigRequest(ev)
		case msgSessionClosed:
			g.peerClosed()
			return
		}
	}
}

// handleReconfigRequest decodes and parks a reconfiguration until the
// data plane reaches its next step boundary (applyPendingReconfig).
func (g *WriterGroup) handleReconfigRequest(ev *evpath.Event) {
	sel, err := decodeReaderSelections(ev)
	if err != nil {
		return
	}
	after, _ := ev.Meta.GetInt("after")
	nodes, _ := ev.Meta.GetInts("nodes")
	g.selMu.Lock()
	g.pendingReconfig = &reconfigRequest{sel: sel, after: after, nodes: nodes, arrived: time.Now()}
	g.selMu.Unlock()
	g.sess.tryTransition(StateReconfiguring)
	if g.mon != nil {
		g.mon.Incr("reconfig.requests.recv", 1)
	}
}

// applyPendingReconfig is the writer's half of the reconfiguration
// protocol, invoked by flush() at a step boundary — the quiesce point:
// any in-flight flush has completed and the async queue has drained up
// to this step. It bumps the session epoch (atomically invalidating the
// plan cache and the cached-distribution state), retires the old data
// connections, installs the new transport map, re-registers the stream
// contact, and acks {epoch, boundary} so the reader knows which steps to
// replay. boundary is the step about to be flushed under the new regime.
func (g *WriterGroup) applyPendingReconfig(boundary int64) error {
	g.selMu.Lock()
	pr := g.pendingReconfig
	if pr == nil {
		g.selMu.Unlock()
		return nil
	}
	g.pendingReconfig = nil
	// The control plane normally moved to Reconfiguring on request
	// arrival; re-assert for requests that raced the very first handshake.
	g.sess.tryTransition(StateReconfiguring) //nolint:errcheck
	drain := time.Since(pr.arrived)
	epoch := g.sess.bumpEpoch()
	pr.sel.gen = epoch
	g.sel = pr.sel
	g.nReaders = pr.sel.nReaders
	g.selReady = true
	g.selCond.Broadcast()
	coord := g.coordConn
	g.selMu.Unlock()

	// Retire (do not close) the old epoch's connections: the reader drains
	// replay steps from them before hanging them up; Close() reaps any
	// survivors.
	g.connMu.Lock()
	g.retired = append(g.retired, g.conns...)
	g.conns = nil
	g.connMu.Unlock()

	// New placement: derive per-pair transports from the node map the
	// reader shipped (shm on-node, rdma across nodes), mirroring
	// placement.TransportFor. Without nodes the existing map stays.
	if len(pr.nodes) > 0 {
		nodes := pr.nodes
		writerNode := g.opts.WriterNode
		g.curTransport = func(w, r int) (evpath.TransportKind, int, int) {
			wn := 0
			if writerNode != nil {
				wn = writerNode(w)
			}
			rn := int(nodes[r])
			if wn == rn {
				return evpath.ShmTransport, wn, rn
			}
			return evpath.RDMATransport, wn, rn
		}
	}

	// The epoch bump already invalidates cached plans (gen mismatch);
	// dropping them also frees the old fan-out's memory. Distribution
	// caching restarts from scratch: the new peer set has seen nothing.
	g.planMu.Lock()
	g.plans = make(map[varPlanKey]*varPlanEntry)
	g.planMu.Unlock()
	g.lastDist = make(map[string]string)
	g.sentAnyDist = false

	// Atomic contact re-registration: publishes the (unchanged) coordinator
	// contact under the new regime; late joiners resolve the live session.
	g.dir.Register(g.key, g.key+".coord") //nolint:errcheck // replacement cannot fail on Mem

	if g.mon != nil {
		g.mon.Incr("reconfig.count", 1)
		g.mon.Incr("reconfig.drain_ns", drain.Nanoseconds())
		g.mon.Observe("reconfig.drain", drain.Seconds())
	}

	if coord == nil {
		return fmt.Errorf("core: reconfig with no coordinator connection")
	}
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: evpath.Record{
		"kind": msgReconfigAck, "epoch": int64(epoch), "boundary": boundary,
	}})
	if err != nil {
		return err
	}
	if err := coord.Send(buf); err != nil {
		return err
	}
	// Re-handshake at the configured caching level; flush completes the
	// return to Streaming.
	g.sess.tryTransition(StateHandshaking) //nolint:errcheck
	return nil
}

// peerClosed tears the writer's data plane down after the reader side
// went away — via an explicit session-closed message or a dead
// coordinator connection. Subsequent flushes fail with ErrSessionClosed.
func (g *WriterGroup) peerClosed() {
	g.selMu.Lock()
	if g.closed {
		g.selMu.Unlock()
		return
	}
	g.readerClosed = true
	if !g.selReady {
		g.selErr = ErrSessionClosed
		g.selReady = true
		g.selCond.Broadcast()
	}
	g.selMu.Unlock()
	// Producers blocked on tenant credits must observe the hangup too:
	// their credits will never come back from a dead data plane.
	g.credits.close()
	g.sess.tryTransition(StateDraining)
	g.closeDataConns()
}

// closeDataConns closes every data connection, current and retired.
func (g *WriterGroup) closeDataConns() {
	g.connMu.Lock()
	defer g.connMu.Unlock()
	for _, row := range g.conns {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, row := range g.retired {
		for _, c := range row {
			if c != nil {
				c.Close()
			}
		}
	}
}

func (g *WriterGroup) failSelections(err error) {
	g.selMu.Lock()
	if !g.selReady {
		g.selErr = err
		g.selReady = true
		g.selCond.Broadcast()
	}
	g.selMu.Unlock()
}

// waitSelections blocks until the reader side has declared its
// distributions (the writer's view of handshake Step 2).
func (g *WriterGroup) waitSelections() (readerSelections, error) {
	g.selMu.Lock()
	defer g.selMu.Unlock()
	for !g.selReady {
		g.selCond.Wait()
	}
	return g.sel, g.selErr
}

// ensureConns lazily dials the data connections of the current epoch.
// Contact names are epoch-qualified, so a reconfigured session can never
// cross-connect with a retiring epoch's listeners.
func (g *WriterGroup) ensureConns() error {
	if g.conns != nil {
		return nil
	}
	epoch := g.sess.Epoch()
	conns := make([][]evpath.Conn, g.NWriters)
	for w := 0; w < g.NWriters; w++ {
		conns[w] = make([]evpath.Conn, g.nReaders)
		for r := 0; r < g.nReaders; r++ {
			kind, nodeW, nodeR := g.curTransport(w, r)
			conn, err := g.net.Dial(dataContact(g.key, epoch, r), kind, nodeW, nodeR)
			if err != nil {
				return fmt.Errorf("core: dialing reader %d from writer %d: %w", r, w, err)
			}
			if g.mon != nil {
				g.mon.Incr("conn.dial."+kind.String(), 1)
			}
			// Identify ourselves and the writer-group size so the reader
			// can track step completion deterministically.
			hello, err := evpath.EncodeEvent(&evpath.Event{
				Meta: evpath.Record{"kind": "hello", "writer": int64(w), "nwriters": int64(g.NWriters)},
			})
			if err != nil {
				return err
			}
			if g.opts.WrapConn != nil {
				conn = g.opts.WrapConn(conn)
			}
			if err := g.sendWithRetry(conn, hello); err != nil {
				return err
			}
			conns[w][r] = conn
		}
	}
	g.connMu.Lock()
	g.conns = conns
	g.connMu.Unlock()
	return nil
}

func (g *WriterGroup) sendWriterDist(ps *pendingStep, name string) error {
	g.selMu.Lock()
	coord := g.coordConn
	g.selMu.Unlock()
	if coord == nil {
		return fmt.Errorf("core: no coordinator connection")
	}
	// Gather this var's boxes across ranks (empty box when a rank did not
	// write it).
	var nd int
	var elemSize int64
	boxes := make([]ndarray.Box, g.NWriters)
	for w := 0; w < g.NWriters; w++ {
		for _, v := range ps.vars[w] {
			if v.meta.Name == name && v.meta.Kind == GlobalArrayVar {
				boxes[w] = v.meta.Box
				nd = len(v.meta.GlobalShape)
				elemSize = int64(v.meta.ElemSize)
			}
		}
	}
	if nd == 0 {
		return nil // scalar or PG var: no distribution to exchange
	}
	ev := &evpath.Event{Meta: evpath.Record{
		"kind":     msgWriterDist,
		"step":     ps.step,
		"var":      name,
		"ndims":    int64(nd),
		"nwriters": int64(g.NWriters),
		"elemsize": elemSize,
		"boxes":    encodeBoxes(boxes, nd),
	}}
	buf, err := evpath.EncodeEvent(ev)
	if err != nil {
		return err
	}
	if err := coord.Send(buf); err != nil {
		return err
	}
	if g.mon != nil {
		g.mon.Incr("handshake.writer-dist.sent", 1)
	}
	return nil
}

// SessionState reports the writer session's lifecycle state.
func (g *WriterGroup) SessionState() SessionState { return g.sess.State() }

// SessionEpoch reports the writer session's epoch (1 = initial
// configuration; each reconfiguration bumps it).
func (g *WriterGroup) SessionEpoch() uint64 { return g.sess.Epoch() }

// ---------------------------------------------------------------------
// Reader-side control plane

func (g *ReaderGroup) coordPump() {
	for {
		buf, err := g.coordConn.Recv()
		if err != nil {
			return
		}
		ev, err := evpath.DecodeEvent(buf)
		if err != nil {
			continue
		}
		switch kind, _ := ev.Meta.GetString("kind"); kind {
		case msgWriterDist:
			g.handleWriterDist(ev)
		case msgPluginAck:
			g.handlePluginAck(ev)
		case msgMonitorReport:
			g.handleMonitorReport(ev)
		case msgReconfigAck:
			epoch, _ := ev.Meta.GetInt("epoch")
			boundary, _ := ev.Meta.GetInt("boundary")
			g.mu.Lock()
			ch := g.reconfigAck
			g.reconfigAck = nil
			g.mu.Unlock()
			if ch != nil {
				ch <- reconfigAckMsg{epoch: uint64(epoch), boundary: boundary}
			}
		}
	}
}

func (g *ReaderGroup) handleWriterDist(ev *evpath.Event) {
	name, _ := ev.Meta.GetString("var")
	nd, _ := ev.Meta.GetInt("ndims")
	nw, _ := ev.Meta.GetInt("nwriters")
	es, _ := ev.Meta.GetInt("elemsize")
	step, _ := ev.Meta.GetInt("step")
	flat, _ := ev.Meta.GetInts("boxes")
	boxes, err := decodeBoxes(flat, int(nd), int(nw))
	if err != nil {
		return
	}
	g.mu.Lock()
	g.dists[name] = distInfo{step: step, ndims: int(nd), elemSize: int(es), boxes: boxes}
	g.nWriters = int(nw)
	g.cond.Broadcast()
	g.mu.Unlock()
	if g.mon != nil {
		g.mon.Incr("handshake.writer-dist.recv", 1)
	}
}

// selectionMeta builds the wire form of a reader-side distribution: the
// shared body of the initial reader-dist handshake message and of
// reconfiguration requests. arraySel maps each variable to one box per
// reader rank; pgSel lists each rank's claimed writer ranks.
func selectionMeta(nReaders int, arraySel map[string][]ndarray.Box, pgSel [][]int64) evpath.Record {
	meta := evpath.Record{"nreaders": int64(nReaders)}
	names := make([]string, 0, len(arraySel))
	for name := range arraySel {
		names = append(names, name)
	}
	var nameList string
	for i, name := range names {
		if i > 0 {
			nameList += "\x00"
		}
		nameList += name
		boxes := arraySel[name]
		nd := 0
		for _, b := range boxes {
			if b.NDims() > 0 {
				nd = b.NDims()
			}
		}
		// Normalize empty boxes to rank-nd empties.
		norm := make([]ndarray.Box, len(boxes))
		for i, b := range boxes {
			if b.NDims() != nd {
				norm[i] = ndarray.Box{Lo: make([]int64, nd), Hi: make([]int64, nd)}
			} else {
				norm[i] = b
			}
		}
		meta["sel."+name+".ndims"] = int64(nd)
		meta["sel."+name+".boxes"] = encodeBoxes(norm, nd)
	}
	meta["selvars"] = nameList
	// PG claims: flattened (reader, count, writers...) list.
	var pg []int64
	for r, ws := range pgSel {
		if len(ws) == 0 {
			continue
		}
		pg = append(pg, int64(r), int64(len(ws)))
		pg = append(pg, ws...)
	}
	meta["pgsel"] = pg
	return meta
}

// sendSelections transmits the reader-side distribution to the writer
// coordinator (handshake Step 2, reader's half). Runs once, triggered by
// the first BeginStep after all ranks entered.
func (g *ReaderGroup) sendSelections() error {
	g.mu.Lock()
	meta := selectionMeta(g.NReaders, g.arraySel, g.pgSel)
	g.mu.Unlock()
	meta["kind"] = msgReaderDist
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta})
	if err != nil {
		return err
	}
	if err := g.coordConn.Send(buf); err != nil {
		return err
	}
	if g.mon != nil {
		g.mon.Incr("handshake.reader-dist.sent", 1)
	}
	g.sess.tryTransition(StateStreaming)
	return nil
}

// decodeReaderSelections parses a reader-side distribution (reader-dist
// or reconfig message) on the writer side.
func decodeReaderSelections(ev *evpath.Event) (readerSelections, error) {
	sel := readerSelections{
		arrays:   make(map[string][]ndarray.Box),
		decomps:  make(map[string]*ndarray.Decomposition),
		pgClaims: make(map[int][]int),
	}
	n, _ := ev.Meta.GetInt("nreaders")
	sel.nReaders = int(n)
	if sel.nReaders <= 0 {
		return sel, fmt.Errorf("core: reader-dist without nreaders")
	}
	if names, ok := ev.Meta.GetString("selvars"); ok && names != "" {
		for _, name := range splitNames(names) {
			nd, _ := ev.Meta.GetInt("sel." + name + ".ndims")
			flat, _ := ev.Meta.GetInts("sel." + name + ".boxes")
			if nd == 0 {
				continue
			}
			boxes, err := decodeBoxes(flat, int(nd), sel.nReaders)
			if err != nil {
				return sel, err
			}
			sel.arrays[name] = boxes
			// One index per (variable, selection generation), shared by all
			// writer ranks' plan builds.
			sel.decomps[name] = &ndarray.Decomposition{Boxes: boxes}
		}
	}
	if pg, ok := ev.Meta.GetInts("pgsel"); ok {
		for i := 0; i < len(pg); {
			if i+2 > len(pg) {
				break
			}
			r := int(pg[i])
			cnt := int(pg[i+1])
			i += 2
			for j := 0; j < cnt && i < len(pg); j++ {
				w := int(pg[i])
				i++
				sel.pgClaims[w] = append(sel.pgClaims[w], r)
			}
		}
	}
	return sel, nil
}

func splitNames(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\x00' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// ReconfigSpec describes a mid-run re-placement of the reader group: a
// new rank count, new per-rank selections, and optionally new node
// placement (driving the shm-vs-rdma transport choice per writer-reader
// pair on the next epoch).
type ReconfigSpec struct {
	// NReaders is the new rank count N'.
	NReaders int
	// Arrays maps each global-array variable to one selection box per new
	// rank (empty box = that rank does not read the variable).
	Arrays map[string][]ndarray.Box
	// PG lists, per new rank, the writer ranks whose process groups it
	// consumes. Nil or empty inner slices mean no claims. For replayed
	// steps the claims must fall within the union of the old claims —
	// payloads never received cannot be replayed.
	PG [][]int
	// Nodes optionally gives the node id of each new rank. When set, the
	// writer re-derives every pair's transport (same node -> shm,
	// different -> rdma) using Options.WriterNode for its own side.
	Nodes []int
}

// Reconfigure switches the reader group to a new selection decomposition,
// rank count, and/or node placement between timesteps. All current ranks
// must be between BeginStep/EndStep pairs and aligned on the same next
// step. The writer applies the change at its next step boundary; steps it
// had already flushed under the old regime are replayed locally from the
// buffered old-rank pieces, so no step is lost or duplicated. On return,
// Reader handles must be re-fetched via Reader(r) — the group now has
// spec.NReaders ranks whose next BeginStep continues seamlessly after the
// last consumed step.
func (g *ReaderGroup) Reconfigure(spec ReconfigSpec) error {
	if spec.NReaders <= 0 {
		return fmt.Errorf("core: reconfig needs at least 1 rank")
	}
	if g.quota.MaxRanks > 0 && spec.NReaders > g.quota.MaxRanks {
		return fmt.Errorf("%w: reconfig to %d reader ranks over MaxRanks %d", ErrOverQuota, spec.NReaders, g.quota.MaxRanks)
	}
	for name, boxes := range spec.Arrays {
		if len(boxes) != spec.NReaders {
			return fmt.Errorf("core: reconfig %q: %d boxes for %d ranks", name, len(boxes), spec.NReaders)
		}
	}
	if spec.Nodes != nil && len(spec.Nodes) != spec.NReaders {
		return fmt.Errorf("core: reconfig: %d nodes for %d ranks", len(spec.Nodes), spec.NReaders)
	}
	if spec.PG != nil && len(spec.PG) != spec.NReaders {
		return fmt.Errorf("core: reconfig: %d pg claims for %d ranks", len(spec.PG), spec.NReaders)
	}

	g.mu.Lock()
	if !g.selSent {
		g.mu.Unlock()
		return fmt.Errorf("core: reconfig before streaming started")
	}
	if g.reconfiguring {
		g.mu.Unlock()
		return fmt.Errorf("core: reconfiguration already in progress")
	}
	for _, rd := range g.readers {
		if rd.inStep {
			g.mu.Unlock()
			return fmt.Errorf("core: reconfig with rank %d mid-step", rd.Rank)
		}
	}
	after := g.readers[0].nextStep
	for _, rd := range g.readers {
		if rd.nextStep != after {
			g.mu.Unlock()
			return fmt.Errorf("core: reconfig with ranks at different steps (%d vs %d)", after, rd.nextStep)
		}
	}
	after-- // last step every rank consumed
	oldN := g.NReaders
	g.reconfiguring = true
	g.mu.Unlock()

	fail := func(err error) error {
		g.mu.Lock()
		g.reconfiguring = false
		g.mu.Unlock()
		return err
	}
	if err := g.sess.transition(StateReconfiguring); err != nil {
		return fail(err)
	}

	// The next epoch's listeners must exist before the request goes out:
	// the writer may dial them the moment it acks.
	newEpoch := g.sess.Epoch() + 1
	newListeners := make([]*evpath.Listener, spec.NReaders)
	for r := 0; r < spec.NReaders; r++ {
		l, err := g.net.Listen(dataContact(g.key, newEpoch, r))
		if err != nil {
			for _, ll := range newListeners[:r] {
				ll.Close()
			}
			return fail(err)
		}
		newListeners[r] = l
		go g.acceptLoop(newEpoch, r, l)
	}

	// Canonical selection state for the new regime.
	arrays := make(map[string][]ndarray.Box, len(spec.Arrays))
	for name, boxes := range spec.Arrays {
		cp := make([]ndarray.Box, len(boxes))
		copy(cp, boxes)
		arrays[name] = cp
	}
	pgSel := make([][]int64, spec.NReaders)
	for r, ws := range spec.PG {
		if len(ws) == 0 {
			continue
		}
		pgSel[r] = make([]int64, len(ws))
		for i, w := range ws {
			pgSel[r][i] = int64(w)
		}
	}

	ackCh := make(chan reconfigAckMsg, 1)
	g.mu.Lock()
	g.reconfigAck = ackCh
	g.mu.Unlock()

	meta := selectionMeta(spec.NReaders, arrays, pgSel)
	meta["kind"] = msgReconfig
	meta["after"] = after
	if spec.Nodes != nil {
		nodes := make([]int64, len(spec.Nodes))
		for i, n := range spec.Nodes {
			nodes[i] = int64(n)
		}
		meta["nodes"] = nodes
	}
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta})
	if err != nil {
		return fail(err)
	}
	if err := g.coordConn.Send(buf); err != nil {
		return fail(err)
	}
	if g.mon != nil {
		g.mon.Incr("reconfig.requests.sent", 1)
	}

	// The writer acks at its next step boundary; it must still be writing.
	var ack reconfigAckMsg
	select {
	case ack = <-ackCh:
	case <-time.After(30 * time.Second):
		return fail(fmt.Errorf("core: reconfig ack timed out (writer idle?)"))
	}
	if ack.epoch != newEpoch {
		return fail(fmt.Errorf("core: reconfig epoch mismatch: writer %d, reader %d", ack.epoch, newEpoch))
	}

	// Steps in (after, boundary) were flushed under the old regime. Wait
	// until every old rank has them complete, then snapshot the buffered
	// pieces for replay under the new selections — the no-step-lost half
	// of the guarantee. (No-step-duplicated: the new ranks resume at
	// after+1 and the writer never re-flushes below the boundary.)
	g.mu.Lock()
	for s := after + 1; s < ack.boundary; s++ {
		st := g.step(s)
		for r := 0; r < oldN; r++ {
			for g.nWriters == 0 || len(st.doneWriters[r]) != g.nWriters {
				g.cond.Wait()
			}
		}
	}
	for s := after + 1; s < ack.boundary; s++ {
		g.replay[s] = snapshotReplay(g.steps[s], oldN, spec.NReaders)
	}
	for s := range g.steps {
		if s < ack.boundary {
			delete(g.steps, s)
		}
	}

	// Swap in the new regime: selections, rank handles, epoch-scoped
	// connection accounting, and a fresh unpack-plan cache.
	g.NReaders = spec.NReaders
	g.arraySel = arrays
	g.pgSel = pgSel
	g.readers = make([]*Reader, spec.NReaders)
	for i := range g.readers {
		g.readers[i] = &Reader{g: g, Rank: i, nextStep: after + 1, entered: true}
	}
	g.enteredCnt = spec.NReaders
	g.upPlans = make(map[upKey][]upEntry)
	oldListeners := g.listeners
	g.listeners = newListeners
	g.dataEpoch = newEpoch
	var oldConns []evpath.Conn
	keep := g.dataConns[:0]
	for _, ec := range g.dataConns {
		if ec.epoch < newEpoch {
			oldConns = append(oldConns, ec.conn)
		} else {
			keep = append(keep, ec)
		}
	}
	g.dataConns = keep
	g.reconfiguring = false
	g.cond.Broadcast()
	g.mu.Unlock()

	// Hang up the retired epoch: its pumps exit, the writer's retired
	// rows observe the close.
	for _, l := range oldListeners {
		l.Close()
	}
	for _, c := range oldConns {
		c.Close()
	}

	// Re-ship DC plug-ins previously deployed into the writers' address
	// space: the install is replace-by-name, so this is idempotent for
	// surviving peers and completes the state for a writer that restarted.
	g.mu.Lock()
	deployed := make([]dcplugin.Plugin, len(g.deployed))
	copy(deployed, g.deployed)
	g.mu.Unlock()
	for _, p := range deployed {
		if err := g.pluginControl(evpath.Record{
			"kind": msgDeployPlugin, "name": p.Name, "source": p.Source,
		}, p.Name); err != nil {
			return err
		}
		if g.mon != nil {
			g.mon.Incr("reconfig.plugins_reshipped", 1)
		}
	}

	g.sess.bumpEpoch()
	if g.mon != nil {
		g.mon.Incr("reconfig.count", 1)
	}
	return g.sess.transition(StateStreaming)
}

// SessionState reports the reader session's lifecycle state.
func (g *ReaderGroup) SessionState() SessionState { return g.sess.State() }

// SessionEpoch reports the reader session's epoch.
func (g *ReaderGroup) SessionEpoch() uint64 { return g.sess.Epoch() }

package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"flexio/internal/ndarray"
	"flexio/internal/shm"
)

func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var sum int64
		if err := parallelFor(100, workers, func(i int) error {
			atomic.AddInt64(&sum, int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != 4950 {
			t.Fatalf("workers=%d: sum %d, want 4950", workers, sum)
		}
	}
	if err := parallelFor(0, 4, func(int) error { t.Fatal("fn on n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForError(t *testing.T) {
	boom := errors.New("boom")
	var calls int64
	err := parallelFor(1000, 4, func(i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Workers stop picking up new items after the failure; far fewer than
	// all 1000 items should have run.
	if atomic.LoadInt64(&calls) == 1000 {
		t.Fatal("error did not short-circuit the loop")
	}
}

// minimalWriterGroup builds a WriterGroup sufficient for exercising
// piecesFor without a transport.
func minimalWriterGroup(nWriters int) *WriterGroup {
	return &WriterGroup{
		NWriters:    nWriters,
		plans:       make(map[varPlanKey]*varPlanEntry),
		payloadPool: shm.NewBufferPool(0),
	}
}

func TestPiecesForSelectionMismatch(t *testing.T) {
	g := minimalWriterGroup(1)
	shape := []int64{8, 8}
	v := varData{
		meta: VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8,
			GlobalShape: shape, Box: ndarray.BoxFromShape(shape)},
		data: make([]byte, 8*8*8),
	}
	sel := readerSelections{
		nReaders: 3,
		arrays:   map[string][]ndarray.Box{"f": {ndarray.BoxFromShape(shape)}}, // 1 box for 3 readers
	}
	if _, err := g.piecesFor(0, 0, v, sel); err == nil {
		t.Fatal("selection/reader-count mismatch must be an explicit error, not silent truncation")
	}
}

func TestPiecesForUsesPlanCache(t *testing.T) {
	g := minimalWriterGroup(1)
	shape := []int64{8, 8}
	box := ndarray.BoxFromShape(shape)
	v := varData{
		meta: VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8,
			GlobalShape: shape, Box: box},
		data: fillArrayBytes(box, box),
	}
	half := ndarray.NewBox([]int64{0, 0}, []int64{8, 4})
	sel := readerSelections{
		nReaders: 2,
		gen:      1,
		arrays:   map[string][]ndarray.Box{"f": {half, ndarray.NewBox([]int64{0, 4}, []int64{8, 8})}},
	}
	for step := 0; step < 3; step++ {
		out, err := g.piecesFor(int64(step), 0, v, sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 || len(out[0]) != 1 || len(out[1]) != 1 {
			t.Fatalf("step %d: pieces %v", step, out)
		}
		g.releaseOutgoing(out)
	}
	if len(g.plans) != 1 {
		t.Fatalf("plan cache holds %d entries, want 1", len(g.plans))
	}
	entry := g.plans[varPlanKey{name: "f", writer: 0}]
	if len(entry.targets) != 2 {
		t.Fatalf("cached entry has %d targets, want 2", len(entry.targets))
	}

	// A new selection generation invalidates the cached entry.
	sel.gen = 2
	sel.arrays["f"] = []ndarray.Box{ndarray.BoxFromShape(shape), {Lo: []int64{0, 0}, Hi: []int64{0, 0}}}
	if out, err := g.piecesFor(3, 0, v, sel); err != nil {
		t.Fatal(err)
	} else {
		g.releaseOutgoing(out)
	}
	entry = g.plans[varPlanKey{name: "f", writer: 0}]
	if entry.gen != 2 || len(entry.targets) != 1 {
		t.Fatalf("entry not rebuilt: gen=%d targets=%d", entry.gen, len(entry.targets))
	}

	// A changed writer box (same generation) also invalidates.
	v.meta.Box = ndarray.NewBox([]int64{0, 0}, []int64{4, 8})
	v.data = make([]byte, 4*8*8)
	if out, err := g.piecesFor(4, 0, v, sel); err != nil {
		t.Fatal(err)
	} else {
		g.releaseOutgoing(out)
	}
	entry = g.plans[varPlanKey{name: "f", writer: 0}]
	if !entry.box.Equal(v.meta.Box) {
		t.Fatal("entry not rebuilt after writer box change")
	}
}

func TestPlanCacheSteadyStateCounters(t *testing.T) {
	// Over a multi-step M×N run with fixed decompositions, plans must be
	// built once and then replayed: builds stay flat while hits grow.
	wmon, rmon := runMxNSplit(t, 4, 2, Options{}, 5)
	wb := wmon.Counts["plan.cache.build"]
	wh := wmon.Counts["plan.cache.hit"]
	if wb != 4 {
		t.Fatalf("writer plan builds = %d, want 4 (one per writer rank)", wb)
	}
	if wh != 4*4 {
		t.Fatalf("writer plan hits = %d, want 16 (4 ranks × 4 steady steps)", wh)
	}
	rb := rmon.Counts["plan.cache.build"]
	rh := rmon.Counts["plan.cache.hit"]
	if rb == 0 || rh == 0 {
		t.Fatalf("reader plan cache unused: builds=%d hits=%d", rb, rh)
	}
	if rh < rb {
		t.Fatalf("reader cache mostly missing: builds=%d hits=%d", rb, rh)
	}
}

func TestMxNParallelExecutor(t *testing.T) {
	// Large fan-out with the parallel executor explicitly enabled (and
	// enough writers that multiple workers really run); data integrity is
	// checked inside runMxNSplit. This is the -race coverage for the
	// parallel plan-execution path.
	runMxNSplit(t, 8, 4, Options{PackWorkers: 4}, 3)
}

func TestMxNSequentialExecutor(t *testing.T) {
	runMxNSplit(t, 4, 2, Options{PackWorkers: 1}, 2)
}

func TestReadArrayReleaseReuse(t *testing.T) {
	// ReleaseArray parks the assembly buffer for the next step: the pool
	// must report reuses once the application returns buffers.
	h := newHarness()
	shape := []int64{16, 16}
	global := ndarray.BoxFromShape(shape)
	const steps = 4
	wg, err := NewWriterGroup(h.net, h.dir, "release-reuse", 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "release-reuse", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		wr := wg.Writer(0)
		for s := 0; s < steps; s++ {
			if err := wr.BeginStep(int64(s)); err != nil {
				done <- err
				return
			}
			meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: global}
			if err := wr.Write(meta, fillArrayBytes(global, global)); err != nil {
				done <- err
				return
			}
			if err := wr.EndStep(); err != nil {
				done <- err
				return
			}
		}
		done <- wg.Close()
	}()
	rd := rg.Reader(0)
	if err := rd.SelectArray("f", global); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if _, ok := rd.BeginStep(); !ok {
			t.Fatalf("step %d: unexpected EOS", s)
		}
		data, _, err := rd.ReadArray("f")
		if err != nil {
			t.Fatal(err)
		}
		rd.ReleaseArray(data)
		rd.EndStep()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rg.Close()
	stats := rg.AsmPoolStats()
	if stats.Reuses < steps-1 {
		t.Fatalf("assembly pool reuses = %d, want >= %d", stats.Reuses, steps-1)
	}
	if stats.Allocs != 1 {
		t.Fatalf("assembly pool allocs = %d, want 1", stats.Allocs)
	}
	// Every buffer came back through ReleaseArray, so occupancy drains to
	// zero while the high-water mark keeps the peak.
	if stats.BytesInUse != 0 {
		t.Fatalf("assembly pool holds %d bytes after full release", stats.BytesInUse)
	}
	if stats.HighWater < 16*16*8 {
		t.Fatalf("assembly pool high-water = %d, want >= one step buffer", stats.HighWater)
	}
}

func TestDisjointRegions(t *testing.T) {
	mk := func(lo, hi int64) piece {
		return piece{box: ndarray.NewBox([]int64{lo}, []int64{hi})}
	}
	if !disjointRegions([]piece{mk(0, 4), mk(4, 8), mk(8, 12)}) {
		t.Fatal("disjoint pieces reported overlapping")
	}
	if disjointRegions([]piece{mk(0, 5), mk(4, 8)}) {
		t.Fatal("overlapping pieces reported disjoint")
	}
	if !disjointRegions(nil) {
		t.Fatal("empty set must be disjoint")
	}
}

func TestWriterPayloadPoolRecycles(t *testing.T) {
	// In steady state the writer's payload pool must serve deposited
	// copies and packed pieces from its free lists instead of growing.
	wmon, _ := runMxNSplit(t, 2, 2, Options{}, 6)
	_ = wmon
	// runMxNSplit closed the group already; a second identical run must
	// behave identically (guards against pool state leaking across runs).
	runMxNSplit(t, 2, 2, Options{}, 2)
}

func TestMxNLargeParallelUnpack(t *testing.T) {
	// Push per-reader assembly over parallelUnpackBytes so the parallel
	// unpack path executes with real data (64×64 float64 quarters from 4
	// writers = 128 KB per piece, 512 KB total per reader).
	t.Run("big", func(t *testing.T) {
		h := newHarness()
		shape := []int64{256, 256}
		global := ndarray.BoxFromShape(shape)
		wdec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		wg, err := NewWriterGroup(h.net, h.dir, "big-unpack", 4, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := NewReaderGroup(h.net, h.dir, "big-unpack", 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 4)
		for w := 0; w < 4; w++ {
			w := w
			go func() {
				wr := wg.Writer(w)
				if err := wr.BeginStep(0); err != nil {
					done <- err
					return
				}
				meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: wdec.Boxes[w]}
				if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[w], global)); err != nil {
					done <- err
					return
				}
				done <- wr.EndStep()
			}()
		}
		rd := rg.Reader(0)
		if err := rd.SelectArray("f", global); err != nil {
			t.Fatal(err)
		}
		if _, ok := rd.BeginStep(); !ok {
			t.Fatal("no step")
		}
		data, box, err := rd.ReadArray("f")
		if err != nil {
			t.Fatal(err)
		}
		if want := fillArrayBytes(box, global); !bytesEqual(data, want) {
			t.Fatal("parallel unpack produced wrong bytes")
		}
		rd.EndStep()
		for w := 0; w < 4; w++ {
			if err := <-done; err != nil {
				t.Fatalf("writer: %v", err)
			}
		}
		wg.Close()
		rg.Close()
	})
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanEntryValid(t *testing.T) {
	box := ndarray.BoxFromShape([]int64{4, 4})
	e := &varPlanEntry{gen: 3, box: box, elemSize: 8}
	if !e.valid(3, box, 8) {
		t.Fatal("identical key must be valid")
	}
	if e.valid(4, box, 8) || e.valid(3, ndarray.BoxFromShape([]int64{4, 5}), 8) || e.valid(3, box, 4) {
		t.Fatal("stale entries must be invalid")
	}
	_ = fmt.Sprintf("%v", e) // keep fmt imported alongside future debugging
}

package core

import (
	"fmt"
	"sync"
	"time"

	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
)

// Data Conditioning plug-in deployment (Section II.F). Plug-ins are
// created on the reader side; besides running them locally on arriving
// events (ReaderGroup.InstallPlugin), the analytics can deploy them *into
// the simulation's address space* at runtime: the plug-in's source string
// travels over the coordinator connection — a channel separate from the
// ones used for data movement — is compiled on the writer side, and from
// then on conditions every outgoing event before it reaches a transport.
// Plug-ins can likewise be removed at runtime, so a codelet can be
// migrated between the two sides mid-run ("they can be migrated across
// address spaces at runtime").

const (
	msgDeployPlugin = "deploy-plugin"
	msgRemovePlugin = "remove-plugin"
	msgPluginAck    = "plugin-ack"
)

// writerPlugins is the writer group's installed-codelet table.
type writerPlugins struct {
	mu      sync.Mutex
	entries []writerPluginEntry
}

type writerPluginEntry struct {
	name string
	fn   evpath.FilterFunc
}

// install adds or replaces a named plug-in.
func (w *writerPlugins) install(name string, fn evpath.FilterFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.entries {
		if w.entries[i].name == name {
			w.entries[i].fn = fn
			return
		}
	}
	w.entries = append(w.entries, writerPluginEntry{name: name, fn: fn})
}

// remove deletes a named plug-in; it reports whether it existed.
func (w *writerPlugins) remove(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.entries {
		if w.entries[i].name == name {
			w.entries = append(w.entries[:i], w.entries[i+1:]...)
			return true
		}
	}
	return false
}

// empty reports whether no codelet is installed — the data path checks
// it to skip per-event span bookkeeping when conditioning is off.
func (w *writerPlugins) empty() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries) == 0
}

// apply runs the chain over an event; nil means dropped.
func (w *writerPlugins) apply(ev *evpath.Event) (*evpath.Event, error) {
	w.mu.Lock()
	chain := make([]writerPluginEntry, len(w.entries))
	copy(chain, w.entries)
	w.mu.Unlock()
	for _, e := range chain {
		out, err := e.fn(ev)
		if err != nil {
			return nil, fmt.Errorf("core: writer plug-in %q: %w", e.name, err)
		}
		if out == nil {
			return nil, nil
		}
		ev = out
	}
	return ev, nil
}

// handlePluginControl processes a deploy/remove request on the writer
// coordinator and returns the ack event to send back.
func (g *WriterGroup) handlePluginControl(ev *evpath.Event) *evpath.Event {
	kind, _ := ev.Meta.GetString("kind")
	name, _ := ev.Meta.GetString("name")
	ack := evpath.Record{"kind": msgPluginAck, "name": name, "ok": true}
	switch kind {
	case msgDeployPlugin:
		src, _ := ev.Meta.GetString("source")
		filter, err := dcplugin.Plugin{Name: name, Source: src}.Filter()
		if err != nil {
			ack["ok"] = false
			ack["error"] = err.Error()
			break
		}
		g.plugins.install(name, filter)
		if g.mon != nil {
			g.mon.Incr("dc.writer.installed", 1)
		}
	case msgRemovePlugin:
		if !g.plugins.remove(name) {
			ack["ok"] = false
			ack["error"] = fmt.Sprintf("core: no writer plug-in %q", name)
		}
	}
	return &evpath.Event{Meta: ack}
}

// --- Reader-side API ---

// DeployPluginToWriters compiles-at-destination: the plug-in's source is
// shipped to the writer side over the coordinator channel and installed
// there, so data is conditioned *before* it crosses the transport (e.g. a
// selection plug-in cuts the moved volume). Blocks until the writer side
// acknowledges (or rejects) the deployment.
func (g *ReaderGroup) DeployPluginToWriters(p dcplugin.Plugin) error {
	// Validate locally first for a fast, precise error.
	if _, err := dcplugin.Compile(p.Source); err != nil {
		return err
	}
	return g.pluginControl(evpath.Record{
		"kind": msgDeployPlugin, "name": p.Name, "source": p.Source,
	}, p.Name)
}

// RemoveWriterPlugin uninstalls a previously deployed plug-in from the
// writer side.
func (g *ReaderGroup) RemoveWriterPlugin(name string) error {
	return g.pluginControl(evpath.Record{"kind": msgRemovePlugin, "name": name}, name)
}

// MigratePluginToWriters moves a conditioning step from the reader's
// address space into the writers': it installs the codelet writer-side
// and removes the same-named local filter — the paper's runtime plug-in
// migration along the I/O path.
func (g *ReaderGroup) MigratePluginToWriters(p dcplugin.Plugin) error {
	if err := g.DeployPluginToWriters(p); err != nil {
		return err
	}
	g.removeLocalPlugin(p.Name)
	return nil
}

// pluginControl sends a control record and waits for the matching ack.
func (g *ReaderGroup) pluginControl(meta evpath.Record, name string) error {
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta})
	if err != nil {
		return err
	}
	ch := make(chan error, 1)
	g.mu.Lock()
	if g.pluginAcks == nil {
		g.pluginAcks = make(map[string]chan error)
	}
	g.pluginAcks[name] = ch
	g.mu.Unlock()
	if err := g.coordConn.Send(buf); err != nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("core: plug-in control %q timed out", name)
	}
}

// handlePluginAck resolves a pending control call (runs on coordPump).
func (g *ReaderGroup) handlePluginAck(ev *evpath.Event) {
	name, _ := ev.Meta.GetString("name")
	ok, _ := ev.Meta.GetBool("ok")
	g.mu.Lock()
	ch := g.pluginAcks[name]
	delete(g.pluginAcks, name)
	g.mu.Unlock()
	if ch == nil {
		return
	}
	if ok {
		ch <- nil
		return
	}
	msg, _ := ev.Meta.GetString("error")
	ch <- fmt.Errorf("core: writer rejected plug-in %q: %s", name, msg)
}

// removeLocalPlugin drops a reader-side filter by name.
func (g *ReaderGroup) removeLocalPlugin(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := range g.plugins {
		if g.plugins[i].name == name {
			g.plugins = append(g.plugins[:i], g.plugins[i+1:]...)
			return
		}
	}
}

package core

import (
	"sync"
	"testing"
	"time"

	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
	"flexio/internal/monitor"
)

// startPGStream couples nw writers to one reader over the PG pattern and
// returns the groups, pre-selected (the reader claims all writers).
func startPGStream(t *testing.T, name string, nw int, wm *monitor.Monitor) (*WriterGroup, *ReaderGroup, *Reader) {
	t.Helper()
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, name, nw, Options{}, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, name, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	claims := make([]int, nw)
	for i := range claims {
		claims[i] = i
	}
	if err := rd.SelectProcessGroups(claims); err != nil {
		t.Fatal(err)
	}
	return wg, rg, rd
}

// writeStep emits one PG step from every writer rank in the background
// and returns a completion channel. Synchronous EndStep blocks until the
// reader's first BeginStep sends its selections, so callers must begin
// reading before waiting on the channel.
func writeStep(t *testing.T, wg *WriterGroup, step int64, payload []float64) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	var ws sync.WaitGroup
	for w := 0; w < wg.NWriters; w++ {
		w := w
		ws.Add(1)
		go func() {
			defer ws.Done()
			wr := wg.Writer(w)
			if err := wr.BeginStep(step); err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			if err := wr.Write(VarMeta{Name: "p", Kind: ProcessGroupVar, ElemSize: 8},
				dcplugin.FloatsToBytes(payload)); err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			if err := wr.EndStep(); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}()
	}
	go func() {
		ws.Wait()
		close(done)
	}()
	return done
}

func TestDeployPluginToWriters(t *testing.T) {
	wm := monitor.New("writers")
	wg, rg, rd := startPGStream(t, "deploy", 2, wm)

	// The reader must enter the stream (selections sent) before control
	// traffic; BeginStep is deferred until data arrives, so deploy first:
	// deployment only needs the coordinator connection, which exists.
	if err := rg.DeployPluginToWriters(dcplugin.SamplePlugin(4)); err != nil {
		t.Fatal(err)
	}

	payload := make([]float64, 100)
	for i := range payload {
		payload[i] = float64(i)
	}
	done := writeStep(t, wg, 0, payload)

	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	<-done
	groups, err := rd.ReadProcessGroups("p")
	if err != nil {
		t.Fatal(err)
	}
	for w, raw := range groups {
		got := dcplugin.BytesToFloats(raw)
		if len(got) != 25 {
			t.Fatalf("writer %d payload not conditioned at source: %d values", w, len(got))
		}
		if got[1] != 4 {
			t.Fatalf("writer %d wrong sample content: %v", w, got[:2])
		}
	}
	rd.EndStep()
	if wm.Snapshot().Counts["dc.writer.installed"] != 1 {
		t.Fatal("writer-side install not recorded")
	}
	// The conditioned stream moved ~1/4 of the bytes.
	sent := wm.Snapshot().Volumes["data.bytes"]
	if sent > int64(2*len(payload)*8) {
		t.Fatalf("writer sent %d bytes; plug-in should have cut the volume", sent)
	}
	wg.Close()
	rg.Close()
}

func TestDeployPluginCompileErrorRejected(t *testing.T) {
	wg, rg, _ := startPGStream(t, "deploy-bad", 1, nil)
	defer wg.Close()
	defer rg.Close()
	err := rg.DeployPluginToWriters(dcplugin.Plugin{Name: "bad", Source: "x = ;"})
	if err == nil {
		t.Fatal("bad plug-in source must be rejected")
	}
}

func TestRemoveWriterPlugin(t *testing.T) {
	wg, rg, rd := startPGStream(t, "deploy-rm", 1, nil)
	if err := rg.DeployPluginToWriters(dcplugin.SamplePlugin(4)); err != nil {
		t.Fatal(err)
	}
	payload := make([]float64, 40)
	done := writeStep(t, wg, 0, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 0")
	}
	<-done
	g0, _ := rd.ReadProcessGroups("p")
	if n := len(dcplugin.BytesToFloats(g0[0])); n != 10 {
		t.Fatalf("step 0 should be sampled: %d values", n)
	}
	rd.EndStep()

	if err := rg.RemoveWriterPlugin("sample-1of4"); err != nil {
		t.Fatal(err)
	}
	done1 := writeStep(t, wg, 1, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 1")
	}
	<-done1
	g1, _ := rd.ReadProcessGroups("p")
	if n := len(dcplugin.BytesToFloats(g1[0])); n != 40 {
		t.Fatalf("step 1 should be unconditioned after removal: %d values", n)
	}
	rd.EndStep()

	if err := rg.RemoveWriterPlugin("sample-1of4"); err == nil {
		t.Fatal("removing a missing plug-in must error")
	}
	wg.Close()
	rg.Close()
}

func TestMigratePluginToWriters(t *testing.T) {
	wg, rg, rd := startPGStream(t, "migrate", 1, nil)
	p := dcplugin.SamplePlugin(2)
	filter, err := p.Filter()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: condition on the reader side.
	rg.InstallNamedPlugin(p.Name, filter)
	payload := make([]float64, 40)
	done := writeStep(t, wg, 0, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 0")
	}
	<-done
	g0, _ := rd.ReadProcessGroups("p")
	if n := len(dcplugin.BytesToFloats(g0[0])); n != 20 {
		t.Fatalf("reader-side sampling broken: %d", n)
	}
	rd.EndStep()

	// Phase 2: migrate the codelet into the writers' address space.
	if err := rg.MigratePluginToWriters(p); err != nil {
		t.Fatal(err)
	}
	done1 := writeStep(t, wg, 1, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 1")
	}
	<-done1
	// Still sampled exactly once (writer side now, reader filter gone).
	g1, _ := rd.ReadProcessGroups("p")
	if n := len(dcplugin.BytesToFloats(g1[0])); n != 20 {
		t.Fatalf("migrated sampling should apply once: %d values", n)
	}
	rd.EndStep()
	wg.Close()
	rg.Close()
}

func TestWriterPluginWithBatching(t *testing.T) {
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "deploy-batch", 1, Options{Batching: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "deploy-batch", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	rd.SelectProcessGroups([]int{0})
	if err := rg.DeployPluginToWriters(dcplugin.SamplePlugin(4)); err != nil {
		t.Fatal(err)
	}
	payload := make([]float64, 100)
	done := writeStep(t, wg, 0, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	<-done
	groups, err := rd.ReadProcessGroups("p")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(dcplugin.BytesToFloats(groups[0])); n != 25 {
		t.Fatalf("batched path not conditioned: %d values", n)
	}
	rd.EndStep()
	wg.Close()
	rg.Close()
}

func TestTransientFaultsRetried(t *testing.T) {
	h := newHarness()
	var wrapped []evpath.Conn
	var wrapMu sync.Mutex
	wm := monitor.New("writers")
	opts := Options{
		SendRetries: 3,
		WrapConn: func(c evpath.Conn) evpath.Conn {
			f := evpath.InjectFaults(c, 3) // every 3rd send fails once
			wrapMu.Lock()
			wrapped = append(wrapped, f)
			wrapMu.Unlock()
			return f
		},
	}
	wg, err := NewWriterGroup(h.net, h.dir, "faults", 2, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "faults", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	rd.SelectProcessGroups([]int{0, 1})

	payload := make([]float64, 64)
	for i := range payload {
		payload[i] = float64(i)
	}
	const steps = 5
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			for s := int64(0); s < steps; s++ {
				if err := wr.BeginStep(s); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if err := wr.Write(VarMeta{Name: "p", Kind: ProcessGroupVar, ElemSize: 8},
					dcplugin.FloatsToBytes(payload)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if err := wr.EndStep(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for s := int64(0); s < steps; s++ {
		step, ok := rd.BeginStep()
		if !ok || step != s {
			t.Fatalf("step %d ok=%v want %d", step, ok, s)
		}
		groups, err := rd.ReadProcessGroups("p")
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) != 2 {
			t.Fatalf("step %d: %d groups, want 2 (data lost to faults?)", s, len(groups))
		}
		for w, raw := range groups {
			got := dcplugin.BytesToFloats(raw)
			if len(got) != 64 || got[5] != 5 {
				t.Fatalf("step %d writer %d: corrupted payload", s, w)
			}
		}
		rd.EndStep()
	}
	writers.Wait()

	// Faults were actually injected and retried.
	var totalFaults int
	wrapMu.Lock()
	for _, c := range wrapped {
		totalFaults += evpath.FaultCount(c)
	}
	wrapMu.Unlock()
	if totalFaults == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	if got := wm.Snapshot().Counts["send.retries"]; got < int64(totalFaults) {
		t.Fatalf("retries %d < faults %d", got, totalFaults)
	}
	wg.Close()
	rg.Close()
}

func TestPermanentFaultSurfaces(t *testing.T) {
	h := newHarness()
	opts := Options{
		SendRetries: 2,
		WrapConn: func(c evpath.Conn) evpath.Conn {
			return evpath.InjectFaults(c, 2) // every other send fails: retries exhaust
		},
	}
	// With failEvery=2 and 2 retries, a send sequence eventually hits
	// back-to-back faults... failEvery=2 faults sends 2,4,6 - retries at
	// 3,5 succeed. To force exhaustion, fail every send via nested wraps.
	opts.WrapConn = func(c evpath.Conn) evpath.Conn {
		inner := evpath.InjectFaults(c, 2)
		return evpath.InjectFaults(inner, 2) // combined: 3 of 4 sends fail
	}
	opts.SendRetries = -1 // disable retries entirely
	wg, err := NewWriterGroup(h.net, h.dir, "permfault", 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "permfault", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	rd.SelectProcessGroups([]int{0})
	errCh := make(chan error, 1)
	go func() {
		wr := wg.Writer(0)
		wr.BeginStep(0)
		wr.Write(VarMeta{Name: "p", Kind: ProcessGroupVar, ElemSize: 8}, make([]byte, 64))
		errCh <- wr.EndStep()
	}()
	go rd.BeginStep() // unblock selections
	if err := <-errCh; err == nil {
		t.Fatal("unretried transient fault must surface from EndStep")
	}
	wg.Close()
	rg.Close()
}

func TestWriterMonitorReportShipped(t *testing.T) {
	wm := monitor.New("writers")
	wg, rg, rd := startPGStream(t, "monrep", 2, wm)
	payload := make([]float64, 64)
	done := writeStep(t, wg, 0, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	<-done
	rd.EndStep()
	// The report travels the coordinator channel asynchronously; wait
	// briefly for it.
	var rep monitor.Report
	var step int64
	var ok bool
	for i := 0; i < 200; i++ {
		rep, step, ok = rg.WriterReport()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !ok {
		t.Fatal("no writer report received")
	}
	if step != 0 {
		t.Fatalf("report step = %d", step)
	}
	if rep.Volumes["data.bytes"] == 0 {
		t.Fatalf("report missing stream volume: %+v", rep.Volumes)
	}
	wg.Close()
	rg.Close()
}

func TestAutoDeployPluginPlacement(t *testing.T) {
	// High-volume stream -> the policy conditions at the writer side.
	wm := monitor.New("writers")
	wg, rg, rd := startPGStream(t, "autodeploy", 1, wm)
	payload := make([]float64, 4096)
	done := writeStep(t, wg, 0, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	<-done
	rd.EndStep()
	for i := 0; i < 200; i++ {
		if _, _, ok := rg.WriterReport(); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	side, err := rg.AutoDeployPlugin(dcplugin.SamplePlugin(4), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if side != WriterSide {
		t.Fatalf("high-volume stream should deploy writer-side, got %s", side)
	}
	// Next step arrives conditioned at the source.
	done1 := writeStep(t, wg, 1, payload)
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 1")
	}
	<-done1
	g1, _ := rd.ReadProcessGroups("p")
	if n := len(dcplugin.BytesToFloats(g1[0])); n != 1024 {
		t.Fatalf("auto-deployed sampling missing: %d values", n)
	}
	rd.EndStep()

	// A tiny stream keeps conditioning on the reader side.
	side2, err := rg.AutoDeployPlugin(dcplugin.Plugin{Name: "annot", Source: `setstr("a","b");`}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if side2 != ReaderSide {
		t.Fatalf("low-volume stream should stay reader-side, got %s", side2)
	}
	wg.Close()
	rg.Close()
}

func TestAutoDeployWithoutReport(t *testing.T) {
	_, rg, _ := startPGStream(t, "autodeploy-none", 1, nil)
	if _, err := rg.AutoDeployPlugin(dcplugin.SamplePlugin(2), 0); err == nil {
		t.Fatal("AutoDeployPlugin without a report must error")
	}
	rg.Close()
}

package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"flexio/internal/evpath"
	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// runShmRedist moves a 2-D global array from 4 writers to 2 readers with
// every data connection on the shm transport, journaled, and verifies
// every reader receives exactly the reference bytes. It returns the
// writer monitor report, the harvested per-channel shm gauges, and the
// flight-recorder snapshot — the three vantage points the zero-copy
// assertions below need.
func runShmRedist(t *testing.T, noZC bool, steps int) (wrep, shmRep monitor.Report, evs []flight.Event) {
	t.Helper()
	const nw, nr = 4, 2
	h := newHarness()
	j := flight.NewJournal(0)
	h.net.SetJournal(j)
	shape := []int64{64, 64}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	rdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nr, 2))
	wm := monitor.New("writers")
	opts := Options{
		NoZeroCopy: noZC,
		Transport: func(w, r int) (evpath.TransportKind, int, int) {
			return evpath.ShmTransport, 0, 0
		},
	}
	stream := fmt.Sprintf("zc-redist-%v", noZC)
	wg, err := NewWriterGroup(h.net, h.dir, stream, nw, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, stream, nr, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.SetJournal(j)
	rg.SetJournal(j)

	var writers, readers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			for s := 0; s < steps; s++ {
				if err := wr.BeginStep(int64(s)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				meta := VarMeta{
					Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
					GlobalShape: shape, Box: wdec.Boxes[w],
				}
				if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[w], global)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if err := wr.EndStep(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for r := 0; r < nr; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			for s := 0; s < steps; s++ {
				if _, ok := rd.BeginStep(); !ok {
					t.Errorf("reader %d: unexpected EOS at step %d", r, s)
					return
				}
				data, box, err := rd.ReadArray("field")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !bytes.Equal(data, fillArrayBytes(box, global)) {
					t.Errorf("reader %d step %d: data mismatch", r, s)
					return
				}
				rd.EndStep()
			}
		}()
	}
	writers.Wait()
	if err := wg.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}
	readers.Wait()
	rg.Close()

	shmMon := monitor.New("shm")
	h.net.ReportShm(shmMon, "shm")
	return wm.Snapshot(), shmMon.Snapshot(), j.Snapshot()
}

// TestZeroCopySameNodeDelivery is the acceptance test for the same-node
// hand-off: against the eager (NoZeroCopy) run it proves the payload
// bytes stopped being copied through channel memory, the writer counted
// hits instead of fallbacks, and the journaled send.shm edge collapsed
// to header-passing cost — with both runs producing byte-identical
// reader output (each is checked against the reference pattern).
func TestZeroCopySameNodeDelivery(t *testing.T) {
	const steps = 3
	// 4 writer boxes of 32×32 float64, each landing in exactly one reader
	// half: 4 pieces per step, 8 KiB of payload each.
	const piecesPerStep = 4
	const pieceBytes = 32 * 32 * 8

	wZC, shmZC, evZC := runShmRedist(t, false, steps)
	wEA, shmEA, evEA := runShmRedist(t, true, steps)

	// Writer-side gauges: every same-node array piece crossed by
	// reference, and none did once zero-copy was disabled.
	if hits := wZC.Counts["shm.zerocopy_hits"]; hits < piecesPerStep*steps {
		t.Fatalf("zero-copy hits = %d, want >= %d", hits, piecesPerStep*steps)
	}
	if fb := wZC.Counts["shm.zerocopy_fallbacks"]; fb != 0 {
		t.Fatalf("zero-copy run recorded %d fallbacks", fb)
	}
	if hits := wEA.Counts["shm.zerocopy_hits"]; hits != 0 {
		t.Fatalf("NoZeroCopy run recorded %d hits", hits)
	}
	if fb := wEA.Counts["shm.zerocopy_fallbacks"]; fb < piecesPerStep*steps {
		t.Fatalf("NoZeroCopy fallbacks = %d, want >= %d", fb, piecesPerStep*steps)
	}

	// Channel-level copy accounting: the eager run memcpys every payload
	// through channel memory (twice: copy-in + copy-out); the handle run
	// copies only headers, so the gap must cover the full payload volume.
	sum := func(r monitor.Report, suffix string) int64 {
		var s int64
		for k, v := range r.Gauges {
			if strings.HasSuffix(k, suffix) {
				s += v
			}
		}
		return s
	}
	if n := sum(shmZC, ".handle"); n < piecesPerStep*steps {
		t.Fatalf("shm channels report %d handle sends, want >= %d", n, piecesPerStep*steps)
	}
	zcCopied, eaCopied := sum(shmZC, ".copied_bytes"), sum(shmEA, ".copied_bytes")
	if gap := eaCopied - zcCopied; gap < piecesPerStep*steps*pieceBytes {
		t.Fatalf("copied-bytes gap eager-zc = %d (eager %d, zc %d), want >= %d — payloads were not handed off by reference",
			gap, eaCopied, zcCopied, piecesPerStep*steps*pieceBytes)
	}

	// Flight recorder: the hand-off is journaled, and the core send.shm
	// edge shrinks from payload-sized to header-sized.
	count := func(evs []flight.Event, point string) (n int) {
		for i := range evs {
			if evs[i].Point == point {
				n++
			}
		}
		return n
	}
	maxSendBytes := func(evs []flight.Event) (m int64) {
		for i := range evs {
			if evs[i].Point == "send.shm" && evs[i].Bytes > m {
				m = evs[i].Bytes
			}
		}
		return m
	}
	if n := count(evZC, "shm.send.handle"); n < piecesPerStep*steps {
		t.Fatalf("journal shows %d shm.send.handle crossings, want >= %d", n, piecesPerStep*steps)
	}
	if n := count(evEA, "shm.send.handle"); n != 0 {
		t.Fatalf("NoZeroCopy run journaled %d handle crossings", n)
	}
	if m := maxSendBytes(evZC); m >= pieceBytes {
		t.Fatalf("zero-copy send.shm edge still carries %d bytes, want header-only (< %d)", m, pieceBytes)
	}
	if m := maxSendBytes(evEA); m < pieceBytes {
		t.Fatalf("eager send.shm edge carries %d bytes, expected >= one payload (%d)", m, pieceBytes)
	}

	// The collapsed edge still lands on every step's critical-path
	// analysis — the proof artifact the paper-style evaluation reads.
	an := flight.Analyze(evZC)
	if len(an.Steps) < steps {
		t.Fatalf("critical-path analysis covers %d steps, want >= %d", len(an.Steps), steps)
	}
	for i := range an.Steps {
		if an.Steps[i].EdgeSum() <= 0 {
			t.Fatalf("step %d has an empty critical path", an.Steps[i].Step)
		}
	}

	// The new gauges surface through the monitor's /metrics rendering.
	var buf bytes.Buffer
	if err := wZC.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shm.zerocopy_hits", "plan.map_ns", "plan.cache.build"} {
		if !strings.Contains(buf.String(), k) {
			t.Fatalf("/metrics rendering lacks %q:\n%s", k, buf.String())
		}
	}
}

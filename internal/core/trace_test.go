package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexio/internal/evpath"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// TestStepSpansCorrelateAcrossRanks is the tracing acceptance check: one
// timestep's pack → send → assemble → plug-in spans, recorded by the
// writer-side and reader-side monitors independently, correlate by
// (step, epoch) in the merged report, and the writer-side stage spans
// hang off that step's writer.flush span.
func TestStepSpansCorrelateAcrossRanks(t *testing.T) {
	const nw, nr, steps = 2, 2, 3
	h := newHarness()
	shape := []int64{16, 16}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	rdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nr, 2))
	wm := monitor.New("writers")
	rm := monitor.New("readers")
	opts := Options{Transport: func(w, r int) (evpath.TransportKind, int, int) {
		return evpath.ShmTransport, 0, 0
	}}

	wg, err := NewWriterGroup(h.net, h.dir, "span-correlate", nw, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "span-correlate", nr, rm)
	if err != nil {
		t.Fatal(err)
	}
	// A pass-through conditioning filter so reader-side dc.plugin spans
	// appear on the arriving events.
	rg.InstallPlugin(func(ev *evpath.Event) (*evpath.Event, error) { return ev, nil })

	var writers, readers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			for s := 0; s < steps; s++ {
				if err := wr.BeginStep(int64(s)); err != nil {
					t.Error(err)
					return
				}
				meta := VarMeta{
					Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
					GlobalShape: shape, Box: wdec.Boxes[w],
				}
				if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[w], global)); err != nil {
					t.Error(err)
					return
				}
				if err := wr.EndStep(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < nr; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				t.Error(err)
				return
			}
			for s := 0; s < steps; s++ {
				step, ok := rd.BeginStep()
				if !ok {
					t.Errorf("reader %d: early EOS at %d", r, s)
					return
				}
				data, box, err := rd.ReadArray("field")
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(data, fillArrayBytes(box, global)) {
					t.Errorf("reader %d step %d: data mismatch", r, step)
				}
				rd.EndStep()
			}
		}()
	}
	writers.Wait()
	if err := wg.Close(); err != nil {
		t.Fatal(err)
	}
	readers.Wait()
	rg.Close()

	merged := monitor.Merge("trace", wm.Snapshot(), rm.Snapshot())
	const probe = int64(1) // a mid-run step
	byPoint := map[string][]monitor.Span{}
	for _, sp := range merged.Spans {
		if sp.Step == probe {
			byPoint[sp.Point] = append(byPoint[sp.Point], sp)
		}
	}
	for _, want := range []string{"writer.flush", "writer.pack", "send.shm", "reader.assemble", "dc.plugin"} {
		if len(byPoint[want]) == 0 {
			t.Fatalf("step %d has no %q span; got points %v", probe, want, pointsOf(merged.Spans))
		}
	}
	// All stages of the step ran under the same session epoch.
	for pt, sps := range byPoint {
		for _, sp := range sps {
			if sp.Epoch != 1 {
				t.Fatalf("%s span has epoch %d, want 1: %+v", pt, sp.Epoch, sp)
			}
		}
	}
	// Writer-side stage spans hang off this step's flush span.
	flushID := byPoint["writer.flush"][0].ID
	for _, pt := range []string{"writer.pack", "send.shm"} {
		for _, sp := range byPoint[pt] {
			if sp.Parent != flushID {
				t.Fatalf("%s span parent %d != flush span %d", pt, sp.Parent, flushID)
			}
		}
	}
	// Every writer rank packed and every reader rank assembled.
	wantRanks := func(pt string, n int) {
		seen := map[int]bool{}
		for _, sp := range byPoint[pt] {
			seen[sp.Rank] = true
		}
		if len(seen) != n {
			t.Fatalf("%s spans cover ranks %v, want %d ranks", pt, seen, n)
		}
	}
	wantRanks("writer.pack", nw)
	wantRanks("reader.assemble", nr)
	// Origins separate the two sides.
	if byPoint["writer.pack"][0].Origin != "writers" || byPoint["reader.assemble"][0].Origin != "readers" {
		t.Fatalf("origins not stamped: %+v %+v", byPoint["writer.pack"][0], byPoint["reader.assemble"][0])
	}
}

func pointsOf(spans []monitor.Span) []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range spans {
		if !seen[sp.Point] {
			seen[sp.Point] = true
			out = append(out, sp.Point)
		}
	}
	return out
}

// TestShippedReportOmitsSpans: the per-step online report crossing the
// coordinator channel carries histograms but not the span ring.
func TestShippedReportOmitsSpans(t *testing.T) {
	wm := monitor.New("writers")
	_, rm := runTracePair(t, wm)
	rep, _, ok := rm()
	if !ok {
		t.Fatal("no writer report arrived")
	}
	if len(rep.Spans) != 0 {
		t.Fatalf("shipped report carries %d spans, want 0", len(rep.Spans))
	}
	if rep.Timings["flush"].Count == 0 {
		t.Fatalf("shipped report lost timings: %+v", rep.Timings)
	}
}

// runTracePair runs a tiny 1x1 stream and returns a getter for the
// reader-side copy of the writer's shipped monitoring report.
func runTracePair(t *testing.T, wm *monitor.Monitor) (monitor.Report, func() (monitor.Report, int64, bool)) {
	t.Helper()
	h := newHarness()
	shape := []int64{8}
	wdec, _ := ndarray.BlockDecompose(shape, []int{1})
	global := ndarray.BoxFromShape(shape)
	stream := fmt.Sprintf("ship-%p", wm)
	wg, err := NewWriterGroup(h.net, h.dir, stream, 1, Options{}, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, stream, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rd := rg.Reader(0)
		if err := rd.SelectArray("field", wdec.Boxes[0]); err != nil {
			t.Error(err)
			return
		}
		for {
			_, ok := rd.BeginStep()
			if !ok {
				return
			}
			if _, _, err := rd.ReadArray("field"); err != nil {
				t.Error(err)
			}
			rd.EndStep()
		}
	}()
	wr := wg.Writer(0)
	for s := 0; s < 2; s++ {
		if err := wr.BeginStep(int64(s)); err != nil {
			t.Fatal(err)
		}
		meta := VarMeta{Name: "field", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: wdec.Boxes[0]}
		if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[0], global)); err != nil {
			t.Fatal(err)
		}
		if err := wr.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Close()
	<-done
	// The report travels the coordinator channel asynchronously; wait for
	// delivery before tearing the reader down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := rg.WriterReport(); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rep := wm.Snapshot()
	getter := func() (monitor.Report, int64, bool) { return rg.WriterReport() }
	rg.Close()
	return rep, getter
}

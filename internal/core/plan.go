package core

import (
	"time"

	"flexio/internal/ndarray"
)

// Redistribution plan cache (writer side) and unpack plan cache (reader
// side). The M×N decompositions of a coupled run are fixed for its
// lifetime in the common case, yet the seed runtime recomputed every box
// intersection and allocated a fresh packed payload per piece per
// timestep. The caches below compute the geometry once per (variable,
// writer box, reader selections) and replay precompiled
// ndarray.Plans every step; they are invalidated by a new reader
// selection message (generation counter) or by a writer's box changing
// between steps (particle counts shifting, as the paper's GTS workload
// does).

// varPlanKey identifies a writer rank's cached redistribution plan for
// one variable.
type varPlanKey struct {
	name   string
	writer int
}

// packTarget is one precompiled writer→reader transfer: the overlap
// region, the pack plan gathering it from the writer's box, and the
// pre-encoded box metadata that rides along with every data event.
type packTarget struct {
	reader  int
	region  ndarray.Box
	plan    *ndarray.Plan
	boxMeta []int64
}

// varPlanEntry caches the full fan-out of one (variable, writer rank)
// pair. It is immutable once published; piecesFor goroutines share it.
type varPlanEntry struct {
	gen      uint64 // reader-selection generation it was computed against
	box      ndarray.Box
	elemSize int
	targets  []packTarget
}

// valid reports whether the entry still matches the current selections
// and the writer's current box.
func (e *varPlanEntry) valid(gen uint64, box ndarray.Box, elemSize int) bool {
	return e.gen == gen && e.elemSize == elemSize && e.box.Equal(box)
}

// packPlansFor returns (building and caching if needed) the pack plans
// writer w uses for variable v under the given selections. The caller
// must already have verified len(selBoxes) == sel.nReaders.
func (g *WriterGroup) packPlansFor(w int, v varData, sel readerSelections, selBoxes []ndarray.Box) (*varPlanEntry, error) {
	key := varPlanKey{name: v.meta.Name, writer: w}
	g.planMu.Lock()
	if e, ok := g.plans[key]; ok && e.valid(sel.gen, v.meta.Box, v.meta.ElemSize) {
		g.planMu.Unlock()
		if g.mon != nil {
			g.mon.Incr("plan.cache.hit", 1)
		}
		return e, nil
	}
	g.planMu.Unlock()

	// Build outside the lock: plan construction is the expensive step the
	// cache amortizes, and distinct (var, writer) keys may build
	// concurrently under the parallel executor. The mapping itself runs on
	// the decomposition's interval index — O(actual overlaps) instead of a
	// walk over every reader box.
	start := time.Now()
	nd := len(v.meta.GlobalShape)
	e := &varPlanEntry{gen: sel.gen, box: v.meta.Box, elemSize: v.meta.ElemSize}
	dec := sel.decomps[v.meta.Name]
	if dec == nil {
		// Selections constructed outside the control plane (tests) carry no
		// prebuilt decomposition; index the boxes ad hoc.
		dec = &ndarray.Decomposition{Boxes: selBoxes}
	}
	// The arena stays local: builds are rare (plan-cache invalidations
	// only) and may run concurrently across (var, writer) keys.
	for _, tgt := range dec.Index().AppendOverlaps(nil, v.meta.Box) {
		// The arena owns tgt.Region's storage; the cached target outlives
		// this query, so copy.
		ov := ndarray.NewBox(tgt.Region.Lo, tgt.Region.Hi)
		plan, err := ndarray.NewPackPlan(v.meta.Box, ov, v.meta.ElemSize)
		if err != nil {
			return nil, err
		}
		e.targets = append(e.targets, packTarget{
			reader:  tgt.Rank,
			region:  ov,
			plan:    plan,
			boxMeta: encodeBoxes([]ndarray.Box{ov}, nd),
		})
	}
	g.planMu.Lock()
	g.plans[key] = e
	g.planMu.Unlock()
	if g.mon != nil {
		g.mon.Incr("plan.cache.build", 1)
		g.mon.Set("plan.map_ns", time.Since(start).Nanoseconds())
	}
	return e, nil
}

// upKey identifies a reader rank's cached unpack plans for one variable.
type upKey struct {
	name string
	rank int
}

// upEntry is one cached piece-region → assembly-buffer scatter plan.
type upEntry struct {
	region   ndarray.Box
	elemSize int
	plan     *ndarray.Plan
}

// unpackPlanFor returns (building and caching if needed) the plan that
// scatters a packed piece covering region into the rank's assembly
// buffer laid out as selBox. Caller holds g.mu; selections are immutable
// once reading starts, so entries never need invalidation — only the
// small per-writer set of piece regions accumulates.
func (g *ReaderGroup) unpackPlanFor(name string, rank int, selBox, region ndarray.Box, elemSize int) (*ndarray.Plan, error) {
	key := upKey{name: name, rank: rank}
	entries := g.upPlans[key]
	for i := range entries {
		if entries[i].elemSize == elemSize && entries[i].region.Equal(region) {
			if g.mon != nil {
				g.mon.Incr("plan.cache.hit", 1)
			}
			return entries[i].plan, nil
		}
	}
	plan, err := ndarray.NewUnpackPlan(selBox, region, elemSize)
	if err != nil {
		return nil, err
	}
	g.upPlans[key] = append(entries, upEntry{region: region, elemSize: elemSize, plan: plan})
	if g.mon != nil {
		g.mon.Incr("plan.cache.build", 1)
	}
	return plan, nil
}

// disjointRegions reports whether every pair of piece regions is
// non-overlapping — the precondition for unpacking pieces into the
// shared assembly buffer concurrently. Writer decompositions are
// disjoint by construction, so this is the common case; overlapping
// (replicated) writers fall back to sequential unpack. The check runs on
// every plan rebuild, so it uses the sort-based sweep (O(n log n))
// rather than the all-pairs Intersect walk.
func disjointRegions(ps []piece) bool {
	if len(ps) < 2 {
		return true
	}
	boxes := make([]ndarray.Box, len(ps))
	for i := range ps {
		boxes[i] = ps[i].box
	}
	i, _ := ndarray.FirstOverlap(boxes)
	return i < 0
}

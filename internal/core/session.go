package core

import (
	"fmt"
	"sync"

	"flexio/internal/monitor"
)

// Session layer: each side of a coupled stream (writer group, reader
// group) is modeled as a small state machine whose transitions are driven
// by the control plane (coordinator connections) while the data plane
// (per-pair data connections) moves bytes. The session's *epoch* versions
// everything placement-dependent — reader selections, data connections,
// transport choices, redistribution plan caches — so a mid-run
// re-placement is a single epoch bump that atomically invalidates all of
// them. The epoch generalizes the former per-selection `selGen` counter.
//
//	Connecting → Handshaking → Streaming ⇄ Reconfiguring
//	                               ↓
//	                           Draining → Closed
//
// A reconfiguration returns through Handshaking (distributions are
// re-exchanged at the configured caching level) before streaming resumes.

// SessionState names one stage of a stream endpoint's lifecycle.
type SessionState int32

const (
	// StateConnecting covers directory registration/lookup and the
	// coordinator connection setup.
	StateConnecting SessionState = iota
	// StateHandshaking covers the four-step distribution exchange.
	StateHandshaking
	// StateStreaming is the steady state: timesteps flow.
	StateStreaming
	// StateReconfiguring is a mid-run re-placement in progress: the data
	// plane quiesces at a step boundary while the control plane rewires.
	StateReconfiguring
	// StateDraining is an orderly shutdown: in-flight steps finish, no new
	// steps are accepted.
	StateDraining
	// StateClosed is terminal.
	StateClosed
)

func (s SessionState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateHandshaking:
		return "handshaking"
	case StateStreaming:
		return "streaming"
	case StateReconfiguring:
		return "reconfiguring"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("SessionState(%d)", int32(s))
}

// legalTransitions lists the session state machine's edges. Closing is
// reachable from everywhere (a peer can vanish at any stage).
var legalTransitions = map[SessionState][]SessionState{
	StateConnecting:    {StateHandshaking, StateDraining, StateClosed},
	StateHandshaking:   {StateStreaming, StateDraining, StateClosed},
	StateStreaming:     {StateReconfiguring, StateDraining, StateClosed},
	StateReconfiguring: {StateHandshaking, StateStreaming, StateDraining, StateClosed},
	StateDraining:      {StateClosed},
	StateClosed:        nil,
}

// session is the shared control-plane state of one stream endpoint. The
// zero value is not usable; call newSession.
type session struct {
	side string // "writer" or "reader", for diagnostics

	mu    sync.Mutex
	state SessionState
	epoch uint64
	mon   *monitor.Monitor
}

// newSession starts a session in Connecting at epoch 1. mon may be nil.
func newSession(side string, mon *monitor.Monitor) *session {
	s := &session{side: side, state: StateConnecting, epoch: 1, mon: mon}
	if mon != nil {
		mon.Set("session.epoch", 1)
	}
	return s
}

// State reports the current state.
func (s *session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Epoch reports the current session epoch. Epoch 1 is the stream's
// initial configuration; every reconfiguration bumps it.
func (s *session) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// transition moves the session to `to`, enforcing the state machine's
// edges. Self-transitions are no-ops. The transition is recorded on the
// monitor as `session.state.<name>`.
func (s *session) transition(to SessionState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == to {
		return nil
	}
	ok := false
	for _, t := range legalTransitions[s.state] {
		if t == to {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: %s session: illegal transition %v -> %v", s.side, s.state, to)
	}
	s.state = to
	if s.mon != nil {
		s.mon.Incr("session.state."+to.String(), 1)
	}
	return nil
}

// tryTransition is transition for callers racing shutdown: an illegal
// edge (the session already moved on, e.g. to Draining while a flush was
// finishing) is reported but deliberately not fatal.
func (s *session) tryTransition(to SessionState) error {
	err := s.transition(to)
	if err != nil && s.mon != nil {
		s.mon.Incr("session.transition.rejected", 1)
	}
	return err
}

// bumpEpoch advances the session epoch (one reconfiguration) and returns
// the new value. The monitor gauge `session.epoch` tracks it.
func (s *session) bumpEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	if s.mon != nil {
		s.mon.Set("session.epoch", int64(s.epoch))
	}
	return s.epoch
}

// dataContact names the data connection listener for reader rank r of the
// given epoch. Epoch-qualified names guarantee that a reconfiguration's
// re-dialed connections can never be confused with a retiring epoch's.
func dataContact(stream string, epoch uint64, r int) string {
	return fmt.Sprintf("%s.e%d.r%d", stream, epoch, r)
}

package core

import (
	"flexio/internal/flight"
	"flexio/internal/shm"
)

// Flight-recorder attachment for the real data plane. The journaled
// chain mirrors the span chain of PR 4 — writer.flush → writer.pack →
// send.<transport> → reader.accept → reader.assemble — with explicit
// causal parents on the writer side, so critical-path analysis works on
// live streams too. Core streams are multi-goroutine: their journals
// feed critpath and trace export, but (unlike the virtual-time coupled
// model) their event order is not replay-deterministic, so replay
// hashing only covers the simulated runs.

// SetJournal attaches a flight recorder to the writer group. Call it
// before the first EndStep; the data plane reads the field without a
// lock on the flush path.
func (g *WriterGroup) SetJournal(j *flight.Journal) { g.journal = j }

// SetJournal attaches a flight recorder to the reader group. Call it
// before reading begins.
func (g *ReaderGroup) SetJournal(j *flight.Journal) { g.journal = j }

// AsmPoolStats exposes the assembly-buffer pool counters: after the
// application returns every ReadArray buffer via ReleaseArray,
// BytesInUse drains to zero while HighWater keeps the peak.
func (g *ReaderGroup) AsmPoolStats() shm.PoolStats { return g.asmPool.Stats() }

// PayloadPoolStats exposes the writer-side payload pool counters.
func (g *WriterGroup) PayloadPoolStats() shm.PoolStats { return g.payloadPool.Stats() }

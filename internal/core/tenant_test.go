package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexio/internal/directory"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// runTenantStream couples one writer group and one reader group for a
// tenant over a shared harness and moves `steps` steps of a small array,
// verifying payload integrity. Returns the writer monitor snapshot.
func runTenantStream(t *testing.T, h *harness, tenant, stream string, opts Options, steps int) monitor.Report {
	t.Helper()
	shape := []int64{8, 8}
	global := ndarray.BoxFromShape(shape)
	wm := monitor.New("writers-" + tenant)

	opts.Tenant = tenant
	wg, err := NewWriterGroup(h.net, h.dir, stream, 1, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroupOpts(h.net, h.dir, stream, 1, ReaderOptions{Tenant: tenant}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		wr := wg.Writer(0)
		for s := 0; s < steps; s++ {
			if err := wr.BeginStep(int64(s)); err != nil {
				t.Errorf("tenant %s writer: %v", tenant, err)
				return
			}
			meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: global}
			if err := wr.Write(meta, fillArrayBytes(global, global)); err != nil {
				t.Errorf("tenant %s writer: %v", tenant, err)
				return
			}
			if err := wr.EndStep(); err != nil {
				t.Errorf("tenant %s writer: %v", tenant, err)
				return
			}
		}
	}()
	rd := rg.Reader(0)
	if err := rd.SelectArray("f", global); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		step, ok := rd.BeginStep()
		if !ok || step != int64(s) {
			t.Fatalf("tenant %s reader: step %d ok=%v, want %d", tenant, step, ok, s)
		}
		data, box, err := rd.ReadArray("f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, fillArrayBytes(box, global)) {
			t.Fatalf("tenant %s step %d: data mismatch", tenant, s)
		}
		rd.EndStep()
	}
	workers.Wait()
	wg.Close()
	rg.Close()
	return wm.Snapshot()
}

// Two tenants run identically-named streams over one shared directory
// and network without crosstalk.
func TestTenantsSameStreamNameIsolated(t *testing.T) {
	h := newHarness()
	defer h.dir.Close()
	var wg sync.WaitGroup
	for _, tenant := range []string{"climate-a", "climate-b", "fusion-c"} {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			runTenantStream(t, h, tenant, "gts", Options{}, 3)
		}()
	}
	wg.Wait()
	if n := h.dir.Len(); n != 0 {
		t.Errorf("directory has %d leftover keys after teardown", n)
	}
}

// A writer group over its rank quota is rejected at construction; same
// for readers, and for a Reconfigure growing past MaxRanks.
func TestTenantMaxRanks(t *testing.T) {
	h := newHarness()
	defer h.dir.Close()
	_, err := NewWriterGroup(h.net, h.dir, "s", 4, Options{Tenant: "t", Quota: TenantQuota{MaxRanks: 2}}, nil)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("writer over MaxRanks: %v, want ErrOverQuota", err)
	}
	_, err = NewWriterGroup(h.net, h.dir, "s", 1, Options{Tenant: "bad/tenant"}, nil)
	if err == nil {
		t.Fatal("writer accepted tenant id with '/'")
	}
	if _, err := NewWriterGroup(h.net, h.dir, "s", 2, Options{Tenant: "t"}, nil); err != nil {
		t.Fatal(err)
	}
	_, err = NewReaderGroupOpts(h.net, h.dir, "s", 4, ReaderOptions{Tenant: "t", Quota: TenantQuota{MaxRanks: 2}}, nil)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("reader over MaxRanks: %v, want ErrOverQuota", err)
	}
}

// A hot async writer with a small staged-bytes budget blocks on its own
// credit window: backpressure waits are recorded, every step still
// arrives intact, and the window drains to zero at the end.
func TestTenantStagedBytesBackpressure(t *testing.T) {
	h := newHarness()
	defer h.dir.Close()
	const steps = 12
	shape := []int64{32, 32}
	global := ndarray.BoxFromShape(shape)
	payload := fillArrayBytes(global, global) // 8 KiB per step
	wm := monitor.New("hot")
	opts := Options{
		Tenant: "hot",
		Async:  true, AsyncQueueDepth: 8,
		// Budget below two steps' staging: the writer can stage at most one
		// step ahead of the flusher.
		Quota: TenantQuota{MaxStagedBytes: int64(len(payload)) + 1, MaxInflightSteps: 4},
	}
	wg, err := NewWriterGroup(h.net, h.dir, "soak", 1, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroupOpts(h.net, h.dir, "soak", 1, ReaderOptions{Tenant: "hot"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var workers sync.WaitGroup
	workers.Add(1)
	go func() {
		defer workers.Done()
		wr := wg.Writer(0)
		for s := 0; s < steps; s++ {
			meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: global}
			if err := wr.BeginStep(int64(s)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if err := wr.Write(meta, payload); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if err := wr.EndStep(); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	rd := rg.Reader(0)
	if err := rd.SelectArray("f", global); err != nil {
		t.Fatal(err)
	}
	for got := 0; got < steps; got++ {
		step, ok := rd.BeginStep()
		if !ok || step != int64(got) {
			t.Fatalf("reader: step %d ok=%v, want %d (lost or duplicated)", step, ok, got)
		}
		data, box, err := rd.ReadArray("f")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, fillArrayBytes(box, global)) {
			t.Fatalf("step %d: data mismatch under backpressure", step)
		}
		rd.EndStep()
		// Slow consumer: forces the writer into its credit window.
		time.Sleep(time.Millisecond)
	}
	workers.Wait()
	wg.Close()
	if step, ok := rd.BeginStep(); ok {
		t.Fatalf("step %d after the writer closed, want EOS", step)
	}
	rg.Close()
	rep := wm.Snapshot()
	if waits := rep.Counts["tenant.hot.backpressure.waits"]; waits == 0 {
		t.Error("hot writer never waited on its credit window")
	}
	if staged := rep.Gauges["tenant.hot.staged_bytes"]; staged != 0 {
		t.Errorf("staged_bytes gauge = %d after drain, want 0", staged)
	}
	if inflight := rep.Gauges["tenant.hot.inflight_steps"]; inflight != 0 {
		t.Errorf("inflight_steps gauge = %d after drain, want 0", inflight)
	}
}

// A single step larger than the whole staged-bytes budget is admitted via
// the overdraft rule instead of deadlocking.
func TestTenantOversizedStepOverdraft(t *testing.T) {
	h := newHarness()
	defer h.dir.Close()
	shape := []int64{16, 16}
	global := ndarray.BoxFromShape(shape)
	opts := Options{Tenant: "tiny", Quota: TenantQuota{MaxStagedBytes: 64}} // 2 KiB step >> 64 B budget
	wg, err := NewWriterGroup(h.net, h.dir, "ov", 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroupOpts(h.net, h.dir, "ov", 1, ReaderOptions{Tenant: "tiny"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wr := wg.Writer(0)
		for s := 0; s < 2; s++ {
			meta := VarMeta{Name: "f", Kind: GlobalArrayVar, ElemSize: 8, GlobalShape: shape, Box: global}
			if err := wr.BeginStep(int64(s)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if err := wr.Write(meta, fillArrayBytes(global, global)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if err := wr.EndStep(); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	rd := rg.Reader(0)
	if err := rd.SelectArray("f", global); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if step, ok := rd.BeginStep(); !ok || step != int64(s) {
			t.Fatalf("reader: step %d ok=%v, want %d", step, ok, s)
		}
		if _, _, err := rd.ReadArray("f"); err != nil {
			t.Fatal(err)
		}
		rd.EndStep()
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("oversized step deadlocked on its own credit window")
	}
	wg.Close()
	rg.Close()
}

// Closing the writer group while a producer is parked on the credit
// window must wake it with ErrSessionClosed, not leave it blocked.
func TestTenantCreditWindowUnblocksOnClose(t *testing.T) {
	cw := newCreditWindow("x", TenantQuota{MaxStagedBytes: 10}, nil)
	if err := cw.acquireBytes(8); err != nil {
		t.Fatal(err)
	}
	var blocked atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		blocked.Store(true)
		errCh <- cw.acquireBytes(8) // over budget: parks
	}()
	for !blocked.Load() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	cw.close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("parked producer woke with %v, want ErrSessionClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the parked producer")
	}
}

// Scalar sanity under the tenant namespace: rank-0 broadcast still
// reaches readers when the stream is tenant-qualified.
func TestTenantScalarRoundTrip(t *testing.T) {
	h := newHarness()
	defer h.dir.Close()
	opts := Options{Tenant: "scalar-t"}
	wg, err := NewWriterGroup(h.net, h.dir, "sc", 1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroupOpts(h.net, h.dir, "sc", 1, ReaderOptions{Tenant: "scalar-t"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		wr := wg.Writer(0)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], 42)
		if err := wr.BeginStep(0); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		if err := wr.Write(VarMeta{Name: "dt", Kind: ScalarVar, ElemSize: 8}, buf[:]); err != nil {
			t.Errorf("writer: %v", err)
			return
		}
		if err := wr.EndStep(); err != nil {
			t.Errorf("writer: %v", err)
		}
	}()
	rd := rg.Reader(0)
	if step, ok := rd.BeginStep(); !ok || step != 0 {
		t.Fatalf("reader: step %d ok=%v", step, ok)
	}
	data, err := rd.ReadScalar("dt")
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(data); v != 42 {
		t.Fatalf("scalar = %d, want 42", v)
	}
	rd.EndStep()
	wg.Close()
	rg.Close()

	// The tenant-qualified key must be gone after teardown; a bare-name
	// lookup must never have existed.
	if _, err := h.dir.Lookup(directory.Qualify("scalar-t", "sc")); !errors.Is(err, directory.ErrNotFound) {
		t.Errorf("qualified key survives close: %v", err)
	}
	if _, err := h.dir.Lookup("sc"); !errors.Is(err, directory.ErrNotFound) {
		t.Errorf("bare key leaked into the legacy namespace: %v", err)
	}
}

package core

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

func TestSessionStateStrings(t *testing.T) {
	for s, want := range map[SessionState]string{
		StateConnecting:    "connecting",
		StateHandshaking:   "handshaking",
		StateStreaming:     "streaming",
		StateReconfiguring: "reconfiguring",
		StateDraining:      "draining",
		StateClosed:        "closed",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if SessionState(99).String() == "" {
		t.Error("unknown state must stringify")
	}
}

func TestSessionTransitions(t *testing.T) {
	s := newSession("test", nil)
	if s.State() != StateConnecting || s.Epoch() != 1 {
		t.Fatalf("fresh session: %v epoch %d", s.State(), s.Epoch())
	}
	// The full lifecycle including one reconfiguration round-trip.
	for _, to := range []SessionState{
		StateHandshaking, StateStreaming, StateReconfiguring,
		StateHandshaking, StateStreaming, StateDraining, StateClosed,
	} {
		if err := s.transition(to); err != nil {
			t.Fatalf("transition to %v: %v", to, err)
		}
	}
	if s.State() != StateClosed {
		t.Fatalf("state = %v", s.State())
	}
	// Terminal: nothing leaves Closed.
	if err := s.transition(StateStreaming); err == nil {
		t.Error("Closed -> Streaming must be illegal")
	}
}

func TestSessionIllegalEdges(t *testing.T) {
	cases := []struct {
		from, to SessionState
	}{
		{StateConnecting, StateStreaming},
		{StateConnecting, StateReconfiguring},
		{StateHandshaking, StateReconfiguring},
		{StateStreaming, StateConnecting},
		{StateDraining, StateStreaming},
		{StateDraining, StateReconfiguring},
	}
	for _, c := range cases {
		s := newSession("test", nil)
		s.mu.Lock()
		s.state = c.from
		s.mu.Unlock()
		if err := s.transition(c.to); err == nil {
			t.Errorf("%v -> %v must be illegal", c.from, c.to)
		}
	}
}

func TestSessionSelfTransitionIsNoop(t *testing.T) {
	mon := monitor.New("m")
	s := newSession("test", mon)
	if err := s.transition(StateConnecting); err != nil {
		t.Fatal(err)
	}
	if n := mon.Snapshot().Counts["session.state.connecting"]; n != 0 {
		t.Fatalf("self-transition recorded %d times", n)
	}
}

func TestSessionMonitoring(t *testing.T) {
	mon := monitor.New("m")
	s := newSession("test", mon)
	s.transition(StateHandshaking) //nolint:errcheck
	s.transition(StateStreaming)   //nolint:errcheck
	s.tryTransition(StateConnecting)
	s.bumpEpoch()
	rep := mon.Snapshot()
	if rep.Counts["session.state.handshaking"] != 1 || rep.Counts["session.state.streaming"] != 1 {
		t.Errorf("transition counters: %v", rep.Counts)
	}
	if rep.Counts["session.transition.rejected"] != 1 {
		t.Errorf("rejected = %d, want 1", rep.Counts["session.transition.rejected"])
	}
	if rep.Gauges["session.epoch"] != 2 {
		t.Errorf("epoch gauge = %d, want 2", rep.Gauges["session.epoch"])
	}
}

func TestDataContactNames(t *testing.T) {
	if got := dataContact("gts.particles", 3, 2); got != "gts.particles.e3.r2" {
		t.Fatalf("dataContact = %q", got)
	}
	// Distinct epochs must never collide.
	if dataContact("s", 1, 12) == dataContact("s", 11, 2) {
		t.Fatal("epoch/rank ambiguity in contact names")
	}
}

// TestReaderCloseMidStreamNotifiesWriter is the teardown-asymmetry fix:
// a reader group closing mid-stream must propagate session-closed to the
// writer (whose next step fails with ErrSessionClosed instead of hanging
// or retrying into closed connections), and neither side may leak
// goroutines.
func TestReaderCloseMidStreamNotifiesWriter(t *testing.T) {
	base := runtime.NumGoroutine()

	h := newHarness()
	shape := []int64{16, 16}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))

	wgp, err := NewWriterGroup(h.net, h.dir, "hangup", 2, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "hangup", 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 2)
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wgp.Writer(w)
			writeFieldSteps(t, wr, wdec.Boxes[w], shape, global, 0, 1)
			// Write the next step only after the hangup has landed, so the
			// failure path is deterministic.
			waitWriterState(t, wgp, StateDraining)
			wr.BeginStep(1) //nolint:errcheck
			meta := VarMeta{Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
				GlobalShape: shape, Box: wdec.Boxes[w]}
			wr.Write(meta, fillArrayBytes(wdec.Boxes[w], global)) //nolint:errcheck
			errCh <- wr.EndStep()
		}()
	}

	rd := rg.Reader(0)
	if err := rd.SelectArray("field", global); err != nil {
		t.Fatal(err)
	}
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step 0")
	}
	if _, _, err := rd.ReadArray("field"); err != nil {
		t.Fatal(err)
	}
	rd.EndStep()
	// Hang up mid-stream: the writer still has steps to go.
	rg.Close()

	writers.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errCh; !errors.Is(err, ErrSessionClosed) {
			t.Errorf("writer EndStep after reader close = %v, want ErrSessionClosed", err)
		}
	}
	if st := wgp.SessionState(); st != StateDraining {
		t.Errorf("writer session = %v, want draining", st)
	}
	wgp.Close()
	if st := wgp.SessionState(); st != StateClosed {
		t.Errorf("writer session after Close = %v, want closed", st)
	}

	// No goroutine leak: pumps, accept loops and workers must all exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWriterCloseThenReaderEOS is the orderly direction, asserted here
// for symmetry: writer closes first, readers see EOS, nothing leaks.
func TestWriterCloseThenReaderEOS(t *testing.T) {
	base := runtime.NumGoroutine()
	runMxNSplit(t, 2, 2, Options{}, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package core

import (
	"errors"
	"sync"

	"flexio/internal/monitor"
)

// Per-tenant quota and backpressure. In the multi-tenant fabric many
// sessions share one staging pool and one transport substrate; the
// isolation guarantee is that a hot tenant saturating its own budget
// blocks on *its own* credit window — its Write/EndStep calls stall —
// and never occupies the shared transport with work beyond its quota,
// so other tenants' step latency stays flat.

// ErrOverQuota reports a request that exceeds the tenant's static quota
// (e.g. more ranks than MaxRanks); it is a rejection, not backpressure —
// waiting cannot help.
var ErrOverQuota = errors.New("core: tenant quota exceeded")

// TenantQuota bounds one tenant's footprint on the shared fabric. The
// zero value means unlimited (single-tenant legacy behavior).
type TenantQuota struct {
	// MaxRanks caps the writer or reader ranks of one group (enforced at
	// construction and at Reconfigure).
	MaxRanks int
	// MaxInflightSteps caps steps queued or flushing concurrently; the
	// rank completing a step beyond it blocks in EndStep until a flush
	// retires. In sync mode at most one step is ever in flight, so this
	// bites only for async writers.
	MaxInflightSteps int
	// MaxStagedBytes caps deposited-but-unflushed payload bytes; a Write
	// pushing past it blocks until flushed steps hand credits back. A
	// single step larger than the whole budget is admitted when nothing
	// else is staged (overdraft), so one oversized step degrades to
	// synchronous behavior instead of deadlocking.
	MaxStagedBytes int64
}

// creditWindow is one tenant group's backpressure state: two counters
// (staged bytes, in-flight steps) guarded by a condition variable.
// Acquisition happens on application threads (Write/EndStep), release on
// the flush path, so a blocked producer always drains.
type creditWindow struct {
	mu     sync.Mutex
	cond   *sync.Cond
	quota  TenantQuota
	staged int64
	steps  int
	closed bool

	mon    *monitor.Monitor
	prefix string // "tenant.<id>." or "" for the anonymous tenant
}

func newCreditWindow(tenant string, quota TenantQuota, mon *monitor.Monitor) *creditWindow {
	cw := &creditWindow{quota: quota, mon: mon}
	if tenant != "" {
		cw.prefix = "tenant." + tenant + "."
	}
	cw.cond = sync.NewCond(&cw.mu)
	return cw
}

// gauge publishes the window's occupancy under the tenant prefix.
// Caller holds cw.mu.
func (cw *creditWindow) gaugeLocked() {
	if cw.mon == nil {
		return
	}
	cw.mon.Set(cw.prefix+"staged_bytes", cw.staged)
	cw.mon.Set(cw.prefix+"inflight_steps", int64(cw.steps))
}

// acquireBytes blocks until n staged bytes fit in the tenant's budget.
// The overdraft rule — always admit when nothing is staged — keeps a
// single step larger than MaxStagedBytes from self-deadlocking.
func (cw *creditWindow) acquireBytes(n int64) error {
	if cw == nil || cw.quota.MaxStagedBytes <= 0 {
		return nil
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	waited := false
	for cw.staged > 0 && cw.staged+n > cw.quota.MaxStagedBytes {
		if cw.closed {
			return ErrSessionClosed
		}
		if !waited {
			waited = true
			if cw.mon != nil {
				cw.mon.Incr(cw.prefix+"backpressure.waits", 1)
			}
		}
		cw.cond.Wait()
	}
	if cw.closed {
		return ErrSessionClosed
	}
	cw.staged += n
	cw.gaugeLocked()
	return nil
}

// releaseBytes returns staged credits after a step's payloads left the
// staging area (flush completed, buffers back in the pool).
func (cw *creditWindow) releaseBytes(n int64) {
	if cw == nil || cw.quota.MaxStagedBytes <= 0 || n == 0 {
		return
	}
	cw.mu.Lock()
	cw.staged -= n
	if cw.staged < 0 {
		cw.staged = 0
	}
	cw.gaugeLocked()
	cw.cond.Broadcast()
	cw.mu.Unlock()
}

// acquireStep blocks until an in-flight step slot is free.
func (cw *creditWindow) acquireStep() error {
	if cw == nil || cw.quota.MaxInflightSteps <= 0 {
		return nil
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	waited := false
	for cw.steps >= cw.quota.MaxInflightSteps {
		if cw.closed {
			return ErrSessionClosed
		}
		if !waited {
			waited = true
			if cw.mon != nil {
				cw.mon.Incr(cw.prefix+"backpressure.waits", 1)
			}
		}
		cw.cond.Wait()
	}
	if cw.closed {
		return ErrSessionClosed
	}
	cw.steps++
	cw.gaugeLocked()
	return nil
}

// releaseStep retires one in-flight step.
func (cw *creditWindow) releaseStep() {
	if cw == nil || cw.quota.MaxInflightSteps <= 0 {
		return
	}
	cw.mu.Lock()
	if cw.steps > 0 {
		cw.steps--
	}
	cw.gaugeLocked()
	cw.cond.Broadcast()
	cw.mu.Unlock()
}

// close wakes every producer blocked on the window; they surface
// ErrSessionClosed instead of waiting on credits that will never return.
func (cw *creditWindow) close() {
	if cw == nil {
		return
	}
	cw.mu.Lock()
	cw.closed = true
	cw.cond.Broadcast()
	cw.mu.Unlock()
}

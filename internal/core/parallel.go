package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) on up to `workers`
// goroutines (0 means GOMAXPROCS) and returns the first error observed.
// Work is handed out via an atomic counter, so uneven item costs (a hot
// writer rank packing far more pieces than its peers) balance across the
// pool. Once an error occurs, workers stop picking up new items; already
// running items complete.
//
// This is the plan-execution executor of the redistribution fast path:
// writer ranks pack and send concurrently (each rank owns its own row of
// data connections) and a reader rank unpacks disjoint pieces
// concurrently.
func parallelFor(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int64 = -1
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

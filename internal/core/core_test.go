package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

type harness struct {
	net *evpath.Net
	dir *directory.Mem
}

func newHarness() *harness {
	return &harness{
		net: evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net)),
		dir: directory.NewMem(),
	}
}

// fillArray writes a recognizable pattern: element at global offset o has
// value o (as float64 bytes).
func fillArrayBytes(box, global ndarray.Box) []byte {
	buf := make([]byte, box.NumElements()*8)
	nd := box.NDims()
	pt := make([]int64, nd)
	copy(pt, box.Lo)
	strides := box.Strides()
	gStrides := global.Strides()
	for {
		var off, goff int64
		for d := 0; d < nd; d++ {
			off += (pt[d] - box.Lo[d]) * strides[d]
			goff += pt[d] * gStrides[d]
		}
		binary.LittleEndian.PutUint64(buf[off*8:], uint64(goff))
		d := nd - 1
		for ; d >= 0; d-- {
			pt[d]++
			if pt[d] < box.Hi[d] {
				break
			}
			pt[d] = box.Lo[d]
		}
		if d < 0 {
			return buf
		}
	}
}

// runMxNSplit moves a 2-D global array from nw writers to nr readers over
// the given options for `steps` timesteps and verifies every reader gets
// exactly the right bytes. Writer and reader goroutines use separate wait
// groups because readers only see EOS after the writer group closes.
func runMxNSplit(t *testing.T, nw, nr int, opts Options, steps int) (wmon, rmon monitor.Report) {
	t.Helper()
	h := newHarness()
	shape := []int64{24, 24}
	global := ndarray.BoxFromShape(shape)
	wdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	rdec, _ := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nr, 2))
	wm := monitor.New("writers")
	rm := monitor.New("readers")
	stream := fmt.Sprintf("mxn-%d-%d-%d-%v-%v", nw, nr, opts.Caching, opts.Batching, opts.Async)

	wg, err := NewWriterGroup(h.net, h.dir, stream, nw, opts, wm)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, stream, nr, rm)
	if err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			for s := 0; s < steps; s++ {
				if err := wr.BeginStep(int64(s)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				meta := VarMeta{
					Name: "field", Kind: GlobalArrayVar, ElemSize: 8,
					GlobalShape: shape, Box: wdec.Boxes[w],
				}
				if err := wr.Write(meta, fillArrayBytes(wdec.Boxes[w], global)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if err := wr.EndStep(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for r := 0; r < nr; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			for s := 0; s < steps; s++ {
				step, ok := rd.BeginStep()
				if !ok || step != int64(s) {
					t.Errorf("reader %d: step %d ok=%v, want %d", r, step, ok, s)
					return
				}
				data, box, err := rd.ReadArray("field")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !bytes.Equal(data, fillArrayBytes(box, global)) {
					t.Errorf("reader %d step %d: data mismatch", r, s)
					return
				}
				rd.EndStep()
			}
			if _, ok := rd.BeginStep(); ok {
				t.Errorf("reader %d: expected EOS", r)
			}
		}()
	}
	writers.Wait()
	if err := wg.Close(); err != nil {
		t.Fatalf("writer close: %v", err)
	}
	readers.Wait()
	rg.Close()
	return wm.Snapshot(), rm.Snapshot()
}

func TestMxNBasic(t *testing.T) {
	runMxNSplit(t, 4, 2, Options{}, 3)
}

func TestMxNPaperShape(t *testing.T) {
	// Figure 3: 9 writers -> 2 readers.
	runMxNSplit(t, 9, 2, Options{}, 2)
}

func TestMxNReadersExceedWriters(t *testing.T) {
	runMxNSplit(t, 2, 6, Options{}, 2)
}

func TestMxNSingleToSingle(t *testing.T) {
	runMxNSplit(t, 1, 1, Options{}, 4)
}

func TestMxNAsync(t *testing.T) {
	runMxNSplit(t, 4, 2, Options{Async: true}, 5)
}

func TestMxNBatching(t *testing.T) {
	runMxNSplit(t, 4, 2, Options{Batching: true}, 3)
}

func TestMxNShmTransport(t *testing.T) {
	opts := Options{Transport: func(w, r int) (evpath.TransportKind, int, int) {
		return evpath.ShmTransport, 0, 0
	}}
	runMxNSplit(t, 3, 2, opts, 3)
}

func TestMxNRDMATransport(t *testing.T) {
	opts := Options{Transport: func(w, r int) (evpath.TransportKind, int, int) {
		return evpath.RDMATransport, w % 4, 4 + r%4
	}}
	runMxNSplit(t, 3, 2, opts, 3)
}

func TestMxNMixedTransports(t *testing.T) {
	// Helper-core style: reader r co-located with writer w uses shm,
	// others use RDMA.
	opts := Options{Transport: func(w, r int) (evpath.TransportKind, int, int) {
		if w%2 == r%2 {
			return evpath.ShmTransport, w % 4, w % 4
		}
		return evpath.RDMATransport, w % 4, 4 + r%4
	}}
	runMxNSplit(t, 4, 2, opts, 3)
}

func TestCachingAllSkipsHandshakes(t *testing.T) {
	const steps = 6
	wNo, _ := runMxNSplit(t, 4, 2, Options{Caching: NoCaching}, steps)
	wAll, _ := runMxNSplit(t, 4, 2, Options{Caching: CachingAll}, steps)
	noDist := wNo.Counts["handshake.writer-dist.sent"]
	allDist := wAll.Counts["handshake.writer-dist.sent"]
	if noDist != steps {
		t.Fatalf("NO_CACHING sent %d writer dists, want %d (one per step)", noDist, steps)
	}
	if allDist != 1 {
		t.Fatalf("CACHING_ALL sent %d writer dists, want 1", allDist)
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	// With multiple variables per step, batching collapses data messages.
	h := newHarness()
	shape := []int64{16}
	wdec, _ := ndarray.BlockDecompose(shape, []int{2})
	const nvars = 5

	run := func(batch bool) int64 {
		wm := monitor.New("w")
		stream := fmt.Sprintf("batch-%v", batch)
		wg, err := NewWriterGroup(h.net, h.dir, stream, 2, Options{Batching: batch}, wm)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := NewReaderGroup(h.net, h.dir, stream, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		var writers sync.WaitGroup
		for w := 0; w < 2; w++ {
			w := w
			writers.Add(1)
			go func() {
				defer writers.Done()
				wr := wg.Writer(w)
				wr.BeginStep(0)
				for v := 0; v < nvars; v++ {
					meta := VarMeta{
						Name: fmt.Sprintf("v%d", v), Kind: GlobalArrayVar,
						ElemSize: 8, GlobalShape: shape, Box: wdec.Boxes[w],
					}
					wr.Write(meta, make([]byte, wdec.Boxes[w].NumElements()*8))
				}
				wr.EndStep()
			}()
		}
		rd := rg.Reader(0)
		for v := 0; v < nvars; v++ {
			rd.SelectArray(fmt.Sprintf("v%d", v), ndarray.BoxFromShape(shape))
		}
		if _, ok := rd.BeginStep(); !ok {
			t.Fatal("no step")
		}
		for v := 0; v < nvars; v++ {
			if _, _, err := rd.ReadArray(fmt.Sprintf("v%d", v)); err != nil {
				t.Fatal(err)
			}
		}
		rd.EndStep()
		writers.Wait()
		wg.Close()
		rg.Close()
		return wm.Snapshot().Counts["data.msgs"]
	}

	plain := run(false)
	batched := run(true)
	if batched >= plain {
		t.Fatalf("batching did not reduce messages: %d vs %d", batched, plain)
	}
}

func TestScalarBroadcast(t *testing.T) {
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "scalars", 2, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "scalars", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			wr.BeginStep(0)
			if w == 0 {
				val := make([]byte, 8)
				binary.LittleEndian.PutUint64(val, 4242)
				wr.Write(VarMeta{Name: "time", Kind: ScalarVar, ElemSize: 8}, val)
			}
			wr.EndStep()
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			if _, ok := rd.BeginStep(); !ok {
				t.Errorf("reader %d: no step", r)
				return
			}
			val, err := rd.ReadScalar("time")
			if err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			if binary.LittleEndian.Uint64(val) != 4242 {
				t.Errorf("reader %d: wrong scalar", r)
			}
			rd.EndStep()
		}()
	}
	writers.Wait()
	wg.Close()
	readers.Wait()
	rg.Close()
}

func TestProcessGroupPattern(t *testing.T) {
	// GTS-style: each reader claims a disjoint set of writer ranks.
	const nw, nr = 4, 2
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "pg", nw, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "pg", nr, nil)
	if err != nil {
		t.Fatal(err)
	}
	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			wr.BeginStep(0)
			payload := bytes.Repeat([]byte{byte(w + 1)}, 1000)
			wr.Write(VarMeta{Name: "particles", Kind: ProcessGroupVar, ElemSize: 1}, payload)
			wr.EndStep()
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < nr; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd := rg.Reader(r)
			claimed := []int{r * 2, r*2 + 1}
			rd.SelectProcessGroups(claimed)
			if _, ok := rd.BeginStep(); !ok {
				t.Errorf("reader %d: no step", r)
				return
			}
			groups, err := rd.ReadProcessGroups("particles")
			if err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			if len(groups) != 2 {
				t.Errorf("reader %d: got %d groups, want 2", r, len(groups))
				return
			}
			for _, w := range claimed {
				g, ok := groups[w]
				if !ok || len(g) != 1000 || g[0] != byte(w+1) {
					t.Errorf("reader %d: bad group from writer %d", r, w)
				}
			}
			rd.EndStep()
		}()
	}
	writers.Wait()
	wg.Close()
	readers.Wait()
	rg.Close()
}

func TestReaderPluginFiltering(t *testing.T) {
	// Install a sampling plug-in on the reader side and verify the
	// delivered PG payload shrinks.
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "plug", 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "plug", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := dcplugin.SamplePlugin(4).Filter()
	if err != nil {
		t.Fatal(err)
	}
	rg.InstallPlugin(filter)

	floats := make([]float64, 100)
	for i := range floats {
		floats[i] = float64(i)
	}
	go func() {
		wr := wg.Writer(0)
		wr.BeginStep(0)
		wr.Write(VarMeta{Name: "p", Kind: ProcessGroupVar, ElemSize: 8},
			dcplugin.FloatsToBytes(floats))
		wr.EndStep()
		wg.Close()
	}()
	rd := rg.Reader(0)
	rd.SelectProcessGroups([]int{0})
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	groups, err := rd.ReadProcessGroups("p")
	if err != nil {
		t.Fatal(err)
	}
	got := dcplugin.BytesToFloats(groups[0])
	if len(got) != 25 {
		t.Fatalf("sampled %d elements, want 25", len(got))
	}
	if got[1] != 4 {
		t.Fatalf("sample content wrong: %v", got[:3])
	}
	rd.EndStep()
	rg.Close()
}

func TestWriterDistributionVisibleToReader(t *testing.T) {
	_, _ = runMxNSplit(t, 4, 2, Options{}, 1)
	// Covered implicitly; here verify the accessor on a fresh run.
	h := newHarness()
	shape := []int64{8}
	wdec, _ := ndarray.BlockDecompose(shape, []int{2})
	wg, _ := NewWriterGroup(h.net, h.dir, "dist", 2, Options{}, nil)
	rg, _ := NewReaderGroup(h.net, h.dir, "dist", 1, nil)
	go func() {
		for w := 0; w < 2; w++ {
			w := w
			go func() {
				wr := wg.Writer(w)
				wr.BeginStep(0)
				wr.Write(VarMeta{Name: "x", Kind: GlobalArrayVar, ElemSize: 8,
					GlobalShape: shape, Box: wdec.Boxes[w]}, make([]byte, wdec.Boxes[w].NumElements()*8))
				wr.EndStep()
			}()
		}
	}()
	rd := rg.Reader(0)
	rd.SelectArray("x", ndarray.BoxFromShape(shape))
	if _, ok := rd.BeginStep(); !ok {
		t.Fatal("no step")
	}
	boxes, ok := rg.WriterDistribution("x")
	if !ok || len(boxes) != 2 {
		t.Fatalf("writer distribution: %v, %v", boxes, ok)
	}
	if !boxes[0].Equal(wdec.Boxes[0]) {
		t.Fatalf("box 0 = %v, want %v", boxes[0], wdec.Boxes[0])
	}
	rd.EndStep()
	wg.Close()
	rg.Close()
}

func TestWriteErrors(t *testing.T) {
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "errs", 1, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wg.Close()
	wr := wg.Writer(0)
	if err := wr.Write(VarMeta{Name: "x", Kind: ScalarVar, ElemSize: 8}, make([]byte, 8)); err == nil {
		t.Error("Write before BeginStep must fail")
	}
	if err := wr.EndStep(); err == nil {
		t.Error("EndStep before BeginStep must fail")
	}
	wr.BeginStep(0)
	if err := wr.Write(VarMeta{Name: "", Kind: ScalarVar, ElemSize: 8}, make([]byte, 8)); err == nil {
		t.Error("nameless variable must fail")
	}
	if err := wr.Write(VarMeta{Name: "x", Kind: ScalarVar, ElemSize: 8}, make([]byte, 4)); err == nil {
		t.Error("short scalar must fail")
	}
	shape := []int64{4}
	if err := wr.Write(VarMeta{Name: "a", Kind: GlobalArrayVar, ElemSize: 8,
		GlobalShape: shape, Box: ndarray.NewBox([]int64{0}, []int64{9})}, make([]byte, 72)); err == nil {
		t.Error("out-of-global box must fail")
	}
	if err := wr.Write(VarMeta{Name: "a", Kind: GlobalArrayVar, ElemSize: 8,
		GlobalShape: shape, Box: ndarray.NewBox([]int64{0}, []int64{2})}, make([]byte, 8)); err == nil {
		t.Error("byte count mismatch must fail")
	}
}

func TestReaderErrors(t *testing.T) {
	h := newHarness()
	wg, _ := NewWriterGroup(h.net, h.dir, "rerrs", 1, Options{}, nil)
	rg, err := NewReaderGroup(h.net, h.dir, "rerrs", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	if _, _, err := rd.ReadArray("x"); err == nil {
		t.Error("ReadArray outside step must fail")
	}
	if _, err := rd.ReadScalar("x"); err == nil {
		t.Error("ReadScalar outside step must fail")
	}
	if err := rd.EndStep(); err == nil {
		t.Error("EndStep outside step must fail")
	}
	wg.Close()
	rg.Close()
}

func TestReaderGroupUnknownStream(t *testing.T) {
	h := newHarness()
	d := directory.NewMem()
	// Short-circuit the 30s wait by registering then unregistering is not
	// possible; instead use a never-registered name with a tiny custom
	// timeout via the underlying API — here just check Mem semantics.
	if _, err := d.Lookup("ghost"); err == nil {
		t.Fatal("ghost stream must not resolve")
	}
	_ = h
}

func TestBoxCodecRoundTrip(t *testing.T) {
	boxes := []ndarray.Box{
		ndarray.NewBox([]int64{0, 0}, []int64{3, 4}),
		ndarray.NewBox([]int64{3, 0}, []int64{6, 4}),
	}
	flat := encodeBoxes(boxes, 2)
	got, err := decodeBoxes(flat, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range boxes {
		if !got[i].Equal(boxes[i]) {
			t.Fatalf("box %d: %v != %v", i, got[i], boxes[i])
		}
	}
	if _, err := decodeBoxes(flat, 2, 3); err == nil {
		t.Fatal("wrong count must error")
	}
	if _, err := decodeBoxes(flat, 0, 2); err == nil {
		t.Fatal("zero rank must error")
	}
}

func TestCachingLevelStrings(t *testing.T) {
	if NoCaching.String() != "NO_CACHING" || CachingAll.String() != "CACHING_ALL" ||
		CachingLocal.String() != "CACHING_LOCAL" {
		t.Fatal("caching level names wrong")
	}
	if VarKind(99).String() == "" || CachingLevel(99).String() == "" {
		t.Fatal("unknown values must stringify")
	}
}

// TestMxNRandomizedProperty drives the full stream protocol over random
// writer/reader counts, shapes, step counts and option combinations —
// the end-to-end correctness property of the runtime.
func TestMxNRandomizedProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	seeds := []int64{1, 7, 42, 1234, 99991}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nw := 1 + rng.Intn(6)
			nr := 1 + rng.Intn(4)
			steps := 1 + rng.Intn(4)
			opts := Options{
				Caching:  CachingLevel(rng.Intn(3)),
				Batching: rng.Intn(2) == 0,
				Async:    rng.Intn(2) == 0,
			}
			switch rng.Intn(3) {
			case 1:
				opts.Transport = func(w, r int) (evpath.TransportKind, int, int) {
					return evpath.ShmTransport, 0, 0
				}
			case 2:
				opts.Transport = func(w, r int) (evpath.TransportKind, int, int) {
					return evpath.RDMATransport, w % 4, 4 + r%4
				}
			}
			runMxNSplit(t, nw, nr, opts, steps)
		})
	}
}

func TestGroupConstructorValidation(t *testing.T) {
	h := newHarness()
	if _, err := NewWriterGroup(h.net, h.dir, "zero", 0, Options{}, nil); err == nil {
		t.Error("zero writers must fail")
	}
	if _, err := NewReaderGroup(h.net, h.dir, "zero", 0, nil); err == nil {
		t.Error("zero readers must fail")
	}
}

func TestReaderStepStateReclaimed(t *testing.T) {
	// Consumed steps must not accumulate in the reader group (buffer
	// management: long-running streams would otherwise leak).
	h := newHarness()
	wg, err := NewWriterGroup(h.net, h.dir, "reclaim", 2, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReaderGroup(h.net, h.dir, "reclaim", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := rg.Reader(0)
	rd.SelectProcessGroups([]int{0, 1})
	const steps = 12
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			for s := int64(0); s < steps; s++ {
				wr.BeginStep(s)
				wr.Write(VarMeta{Name: "p", Kind: ProcessGroupVar, ElemSize: 1}, make([]byte, 256))
				if err := wr.EndStep(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for s := int64(0); s < steps; s++ {
		if _, ok := rd.BeginStep(); !ok {
			t.Fatalf("no step %d", s)
		}
		if _, err := rd.ReadProcessGroups("p"); err != nil {
			t.Fatal(err)
		}
		rd.EndStep()
	}
	writers.Wait()
	rg.mu.Lock()
	pending := len(rg.steps)
	rg.mu.Unlock()
	if pending > 2 {
		t.Fatalf("%d step states retained after consumption, want <= 2", pending)
	}
	wg.Close()
	rg.Close()
}

package s3d_test

// Integration test: S3D species move through FlexIO's global-array MxN
// redistribution to visualization ranks; the rendered-and-composited
// image must equal the image rendered directly from the globally
// assembled field (the middleware must be invisible to the science).

import (
	"math"
	"sync"
	"testing"

	"flexio/internal/adios"
	"flexio/internal/apps/s3d"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

func TestS3DRenderThroughStreamMatchesDirect(t *testing.T) {
	const (
		nSim = 8
		nViz = 2
	)
	dec, err := s3d.GlobalDecomposition(nSim)
	if err != nil {
		t.Fatal(err)
	}
	globalShape := dec.Global.Shape()
	rdec, err := ndarray.BlockDecompose(globalShape, []int{nViz, 1, 1})
	if err != nil {
		t.Fatal(err)
	}

	// Build all solvers up front; advance them identically. The oracle
	// assembles the global field directly from the solver outputs.
	solvers := make([]*s3d.Solver, nSim)
	for r := range solvers {
		s, err := s3d.NewSolver(r, s3d.LocalShape)
		if err != nil {
			t.Fatal(err)
		}
		s.Step()
		solvers[r] = s
	}
	const sp = 1
	globalField := make([]byte, dec.Global.NumElements()*8)
	for r, s := range solvers {
		f, _ := s.Species(sp)
		if err := ndarray.Unpack(globalField, dcplugin.FloatsToBytes(f),
			dec.Global, dec.Boxes[r], 8); err != nil {
			t.Fatal(err)
		}
	}

	net := evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net))
	ctx := adios.NewContext(net, directory.NewMem(), t.TempDir(), nil)
	io, err := ctx.DeclareIO("species")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for rank := 0; rank < nSim; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := io.OpenWriter("s3d.it", rank, nSim)
			if err != nil {
				t.Errorf("writer %d: %v", rank, err)
				return
			}
			w.BeginStep(0) //nolint:errcheck
			f, _ := solvers[rank].Species(sp)
			if err := w.WriteFloat64s("f", globalShape, dec.Boxes[rank], f); err != nil {
				t.Errorf("writer %d: %v", rank, err)
				return
			}
			if err := w.EndStep(); err != nil {
				t.Errorf("writer %d: %v", rank, err)
				return
			}
			w.Close() //nolint:errcheck
		}()
	}

	parts := make([]*s3d.Image, nViz)
	for rank := 0; rank < nViz; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := io.OpenReader("s3d.it", rank, nViz)
			if err != nil {
				t.Errorf("reader %d: %v", rank, err)
				return
			}
			if err := r.SelectArray("f", rdec.Boxes[rank]); err != nil {
				t.Error(err)
				return
			}
			if _, ok := r.BeginStep(); !ok {
				t.Errorf("reader %d: no step", rank)
				return
			}
			raw, box, err := r.ReadBytes("f")
			if err != nil {
				t.Error(err)
				return
			}
			img, err := s3d.RenderVolume(dcplugin.BytesToFloats(raw), box.Shape())
			if err != nil {
				t.Error(err)
				return
			}
			parts[rank] = img
			r.EndStep() //nolint:errcheck
			r.Close()   //nolint:errcheck
		}()
	}
	wg.Wait()
	if parts[0] == nil || parts[1] == nil {
		t.Fatal("rendering incomplete")
	}

	// Composite front-to-back along X (reader 0 owns the front half).
	got, err := s3d.CompositeOver(parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s3d.RenderVolume(dcplugin.BytesToFloats(globalField), globalShape)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != direct.W || got.H != direct.H {
		t.Fatalf("image sizes differ: %dx%d vs %dx%d", got.W, got.H, direct.W, direct.H)
	}
	// Compositing of split ray segments approximates the full ray; demand
	// close agreement (the transfer function is smooth).
	var maxErr float64
	for i := range got.Pix {
		if d := math.Abs(got.Pix[i] - direct.Pix[i]); d > maxErr {
			maxErr = d
		}
	}
	var peak float64
	for _, v := range direct.Pix {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		t.Fatal("direct render blank")
	}
	if maxErr > 0.12*peak {
		t.Fatalf("composited image deviates %.3f (peak %.3f)", maxErr, peak)
	}
}

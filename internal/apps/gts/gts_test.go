package gts

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Zion, 3, 7, 100)
	b := Generate(Zion, 3, 7, 100)
	if len(a) != 100*NumAttrs {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation must be deterministic")
		}
	}
	c := Generate(Electron, 3, 7, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("species must differ")
	}
}

func TestGenerateRanges(t *testing.T) {
	p := Generate(Zion, 0, 0, 1000)
	for i := 0; i < len(p); i += NumAttrs {
		if p[i+AttrR] < 1.0 || p[i+AttrR] > 1.3 {
			t.Fatalf("R out of band: %g", p[i+AttrR])
		}
		if p[i+AttrVPar] < -1 || p[i+AttrVPar] > 1 {
			t.Fatalf("v_par out of band: %g", p[i+AttrVPar])
		}
		if p[i+AttrWeight] < 0.5 || p[i+AttrWeight] > 1.0 {
			t.Fatalf("weight out of band: %g", p[i+AttrWeight])
		}
	}
}

func TestParticleCountJitters(t *testing.T) {
	base := 10000
	seen := map[int]bool{}
	for step := 0; step < 10; step++ {
		n := ParticleCount(base, 0, step)
		if n < int(0.9*float64(base)) || n > int(1.1*float64(base)) {
			t.Fatalf("count %d far from base %d", n, base)
		}
		seen[n] = true
	}
	if len(seen) < 3 {
		t.Fatal("particle count should vary across steps")
	}
	if ParticleCount(0, 0, 0) < 1 {
		t.Fatal("count must be at least 1")
	}
}

func TestDistributionFunction(t *testing.T) {
	p := Generate(Zion, 1, 1, 20000)
	h, err := DistributionFunction(p, AttrVPar, 64, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 64 {
		t.Fatalf("bins = %d", len(h))
	}
	// Maxwellian-ish: center bins heavier than edges.
	center := h[31] + h[32]
	edge := h[0] + h[63]
	if center <= edge {
		t.Fatalf("distribution not peaked: center %g vs edge %g", center, edge)
	}
	// Total mass equals sum of weights of in-range particles.
	var mass, want float64
	for _, v := range h {
		mass += v
	}
	for i := 0; i < len(p); i += NumAttrs {
		v := p[i+AttrVPar]
		if v >= -1 && v < 1 {
			want += p[i+AttrWeight]
		}
	}
	if math.Abs(mass-want) > 1e-9*want {
		t.Fatalf("mass %g != %g", mass, want)
	}
}

func TestDistributionFunctionErrors(t *testing.T) {
	p := Generate(Zion, 0, 0, 10)
	if _, err := DistributionFunction(p, 99, 10, 0, 1); err == nil {
		t.Error("bad attr must error")
	}
	if _, err := DistributionFunction(p, 0, 0, 0, 1); err == nil {
		t.Error("zero bins must error")
	}
	if _, err := DistributionFunction(p, 0, 10, 1, 1); err == nil {
		t.Error("empty range must error")
	}
}

func TestRangeQuerySelectivity(t *testing.T) {
	// The production query keeps ~20% of particles.
	p := Generate(Zion, 2, 5, 50000)
	sel, err := RangeQuery(p, AttrVPar, DefaultQueryLo, DefaultQueryHi)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(sel)) / float64(len(p))
	if frac < 0.15 || frac > 0.27 {
		t.Fatalf("selectivity = %.3f, want ~0.20", frac)
	}
	// Whole particles preserved.
	if len(sel)%NumAttrs != 0 {
		t.Fatal("selection must keep whole records")
	}
	for i := 0; i < len(sel); i += NumAttrs {
		v := sel[i+AttrVPar]
		if v < DefaultQueryLo || v >= DefaultQueryHi {
			t.Fatalf("selected particle outside range: %g", v)
		}
	}
}

func TestRangeQueryErrors(t *testing.T) {
	if _, err := RangeQuery(nil, -1, 0, 1); err == nil {
		t.Fatal("bad attr must error")
	}
}

func TestHistogram2D(t *testing.T) {
	p := Generate(Zion, 0, 0, 10000)
	h, err := Histogram2D(p, AttrR, AttrZ, 8, 8, 1.0, 1.3, -0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 64 {
		t.Fatalf("cells = %d", len(h))
	}
	var total float64
	for _, c := range h {
		if c < 0 {
			t.Fatal("negative count")
		}
		total += c
	}
	if total == 0 {
		t.Fatal("histogram empty")
	}
	if _, err := Histogram2D(p, AttrR, AttrZ, 0, 8, 0, 1, 0, 1); err == nil {
		t.Fatal("bad spec must error")
	}
	if _, err := Histogram2D(p, 99, AttrZ, 8, 8, 0, 1, 0, 1); err == nil {
		t.Fatal("bad attr must error")
	}
}

func TestAnalyzeStepChain(t *testing.T) {
	p := Generate(Zion, 0, 3, 20000)
	a, err := AnalyzeStep(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCount != 20000 {
		t.Fatalf("total = %d", a.TotalCount)
	}
	frac := float64(a.Selected) / float64(a.TotalCount)
	if frac < 0.15 || frac > 0.27 {
		t.Fatalf("chain selectivity = %.3f", frac)
	}
	if len(a.DistFn) != 64 || len(a.QueryHist) != 32 || len(a.RZHist) != 1024 {
		t.Fatal("artifact sizes wrong")
	}
}

func TestAmdahlCalibration(t *testing.T) {
	// Paper: 3 threads instead of 4 slows GTS by 2.7%.
	r := amdahl(3)
	if r < 1.025 || r > 1.030 {
		t.Fatalf("amdahl(3) = %.4f, want ~1.027", r)
	}
	if amdahl(4) != 1.0 {
		t.Fatalf("amdahl(4) = %g, want 1", amdahl(4))
	}
	if amdahl(1) <= amdahl(2) || amdahl(2) <= amdahl(4) {
		t.Fatal("amdahl must decrease with threads")
	}
	if amdahl(0) != amdahl(1) {
		t.Fatal("thread floor")
	}
}

func TestModelShapes(t *testing.T) {
	m := Model()
	if m.Name != "GTS" || m.VarsPerStep != 2 {
		t.Fatalf("model = %+v", m)
	}
	if m.OutputBytesPerProc != 110e6 {
		t.Fatal("output volume must match the paper's 110MB/process")
	}
	// Analytics scales down with processes.
	t1 := m.AnaComputePerStep(1, 1e9)
	t4 := m.AnaComputePerStep(4, 1e9)
	if t4 >= t1 {
		t.Fatal("analytics must scale")
	}
	if m.AnaComputePerStep(0, 1e9) != t1 {
		t.Fatal("proc floor")
	}
	if m.InlineFraction != 0.236 {
		t.Fatal("inline fraction must match the paper's 23.6%")
	}
}

func TestGenerateSelectivityProperty(t *testing.T) {
	// Selectivity stays ~20% across ranks and steps (the workload is
	// stationary).
	f := func(rank, step uint8) bool {
		p := Generate(Zion, int(rank), int(step), 5000)
		sel, err := RangeQuery(p, AttrVPar, DefaultQueryLo, DefaultQueryHi)
		if err != nil {
			return false
		}
		frac := float64(len(sel)) / float64(len(p))
		return frac > 0.12 && frac < 0.30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Package gts is a proxy for the GTS gyrokinetic fusion simulation and
// its online analytics pipeline, the first of the two applications in the
// FlexIO paper's evaluation (Section IV.A). GTS is a particle-in-cell
// code whose I/O-relevant behaviour is: every two simulation cycles each
// MPI process emits ~110 MB of particle data — two 2-D arrays (zions and
// electrons) with seven attributes per particle — which a chain of
// analytics consumes: particle distribution function, a range query on
// the velocity attribute selecting ~20% of particles, and 1-D/2-D
// histograms written out for parallel-coordinates visualization.
//
// The package provides both the *real* workload (deterministic particle
// generation and the full analytics chain, used by examples and
// integration tests over actual FlexIO streams) and the *model* (timing
// and volume constants consumed by internal/coupled to regenerate
// Figures 6-8).
package gts

import (
	"fmt"
	"math"

	"flexio/internal/cachesim"
	"flexio/internal/coupled"
)

// Particle attribute indices within a 7-attribute record, following the
// paper's description: coordinates, velocity components, weight, and ID.
const (
	AttrR      = 0 // radial coordinate
	AttrZ      = 1 // vertical coordinate
	AttrZeta   = 2 // toroidal angle
	AttrVPar   = 3 // parallel velocity
	AttrVPerp  = 4 // perpendicular velocity
	AttrWeight = 5
	AttrID     = 6

	NumAttrs = 7
)

// Species identifies one of the two particle arrays GTS emits.
type Species int

const (
	Zion Species = iota
	Electron
)

func (s Species) String() string {
	if s == Zion {
		return "zion"
	}
	return "electron"
}

// Generate produces one rank's particle array for a step: n particles,
// each NumAttrs consecutive float64s. Generation is deterministic in
// (species, rank, step) via a small xorshift PRNG, so writers and
// verifying readers agree without shared state. Velocities follow a
// rough Maxwellian (sum of uniforms), positions a torus-ish band —
// enough structure for the analytics chain to produce meaningful
// histograms.
func Generate(sp Species, rank, step, n int) []float64 {
	out := make([]float64, n*NumAttrs)
	seed := uint64(sp+1)*0x9E3779B97F4A7C15 + uint64(rank)*0xBF58476D1CE4E5B9 + uint64(step+1)*0x94D049BB133111EB
	rng := xorshift(seed)
	for i := 0; i < n; i++ {
		u1 := rng.next()
		u2 := rng.next()
		u3 := rng.next()
		base := i * NumAttrs
		out[base+AttrR] = 1.0 + 0.3*u1
		out[base+AttrZ] = -0.5 + u2
		out[base+AttrZeta] = 2 * math.Pi * u3
		// Approximate Maxwellian via the average of 4 uniforms, centred.
		out[base+AttrVPar] = (rng.next()+rng.next()+rng.next()+rng.next())/2 - 1
		out[base+AttrVPerp] = math.Abs((rng.next()+rng.next())/2 - 0.5)
		out[base+AttrWeight] = 0.5 + 0.5*rng.next()
		out[base+AttrID] = float64(rank)*1e9 + float64(step)*1e6 + float64(i)
	}
	return out
}

// ParticleCount returns the per-step particle count for a rank: the base
// count modulated a few percent by step, reproducing the particle-motion
// effect that makes buffer sizes change across timesteps (the paper's
// motivation for the RDMA registration cache).
func ParticleCount(base, rank, step int) int {
	jitter := math.Sin(float64(step)*0.7+float64(rank)) * 0.03
	n := int(float64(base) * (1 + jitter))
	if n < 1 {
		n = 1
	}
	return n
}

type xorshift uint64

func (x *xorshift) next() float64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return float64(v>>11) / float64(1<<53)
}

// DistributionFunction computes the paper's "calculation of particle
// distribution function": a weighted 1-D histogram of one attribute over
// [lo, hi) with the given bin count.
func DistributionFunction(particles []float64, attr, bins int, lo, hi float64) ([]float64, error) {
	if attr < 0 || attr >= NumAttrs {
		return nil, fmt.Errorf("gts: attribute %d out of range", attr)
	}
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("gts: bad histogram spec bins=%d range=[%g,%g)", bins, lo, hi)
	}
	h := make([]float64, bins)
	width := (hi - lo) / float64(bins)
	for i := 0; i+NumAttrs <= len(particles); i += NumAttrs {
		v := particles[i+attr]
		if v < lo || v >= hi {
			continue
		}
		h[int((v-lo)/width)] += particles[i+AttrWeight]
	}
	return h, nil
}

// RangeQuery selects whole particles whose attribute lies in [lo, hi) —
// the paper's velocity range query whose result is ~20% of the particles
// for the default v_par in [-0.2, 0.2) band under the Maxwellian above.
func RangeQuery(particles []float64, attr int, lo, hi float64) ([]float64, error) {
	if attr < 0 || attr >= NumAttrs {
		return nil, fmt.Errorf("gts: attribute %d out of range", attr)
	}
	out := make([]float64, 0, len(particles)/5)
	for i := 0; i+NumAttrs <= len(particles); i += NumAttrs {
		v := particles[i+attr]
		if v >= lo && v < hi {
			out = append(out, particles[i:i+NumAttrs]...)
		}
	}
	return out, nil
}

// DefaultQueryLo and DefaultQueryHi bound the production run's velocity
// selection (~20% selectivity).
const (
	DefaultQueryLo = -0.073
	DefaultQueryHi = 0.073
)

// Histogram2D builds the 2-D histogram feeding parallel-coordinates
// visualization: counts over a (attrX, attrY) grid.
func Histogram2D(particles []float64, attrX, attrY, binsX, binsY int,
	loX, hiX, loY, hiY float64) ([]float64, error) {
	if binsX <= 0 || binsY <= 0 || hiX <= loX || hiY <= loY {
		return nil, fmt.Errorf("gts: bad 2-D histogram spec")
	}
	if attrX < 0 || attrX >= NumAttrs || attrY < 0 || attrY >= NumAttrs {
		return nil, fmt.Errorf("gts: attribute out of range")
	}
	h := make([]float64, binsX*binsY)
	wx := (hiX - loX) / float64(binsX)
	wy := (hiY - loY) / float64(binsY)
	for i := 0; i+NumAttrs <= len(particles); i += NumAttrs {
		x, y := particles[i+attrX], particles[i+attrY]
		if x < loX || x >= hiX || y < loY || y >= hiY {
			continue
		}
		h[int((x-loX)/wx)*binsY+int((y-loY)/wy)]++
	}
	return h, nil
}

// AnalyzeStep runs the full per-step analytics chain on one rank's
// particle payload and returns the artifacts (distribution function over
// v_par, the query subset's 1-D histogram, and the R-Z 2-D histogram).
type Analysis struct {
	DistFn     []float64
	QueryHist  []float64
	RZHist     []float64
	Selected   int // particles passing the range query
	TotalCount int
}

// AnalyzeStep executes the GTS analytics chain.
func AnalyzeStep(particles []float64) (*Analysis, error) {
	dist, err := DistributionFunction(particles, AttrVPar, 64, -1, 1)
	if err != nil {
		return nil, err
	}
	sel, err := RangeQuery(particles, AttrVPar, DefaultQueryLo, DefaultQueryHi)
	if err != nil {
		return nil, err
	}
	qh, err := DistributionFunction(sel, AttrVPerp, 32, 0, 1)
	if err != nil {
		return nil, err
	}
	rz, err := Histogram2D(sel, AttrR, AttrZ, 32, 32, 1.0, 1.3, -0.5, 0.5)
	if err != nil {
		return nil, err
	}
	return &Analysis{
		DistFn:     dist,
		QueryHist:  qh,
		RZHist:     rz,
		Selected:   len(sel) / NumAttrs,
		TotalCount: len(particles) / NumAttrs,
	}, nil
}

// --- Model for the coupled-run simulator (Figures 6-8) ---

// Production-run constants from Section IV.A.
const (
	// OutputBytesPerProc: "particle data output size of 110MB per
	// process", every two simulation cycles.
	OutputBytesPerProc = 110e6
	// baseInterval is the two-cycle compute time of one GTS process with
	// 4 OpenMP threads (the reference configuration on Smoky).
	baseInterval = 20.0
	// serialFraction is GTS's Amdahl serial fraction, fitted so that
	// dropping from 4 to 3 threads slows the simulation by 2.7% ("code
	// regions in GTS where only the main thread is active").
	serialFraction = 0.739
	// InlineFraction: "the inline analytics weighs 23.6% of GTS runtime".
	InlineFraction = 0.236
	// analyticsRate is one analytics process's consumption rate,
	// calibrated from Figure 7: analytics is idle ~67% of the interval
	// when one helper-core process serves one GTS process (110 MB in
	// ~6.6 s of a 20 s interval).
	analyticsRate = 16.7e6 // bytes/sec per analytics process
	// simMPIBytesPerProc is GTS's internal 2-D grid exchange per
	// interval; GTS is "insensitive to process placement", i.e. this is
	// small relative to the particle output.
	simMPIBytesPerProc = 20e6
)

// amdahl returns the relative runtime at `threads` vs. 4 threads.
func amdahl(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	f := serialFraction + (1-serialFraction)/float64(threads)
	f4 := serialFraction + (1-serialFraction)/4
	return f / f4
}

// Model returns the GTS application model for the coupled simulator.
func Model() coupled.AppModel {
	return coupled.AppModel{
		Name: "GTS",
		SimComputePerInterval: func(threads int) float64 {
			return baseInterval * amdahl(threads)
		},
		OutputBytesPerProc: OutputBytesPerProc,
		SimMPIBytesPerProc: simMPIBytesPerProc,
		AnaComputePerStep: func(p int, totalBytes float64) float64 {
			if p < 1 {
				p = 1
			}
			// Near-perfect scaling with a small per-step fixed cost
			// (histogram reduction + file write of the plots).
			return totalBytes/(analyticsRate*float64(p)) + 0.2
		},
		AnaMPIBytesPerProc: 2e6,
		InlineFraction:     InlineFraction,
		// Inline analytics is "non-scalable": its histogram reductions
		// and plot-file metadata serialize across all simulation ranks.
		InlineScalePerProc:   0.004,
		VarsPerStep:          2, // zions + electrons
		SimWorkingSetPerNUMA: cachesim.GTSSmokyWorkingSet,
		AnaFootprint:         cachesim.GTSAnalyticsFootprint,
		Cache:                cachesim.Default(),
	}
}

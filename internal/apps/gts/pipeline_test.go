package gts_test

// Integration test: the full GTS scenario over real FlexIO streams —
// particle generation, process-group movement through the middleware, a
// writer-side deployed conditioning plug-in, and the analytics chain —
// verifying statistics against a direct (no-middleware) oracle.

import (
	"fmt"
	"sync"
	"testing"

	"flexio/internal/adios"
	"flexio/internal/apps/gts"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/rdma"
)

func TestGTSPipelineOverStream(t *testing.T) {
	const (
		ranks = 4
		steps = 3
		base  = 3000
	)
	net := evpath.NewNet(rdma.NewFabric(machine.Smoky(8).Net))
	ctx := adios.NewContext(net, directory.NewMem(), t.TempDir(), nil)
	io, err := ctx.DeclareIO("particles")
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: run the analytics chain directly on the generated data.
	type key struct{ rank, step int }
	oracle := map[key]*gts.Analysis{}
	for r := 0; r < ranks; r++ {
		for s := 0; s < steps; s++ {
			n := gts.ParticleCount(base, r, s)
			a, err := gts.AnalyzeStep(gts.Generate(gts.Zion, r, s, n))
			if err != nil {
				t.Fatal(err)
			}
			oracle[key{r, s}] = a
		}
	}

	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := io.OpenWriter("gts.it", rank, ranks)
			if err != nil {
				t.Errorf("writer %d: %v", rank, err)
				return
			}
			for s := 0; s < steps; s++ {
				if err := w.BeginStep(int64(s)); err != nil {
					t.Errorf("writer %d: %v", rank, err)
					return
				}
				n := gts.ParticleCount(base, rank, s)
				zions := gts.Generate(gts.Zion, rank, s, n)
				if err := w.WriteProcessGroup("zion", 8, dcplugin.FloatsToBytes(zions)); err != nil {
					t.Errorf("writer %d: %v", rank, err)
					return
				}
				if err := w.EndStep(); err != nil {
					t.Errorf("writer %d: %v", rank, err)
					return
				}
			}
			w.Close() //nolint:errcheck
		}()
	}

	var mu sync.Mutex
	checked := 0
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := io.OpenReader("gts.it", rank, ranks)
			if err != nil {
				t.Errorf("reader %d: %v", rank, err)
				return
			}
			if err := r.SelectProcessGroups([]int{rank}); err != nil {
				t.Error(err)
				return
			}
			for {
				step, ok := r.BeginStep()
				if !ok {
					break
				}
				groups, err := r.ReadProcessGroups("zion")
				if err != nil {
					t.Error(err)
					return
				}
				a, err := gts.AnalyzeStep(dcplugin.BytesToFloats(groups[rank]))
				if err != nil {
					t.Error(err)
					return
				}
				want := oracle[struct{ rank, step int }{rank, int(step)}]
				if a.TotalCount != want.TotalCount || a.Selected != want.Selected {
					t.Errorf("rank %d step %d: counts %d/%d, oracle %d/%d",
						rank, step, a.TotalCount, a.Selected, want.TotalCount, want.Selected)
					return
				}
				for i := range a.DistFn {
					if a.DistFn[i] != want.DistFn[i] {
						t.Errorf("rank %d step %d: distribution fn differs at bin %d", rank, step, i)
						return
					}
				}
				mu.Lock()
				checked++
				mu.Unlock()
				r.EndStep() //nolint:errcheck
			}
			r.Close() //nolint:errcheck
		}()
	}
	wg.Wait()
	if checked != ranks*steps {
		t.Fatalf("verified %d rank-steps, want %d", checked, ranks*steps)
	}
}

func TestGTSQueryPluginAtSourceMatchesLocalQuery(t *testing.T) {
	// Deploy the velocity range query as a writer-side plug-in; the
	// delivered subset must equal the local RangeQuery result.
	const n = 4000
	net := evpath.NewNet(rdma.NewFabric(machine.Smoky(4).Net))
	ctx := adios.NewContext(net, directory.NewMem(), t.TempDir(), nil)
	io, err := ctx.DeclareIO("q")
	if err != nil {
		t.Fatal(err)
	}
	w, err := io.OpenWriter("gts.q", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := io.OpenReader("gts.q", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.SelectProcessGroups([]int{0}) //nolint:errcheck

	query := dcplugin.Plugin{
		Name: "vquery",
		Source: fmt.Sprintf(`
			for (i = 0; i + %d <= len(data); i = i + %d) {
				v = data[i + %d];
				if (v >= %g && v < %g) {
					for (j = 0; j < %d; j = j + 1) { push(data[i + j]); }
				}
			}`, gts.NumAttrs, gts.NumAttrs, gts.AttrVPar,
			gts.DefaultQueryLo, gts.DefaultQueryHi, gts.NumAttrs),
	}
	if err := r.DeployPluginToWriters(query); err != nil {
		t.Fatal(err)
	}

	particles := gts.Generate(gts.Zion, 0, 0, n)
	want, err := gts.RangeQuery(particles, gts.AttrVPar, gts.DefaultQueryLo, gts.DefaultQueryHi)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		if err := w.BeginStep(0); err != nil {
			done <- err
			return
		}
		if err := w.WriteProcessGroup("zion", 8, dcplugin.FloatsToBytes(particles)); err != nil {
			done <- err
			return
		}
		if err := w.EndStep(); err != nil {
			done <- err
			return
		}
		done <- w.Close()
	}()
	if _, ok := r.BeginStep(); !ok {
		t.Fatal("no step")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	groups, err := r.ReadProcessGroups("zion")
	if err != nil {
		t.Fatal(err)
	}
	got := dcplugin.BytesToFloats(groups[0])
	if len(got) != len(want) {
		t.Fatalf("plug-in selected %d values, local query %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selection differs at %d", i)
		}
	}
	r.EndStep() //nolint:errcheck
	r.Close()   //nolint:errcheck
}

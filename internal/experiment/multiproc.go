package experiment

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flexnode"
)

// Multiproc is the real-deployment drill: the only experiment that
// leaves the parent address space. It re-executes the current binary as
// one directory server plus four flexnode daemons (writer leader +
// worker, reader leader + worker), couples them exclusively over
// TCP+TLS sockets and the wire directory protocol, injects a mid-run
// disconnect on the writer leader, reconfigures the reader decomposition
// mid-stream, ships a DC plug-in across processes — and then proves the
// whole deployment moved exactly the same bytes as a single-process
// shared-memory run by comparing per-rank FNV digests against both the
// in-process reference and the scenario's closed form.
//
// Child processes are spawned by re-exec: MaybeChildMain, called at the
// top of cmd/flexbench's main (and of the experiment package's
// TestMain), dispatches on FLEXIO_MP_ROLE before any flag parsing.

// Environment keys for child-process configuration.
const (
	mpRoleEnv   = "FLEXIO_MP_ROLE"
	mpDirEnv    = "FLEXIO_MP_DIR"
	mpNameEnv   = "FLEXIO_MP_NAME"
	mpStreamEnv = "FLEXIO_MP_STREAM"
	mpMEnv      = "FLEXIO_MP_M"
	mpNEnv      = "FLEXIO_MP_N"
	mpStepsEnv  = "FLEXIO_MP_STEPS"
	mpReconfEnv = "FLEXIO_MP_RECONFIG_AFTER"
	mpRanksEnv  = "FLEXIO_MP_RANKS"
	mpDropEnv   = "FLEXIO_MP_DROP_AFTER"
	mpPluginEnv = "FLEXIO_MP_PLUGIN"
	mpLeaseEnv  = "FLEXIO_MP_LEASE_MS"
)

// MaybeChildMain turns the current process into a multiproc child when
// FLEXIO_MP_ROLE is set, and never returns in that case. Binaries that
// the multiproc experiment may re-exec (cmd/flexbench, the experiment
// test binary) must call it first thing in main.
func MaybeChildMain() {
	role := os.Getenv(mpRoleEnv)
	if role == "" {
		return
	}
	if err := runChild(role); err != nil {
		fmt.Fprintf(os.Stderr, "flexio multiproc %s: %v\n", role, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func runChild(role string) error {
	if role == "dirserver" {
		srv, err := directory.Serve("127.0.0.1:0", directory.NewMem())
		if err != nil {
			return err
		}
		// The ADDR line is the handshake the parent blocks on.
		fmt.Printf("ADDR %s\n", srv.Addr())
		select {} // parent kills us when the run is over
	}
	cfg, err := roleConfigFromEnv()
	if err != nil {
		return err
	}
	switch role {
	case "writer-leader":
		return flexnode.RunWriterLeader(cfg)
	case "writer-worker":
		return flexnode.RunWriterWorker(cfg)
	case "reader-leader":
		return flexnode.RunReaderLeader(cfg)
	case "reader-worker":
		return flexnode.RunReaderWorker(cfg)
	default:
		return fmt.Errorf("unknown role %q", role)
	}
}

func envInt(key string, def int) (int, error) {
	v := os.Getenv(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", key, v, err)
	}
	return n, nil
}

func roleConfigFromEnv() (flexnode.RoleConfig, error) {
	var cfg flexnode.RoleConfig
	dirAddr := os.Getenv(mpDirEnv)
	if dirAddr == "" {
		return cfg, fmt.Errorf("%s not set", mpDirEnv)
	}
	var ranks []int
	for _, f := range strings.Split(os.Getenv(mpRanksEnv), ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.Atoi(f)
		if err != nil {
			return cfg, fmt.Errorf("%s: %w", mpRanksEnv, err)
		}
		ranks = append(ranks, r)
	}
	m, err := envInt(mpMEnv, 2)
	if err != nil {
		return cfg, err
	}
	n, err := envInt(mpNEnv, 2)
	if err != nil {
		return cfg, err
	}
	steps, err := envInt(mpStepsEnv, 6)
	if err != nil {
		return cfg, err
	}
	reconf, err := envInt(mpReconfEnv, -1)
	if err != nil {
		return cfg, err
	}
	drop, err := envInt(mpDropEnv, 0)
	if err != nil {
		return cfg, err
	}
	leaseMS, err := envInt(mpLeaseEnv, 0)
	if err != nil {
		return cfg, err
	}
	cfg = flexnode.RoleConfig{
		Node: flexnode.Config{
			Name:     os.Getenv(mpNameEnv),
			Dir:      &directory.Client{Addr: dirAddr},
			TLS:      true,
			LeaseTTL: time.Duration(leaseMS) * time.Millisecond,
		},
		Scenario: flexnode.Scenario{
			Stream:        os.Getenv(mpStreamEnv),
			M:             m,
			N:             n,
			Steps:         steps,
			ReconfigAfter: reconf,
		},
		Ranks:  ranks,
		Faults: evpath.TCPFaults{DropAfterSends: drop},
		Plugin: os.Getenv(mpPluginEnv),
	}
	return cfg, nil
}

// multiprocTimeout bounds the whole deployment; a wedged child must not
// hang `make ci`.
const multiprocTimeout = 90 * time.Second

type mpChild struct {
	name string
	cmd  *exec.Cmd
	out  bytes.Buffer
	done chan error
}

func spawnChild(ctx context.Context, exe, name string, env []string) *mpChild {
	c := &mpChild{name: name, done: make(chan error, 1)}
	c.cmd = exec.CommandContext(ctx, exe)
	c.cmd.Env = append(os.Environ(), env...)
	c.cmd.Stdout = &c.out
	c.cmd.Stderr = &c.out
	if err := c.cmd.Start(); err != nil {
		c.done <- err
		return c
	}
	go func() { c.done <- c.cmd.Wait() }()
	return c
}

// Multiproc runs the multi-process deployment experiment.
func Multiproc() (*Figure, error) {
	sc := flexnode.Scenario{
		Stream:        "multiproc",
		M:             2,
		N:             2,
		Steps:         6,
		ReconfigAfter: 2,
	}

	// Reference: the same scenario in one process over shared memory.
	ref, err := sc.RunLocal(evpath.ShmTransport)
	if err != nil {
		return nil, fmt.Errorf("multiproc: in-process shm reference: %w", err)
	}

	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), multiprocTimeout)
	defer cancel()

	// Directory server child: wait for its ADDR handshake line.
	ds := exec.CommandContext(ctx, exe)
	ds.Env = append(os.Environ(), mpRoleEnv+"=dirserver")
	dsOut, err := ds.StdoutPipe()
	if err != nil {
		return nil, err
	}
	var dsErr bytes.Buffer
	ds.Stderr = &dsErr
	if err := ds.Start(); err != nil {
		return nil, fmt.Errorf("multiproc: start dirserver: %w", err)
	}
	defer func() {
		ds.Process.Kill() //nolint:errcheck
		ds.Wait()         //nolint:errcheck
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(dsOut)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
				return
			}
		}
		addrCh <- ""
	}()
	var dirAddr string
	select {
	case dirAddr = <-addrCh:
	case <-ctx.Done():
		return nil, fmt.Errorf("multiproc: dirserver handshake timed out: %s", dsErr.String())
	}
	if dirAddr == "" {
		return nil, fmt.Errorf("multiproc: dirserver exited before ADDR: %s", dsErr.String())
	}

	base := []string{
		mpDirEnv + "=" + dirAddr,
		mpStreamEnv + "=" + sc.Stream,
		mpMEnv + "=" + strconv.Itoa(sc.M),
		mpNEnv + "=" + strconv.Itoa(sc.N),
		mpStepsEnv + "=" + strconv.Itoa(sc.Steps),
		mpReconfEnv + "=" + strconv.Itoa(sc.ReconfigAfter),
		mpLeaseEnv + "=2000",
	}
	node := func(role, name, ranks string, extra ...string) *mpChild {
		env := append(append([]string{}, base...),
			mpRoleEnv+"="+role, mpNameEnv+"="+name, mpRanksEnv+"="+ranks)
		env = append(env, extra...)
		return spawnChild(ctx, exe, name, env)
	}
	children := []*mpChild{
		node("writer-leader", "wl", "0", mpDropEnv+"=9"),
		node("writer-worker", "ww", "1"),
		node("reader-leader", "rl", "0", mpPluginEnv+`=setstr("deployed-by","flexnode");`),
		node("reader-worker", "rw", "1"),
	}
	for _, c := range children {
		select {
		case err := <-c.done:
			if err != nil {
				return nil, fmt.Errorf("multiproc: %s: %w\n%s", c.name, err, c.out.String())
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("multiproc: %s timed out\n%s", c.name, c.out.String())
		}
	}

	// Harvest results through the same wire directory the daemons used.
	cl := &directory.Client{Addr: dirAddr}
	notes := []string{
		fmt.Sprintf("processes: 1 dirserver + 4 flexnode daemons (M=%d writers, N=%d readers), all traffic tcp+tls", sc.M, sc.N),
	}
	identical := true
	for r := 0; r < sc.N; r++ {
		want, err := sc.ExpectedHash(r)
		if err != nil {
			return nil, err
		}
		got, err := cl.Lookup(flexnode.HashKey(sc.Stream, r))
		if err != nil {
			return nil, fmt.Errorf("multiproc: rank %d digest not published: %w", r, err)
		}
		if got != want || got != ref[r] {
			identical = false
			notes = append(notes, fmt.Sprintf("rank %d DIVERGED: multiproc=%s shm=%s closed-form=%s", r, got, ref[r], want))
		} else {
			notes = append(notes, fmt.Sprintf("rank %d digest %s == shm reference == closed form", r, got))
		}
	}
	if !identical {
		return nil, fmt.Errorf("multiproc: output diverged from single-process run:\n  %s", strings.Join(notes, "\n  "))
	}
	stats, err := cl.Lookup(flexnode.StatsKey(sc.Stream))
	if err != nil {
		return nil, fmt.Errorf("multiproc: writer-leader stats not published: %w", err)
	}
	notes = append(notes, "writer-leader wire counters: "+stats)
	if !strings.Contains(stats, "drops=1") {
		return nil, fmt.Errorf("multiproc: expected exactly one injected drop, got %q", stats)
	}
	if strings.Contains(stats, "redials=0,") {
		return nil, fmt.Errorf("multiproc: disconnect was not survived by redial: %q", stats)
	}
	epoch, err := cl.Lookup(flexnode.EpochKey(sc.Stream))
	if err != nil {
		return nil, fmt.Errorf("multiproc: session epoch not published: %w", err)
	}
	if epoch != "2" {
		return nil, fmt.Errorf("multiproc: final session epoch = %s, want 2 (one mid-run reconfigure)", epoch)
	}
	notes = append(notes,
		fmt.Sprintf("mid-run Reconfigure after step %d completed across processes (final epoch %s)", sc.ReconfigAfter, epoch),
		"injected disconnect after 9 sends survived via redial+resume; DC plug-in shipped writer-side over the control connection",
		"output byte-identical to single-process shm run")
	return &Figure{
		ID:    "multiproc",
		Title: "Multi-process deployment: dirserver + flexnode daemons over TCP/TLS",
		Notes: notes,
	}, nil
}

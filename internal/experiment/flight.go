package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"flexio/internal/coupled"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/placement"
)

// Flight-recorder experiments: `critpath` runs the switched coupled
// scenario with the causal journal attached and extracts the per-step
// critical path (`make critpath`); `replay` re-runs the same scenario
// from the same configuration and proves the event streams are
// byte-identical — or, with -perturb, that an injected model change is
// caught as a divergence (`make replay`).

// replayPerturb injects a divergence into the replay experiment's second
// run; cmd/flexbench wires its -perturb flag here.
var replayPerturb bool

// SetReplayPerturb toggles the injected divergence for the replay
// experiment (flexbench -perturb).
func SetReplayPerturb(v bool) { replayPerturb = v }

// The scenario both experiments journal: the GTS helper-core -> staging
// switched run on Smoky (the Section II.G shape), small enough to read
// the report by eye and big enough to cross a reconfiguration seam.
const (
	flightSteps    = 8
	flightSwitchAt = 4
)

// flightScenario runs the switched scenario with the given observers
// attached. perturb scales the per-process output volume (0 = faithful
// re-run; any non-zero value models a code or input change that must
// show up as a replay divergence).
func flightScenario(mon *monitor.Monitor, j *flight.Journal, perturb float64) (coupled.SwitchResult, error) {
	m := machine.Smoky(2)
	app := gtsApp()
	app.OutputBytesPerProc *= 1 + perturb
	spec := gtsSpec(m, 4, 4, 1)
	simCore := []int{0, 1, 4, 5}
	helper := &placement.Placement{Spec: spec, Policy: "manual-helper",
		SimCore: simCore, AnaCore: []int{2, 3, 6, 7}}
	staging := &placement.Placement{Spec: spec, Policy: "manual-staging",
		SimCore: simCore, AnaCore: []int{16, 17, 18, 19}}
	for _, p := range []*placement.Placement{helper, staging} {
		if err := p.Validate(); err != nil {
			return coupled.SwitchResult{}, err
		}
	}
	return coupled.RunSwitched(coupled.SwitchConfig{
		First:      coupled.Config{App: app, Place: helper, Steps: flightSteps},
		Second:     coupled.Config{App: app, Place: staging, Steps: flightSteps},
		TotalSteps: flightSteps,
		SwitchAt:   flightSwitchAt,
		Mon:        mon,
		Journal:    j,
	})
}

// ReplayRun executes the scenario twice and diffs the journals. A clean
// re-run must produce byte-identical event streams (same FNV
// fingerprint); with perturb the second run carries a small model change
// and the checker must catch it. Divergence — injected or not — returns
// an error, so flexbench exits non-zero exactly when the streams differ.
func ReplayRun(perturb bool) (*Figure, error) {
	fig := &Figure{
		ID:     "REPLAY",
		Title:  "Replay divergence check over the switched coupled run",
		XLabel: "run",
		YLabel: "journal events",
	}

	a := flight.NewJournal(0)
	if _, err := flightScenario(nil, a, 0); err != nil {
		return nil, err
	}
	eps := 0.0
	if perturb {
		eps = 1e-4
	}
	b := flight.NewJournal(0)
	if _, err := flightScenario(nil, b, eps); err != nil {
		return nil, err
	}

	ha, hb := a.Hash(), b.Hash()
	fig.Series = append(fig.Series, Series{Label: "events journaled",
		X: []float64{0, 1}, Y: []float64{float64(a.Seen()), float64(b.Seen())}})
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("run A: %d events, stream hash %016x", a.Seen(), ha),
		fmt.Sprintf("run B: %d events, stream hash %016x (perturb=%v)", b.Seen(), hb, perturb))

	div := flight.Diff(a.Snapshot(), b.Snapshot())
	switch {
	case !perturb && div == nil && ha == hb:
		fig.Notes = append(fig.Notes, "replay clean: byte-identical event streams")
		return fig, nil
	case perturb && (div != nil || ha != hb):
		fig.Notes = append(fig.Notes, "injected divergence detected: "+div.Error())
		return fig, fmt.Errorf("replay: injected divergence detected: %v", div)
	case perturb:
		return fig, fmt.Errorf("replay: perturbation was not detected (hashes %016x == %016x)", ha, hb)
	default:
		return fig, fmt.Errorf("replay: model is not deterministic: %v", div)
	}
}

// CritpathRun journals the scenario alongside its monitoring spans,
// extracts the per-step critical path, and cross-checks it against the
// independently measured span envelope of every step: the path's edges
// must sum to within 5% of the step's span latency. Artifacts (any may
// be "" to skip): the raw journal, the analysis JSON, and the flight
// micro-benchmark record (budget preserved, measurements refreshed).
func CritpathRun(journalPath, critpathPath, benchPath string) (*Figure, error) {
	fig := &Figure{
		ID:     "CRITPATH",
		Title:  "Per-step critical-path attribution of the switched coupled run",
		XLabel: "pipeline point",
		YLabel: "latency share",
	}

	cm := monitor.New("coupled")
	j := flight.NewJournal(0)
	if _, err := flightScenario(cm, j, 0); err != nil {
		return nil, err
	}
	an := flight.Analyze(j.Snapshot())
	if len(an.Steps) == 0 {
		return nil, fmt.Errorf("critpath: no step events journaled")
	}

	// Independent cross-check: per step, the sum of the extracted path's
	// edge durations vs the envelope of the monitor spans for that step.
	type envelope struct{ lo, hi float64 }
	envs := map[int64]envelope{}
	for _, sp := range cm.Snapshot().Spans {
		e, ok := envs[sp.Step]
		if !ok {
			e = envelope{lo: sp.Start, hi: sp.Start + sp.Dur}
		} else {
			e.lo = math.Min(e.lo, sp.Start)
			e.hi = math.Max(e.hi, sp.Start+sp.Dur)
		}
		envs[sp.Step] = e
	}
	var worst float64
	for i := range an.Steps {
		st := &an.Steps[i]
		e, ok := envs[st.Step]
		if !ok {
			return nil, fmt.Errorf("critpath: step %d has events but no spans", st.Step)
		}
		span := e.hi - e.lo
		if span <= 0 {
			return nil, fmt.Errorf("critpath: step %d span envelope is empty", st.Step)
		}
		skew := math.Abs(st.EdgeSum()-span) / span
		worst = math.Max(worst, skew)
		if skew > 0.05 {
			return nil, fmt.Errorf("critpath: step %d path edges sum to %.6fs but spans measure %.6fs (%.1f%% skew, budget 5%%)",
				st.Step, st.EdgeSum(), span, 100*skew)
		}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"edge-sum vs span-envelope cross-check: worst skew %.3f%% over %d steps (budget 5%%)",
		100*worst, len(an.Steps)))
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"dominant point: %s (%.1f%% of %.6fs total step latency)",
		an.Dominant, 100*an.Shares[an.Dominant], an.TotalLatency))

	points := make([]string, 0, len(an.Shares))
	for pt := range an.Shares {
		points = append(points, pt)
	}
	sort.Slice(points, func(i, k int) bool {
		if an.Shares[points[i]] != an.Shares[points[k]] {
			return an.Shares[points[i]] > an.Shares[points[k]]
		}
		return points[i] < points[k]
	})
	s := Series{Label: "critical-path share"}
	for i, pt := range points {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, an.Shares[pt])
		fig.Notes = append(fig.Notes, fmt.Sprintf("x=%d: point %q, share %.1f%%", i, pt, 100*an.Shares[pt]))
	}
	fig.Series = append(fig.Series, s)

	// The full per-step breakdown (flight.WriteReport's format), so `make
	// critpath` shows each step's dominating edge chain, not just the
	// aggregate shares.
	var report strings.Builder
	if err := flight.WriteReport(&report, an); err != nil {
		return nil, err
	}
	for _, line := range strings.Split(strings.TrimRight(report.String(), "\n"), "\n") {
		fig.Notes = append(fig.Notes, line)
	}

	if journalPath != "" {
		if err := writeArtifact(journalPath, func(w io.Writer) error { return flight.WriteJSON(w, j) }); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "journal written to "+journalPath)
	}
	if critpathPath != "" {
		if err := writeArtifact(critpathPath, func(w io.Writer) error { return flight.WriteAnalysisJSON(w, an) }); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "analysis written to "+critpathPath)
	}
	if benchPath != "" {
		if err := rewriteFlightBench(benchPath); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "recorder micro-benchmarks refreshed in "+benchPath)
	}
	return fig, nil
}

// flightBenchRow is one refreshed measurement in BENCH_flight.json.
type flightBenchRow struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// rewriteFlightBench refreshes the measurement rows of BENCH_flight.json
// while preserving the committed regression budget (and its note) — the
// budget is CI policy, the measurements are machine-local.
func rewriteFlightBench(path string) error {
	doc := struct {
		BudgetNs float64          `json:"nop_journal_budget_ns"`
		Note     string           `json:"note"`
		Results  []flightBenchRow `json:"results"`
	}{BudgetNs: 15}
	if blob, err := os.ReadFile(path); err == nil {
		json.Unmarshal(blob, &doc) //nolint:errcheck // best effort: keep committed budget/note
	}
	base, nop, rec := measureJournalNs()
	overhead := math.Max(0, nop-base)
	doc.Results = []flightBenchRow{
		{Name: "baseline_work", NsPerOp: base},
		{Name: "nil_journal", NsPerOp: nop},
		{Name: "nil_journal_overhead", NsPerOp: overhead},
		{Name: "recording_journal", NsPerOp: rec},
	}
	return writeArtifact(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

// benchSink keeps the measurement loops from being optimized away.
var benchSink uint64

// measureJournalNs times the same loop bare, with a nil journal, and
// with a recording journal (ns per iteration).
func measureJournalNs() (base, nop, rec float64) {
	const iters = 1 << 21
	work := func(i int) uint64 { return uint64(i) * 2654435761 }

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		benchSink ^= work(i)
	}
	base = float64(time.Since(t0).Nanoseconds()) / iters

	var nilJ *flight.Journal
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		id := nilJ.Begin(flight.Event{})
		benchSink ^= work(i)
		nilJ.End(id)
	}
	nop = float64(time.Since(t0).Nanoseconds()) / iters

	jr := flight.NewJournal(1 << 12)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		id := jr.Begin(flight.Event{Kind: flight.KindCompute, Point: "bench"})
		benchSink ^= work(i)
		jr.End(id)
	}
	rec = float64(time.Since(t0).Nanoseconds()) / iters
	return base, nop, rec
}

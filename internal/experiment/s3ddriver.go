package experiment

import (
	"fmt"

	"flexio/internal/apps/s3d"
	"flexio/internal/core"
	"flexio/internal/coupled"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

const s3dSteps = 50

// s3dSpec builds the S3D placement instance: a 3-D-ish stencil for sim
// MPI (ring + stride), a 128:1 fan-in to the visualization, and image
// compositing among the viz processes.
func s3dSpec(m *machine.Machine, nSim, nAna int) *placement.Spec {
	g := graph.New(nSim + nAna)
	stride := nSim / 8
	if stride < 2 {
		stride = 2
	}
	for i := 0; i < nSim; i++ {
		if nAna > 0 {
			g.AddEdge(i, nSim+minInt(i*nAna/nSim, nAna-1), s3d.OutputBytesPerProc)
		}
		g.AddEdge(i, (i+1)%nSim, 50e6)
		if i+stride < nSim {
			g.AddEdge(i, i+stride, 50e6)
		}
	}
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 30e6)
	}
	return &placement.Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: 1, Comm: g}
}

// s3dScales sweeps S3D_Box cores (1 process per core).
func s3dScales(m *machine.Machine) []int {
	var out []int
	for _, cores := range []int{256, 512, 1024, 2048} {
		nodesNeeded := cores/m.Node.Cores + 2
		if nodesNeeded > m.NumNodes {
			break
		}
		out = append(out, cores)
	}
	return out
}

// s3dStreamConfig is the tuned movement configuration of Section IV.B.1:
// CACHING_ALL, batching, asynchronous writes, paced Gets.
func s3dStreamConfig(app coupled.AppModel, p *placement.Placement) coupled.Config {
	return coupled.Config{
		App: app, Place: p, Steps: s3dSteps,
		Async: true, Batching: true, Caching: core.CachingAll,
		PacingFraction: 0.5, WritersPerReader: s3d.WritersPerReader,
	}
}

// Fig9 regenerates Figure 9: S3D_Box Total Execution Time under inline /
// hybrid(data-aware) / staging(holistic) / staging(topology-aware).
func Fig9(machineName string) (*Figure, error) {
	m, err := machine.ByName(machineName, 160)
	if err != nil {
		return nil, err
	}
	app := s3d.Model()
	fig := &Figure{
		ID:     "FIG9-" + machineName,
		Title:  "S3D_Box Total Execution Time on " + machineName,
		XLabel: "S3D-Box cores",
		YLabel: "seconds",
	}
	order := []string{
		"Inline",
		"Hybrid(DataAware)",
		"Staging(Holistic)",
		"Staging(TopoAware)",
		"LowerBound",
	}
	series := map[string]*Series{}
	for _, name := range order {
		series[name] = &Series{Label: name}
	}
	add := func(name string, x int, y float64) {
		s := series[name]
		s.X = append(s.X, float64(x))
		s.Y = append(s.Y, y)
	}

	for _, cores := range s3dScales(m) {
		nSim := cores
		nAna := maxInt(1, nSim/s3d.WritersPerReader)

		inlSpec := s3dSpec(m, nSim, 0)
		inl, err := placement.InlinePlacement(inlSpec)
		if err != nil {
			return nil, fmt.Errorf("inline@%d: %w", cores, err)
		}
		rInl, err := coupled.Run(coupled.Config{App: app, Place: inl, Steps: s3dSteps})
		if err != nil {
			return nil, err
		}
		add("Inline", cores, rInl.TotalTime)

		spec := s3dSpec(m, nSim, nAna)
		inter := graph.New(nSim + nAna)
		for i := 0; i < nSim; i++ {
			inter.AddEdge(i, nSim+minInt(i*nAna/nSim, nAna-1), s3d.OutputBytesPerProc)
		}
		da, err := placement.DataAware(spec, inter)
		if err != nil {
			return nil, fmt.Errorf("data-aware@%d: %w", cores, err)
		}
		rDA, err := coupled.Run(s3dStreamConfig(app, da))
		if err != nil {
			return nil, err
		}
		add("Hybrid(DataAware)", cores, rDA.TotalTime)

		ho, err := placement.Holistic(spec)
		if err != nil {
			return nil, fmt.Errorf("holistic@%d: %w", cores, err)
		}
		rHO, err := coupled.Run(s3dStreamConfig(app, ho))
		if err != nil {
			return nil, err
		}
		add("Staging(Holistic)", cores, rHO.TotalTime)

		ta, err := placement.TopologyAware(spec)
		if err != nil {
			return nil, fmt.Errorf("topo@%d: %w", cores, err)
		}
		rTA, err := coupled.Run(s3dStreamConfig(app, ta))
		if err != nil {
			return nil, err
		}
		add("Staging(TopoAware)", cores, rTA.TotalTime)

		add("LowerBound", cores, coupled.SoloTime(app, 1, s3dSteps))
	}
	for _, name := range order {
		fig.Series = append(fig.Series, *series[name])
	}
	fig.Notes = append(fig.Notes,
		"expected shape: holistic and topology-aware choose staging and win; the data-aware hybrid",
		"pays for scattered internal MPI; inline degrades with scale (file I/O); staging within a few % of LowerBound")
	return fig, nil
}

// S3DTuning regenerates the Section IV.B.1 data-movement tuning numbers:
// simulation-visible data movement time per step, untuned (NO_CACHING,
// per-variable, synchronous) vs. tuned (CACHING_ALL + batching + async),
// at 1K cores on both machines. Paper: 1.2s -> 0.053s on Titan and 4.0s
// -> 0.077s on Smoky.
func S3DTuning() (*Figure, error) {
	app := s3d.Model()
	fig := &Figure{
		ID:     "TBL-S3D-TUNE",
		Title:  "S3D data movement tuning at 1K cores (simulation-visible seconds/step)",
		XLabel: "configuration (1=untuned, 2=tuned)",
		YLabel: "seconds",
	}
	for _, name := range []string{"Titan", "Smoky"} {
		m, err := machine.ByName(name, 160)
		if err != nil {
			return nil, err
		}
		nSim := 1024
		if nSim/m.Node.Cores+2 > m.NumNodes {
			nSim = (m.NumNodes - 2) * m.Node.Cores
		}
		nAna := maxInt(1, nSim/s3d.WritersPerReader)
		spec := s3dSpec(m, nSim, nAna)
		ho, err := placement.Holistic(spec)
		if err != nil {
			return nil, err
		}
		untuned, err := coupled.Run(coupled.Config{
			App: app, Place: ho, Steps: s3dSteps,
			Async: false, Batching: false, Caching: core.NoCaching,
			WritersPerReader: s3d.WritersPerReader,
		})
		if err != nil {
			return nil, err
		}
		tuned, err := coupled.Run(s3dStreamConfig(app, ho))
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%s (%d cores)", name, nSim),
			X:     []float64{1, 2},
			Y:     []float64{untuned.Phases.SimVisIO, tuned.Phases.SimVisIO},
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: %.3fs -> %.3fs (paper: %s)", name,
			untuned.Phases.SimVisIO, tuned.Phases.SimVisIO,
			map[string]string{"Titan": "1.2s -> 0.053s", "Smoky": "4.0s -> 0.077s"}[name]))
	}
	return fig, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiment

import (
	"strings"
	"testing"
)

func TestReplayCleanRun(t *testing.T) {
	fig, err := ReplayRun(false)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(fig.Notes, "\n")
	if !strings.Contains(joined, "byte-identical") {
		t.Fatalf("notes lack the clean verdict:\n%s", joined)
	}
}

func TestReplayDetectsInjectedDivergence(t *testing.T) {
	fig, err := ReplayRun(true)
	if err == nil {
		t.Fatal("injected divergence must fail the experiment")
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("error %q does not report the divergence", err)
	}
	if fig == nil || !strings.Contains(strings.Join(fig.Notes, "\n"), "divergence at event") {
		t.Fatal("figure notes must locate the diverging event")
	}
}

func TestCritpathEdgeSumWithinBudget(t *testing.T) {
	fig, err := CritpathRun("", "", "") // no artifacts in tests
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(fig.Series))
	}
	var sum float64
	for _, y := range fig.Series[0].Y {
		sum += y
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("shares sum to %f, want ~1", sum)
	}
	joined := strings.Join(fig.Notes, "\n")
	for _, want := range []string{"cross-check", "dominant point"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes lack %q:\n%s", want, joined)
		}
	}
}

package experiment

import (
	"fmt"

	"flexio/internal/apps/gts"
	"flexio/internal/coupled"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// gtsSteps is the number of I/O intervals simulated per configuration.
const gtsSteps = 50

// gtsCase bundles a run's spec-building parameters.
type gtsScale struct {
	cores   int // the figure's x axis: "GTS Cores"
	nSim    int
	threads int // helper-core thread count (full-1)
	full    int // inline/staging thread count
}

// gtsScales derives the weak-scaling sweep for a machine: inline runs use
// one process per NUMA domain with a full domain of threads; helper-core
// runs free one core per domain for analytics (the paper's best
// configurations: 4->3 threads on Smoky, 8->7 on Titan).
func gtsScales(m *machine.Machine) []gtsScale {
	full := m.Node.CoresPerNUMA
	var scales []gtsScale
	for _, cores := range []int{128, 256, 512, 1024, 2048} {
		nSim := cores / full
		// Reserve headroom for staging nodes (~nSim/3 analytics procs).
		nodesNeeded := cores/m.Node.Cores + (nSim/3+m.Node.Cores-1)/m.Node.Cores + 2
		if nodesNeeded > m.NumNodes {
			break
		}
		scales = append(scales, gtsScale{cores: cores, nSim: nSim, threads: full - 1, full: full})
	}
	return scales
}

// gtsSpec builds the placement problem for a scale: paired inter-program
// streams (110 MB), a ring of sim MPI, a light analytics reduction chain.
func gtsSpec(m *machine.Machine, nSim, nAna, threads int) *placement.Spec {
	g := graph.New(nSim + nAna)
	for i := 0; i < nSim; i++ {
		if nAna > 0 {
			g.AddEdge(i, nSim+minInt(i*nAna/nSim, nAna-1), gts.OutputBytesPerProc)
		}
		g.AddEdge(i, (i+1)%nSim, 20e6)
	}
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 2e6)
	}
	return &placement.Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: threads, Comm: g}
}

func gtsApp() coupled.AppModel {
	app := gts.Model()
	app.NUMAStraddlePenalty = 0.07
	return app
}

// Fig6 regenerates Figure 6: GTS Total Execution Time under the five
// placements across scales, plus the solo lower bound.
func Fig6(machineName string) (*Figure, error) {
	m, err := machine.ByName(machineName, 128)
	if err != nil {
		return nil, err
	}
	app := gtsApp()
	fig := &Figure{
		ID:     "FIG6-" + machineName,
		Title:  "GTS Total Execution Time on " + machineName,
		XLabel: "GTS cores",
		YLabel: "seconds",
	}
	series := map[string]*Series{}
	order := []string{
		"Inline",
		"HelperCore(DataAware)",
		"HelperCore(Holistic)",
		"HelperCore(TopoAware)",
		"Staging",
		"LowerBound",
	}
	for _, name := range order {
		series[name] = &Series{Label: name}
	}
	add := func(name string, x int, y float64) {
		s := series[name]
		s.X = append(s.X, float64(x))
		s.Y = append(s.Y, y)
	}

	for _, sc := range gtsScales(m) {
		// Inline: full threads, analytics called in place.
		inlSpec := gtsSpec(m, sc.nSim, 0, sc.full)
		inl, err := placement.InlinePlacement(inlSpec)
		if err != nil {
			return nil, fmt.Errorf("inline@%d: %w", sc.cores, err)
		}
		rInl, err := coupled.Run(coupled.Config{App: app, Place: inl, Steps: gtsSteps})
		if err != nil {
			return nil, err
		}
		add("Inline", sc.cores, rInl.TotalTime)

		// Helper-core variants: one analytics process per sim process.
		hcSpec := gtsSpec(m, sc.nSim, sc.nSim, sc.threads)
		inter := graph.New(hcSpec.NSim + hcSpec.NAna)
		for i := 0; i < hcSpec.NSim; i++ {
			inter.AddEdge(i, hcSpec.NSim+i, gts.OutputBytesPerProc)
		}
		type variant struct {
			name  string
			build func() (*placement.Placement, error)
		}
		for _, v := range []variant{
			{"HelperCore(DataAware)", func() (*placement.Placement, error) { return placement.DataAware(hcSpec, inter) }},
			{"HelperCore(Holistic)", func() (*placement.Placement, error) { return placement.Holistic(hcSpec) }},
			{"HelperCore(TopoAware)", func() (*placement.Placement, error) { return placement.TopologyAware(hcSpec) }},
		} {
			p, err := v.build()
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", v.name, sc.cores, err)
			}
			r, err := coupled.Run(coupled.Config{App: app, Place: p, Steps: gtsSteps})
			if err != nil {
				return nil, err
			}
			add(v.name, sc.cores, r.TotalTime)
		}

		// Staging: full threads, analytics on separate nodes; sized by
		// the holistic resource-allocation step (rate matching).
		totalBytes := gts.OutputBytesPerProc * float64(sc.nSim)
		interval := app.SimComputePerInterval(sc.full)
		nAna := placement.SyncAllocation(func(p int) float64 {
			return app.AnaComputePerStep(p, totalBytes)
		}, interval, sc.nSim)
		stSpec := gtsSpec(m, sc.nSim, nAna, sc.full)
		st, err := placement.StagingPlacement(stSpec)
		if err != nil {
			return nil, fmt.Errorf("staging@%d: %w", sc.cores, err)
		}
		rST, err := coupled.Run(coupled.Config{
			App: app, Place: st, Steps: gtsSteps, Async: true, PacingFraction: 0.5,
		})
		if err != nil {
			return nil, err
		}
		add("Staging", sc.cores, rST.TotalTime)

		add("LowerBound", sc.cores, coupled.SoloTime(app, sc.full, gtsSteps))
	}
	for _, name := range order {
		fig.Series = append(fig.Series, *series[name])
	}
	fig.Notes = append(fig.Notes,
		"expected shape: all three algorithms place analytics on helper cores; topology-aware is best;",
		"staging trails helper-core placements; inline is worst at scale; best stays within ~8% of LowerBound")
	return fig, nil
}

// Fig7 regenerates Figure 7: detailed per-interval timing of GTS with 128
// MPI processes on Smoky for the three cases.
func Fig7() (*Figure, error) {
	m := machine.Smoky(80)
	app := gtsApp()
	const nSim = 128
	fig := &Figure{
		ID:     "FIG7",
		Title:  "Detailed timing of GTS and analytics (128 MPI processes, Smoky)",
		XLabel: "phase",
		YLabel: "seconds per I/O interval",
	}
	// Phase columns: 1=sim compute, 2=visible I/O, 3=analysis, 4=ana idle.
	phaseX := []float64{1, 2, 3, 4}

	// Case 1: analytics on helper core, GTS with 3 threads.
	hcSpec := gtsSpec(m, nSim, nSim, 3)
	hc, err := placement.TopologyAware(hcSpec)
	if err != nil {
		return nil, err
	}
	r1, err := coupled.Run(coupled.Config{App: app, Place: hc, Steps: gtsSteps})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{
		Label: "Case1 HelperCore (3 threads)",
		X:     phaseX,
		Y:     []float64{r1.Phases.SimCompute, r1.Phases.SimVisIO, r1.Phases.Analysis, r1.Phases.AnaIdle},
	})

	// Case 2: inline, GTS with 4 threads.
	inlSpec := gtsSpec(m, nSim, 0, 4)
	inl, err := placement.InlinePlacement(inlSpec)
	if err != nil {
		return nil, err
	}
	r2, err := coupled.Run(coupled.Config{App: app, Place: inl, Steps: gtsSteps})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{
		Label: "Case2 Inline (4 threads)",
		X:     phaseX,
		Y:     []float64{r2.Phases.SimCompute, r2.Phases.SimVisIO, r2.Phases.Analysis, 0},
	})

	// Case 3: GTS solo with 3 threads, no I/O, no analytics.
	solo3 := app.SimComputePerInterval(3)
	fig.Series = append(fig.Series, Series{
		Label: "Case3 Solo (3 threads)",
		X:     phaseX,
		Y:     []float64{solo3, 0, 0, 0},
	})

	idle := r1.Phases.AnaIdle / (r1.Phases.AnaIdle + r1.Phases.Analysis)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("helper-core visible I/O: %.3fs (paper: nearly invisible)", r1.Phases.SimVisIO),
		fmt.Sprintf("analytics idle fraction: %.0f%% (paper: 67%%, conservative allocation)", idle*100),
		fmt.Sprintf("case1 sim compute %.2fs vs case3 solo %.2fs: co-location overhead %.1f%% (paper: 4.1%%)",
			r1.Phases.SimCompute, solo3, (r1.Phases.SimCompute/solo3-1)*100),
	)
	return fig, nil
}

// Fig8 regenerates Figure 8: GTS L3 misses per 1K instructions, solo vs.
// sharing the socket with helper-core analytics.
func Fig8() (*Figure, error) {
	m := machine.Smoky(80)
	app := gtsApp()
	const nSim = 128
	hcSpec := gtsSpec(m, nSim, nSim, 3)
	hc, err := placement.TopologyAware(hcSpec)
	if err != nil {
		return nil, err
	}
	r, err := coupled.Run(coupled.Config{App: app, Place: hc, Steps: gtsSteps})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "FIG8",
		Title:  "GTS last-level cache miss rate on Smoky (misses per 1K instructions)",
		XLabel: "configuration",
		YLabel: "L3 MPKI",
		Series: []Series{
			{Label: "GTS (3 threads) solo", X: []float64{1}, Y: []float64{r.MPKISolo}},
			{Label: "GTS (3 threads) with helper-core analytics", X: []float64{2}, Y: []float64{r.MPKIShared}},
		},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("miss inflation: %.0f%% (paper: 47%%)", (r.MPKIShared/r.MPKISolo-1)*100),
		fmt.Sprintf("simulation slowdown from sharing: %.1f%% (paper: 4.1%%)",
			(app.Cache.Slowdown(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, app.AnaFootprint)-1)*100),
	)
	return fig, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

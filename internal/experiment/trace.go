package experiment

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/coupled"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/placement"
	"flexio/internal/rdma"
)

// metricsAddr is the live-export address for the trace experiment
// ("host:port" or "" to disable). cmd/flexbench wires its -metrics flag
// here.
var metricsAddr string

// SetMetricsAddr configures the address the trace experiment's live
// monitoring server binds ("127.0.0.1:0" picks a free port, "" disables).
func SetMetricsAddr(addr string) { metricsAddr = addr }

// TraceRun is the observability walkthrough (`make trace`): it drives a
// real 2x2 core stream through a mid-run reconfiguration with writer- and
// reader-side monitors attached, runs the observation-steered coupled
// model on the same timeline source, and exports the merged result as
//
//	tracePath    Chrome trace-event JSON (about:tracing / Perfetto)
//	metricsPath  the machine-readable report with per-point histograms
//
// When serveAddr is non-empty a monitor.Server additionally exposes the
// merged live report over HTTP for the duration of the run, and the
// driver self-checks /metrics mid-reconfiguration — the "watch a running
// experiment re-place itself" demo from Section II.G.
func TraceRun(tracePath, metricsPath, serveAddr string) (*Figure, error) {
	fig := &Figure{
		ID:     "TRACE",
		Title:  "End-to-end step tracing and live metrics export",
		XLabel: "artifact",
		YLabel: "spans",
	}

	wm := monitor.New("writers")
	rm := monitor.New("readers")
	cm := monitor.New("coupled")
	merged := func() monitor.Report {
		return monitor.Merge("flexio", wm.Snapshot(), rm.Snapshot(), cm.Snapshot())
	}

	fj := flight.NewJournal(0)

	var liveCheck string
	if serveAddr != "" {
		srv := monitor.NewServer(merged)
		srv.SetFlightSource(func() *flight.Journal { return fj })
		addr, err := srv.Start(serveAddr)
		if err != nil {
			return nil, fmt.Errorf("trace: live server: %w", err)
		}
		defer srv.Close() //nolint:errcheck
		fig.Notes = append(fig.Notes, "live metrics at http://"+addr+"/metrics (and /trace, /spans, /report, /journal, /critpath)")
		liveCheck = "http://" + addr
	}

	if err := traceStream(wm, rm, fj, liveCheck, fig); err != nil {
		return nil, err
	}
	if err := traceSteered(cm, fig); err != nil {
		return nil, err
	}

	rep := merged()
	if tracePath != "" {
		if err := writeArtifact(tracePath, rep.WriteChromeTrace); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "Chrome trace written to "+tracePath)
	}
	if metricsPath != "" {
		if err := writeArtifact(metricsPath, rep.WriteJSON); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "metrics report written to "+metricsPath)
	}

	perOrigin := map[string]float64{}
	for _, sp := range rep.Spans {
		perOrigin[sp.Origin]++
	}
	s := Series{Label: "spans per origin"}
	for i, o := range []string{"writers", "readers", "coupled"} {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, perOrigin[o])
		fig.Notes = append(fig.Notes, fmt.Sprintf("x=%d: origin %q, %d spans", i, o, int(perOrigin[o])))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// traceStream runs the instrumented 2-writer / 2-reader stream: three
// steps over shm, a Reconfigure that moves both readers to node 1 (rdma
// transport thereafter), three more steps. A pass-through reader plug-in
// keeps dc.plugin spans on the analytics side of the trace; the flight
// journal rides along at every layer (core step chain, shm queue
// crossings, rdma verbs). If liveCheck is non-empty, /metrics and
// /journal are fetched mid-run and must already serve. Afterwards the
// transport-resource gauges (registration cache, message-queue
// high-water, shm pools/ring waits) are published into the writer
// monitor so they surface on /metrics.
func traceStream(wm, rm *monitor.Monitor, fj *flight.Journal, liveCheck string, fig *Figure) error {
	const nw, nr, pre, post = 2, 2, 3, 3
	net := evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net))
	net.SetJournal(fj)
	dir := directory.NewMem()

	shape := []int64{64, 64}
	wdec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	if err != nil {
		return err
	}
	rdec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nr, 2))
	if err != nil {
		return err
	}

	opts := core.Options{
		Transport: func(w, r int) (evpath.TransportKind, int, int) {
			return evpath.ShmTransport, 0, 0
		},
		WriterNode: func(w int) int { return 0 },
	}
	wg, err := core.NewWriterGroup(net, dir, "trace-demo", nw, opts, wm)
	if err != nil {
		return err
	}
	rg, err := core.NewReaderGroup(net, dir, "trace-demo", nr, rm)
	if err != nil {
		return err
	}
	wg.SetJournal(fj)
	rg.SetJournal(fj)
	rg.InstallNamedPlugin("passthrough", func(ev *evpath.Event) (*evpath.Event, error) { return ev, nil })

	errCh := make(chan error, nw+nr+1)
	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			payload := make([]byte, wdec.Boxes[w].NumElements()*8)
			write := func(s int) error {
				if err := wr.BeginStep(int64(s)); err != nil {
					return err
				}
				if err := wr.Write(core.VarMeta{Name: "field", Kind: core.GlobalArrayVar,
					ElemSize: 8, GlobalShape: shape, Box: wdec.Boxes[w]}, payload); err != nil {
					return err
				}
				return wr.EndStep()
			}
			for s := 0; s < pre; s++ {
				if err := write(s); err != nil {
					errCh <- err
					return
				}
			}
			// Hold the step boundary until the reconfiguration is parked so
			// the epoch-2 steps really run under the new placement.
			for wg.SessionState() != core.StateReconfiguring {
				time.Sleep(100 * time.Microsecond)
			}
			for s := pre; s < pre+post; s++ {
				if err := write(s); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	consume := func(rd *core.Reader, from, to int) error {
		for s := from; s < to; s++ {
			step, ok := rd.BeginStep()
			if !ok || step != int64(s) {
				return fmt.Errorf("reader %d: step %d ok=%v want %d", rd.Rank, step, ok, s)
			}
			buf, _, err := rd.ReadArray("field")
			if err != nil {
				return err
			}
			rd.ReleaseArray(buf)
			if err := rd.EndStep(); err != nil {
				return err
			}
		}
		return nil
	}

	var phase sync.WaitGroup
	for r := 0; r < nr; r++ {
		r := r
		phase.Add(1)
		go func() {
			defer phase.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				errCh <- err
				return
			}
			if err := consume(rd, 0, pre); err != nil {
				errCh <- err
			}
		}()
	}
	phase.Wait()

	// Mid-run: the live endpoints must already serve while the stream is
	// between epochs — quantiles on /metrics, the causal journal (with
	// its stream fingerprint) on /journal, and a step-attributed path on
	// /critpath.
	if liveCheck != "" {
		body, err := httpGet(liveCheck + "/metrics")
		if err != nil {
			return fmt.Errorf("trace: mid-run /metrics: %w", err)
		}
		if !strings.Contains(body, "p95") {
			return fmt.Errorf("trace: mid-run /metrics lacks quantiles: %.80q", body)
		}
		fig.Notes = append(fig.Notes, "mid-run /metrics self-check: ok (quantiles served)")

		body, err = httpGet(liveCheck + "/journal")
		if err != nil {
			return fmt.Errorf("trace: mid-run /journal: %w", err)
		}
		if !strings.Contains(body, `"hash"`) || !strings.Contains(body, "writer.flush") {
			return fmt.Errorf("trace: mid-run /journal lacks events: %.80q", body)
		}
		body, err = httpGet(liveCheck + "/critpath")
		if err != nil {
			return fmt.Errorf("trace: mid-run /critpath: %w", err)
		}
		if !strings.Contains(body, "dominant") {
			return fmt.Errorf("trace: mid-run /critpath lacks analysis: %.80q", body)
		}
		fig.Notes = append(fig.Notes, "mid-run /journal + /critpath self-check: ok (flight recorder served)")
	}

	if err := rg.Reconfigure(core.ReconfigSpec{
		NReaders: nr,
		Arrays:   map[string][]ndarray.Box{"field": rdec.Boxes},
		Nodes:    []int{1, 1}, // move the analytics off-node: shm -> rdma
	}); err != nil {
		return err
	}

	for r := 0; r < nr; r++ {
		r := r
		phase.Add(1)
		go func() {
			defer phase.Done()
			if err := consume(rg.Reader(r), pre, pre+post); err != nil {
				errCh <- err
			}
		}()
	}
	writers.Wait()
	if err := wg.Close(); err != nil {
		return err
	}
	phase.Wait()
	rg.Close()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	// Transport-resource gauges onto /metrics: registration-cache and
	// message-queue counters from the epoch-2 rdma phase, per-channel
	// pool/ring counters from the epoch-1 shm phase, and the core
	// assembly pool's drain state (zero in-use once every ReadArray
	// buffer came back through ReleaseArray).
	net.Fabric().ReportTo(wm, "rdma")
	net.ReportShm(wm, "shm")
	asm := rg.AsmPoolStats()
	rm.Set("core.asmpool.inuse", asm.BytesInUse)
	rm.Set("core.asmpool.highwater", asm.HighWater)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"transport gauges: rdma cache hits=%d misses=%d, msgq highwater=%d/%d, asm pool inuse=%d (highwater %d)",
		net.Fabric().CacheTotals().Hits, net.Fabric().CacheTotals().Misses,
		net.Fabric().MsgQueueHighWater(), rdma.MsgQueueDepth, asm.BytesInUse, asm.HighWater))

	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"stream: %d writers -> %d readers, %d+%d steps around a node-move reconfiguration", nw, nr, pre, post))
	return nil
}

// traceSteered runs the observation-steered coupled model (GTS on Smoky,
// growing analytics footprint) into the "coupled" monitor so the trace
// shows the virtual-time epochs on either side of the observed switch.
func traceSteered(cm *monitor.Monitor, fig *Figure) error {
	m := machine.Smoky(2)
	app := gtsApp()
	spec := gtsSpec(m, 4, 4, 1)
	simCore := []int{0, 1, 4, 5}
	helper := &placement.Placement{Spec: spec, Policy: "manual-helper",
		SimCore: simCore, AnaCore: []int{2, 3, 6, 7}}
	staging := &placement.Placement{Spec: spec, Policy: "manual-staging",
		SimCore: simCore, AnaCore: []int{16, 17, 18, 19}}
	for _, p := range []*placement.Placement{helper, staging} {
		if err := p.Validate(); err != nil {
			return err
		}
	}

	const steps = 10
	out, err := coupled.RunSteered(coupled.SteerConfig{
		First:          coupled.Config{App: app, Place: helper, Steps: steps},
		Second:         coupled.Config{App: app, Place: staging, Steps: steps},
		TotalSteps:     steps,
		AnaFootprintAt: func(s int) int64 { return int64(s) * 600_000 },
		Threshold:      1.02,
		Patience:       2,
		Mon:            cm,
	})
	if err != nil {
		return err
	}
	if out.Switched {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"steered coupled run: observed interference fired the helper-core -> staging switch at step %d (signal %.4f)",
			out.TriggerStep, out.Signals[len(out.Signals)-1]))
	} else {
		fig.Notes = append(fig.Notes, "steered coupled run: interference never crossed the threshold")
	}
	return nil
}

func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}

func httpGet(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(body), fmt.Errorf("status %s", resp.Status)
	}
	return string(body), nil
}

package experiment

import (
	"fmt"

	"flexio/internal/apps/s3d"
	"flexio/internal/coupled"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// claim is one of the paper's headline numbers with our measured value.
type claim struct {
	text     string
	paper    string
	measured float64
	unit     string
	ok       bool
}

// Claims re-derives Section IV's headline results from the figure data:
//
//   - GTS best helper-core placement within 7.9% (Titan) / 8.4% (Smoky)
//     of the solo lower bound;
//   - S3D staging within 3.6% (Titan) / 5.1% (Smoky) of the lower bound
//     with <1% extra resources;
//   - S3D staging beats inline by up to 19% (Smoky) / 30% (Titan);
//   - helper-core/inline placements cut inter-node data movement ~90%
//     vs. staging for GTS;
//   - tuned placement improves on inline-only by up to ~30%.
func Claims() (*Figure, error) {
	var claims []claim

	// --- GTS lower-bound proximity on both machines ---
	for _, spec := range []struct {
		name  string
		bound float64
	}{{"Smoky", 0.084}, {"Titan", 0.079}} {
		m, err := machine.ByName(spec.name, 128)
		if err != nil {
			return nil, err
		}
		app := gtsApp()
		full := m.Node.CoresPerNUMA
		nSim := 512 / full
		s := gtsSpec(m, nSim, nSim, full-1)
		ta, err := placement.TopologyAware(s)
		if err != nil {
			return nil, err
		}
		r, err := coupled.Run(coupled.Config{App: app, Place: ta, Steps: gtsSteps})
		if err != nil {
			return nil, err
		}
		lb := coupled.SoloTime(app, full, gtsSteps)
		gap := r.TotalTime/lb - 1
		claims = append(claims, claim{
			text:     fmt.Sprintf("GTS best placement vs lower bound (%s)", spec.name),
			paper:    fmt.Sprintf("<= %.1f%%", spec.bound*100),
			measured: gap * 100, unit: "%",
			ok: gap >= 0 && gap <= spec.bound+0.04,
		})
	}

	// --- GTS helper-core vs inline improvement ---
	{
		m := machine.Smoky(80)
		app := gtsApp()
		nSim := 128
		inl, err := placement.InlinePlacement(gtsSpec(m, nSim, 0, 4))
		if err != nil {
			return nil, err
		}
		rI, err := coupled.Run(coupled.Config{App: app, Place: inl, Steps: gtsSteps})
		if err != nil {
			return nil, err
		}
		ta, err := placement.TopologyAware(gtsSpec(m, nSim, nSim, 3))
		if err != nil {
			return nil, err
		}
		rT, err := coupled.Run(coupled.Config{App: app, Place: ta, Steps: gtsSteps})
		if err != nil {
			return nil, err
		}
		imp := (1 - rT.TotalTime/rI.TotalTime) * 100
		claims = append(claims, claim{
			text:  "GTS helper-core improvement over inline (Smoky, 512 cores)",
			paper: "up to ~30% across apps/scales", measured: imp, unit: "%",
			ok: imp > 5 && imp < 35,
		})

		// Inter-node data-movement reduction vs staging.
		st, err := placement.StagingPlacement(gtsSpec(m, nSim, nSim/3, 4))
		if err != nil {
			return nil, err
		}
		rS, err := coupled.Run(coupled.Config{App: app, Place: st, Steps: gtsSteps, Async: true, PacingFraction: 0.5})
		if err != nil {
			return nil, err
		}
		red := (1 - rT.InterNodeBytes/rS.InterNodeBytes) * 100
		claims = append(claims, claim{
			text:  "GTS helper-core inter-node movement reduction vs staging",
			paper: "~90%", measured: red, unit: "%",
			ok: red > 85,
		})
	}

	// --- S3D staging claims on both machines ---
	for _, spec := range []struct {
		name       string
		lbBound    float64
		inlineBeat float64
	}{{"Smoky", 0.051, 19}, {"Titan", 0.036, 30}} {
		m, err := machine.ByName(spec.name, 160)
		if err != nil {
			return nil, err
		}
		app := s3d.Model()
		nSim := 1024
		if nSim/m.Node.Cores+2 > m.NumNodes {
			nSim = (m.NumNodes - 2) * m.Node.Cores
		}
		nAna := maxInt(1, nSim/s3d.WritersPerReader)
		s := s3dSpec(m, nSim, nAna)
		ta, err := placement.TopologyAware(s)
		if err != nil {
			return nil, err
		}
		r, err := coupled.Run(s3dStreamConfig(app, ta))
		if err != nil {
			return nil, err
		}
		lb := coupled.SoloTime(app, 1, s3dSteps)
		gap := r.TotalTime/lb - 1
		claims = append(claims, claim{
			text:     fmt.Sprintf("S3D staging vs lower bound (%s)", spec.name),
			paper:    fmt.Sprintf("<= %.1f%%", spec.lbBound*100),
			measured: gap * 100, unit: "%",
			ok: gap >= 0 && gap <= spec.lbBound+0.05,
		})

		inl, err := placement.InlinePlacement(s3dSpec(m, nSim, 0))
		if err != nil {
			return nil, err
		}
		rI, err := coupled.Run(coupled.Config{App: app, Place: inl, Steps: s3dSteps})
		if err != nil {
			return nil, err
		}
		imp := (1 - r.TotalTime/rI.TotalTime) * 100
		claims = append(claims, claim{
			text:     fmt.Sprintf("S3D staging improvement over inline (%s)", spec.name),
			paper:    fmt.Sprintf("up to %.0f%%", spec.inlineBeat),
			measured: imp, unit: "%",
			ok: imp > 5 && imp < spec.inlineBeat+15,
		})

		simNodes := (nSim + m.Node.Cores - 1) / m.Node.Cores
		extra := (float64(r.NodesUsed)/float64(simNodes) - 1) * 100
		claims = append(claims, claim{
			text:  fmt.Sprintf("S3D staging extra resources (%s)", spec.name),
			paper: "0.78%", measured: extra, unit: "%",
			ok: extra >= 0 && extra < 5,
		})
	}

	// --- Miss-rate claim (Figure 8) ---
	{
		app := gtsApp()
		m := machine.Smoky(80)
		infl := (app.Cache.MissInflation(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, app.AnaFootprint) - 1) * 100
		claims = append(claims, claim{
			text:  "GTS L3 miss inflation with helper-core analytics",
			paper: "47%", measured: infl, unit: "%",
			ok: infl > 40 && infl < 55,
		})
	}

	fig := &Figure{ID: "CLAIMS", Title: "Headline claims: paper vs. this reproduction"}
	pass := 0
	for _, c := range claims {
		status := "OK"
		if !c.ok {
			status = "OUT-OF-BAND"
		} else {
			pass++
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%-58s paper %-12s measured %6.1f%-2s [%s]",
			c.text, c.paper, c.measured, c.unit, status))
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("%d/%d claims in band", pass, len(claims)))
	if pass < len(claims) {
		return fig, fmt.Errorf("experiment claims: %d/%d in band", pass, len(claims))
	}
	return fig, nil
}

package experiment

import (
	"strings"
	"testing"
)

func TestFig4Shapes(t *testing.T) {
	fig, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	dyn, stat := fig.Series[0], fig.Series[1]
	for i := range dyn.X {
		if stat.Y[i] <= dyn.Y[i] {
			t.Fatalf("static must beat dynamic at %g bytes", dyn.X[i])
		}
	}
	// Convergence at large sizes.
	n := len(dyn.Y) - 1
	if stat.Y[0]/dyn.Y[0] < 2*(stat.Y[n]/dyn.Y[n]) {
		t.Fatal("registration gap must shrink with message size")
	}
}

func TestFig6SmokyShapes(t *testing.T) {
	fig, err := Fig6("Smoky")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s
	}
	topo := byLabel["HelperCore(TopoAware)"]
	if len(topo.X) < 3 {
		t.Fatalf("too few scales: %d", len(topo.X))
	}
	for i := range topo.X {
		inline := byLabel["Inline"].Y[i]
		holistic := byLabel["HelperCore(Holistic)"].Y[i]
		staging := byLabel["Staging"].Y[i]
		lb := byLabel["LowerBound"].Y[i]
		if !(topo.Y[i] <= holistic*1.001) {
			t.Errorf("scale %g: topo %g > holistic %g", topo.X[i], topo.Y[i], holistic)
		}
		if !(topo.Y[i] < inline) {
			t.Errorf("scale %g: topo %g !< inline %g", topo.X[i], topo.Y[i], inline)
		}
		if !(topo.Y[i] < staging) {
			t.Errorf("scale %g: topo %g !< staging %g", topo.X[i], topo.Y[i], staging)
		}
		if gap := topo.Y[i]/lb - 1; gap < 0 || gap > 0.13 {
			t.Errorf("scale %g: gap to lower bound %.1f%%", topo.X[i], gap*100)
		}
	}
}

func TestFig7Notes(t *testing.T) {
	fig, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("cases = %d", len(fig.Series))
	}
	// Case1 sim compute must exceed case3 solo (co-location overhead).
	if fig.Series[0].Y[0] <= fig.Series[2].Y[0] {
		t.Fatal("helper-core sim compute must exceed solo")
	}
	// Case2 (inline) interval must be the largest total.
	sum := func(ys []float64) float64 {
		var t float64
		for _, y := range ys {
			t += y
		}
		return t
	}
	// Compare sim-side critical path (compute + I/O + inline analysis).
	case1 := fig.Series[0].Y[0] + fig.Series[0].Y[1]
	case2 := fig.Series[1].Y[0] + fig.Series[1].Y[1] + fig.Series[1].Y[2]
	if case2 <= case1 {
		t.Fatalf("inline critical path %g must exceed helper-core %g", case2, case1)
	}
	_ = sum
}

func TestFig8Calibration(t *testing.T) {
	fig, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	solo := fig.Series[0].Y[0]
	shared := fig.Series[1].Y[0]
	infl := shared/solo - 1
	if infl < 0.40 || infl > 0.55 {
		t.Fatalf("miss inflation %.0f%%, want ~47%%", infl*100)
	}
}

func TestFig9SmokyShapes(t *testing.T) {
	fig, err := Fig9("Smoky")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, s := range fig.Series {
		byLabel[s.Label] = s
	}
	ho := byLabel["Staging(Holistic)"]
	for i := range ho.X {
		inline := byLabel["Inline"].Y[i]
		hybrid := byLabel["Hybrid(DataAware)"].Y[i]
		topo := byLabel["Staging(TopoAware)"].Y[i]
		lb := byLabel["LowerBound"].Y[i]
		if !(ho.Y[i] < inline) {
			t.Errorf("scale %g: staging %g !< inline %g", ho.X[i], ho.Y[i], inline)
		}
		if !(ho.Y[i] <= hybrid*1.001) {
			t.Errorf("scale %g: staging %g > hybrid %g", ho.X[i], ho.Y[i], hybrid)
		}
		if !(topo <= ho.Y[i]*1.001) {
			t.Errorf("scale %g: topo %g > holistic %g", ho.X[i], topo, ho.Y[i])
		}
		if gap := topo/lb - 1; gap < 0 || gap > 0.10 {
			t.Errorf("scale %g: staging gap to LB %.1f%%", ho.X[i], gap*100)
		}
	}
	// Staging advantage over inline grows with scale (file I/O).
	adv := func(i int) float64 { return 1 - ho.Y[i]/byLabel["Inline"].Y[i] }
	if adv(len(ho.X)-1) <= adv(0) {
		t.Errorf("staging advantage should grow with scale: %f vs %f", adv(0), adv(len(ho.X)-1))
	}
}

func TestS3DTuningShape(t *testing.T) {
	fig, err := S3DTuning()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		untuned, tuned := s.Y[0], s.Y[1]
		if tuned >= untuned/10 {
			t.Errorf("%s: tuning must cut visible movement >10x: %.3f -> %.3f", s.Label, untuned, tuned)
		}
		if untuned < 0.5 || untuned > 10 {
			t.Errorf("%s: untuned %.2fs out of plausible band (paper: 1.2-4.0s)", s.Label, untuned)
		}
		if tuned > 0.3 {
			t.Errorf("%s: tuned %.3fs too slow (paper: 0.053-0.077s)", s.Label, tuned)
		}
	}
}

func TestClaimsAllInBand(t *testing.T) {
	fig, err := Claims()
	if err != nil {
		for _, n := range fig.Notes {
			t.Log(n)
		}
		t.Fatal(err)
	}
}

func TestFprintRenders(t *testing.T) {
	fig, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIG4", "Dynamic", "Static", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"claims", "critpath", "fig4", "fig6a", "fig6b", "fig7", "fig8", "fig9a", "fig9b", "fleetobs", "multiproc", "reconfig", "replay", "s3dtune", "tenants", "trace"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	// -list prints one line per id; every driver must carry one.
	for id, d := range Registry {
		if d.Desc == "" {
			t.Errorf("experiment %q has no description", id)
		}
		if d.Run == nil {
			t.Errorf("experiment %q has no driver", id)
		}
	}
}

func TestReconfigBenchRuns(t *testing.T) {
	fig, err := ReconfigBench("") // no artifact in tests
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want drain + wall", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 4 {
			t.Fatalf("%s: %d points, want 4 scenarios", s.Label, len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s scenario %d: %g us, want > 0", s.Label, i, y)
			}
		}
	}
}

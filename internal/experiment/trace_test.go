package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeFile mirrors the trace-event JSON for decoding in tests.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")

	fig, err := TraceRun(tracePath, metricsPath, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The mid-run live check must have actually run and passed.
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "self-check: ok") {
		t.Fatalf("no live /metrics self-check in notes:\n%s", notes)
	}
	if !strings.Contains(notes, "switch at step") {
		t.Fatalf("steered run did not report an observed switch:\n%s", notes)
	}

	// trace.json: valid Chrome trace with one timestep's stages correlated
	// by args.step across writer and reader process lanes.
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeFile
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	pidName := map[int]string{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pidName[ev.Pid] = ev.Args["name"].(string)
		}
	}
	// Stages of probe step 1, by origin lane.
	stages := map[string]map[string]bool{} // point -> set of origins
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if step, ok := ev.Args["step"].(float64); !ok || step != 1 {
			continue
		}
		if stages[ev.Name] == nil {
			stages[ev.Name] = map[string]bool{}
		}
		stages[ev.Name][pidName[ev.Pid]] = true
	}
	for point, origin := range map[string]string{
		"writer.flush":    "writers",
		"writer.pack":     "writers",
		"send.shm":        "writers",
		"reader.assemble": "readers",
		"dc.plugin":       "readers",
		"sim.compute":     "coupled",
	} {
		if !stages[point][origin] {
			t.Errorf("step 1 missing %q in lane %q (have %v)", point, origin, stages[point])
		}
	}

	// metrics.json: machine-readable report with quantiles for the flush
	// timing point.
	blob, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Name    string `json:"name"`
		Timings map[string]struct {
			Count int64   `json:"count"`
			P95   float64 `json:"p95"`
		} `json:"timings"`
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if rep.Name != "flexio" {
		t.Fatalf("merged report name %q", rep.Name)
	}
	fl := rep.Timings["flush"]
	if fl.Count == 0 || fl.P95 <= 0 {
		t.Fatalf("flush timing not exported: %+v", fl)
	}

	// Transport-resource gauges must surface in the merged report: the
	// rdma phase exercises the registration cache and message queues...
	if rep.Gauges["rdma.cache.hits"] <= 0 || rep.Gauges["rdma.cache.misses"] <= 0 {
		t.Errorf("registration-cache gauges missing: hits=%d misses=%d",
			rep.Gauges["rdma.cache.hits"], rep.Gauges["rdma.cache.misses"])
	}
	if hw := rep.Gauges["rdma.msgq.highwater"]; hw <= 0 || hw > rep.Gauges["rdma.msgq.cap"] {
		t.Errorf("msgq highwater %d out of range (cap %d)", hw, rep.Gauges["rdma.msgq.cap"])
	}
	// ...and the shm phase moves array payloads: either through a
	// channel's buffer pool (eager copies) or by reference (handle
	// sends) — with zero-copy on by default the pool stays untouched and
	// the hand-off counter is the payload-traffic signal.
	var shmPayloadTraffic int64
	for name, v := range rep.Gauges {
		if strings.HasPrefix(name, "shm.ch") &&
			(strings.HasSuffix(name, "pool.highwater") || strings.HasSuffix(name, ".handle")) && v > shmPayloadTraffic {
			shmPayloadTraffic = v
		}
	}
	if shmPayloadTraffic <= 0 {
		t.Errorf("no shm channel reported pool use or handle sends; gauges: %v", rep.Gauges)
	}
	// The assembly pool drains to zero once every buffer is released.
	if rep.Gauges["core.asmpool.inuse"] != 0 || rep.Gauges["core.asmpool.highwater"] <= 0 {
		t.Errorf("asm pool inuse=%d highwater=%d, want drained pool with recorded peak",
			rep.Gauges["core.asmpool.inuse"], rep.Gauges["core.asmpool.highwater"])
	}

	// The live self-checks must cover the flight endpoints too.
	if !strings.Contains(notes, "/journal + /critpath self-check: ok") {
		t.Fatalf("no flight-endpoint self-check in notes:\n%s", notes)
	}
}

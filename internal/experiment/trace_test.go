package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeFile mirrors the trace-event JSON for decoding in tests.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceRunArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")

	fig, err := TraceRun(tracePath, metricsPath, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The mid-run live check must have actually run and passed.
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "self-check: ok") {
		t.Fatalf("no live /metrics self-check in notes:\n%s", notes)
	}
	if !strings.Contains(notes, "switch at step") {
		t.Fatalf("steered run did not report an observed switch:\n%s", notes)
	}

	// trace.json: valid Chrome trace with one timestep's stages correlated
	// by args.step across writer and reader process lanes.
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeFile
	if err := json.Unmarshal(blob, &tr); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	pidName := map[int]string{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pidName[ev.Pid] = ev.Args["name"].(string)
		}
	}
	// Stages of probe step 1, by origin lane.
	stages := map[string]map[string]bool{} // point -> set of origins
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if step, ok := ev.Args["step"].(float64); !ok || step != 1 {
			continue
		}
		if stages[ev.Name] == nil {
			stages[ev.Name] = map[string]bool{}
		}
		stages[ev.Name][pidName[ev.Pid]] = true
	}
	for point, origin := range map[string]string{
		"writer.flush":    "writers",
		"writer.pack":     "writers",
		"send.shm":        "writers",
		"reader.assemble": "readers",
		"dc.plugin":       "readers",
		"sim.compute":     "coupled",
	} {
		if !stages[point][origin] {
			t.Errorf("step 1 missing %q in lane %q (have %v)", point, origin, stages[point])
		}
	}

	// metrics.json: machine-readable report with quantiles for the flush
	// timing point.
	blob, err = os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Name    string `json:"name"`
		Timings map[string]struct {
			Count int64   `json:"count"`
			P95   float64 `json:"p95"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if rep.Name != "flexio" {
		t.Fatalf("merged report name %q", rep.Name)
	}
	fl := rep.Timings["flush"]
	if fl.Count == 0 || fl.P95 <= 0 {
		t.Fatalf("flush timing not exported: %+v", fl)
	}
}

package experiment

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/fabric"
	"flexio/internal/flexnode"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/ndarray"
	"flexio/internal/obsplane"
)

// The fleet observability drill: a real directory server, four flexnode
// daemons (two writer-side, two reader-side), two tenants streaming over
// TCP between them, and a fleet collector discovering the daemons
// through their leased obs! registrations and scraping their monitor
// endpoints over real HTTP. The drill asserts the observability plane's
// end-to-end claims exactly:
//
//   - every step each tenant wrote appears exactly once in the stitched
//     fleet view, and the count matches the writer-side flight journals
//     (no span double-counted or lost across sweeps — cursor-windowed);
//   - the stitched critical path of a step crosses the process boundary
//     through a send.tcp edge (writer daemon -> reader daemon, joined
//     only by the wire-stable channel string);
//   - the deliberately slow tenant burns through its latency SLO, the
//     breach latch fires exactly one episode, and that fleet-level
//     evidence drives a fabric resize + live reader reconfiguration;
//   - the healthy tenant's SLO never fires.
const (
	fleetobsSteps  = 12
	fleetobsPhaseA = 8
)

// fleetTenant is the per-tenant state of the drill.
type fleetTenant struct {
	id    string
	idx   int
	wd    *flexnode.Daemon // hosts the writer group
	rd    *flexnode.Daemon // hosts the reader group
	grant *fabric.Grant
	wg    *core.WriterGroup
	rg    *core.ReaderGroup
	shape []int64
}

// Fleetobs runs the fleet observability drill.
func Fleetobs() (*Figure, error) {
	// Discovery runs over the real wire protocol: daemons lease their
	// scrape endpoints against a TCP directory server, and the collector
	// lists them with the LST verb — the same path a deployed fleet uses.
	mem := directory.NewMem()
	defer mem.Close() //nolint:errcheck
	dsrv, err := directory.Serve("127.0.0.1:0", mem)
	if err != nil {
		return nil, err
	}
	defer dsrv.Close() //nolint:errcheck
	dirc := &directory.Client{Addr: dsrv.Addr()}

	pool := machine.Titan(4)
	fab := fabric.New(pool)
	defer fab.Close()

	daemon := func(name string) (*flexnode.Daemon, error) {
		return flexnode.Start(flexnode.Config{
			Name: name, Dir: dirc,
			LeaseTTL:    2 * time.Second,
			MetricsAddr: "127.0.0.1:0",
		})
	}
	names := []string{"wd0", "wd1", "rd0", "rd1"}
	ds := make(map[string]*flexnode.Daemon, len(names))
	for _, n := range names {
		d, err := daemon(n)
		if err != nil {
			return nil, fmt.Errorf("fleetobs: daemon %s: %w", n, err)
		}
		ds[n] = d
		defer d.Close() //nolint:errcheck
	}

	tcp := func(w, r int) (evpath.TransportKind, int, int) {
		return evpath.TCPTransport, 0, 0
	}
	tenants := []*fleetTenant{
		{id: "acme", idx: 0, wd: ds["wd0"], rd: ds["rd0"], shape: []int64{32, 32}},
		{id: "lag", idx: 1, wd: ds["wd1"], rd: ds["rd1"], shape: []int64{32, 32}},
	}
	for _, t := range tenants {
		t.grant, err = fab.Admit(fabric.Request{Tenant: t.id, NSim: 1, NAna: 1, SimThreads: 1, Block: true})
		if err != nil {
			return nil, fmt.Errorf("fleetobs: admit %s: %w", t.id, err)
		}
		t.wg, err = core.NewWriterGroup(t.wd.Net, dirc, "gts", 1,
			core.Options{Tenant: t.id, Transport: tcp}, t.wd.Mon)
		if err != nil {
			return nil, fmt.Errorf("fleetobs: writer group %s: %w", t.id, err)
		}
		t.wg.SetJournal(t.wd.Jrn)
		t.rg, err = core.NewReaderGroupOpts(t.rd.Net, dirc, "gts", 1,
			core.ReaderOptions{Tenant: t.id}, t.rd.Mon)
		if err != nil {
			return nil, fmt.Errorf("fleetobs: reader group %s: %w", t.id, err)
		}
		t.rg.SetJournal(t.rd.Jrn)
	}

	// The collector: jittered background sweeps against the live fleet,
	// with a tight latency objective on the slow tenant and a lenient one
	// on the healthy tenant (which must never fire).
	const lagTarget = 5 * time.Millisecond
	breachCh := make(chan obsplane.SLOStatus, 8)
	col := obsplane.New(dirc, obsplane.Options{
		Interval: 25 * time.Millisecond,
		SLOs: []obsplane.SLO{
			{Tenant: "lag", Target: lagTarget, Budget: 0.2, Window: 8},
			{Tenant: "acme", Target: time.Second},
		},
		OnBreach: func(s obsplane.SLOStatus) {
			select {
			case breachCh <- s:
			default:
			}
		},
	})
	col.Start()
	defer col.Close() //nolint:errcheck
	fleetAddr, err := col.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	var all, phaseALag sync.WaitGroup
	errCh := make(chan error, 16)

	// Writers: acme streams all 12 steps; lag writes phase A, then holds
	// its step boundary until the SLO-driven Reconfigure is parked (the
	// phase-B writes drive the drain/ack handshake).
	for _, t := range tenants {
		t := t
		all.Add(1)
		go func() {
			defer all.Done()
			wr := t.wg.Writer(0)
			payload := make([]byte, t.shape[0]*t.shape[1]*8)
			write := func(s int) error {
				fillTenantPayload(payload, t.idx, s)
				if err := wr.BeginStep(int64(s)); err != nil {
					return err
				}
				if err := wr.Write(core.VarMeta{Name: "field", Kind: core.GlobalArrayVar,
					ElemSize: 8, GlobalShape: t.shape,
					Box: ndarray.NewBox([]int64{0, 0}, t.shape)}, payload); err != nil {
					return err
				}
				return wr.EndStep()
			}
			for s := 0; s < fleetobsPhaseA; s++ {
				if err := write(s); err != nil {
					errCh <- fmt.Errorf("tenant %s writer: %w", t.id, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
			if t.id == "lag" {
				for t.wg.SessionState() != core.StateReconfiguring {
					time.Sleep(100 * time.Microsecond)
				}
			}
			for s := fleetobsPhaseA; s < fleetobsSteps; s++ {
				if err := write(s); err != nil {
					errCh <- fmt.Errorf("tenant %s writer: %w", t.id, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Readers: acme consumes everything on its single rank; lag's
	// pre-resize rank drains phase A slowly — 25ms of analysis per step
	// against a 5ms objective is what burns the SLO.
	for _, t := range tenants {
		t := t
		to, slack := fleetobsSteps, time.Duration(0)
		if t.id == "lag" {
			to, slack = fleetobsPhaseA, 25*time.Millisecond
			phaseALag.Add(1)
		}
		all.Add(1)
		go func() {
			defer all.Done()
			if t.id == "lag" {
				defer phaseALag.Done()
			}
			rd := t.rg.Reader(0)
			if err := rd.SelectArray("field", ndarray.NewBox([]int64{0, 0}, t.shape)); err != nil {
				errCh <- fmt.Errorf("tenant %s reader: %w", t.id, err)
				return
			}
			if err := tenantConsume(rd, t.idx, 0, to, slack); err != nil {
				errCh <- err
			}
		}()
	}

	// Steering: wait for the fleet-level breach evidence (background
	// sweeps normally deliver it mid-phase-A; the fallback sweeps only
	// guard against scheduler starvation), then let the slow tenant's
	// phase-A drain finish and apply the SLO-driven resize.
	var breach obsplane.SLOStatus
	deadline := time.After(30 * time.Second)
waitBreach:
	for {
		select {
		case breach = <-breachCh:
			break waitBreach
		case <-deadline:
			return nil, fmt.Errorf("fleetobs: SLO breach never fired for tenant lag")
		case <-time.After(25 * time.Millisecond):
			if err := col.Sweep(); err != nil {
				return nil, err
			}
		}
	}
	if breach.Tenant != "lag" {
		return nil, fmt.Errorf("fleetobs: breach fired for %q, want lag", breach.Tenant)
	}
	phaseALag.Wait()

	lag := tenants[1]
	delta, err := fab.Resize(lag.grant, 2)
	if err != nil {
		return nil, fmt.Errorf("fleetobs: fabric resize on breach: %w", err)
	}
	dec, err := ndarray.BlockDecompose(lag.shape, ndarray.FactorGrid(2, 2))
	if err != nil {
		return nil, err
	}
	if err := lag.rg.Reconfigure(core.ReconfigSpec{
		NReaders: 2,
		Arrays:   map[string][]ndarray.Box{"field": dec.Boxes},
		Nodes:    delta.AnaNodes,
	}); err != nil {
		return nil, fmt.Errorf("fleetobs: reconfigure after breach: %w", err)
	}
	// Post-resize ranks drain phase B at full speed.
	for r := 0; r < 2; r++ {
		r := r
		all.Add(1)
		go func() {
			defer all.Done()
			if err := tenantConsume(lag.rg.Reader(r), lag.idx, fleetobsPhaseA, fleetobsSteps, 0); err != nil {
				errCh <- err
			}
		}()
	}

	all.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	// One final synchronous sweep so the snapshot covers the last spans,
	// then the assertions — all against live scrapes of the still-running
	// daemons.
	if err := col.Sweep(); err != nil {
		return nil, err
	}
	snap := col.Snapshot()

	fig := &Figure{
		ID:     "FLEETOBS",
		Title:  "Fleet observability: cross-process stitching, SLO burn, fleet-evidence resize",
		XLabel: "step",
		YLabel: "stitched end-to-end latency (ms)",
	}

	// (1) Exact stitched step accounting vs the writer-side journals.
	for _, t := range tenants {
		scope := directory.Qualify(t.id, "gts")
		flushes := map[int64]int{}
		for _, ev := range t.wd.Jrn.Snapshot() {
			if ev.Point == "writer.flush" && ev.Scope == scope {
				flushes[ev.Step]++
			}
		}
		for s := int64(0); s < fleetobsSteps; s++ {
			if flushes[s] != 1 {
				return nil, fmt.Errorf("tenant %s: journal shows step %d flushed %d times, want 1", t.id, s, flushes[s])
			}
		}
		series := Series{Label: t.id + " stitched latency"}
		stitched := 0
		for _, st := range snap.Steps {
			if st.Scope != scope {
				continue
			}
			stitched++
			series.X = append(series.X, float64(st.Step))
			series.Y = append(series.Y, st.Latency*1e3)
			if !st.CrossProcess {
				return nil, fmt.Errorf("tenant %s step %d stitched from one process only (%v)", t.id, st.Step, st.Daemons)
			}
		}
		if stitched != len(flushes) || stitched != fleetobsSteps {
			return nil, fmt.Errorf("tenant %s: %d stitched steps vs %d journal-verified, want %d",
				t.id, stitched, len(flushes), fleetobsSteps)
		}
		fig.Series = append(fig.Series, series)
	}

	// (2) No span gaps or collector-side drops on any daemon.
	if len(snap.Daemons) != len(names) {
		return nil, fmt.Errorf("collector sees %d daemons, want %d: %+v", len(snap.Daemons), len(names), snap.Daemons)
	}
	for _, d := range snap.Daemons {
		if !d.Alive || d.Gap != 0 || d.Dropped != 0 {
			return nil, fmt.Errorf("daemon %s: alive=%v gap=%d dropped=%d, want live and gapless", d.Key, d.Alive, d.Gap, d.Dropped)
		}
	}

	// (3) The stitched critical path crosses the process boundary over a
	// tcp edge for every tenant.
	paths := col.CritPaths()
	for _, t := range tenants {
		scope := directory.Qualify(t.id, "gts")
		an, ok := paths[scope]
		if !ok || len(an.Steps) == 0 {
			return nil, fmt.Errorf("tenant %s: no stitched critical path", t.id)
		}
		crossed := 0
		for i := range an.Steps {
			sp := &an.Steps[i]
			if !flight.CrossesProcess(sp) {
				continue
			}
			for _, e := range sp.Edges {
				if e.Point == "send.tcp" {
					crossed++
					break
				}
			}
		}
		if crossed == 0 {
			return nil, fmt.Errorf("tenant %s: no step's critical path crosses a process via send.tcp", t.id)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("tenant %s: %d/%d stitched critical paths cross wd->rd over send.tcp",
			t.id, crossed, len(an.Steps)))
	}

	// (4) SLO outcomes: lag breached exactly one episode, acme never.
	for _, s := range col.SLOStatuses() {
		switch s.Tenant {
		case "lag":
			if s.Episodes != 1 {
				return nil, fmt.Errorf("lag SLO episodes = %d, want exactly 1 (latched)", s.Episodes)
			}
		case "acme":
			if s.Episodes != 0 || s.Breached {
				return nil, fmt.Errorf("acme SLO fired: %+v", s)
			}
		}
	}
	if n := lag.rg.NReaders; n != 2 {
		return nil, fmt.Errorf("lag readers = %d after SLO-driven resize, want 2", n)
	}
	if c := lag.rd.Mon.Snapshot().Counts["reconfig.count"]; c != 1 {
		return nil, fmt.Errorf("lag reconfig.count = %d, want 1", c)
	}

	// (5) The fleet HTTP surface serves the same SLO verdicts.
	resp, err := http.Get("http://" + fleetAddr + "/fleet/slo") //nolint:noctx // drill-local server
	if err != nil {
		return nil, err
	}
	var served []obsplane.SLOStatus
	err = json.NewDecoder(resp.Body).Decode(&served)
	resp.Body.Close() //nolint:errcheck
	if err != nil || len(served) != 2 {
		return nil, fmt.Errorf("/fleet/slo served %d objectives (err %v), want 2", len(served), err)
	}

	for _, t := range tenants {
		if err := t.wg.Close(); err != nil {
			return nil, fmt.Errorf("close writer %s: %w", t.id, err)
		}
		t.rg.Close() //nolint:errcheck
		fab.Release(t.grant)
	}

	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d daemons discovered via leased obs! directory entries over the wire protocol", len(names)),
		fmt.Sprintf("lag tenant burned %.1fx its %v step objective (%d/%d violations) -> breach -> fabric resize 1->2 readers",
			breach.BurnRate, lagTarget, breach.Violations, breach.Steps),
		fmt.Sprintf("%d span gaps across %d daemons over %d sweeps (cursor-windowed scrapes)", 0, len(names), snap.Sweeps),
	)
	return fig, nil
}

package experiment

import (
	"os"
	"strings"
	"testing"
)

// TestMain lets the multiproc experiment re-exec this test binary as its
// child processes: when FLEXIO_MP_ROLE is set, the process becomes a
// dirserver or flexnode daemon instead of running the test suite.
func TestMain(m *testing.M) {
	MaybeChildMain()
	os.Exit(m.Run())
}

// TestMultiproc runs the full deployment drill: 1 dirserver + 4 flexnode
// daemons as real OS processes coupled over TCP/TLS, with an injected
// disconnect and a mid-run reconfigure, verified byte-identical against
// the in-process shared-memory reference.
func TestMultiproc(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; skipped in -short")
	}
	fig, err := Multiproc()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(fig.Notes, "\n")
	for _, want := range []string{
		"byte-identical",
		"drops=1",
		"final epoch 2",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

// Package experiment contains one driver per table/figure of the FlexIO
// paper's evaluation (Section IV plus Figure 4 from Section II). Each
// driver assembles the machines, application models, placements and
// runtime options, runs the coupled-execution simulator or the transport
// microbenchmarks, and returns the same rows/series the paper reports.
// The cmd/flexbench binary and the repo-root benchmarks are thin wrappers
// over these functions.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the regenerated artifact: series plus free-form notes (used
// for the headline-claims checks).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Fprint renders the figure as aligned text tables.
func (f *Figure) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		// Collect the union of X values (columns).
		xsSet := map[float64]bool{}
		for _, s := range f.Series {
			for _, x := range s.X {
				xsSet[x] = true
			}
		}
		xs := make([]float64, 0, len(xsSet))
		for x := range xsSet {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		fmt.Fprintf(w, "%-36s", f.XLabel+" \\ "+f.YLabel)
		for _, x := range xs {
			fmt.Fprintf(w, "%12.6g", x)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, strings.Repeat("-", 36+12*len(xs)))
		for _, s := range f.Series {
			fmt.Fprintf(w, "%-36s", s.Label)
			byX := map[float64]float64{}
			for i := range s.X {
				byX[s.X[i]] = s.Y[i]
			}
			for _, x := range xs {
				if y, ok := byX[x]; ok {
					fmt.Fprintf(w, "%12.5g", y)
				} else {
					fmt.Fprintf(w, "%12s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// Driver is one registered experiment: a one-line description for
// `flexbench -list` plus the function that regenerates its figure.
type Driver struct {
	Desc string
	Run  func() (*Figure, error)
}

// Registry maps experiment ids to drivers.
var Registry = map[string]Driver{
	"fig4":      {"RDMA vs TCP transport microbenchmark (paper Fig. 4)", func() (*Figure, error) { return Fig4() }},
	"fig6a":     {"GTS coupled-run slowdown on Smoky (paper Fig. 6a)", func() (*Figure, error) { return Fig6("Smoky") }},
	"fig6b":     {"GTS coupled-run slowdown on Titan (paper Fig. 6b)", func() (*Figure, error) { return Fig6("Titan") }},
	"fig7":      {"GTS analytics placement sweep (paper Fig. 7)", Fig7},
	"fig8":      {"S3D coupled-run slowdown (paper Fig. 8)", Fig8},
	"fig9a":     {"S3D analytics placement sweep on Smoky (paper Fig. 9a)", func() (*Figure, error) { return Fig9("Smoky") }},
	"fig9b":     {"S3D analytics placement sweep on Titan (paper Fig. 9b)", func() (*Figure, error) { return Fig9("Titan") }},
	"s3dtune":   {"S3D helper-core thread tuning table", S3DTuning},
	"claims":    {"headline paper claims checked against the model", Claims},
	"reconfig":  {"mid-run reader regrouping drill with drain-time budgets", func() (*Figure, error) { return ReconfigBench("BENCH_reconfig.json") }},
	"trace":     {"end-to-end traced run emitting trace/metrics JSON", func() (*Figure, error) { return TraceRun("trace.json", "metrics.json", metricsAddr) }},
	"critpath":  {"flight-recorder critical-path analysis over a journaled run", func() (*Figure, error) { return CritpathRun("journal.json", "critpath.json", "BENCH_flight.json") }},
	"replay":    {"deterministic replay divergence check", func() (*Figure, error) { return ReplayRun(replayPerturb) }},
	"multiproc": {"multi-process deployment drill over TCP (directory server + flexnode daemons)", Multiproc},
	"tenants":   {"multi-tenant soak: shared pool, per-tenant quotas/backpressure, mid-run grow+shrink", Tenants},
	"fleetobs":  {"fleet observability drill: collector scrapes 4 daemons, stitches cross-process traces, SLO breach drives a resize", Fleetobs},
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment and prints each figure.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		fig, err := Registry[id].Run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := fig.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

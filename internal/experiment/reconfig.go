package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

// ReconfigRow is one measured mid-run reconfiguration, archived in
// BENCH_reconfig.json.
type ReconfigRow struct {
	Scenario string `json:"scenario"`
	OldN     int    `json:"old_n"`
	NewN     int    `json:"new_n"`
	// DrainNs is the writer-observed quiesce time: request arrival to
	// application at the next step boundary (the session's
	// reconfig.drain_ns counter).
	DrainNs int64 `json:"drain_ns"`
	// ReconfigWallNs is the reader-observed wall time of the whole switch:
	// request, ack, replay capture, re-listen, plug-in re-ship.
	ReconfigWallNs int64 `json:"reconfig_wall_ns"`
	// Epoch is the session epoch after the switch (always 2 here:
	// exactly one reconfiguration per scenario).
	Epoch uint64 `json:"epoch"`
}

// reconfigScenario runs a real 2-writer core stream end to end: three
// steps to oldN readers, a Reconfigure to newN ranks (new decomposition,
// new node placement), three more steps, then EOS. It returns the
// measured drain and wall costs.
func reconfigScenario(name string, oldN, newN int, nodes []int) (ReconfigRow, error) {
	row := ReconfigRow{Scenario: name, OldN: oldN, NewN: newN}
	const nw, pre, post = 2, 3, 3
	net := evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net))
	dir := directory.NewMem()
	wm := monitor.New("writers")

	shape := []int64{64, 64}
	wdec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(nw, 2))
	if err != nil {
		return row, err
	}
	oldDec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(oldN, 2))
	if err != nil {
		return row, err
	}
	newDec, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(newN, 2))
	if err != nil {
		return row, err
	}

	opts := core.Options{
		// Initial placement: everything on node 0 over shm; the
		// reconfiguration ships `nodes` and moves ranks across nodes.
		Transport: func(w, r int) (evpath.TransportKind, int, int) {
			return evpath.ShmTransport, 0, 0
		},
		WriterNode: func(w int) int { return 0 },
	}
	stream := "bench-reconfig-" + name
	wg, err := core.NewWriterGroup(net, dir, stream, nw, opts, wm)
	if err != nil {
		return row, err
	}
	rg, err := core.NewReaderGroup(net, dir, stream, oldN, nil)
	if err != nil {
		return row, err
	}

	errCh := make(chan error, nw+oldN+newN)
	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr := wg.Writer(w)
			payload := make([]byte, wdec.Boxes[w].NumElements()*8)
			write := func(s int) error {
				if err := wr.BeginStep(int64(s)); err != nil {
					return err
				}
				if err := wr.Write(core.VarMeta{Name: "field", Kind: core.GlobalArrayVar,
					ElemSize: 8, GlobalShape: shape, Box: wdec.Boxes[w]}, payload); err != nil {
					return err
				}
				return wr.EndStep()
			}
			for s := 0; s < pre; s++ {
				if err := write(s); err != nil {
					errCh <- err
					return
				}
			}
			// Hold the boundary until the reconfig request is parked so the
			// drain window is what gets measured, not writer think-time.
			for wg.SessionState() != core.StateReconfiguring {
				time.Sleep(100 * time.Microsecond)
			}
			for s := pre; s < pre+post; s++ {
				if err := write(s); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	consume := func(rd *core.Reader, from, to int) error {
		for s := from; s < to; s++ {
			step, ok := rd.BeginStep()
			if !ok || step != int64(s) {
				return fmt.Errorf("reader %d: step %d ok=%v want %d", rd.Rank, step, ok, s)
			}
			buf, _, err := rd.ReadArray("field")
			if err != nil {
				return err
			}
			rd.ReleaseArray(buf)
			if err := rd.EndStep(); err != nil {
				return err
			}
		}
		return nil
	}

	var olds sync.WaitGroup
	for r := 0; r < oldN; r++ {
		r := r
		olds.Add(1)
		go func() {
			defer olds.Done()
			rd := rg.Reader(r)
			if err := rd.SelectArray("field", oldDec.Boxes[r]); err != nil {
				errCh <- err
				return
			}
			if err := consume(rd, 0, pre); err != nil {
				errCh <- err
			}
		}()
	}
	olds.Wait()

	start := time.Now()
	err = rg.Reconfigure(core.ReconfigSpec{
		NReaders: newN,
		Arrays:   map[string][]ndarray.Box{"field": newDec.Boxes},
		Nodes:    nodes,
	})
	row.ReconfigWallNs = time.Since(start).Nanoseconds()
	if err != nil {
		return row, err
	}

	var news sync.WaitGroup
	for r := 0; r < newN; r++ {
		r := r
		news.Add(1)
		go func() {
			defer news.Done()
			if err := consume(rg.Reader(r), pre, pre+post); err != nil {
				errCh <- err
			}
		}()
	}
	writers.Wait()
	if err := wg.Close(); err != nil {
		return row, err
	}
	news.Wait()
	rg.Close()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return row, err
		}
	}

	rep := wm.Snapshot()
	row.DrainNs = rep.Counts["reconfig.drain_ns"]
	row.Epoch = uint64(rep.Gauges["session.epoch"])
	if rep.Counts["reconfig.count"] != 1 {
		return row, fmt.Errorf("scenario %s: reconfig.count = %d, want 1", name, rep.Counts["reconfig.count"])
	}
	return row, nil
}

// ReconfigBench measures mid-run reconfiguration cost on real core
// streams across N -> N' deltas (selection change only, grow, shrink,
// placement move). When path is non-empty the rows are archived there as
// JSON (the BENCH_reconfig.json artifact).
func ReconfigBench(path string) (*Figure, error) {
	scenarios := []struct {
		name       string
		oldN, newN int
		nodes      []int
	}{
		{"resel-2to2", 2, 2, nil},           // decomposition change only
		{"grow-2to3", 2, 3, []int{0, 1, 1}}, // add a rank, move two off-node
		{"grow-2to4", 2, 4, []int{0, 0, 1, 1}},
		{"shrink-4to2", 4, 2, []int{1, 1}}, // shrink onto a staging node
	}
	fig := &Figure{
		ID:     "RECONFIG",
		Title:  "Mid-run reconfiguration cost vs. N -> N' delta (2 writers, real streams)",
		XLabel: "scenario",
		YLabel: "microseconds",
	}
	drain := Series{Label: "writer drain (request -> boundary)"}
	wall := Series{Label: "reader wall (request -> streaming)"}
	rows := make([]ReconfigRow, 0, len(scenarios))
	for i, sc := range scenarios {
		row, err := reconfigScenario(sc.name, sc.oldN, sc.newN, sc.nodes)
		if err != nil {
			return nil, fmt.Errorf("reconfig %s: %w", sc.name, err)
		}
		rows = append(rows, row)
		x := float64(i)
		drain.X = append(drain.X, x)
		drain.Y = append(drain.Y, float64(row.DrainNs)/1e3)
		wall.X = append(wall.X, x)
		wall.Y = append(wall.Y, float64(row.ReconfigWallNs)/1e3)
		fig.Notes = append(fig.Notes, fmt.Sprintf("x=%d: %s (N %d -> %d), epoch %d",
			i, sc.name, sc.oldN, sc.newN, row.Epoch))
	}
	fig.Series = append(fig.Series, drain, wall)

	if path != "" {
		blob, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes, "rows archived in "+path)
	}
	return fig, nil
}

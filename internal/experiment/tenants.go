package experiment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/fabric"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

// The tenants soak: nTenants coupled streams share one staging pool, one
// transport fabric and one sharded directory. Every tenant writes the
// same stream name ("gts") — isolation comes entirely from the tenant
// namespace. Two designated tenants are elastic (resized mid-run from
// observed phase-A latency), one is a hot async blaster throttled by its
// own credit window, and the rest are steady background load used to
// measure cross-tenant latency isolation.
const (
	tenantsN      = 32
	tenantsSteps  = 16 // two phases of 8 I/O epochs each
	tenantsPhaseA = 8
	idxElasticA   = 0
	idxElasticB   = 1
	idxHot        = 2
)

// tenantWord is the deterministic 8-byte payload word every element of
// tenant t's array carries at step s; readers verify every word, so a
// cross-tenant or cross-step delivery is caught immediately.
func tenantWord(tenant, step int) uint64 {
	return 0x9E3779B97F4A7C15 * uint64(tenant*1000003+step+1)
}

func fillTenantPayload(buf []byte, tenant, step int) {
	w := tenantWord(tenant, step)
	for i := 0; i+8 <= len(buf); i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], w)
	}
}

func checkTenantPayload(buf []byte, tenant, step int) error {
	w := tenantWord(tenant, step)
	for i := 0; i+8 <= len(buf); i += 8 {
		if got := binary.LittleEndian.Uint64(buf[i:]); got != w {
			return fmt.Errorf("tenant %d step %d: word %d = %#x, want %#x",
				tenant, step, i/8, got, w)
		}
	}
	return nil
}

// tenantRun is the per-tenant state the soak driver tracks.
type tenantRun struct {
	id    string
	idx   int
	grant *fabric.Grant
	mon   *monitor.Monitor
	jrn   *flight.Journal
	wg    *core.WriterGroup
	rg    *core.ReaderGroup
	shape []int64

	mu       sync.Mutex
	phaseALt []time.Duration // per-step writer latency, steps 0..phaseA-1
	phaseBLt []time.Duration // per-step writer latency, steps phaseA..
}

func (t *tenantRun) record(step int, d time.Duration) {
	t.mu.Lock()
	if step < tenantsPhaseA {
		t.phaseALt = append(t.phaseALt, d)
	} else {
		t.phaseBLt = append(t.phaseBLt, d)
	}
	t.mu.Unlock()
}

func durP99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

func durMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// tenantConsume reads and verifies steps [from, to) on one reader rank.
// slack > 0 simulates a slow analysis kernel (the hot tenant's reader).
func tenantConsume(rd *core.Reader, tenant, from, to int, slack time.Duration) error {
	for s := from; s < to; s++ {
		step, ok := rd.BeginStep()
		if !ok || step != int64(s) {
			return fmt.Errorf("tenant %d reader %d: step %d ok=%v want %d",
				tenant, rd.Rank, step, ok, s)
		}
		buf, _, err := rd.ReadArray("field")
		if err != nil {
			return err
		}
		err = checkTenantPayload(buf, tenant, s)
		rd.ReleaseArray(buf)
		if err != nil {
			return err
		}
		if err := rd.EndStep(); err != nil {
			return err
		}
		if slack > 0 {
			time.Sleep(slack)
		}
	}
	return nil
}

// verifyTenantJournal asserts the per-tenant flight journal shows exactly
// one writer.flush per step — no step lost, none flushed twice.
func verifyTenantJournal(t *tenantRun) error {
	flushes := map[int64]int{}
	for _, ev := range t.jrn.Snapshot() {
		if ev.Point == "writer.flush" {
			flushes[ev.Step]++
		}
	}
	for s := int64(0); s < tenantsSteps; s++ {
		if n := flushes[s]; n != 1 {
			return fmt.Errorf("tenant %s: step %d flushed %d times, want 1", t.id, s, n)
		}
	}
	if len(flushes) != tenantsSteps {
		return fmt.Errorf("tenant %s: %d distinct flushed steps, want %d",
			t.id, len(flushes), tenantsSteps)
	}
	return nil
}

// Tenants runs the multi-tenant shared-fabric soak and reports per-phase
// P99 writer step latency for every steady tenant, plus the elasticity
// and quota events as notes.
func Tenants() (*Figure, error) {
	pool := machine.Titan(16) // 256 shared cores
	fab := fabric.New(pool)
	defer fab.Close()
	net := evpath.NewNet(rdma.NewFabric(pool.Net))
	dir := directory.NewMem()
	defer dir.Close()

	fig := &Figure{
		ID:     "TENANTS",
		Title:  fmt.Sprintf("Multi-tenant soak: %d tenants x %d epochs on one staging pool", tenantsN, tenantsSteps),
		XLabel: "tenant index",
		YLabel: "writer step P99 (microseconds)",
	}

	// A tenant whose policy quota cannot fit its request is rejected at
	// admission — a policy error, never queued.
	fab.SetQuota("reject-me", fabric.Quota{MaxCores: 1})
	if _, err := fab.Admit(fabric.Request{Tenant: "reject-me", NSim: 1, NAna: 1}); !errors.Is(err, fabric.ErrOverQuota) {
		return nil, fmt.Errorf("over-quota admission returned %v, want ErrOverQuota", err)
	}
	fig.Notes = append(fig.Notes, "over-quota admission rejected at the fabric (ErrOverQuota, not queued)")

	tenants := make([]*tenantRun, tenantsN)
	errCh := make(chan error, tenantsN*8)
	for i := 0; i < tenantsN; i++ {
		t := &tenantRun{id: fmt.Sprintf("t%02d", i), idx: i}
		t.mon = monitor.New("tenant-" + t.id)
		t.jrn = flight.NewJournal(4096)
		t.shape = []int64{32, 32}
		nAna := 1
		opts := core.Options{
			Tenant: t.id,
			Transport: func(w, r int) (evpath.TransportKind, int, int) {
				return evpath.ShmTransport, 0, 0
			},
			WriterNode: func(w int) int { return 0 },
		}
		ropts := core.ReaderOptions{Tenant: t.id}
		switch i {
		case idxElasticA, idxElasticB:
			nAna = 2
			ropts.Quota = core.TenantQuota{MaxRanks: 4}
		case idxHot:
			// Async blaster with a tight credit window: ~1.3 steps of
			// staged bytes, so the second queued step backpressures the
			// hot writer against its own budget, not the shared pool.
			t.shape = []int64{64, 64}
			opts.Async = true
			opts.AsyncQueueDepth = 4
			opts.Quota = core.TenantQuota{
				MaxStagedBytes:   int64(t.shape[0]*t.shape[1]*8) * 4 / 3,
				MaxInflightSteps: 2,
			}
		}

		grant, err := fab.Admit(fabric.Request{
			Tenant: t.id, NSim: 1, NAna: nAna, SimThreads: 1, Block: true,
		})
		if err != nil {
			return nil, fmt.Errorf("admit %s: %w", t.id, err)
		}
		t.grant = grant

		t.wg, err = core.NewWriterGroup(net, dir, "gts", 1, opts, t.mon)
		if err != nil {
			return nil, fmt.Errorf("writer group %s: %w", t.id, err)
		}
		t.wg.SetJournal(t.jrn)
		t.rg, err = core.NewReaderGroupOpts(net, dir, "gts", nAna, ropts, nil)
		if err != nil {
			return nil, fmt.Errorf("reader group %s: %w", t.id, err)
		}
		tenants[i] = t
	}

	var phaseAWriters, phaseAReaders, all sync.WaitGroup
	phaseBGo := make(chan struct{})

	// Writers: every tenant runs one writer rank over the whole array.
	for _, t := range tenants {
		t := t
		all.Add(1)
		phaseAWriters.Add(1)
		go func() {
			defer all.Done()
			wr := t.wg.Writer(0)
			payload := make([]byte, t.shape[0]*t.shape[1]*8)
			write := func(s int) error {
				fillTenantPayload(payload, t.idx, s)
				start := time.Now()
				if err := wr.BeginStep(int64(s)); err != nil {
					return err
				}
				if err := wr.Write(core.VarMeta{Name: "field", Kind: core.GlobalArrayVar,
					ElemSize: 8, GlobalShape: t.shape,
					Box: ndarray.NewBox([]int64{0, 0}, t.shape)}, payload); err != nil {
					return err
				}
				if err := wr.EndStep(); err != nil {
					return err
				}
				t.record(s, time.Since(start))
				return nil
			}
			for s := 0; s < tenantsPhaseA; s++ {
				if err := write(s); err != nil {
					errCh <- fmt.Errorf("tenant %s writer: %w", t.id, err)
					phaseAWriters.Done()
					return
				}
				time.Sleep(200 * time.Microsecond) // steady pacing
			}
			phaseAWriters.Done()
			switch t.idx {
			case idxElasticA, idxElasticB:
				// Hold the step boundary until the driver's Reconfigure
				// request is parked, then stream on (the writes drive the
				// drain/ack handshake).
				for t.wg.SessionState() != core.StateReconfiguring {
					time.Sleep(100 * time.Microsecond)
				}
			default:
				<-phaseBGo
			}
			for s := tenantsPhaseA; s < tenantsSteps; s++ {
				if err := write(s); err != nil {
					errCh <- fmt.Errorf("tenant %s writer: %w", t.id, err)
					return
				}
				if t.idx != idxHot {
					time.Sleep(200 * time.Microsecond)
				}
				// The hot tenant blasts phase B unpaced: its credit
				// window, not the shared fabric, absorbs the burst.
			}
		}()
	}

	// Readers. Steady and hot tenants consume all steps on their initial
	// ranks; elastic tenants consume phase A, pause for the resize, and
	// the post-resize ranks are started after Reconfigure below.
	for _, t := range tenants {
		t := t
		slack := time.Duration(0)
		if t.idx == idxHot {
			slack = 500 * time.Microsecond // slow kernel: forces staging buildup
		}
		to := tenantsSteps
		if t.idx == idxElasticA || t.idx == idxElasticB {
			to = tenantsPhaseA
		}
		for r := 0; r < t.rg.NReaders; r++ {
			r := r
			all.Add(1)
			if to == tenantsPhaseA {
				phaseAReaders.Add(1)
			}
			go func() {
				defer all.Done()
				if to == tenantsPhaseA {
					defer phaseAReaders.Done()
				}
				rd := t.rg.Reader(r)
				dec, err := ndarray.BlockDecompose(t.shape, ndarray.FactorGrid(t.rg.NReaders, 2))
				if err != nil {
					errCh <- err
					return
				}
				if err := rd.SelectArray("field", dec.Boxes[r]); err != nil {
					errCh <- fmt.Errorf("tenant %s reader %d: %w", t.id, r, err)
					return
				}
				if err := tenantConsume(rd, t.idx, 0, to, slack); err != nil {
					errCh <- err
				}
			}()
		}
	}

	phaseAWriters.Wait()
	phaseAReaders.Wait()

	// Elasticity decision from observed signals: of the two elastic
	// tenants, the one with the higher phase-A mean step latency earns a
	// third analytics rank; the colder one gives one back. The fabric
	// resize computes the placement delta; Reconfigure applies it.
	ea, eb := tenants[idxElasticA], tenants[idxElasticB]
	grow, shrink := ea, eb
	if durMean(eb.phaseALt) > durMean(ea.phaseALt) {
		grow, shrink = eb, ea
	}
	resize := func(t *tenantRun, newN int) error {
		delta, err := fab.Resize(t.grant, newN)
		if err != nil {
			return fmt.Errorf("fabric resize %s -> %d: %w", t.id, newN, err)
		}
		dec, err := ndarray.BlockDecompose(t.shape, ndarray.FactorGrid(newN, 2))
		if err != nil {
			return err
		}
		return t.rg.Reconfigure(core.ReconfigSpec{
			NReaders: newN,
			Arrays:   map[string][]ndarray.Box{"field": dec.Boxes},
			Nodes:    delta.AnaNodes,
		})
	}
	if err := resize(grow, 3); err != nil {
		return nil, err
	}
	if err := resize(shrink, 1); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("grew %s 2->3 ranks (phase-A mean %v), shrank %s 2->1 (phase-A mean %v)",
			grow.id, durMean(grow.phaseALt).Round(time.Microsecond),
			shrink.id, durMean(shrink.phaseALt).Round(time.Microsecond)))

	// Post-resize readers for the elastic tenants, then release phase B.
	for _, t := range []*tenantRun{grow, shrink} {
		t := t
		for r := 0; r < t.rg.NReaders; r++ {
			r := r
			all.Add(1)
			go func() {
				defer all.Done()
				if err := tenantConsume(t.rg.Reader(r), t.idx, tenantsPhaseA, tenantsSteps, 0); err != nil {
					errCh <- err
				}
			}()
		}
	}
	close(phaseBGo)

	all.Wait()
	for _, t := range tenants {
		if err := t.wg.Close(); err != nil {
			return nil, fmt.Errorf("close writer %s: %w", t.id, err)
		}
		t.rg.Close()
		fab.Release(t.grant)
	}
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}

	// Per-tenant invariants: exactly one flush per step (journal), all
	// staged bytes retired, the hot tenant actually hit its window, and
	// each elastic tenant completed exactly one reconfiguration.
	for _, t := range tenants {
		if err := verifyTenantJournal(t); err != nil {
			return nil, err
		}
		rep := t.mon.Snapshot()
		if g := rep.Gauges["tenant."+t.id+".staged_bytes"]; g != 0 {
			return nil, fmt.Errorf("tenant %s: %d staged bytes leaked", t.id, g)
		}
		switch t.idx {
		case idxHot:
			waits := rep.Counts["tenant."+t.id+".backpressure.waits"]
			if waits == 0 {
				return nil, fmt.Errorf("hot tenant never hit its credit window")
			}
			fig.Notes = append(fig.Notes,
				fmt.Sprintf("hot tenant %s backpressured %d times against its own window", t.id, waits))
		case grow.idx, shrink.idx:
			if c := rep.Counts["reconfig.count"]; c != 1 {
				return nil, fmt.Errorf("tenant %s: reconfig.count = %d, want 1", t.id, c)
			}
		}
	}
	if got := fab.FreeCores(); got != pool.TotalCores() {
		return nil, fmt.Errorf("pool leak: %d cores free after release, want %d", got, pool.TotalCores())
	}

	// Isolation: the hot blast in phase B must not inflate any steady
	// tenant's P99 step latency beyond 2x its own phase-A P99 (with a
	// scheduler-noise floor so sub-millisecond jitter can't fail the run).
	const floor = 5 * time.Millisecond
	pA := Series{Label: "phase A P99 (steady)"}
	pB := Series{Label: "phase B P99 (hot tenant blasting)"}
	for _, t := range tenants {
		if t.idx == idxHot || t.idx == grow.idx || t.idx == shrink.idx {
			continue
		}
		a, b := durP99(t.phaseALt), durP99(t.phaseBLt)
		limit := 2 * a
		if limit < 2*floor {
			limit = 2 * floor
		}
		if b > limit {
			return nil, fmt.Errorf("tenant %s: phase B P99 %v vs phase A %v — hot tenant leaked backpressure",
				t.id, b, a)
		}
		x := float64(t.idx)
		pA.X = append(pA.X, x)
		pA.Y = append(pA.Y, float64(a.Microseconds()))
		pB.X = append(pB.X, x)
		pB.Y = append(pB.Y, float64(b.Microseconds()))
	}
	fig.Series = append(fig.Series, pA, pB)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"%d tenants x %d epochs, shared pool of %d cores, zero lost/duplicated steps (journal-verified)",
		tenantsN, tenantsSteps, pool.TotalCores()))
	return fig, nil
}

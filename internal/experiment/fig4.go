package experiment

import (
	"fmt"

	"flexio/internal/machine"
	"flexio/internal/rdma"
)

// Fig4 regenerates Figure 4: point-to-point RDMA Get bandwidth on the
// Cray XK6 (Gemini) with dynamic vs. static buffer allocation and memory
// registration, across message sizes. The cached-registration curve — the
// optimization FlexIO actually ships — is included as the ablation.
func Fig4() (*Figure, error) {
	m := machine.Titan(2)
	fab := rdma.NewFabric(m.Net)
	fig := &Figure{
		ID:     "FIG4",
		Title:  "Cost of dynamic allocation/registration in RDMA Get (Titan, Gemini)",
		XLabel: "message size (bytes)",
		YLabel: "bandwidth (MB/s)",
	}
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	const iters = 16
	modes := []rdma.RegistrationMode{
		rdma.DynamicRegistration,
		rdma.StaticRegistration,
		rdma.CachedRegistration,
	}
	labels := map[rdma.RegistrationMode]string{
		rdma.DynamicRegistration: "Dynamic Allocation and Registration",
		rdma.StaticRegistration:  "Static Allocation and Registration",
		rdma.CachedRegistration:  "Registration Cache (FlexIO)",
	}
	for _, mode := range modes {
		s := Series{Label: labels[mode]}
		for _, sz := range sizes {
			r, err := rdma.MeasureGetBandwidth(fab, sz, iters, mode)
			if err != nil {
				return nil, fmt.Errorf("fig4 %v@%d: %w", mode, sz, err)
			}
			s.X = append(s.X, float64(sz))
			s.Y = append(s.Y, r.BandwidthBs/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"expected shape: static >> dynamic at small/medium sizes; curves converge at large messages;",
		"the registration cache tracks the static curve after warm-up")
	return fig, nil
}

package evpath

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/iotest"
	"time"

	"flexio/internal/flight"
)

// tcpPair spins up a serving Net with a listener on contact and a client
// Net resolving that contact to the server's address, then opens one
// channel. Cleanup tears both transports down.
func tcpPair(t *testing.T, contact string) (client, server *Net, dialer Conn, accepted Conn) {
	t.Helper()
	server = NewNet(nil)
	adv, err := server.ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	lst, err := server.Listen(contact)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client = NewNet(nil)
	client.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	got := make(chan Conn, 1)
	go func() {
		c, ok := lst.Accept()
		if ok {
			got <- c
		}
	}()
	dialer, err = client.Dial(contact, TCPTransport, 0, 0)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	select {
	case accepted = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return client, server, dialer, accepted
}

// TestTCPRoundTrip sends codec-encoded records both ways across a real
// socket pair and checks they decode identically on the far side.
func TestTCPRoundTrip(t *testing.T) {
	_, _, a, b := tcpPair(t, "svc.e1.r0")
	if a.Transport() != "tcp" || b.Transport() != "tcp" {
		t.Fatalf("Transport() = %q/%q, want tcp", a.Transport(), b.Transport())
	}

	rec := Record{
		"step":    int64(42),
		"field":   "temperature",
		"payload": bytes.Repeat([]byte{0xAB}, 4096),
	}
	enc, err := Encode(rec)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	if err := a.Send(enc); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	dec, err := Decode(got)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if v, _ := dec.GetInt("step"); v != 42 {
		t.Fatalf("step = %d, want 42", v)
	}
	if !bytes.Equal(enc, got) {
		t.Fatal("encoded record not byte-identical across the socket")
	}

	// Reverse direction on the same channel.
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatalf("reverse Send: %v", err)
	}
	if m, err := a.Recv(); err != nil || string(m) != "pong" {
		t.Fatalf("reverse Recv = %q, %v", m, err)
	}

	// Orderly close: peer drains, then sees EOF.
	if err := a.Send([]byte("last")); err != nil {
		t.Fatalf("Send before close: %v", err)
	}
	a.Close()
	if m, err := b.Recv(); err != nil || string(m) != "last" {
		t.Fatalf("drain after close = %q, %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("Recv after close = %v, want io.EOF", err)
	}
}

// TestTCPManyChannelsOneSocket multiplexes several channels over the
// pooled link and checks per-channel ordering and isolation.
func TestTCPManyChannelsOneSocket(t *testing.T) {
	server := NewNet(nil)
	adv, err := server.ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	client := NewNet(nil)
	client.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	const chans, msgs = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < chans; i++ {
		contact := fmt.Sprintf("mux.e1.r%d", i)
		lst, err := server.Listen(contact)
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		wg.Add(1)
		go func(i int, lst *Listener) {
			defer wg.Done()
			c, ok := lst.Accept()
			if !ok {
				t.Errorf("ch%d: accept failed", i)
				return
			}
			for k := 0; k < msgs; k++ {
				m, err := c.Recv()
				if err != nil {
					t.Errorf("ch%d: recv %d: %v", i, k, err)
					return
				}
				want := fmt.Sprintf("ch%d-msg%d", i, k)
				if string(m) != want {
					t.Errorf("ch%d: got %q, want %q", i, m, want)
					return
				}
			}
		}(i, lst)
	}
	conns := make([]Conn, chans)
	for i := range conns {
		c, err := client.Dial(fmt.Sprintf("mux.e1.r%d", i), TCPTransport, 0, 0)
		if err != nil {
			t.Fatalf("Dial ch%d: %v", i, err)
		}
		conns[i] = c
	}
	if got := client.TCPStatsSnapshot().Dials; got != 1 {
		t.Fatalf("dials = %d, want 1 (channels must share the pooled link)", got)
	}
	for k := 0; k < msgs; k++ {
		for i, c := range conns {
			if err := c.Send([]byte(fmt.Sprintf("ch%d-msg%d", i, k))); err != nil {
				t.Fatalf("send ch%d msg%d: %v", i, k, err)
			}
		}
	}
	wg.Wait()
}

// TestFramePartialReads drives the frame decoder through a reader that
// yields one byte at a time: reassembly must be byte-exact.
func TestFramePartialReads(t *testing.T) {
	key := chanKey{dialer: 0xDEAD, id: 7}
	payload := bytes.Repeat([]byte("fragment"), 100)
	wire := appendFrame(nil, opData, key, payload)
	wire = appendFrame(wire, opClose, key, nil) // second frame back-to-back

	r := iotest.OneByteReader(bytes.NewReader(wire))
	f1, err := readFrame(r, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if f1.op != opData || f1.dialer != key.dialer || f1.chanID != key.id || !bytes.Equal(f1.payload, payload) {
		t.Fatalf("first frame mismatch: op=%d dialer=%x chan=%x len=%d", f1.op, f1.dialer, f1.chanID, len(f1.payload))
	}
	f2, err := readFrame(r, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("second frame: %v", err)
	}
	if f2.op != opClose || len(f2.payload) != 0 {
		t.Fatalf("second frame mismatch: op=%d len=%d", f2.op, len(f2.payload))
	}
	if _, err := readFrame(r, DefaultMaxFrame); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want EOF", err)
	}

	// A frame truncated mid-payload must surface ErrUnexpectedEOF, never
	// a short payload.
	trunc := appendFrame(nil, opData, key, payload)[:4+frameHeaderLen+10]
	if _, err := readFrame(bytes.NewReader(trunc), DefaultMaxFrame); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v, want ErrUnexpectedEOF", err)
	}
}

// TestTCPOversizedFrame checks both directions of the size limit: the
// send path refuses locally, and a hostile peer announcing an oversized
// frame gets hung up on.
func TestTCPOversizedFrame(t *testing.T) {
	server := NewNet(nil)
	server.ConfigureTCP(TCPConfig{MaxFrame: 1 << 10})
	adv, err := server.ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	if _, err := server.Listen("small.e1.r0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client := NewNet(nil)
	client.ConfigureTCP(TCPConfig{MaxFrame: 1 << 10})
	client.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	c, err := client.Dial("small.e1.r0", TCPTransport, 0, 0)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Send(make([]byte, 2<<10)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized Send = %v, want ErrFrameTooLarge", err)
	}

	// Hostile peer: raw socket announcing a 1 GiB frame. The server must
	// reject it at the header (no allocation) and hang up.
	raw, err := net.Dial("tcp", strings.TrimPrefix(adv, "tcp://"))
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	var hdr [4 + frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameHeaderLen+(1<<30)))
	hdr[4] = opData
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept an oversized-frame connection open")
	}
	if got := server.TCPStatsSnapshot().ProtoErrs; got == 0 {
		t.Fatal("oversized frame not counted as a protocol error")
	}
}

// TestTCPRedialBackoff is the fault-injection satellite: an injected
// mid-stream disconnect plus injected dial failures force the transport
// through its backoff ladder, and every message must still arrive
// exactly once, in order. Run under -race in `make ci`.
func TestTCPRedialBackoff(t *testing.T) {
	client, _, a, b := tcpPair(t, "flaky.e1.r0")
	client.ConfigureTCP(TCPConfig{RedialBase: 5 * time.Millisecond, RedialMax: 50 * time.Millisecond})
	client.InjectTCPFaults(TCPFaults{
		DropAfterSends: 3, // cut the link under the 3rd data send
		FailDials:      2, // then refuse the first two redials
		SendLatency:    100 * time.Microsecond,
	})

	const total = 10
	recvErr := make(chan error, 1)
	go func() {
		for k := 0; k < total; k++ {
			m, err := b.Recv()
			if err != nil {
				recvErr <- fmt.Errorf("recv %d: %w", k, err)
				return
			}
			if want := fmt.Sprintf("msg-%d", k); string(m) != want {
				recvErr <- fmt.Errorf("recv %d = %q, want %q", k, m, want)
				return
			}
		}
		recvErr <- nil
	}()
	for k := 0; k < total; k++ {
		if err := a.Send([]byte(fmt.Sprintf("msg-%d", k))); err != nil {
			t.Fatalf("send %d: %v", k, err)
		}
	}
	if err := <-recvErr; err != nil {
		t.Fatal(err)
	}

	s := client.TCPStatsSnapshot()
	if s.Drops != 1 {
		t.Fatalf("drops = %d, want 1", s.Drops)
	}
	if s.Redials < 3 {
		t.Fatalf("redials = %d, want >= 3 (2 injected dial failures + 1 success)", s.Redials)
	}
	if s.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", s.Resumes)
	}
}

// TestTCPDialFallthrough: a non-TCP kind with no local listener falls
// through to the wire when a resolver is installed — how cross-process
// coordinator dials reach remote ranks without core changes.
func TestTCPDialFallthrough(t *testing.T) {
	server := NewNet(nil)
	adv, err := server.ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	if _, err := server.Listen("remote.coord"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client := NewNet(nil)
	client.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	c, err := client.Dial("remote.coord", ChanTransport, 0, 0)
	if err != nil {
		t.Fatalf("fallthrough Dial: %v", err)
	}
	if c.Transport() != "tcp" {
		t.Fatalf("Transport() = %q, want tcp", c.Transport())
	}

	// Unknown contact with a failing resolver keeps the ErrPeerUnknown
	// surface the in-process path has.
	client2 := NewNet(nil)
	if _, err := client2.Dial("nowhere", ChanTransport, 0, 0); !errors.Is(err, ErrPeerUnknown) {
		t.Fatalf("no-resolver Dial = %v, want ErrPeerUnknown", err)
	}
}

// TestTCPListenerWait: a dial that races the peer's Listen succeeds when
// the listener appears within the accept-wait window.
func TestTCPListenerWait(t *testing.T) {
	server := NewNet(nil)
	adv, err := server.ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	client := NewNet(nil)
	client.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	go func() {
		time.Sleep(50 * time.Millisecond)
		lst, err := server.Listen("late.e2.r0")
		if err != nil {
			return
		}
		if c, ok := lst.Accept(); ok {
			c.Send([]byte("here")) //nolint:errcheck
		}
	}()
	c, err := client.Dial("late.e2.r0", TCPTransport, 0, 0)
	if err != nil {
		t.Fatalf("Dial racing Listen: %v", err)
	}
	if m, err := c.Recv(); err != nil || string(m) != "here" {
		t.Fatalf("Recv = %q, %v", m, err)
	}

	// A contact that never appears is rejected after the wait.
	if _, err := client.Dial("never.e1.r0", TCPTransport, 0, 0); err == nil {
		t.Fatal("Dial to unlistened contact succeeded")
	}
}

// selfSignedTLS builds an ephemeral ed25519 self-signed server config
// and the client config that pins it — the same shape flexnode publishes
// through the directory.
func selfSignedTLS(t *testing.T) (*tls.Config, *tls.Config) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("ed25519: %v", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "flexio-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{"flexio-test"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
		IsCA:         true, BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, pub, priv)
	if err != nil {
		t.Fatalf("CreateCertificate: %v", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatalf("ParseCertificate: %v", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	srv := &tls.Config{Certificates: []tls.Certificate{{Certificate: [][]byte{der}, PrivateKey: priv}}}
	cli := &tls.Config{RootCAs: pool, ServerName: "flexio-test"}
	return srv, cli
}

// TestTCPTLS round-trips over a TLS link with a pinned self-signed cert.
func TestTCPTLS(t *testing.T) {
	srvCfg, cliCfg := selfSignedTLS(t)
	server := NewNet(nil)
	adv, err := server.ServeTCP("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatalf("ServeTCP(tls): %v", err)
	}
	if !strings.HasPrefix(adv, "tls://") {
		t.Fatalf("advertised %q, want tls:// prefix", adv)
	}
	lst, err := server.Listen("secure.e1.r0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	client := NewNet(nil)
	client.SetResolver(func(string) (string, error) { return adv, nil })
	client.SetClientTLS(func(string) *tls.Config { return cliCfg })
	t.Cleanup(func() { client.CloseTCP(); server.CloseTCP() })

	go func() {
		if c, ok := lst.Accept(); ok {
			if m, err := c.Recv(); err == nil {
				c.Send(append([]byte("echo:"), m...)) //nolint:errcheck
			}
		}
	}()
	c, err := client.Dial("secure.e1.r0", TCPTransport, 0, 0)
	if err != nil {
		t.Fatalf("Dial over TLS: %v", err)
	}
	if err := c.Send([]byte("secret")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m, err := c.Recv(); err != nil || string(m) != "echo:secret" {
		t.Fatalf("Recv = %q, %v", m, err)
	}

	// Without a client hook the TLS peer is unreachable.
	bare := NewNet(nil)
	bare.SetResolver(func(string) (string, error) { return adv, nil })
	t.Cleanup(func() { bare.CloseTCP() })
	if _, err := bare.Dial("secure.e1.r0", TCPTransport, 0, 0); err == nil {
		t.Fatal("TLS dial without client hook succeeded")
	}
}

// TestTCPJournalAndWireOverhead: wire sends/recvs appear as Step -1
// transport events with framing-inclusive byte attribution, and the
// channel advertises its overhead through WireConn.
func TestTCPJournalAndWireOverhead(t *testing.T) {
	client, server, a, b := tcpPair(t, "journaled.e1.r0")
	j := flight.NewJournal(0)
	client.SetJournal(j)
	jr := flight.NewJournal(0)
	server.SetJournal(jr)

	wc, ok := a.(WireConn)
	if !ok {
		t.Fatal("tcp conn does not implement WireConn")
	}
	if wc.WireOverhead() != FrameOverhead {
		t.Fatalf("WireOverhead = %d, want %d", wc.WireOverhead(), FrameOverhead)
	}

	msg := make([]byte, 100)
	if err := a.Send(msg); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	var sendOK, recvOK bool
	for _, ev := range j.Snapshot() {
		if ev.Point == "tcp.send" && ev.Step == -1 && ev.Bytes == int64(len(msg)+FrameOverhead) {
			sendOK = true
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for !recvOK && time.Now().Before(deadline) {
		for _, ev := range jr.Snapshot() {
			if ev.Point == "tcp.recv" && ev.Step == -1 && ev.Bytes == int64(len(msg)+FrameOverhead) {
				recvOK = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sendOK || !recvOK {
		t.Fatalf("journal coverage: send=%v recv=%v", sendOK, recvOK)
	}
	s := client.TCPStatsSnapshot()
	if s.BytesTX < uint64(len(msg)+FrameOverhead) || s.MsgsTX < 1 {
		t.Fatalf("stats: bytesTX=%d msgsTX=%d", s.BytesTX, s.MsgsTX)
	}
}

// FuzzFrameDecode fuzzes the frame decoder: arbitrary bytes must never
// panic or over-allocate, and every frame the encoder emits must decode
// back to itself.
func FuzzFrameDecode(f *testing.F) {
	key := chanKey{dialer: 1, id: 2}
	f.Add(appendFrame(nil, opData, key, []byte("payload")))
	f.Add(appendFrame(nil, opOpen, key, []byte("contact.e1.r0")))
	f.Add(appendFrame(nil, opClose, key, nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 16
		fr, err := readFrame(bytes.NewReader(data), max)
		if err != nil {
			return
		}
		if len(fr.payload) > max {
			t.Fatalf("decoded payload %d exceeds max %d", len(fr.payload), max)
		}
		// Round-trip: re-encoding the decoded frame must reproduce the
		// consumed prefix exactly.
		reenc := appendFrame(nil, fr.op, chanKey{dialer: fr.dialer, id: fr.chanID}, fr.payload)
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, data[:len(reenc)])
		}
	})
}

package evpath

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTransient marks a recoverable transport failure: the operation may
// succeed if retried. FlexIO's runtime copes with such faults using
// simple timeout-and-retry (Section II.H of the paper); this sentinel is
// what its retry policy keys on.
var ErrTransient = errors.New("evpath: transient transport fault")

// faultConn wraps a Conn and injects transient send failures on a
// deterministic schedule — the failure-injection harness used to test the
// runtime's retry machinery. Receives are never faulted (a lost delivery
// would be a data-loss bug, not a transient).
type faultConn struct {
	Conn
	mu        sync.Mutex
	sends     int
	failEvery int
	faults    int
}

// InjectFaults wraps conn so that every failEvery-th Send fails once with
// ErrTransient (the payload is NOT delivered). failEvery < 2 returns the
// conn unchanged.
func InjectFaults(conn Conn, failEvery int) Conn {
	if failEvery < 2 {
		return conn
	}
	return &faultConn{Conn: conn, failEvery: failEvery}
}

func (f *faultConn) Send(msg []byte) error {
	f.mu.Lock()
	f.sends++
	fail := f.sends%f.failEvery == 0
	if fail {
		f.faults++
	}
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected fault on send %d: %w", f.sends, ErrTransient)
	}
	return f.Conn.Send(msg)
}

// FaultCount reports injected failures so far (testing aid).
func FaultCount(c Conn) int {
	if f, ok := c.(*faultConn); ok {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.faults
	}
	return 0
}

// TCPFaults injects failures into the wire transport's dial and send
// paths — the cross-process analogue of InjectFaults. All fields are
// one-shot budgets armed by Net.InjectTCPFaults; injecting again
// replaces any unconsumed budget.
type TCPFaults struct {
	// FailDials fails the next N physical connect attempts with
	// ErrTransient before any socket is opened (exercises redial
	// backoff: each failed attempt costs one backoff step).
	FailDials int
	// DropAfterSends hard-disconnects the link under the N-th data send
	// counted from now. The disconnect happens *before* the frame is
	// written and half-closes the socket, so the peer drains everything
	// already delivered; the sender redials, resumes the channel, and
	// retries the same message — a provably lossless mid-stream cut.
	DropAfterSends int
	// SendLatency delays every data send (both coupling directions of
	// the injection harness: slow links and cut links).
	SendLatency time.Duration
}

// InjectTCPFaults arms wire-transport fault injection on this Net. The
// zero TCPFaults disarms everything.
func (n *Net) InjectTCPFaults(f TCPFaults) {
	n.tcpInit().setFaults(f)
}

package evpath

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeAllTypes(t *testing.T) {
	rec := Record{
		"i":  int64(-42),
		"u":  uint64(1 << 60),
		"f":  3.14159,
		"s":  "hello world",
		"b":  []byte{1, 2, 3},
		"is": []int64{-1, 0, 1 << 40},
		"fs": []float64{0.5, -2.5},
		"ok": true,
	}
	buf, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, rec)
	}
}

func TestEncodeIntPromotion(t *testing.T) {
	buf, err := Encode(Record{"n": 7})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := Decode(buf)
	if v, ok := rec.GetInt("n"); !ok || v != 7 {
		t.Fatalf("int promotion: %v %v", v, ok)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rec := Record{"z": int64(1), "a": int64(2), "m": "x"}
	b1, _ := Encode(rec)
	b2, _ := Encode(rec)
	if !bytes.Equal(b1, b2) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	if _, err := Encode(Record{"bad": struct{}{}}); err == nil {
		t.Fatal("unsupported type must error")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	rec := Record{"s": "some string data", "n": int64(5)}
	buf, _ := Encode(rec)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			// Some prefixes can decode to fewer fields only if the count
			// header were intact AND all fields fit, which truncation
			// prevents here.
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := Decode([]byte{}); err == nil {
		t.Fatal("empty buffer must error")
	}
}

func TestDecodeUnknownTag(t *testing.T) {
	// count=1, name "x", tag 200
	buf := []byte{1, 1, 'x', 200}
	if _, err := Decode(buf); err == nil {
		t.Fatal("unknown tag must error")
	}
}

func TestAccessors(t *testing.T) {
	rec := Record{
		"i": int64(3), "u": uint64(4), "f": 1.5, "s": "str",
		"b": []byte("by"), "is": []int64{1}, "fs": []float64{2}, "t": true,
	}
	if v, ok := rec.GetInt("i"); !ok || v != 3 {
		t.Error("GetInt int64")
	}
	if v, ok := rec.GetInt("u"); !ok || v != 4 {
		t.Error("GetInt uint64")
	}
	if _, ok := rec.GetInt("s"); ok {
		t.Error("GetInt on string must fail")
	}
	if v, ok := rec.GetFloat("f"); !ok || v != 1.5 {
		t.Error("GetFloat")
	}
	if v, ok := rec.GetString("s"); !ok || v != "str" {
		t.Error("GetString")
	}
	if v, ok := rec.GetBytes("b"); !ok || string(v) != "by" {
		t.Error("GetBytes")
	}
	if v, ok := rec.GetInts("is"); !ok || v[0] != 1 {
		t.Error("GetInts")
	}
	if v, ok := rec.GetFloats("fs"); !ok || v[0] != 2 {
		t.Error("GetFloats")
	}
	if v, ok := rec.GetBool("t"); !ok || !v {
		t.Error("GetBool")
	}
	if _, ok := rec.GetInt("missing"); ok {
		t.Error("missing field must report !ok")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(i int64, u uint64, fl float64, s string, b []byte, is []int64, fs []float64) bool {
		if math.IsNaN(fl) {
			return true // NaN != NaN; skip
		}
		rec := Record{"i": i, "u": u, "f": fl, "s": s}
		if b != nil {
			rec["b"] = b
		}
		if is != nil {
			rec["is"] = is
		}
		if fs != nil {
			for _, x := range fs {
				if math.IsNaN(x) {
					return true
				}
			}
			rec["fs"] = fs
		}
		buf, err := Encode(rec)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	ev := &Event{
		Meta: Record{"var": "zion", "step": int64(7)},
		Data: bytes.Repeat([]byte{0xAB}, 4096),
	}
	buf, err := EncodeEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvent(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, ev.Meta) || !bytes.Equal(got.Data, ev.Data) {
		t.Fatal("event round trip mismatch")
	}
}

func TestDecodeEventCorrupt(t *testing.T) {
	if _, err := DecodeEvent([]byte{0xFF}); err == nil {
		t.Fatal("corrupt event must error")
	}
}

//go:build !race

package evpath

import (
	"encoding/json"
	"os"
	"testing"

	"flexio/internal/flight"
)

// The wire transport adds two touches to every data send even when
// nobody is watching: the atomic stat counters and the (usually nil)
// journal check in record(). These benchmarks isolate that disabled-path
// cost so TestTCPStatsNopBudget can gate it like the monitor's nop span.

var gateSink uint64

func BenchmarkTCPStatsBaseline(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += uint64(i)
	}
	gateSink = acc
}

func BenchmarkTCPStatsNop(b *testing.B) {
	st := newTCPState(NewNet(nil))
	var acc uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += uint64(i)
		st.bumpTX(128)
		st.record(flight.KindSend, "tcp.send", "bench", 128)
	}
	gateSink = acc
	b.ReportAllocs()
}

// TestTCPStatsNopBudget is the CI regression gate for the wire
// transport's per-send accounting when no journal is attached: counter
// bumps plus the nil-journal branch must stay under the budget recorded
// in BENCH_monitor.json, and must not allocate. Excluded under -race.
func TestTCPStatsNopBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("../../BENCH_monitor.json")
	if err != nil {
		t.Fatalf("BENCH_monitor.json missing: %v", err)
	}
	var budget struct {
		TCPStatsNopBudgetNs float64 `json:"tcp_stats_nop_budget_ns"`
	}
	if err := json.Unmarshal(blob, &budget); err != nil {
		t.Fatalf("BENCH_monitor.json: %v", err)
	}
	if budget.TCPStatsNopBudgetNs <= 0 {
		t.Fatal("BENCH_monitor.json has no tcp_stats_nop_budget_ns")
	}

	base := testing.Benchmark(BenchmarkTCPStatsBaseline)
	nop := testing.Benchmark(BenchmarkTCPStatsNop)
	overhead := float64(nop.NsPerOp()) - float64(base.NsPerOp())
	if overhead < 0 {
		overhead = 0
	}
	t.Logf("baseline %dns/op, nop stats %dns/op, overhead %.1fns (budget %.1fns)",
		base.NsPerOp(), nop.NsPerOp(), overhead, budget.TCPStatsNopBudgetNs)
	if overhead > budget.TCPStatsNopBudgetNs {
		t.Fatalf("TCP stats nil-path overhead %.1fns/op exceeds budget %.1fns/op (BENCH_monitor.json)",
			overhead, budget.TCPStatsNopBudgetNs)
	}
	if allocs := nop.AllocsPerOp(); allocs != 0 {
		t.Fatalf("TCP stats nil path allocates (%d allocs/op)", allocs)
	}
}

package evpath

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"flexio/internal/machine"
	"flexio/internal/rdma"
)

func newTestNet() *Net {
	return NewNet(rdma.NewFabric(machine.Titan(4).Net))
}

func allKinds() []TransportKind {
	return []TransportKind{ChanTransport, ShmTransport, RDMATransport}
}

func TestDialUnknownPeer(t *testing.T) {
	n := newTestNet()
	if _, err := n.Dial("nobody", ChanTransport, 0, 0); !errors.Is(err, ErrPeerUnknown) {
		t.Fatalf("err = %v, want ErrPeerUnknown", err)
	}
}

func TestListenDuplicate(t *testing.T) {
	n := newTestNet()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate listen must fail")
	}
}

func TestListenerClose(t *testing.T) {
	n := newTestNet()
	l, _ := n.Listen("x")
	l.Close()
	if _, ok := l.Accept(); ok {
		t.Fatal("accept after close must report !ok")
	}
	if _, err := n.Dial("x", ChanTransport, 0, 0); err == nil {
		t.Fatal("dial to closed listener must fail")
	}
	// Name can be reused.
	if _, err := n.Listen("x"); err != nil {
		t.Fatal("name must be reusable after close")
	}
}

func TestConnRoundTripAllTransports(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet()
			l, err := n.Listen("svc")
			if err != nil {
				t.Fatal(err)
			}
			dialer, err := n.Dial("svc", kind, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			acceptor, ok := l.Accept()
			if !ok {
				t.Fatal("accept failed")
			}
			if dialer.Transport() != kind.String() {
				t.Fatalf("transport = %q, want %q", dialer.Transport(), kind)
			}

			// Small and large messages, both directions.
			msgs := [][]byte{
				[]byte("small"),
				bytes.Repeat([]byte{0x5A}, 300000), // large: pooled / RDMA Get path
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, m := range msgs {
					if err := dialer.Send(m); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
				}
				// Echo back what we receive.
				for range msgs {
					m, err := dialer.Recv()
					if err != nil {
						t.Errorf("dialer recv: %v", err)
						return
					}
					if err := dialer.Send(m); err != nil {
						t.Errorf("echo send: %v", err)
						return
					}
				}
			}()
			for i, want := range msgs {
				got, err := acceptor.Recv()
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recv %d: %d bytes, want %d", i, len(got), len(want))
				}
				if err := acceptor.Send(got); err != nil {
					t.Fatalf("send back %d: %v", i, err)
				}
			}
			for i, want := range msgs {
				got, err := acceptor.Recv()
				if err != nil {
					t.Fatalf("echo recv %d: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("echo %d mismatch", i)
				}
			}
			wg.Wait()
			dialer.Close()
			acceptor.Close()
		})
	}
}

func TestConnCloseYieldsEOF(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet()
			l, _ := n.Listen("svc")
			dialer, err := n.Dial("svc", kind, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			acceptor, _ := l.Accept()
			done := make(chan error, 1)
			go func() {
				_, err := acceptor.Recv()
				done <- err
			}()
			dialer.Close()
			if kind == ShmTransport || kind == ChanTransport {
				// These close both directions from either side.
			} else {
				acceptor.Close()
			}
			err = <-done
			if !errors.Is(err, io.EOF) {
				t.Fatalf("recv after close = %v, want EOF", err)
			}
		})
	}
}

func TestRDMAManyLargeMessagesReusesCache(t *testing.T) {
	n := newTestNet()
	l, _ := n.Listen("svc")
	a, err := n.Dial("svc", RDMATransport, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := l.Accept()
	const rounds = 30
	payload := bytes.Repeat([]byte{7}, 128<<10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := a.Send(payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(got) != len(payload) {
			t.Fatalf("recv %d: %d bytes", i, len(got))
		}
	}
	wg.Wait()
	// Wait for the receiver's acks to release every outstanding send
	// buffer, then one more send must hit the registration cache:
	// reuse is the whole point of the cache.
	rc := a.(*rdmaConn)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rc.drainAcks()
		rc.mu.Lock()
		pending := len(rc.outstanding)
		rc.mu.Unlock()
		if pending == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		a.Send(payload)
		close(done)
	}()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	<-done
	st := rc.cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("registration cache never hit: %+v", st)
	}
	a.Close()
	b.Close()
}

func TestManyConcurrentConns(t *testing.T) {
	n := newTestNet()
	l, _ := n.Listen("hub")
	const peers = 8
	var wg sync.WaitGroup
	for p := 0; p < peers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial("hub", ChanTransport, 0, 0)
			if err != nil {
				t.Errorf("dial %d: %v", p, err)
				return
			}
			c.Send([]byte(fmt.Sprintf("hello-%d", p)))
			c.Close()
		}()
	}
	got := map[string]bool{}
	for p := 0; p < peers; p++ {
		c, ok := l.Accept()
		if !ok {
			t.Fatal("accept failed")
		}
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got[string(m)] = true
	}
	wg.Wait()
	if len(got) != peers {
		t.Fatalf("got %d distinct hellos, want %d", len(got), peers)
	}
}

func TestStoneGraph(t *testing.T) {
	var sink []*Event
	term := &TerminalStone{Handler: func(ev *Event) error {
		sink = append(sink, ev)
		return nil
	}}
	filter := NewFilterStone(func(ev *Event) (*Event, error) {
		if v, _ := ev.Meta.GetInt("keep"); v == 0 {
			return nil, nil // drop
		}
		return ev, nil
	}, term)
	for i := 0; i < 4; i++ {
		filter.Submit(&Event{Meta: Record{"keep": int64(i % 2)}})
	}
	if len(sink) != 2 {
		t.Fatalf("filter passed %d events, want 2", len(sink))
	}
}

func TestFilterStoneSwap(t *testing.T) {
	count := 0
	term := &TerminalStone{Handler: func(*Event) error { count++; return nil }}
	f := NewFilterStone(nil, term)
	f.Submit(&Event{Meta: Record{}})
	f.SetFilter(func(*Event) (*Event, error) { return nil, nil }) // drop all
	f.Submit(&Event{Meta: Record{}})
	if count != 1 {
		t.Fatalf("count = %d, want 1 (second event dropped by swapped filter)", count)
	}
}

func TestSplitStone(t *testing.T) {
	var a, b int
	split := &SplitStone{Outputs: []Stone{
		&TerminalStone{Handler: func(*Event) error { a++; return nil }},
		&TerminalStone{Handler: func(*Event) error { b++; return nil }},
	}}
	split.Submit(&Event{Meta: Record{}})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a, b)
	}
}

func TestSplitStoneErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	split := &SplitStone{Outputs: []Stone{
		&TerminalStone{Handler: func(*Event) error { return boom }},
	}}
	if err := split.Submit(&Event{Meta: Record{}}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBridgeAndPump(t *testing.T) {
	n := newTestNet()
	l, _ := n.Listen("viz")
	conn, err := n.Dial("viz", ShmTransport, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := l.Accept()

	bridge := &BridgeStone{Conn: conn}
	var got []*Event
	var mu sync.Mutex
	term := &TerminalStone{Handler: func(ev *Event) error {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
		return nil
	}}
	pumpDone := make(chan error, 1)
	go func() { pumpDone <- PumpConn(peer, term) }()

	for i := 0; i < 5; i++ {
		err := bridge.Submit(&Event{
			Meta: Record{"step": int64(i)},
			Data: bytes.Repeat([]byte{byte(i)}, 2048),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	if err := <-pumpDone; err != nil {
		t.Fatalf("pump: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("pumped %d events, want 5", len(got))
	}
	for i, ev := range got {
		if s, _ := ev.Meta.GetInt("step"); s != int64(i) {
			t.Fatalf("event %d out of order (step %d)", i, s)
		}
		if len(ev.Data) != 2048 || ev.Data[0] != byte(i) {
			t.Fatalf("event %d payload corrupt", i)
		}
	}
}

package evpath

import (
	"fmt"

	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/rdma"
	"flexio/internal/shm"
)

// Flight-recorder and gauge plumbing for the connection manager: the Net
// is where shm channel pairs are born (they are private to their conns),
// so attaching a journal or harvesting queue/pool gauges has to happen
// here. RDMA-side wiring just forwards to the owned fabric.

// SetJournal attaches a flight recorder to the net's transports: the
// RDMA fabric journals its verbs, and every shm channel dialed from now
// on journals its queue crossings. A nil journal detaches future dials
// (already-dialed channels keep their recorder).
func (n *Net) SetJournal(j *flight.Journal) {
	n.mu.Lock()
	n.journal = j
	st := n.tcp
	n.mu.Unlock()
	if st != nil {
		st.journal.Store(j)
	}
	if n.fabric != nil {
		n.fabric.SetJournal(j)
	}
}

// Fabric exposes the owned RDMA fabric (nil when the net was created
// without one) for gauge harvesting via rdma.Fabric.ReportTo.
func (n *Net) Fabric() *rdma.Fabric { return n.fabric }

// trackShmConn registers a freshly dialed shm pair for journaling and
// gauge harvesting.
func (n *Net) trackShmConn(c Conn) {
	sc, ok := c.(*shmConn)
	if !ok {
		return
	}
	n.mu.Lock()
	j := n.journal
	n.shmChans = append(n.shmChans, sc.tx, sc.rx)
	n.mu.Unlock()
	if j != nil {
		sc.tx.SetJournal(j)
		sc.rx.SetJournal(j)
	}
}

// ReportShm publishes every dialed shm channel's counters as monitor
// gauges, one prefix per channel ("<prefix>.ch<i>."): send-path mix,
// buffer-pool occupancy/high-water, and ring wait counts. Like the
// underlying gauges it is idempotent under re-publication.
func (n *Net) ReportShm(m *monitor.Monitor, prefix string) {
	if m == nil {
		return
	}
	n.mu.Lock()
	chans := append([]*shm.Channel(nil), n.shmChans...)
	n.mu.Unlock()
	for i, c := range chans {
		c.ReportTo(m, fmt.Sprintf("%s.ch%d.", prefix, i))
	}
}

package evpath

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"flexio/internal/flight"
	"flexio/internal/rdma"
	"flexio/internal/shm"
)

// Conn is a bidirectional message-oriented connection between two FlexIO
// processes. Which concrete transport backs it is invisible to callers —
// that is exactly the property FlexIO needs to reconfigure transports per
// placement without touching application code.
type Conn interface {
	// Send delivers one message, blocking under backpressure.
	Send(msg []byte) error
	// Recv blocks for the next message; io.EOF after Close.
	Recv() ([]byte, error)
	// Close shuts the connection down in both directions.
	Close() error
	// Transport names the backing transport ("chan", "shm", "rdma").
	Transport() string
}

// TransportKind selects a connection's transport at Dial time. FlexIO's
// runtime picks ShmTransport for on-node peers and RDMATransport across
// nodes ("intra- vs inter-node transports are automatically configured
// according to the placements").
type TransportKind int

const (
	ChanTransport TransportKind = iota // in-process Go channels (loopback)
	ShmTransport                       // FastForward queues + buffer pool
	RDMATransport                      // NNTI-style verbs + registration cache
	TCPTransport                       // length-prefixed frames over TCP/TLS sockets
)

func (k TransportKind) String() string {
	switch k {
	case ChanTransport:
		return "chan"
	case ShmTransport:
		return "shm"
	case RDMATransport:
		return "rdma"
	case TCPTransport:
		return "tcp"
	}
	return fmt.Sprintf("TransportKind(%d)", int(k))
}

// ErrPeerUnknown reports a Dial to a name nobody listens on.
var ErrPeerUnknown = errors.New("evpath: no listener for peer")

// ErrNoHandle reports a SendHandle the transport cannot express (e.g. a
// header too large to ride the inline queue); the caller should fall back
// to a copying Send.
var ErrNoHandle = errors.New("evpath: transport cannot pass payload handle")

// HandleConn is the optional interface of transports that can deliver a
// payload by reference instead of by copy — the same-node XPMEM-style
// hand-off. SendHandle transfers payload ownership to the transport until
// the receiver's release callback runs (exactly once, from any
// goroutine); release also runs if the connection closes first, so
// producer buffers are never stranded. RecvHandle returns (msg, nil, nil)
// for ordinary copied messages interleaved on the same connection and
// (hdr, payload, release) for handle deliveries; the caller must invoke
// release once it no longer reads payload. A receiver that only calls
// Recv still works: handle messages are flattened to hdr⧺payload by copy.
type HandleConn interface {
	Conn
	SendHandle(hdr, payload []byte, release func()) error
	RecvHandle() (msg []byte, payload []byte, release func(), err error)
}

// Net is the in-process connection manager: listeners register by contact
// name, dialers connect by name and transport kind. It owns the RDMA
// fabric used by RDMA-kind connections.
type Net struct {
	fabric *rdma.Fabric

	mu         sync.Mutex
	listeners  map[string]*Listener
	listenCond *sync.Cond // broadcast on Listen; lazily created by waiters
	nextConn   int64
	journal    *flight.Journal
	shmChans   []*shm.Channel
	tcp        *tcpState // wire transport; nil until first TCP use
}

// NewNet creates a connection manager. fabric may be nil if RDMA
// transports are never dialed.
func NewNet(fabric *rdma.Fabric) *Net {
	return &Net{fabric: fabric, listeners: make(map[string]*Listener)}
}

// Listener accepts incoming connections for one contact name.
type Listener struct {
	name   string
	net    *Net
	accept chan Conn
	closed atomic.Bool
}

// Listen registers a contact name. Names must be unique while listening.
// When the Net serves TCP and a publisher is installed, the contact is
// also published at the serving address so remote peers can dial it.
func (n *Net) Listen(name string) (*Listener, error) {
	n.mu.Lock()
	if _, dup := n.listeners[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("evpath: listener %q exists", name)
	}
	l := &Listener{name: name, net: n, accept: make(chan Conn, 16)}
	n.listeners[name] = l
	if n.listenCond != nil {
		n.listenCond.Broadcast()
	}
	st := n.tcp
	n.mu.Unlock()
	if st != nil {
		if err := st.publishContact(name); err != nil {
			n.mu.Lock()
			delete(n.listeners, name)
			n.mu.Unlock()
			return nil, fmt.Errorf("evpath: publish contact %q: %w", name, err)
		}
	}
	return l, nil
}

// waitListener blocks up to d for a listener on name to appear — the
// wire transport's grace window for dials that race a peer's Listen
// (e.g. new-epoch data contacts during a reconfiguration).
func (n *Net) waitListener(name string, d time.Duration) *Listener {
	deadline := time.Now().Add(d)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if l, ok := n.listeners[name]; ok && !l.closed.Load() {
			return l
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		if n.listenCond == nil {
			n.listenCond = sync.NewCond(&n.mu)
		}
		cond := n.listenCond
		t := time.AfterFunc(remain, func() {
			n.mu.Lock()
			cond.Broadcast()
			n.mu.Unlock()
		})
		cond.Wait()
		t.Stop()
	}
}

// Accept blocks for the next inbound connection; ok=false after Close.
func (l *Listener) Accept() (Conn, bool) {
	c, ok := <-l.accept
	return c, ok
}

// Close stops accepting, removes the registration, and retracts any
// published contact.
func (l *Listener) Close() {
	if l.closed.Swap(true) {
		return
	}
	l.net.mu.Lock()
	delete(l.net.listeners, l.name)
	st := l.net.tcp
	l.net.mu.Unlock()
	if st != nil {
		st.retractContact(l.name)
	}
	close(l.accept)
}

// Dial connects to a listening name over the given transport. The
// dialer-side Conn is returned; the listener receives the peer Conn via
// Accept. nodeA/nodeB identify the caller's and listener's nodes for the
// RDMA cost model (ignored by other transports).
//
// The requested kind is a local-placement hint: TCPTransport always goes
// over the wire, and any kind falls through to the wire when no local
// listener serves the name but a TCP resolver is installed — so code
// that dials by contact (coordinator handshakes, epoch data contacts)
// reaches remote processes without knowing where ranks live.
func (n *Net) Dial(name string, kind TransportKind, nodeA, nodeB int) (Conn, error) {
	if kind == TCPTransport {
		return n.dialTCP(name)
	}
	n.mu.Lock()
	l, ok := n.listeners[name]
	if !ok || l.closed.Load() {
		remote := n.tcp != nil
		n.mu.Unlock()
		if remote {
			return n.dialTCP(name)
		}
		return nil, fmt.Errorf("%w: %q", ErrPeerUnknown, name)
	}
	id := n.nextConn
	n.nextConn++
	n.mu.Unlock()

	var a, b Conn
	var err error
	switch kind {
	case ChanTransport:
		a, b = newChanPair()
	case ShmTransport:
		a, b, err = newShmPair()
	case RDMATransport:
		a, b, err = newRDMAPair(n.fabric, id, nodeA, nodeB)
	default:
		err = fmt.Errorf("evpath: unknown transport %v", kind)
	}
	if err != nil {
		return nil, err
	}
	if kind == ShmTransport {
		n.trackShmConn(a)
	}
	select {
	case l.accept <- b:
		return a, nil
	default:
		a.Close()
		b.Close()
		return nil, fmt.Errorf("evpath: listener %q accept queue full", name)
	}
}

// ---------------------------------------------------------------------
// chan transport

type chanConn struct {
	out       chan<- []byte
	in        <-chan []byte
	closeOnce *sync.Once
	done      chan struct{}
}

func newChanPair() (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &chanConn{out: ab, in: ba, closeOnce: once, done: done}
	b := &chanConn{out: ba, in: ab, closeOnce: once, done: done}
	return a, b
}

func (c *chanConn) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case c.out <- cp:
		return nil
	case <-c.done:
		return io.ErrClosedPipe
	}
}

func (c *chanConn) Recv() ([]byte, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		// Drain anything already buffered before reporting EOF.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *chanConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

func (c *chanConn) Transport() string { return "chan" }

// ---------------------------------------------------------------------
// shm transport: two one-directional shm.Channels.

type shmConn struct {
	tx *shm.Channel
	rx *shm.Channel
}

// shmInlineMax mirrors the paper's design: handshake-sized messages ride
// the FastForward queue, larger payloads go through the buffer pool.
const shmInlineMax = 1024

func newShmPair() (Conn, Conn, error) {
	ab, err := shm.NewChannel(256, shmInlineMax, 256<<20)
	if err != nil {
		return nil, nil, err
	}
	ba, err := shm.NewChannel(256, shmInlineMax, 256<<20)
	if err != nil {
		return nil, nil, err
	}
	return &shmConn{tx: ab, rx: ba}, &shmConn{tx: ba, rx: ab}, nil
}

func (c *shmConn) Send(msg []byte) error {
	if !c.tx.Send(msg) {
		return io.ErrClosedPipe
	}
	return nil
}

func (c *shmConn) Recv() ([]byte, error) {
	m, ok := c.rx.Recv(nil)
	if !ok {
		return nil, io.EOF
	}
	return m, nil
}

// SendHandle implements HandleConn over the shm channel's handle-passing
// message kind: the header is copied inline, the payload crosses by
// reference and returns to the producer via release.
func (c *shmConn) SendHandle(hdr, payload []byte, release func()) error {
	switch err := c.tx.SendHandle(hdr, payload, release); {
	case err == nil:
		return nil
	case errors.Is(err, shm.ErrHandleTooLarge):
		return ErrNoHandle
	case errors.Is(err, shm.ErrClosed):
		return io.ErrClosedPipe
	default:
		return err
	}
}

// RecvHandle implements HandleConn: handle messages surface the
// producer's buffer by reference, all other kinds arrive as a plain
// copied message with a nil payload.
func (c *shmConn) RecvHandle() ([]byte, []byte, func(), error) {
	m, ok := c.rx.RecvMsg(nil)
	if !ok {
		return nil, nil, nil, io.EOF
	}
	return m.Msg, m.Payload, m.Release, nil
}

func (c *shmConn) Close() error {
	c.tx.Close()
	c.rx.Close()
	return nil
}

func (c *shmConn) Transport() string { return "shm" }

// ---------------------------------------------------------------------
// rdma transport: small messages through the paired message queues, large
// payloads via registration-cached buffers + receiver-directed Get + ack.

const (
	rdmaInlineMax = 1024
	frInline      = 0 // frame kinds on the data message queue
	frLarge       = 1
)

type rdmaConn struct {
	dataEP *rdma.Endpoint // receives data/control frames from the peer
	ackEP  *rdma.Endpoint // receives buffer-release acks for our sends
	peer   *rdma.Endpoint // peer's data endpoint
	prAck  *rdma.Endpoint // peer's ack endpoint

	cache *rdma.RegCache
	sched *rdma.GetScheduler

	mu          sync.Mutex
	outstanding map[rdma.Handle]*rdma.MemRegion
	closed      atomic.Bool
	fabric      *rdma.Fabric
}

func newRDMAPair(f *rdma.Fabric, id int64, nodeA, nodeB int) (Conn, Conn, error) {
	if f == nil {
		return nil, nil, errors.New("evpath: RDMA transport requires a fabric")
	}
	mk := func(side string, node int) (*rdma.Endpoint, *rdma.Endpoint, error) {
		data, err := f.Attach(fmt.Sprintf("evp%d-%s-data", id, side), node)
		if err != nil {
			return nil, nil, err
		}
		ack, err := f.Attach(fmt.Sprintf("evp%d-%s-ack", id, side), node)
		if err != nil {
			f.Detach(data)
			return nil, nil, err
		}
		return data, ack, nil
	}
	aData, aAck, err := mk("a", nodeA)
	if err != nil {
		return nil, nil, err
	}
	bData, bAck, err := mk("b", nodeB)
	if err != nil {
		f.Detach(aData)
		f.Detach(aAck)
		return nil, nil, err
	}
	a := &rdmaConn{
		dataEP: aData, ackEP: aAck, peer: bData, prAck: bAck,
		cache: rdma.NewRegCache(aData, 512<<20), sched: rdma.NewGetScheduler(4, 0),
		outstanding: make(map[rdma.Handle]*rdma.MemRegion), fabric: f,
	}
	b := &rdmaConn{
		dataEP: bData, ackEP: bAck, peer: aData, prAck: aAck,
		cache: rdma.NewRegCache(bData, 512<<20), sched: rdma.NewGetScheduler(4, 0),
		outstanding: make(map[rdma.Handle]*rdma.MemRegion), fabric: f,
	}
	return a, b, nil
}

// sendMsgBlocking retries SendMsg under queue-full backpressure.
func (c *rdmaConn) sendMsgBlocking(to *rdma.Endpoint, frame []byte) error {
	for {
		if c.closed.Load() {
			return io.ErrClosedPipe
		}
		_, err := c.dataEP.SendMsg(to, frame)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, rdma.ErrQueueFull):
			c.drainAcks()
			time.Sleep(10 * time.Microsecond)
		case errors.Is(err, rdma.ErrClosed):
			return io.ErrClosedPipe
		default:
			return err
		}
	}
}

// drainAcks releases send buffers whose payload the peer has fetched.
func (c *rdmaConn) drainAcks() {
	for {
		msg, ok := c.ackEP.TryRecvMsg()
		if !ok {
			return
		}
		if len(msg) < 9 {
			continue
		}
		h := rdma.Handle(leUint64(msg[1:]))
		c.mu.Lock()
		reg := c.outstanding[h]
		delete(c.outstanding, h)
		c.mu.Unlock()
		if reg != nil {
			c.cache.Release(reg)
		}
	}
}

func (c *rdmaConn) Send(msg []byte) error {
	if c.closed.Load() {
		return io.ErrClosedPipe
	}
	c.drainAcks()
	if len(msg) <= rdmaInlineMax {
		frame := make([]byte, 1+len(msg))
		frame[0] = frInline
		copy(frame[1:], msg)
		return c.sendMsgBlocking(c.peer, frame)
	}
	// Large path: copy into a cached registered buffer, publish a control
	// message carrying {handle, size}; the peer Gets and acks.
	reg, _, err := c.cache.Acquire(len(msg))
	if err != nil {
		return err
	}
	copy(reg.Bytes()[:len(msg)], msg)
	c.mu.Lock()
	c.outstanding[reg.Handle()] = reg
	c.mu.Unlock()
	frame := make([]byte, 1+16)
	frame[0] = frLarge
	putUint64(frame[1:], uint64(reg.Handle()))
	putUint64(frame[9:], uint64(len(msg)))
	if err := c.sendMsgBlocking(c.peer, frame); err != nil {
		c.mu.Lock()
		delete(c.outstanding, reg.Handle())
		c.mu.Unlock()
		c.cache.Release(reg)
		return err
	}
	return nil
}

func (c *rdmaConn) Recv() ([]byte, error) {
	for {
		frame, ok := c.dataEP.RecvMsg()
		if !ok {
			return nil, io.EOF
		}
		if len(frame) < 1 {
			continue
		}
		switch frame[0] {
		case frInline:
			return frame[1:], nil
		case frLarge:
			if len(frame) < 17 {
				return nil, ErrCorrupt
			}
			h := rdma.Handle(leUint64(frame[1:]))
			size := int(leUint64(frame[9:]))
			local, _, err := c.cache.Acquire(size)
			if err != nil {
				return nil, err
			}
			_, err = c.sched.FetchAll(c.dataEP, []rdma.GetDesc{{
				Remote: h, RemoteOff: 0, Local: local, LocalOff: 0, N: size,
			}})
			if err != nil {
				c.cache.Release(local)
				return nil, err
			}
			out := make([]byte, size)
			copy(out, local.Bytes()[:size])
			c.cache.Release(local)
			ack := make([]byte, 9)
			ack[0] = 2
			putUint64(ack[1:], uint64(h))
			// Best effort: ack loss only delays buffer reuse.
			c.dataEP.SendMsg(c.prAck, ack) //nolint:errcheck
			return out, nil
		}
	}
}

func (c *rdmaConn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	// Graceful teardown: give the peer a bounded window to fetch and ack
	// outstanding large payloads before their registrations vanish.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.drainAcks()
		c.mu.Lock()
		pending := len(c.outstanding)
		c.mu.Unlock()
		if pending == 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Detach both sides' endpoints: closing only our own would leave the
	// peer's Recv blocked forever (a connection teardown must surface as
	// End-of-Stream at the peer, like every other transport).
	c.fabric.Detach(c.dataEP)
	c.fabric.Detach(c.ackEP)
	c.fabric.Detach(c.peer)
	c.fabric.Detach(c.prAck)
	c.cache.Drain()
	return nil
}

func (c *rdmaConn) Transport() string { return "rdma" }

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

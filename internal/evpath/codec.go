// Package evpath is a from-scratch reimplementation of the slice of the
// EVPath messaging library that FlexIO depends on (Section II.C/E of the
// paper): data marshaling for typed messages (EVPath uses FFS; here a
// compact self-describing binary codec), point-to-point connections over
// pluggable transports (in-process channels, the shared-memory transport
// of internal/shm, and the RDMA transport of internal/rdma), and a small
// "stone" dataflow graph in which filter stones host mobile data
// conditioning plug-ins.
package evpath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Wire type tags. The codec is self-describing: each field carries its
// name, tag, and length, so readers can decode messages from writers with
// unknown schema versions (FFS's central property).
const (
	tagInt64 byte = iota + 1
	tagUint64
	tagFloat64
	tagString
	tagBytes
	tagInt64Slice
	tagFloat64Slice
	tagBool
)

// ErrCorrupt reports a malformed wire message.
var ErrCorrupt = errors.New("evpath: corrupt message")

// Record is a typed field map — the unit of marshaling. Field values are
// restricted to the codec's wire types.
type Record map[string]any

// Encode marshals a record. Fields are written in sorted name order so
// encoding is deterministic (important for tests and for digest-based
// dedup in the monitor).
func Encode(rec Record) ([]byte, error) {
	names := make([]string, 0, len(rec))
	for k := range rec {
		names = append(names, k)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		var err error
		buf, err = appendValue(buf, rec[name])
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", name, err)
		}
	}
	return buf, nil
}

func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case int64:
		buf = append(buf, tagInt64)
		buf = binary.AppendVarint(buf, x)
	case int:
		buf = append(buf, tagInt64)
		buf = binary.AppendVarint(buf, int64(x))
	case uint64:
		buf = append(buf, tagUint64)
		buf = binary.AppendUvarint(buf, x)
	case float64:
		buf = append(buf, tagFloat64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	case bool:
		buf = append(buf, tagBool)
		if x {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case string:
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case []byte:
		buf = append(buf, tagBytes)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	case []int64:
		buf = append(buf, tagInt64Slice)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		for _, e := range x {
			buf = binary.AppendVarint(buf, e)
		}
	case []float64:
		buf = append(buf, tagFloat64Slice)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		for _, e := range x {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e))
		}
	default:
		return nil, fmt.Errorf("evpath: unsupported field type %T", v)
	}
	return buf, nil
}

// Decode unmarshals a record produced by Encode.
func Decode(buf []byte) (Record, error) {
	rec := make(Record)
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, ErrCorrupt
	}
	pos := off
	for i := uint64(0); i < n; i++ {
		nameLen, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 || pos+adv+int(nameLen) > len(buf) {
			return nil, ErrCorrupt
		}
		pos += adv
		name := string(buf[pos : pos+int(nameLen)])
		pos += int(nameLen)
		var (
			v   any
			err error
		)
		v, pos, err = readValue(buf, pos)
		if err != nil {
			return nil, fmt.Errorf("field %q: %w", name, err)
		}
		rec[name] = v
	}
	return rec, nil
}

func readValue(buf []byte, pos int) (any, int, error) {
	if pos >= len(buf) {
		return nil, pos, ErrCorrupt
	}
	tag := buf[pos]
	pos++
	switch tag {
	case tagInt64:
		x, adv := binary.Varint(buf[pos:])
		if adv <= 0 {
			return nil, pos, ErrCorrupt
		}
		return x, pos + adv, nil
	case tagUint64:
		x, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 {
			return nil, pos, ErrCorrupt
		}
		return x, pos + adv, nil
	case tagFloat64:
		if pos+8 > len(buf) {
			return nil, pos, ErrCorrupt
		}
		x := math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
		return x, pos + 8, nil
	case tagBool:
		if pos >= len(buf) {
			return nil, pos, ErrCorrupt
		}
		return buf[pos] != 0, pos + 1, nil
	case tagString:
		n, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 || pos+adv+int(n) > len(buf) {
			return nil, pos, ErrCorrupt
		}
		pos += adv
		return string(buf[pos : pos+int(n)]), pos + int(n), nil
	case tagBytes:
		n, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 || pos+adv+int(n) > len(buf) {
			return nil, pos, ErrCorrupt
		}
		pos += adv
		out := make([]byte, n)
		copy(out, buf[pos:pos+int(n)])
		return out, pos + int(n), nil
	case tagInt64Slice:
		n, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 {
			return nil, pos, ErrCorrupt
		}
		pos += adv
		out := make([]int64, n)
		for i := range out {
			x, a := binary.Varint(buf[pos:])
			if a <= 0 {
				return nil, pos, ErrCorrupt
			}
			out[i] = x
			pos += a
		}
		return out, pos, nil
	case tagFloat64Slice:
		n, adv := binary.Uvarint(buf[pos:])
		if adv <= 0 || pos+adv+int(n)*8 > len(buf) {
			return nil, pos, ErrCorrupt
		}
		pos += adv
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
			pos += 8
		}
		return out, pos, nil
	}
	return nil, pos, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
}

// Typed field accessors with comma-ok semantics; they tolerate the int64/
// uint64 distinction the codec preserves.

// GetInt extracts an integer field.
func (r Record) GetInt(name string) (int64, bool) {
	switch v := r[name].(type) {
	case int64:
		return v, true
	case uint64:
		return int64(v), true
	}
	return 0, false
}

// GetFloat extracts a float field.
func (r Record) GetFloat(name string) (float64, bool) {
	v, ok := r[name].(float64)
	return v, ok
}

// GetString extracts a string field.
func (r Record) GetString(name string) (string, bool) {
	v, ok := r[name].(string)
	return v, ok
}

// GetBytes extracts a byte-slice field.
func (r Record) GetBytes(name string) ([]byte, bool) {
	v, ok := r[name].([]byte)
	return v, ok
}

// GetBool extracts a boolean field.
func (r Record) GetBool(name string) (bool, bool) {
	v, ok := r[name].(bool)
	return v, ok
}

// GetInts extracts an int64-slice field.
func (r Record) GetInts(name string) ([]int64, bool) {
	v, ok := r[name].([]int64)
	return v, ok
}

// GetFloats extracts a float64-slice field.
func (r Record) GetFloats(name string) ([]float64, bool) {
	v, ok := r[name].([]float64)
	return v, ok
}

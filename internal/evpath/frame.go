package evpath

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing for the TCP transport: every frame is a 4-byte big-endian
// length followed by a fixed header and an opaque payload. The length
// counts everything after itself, so a reader can skip unknown ops and a
// partial read can never be mistaken for a frame boundary.
//
//	uint32  length (= 17 + len(payload))
//	byte    op
//	uint64  dialerID   } the channel key: dialerID is minted once per
//	uint64  chanID     } dialing Net, chanID per logical connection
//	...     payload
//
// Multiple logical connections (channels) share one physical socket; the
// key routes each frame to its channel. Ops:
//
//	opOpen       dialer -> acceptor: create channel for contact `payload`
//	opAccept     acceptor -> dialer: open succeeded
//	opReject     acceptor -> dialer: open failed, reason in payload
//	opData       either direction: one message
//	opClose      either direction: orderly half of channel teardown
//	opResume     dialer -> acceptor: reattach channel after a redial
//	opResumeOK   acceptor -> dialer: channel reattached
//	opResumeFail acceptor -> dialer: channel unknown or already closed
const (
	opOpen byte = iota + 1
	opAccept
	opReject
	opData
	opClose
	opResume
	opResumeOK
	opResumeFail
)

// frameHeaderLen is the fixed part after the length word: op + two ids.
const frameHeaderLen = 1 + 8 + 8

// FrameOverhead is the per-message wire overhead of the TCP transport:
// the length word plus the frame header. Callers attributing
// bytes-on-wire (flight-recorder send.tcp events) add it to the payload
// size; tcpChan exposes it via WireOverhead.
const FrameOverhead = 4 + frameHeaderLen

// DefaultMaxFrame bounds a single frame's payload (64 MiB). Larger
// announcements are a protocol violation and hang up the link — a
// corrupt or hostile peer must not be able to make us allocate
// unboundedly.
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge reports a frame whose announced payload exceeds the
// configured maximum.
var ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds size limit", ErrCorrupt)

// frame is one decoded wire frame.
type frame struct {
	op      byte
	dialer  uint64
	chanID  uint64
	payload []byte
}

// chanKey identifies one logical channel across every socket it ever
// rides (a resumed channel keeps its key on the new socket).
type chanKey struct {
	dialer uint64
	id     uint64
}

func (k chanKey) String() string { return fmt.Sprintf("%x.%x", k.dialer, k.id) }

// appendFrame encodes a frame into buf (which may be nil) and returns it.
func appendFrame(buf []byte, op byte, key chanKey, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(frameHeaderLen+len(payload)))
	buf = append(buf, op)
	buf = binary.BigEndian.AppendUint64(buf, key.dialer)
	buf = binary.BigEndian.AppendUint64(buf, key.id)
	return append(buf, payload...)
}

// readFrame reads exactly one frame. Partial reads are handled by
// io.ReadFull; an announced length below the header size or above max
// fails with ErrCorrupt/ErrFrameTooLarge.
func readFrame(r io.Reader, max int) (frame, error) {
	var hdr [4 + frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return frame{}, err
	}
	length := int(binary.BigEndian.Uint32(hdr[:4]))
	if length < frameHeaderLen {
		return frame{}, fmt.Errorf("%w: frame length %d below header", ErrCorrupt, length)
	}
	if max > 0 && length > frameHeaderLen+max {
		return frame{}, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, length-frameHeaderLen, max)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return frame{}, err
	}
	f := frame{
		op:     hdr[4],
		dialer: binary.BigEndian.Uint64(hdr[5:13]),
		chanID: binary.BigEndian.Uint64(hdr[13:21]),
	}
	if n := length - frameHeaderLen; n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

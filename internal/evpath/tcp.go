package evpath

import (
	"bufio"
	"crypto/rand"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// The TCP transport turns the in-process Net into a real wire: contacts
// that no local listener serves are resolved (normally against the
// directory) to a peer's advertised address and dialed over a pooled TCP
// or TLS socket. One physical socket per remote address carries many
// logical channels, each identified by a {dialerID, chanID} key minted by
// the dialing side; frames are length-prefixed (frame.go) and carry the
// same codec-encoded events the in-process transports do, so `core`
// writers and readers select TCP purely by contact and everything above
// the Conn interface — epoch-qualified contacts, Reconfigure, plug-in
// shipping — works unchanged across processes.
//
// Fault model: a failed socket detaches its channels rather than killing
// them. The dialing side redials with exponential backoff and reattaches
// each surviving channel with an opResume handshake; the accepting side
// parks detached channels for ResumeTimeout before surfacing EOF. An
// injected disconnect (TCPFaults.DropAfterSends) half-closes the socket
// before any byte of the pending frame is written, so the peer drains
// everything already sent and no message is lost or duplicated across
// the redial.

// ContactPublisher is the hook a directory client implements so that
// Listen/Close on a serving Net publish and retract contact → address
// mappings for remote dialers to resolve.
type ContactPublisher interface {
	PublishContact(contact, addr string) error
	RetractContact(contact string) error
}

// WireConn is the optional interface of transports whose sends cross a
// real wire with per-message framing overhead; core's send path uses it
// to attribute bytes-on-wire (payload + framing) in journal events.
type WireConn interface {
	Conn
	WireOverhead() int
}

// TCPConfig tunes the wire transport. Zero values select the defaults.
type TCPConfig struct {
	MaxFrame       int           // per-frame payload cap (DefaultMaxFrame)
	DialTimeout    time.Duration // physical connect timeout (5s)
	OpenTimeout    time.Duration // open/resume handshake wait (5s)
	AcceptWait     time.Duration // acceptor's wait for a local listener (2s)
	RedialBase     time.Duration // first redial backoff (20ms)
	RedialMax      time.Duration // backoff ceiling (1s)
	RedialAttempts int           // redial attempts before giving up (6)
	ResumeTimeout  time.Duration // acceptor's wait for a resume (10s)
	InboxDepth     int           // per-channel receive buffer, messages (64)
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.AcceptWait <= 0 {
		c.AcceptWait = 2 * time.Second
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 20 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = time.Second
	}
	if c.RedialAttempts <= 0 {
		c.RedialAttempts = 6
	}
	if c.ResumeTimeout <= 0 {
		c.ResumeTimeout = 10 * time.Second
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 64
	}
	return c
}

// TCPStats is a snapshot of the wire transport's cumulative counters.
type TCPStats struct {
	Dials     uint64 // physical connect attempts (including failed)
	Redials   uint64 // connect attempts made to resume failed links
	Accepts   uint64 // inbound sockets accepted
	Opens     uint64 // logical channels opened (both sides)
	Resumes   uint64 // channels successfully reattached after a failure
	Drops     uint64 // injected disconnects taken
	ProtoErrs uint64 // corrupt or oversized frames that hung up a link
	MsgsTX    uint64
	MsgsRX    uint64
	BytesTX   uint64 // on-wire bytes sent (payload + framing)
	BytesRX   uint64
}

type tcpCounters struct {
	dials, redials, accepts, opens, resumes, drops uint64
	protoErrs, msgsTX, msgsRX, bytesTX, bytesRX    uint64
}

var (
	errLinkFailed     = errors.New("evpath: tcp link failed")
	errResumeRejected = errors.New("evpath: peer rejected channel resume")
	errTCPClosed      = errors.New("evpath: tcp transport shut down")
)

// tcpState is the per-Net wire-transport state, created lazily by the
// first ServeTCP/SetResolver/ConfigureTCP/InjectTCPFaults call.
type tcpState struct {
	net      *Net
	dialerID uint64
	nextChan atomic.Uint64
	journal  atomic.Pointer[flight.Journal]

	mu        sync.Mutex
	cfg       TCPConfig
	closed    bool
	advertise string
	servers   []net.Listener
	links     map[string]*tcpLink // dialed links by remote address
	allLinks  map[*tcpLink]struct{}
	dialing   map[string]chan struct{} // singleflight per address
	accepted  map[chanKey]*tcpChan     // acceptor-side channels, for resume
	resolver  func(contact string) (addr string, err error)
	publisher ContactPublisher
	clientTLS func(addr string) *tls.Config

	faultMu       sync.Mutex
	failDialsLeft int
	dropArmed     bool
	dropCountdown int
	sendLatencyNS atomic.Int64

	ctr tcpCounters
}

func newTCPState(n *Net) *tcpState {
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		panic(fmt.Sprintf("evpath: cannot mint dialer id: %v", err))
	}
	return &tcpState{
		net:      n,
		dialerID: binary.BigEndian.Uint64(idb[:]),
		cfg:      TCPConfig{}.withDefaults(),
		links:    make(map[string]*tcpLink),
		allLinks: make(map[*tcpLink]struct{}),
		dialing:  make(map[string]chan struct{}),
		accepted: make(map[chanKey]*tcpChan),
	}
}

// tcpInit returns the Net's wire-transport state, creating it on first
// use (it inherits any journal already attached to the Net).
func (n *Net) tcpInit() *tcpState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tcp == nil {
		n.tcp = newTCPState(n)
		n.tcp.journal.Store(n.journal)
	}
	return n.tcp
}

func (n *Net) tcpState() *tcpState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tcp
}

// ServeTCP starts accepting wire connections on bind ("host:port", port 0
// for ephemeral). A non-nil TLS config serves TLS and advertises a
// "tls://" address; otherwise "tcp://". The advertised address is what
// the process publishes next to its contacts; the first ServeTCP's
// address becomes the default advertisement.
func (n *Net) ServeTCP(bind string, tlsCfg *tls.Config) (string, error) {
	st := n.tcpInit()
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return "", err
	}
	scheme := "tcp"
	if tlsCfg != nil {
		ln = tls.NewListener(ln, tlsCfg)
		scheme = "tls"
	}
	adv := scheme + "://" + ln.Addr().String()
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		ln.Close()
		return "", errTCPClosed
	}
	st.servers = append(st.servers, ln)
	if st.advertise == "" {
		st.advertise = adv
	}
	st.mu.Unlock()
	go st.acceptLoop(ln)
	return adv, nil
}

// TCPAddr reports the advertised wire address ("" when not serving).
func (n *Net) TCPAddr() string {
	st := n.tcpState()
	if st == nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.advertise
}

// SetResolver installs the contact → wire-address lookup used when a
// dialed contact has no local listener (normally a directory WaitLookup).
func (n *Net) SetResolver(r func(contact string) (string, error)) {
	st := n.tcpInit()
	st.mu.Lock()
	st.resolver = r
	st.mu.Unlock()
}

// SetPublisher installs the hook through which Listen/Close publish and
// retract this process's contacts at the serving address.
func (n *Net) SetPublisher(p ContactPublisher) {
	st := n.tcpInit()
	st.mu.Lock()
	st.publisher = p
	st.mu.Unlock()
}

// SetClientTLS installs the per-address client TLS configuration used
// when dialing "tls://" peers (normally built from a directory-pinned
// certificate). Dialing a TLS peer without a hook fails.
func (n *Net) SetClientTLS(f func(addr string) *tls.Config) {
	st := n.tcpInit()
	st.mu.Lock()
	st.clientTLS = f
	st.mu.Unlock()
}

// ConfigureTCP replaces the transport tunables (zero fields select
// defaults). Affects links dialed and channels opened from now on.
func (n *Net) ConfigureTCP(cfg TCPConfig) {
	st := n.tcpInit()
	st.mu.Lock()
	st.cfg = cfg.withDefaults()
	st.mu.Unlock()
}

// TCPStatsSnapshot reads the wire transport's cumulative counters.
func (n *Net) TCPStatsSnapshot() TCPStats {
	st := n.tcpState()
	if st == nil {
		return TCPStats{}
	}
	return TCPStats{
		Dials:     atomic.LoadUint64(&st.ctr.dials),
		Redials:   atomic.LoadUint64(&st.ctr.redials),
		Accepts:   atomic.LoadUint64(&st.ctr.accepts),
		Opens:     atomic.LoadUint64(&st.ctr.opens),
		Resumes:   atomic.LoadUint64(&st.ctr.resumes),
		Drops:     atomic.LoadUint64(&st.ctr.drops),
		ProtoErrs: atomic.LoadUint64(&st.ctr.protoErrs),
		MsgsTX:    atomic.LoadUint64(&st.ctr.msgsTX),
		MsgsRX:    atomic.LoadUint64(&st.ctr.msgsRX),
		BytesTX:   atomic.LoadUint64(&st.ctr.bytesTX),
		BytesRX:   atomic.LoadUint64(&st.ctr.bytesRX),
	}
}

// ReportTCP publishes the wire transport's counters as monitor gauges
// under prefix (e.g. "tcp."). Gauges merge with max-semantics, so
// republishing from a poll loop is idempotent. A nop when the transport
// was never used.
func (n *Net) ReportTCP(m *monitor.Monitor, prefix string) {
	if m == nil || n.tcpState() == nil {
		return
	}
	s := n.TCPStatsSnapshot()
	m.Set(prefix+"dials", int64(s.Dials))
	m.Set(prefix+"redials", int64(s.Redials))
	m.Set(prefix+"accepts", int64(s.Accepts))
	m.Set(prefix+"opens", int64(s.Opens))
	m.Set(prefix+"resumes", int64(s.Resumes))
	m.Set(prefix+"drops", int64(s.Drops))
	m.Set(prefix+"proto_errs", int64(s.ProtoErrs))
	m.Set(prefix+"msgs_tx", int64(s.MsgsTX))
	m.Set(prefix+"msgs_rx", int64(s.MsgsRX))
	m.Set(prefix+"bytes_tx", int64(s.BytesTX))
	m.Set(prefix+"bytes_rx", int64(s.BytesRX))
}

// CloseTCP shuts the wire transport down: serving sockets stop, every
// link fails terminally (no resume), and detached channels surface EOF.
// In-process transports are unaffected.
func (n *Net) CloseTCP() {
	st := n.tcpState()
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	servers := st.servers
	st.servers = nil
	links := make([]*tcpLink, 0, len(st.allLinks))
	for l := range st.allLinks {
		links = append(links, l)
	}
	st.mu.Unlock()
	for _, ln := range servers {
		ln.Close()
	}
	for _, l := range links {
		l.fail(errTCPClosed)
	}
}

// publishContact announces a local listener at the serving address; a
// nop until both a publisher and a serving socket exist.
func (st *tcpState) publishContact(name string) error {
	st.mu.Lock()
	pub, adv := st.publisher, st.advertise
	st.mu.Unlock()
	if pub == nil || adv == "" {
		return nil
	}
	return pub.PublishContact(name, adv)
}

func (st *tcpState) retractContact(name string) {
	st.mu.Lock()
	pub := st.publisher
	st.mu.Unlock()
	if pub != nil {
		pub.RetractContact(name) //nolint:errcheck
	}
}

func (st *tcpState) isClosed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed
}

func (st *tcpState) config() TCPConfig {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cfg
}

func (st *tcpState) maxFrame() int { return st.config().MaxFrame }

func (st *tcpState) record(kind flight.Kind, point, channel string, bytes int) {
	j := st.journal.Load()
	if j == nil {
		return
	}
	j.Record(flight.Event{
		Kind: kind, Point: point, Channel: channel,
		T: j.Now(), Step: -1, Bytes: int64(bytes),
	})
}

// ---------------------------------------------------------------------
// fault hooks (state side; the public TCPFaults API lives in fault.go)

func (st *tcpState) setFaults(f TCPFaults) {
	st.faultMu.Lock()
	st.failDialsLeft = f.FailDials
	st.dropArmed = f.DropAfterSends > 0
	st.dropCountdown = f.DropAfterSends
	st.faultMu.Unlock()
	st.sendLatencyNS.Store(int64(f.SendLatency))
}

// takeDialFault consumes one injected dial failure if armed.
func (st *tcpState) takeDialFault() bool {
	st.faultMu.Lock()
	defer st.faultMu.Unlock()
	if st.failDialsLeft > 0 {
		st.failDialsLeft--
		return true
	}
	return false
}

// takeDrop consumes the armed injected disconnect when its send
// countdown reaches zero.
func (st *tcpState) takeDrop() bool {
	st.faultMu.Lock()
	defer st.faultMu.Unlock()
	if !st.dropArmed {
		return false
	}
	st.dropCountdown--
	if st.dropCountdown > 0 {
		return false
	}
	st.dropArmed = false
	atomic.AddUint64(&st.ctr.drops, 1)
	return true
}

func (st *tcpState) sendLatency() time.Duration {
	return time.Duration(st.sendLatencyNS.Load())
}

// bumpTX/bumpRX account one data message's on-wire bytes — the whole
// per-send accounting when no journal is attached, gated by
// TestTCPStatsNopBudget.
func (st *tcpState) bumpTX(wireBytes int) {
	atomic.AddUint64(&st.ctr.msgsTX, 1)
	atomic.AddUint64(&st.ctr.bytesTX, uint64(wireBytes))
}

func (st *tcpState) bumpRX(wireBytes int) {
	atomic.AddUint64(&st.ctr.msgsRX, 1)
	atomic.AddUint64(&st.ctr.bytesRX, uint64(wireBytes))
}

// ---------------------------------------------------------------------
// physical links

// tcpLink is one physical socket carrying many logical channels. A link
// fails as a unit; its channels detach and either resume (dialer side
// redials) or park awaiting the peer's resume (acceptor side).
type tcpLink struct {
	st         *tcpState
	addr       string // remote address; redial target on the dialer side
	dialerSide bool
	readDone   chan struct{} // closed when demux exits (link fully drained)

	writeMu sync.Mutex
	wbuf    []byte

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	chans  map[chanKey]*tcpChan
	failed bool
}

func (st *tcpState) newLink(conn net.Conn, addr string, dialerSide bool) *tcpLink {
	l := &tcpLink{
		st: st, addr: addr, dialerSide: dialerSide,
		readDone: make(chan struct{}),
		conn:     conn, br: bufio.NewReader(conn),
		chans: make(map[chanKey]*tcpChan),
	}
	st.mu.Lock()
	st.allLinks[l] = struct{}{}
	st.mu.Unlock()
	return l
}

func (l *tcpLink) isFailed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// attach registers ch on the link and points ch at it. Fails if the link
// already died; the post-set recheck closes the race with a concurrent
// fail() that snapshotted the channel map before our insert.
func (l *tcpLink) attach(ch *tcpChan) error {
	l.mu.Lock()
	if l.failed {
		l.mu.Unlock()
		return errLinkFailed
	}
	l.chans[ch.key] = ch
	l.mu.Unlock()
	ch.setLink(l)
	if l.isFailed() {
		ch.detach(l)
		return errLinkFailed
	}
	return nil
}

func (l *tcpLink) lookup(key chanKey) *tcpChan {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chans[key]
}

func (l *tcpLink) remove(key chanKey) {
	l.mu.Lock()
	delete(l.chans, key)
	l.mu.Unlock()
}

// sendFrame serializes one frame onto the socket. Any write error is
// terminal for the link (the caller invokes fail).
func (l *tcpLink) sendFrame(op byte, key chanKey, payload []byte) error {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	if l.isFailed() {
		return errLinkFailed
	}
	buf := appendFrame(l.wbuf[:0], op, key, payload)
	l.wbuf = buf[:0]
	_, err := l.conn.Write(buf)
	return err
}

// halfClose shuts down the write direction only (FIN): the peer drains
// everything already sent, then reads EOF and fails the link from its
// side. Used by the injected-disconnect fault so no delivered byte is
// lost. Falls back to a full close for conns without CloseWrite.
func (l *tcpLink) halfClose() {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := l.conn.(closeWriter); ok {
		cw.CloseWrite() //nolint:errcheck
		return
	}
	l.conn.Close()
}

// fail tears the link down once: the socket closes (unblocking demux),
// the link leaves the pool, and every channel detaches. Dialer-side
// channels that completed their open handshake are handed to a resumer;
// acceptor-side ones park with a resume timer. With the transport shut
// down, channels fail terminally instead. Used where the read side is
// already dead (demux error, shutdown); a write-side failure uses
// failSendSide so inbound frames keep draining.
func (l *tcpLink) fail(err error) {
	if !l.beginFail() {
		return
	}
	l.conn.Close()
	l.finishFail(err)
}

// failSendSide marks the link failed after a write failure or injected
// disconnect, but only half-closes the socket (FIN): the peer drains
// everything already delivered before seeing EOF, and our own demux
// keeps routing the peer's in-flight frames until the peer closes. This
// is what makes the redial path lossless — no byte accepted by a Write
// is ever thrown away by either side's teardown.
func (l *tcpLink) failSendSide(err error) {
	if !l.beginFail() {
		return
	}
	l.halfClose()
	l.finishFail(err)
}

func (l *tcpLink) beginFail() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed {
		return false
	}
	l.failed = true
	return true
}

// finishFail detaches every channel and hands dialer-side survivors to
// a resumer. The channel map is left intact so a draining demux can
// still route late inbound frames.
func (l *tcpLink) finishFail(err error) {
	l.mu.Lock()
	chans := make([]*tcpChan, 0, len(l.chans))
	for _, ch := range l.chans {
		chans = append(chans, ch)
	}
	l.mu.Unlock()

	l.st.dropLink(l)
	stClosed := l.st.isClosed()

	var resume []*tcpChan
	for _, ch := range chans {
		ch.deliverPending(err)
		if stClosed {
			ch.signalEOF(errTCPClosed)
			continue
		}
		ch.detach(l)
		if l.dialerSide && ch.isOpened() && !ch.terminal() && ch.markResuming() {
			resume = append(resume, ch)
		}
	}
	if len(resume) > 0 {
		go l.st.resumeChans(l, resume)
	}
}

func (st *tcpState) dropLink(l *tcpLink) {
	st.mu.Lock()
	if st.links[l.addr] == l {
		delete(st.links, l.addr)
	}
	delete(st.allLinks, l)
	st.mu.Unlock()
}

// demux is the per-link read loop: it decodes frames and routes them by
// channel key. A read error — remote close, injected disconnect, corrupt
// or oversized frame — fails the link. Inbox delivery blocks when a
// receiver lags, which backpressures the whole link by design (TCP flow
// control then backpressures the sender).
func (l *tcpLink) demux() {
	defer close(l.readDone)
	defer l.conn.Close()
	for {
		f, err := readFrame(l.br, l.st.maxFrame())
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				atomic.AddUint64(&l.st.ctr.protoErrs, 1)
			}
			l.fail(err)
			return
		}
		l.st.handleFrame(l, f)
	}
}

func (st *tcpState) handleFrame(l *tcpLink, f frame) {
	key := chanKey{dialer: f.dialer, id: f.chanID}
	switch f.op {
	case opOpen:
		st.handleOpen(l, key, f.payload)
	case opResume:
		st.handleResume(l, key)
	case opAccept, opResumeOK:
		if ch := l.lookup(key); ch != nil {
			ch.deliverPending(nil)
		}
	case opReject:
		if ch := l.lookup(key); ch != nil {
			l.remove(key)
			ch.deliverPending(fmt.Errorf("evpath: open %s rejected: %s", ch.contact, f.payload))
		}
	case opResumeFail:
		if ch := l.lookup(key); ch != nil {
			l.remove(key)
			ch.deliverPending(errResumeRejected)
		}
	case opData:
		ch := l.lookup(key)
		if ch == nil {
			return // late frame for a channel closed on this side
		}
		st.bumpRX(len(f.payload) + FrameOverhead)
		st.record(flight.KindRecv, "tcp.recv", ch.contact, len(f.payload)+FrameOverhead)
		select {
		case ch.inbox <- f.payload:
		case <-ch.eof:
		}
	case opClose:
		var ch *tcpChan
		if ch = l.lookup(key); ch == nil {
			st.mu.Lock()
			ch = st.accepted[key]
			st.mu.Unlock()
		}
		if ch != nil {
			ch.signalEOF(nil)
			st.forgetChan(ch, l)
		}
	default:
		atomic.AddUint64(&st.ctr.protoErrs, 1)
	}
}

// handleOpen serves a dialer's channel-open: it waits briefly for the
// named local listener (epoch listeners can trail the remote dial by a
// beat), creates the acceptor-side channel, and delivers it through the
// listener's accept queue.
func (st *tcpState) handleOpen(l *tcpLink, key chanKey, payload []byte) {
	contact := string(payload)
	lst := st.net.waitListener(contact, st.config().AcceptWait)
	if lst == nil {
		l.sendFrame(opReject, key, []byte("no listener for "+contact)) //nolint:errcheck
		return
	}
	ch := st.newChan(key, contact, false, "")
	ch.setOpened()
	st.mu.Lock()
	st.accepted[key] = ch
	st.mu.Unlock()
	if err := l.attach(ch); err != nil {
		st.forgetChan(ch, nil)
		return
	}
	if !deliverAccept(lst, ch) {
		ch.signalEOF(errors.New("evpath: accept queue full"))
		st.forgetChan(ch, l)
		l.sendFrame(opReject, key, []byte("accept queue full")) //nolint:errcheck
		return
	}
	atomic.AddUint64(&st.ctr.opens, 1)
	l.sendFrame(opAccept, key, nil) //nolint:errcheck
}

// deliverAccept pushes a freshly opened channel into the listener's
// accept queue; false when the queue is full or the listener closed
// under us (the recover absorbs a send on its closed accept channel).
func deliverAccept(lst *Listener, ch *tcpChan) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	select {
	case lst.accept <- ch:
		return true
	default:
		return false
	}
}

// handleResume reattaches a parked acceptor-side channel to the dialer's
// fresh link. It first waits for the channel to detach from its failed
// link: detachment happens in the old demux's teardown, after every
// already-delivered frame was routed — so acknowledging the resume only
// then guarantees old-link and new-link messages cannot reorder.
func (st *tcpState) handleResume(l *tcpLink, key chanKey) {
	st.mu.Lock()
	ch := st.accepted[key]
	st.mu.Unlock()
	if ch == nil || ch.terminal() || !ch.waitDetached(st.config().OpenTimeout) {
		l.sendFrame(opResumeFail, key, nil) //nolint:errcheck
		return
	}
	if err := l.attach(ch); err != nil {
		return // link died already; dialer will retry elsewhere
	}
	atomic.AddUint64(&st.ctr.resumes, 1)
	l.sendFrame(opResumeOK, key, nil) //nolint:errcheck
}

func (st *tcpState) forgetChan(ch *tcpChan, l *tcpLink) {
	st.mu.Lock()
	if st.accepted[ch.key] == ch {
		delete(st.accepted, ch.key)
	}
	st.mu.Unlock()
	if l != nil {
		l.remove(ch.key)
	}
}

// ---------------------------------------------------------------------
// dialing

// dialTCP opens a logical channel to a remote contact: resolve the
// contact to a wire address, reuse or dial the pooled link, then run the
// opOpen handshake.
func (n *Net) dialTCP(contact string) (Conn, error) {
	st := n.tcpInit()
	st.mu.Lock()
	resolver := st.resolver
	st.mu.Unlock()
	if resolver == nil {
		return nil, fmt.Errorf("%w: %q (no local listener and no TCP resolver)", ErrPeerUnknown, contact)
	}
	addr, err := resolver(contact)
	if err != nil {
		return nil, fmt.Errorf("evpath: resolve %q: %w", contact, err)
	}
	link, err := st.getLink(addr)
	if err != nil {
		return nil, err
	}
	key := chanKey{dialer: st.dialerID, id: st.nextChan.Add(1)}
	ch := st.newChan(key, contact, true, addr)
	p := ch.armPending()
	if err := link.attach(ch); err != nil {
		return nil, err
	}
	if err := link.sendFrame(opOpen, key, []byte(contact)); err != nil {
		link.failSendSide(err)
		return nil, fmt.Errorf("evpath: open %q: %w", contact, err)
	}
	select {
	case err := <-p:
		if err != nil {
			ch.signalEOF(err)
			link.remove(key)
			return nil, err
		}
	case <-time.After(st.config().OpenTimeout):
		ch.signalEOF(errors.New("evpath: open handshake timeout"))
		link.remove(key)
		return nil, fmt.Errorf("evpath: open %q: handshake timeout", contact)
	}
	ch.setOpened()
	atomic.AddUint64(&st.ctr.opens, 1)
	return ch, nil
}

// getLink returns the pooled link for addr, dialing (singleflight) when
// absent or failed.
func (st *tcpState) getLink(addr string) (*tcpLink, error) {
	for {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return nil, errTCPClosed
		}
		if l := st.links[addr]; l != nil && !l.isFailed() {
			st.mu.Unlock()
			return l, nil
		}
		if w := st.dialing[addr]; w != nil {
			st.mu.Unlock()
			<-w
			continue
		}
		w := make(chan struct{})
		st.dialing[addr] = w
		st.mu.Unlock()

		l, err := st.dialLink(addr)
		st.mu.Lock()
		delete(st.dialing, addr)
		if err == nil {
			st.links[addr] = l
		}
		st.mu.Unlock()
		close(w)
		if err != nil {
			return nil, err
		}
		go l.demux()
		return l, nil
	}
}

// dialLink makes the physical connection: scheme-prefixed addresses
// select TLS ("tls://") or plain TCP ("tcp://", or bare host:port).
func (st *tcpState) dialLink(addr string) (*tcpLink, error) {
	atomic.AddUint64(&st.ctr.dials, 1)
	if st.takeDialFault() {
		return nil, fmt.Errorf("injected dial failure for %s: %w", addr, ErrTransient)
	}
	cfg := st.config()
	host := addr
	useTLS := false
	switch {
	case strings.HasPrefix(addr, "tls://"):
		host, useTLS = addr[len("tls://"):], true
	case strings.HasPrefix(addr, "tcp://"):
		host = addr[len("tcp://"):]
	}
	conn, err := net.DialTimeout("tcp", host, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("evpath: dial %s: %w: %v", addr, ErrTransient, err)
	}
	if useTLS {
		st.mu.Lock()
		hook := st.clientTLS
		st.mu.Unlock()
		if hook == nil {
			conn.Close()
			return nil, fmt.Errorf("evpath: dial %s: TLS peer but no client TLS hook", addr)
		}
		tcfg := hook(addr)
		if tcfg == nil {
			conn.Close()
			return nil, fmt.Errorf("evpath: dial %s: client TLS hook returned nil config", addr)
		}
		tc := tls.Client(conn, tcfg)
		tc.SetDeadline(time.Now().Add(cfg.DialTimeout)) //nolint:errcheck
		if err := tc.Handshake(); err != nil {
			tc.Close()
			return nil, fmt.Errorf("evpath: tls handshake %s: %w: %v", addr, ErrTransient, err)
		}
		tc.SetDeadline(time.Time{}) //nolint:errcheck
		conn = tc
	}
	return st.newLink(conn, addr, true), nil
}

func (st *tcpState) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		atomic.AddUint64(&st.ctr.accepts, 1)
		l := st.newLink(conn, conn.RemoteAddr().String(), false)
		go l.demux()
	}
}

// resumeChans redials a failed link's address with exponential backoff
// and reattaches each surviving channel via the opResume handshake.
// Channels the peer no longer knows fail terminally; the rest fail after
// RedialAttempts exhausted attempts.
func (st *tcpState) resumeChans(failed *tcpLink, chans []*tcpChan) {
	defer func() {
		for _, ch := range chans {
			ch.clearResuming()
		}
	}()
	cfg := st.config()
	addr := failed.addr
	// Let the failed link finish draining inbound frames before resuming
	// anywhere else, so old-link and new-link deliveries cannot reorder.
	select {
	case <-failed.readDone:
	case <-time.After(cfg.ResumeTimeout):
	}
	pending := chans
	lastErr := error(errLinkFailed)
	backoff := cfg.RedialBase
	for attempt := 0; attempt < cfg.RedialAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > cfg.RedialMax {
				backoff = cfg.RedialMax
			}
		}
		if st.isClosed() {
			lastErr = errTCPClosed
			break
		}
		atomic.AddUint64(&st.ctr.redials, 1)
		link, err := st.getLink(addr)
		if err != nil {
			lastErr = err
			continue
		}
		var still []*tcpChan
		for _, ch := range pending {
			if ch.terminal() {
				continue
			}
			switch err := st.resumeOne(link, ch); {
			case err == nil:
				atomic.AddUint64(&st.ctr.resumes, 1)
			case errors.Is(err, errResumeRejected):
				ch.signalEOF(err)
			default:
				lastErr = err
				still = append(still, ch)
			}
		}
		pending = still
	}
	for _, ch := range pending {
		ch.signalEOF(fmt.Errorf("evpath: resume %s at %s: %w (last: %v)",
			ch.contact, addr, ErrTransient, lastErr))
	}
}

func (st *tcpState) resumeOne(link *tcpLink, ch *tcpChan) error {
	p := ch.armPending()
	if err := link.attach(ch); err != nil {
		return err
	}
	if err := link.sendFrame(opResume, ch.key, nil); err != nil {
		link.failSendSide(err)
		return err
	}
	select {
	case err := <-p:
		return err
	case <-time.After(st.config().OpenTimeout):
		return errors.New("evpath: resume handshake timeout")
	}
}

// ---------------------------------------------------------------------
// logical channels

// tcpChan is one logical Conn multiplexed on a link. It survives link
// failure: detached on the dialer side it waits for its resumer, on the
// acceptor side for the peer's opResume (bounded by ResumeTimeout).
type tcpChan struct {
	st      *tcpState
	key     chanKey
	contact string
	dialer  bool
	addr    string // redial target (dialer side)

	inbox chan []byte
	eof   chan struct{}

	mu          sync.Mutex
	cond        *sync.Cond
	link        *tcpLink
	pending     chan error // in-flight open/resume handshake response
	opened      bool       // open handshake completed (resume-eligible)
	resuming    bool
	localClosed bool
	done        bool // eof closed
	err         error
	resumeTimer *time.Timer
}

func (st *tcpState) newChan(key chanKey, contact string, dialer bool, addr string) *tcpChan {
	c := &tcpChan{
		st: st, key: key, contact: contact, dialer: dialer, addr: addr,
		inbox: make(chan []byte, st.config().InboxDepth),
		eof:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *tcpChan) Transport() string { return "tcp" }

// WireOverhead implements WireConn: per-message framing bytes.
func (c *tcpChan) WireOverhead() int { return FrameOverhead }

func (c *tcpChan) setLink(l *tcpLink) {
	c.mu.Lock()
	c.link = l
	if c.resumeTimer != nil {
		c.resumeTimer.Stop()
		c.resumeTimer = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// detach clears the channel's link if it still points at from; parked
// acceptor-side channels arm the resume deadline.
func (c *tcpChan) detach(from *tcpLink) {
	var armTimer bool
	c.mu.Lock()
	if c.link == from {
		c.link = nil
		c.cond.Broadcast()
		armTimer = !c.dialer && !c.done && !c.localClosed && c.resumeTimer == nil
	}
	c.mu.Unlock()
	if !armTimer {
		return
	}
	d := c.st.config().ResumeTimeout
	t := time.AfterFunc(d, func() {
		c.signalEOF(fmt.Errorf("evpath: channel %s: peer did not resume within %v", c.contact, d))
		c.st.forgetChan(c, nil)
	})
	c.mu.Lock()
	if c.link == nil && !c.done && !c.localClosed {
		c.resumeTimer = t
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	t.Stop()
}

func (c *tcpChan) setOpened() {
	c.mu.Lock()
	c.opened = true
	c.mu.Unlock()
}

func (c *tcpChan) isOpened() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opened
}

func (c *tcpChan) markResuming() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resuming {
		return false
	}
	c.resuming = true
	return true
}

func (c *tcpChan) clearResuming() {
	c.mu.Lock()
	c.resuming = false
	c.mu.Unlock()
}

func (c *tcpChan) terminal() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done || c.localClosed
}

// waitDetached blocks up to d for the channel to leave its current link
// (true once detached or never attached; false on timeout or terminal).
func (c *tcpChan) waitDetached(d time.Duration) bool {
	deadline := time.Now().Add(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.done || c.localClosed {
			return false
		}
		if c.link == nil {
			return true
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.AfterFunc(remain, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		c.cond.Wait()
		t.Stop()
	}
}

func (c *tcpChan) armPending() chan error {
	c.mu.Lock()
	p := make(chan error, 1)
	c.pending = p
	c.mu.Unlock()
	return p
}

func (c *tcpChan) deliverPending(err error) {
	c.mu.Lock()
	p := c.pending
	c.pending = nil
	c.mu.Unlock()
	if p != nil {
		p <- err
	}
}

// signalEOF marks the channel as delivering no further data: Recv drains
// the inbox then reports err (io.EOF when nil), Send waiters wake with
// the terminal error.
func (c *tcpChan) signalEOF(err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.err = err
	if c.resumeTimer != nil {
		c.resumeTimer.Stop()
		c.resumeTimer = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.eof)
}

// waitLink blocks until the channel is attached to a live link, the
// channel terminates, or it is closed locally.
func (c *tcpChan) waitLink() (*tcpLink, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.localClosed {
			return nil, io.ErrClosedPipe
		}
		if c.done {
			if c.err != nil {
				return nil, c.err
			}
			return nil, io.ErrClosedPipe
		}
		if l := c.link; l != nil && !l.isFailed() {
			return l, nil
		}
		c.cond.Wait()
	}
}

// Send delivers one message, transparently riding out link failures: a
// failed write detaches the channel, the resumer redials, and the same
// message is retried on the fresh link (it was never delivered — a
// write either errors or is fully accepted). Injected faults hook in
// here: latency sleeps, and the armed disconnect half-closes the link
// *before* writing, so the retry path is provably lossless.
func (c *tcpChan) Send(msg []byte) error {
	st := c.st
	if mf := st.maxFrame(); len(msg) > mf {
		return fmt.Errorf("evpath: send %d bytes exceeds max frame %d: %w", len(msg), mf, ErrFrameTooLarge)
	}
	for {
		l, err := c.waitLink()
		if err != nil {
			return err
		}
		if d := st.sendLatency(); d > 0 {
			time.Sleep(d)
		}
		if st.takeDrop() {
			l.failSendSide(fmt.Errorf("injected disconnect: %w", ErrTransient))
			continue
		}
		if err := l.sendFrame(opData, c.key, msg); err != nil {
			l.failSendSide(err)
			continue
		}
		st.bumpTX(len(msg) + FrameOverhead)
		st.record(flight.KindSend, "tcp.send", c.contact, len(msg)+FrameOverhead)
		return nil
	}
}

// Recv blocks for the next message; after the peer closes (or the
// channel fails terminally) it drains buffered messages, then reports
// io.EOF (clean close) or the terminal error.
func (c *tcpChan) Recv() ([]byte, error) {
	select {
	case m := <-c.inbox:
		return m, nil
	case <-c.eof:
		select {
		case m := <-c.inbox:
			return m, nil
		default:
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
}

// Close shuts the channel down both ways: a best-effort opClose tells
// the peer (its Recv drains then sees io.EOF), local waiters wake, and
// the channel leaves the resume tables.
func (c *tcpChan) Close() error {
	c.mu.Lock()
	if c.localClosed {
		c.mu.Unlock()
		return nil
	}
	c.localClosed = true
	l := c.link
	c.cond.Broadcast()
	c.mu.Unlock()
	if l != nil {
		l.sendFrame(opClose, c.key, nil) //nolint:errcheck
	}
	c.signalEOF(nil)
	c.st.forgetChan(c, l)
	return nil
}

package evpath

import (
	"errors"
	"testing"
)

func TestInjectFaultsSchedule(t *testing.T) {
	n := NewNet(nil)
	l, _ := n.Listen("svc")
	raw, err := n.Dial("svc", ChanTransport, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := l.Accept()
	c := InjectFaults(raw, 3)

	var faults, oks int
	for i := 0; i < 9; i++ {
		if err := c.Send([]byte{byte(i)}); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("send %d: unexpected error %v", i, err)
			}
			faults++
		} else {
			oks++
		}
	}
	if faults != 3 || oks != 6 {
		t.Fatalf("faults=%d oks=%d, want 3/6", faults, oks)
	}
	if FaultCount(c) != 3 {
		t.Fatalf("FaultCount = %d", FaultCount(c))
	}
	// Only the successful sends were delivered.
	for i := 0; i < oks; i++ {
		if _, err := peer.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	c.Close()
}

func TestInjectFaultsPassthrough(t *testing.T) {
	n := NewNet(nil)
	l, _ := n.Listen("svc2")
	raw, _ := n.Dial("svc2", ChanTransport, 0, 0)
	l.Accept()
	if got := InjectFaults(raw, 1); got != raw {
		t.Fatal("failEvery<2 must return the conn unchanged")
	}
	if got := InjectFaults(raw, 0); got != raw {
		t.Fatal("failEvery=0 must return the conn unchanged")
	}
	if FaultCount(raw) != 0 {
		t.Fatal("FaultCount on a plain conn must be 0")
	}
	raw.Close()
}

func TestInjectFaultsRecvUnaffected(t *testing.T) {
	n := NewNet(nil)
	l, _ := n.Listen("svc3")
	a, _ := n.Dial("svc3", ChanTransport, 0, 0)
	b, _ := l.Accept()
	fb := InjectFaults(b, 2)
	for i := 0; i < 8; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		msg, err := fb.Recv()
		if err != nil || msg[0] != byte(i) {
			t.Fatalf("recv %d faulted: %v", i, err)
		}
	}
	a.Close()
}

package evpath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Event is the unit flowing through a stone graph: typed metadata plus an
// opaque bulk payload (the simulation data itself is never re-marshaled
// field by field — only its descriptive metadata is).
type Event struct {
	Meta Record
	Data []byte
}

// EncodeEvent frames an event for the wire: uvarint meta length, encoded
// meta, then raw data.
func EncodeEvent(ev *Event) ([]byte, error) {
	meta, err := Encode(ev.Meta)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(meta)+len(ev.Data)+10)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = append(buf, ev.Data...)
	return buf, nil
}

// DecodeEvent parses a framed event.
func DecodeEvent(buf []byte) (*Event, error) {
	n, adv := binary.Uvarint(buf)
	if adv <= 0 || adv+int(n) > len(buf) {
		return nil, ErrCorrupt
	}
	meta, err := Decode(buf[adv : adv+int(n)])
	if err != nil {
		return nil, err
	}
	return &Event{Meta: meta, Data: buf[adv+int(n):]}, nil
}

// Stone is a vertex in the EVPath dataflow graph. Events submitted to a
// stone are processed and forwarded according to its kind.
type Stone interface {
	Submit(ev *Event) error
}

// FilterFunc transforms an event; returning nil drops it. Data
// conditioning plug-ins are installed as filter functions.
type FilterFunc func(ev *Event) (*Event, error)

// FilterStone applies a (swappable) filter and forwards survivors. The
// filter can be replaced at runtime, which is how D.C. plug-in migration
// installs or removes a codelet in a running transport path.
type FilterStone struct {
	mu   sync.RWMutex
	fn   FilterFunc
	next Stone
}

// NewFilterStone creates a filter stone feeding next. A nil fn passes
// events through unchanged.
func NewFilterStone(fn FilterFunc, next Stone) *FilterStone {
	return &FilterStone{fn: fn, next: next}
}

// SetFilter swaps the filter function at runtime.
func (s *FilterStone) SetFilter(fn FilterFunc) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Submit runs the filter and forwards the result.
func (s *FilterStone) Submit(ev *Event) error {
	s.mu.RLock()
	fn := s.fn
	s.mu.RUnlock()
	if fn != nil {
		out, err := fn(ev)
		if err != nil {
			return err
		}
		if out == nil {
			return nil // dropped
		}
		ev = out
	}
	if s.next == nil {
		return nil
	}
	return s.next.Submit(ev)
}

// TerminalStone hands events to a local handler (the analytics sink).
type TerminalStone struct {
	Handler func(ev *Event) error
}

// Submit invokes the handler.
func (s *TerminalStone) Submit(ev *Event) error {
	if s.Handler == nil {
		return nil
	}
	return s.Handler(ev)
}

// BridgeStone marshals events onto a connection (the transport edge of
// the graph).
type BridgeStone struct {
	Conn Conn
}

// Submit frames and sends the event.
func (s *BridgeStone) Submit(ev *Event) error {
	buf, err := EncodeEvent(ev)
	if err != nil {
		return err
	}
	return s.Conn.Send(buf)
}

// SplitStone forwards each event to every output (fan-out).
type SplitStone struct {
	Outputs []Stone
}

// Submit fans the event out; the first error aborts.
func (s *SplitStone) Submit(ev *Event) error {
	for i, out := range s.Outputs {
		if err := out.Submit(ev); err != nil {
			return fmt.Errorf("evpath: split output %d: %w", i, err)
		}
	}
	return nil
}

// PumpConn reads framed events from a connection and submits them to a
// stone until EOF or error; it is the receive loop a bridge's peer runs.
// It returns nil on clean EOF.
func PumpConn(c Conn, dst Stone) error {
	for {
		buf, err := c.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		ev, err := DecodeEvent(buf)
		if err != nil {
			return err
		}
		if err := dst.Submit(ev); err != nil {
			return err
		}
	}
}

package flight

// Cross-process journal stitching. Each daemon's journal names events
// with its own sequential IDs and rank numbers, so merging dumps from
// several processes needs two remappings before Analyze can extract a
// critical path that crosses process boundaries:
//
//   - event IDs (and the Parent links that reference them) are offset
//     per dump so they stay unique and intra-process causality survives;
//   - ranks are spread into per-process lanes (proc index × RankStride +
//     rank), so the analyzer's last-event-on-rank fallback never infers
//     a spurious program-order edge between two different processes'
//     rank 0.
//
// What deliberately survives untouched is the Channel string: the data
// plane stamps "w<M>>r<N>" on both the writer-side send event and the
// reader-side recv event, so after the merge the analyzer's
// recv-matches-last-send-on-channel inference joins the two processes'
// streams at exactly the transport seam — which is how a step's
// critical path comes to contain a tcp edge whose endpoints live in
// different processes.

// RankStride is the lane width of the per-process rank remapping; real
// groups have far fewer ranks per process.
const RankStride = 1 << 16

// LaneOf reports which merged dump (by position) a stitched event's
// rank belongs to.
func LaneOf(rank int) int { return rank / RankStride }

// MergeDumps merges per-process journal dumps into one event stream
// suitable for Analyze: IDs and parent links are offset per dump, ranks
// move into per-process lanes, and channels/scopes/timestamps pass
// through unchanged (timestamps are assumed comparable — same process,
// or clock-synchronized nodes; skew surfaces as wait edges). The input
// dumps are not modified. Order of dumps decides lane numbering.
func MergeDumps(dumps ...JournalDump) []Event {
	total := 0
	for i := range dumps {
		total += len(dumps[i].Events)
	}
	out := make([]Event, 0, total)
	var base EventID
	for di := range dumps {
		var maxID EventID
		for _, ev := range dumps[di].Events {
			if ev.ID > maxID {
				maxID = ev.ID
			}
			ev.ID += base
			if ev.Parent != 0 {
				ev.Parent += base
			}
			ev.Rank += di * RankStride
			out = append(out, ev)
		}
		base += maxID
	}
	return out
}

// SplitScopes partitions a merged event stream by Scope, dropping
// un-scoped events (they belong to no stream and would cross-link
// unrelated tenants' steps). Analyze each partition separately: step
// numbers are only meaningful within one tenant-qualified stream.
func SplitScopes(evs []Event) map[string][]Event {
	out := make(map[string][]Event)
	for _, ev := range evs {
		if ev.Scope == "" {
			continue
		}
		out[ev.Scope] = append(out[ev.Scope], ev)
	}
	return out
}

// CrossesProcess reports whether a step path contains edges from at
// least two different merged-dump lanes — i.e. its critical path spans
// a process boundary.
func CrossesProcess(sp *StepPath) bool {
	if sp == nil || len(sp.Edges) == 0 {
		return false
	}
	first := LaneOf(sp.Edges[0].Rank)
	for _, e := range sp.Edges[1:] {
		if LaneOf(e.Rank) != first {
			return true
		}
	}
	return false
}

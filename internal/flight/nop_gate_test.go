//go:build !race

package flight

import (
	"encoding/json"
	"os"
	"testing"
)

// TestFlightNopOverheadBudget is the CI regression gate for the
// recorder-off path: Record/Begin/End on a nil *Journal must cost no
// more than the budget in BENCH_flight.json (a few ns — one nil branch
// per call) and zero allocations, mirroring the monitor's
// TestNopOverheadBudget. Excluded under -race (instrumented builds time
// nothing meaningful).
func TestFlightNopOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("../../BENCH_flight.json")
	if err != nil {
		t.Fatalf("BENCH_flight.json missing (run `make critpath` to record): %v", err)
	}
	var budget struct {
		NopJournalBudgetNs float64 `json:"nop_journal_budget_ns"`
	}
	if err := json.Unmarshal(blob, &budget); err != nil {
		t.Fatalf("BENCH_flight.json: %v", err)
	}
	if budget.NopJournalBudgetNs <= 0 {
		t.Fatal("BENCH_flight.json has no nop_journal_budget_ns")
	}

	base := testing.Benchmark(BenchmarkJournalBaseline)
	nop := testing.Benchmark(BenchmarkJournalNop)
	overhead := float64(nop.NsPerOp()) - float64(base.NsPerOp())
	if overhead < 0 {
		overhead = 0 // within noise: the nop path measured faster
	}
	t.Logf("baseline %dns/op, nop journal %dns/op, overhead %.1fns (budget %.1fns)",
		base.NsPerOp(), nop.NsPerOp(), overhead, budget.NopJournalBudgetNs)
	if overhead > budget.NopJournalBudgetNs {
		t.Fatalf("nil-journal overhead %.1fns/op exceeds budget %.1fns/op (BENCH_flight.json)",
			overhead, budget.NopJournalBudgetNs)
	}
	if allocs := nop.AllocsPerOp(); allocs != 0 {
		t.Fatalf("nil-journal path allocates (%d allocs/op)", allocs)
	}
}

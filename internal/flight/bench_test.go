package flight

import "testing"

// The recorder-off fast path: a nil *Journal must cost ~nothing so data
// paths can stay instrumented in production builds.
// BenchmarkJournalNop vs. BenchmarkJournalBaseline is the comparison
// `make ci` gates on (nop_gate_test.go enforces the budget recorded in
// BENCH_flight.json).

var sinkU uint64

// benchWork is the stand-in for "uninstrumented code": enough real work
// that the comparison is not 0ns-vs-0ns compiler folding.
func benchWork(i int) uint64 {
	return uint64(i)*2654435761 ^ sinkU
}

func BenchmarkJournalBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkU = benchWork(i)
	}
}

func BenchmarkJournalNop(b *testing.B) {
	var j *Journal // disabled recording
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := j.Record(Event{Kind: KindCompute, Point: "writer.pack", Step: int64(i)})
		sinkU = benchWork(i)
		j.End(id)
	}
}

func BenchmarkJournalRecorded(b *testing.B) {
	j := NewJournal(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Record(Event{Kind: KindCompute, Point: "writer.pack", Step: int64(i), T: float64(i)})
		sinkU = benchWork(i)
	}
}

package flight

import (
	"fmt"
	"math"
)

// Event-stream hashing and replay divergence detection.
//
// A deterministic recorder (the virtual-time coupled model: a
// single-threaded discrete-event loop) must produce the exact same event
// stream from the same configuration and seed. We fold every field of
// every event into an FNV-1a fingerprint; two runs diverge iff their
// fingerprints differ. Diff then localises the first differing event so
// the replay driver can report *where* determinism broke, not just that
// it did.

// streamHash is FNV-1a over a canonical little-endian encoding of the
// event stream. FNV is stdlib-free-of-ceremony, stable across platforms,
// and plenty for divergence detection (this is an integrity check, not
// an adversarial MAC).
type streamHash struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newStreamHash() *streamHash { return &streamHash{h: fnvOffset} }

func (s *streamHash) byte(b byte) {
	s.h ^= uint64(b)
	s.h *= fnvPrime
}

func (s *streamHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		s.byte(byte(v >> (8 * i)))
	}
}

func (s *streamHash) f64(v float64) {
	// Canonicalise the two zero bit patterns; NaN never reaches the
	// journal (Record scrubs it).
	if v == 0 {
		v = 0
	}
	s.u64(math.Float64bits(v))
}

func (s *streamHash) str(v string) {
	s.u64(uint64(len(v)))
	for i := 0; i < len(v); i++ {
		s.byte(v[i])
	}
}

func (s *streamHash) event(e *Event) {
	s.u64(uint64(e.ID))
	s.u64(uint64(e.Parent))
	s.byte(byte(e.Kind))
	s.str(e.Point)
	s.str(e.Channel)
	s.f64(e.T)
	s.f64(e.Dur)
	s.u64(uint64(int64(e.Rank)))
	s.u64(uint64(e.Step))
	s.u64(e.Epoch)
	s.u64(uint64(e.Bytes))
}

func (s *streamHash) sum() uint64 { return s.h }

// HashEvents fingerprints an event slice in order. HashEvents(nil) is
// the fingerprint of the empty stream (a fixed non-zero constant, so a
// forgotten journal cannot masquerade as a matching one by both hashing
// to zero).
func HashEvents(evs []Event) uint64 {
	h := newStreamHash()
	h.u64(uint64(len(evs)))
	for i := range evs {
		h.event(&evs[i])
	}
	return h.sum()
}

// Divergence describes the first point at which two event streams
// disagree.
type Divergence struct {
	// Index is the position of the first mismatch (len of the shorter
	// stream when one is a strict prefix of the other).
	Index int
	// Field names the first differing event field ("len", "kind",
	// "point", "t", ...).
	Field string
	// A and B render the differing events (or "<missing>").
	A, B string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("replay divergence at event %d (field %s): run A %s, run B %s", d.Index, d.Field, d.A, d.B)
}

func eventString(e *Event) string {
	return fmt.Sprintf("{id=%d parent=%d %s %s ch=%q t=%.9f dur=%.9f rank=%d step=%d epoch=%d bytes=%d}",
		e.ID, e.Parent, e.Kind, e.Point, e.Channel, e.T, e.Dur, e.Rank, e.Step, e.Epoch, e.Bytes)
}

// Diff compares two event streams and reports the first divergence, or
// nil when the streams are identical.
func Diff(a, b []Event) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if f := eventFieldDiff(&a[i], &b[i]); f != "" {
			return &Divergence{Index: i, Field: f, A: eventString(&a[i]), B: eventString(&b[i])}
		}
	}
	if len(a) != len(b) {
		d := &Divergence{Index: n, Field: "len", A: "<missing>", B: "<missing>"}
		if n < len(a) {
			d.A = eventString(&a[n])
		}
		if n < len(b) {
			d.B = eventString(&b[n])
		}
		return d
	}
	return nil
}

func eventFieldDiff(a, b *Event) string {
	switch {
	case a.ID != b.ID:
		return "id"
	case a.Parent != b.Parent:
		return "parent"
	case a.Kind != b.Kind:
		return "kind"
	case a.Point != b.Point:
		return "point"
	case a.Channel != b.Channel:
		return "channel"
	case a.T != b.T:
		return "t"
	case a.Dur != b.Dur:
		return "dur"
	case a.Rank != b.Rank:
		return "rank"
	case a.Step != b.Step:
		return "step"
	case a.Epoch != b.Epoch:
		return "epoch"
	case a.Bytes != b.Bytes:
		return "bytes"
	}
	return ""
}

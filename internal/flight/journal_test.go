package flight

import (
	"strings"
	"testing"
)

type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	if id := j.Record(Event{Kind: KindSend, Point: "x"}); id != 0 {
		t.Fatalf("nil Record returned %d, want 0", id)
	}
	if id := j.Begin(Event{Kind: KindCompute}); id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	j.End(7)
	j.SetClock(nil)
	j.Reset()
	if j.Snapshot() != nil || j.Len() != 0 || j.Seen() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal should report empty state")
	}
	if j.Hash() != HashEvents(nil) {
		t.Fatal("nil journal hash should equal empty-stream hash")
	}
}

func TestRecordAssignsSequentialIDs(t *testing.T) {
	j := NewJournal(16)
	a := j.Record(Event{Kind: KindCompute, Point: "a", T: 1})
	b := j.Record(Event{Kind: KindSend, Point: "b", T: 2, Parent: a})
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d,%d, want 1,2", a, b)
	}
	evs := j.Snapshot()
	if len(evs) != 2 || evs[0].ID != 1 || evs[1].Parent != a {
		t.Fatalf("snapshot = %+v", evs)
	}
}

func TestRingBoundOverwritesOldest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Kind: KindCompute, Point: "p", T: float64(i)})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Seen() != 10 || j.Dropped() != 6 {
		t.Fatalf("Seen/Dropped = %d/%d, want 10/6", j.Seen(), j.Dropped())
	}
	evs := j.Snapshot()
	for i, ev := range evs {
		if want := float64(6 + i); ev.T != want {
			t.Fatalf("evs[%d].T = %v, want %v (oldest-first)", i, ev.T, want)
		}
	}
}

func TestBeginEndUsesInjectedClock(t *testing.T) {
	clk := &fakeClock{t: 10}
	j := NewJournal(8)
	j.SetClock(clk)
	id := j.Begin(Event{Kind: KindCompute, Point: "work", Rank: 2})
	clk.t = 12.5
	j.End(id)
	evs := j.Snapshot()
	if len(evs) != 1 || evs[0].T != 10 || evs[0].Dur != 2.5 {
		t.Fatalf("span = %+v, want T=10 Dur=2.5", evs)
	}
	// End on an overwritten event is a no-op, not a crash.
	j2 := NewJournal(2)
	j2.SetClock(clk)
	first := j2.Begin(Event{Point: "old"})
	j2.Begin(Event{Point: "x"})
	j2.Begin(Event{Point: "y"})
	j2.End(first)
}

func TestEndAfterWrapFindsLiveEvents(t *testing.T) {
	clk := &fakeClock{t: 0}
	j := NewJournal(3)
	j.SetClock(clk)
	var ids []EventID
	for i := 0; i < 5; i++ {
		clk.t = float64(i)
		ids = append(ids, j.Begin(Event{Point: "p"}))
	}
	clk.t = 100
	j.End(ids[4]) // newest, live
	j.End(ids[2]) // oldest live entry
	j.End(ids[0]) // overwritten
	evs := j.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("Len = %d", len(evs))
	}
	if evs[2].Dur != 100-4 {
		t.Fatalf("newest Dur = %v, want 96", evs[2].Dur)
	}
	if evs[0].Dur != 100-2 {
		t.Fatalf("oldest live Dur = %v, want 98", evs[0].Dur)
	}
}

func TestHashDetectsAnyFieldChange(t *testing.T) {
	base := []Event{
		{ID: 1, Kind: KindSend, Point: "send.rdma", Channel: "w0>r1", T: 1, Dur: 0.5, Rank: 0, Step: 3, Epoch: 1, Bytes: 4096},
		{ID: 2, Parent: 1, Kind: KindRecv, Point: "recv", Channel: "w0>r1", T: 1.5, Rank: 1, Step: 3, Epoch: 1},
	}
	h0 := HashEvents(base)
	if h0 == HashEvents(nil) {
		t.Fatal("non-empty stream hashed as empty")
	}
	mutations := []func(e *Event){
		func(e *Event) { e.ID++ },
		func(e *Event) { e.Parent++ },
		func(e *Event) { e.Kind = KindCompute },
		func(e *Event) { e.Point += "x" },
		func(e *Event) { e.Channel = "other" },
		func(e *Event) { e.T += 1e-9 },
		func(e *Event) { e.Dur += 1e-9 },
		func(e *Event) { e.Rank++ },
		func(e *Event) { e.Step++ },
		func(e *Event) { e.Epoch++ },
		func(e *Event) { e.Bytes++ },
	}
	for i, mut := range mutations {
		evs := append([]Event(nil), base...)
		mut(&evs[0])
		if HashEvents(evs) == h0 {
			t.Fatalf("mutation %d did not change the hash", i)
		}
	}
	// And journal hashing matches when rebuilt identically.
	j1, j2 := NewJournal(8), NewJournal(8)
	for _, ev := range base {
		e := ev
		e.ID = 0
		j1.Record(e)
		j2.Record(e)
	}
	if j1.Hash() != j2.Hash() {
		t.Fatal("identical journals hash differently")
	}
}

func TestDiffLocatesFirstMismatch(t *testing.T) {
	a := []Event{
		{ID: 1, Kind: KindCompute, Point: "sim.compute", T: 0, Dur: 1},
		{ID: 2, Kind: KindSend, Point: "sim.io", T: 1, Dur: 0.5},
	}
	b := append([]Event(nil), a...)
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical streams diverged: %v", d)
	}
	b[1].Dur = 0.75
	d := Diff(a, b)
	if d == nil || d.Index != 1 || d.Field != "dur" {
		t.Fatalf("Diff = %+v, want index 1 field dur", d)
	}
	if !strings.Contains(d.Error(), "event 1") {
		t.Fatalf("Error() = %q", d.Error())
	}
	// Prefix divergence.
	d = Diff(a, a[:1])
	if d == nil || d.Field != "len" || d.Index != 1 {
		t.Fatalf("prefix Diff = %+v", d)
	}
}

func TestResetClearsStream(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{Kind: KindCompute, Point: "a", T: 1})
	j.Reset()
	if j.Len() != 0 || j.Seen() != 0 {
		t.Fatal("Reset did not clear")
	}
	if id := j.Record(Event{Kind: KindCompute, Point: "a", T: 1}); id != 1 {
		t.Fatalf("post-Reset id = %d, want 1 (sequence restarts)", id)
	}
}

package flight

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// pipelineStep records a canonical writer→wire→reader chain for one step
// with explicit parents, offset in time, and returns the events.
func pipelineStep(j *Journal, step int64, base float64) {
	pack := j.Record(Event{Kind: KindCompute, Point: "writer.pack", Rank: 0, Step: step, T: base, Dur: 0.010})
	send := j.Record(Event{Kind: KindSend, Point: "send.rdma", Channel: "w0>r0", Rank: 0, Step: step, Parent: pack, T: base + 0.010, Dur: 0.030, Bytes: 1 << 20})
	recv := j.Record(Event{Kind: KindRecv, Point: "recv.rdma", Channel: "w0>r0", Rank: 1, Step: step, Parent: send, T: base + 0.040, Dur: 0})
	j.Record(Event{Kind: KindCompute, Point: "reader.assemble", Rank: 1, Step: step, Parent: recv, T: base + 0.040, Dur: 0.015})
}

func TestCriticalPathEdgesSumToLatency(t *testing.T) {
	j := NewJournal(64)
	for s := int64(0); s < 3; s++ {
		pipelineStep(j, s, float64(s))
	}
	an := Analyze(j.Snapshot())
	if len(an.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(an.Steps))
	}
	for _, sp := range an.Steps {
		if math.Abs(sp.EdgeSum()-sp.Latency) > 1e-12 {
			t.Fatalf("step %d: edge sum %.9f != latency %.9f", sp.Step, sp.EdgeSum(), sp.Latency)
		}
		if math.Abs(sp.Latency-0.055) > 1e-9 {
			t.Fatalf("step %d latency = %v, want 0.055", sp.Step, sp.Latency)
		}
		if sp.Dominant != "send.rdma" {
			t.Fatalf("step %d dominant = %q, want send.rdma", sp.Step, sp.Dominant)
		}
		for pt, s := range sp.Shares {
			if s <= 0 || s > 1 {
				t.Fatalf("share %s = %v out of range", pt, s)
			}
		}
	}
	if an.Dominant != "send.rdma" {
		t.Fatalf("aggregate dominant = %q", an.Dominant)
	}
	// Aggregate shares are a distribution.
	var total float64
	for _, s := range an.Shares {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("aggregate shares sum to %v, want 1", total)
	}
}

func TestCriticalPathInsertsWaitEdges(t *testing.T) {
	j := NewJournal(16)
	// Producer finishes at t=1; consumer starts at t=3 — a 2s gap that
	// must surface as wait, not vanish.
	a := j.Record(Event{Kind: KindCompute, Point: "sim.compute", Rank: 0, Step: 0, T: 0, Dur: 1})
	j.Record(Event{Kind: KindCompute, Point: "analysis", Rank: 1, Step: 0, Parent: a, T: 3, Dur: 1})
	an := Analyze(j.Snapshot())
	if len(an.Steps) != 1 {
		t.Fatalf("steps = %d", len(an.Steps))
	}
	sp := an.Steps[0]
	if math.Abs(sp.Latency-4) > 1e-12 || math.Abs(sp.EdgeSum()-4) > 1e-12 {
		t.Fatalf("latency/edges = %v/%v, want 4/4", sp.Latency, sp.EdgeSum())
	}
	if w := sp.Shares["wait"]; math.Abs(w-0.5) > 1e-9 {
		t.Fatalf("wait share = %v, want 0.5", w)
	}
}

func TestCriticalPathInfersSendRecvEdges(t *testing.T) {
	// No explicit parents: the recv should chain to the same-channel
	// send, not float free.
	evs := []Event{
		{ID: 1, Kind: KindCompute, Point: "writer.pack", Rank: 0, Step: 1, T: 0, Dur: 1},
		{ID: 2, Kind: KindSend, Point: "send.shm", Channel: "c", Rank: 0, Step: 1, T: 1, Dur: 2},
		{ID: 3, Kind: KindRecv, Point: "recv.shm", Channel: "c", Rank: 1, Step: 1, T: 3, Dur: 0},
		{ID: 4, Kind: KindCompute, Point: "reader.assemble", Rank: 1, Step: 1, T: 3, Dur: 1},
	}
	an := Analyze(evs)
	sp := an.Steps[0]
	if math.Abs(sp.Latency-4) > 1e-12 || math.Abs(sp.EdgeSum()-sp.Latency) > 1e-12 {
		t.Fatalf("latency %v edges %v", sp.Latency, sp.EdgeSum())
	}
	points := map[string]bool{}
	for _, e := range sp.Edges {
		points[e.Point] = true
	}
	for _, want := range []string{"writer.pack", "send.shm", "reader.assemble"} {
		if !points[want] {
			t.Fatalf("critical path %v missing %s", sp.Edges, want)
		}
	}
}

func TestCriticalPathOverlapDoesNotDoubleCount(t *testing.T) {
	// Parent and child overlap: child starts before parent finishes.
	evs := []Event{
		{ID: 1, Kind: KindCompute, Point: "a", Rank: 0, Step: 0, T: 0, Dur: 3},
		{ID: 2, Parent: 1, Kind: KindCompute, Point: "b", Rank: 0, Step: 0, T: 2, Dur: 3},
	}
	an := Analyze(evs)
	sp := an.Steps[0]
	if math.Abs(sp.Latency-5) > 1e-12 || math.Abs(sp.EdgeSum()-5) > 1e-12 {
		t.Fatalf("latency %v edgesum %v, want 5/5", sp.Latency, sp.EdgeSum())
	}
}

func TestAnalyzeEmptyAndExports(t *testing.T) {
	an := Analyze(nil)
	if len(an.Steps) != 0 || an.Dominant != "" {
		t.Fatalf("empty analysis = %+v", an)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, an); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no step events") {
		t.Fatalf("empty report = %q", buf.String())
	}

	j := NewJournal(32)
	pipelineStep(j, 0, 0)
	an = Analyze(j.Snapshot())
	buf.Reset()
	if err := WriteReport(&buf, an); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dominant: send.rdma", "writer.pack", "reader.assemble"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := WriteAnalysisJSON(&buf, an); err != nil {
		t.Fatal(err)
	}
	var round Analysis
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("critpath JSON does not round-trip: %v", err)
	}
	if round.Dominant != an.Dominant || len(round.Steps) != len(an.Steps) {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
}

func TestChromeTraceHasFlowArrows(t *testing.T) {
	j := NewJournal(32)
	pipelineStep(j, 0, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, j); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	var slices, starts, finishes int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "s":
			starts++
		case "f":
			finishes++
		}
	}
	if slices == 0 {
		t.Fatal("no slices in trace")
	}
	if starts == 0 || starts != finishes {
		t.Fatalf("flow arrows s=%d f=%d, want matched nonzero pairs", starts, finishes)
	}
}

func TestJournalDumpShape(t *testing.T) {
	j := NewJournal(8)
	pipelineStep(j, 0, 0)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, j); err != nil {
		t.Fatal(err)
	}
	var d JournalDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Seen != 4 || len(d.Events) != 4 || d.Hash == "" {
		t.Fatalf("dump = seen %d events %d hash %q", d.Seen, len(d.Events), d.Hash)
	}
}

// Package flight is FlexIO's causal flight recorder: a bounded,
// allocation-lean journal of every causally relevant runtime event —
// sends and receives, queue admissions, compute stages, blocks and wakes
// — tagged with {time, rank, step, epoch, channel, causal parent}.
//
// Three consumers sit on top of the journal:
//
//   - critpath.go builds the happens-before graph of a step's events and
//     extracts the critical path, attributing the step's latency to its
//     dominating edge chain (e.g. writer.pack → rdma.put →
//     reader.assemble) so placement decisions can react to *where* time
//     goes, not just how much;
//   - replay.go hashes the event stream and diffs two journals, turning
//     the repo's virtual-time determinism claim into a tested invariant
//     (two identically-seeded runs must produce byte-identical streams);
//   - export.go renders the journal as JSON, as Chrome trace-event flow
//     arrows across ranks, and as a human-readable critical-path report.
//
// Timestamps come from the recorder: virtual-time simulations record
// modeled times directly (simnet.Engine satisfies Clock), wall-clock
// recorders use Begin/End on the journal's injected clock. Replay
// hashing is meaningful only for deterministic (single-threaded
// discrete-event) recorders; multi-goroutine core streams use the
// journal for critical-path analysis and trace export, where ring order
// does not matter.
//
// A nil *Journal is a valid no-op recorder: every method is nil-safe and
// the disabled path costs one branch (benchmarked and CI-gated, like the
// monitor's nil-span path).
package flight

import (
	"math"
	"os"
	"sync"
	"time"
)

// Kind classifies a journal event in the causal model.
type Kind uint8

const (
	// KindCompute is a processing stage (pack, assemble, plug-in, sim
	// compute).
	KindCompute Kind = iota + 1
	// KindSend is data leaving a rank or stage (transport send, RDMA
	// put, flow injection).
	KindSend
	// KindRecv is data arriving (transport recv, RDMA get completion,
	// flow delivery).
	KindRecv
	// KindEnqueue is admission into a bounded queue or buffer pool.
	KindEnqueue
	// KindDequeue is removal from a queue or pool.
	KindDequeue
	// KindBlock is a rank parking (queue full, waiting on data).
	KindBlock
	// KindWake is a parked rank resuming.
	KindWake
	// KindMark is a zero-or-known-duration annotation (epoch bump,
	// reconfiguration seam).
	KindMark
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindEnqueue:
		return "enqueue"
	case KindDequeue:
		return "dequeue"
	case KindBlock:
		return "block"
	case KindWake:
		return "wake"
	case KindMark:
		return "mark"
	}
	return "unknown"
}

// EventID names an event within one journal; IDs are assigned
// sequentially from 1, so for a deterministic recorder they are part of
// the replayable stream. 0 means "no event" (absent parent, nop journal).
type EventID uint64

// Event is one journal entry. Events are small value types; the journal
// stores them in a bounded ring without per-event allocation.
type Event struct {
	ID     EventID `json:"id"`
	Parent EventID `json:"parent,omitempty"` // causal parent (0 = root)
	Kind   Kind    `json:"kind"`
	// Point is the stage name, matching the monitor's measurement points
	// where both exist ("writer.pack", "send.rdma", "sim.compute", ...).
	Point string `json:"point"`
	// Channel names the resource the event crossed (a transport pair,
	// a fluid-flow resource set, a queue) for send/recv matching. The
	// data plane uses "w<M>>r<N>" on both the send and recv side of a
	// writer→reader transfer, so the pairing survives a cross-process
	// journal merge where event IDs are remapped.
	Channel string `json:"channel,omitempty"`
	// Scope is the tenant-qualified stream key the event belongs to
	// (directory.Qualify grammar). It partitions merged multi-tenant
	// journals before critical-path analysis — two tenants' step 3 must
	// never share a happens-before graph. Not part of the replay hash.
	Scope string  `json:"scope,omitempty"`
	T     float64 `json:"t"`             // seconds on the recorder's clock
	Dur   float64 `json:"dur,omitempty"` // stage duration (0 = instant)
	Rank  int     `json:"rank"`
	Step  int64   `json:"step"`
	Epoch uint64  `json:"epoch,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
}

// finish is the event's completion time.
func (e Event) finish() float64 { return e.T + e.Dur }

// Clock supplies timestamps in seconds; simnet.Engine satisfies it, as
// does monitor's wall clock. Only differences and ordering are
// interpreted.
type Clock interface {
	Now() float64
}

// journalStart anchors the default wall clock so journals and monitors
// created anywhere in the process share one comparable time base shape
// (monotonic seconds since process start).
var journalStart = time.Now()

type wallClock struct{}

func (wallClock) Now() float64 { return time.Since(journalStart).Seconds() }

// DefaultCapacity bounds the journal ring when NewJournal is given a
// non-positive capacity. Sized so a full switched coupled run (hundreds
// of steps times a handful of events each) never wraps.
const DefaultCapacity = 1 << 16

// Journal is the bounded event recorder. All methods are safe for
// concurrent use and nil-safe; a nil *Journal is the disabled fast path.
type Journal struct {
	mu     sync.Mutex
	clock  Clock
	daemon string  // SetIdentity: owning daemon id
	node   string  // SetIdentity: host/node name
	pid    int     // SetIdentity: recording process id
	events []Event // ring, oldest at next once saturated
	cap    int
	next   int
	seen   int64
	nextID EventID
}

// NewJournal creates a journal bounded to capacity events (<= 0 selects
// DefaultCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{cap: capacity}
}

// SetClock injects the timestamp source used by Begin/End and Now; nil
// restores the wall clock. Virtual-time recorders either inject their
// simnet engine or pass explicit times to Record.
func (j *Journal) SetClock(c Clock) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.clock = c
	j.mu.Unlock()
}

// SetIdentity stamps the journal with the recording process's identity
// (daemon id and node name; the pid is taken from the process). The
// identity travels on every Dump header, so merged cross-process
// journals stay attributable. Nil-safe; an empty node falls back to the
// host name.
func (j *Journal) SetIdentity(daemon, node string) {
	if j == nil {
		return
	}
	if node == "" {
		node, _ = os.Hostname() //nolint:errcheck // "" is an acceptable fallback
	}
	j.mu.Lock()
	j.daemon = daemon
	if node != "" {
		j.node = node
	}
	j.pid = os.Getpid()
	j.mu.Unlock()
}

// Identity reads back the stamped identity (zero values on a nil or
// unstamped journal).
func (j *Journal) Identity() (daemon, node string, pid int) {
	if j == nil {
		return "", "", 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.daemon, j.node, j.pid
}

// Now reads the journal's clock (wall clock when unset). Returns 0 on a
// nil journal.
func (j *Journal) Now() float64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	c := j.clock
	j.mu.Unlock()
	if c == nil {
		return wallClock{}.Now()
	}
	return c.Now()
}

// Record appends an event with the caller's timestamps (the virtual-time
// path: modeled times are passed in, not measured). The ID field is
// assigned; the assigned ID is returned for parent links. A nil journal
// records nothing and returns 0.
func (j *Journal) Record(ev Event) EventID {
	if j == nil {
		return 0
	}
	if math.IsNaN(ev.T) {
		ev.T = 0
	}
	j.mu.Lock()
	j.nextID++
	ev.ID = j.nextID
	j.appendLocked(ev)
	j.mu.Unlock()
	return ev.ID
}

// Begin records an event stamped at the journal's clock with zero
// duration, returning its ID; End later fills the duration in. This is
// the wall-clock path used by the live data plane.
func (j *Journal) Begin(ev Event) EventID {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	c := j.clock
	if c == nil {
		c = wallClock{}
	}
	ev.T = c.Now()
	j.nextID++
	ev.ID = j.nextID
	j.appendLocked(ev)
	j.mu.Unlock()
	return ev.ID
}

// End closes an event opened with Begin: its duration becomes now - T.
// A no-op if the event has already been overwritten by the ring bound
// (or on a nil journal / zero id).
func (j *Journal) End(id EventID) {
	if j == nil || id == 0 {
		return
	}
	j.mu.Lock()
	if ev := j.findLocked(id); ev != nil {
		c := j.clock
		if c == nil {
			c = wallClock{}
		}
		if d := c.Now() - ev.T; d > 0 {
			ev.Dur = d
		}
	}
	j.mu.Unlock()
}

// appendLocked pushes into the bounded ring. Caller holds j.mu.
func (j *Journal) appendLocked(ev Event) {
	if len(j.events) < j.cap {
		j.events = append(j.events, ev)
	} else {
		j.events[j.next] = ev
		j.next = (j.next + 1) % j.cap
	}
	j.seen++
}

// findLocked locates a live ring entry by ID using sequential-ID math
// (no per-event index). Caller holds j.mu.
func (j *Journal) findLocked(id EventID) *Event {
	if id == 0 || id > j.nextID {
		return nil
	}
	age := int64(j.nextID - id) // 0 = newest
	if age >= int64(len(j.events)) {
		return nil // overwritten
	}
	// Newest entry sits just before next (once saturated) or at the end.
	var idx int
	if len(j.events) < j.cap {
		idx = len(j.events) - 1 - int(age)
	} else {
		idx = (j.next - 1 - int(age) + 2*j.cap) % j.cap
	}
	if idx < 0 {
		return nil
	}
	return &j.events[idx]
}

// Snapshot copies the ring out oldest-first. Nil journals snapshot
// empty.
func (j *Journal) Snapshot() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) == 0 {
		return nil
	}
	out := make([]Event, 0, len(j.events))
	out = append(out, j.events[j.next:]...)
	out = append(out, j.events[:j.next]...)
	return out
}

// Len reports the number of buffered events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Seen reports the total number of events ever recorded.
func (j *Journal) Seen() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seen
}

// Dropped reports how many events the ring bound has overwritten.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seen - int64(len(j.events))
}

// Reset clears the journal (events, counters and ID sequence), keeping
// capacity and clock.
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events = j.events[:0]
	j.next = 0
	j.seen = 0
	j.nextID = 0
	j.mu.Unlock()
}

// Hash folds the journal's buffered event stream (plus the total-seen
// count, so a wrapped ring cannot collide with an unwrapped one) into
// the replay fingerprint. See HashEvents.
func (j *Journal) Hash() uint64 {
	if j == nil {
		return HashEvents(nil)
	}
	j.mu.Lock()
	seen := j.seen
	evs := make([]Event, 0, len(j.events))
	evs = append(evs, j.events[j.next:]...)
	evs = append(evs, j.events[:j.next]...)
	j.mu.Unlock()
	h := newStreamHash()
	h.u64(uint64(seen))
	for i := range evs {
		h.event(&evs[i])
	}
	return h.sum()
}

package flight

import (
	"fmt"
	"sort"
)

// Critical-path extraction over the happens-before graph.
//
// Events within one step form a DAG: explicit Parent links are the
// primary edges (the recorder threads them through flush → pack → send →
// assemble → plugin); where a parent is absent we infer edges from the
// causal model — a Recv happens-after the Send on the same channel, and
// events on one rank happen in program order. The critical path of a
// step is the chain that ends at the step's last-finishing event and,
// walking parents backward, covers the largest span of the step. Gaps
// between a parent's finish and a child's start become explicit "wait"
// edges, so the sum of edge durations always equals the path envelope
// (finish − start) exactly; against the monitor's measured step span the
// envelope agrees to within the recording skew (≡ 0 in virtual time),
// which is what `make critpath` gates at 5%.

// Edge is one hop of a step's critical path.
type Edge struct {
	// Point is the stage the time is attributed to ("writer.pack",
	// "send.rdma", "wait", ...).
	Point string  `json:"point"`
	Kind  string  `json:"kind"`
	Rank  int     `json:"rank"`
	Start float64 `json:"start"`
	Dur   float64 `json:"dur"`
	Bytes int64   `json:"bytes,omitempty"`
}

// StepPath is the critical path of one step.
type StepPath struct {
	Step    int64   `json:"step"`
	Epoch   uint64  `json:"epoch,omitempty"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Latency float64 `json:"latency"` // Finish - Start
	// Edges is the dominating chain, oldest first; durations sum to
	// Latency by construction (gaps appear as "wait" edges).
	Edges []Edge `json:"edges"`
	// Shares attributes Latency fractions to each point on the chain.
	Shares map[string]float64 `json:"shares"`
	// Dominant is the point with the largest share.
	Dominant string `json:"dominant"`
}

// Analysis aggregates critical paths across steps.
type Analysis struct {
	Steps []StepPath `json:"steps"`
	// Shares is the latency-weighted average of per-step shares: the
	// fraction of total critical-path time each point accounts for.
	Shares map[string]float64 `json:"shares"`
	// Dominant is the point with the largest aggregate share.
	Dominant string `json:"dominant"`
	// TotalLatency sums step latencies (seconds of critical path).
	TotalLatency float64 `json:"total_latency"`
}

// Analyze groups events by step, extracts each step's critical path and
// aggregates stage shares. Events with Step < 0 (un-stepped marks) are
// ignored. The input order does not matter.
func Analyze(evs []Event) Analysis {
	bySteps := map[int64][]Event{}
	for _, ev := range evs {
		if ev.Step < 0 || ev.Kind == KindMark && ev.Dur == 0 {
			continue
		}
		bySteps[ev.Step] = append(bySteps[ev.Step], ev)
	}
	steps := make([]int64, 0, len(bySteps))
	for s := range bySteps {
		steps = append(steps, s)
	}
	sort.Slice(steps, func(i, k int) bool { return steps[i] < steps[k] })

	an := Analysis{Shares: map[string]float64{}}
	for _, s := range steps {
		sp := stepPath(s, bySteps[s])
		if sp == nil {
			continue
		}
		an.Steps = append(an.Steps, *sp)
		an.TotalLatency += sp.Latency
		for pt, share := range sp.Shares {
			an.Shares[pt] += share * sp.Latency
		}
	}
	if an.TotalLatency > 0 {
		best := ""
		for pt := range an.Shares {
			an.Shares[pt] /= an.TotalLatency
			if best == "" || an.Shares[pt] > an.Shares[best] || (an.Shares[pt] == an.Shares[best] && pt < best) {
				best = pt
			}
		}
		an.Dominant = best
	}
	return an
}

// stepPath extracts one step's critical path. Returns nil when the step
// has no events with extent.
func stepPath(step int64, evs []Event) *StepPath {
	if len(evs) == 0 {
		return nil
	}
	// Deterministic processing order: by start time, then ID.
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].T != evs[k].T {
			return evs[i].T < evs[k].T
		}
		return evs[i].ID < evs[k].ID
	})

	byID := make(map[EventID]int, len(evs))
	for i := range evs {
		byID[evs[i].ID] = i
	}

	// Infer fallback edges where explicit parents are missing: a recv's
	// parent is the latest same-channel send finishing at or before it;
	// otherwise the previous event on the same rank.
	lastSendOnChannel := map[string]int{}
	lastOnRank := map[int]int{}
	parent := make([]int, len(evs)) // index into evs, -1 = root
	for i := range evs {
		parent[i] = -1
		if p, ok := byID[evs[i].Parent]; ok && p != i {
			parent[i] = p
		} else if evs[i].Kind == KindRecv && evs[i].Channel != "" {
			if s, ok := lastSendOnChannel[evs[i].Channel]; ok {
				parent[i] = s
			}
		}
		if parent[i] < 0 {
			if p, ok := lastOnRank[evs[i].Rank]; ok {
				parent[i] = p
			}
		}
		if evs[i].Kind == KindSend && evs[i].Channel != "" {
			lastSendOnChannel[evs[i].Channel] = i
		}
		lastOnRank[evs[i].Rank] = i
	}

	// Step envelope and the last-finishing event (the sink).
	start, finish := evs[0].T, evs[0].finish()
	sink := 0
	var epoch uint64
	for i := range evs {
		if evs[i].T < start {
			start = evs[i].T
		}
		if f := evs[i].finish(); f > finish || (f == finish && evs[i].ID > evs[sink].ID) {
			finish = f
			sink = i
		}
		if evs[i].Epoch > epoch {
			epoch = evs[i].Epoch
		}
	}
	if finish <= start {
		return nil
	}

	// Walk parents back from the sink; clamp each hop to the uncovered
	// prefix so overlapping stages don't double-count, and materialise
	// gaps as wait edges.
	var chain []Edge
	cover := finish // everything at or after cover is attributed
	for i := sink; i >= 0 && cover > start; {
		ev := &evs[i]
		s, f := ev.T, ev.finish()
		if f > cover {
			f = cover
		}
		if f > s {
			chain = append(chain, Edge{
				Point: ev.Point, Kind: ev.Kind.String(), Rank: ev.Rank,
				Start: s, Dur: f - s, Bytes: ev.Bytes,
			})
			cover = s
		}
		p := parent[i]
		if p < 0 || p == i {
			break
		}
		// Gap between the parent's finish and the chain head is wait.
		if pf := evs[p].finish(); pf < cover {
			lo := pf
			if lo < start {
				lo = start
			}
			if cover > lo {
				chain = append(chain, Edge{Point: "wait", Kind: "wait", Rank: ev.Rank, Start: lo, Dur: cover - lo})
				cover = lo
			}
		}
		i = p
	}
	// Anything before the chain head (root started after the envelope
	// start) is attributed to wait on the root's rank.
	if cover > start {
		rank := 0
		if len(chain) > 0 {
			rank = chain[len(chain)-1].Rank
		}
		chain = append(chain, Edge{Point: "wait", Kind: "wait", Rank: rank, Start: start, Dur: cover - start})
	}
	// Oldest first.
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}

	sp := &StepPath{
		Step: step, Epoch: epoch,
		Start: start, Finish: finish, Latency: finish - start,
		Edges: chain, Shares: map[string]float64{},
	}
	for _, e := range chain {
		sp.Shares[e.Point] += e.Dur / sp.Latency
	}
	best := ""
	for pt := range sp.Shares {
		if best == "" || sp.Shares[pt] > sp.Shares[best] || (sp.Shares[pt] == sp.Shares[best] && pt < best) {
			best = pt
		}
	}
	sp.Dominant = best
	return sp
}

// EdgeSum returns the sum of a step path's edge durations; by
// construction it equals Latency (the 5% acceptance check in the
// critpath driver verifies this against the monitor's measured span).
func (sp *StepPath) EdgeSum() float64 {
	var sum float64
	for _, e := range sp.Edges {
		sum += e.Dur
	}
	return sum
}

// String renders a one-line summary: "step 3: 12.5ms = writer.pack 40% +
// send.rdma 35% + ...".
func (sp *StepPath) String() string {
	s := fmt.Sprintf("step %d: %.6fs dominant=%s", sp.Step, sp.Latency, sp.Dominant)
	return s
}

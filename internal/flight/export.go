package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Export surfaces: the journal as JSON (the /journal endpoint and
// journal.json artifact), as Chrome trace events with flow arrows
// linking causal parents across ranks (load in ui.perfetto.dev), and the
// critical-path analysis as JSON (/critpath, critpath.json) or a
// human-readable report (make critpath).

// JournalDump is the JSON shape of an exported journal. The header
// carries the recording process's identity (Journal.SetIdentity), so a
// fleet collector merging dumps from many daemons can attribute every
// event stream to the process that produced it.
type JournalDump struct {
	Daemon  string  `json:"daemon,omitempty"`
	PID     int     `json:"pid,omitempty"`
	Node    string  `json:"node,omitempty"`
	Seen    int64   `json:"seen"`
	Dropped int64   `json:"dropped"`
	Hash    string  `json:"hash"` // hex fingerprint of the buffered stream
	Events  []Event `json:"events"`
}

// Dump snapshots a journal into its export shape. Nil journals dump as
// an empty stream.
func Dump(j *Journal) JournalDump {
	daemon, node, pid := j.Identity()
	return JournalDump{
		Daemon:  daemon,
		PID:     pid,
		Node:    node,
		Seen:    j.Seen(),
		Dropped: j.Dropped(),
		Hash:    fmt.Sprintf("%016x", j.Hash()),
		Events:  j.Snapshot(),
	}
}

// WriteJSON writes the journal dump as indented JSON.
func WriteJSON(w io.Writer, j *Journal) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Dump(j))
}

// chrome trace-event rows (same dialect as monitor.WriteChromeTrace so
// both files load in the same viewer).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	Scope string         `json:"s,omitempty"`
}

// WriteChromeTrace renders the journal as Chrome trace events: one "X"
// slice per event with extent, one instant per mark, and "s"/"f" flow
// arrows from each causal parent to its child — which is what makes
// cross-rank causality visible in the viewer (arrows from a writer's
// send slice to the reader's assemble slice). Ranks map to tids; all
// events share one pid ("flight").
func WriteChromeTrace(w io.Writer, j *Journal) error {
	evs := j.Snapshot()
	const pid = 1
	rows := make([]chromeEvent, 0, 2*len(evs)+1)
	rows = append(rows, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "flight journal"},
	})

	live := make(map[EventID]*Event, len(evs))
	for i := range evs {
		live[evs[i].ID] = &evs[i]
	}
	for i := range evs {
		ev := &evs[i]
		args := map[string]any{
			"kind": ev.Kind.String(), "step": ev.Step, "id": uint64(ev.ID),
		}
		if ev.Epoch != 0 {
			args["epoch"] = ev.Epoch
		}
		if ev.Bytes != 0 {
			args["bytes"] = ev.Bytes
		}
		if ev.Channel != "" {
			args["channel"] = ev.Channel
		}
		if ev.Parent != 0 {
			args["parent"] = uint64(ev.Parent)
		}
		ts := ev.T * 1e6
		if ev.Dur > 0 {
			rows = append(rows, chromeEvent{
				Name: ev.Point, Cat: ev.Kind.String(), Ph: "X",
				Ts: ts, Dur: ev.Dur * 1e6, Pid: pid, Tid: ev.Rank, Args: args,
			})
		} else {
			rows = append(rows, chromeEvent{
				Name: ev.Point, Cat: ev.Kind.String(), Ph: "i",
				Ts: ts, Pid: pid, Tid: ev.Rank, Scope: "t", Args: args,
			})
		}
		// Flow arrow from the parent's finish to this event's start;
		// only drawn when the parent is still buffered.
		if p := live[ev.Parent]; p != nil && ev.Parent != ev.ID {
			fid := fmt.Sprintf("flow%d", uint64(ev.ID))
			rows = append(rows,
				chromeEvent{Name: "cause", Cat: "flow", Ph: "s", Ts: p.finish() * 1e6, Pid: pid, Tid: p.Rank, ID: fid},
				chromeEvent{Name: "cause", Cat: "flow", Ph: "f", BP: "e", Ts: ts, Pid: pid, Tid: ev.Rank, ID: fid},
			)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": rows})
}

// WriteAnalysisJSON writes a critical-path analysis as indented JSON
// (the critpath.json artifact and the /critpath endpoint).
func WriteAnalysisJSON(w io.Writer, an Analysis) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(an)
}

// WriteReport renders a human-readable critical-path report: aggregate
// shares first, then each step's dominating chain.
func WriteReport(w io.Writer, an Analysis) error {
	if len(an.Steps) == 0 {
		_, err := fmt.Fprintln(w, "critical path: no step events recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "critical path over %d steps, %.6fs total (dominant: %s)\n",
		len(an.Steps), an.TotalLatency, an.Dominant); err != nil {
		return err
	}
	points := make([]string, 0, len(an.Shares))
	for pt := range an.Shares {
		points = append(points, pt)
	}
	sort.Slice(points, func(i, k int) bool {
		if an.Shares[points[i]] != an.Shares[points[k]] {
			return an.Shares[points[i]] > an.Shares[points[k]]
		}
		return points[i] < points[k]
	})
	for _, pt := range points {
		if _, err := fmt.Fprintf(w, "  %-24s %5.1f%%\n", pt, 100*an.Shares[pt]); err != nil {
			return err
		}
	}
	for i := range an.Steps {
		sp := &an.Steps[i]
		if _, err := fmt.Fprintf(w, "step %4d  latency %.6fs  dominant %s\n", sp.Step, sp.Latency, sp.Dominant); err != nil {
			return err
		}
		for _, e := range sp.Edges {
			if _, err := fmt.Fprintf(w, "    %-24s %-8s rank %-3d %.6fs (%4.1f%%)\n",
				e.Point, e.Kind, e.Rank, e.Dur, 100*e.Dur/sp.Latency); err != nil {
				return err
			}
		}
	}
	return nil
}

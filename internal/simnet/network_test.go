package simnet

import (
	"math"
	"testing"

	"flexio/internal/machine"
)

func TestMachineNetInterNode(t *testing.T) {
	m := machine.Titan(4)
	e := NewEngine()
	n := NewMachineNet(e, m)
	var f float64
	bytes := 100.0e6
	n.TransferInterNode(0, 1, bytes, func(t float64) { f = t })
	e.Run(0)
	want := m.Net.Latency + bytes/m.Net.LinkBandwidth
	if math.Abs(f-want)/want > 1e-6 {
		t.Fatalf("finish = %g, want %g", f, want)
	}
}

func TestMachineNetInjectionContention(t *testing.T) {
	// Two flows out of node 0 to different destinations contend on node
	// 0's injection bandwidth.
	m := machine.Titan(4)
	e := NewEngine()
	n := NewMachineNet(e, m)
	bytes := 100.0e6
	var f1, f2 float64
	n.TransferInterNode(0, 1, bytes, func(t float64) { f1 = t })
	n.TransferInterNode(0, 2, bytes, func(t float64) { f2 = t })
	e.Run(0)
	share := m.Net.InjectionBandwidth / 2
	if share > m.Net.LinkBandwidth {
		share = m.Net.LinkBandwidth
	}
	want := m.Net.Latency + bytes/share
	if math.Abs(f1-want)/want > 1e-6 || math.Abs(f2-want)/want > 1e-6 {
		t.Fatalf("finishes = %g, %g; want %g", f1, f2, want)
	}
}

func TestMachineNetIntraNodeNUMA(t *testing.T) {
	m := machine.Smoky(2)
	e := NewEngine()
	n := NewMachineNet(e, m)
	bytes := 10.0e6
	var same, cross float64
	n.TransferIntraNode(0, true, bytes, func(t float64) { same = t })
	e.Run(0)
	e2 := NewEngine()
	n2 := NewMachineNet(e2, m)
	n2.TransferIntraNode(0, false, bytes, func(t float64) { cross = t })
	e2.Run(0)
	if same >= cross {
		t.Fatalf("same-NUMA transfer (%g) must beat cross-NUMA (%g)", same, cross)
	}
}

func TestMachineNetFS(t *testing.T) {
	m := machine.Smoky(4)
	e := NewEngine()
	n := NewMachineNet(e, m)
	bytes := 30.0e6
	var f float64
	n.TransferToFS(0, bytes, func(t float64) { f = t })
	e.Run(0)
	want := m.Net.Latency + m.FS.OpenCost + bytes/m.FS.PerClientBandwidth
	if math.Abs(f-want)/want > 1e-6 {
		t.Fatalf("FS write = %g, want %g", f, want)
	}
	// Read path exists too.
	var r float64
	n.TransferFromFS(1, bytes, func(t float64) { r = t })
	e.Run(0)
	if r <= f {
		t.Fatalf("FS read should complete after being started later (t=%g)", r)
	}
}

func TestMachineNetFSAggregateCeiling(t *testing.T) {
	// Many concurrent writers saturate the FS aggregate bandwidth: total
	// time approaches totalBytes/aggBW even though each client could go
	// faster alone.
	m := machine.Smoky(80)
	e := NewEngine()
	n := NewMachineNet(e, m)
	writers := 64
	per := 2.0e9
	var last float64
	for w := 0; w < writers; w++ {
		n.TransferToFS(w%m.NumNodes, per, func(t float64) {
			if t > last {
				last = t
			}
		})
	}
	e.Run(0)
	ideal := per / m.FS.PerClientBandwidth // no contention
	agg := float64(writers) * per / m.FS.AggregateBandwidth
	if last < agg*0.9 {
		t.Fatalf("FS contention missing: last=%g, aggregate bound=%g", last, agg)
	}
	if last < ideal {
		t.Fatalf("contended time %g cannot beat solo time %g", last, ideal)
	}
}

func TestSmallMessageCostOrdering(t *testing.T) {
	m := machine.Smoky(2)
	e := NewEngine()
	n := NewMachineNet(e, m)
	selfC := n.SmallMessageCost(0, 0)
	numa := n.SmallMessageCost(0, 1)
	node := n.SmallMessageCost(0, 5)
	net := n.SmallMessageCost(0, 17)
	if !(selfC == 0 && numa > 0 && node > numa && net > node) {
		t.Fatalf("ordering violated: %g %g %g %g", selfC, numa, node, net)
	}
}

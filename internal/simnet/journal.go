package simnet

import (
	"strings"

	"flexio/internal/flight"
)

// Flight-recorder wiring for the fluid network: when a journal is
// attached, every flow's injection and delivery are recorded as
// send/recv events in virtual time, with the delivery causally linked to
// the injection and the channel named after the contended resources.
// Flow events carry Step -1 (below the step layer — the coupled model
// records the per-step chain); they appear in trace exports and replay
// hashes but are skipped by per-step critical-path analysis.

// SetJournal attaches a flight recorder to the network (nil detaches).
// The journal's clock is pointed at the engine so Begin/End users of the
// same journal share the virtual timeline.
func (n *FluidNet) SetJournal(j *flight.Journal) {
	n.journal = j
	j.SetClock(n.eng)
}

// Journal returns the attached recorder (nil when detached).
func (n *FluidNet) Journal() *flight.Journal { return n.journal }

// flowChannel names a flow's resource set for send/recv matching.
func flowChannel(resources []*Resource) string {
	if len(resources) == 0 {
		return "unconstrained"
	}
	names := make([]string, len(resources))
	for i, r := range resources {
		names[i] = r.Name
	}
	return strings.Join(names, "+")
}

// recordFlowStart journals a flow's injection, returning the event ID
// for the delivery's parent link.
func (n *FluidNet) recordFlowStart(bytes float64, resources []*Resource) flight.EventID {
	if n.journal == nil {
		return 0
	}
	return n.journal.Record(flight.Event{
		Kind: flight.KindSend, Point: "flow.start",
		Channel: flowChannel(resources),
		T:       n.eng.Now(), Step: -1, Bytes: int64(bytes),
	})
}

// recordFlowEnd journals a flow's delivery.
func (n *FluidNet) recordFlowEnd(parent flight.EventID, bytes float64, resources []*Resource) {
	if n.journal == nil {
		return
	}
	n.journal.Record(flight.Event{
		Kind: flight.KindRecv, Point: "flow.end", Parent: parent,
		Channel: flowChannel(resources),
		T:       n.eng.Now(), Step: -1, Bytes: int64(bytes),
	})
}

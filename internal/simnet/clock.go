package simnet

import "flexio/internal/monitor"

// The engine's Now satisfies monitor.Clock, so a simulated run can put
// its monitors on virtual time with Monitor.SetClock(engine): spans and
// timings then carry modeled seconds instead of wall-clock noise, and a
// Chrome trace of a simulation lines up with its cost model.
var _ monitor.Clock = (*Engine)(nil)

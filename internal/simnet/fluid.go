package simnet

import (
	"fmt"
	"math"
	"sort"

	"flexio/internal/flight"
)

// Resource is a shared capacity (bytes/second) that concurrent flows
// contend for: a NIC injection port, the machine bisection, or a node's
// memory system. Flows crossing a resource share it max-min fairly.
type Resource struct {
	Name     string
	Capacity float64 // bytes per second
	flows    map[int64]*Flow
}

// NewResource creates a resource with the given capacity in bytes/second.
func NewResource(name string, capacity float64) *Resource {
	return &Resource{Name: name, Capacity: capacity, flows: make(map[int64]*Flow)}
}

// Load reports the number of flows currently crossing the resource.
func (r *Resource) Load() int { return len(r.flows) }

// Flow is an in-flight bulk transfer across a set of resources.
type Flow struct {
	id        int64
	remaining float64 // bytes left
	rate      float64 // current bytes/sec (max-min share)
	limit     float64 // per-flow rate cap (e.g. point-to-point link bandwidth)
	res       []*Resource
	done      func(finish float64)
	lastT     float64
	timer     *Timer
	bytes     float64        // original size, for the journal
	startEv   flight.EventID // injection event, parent of the delivery
}

// FluidNet simulates bulk data movement as fluid flows with max-min fair
// bandwidth sharing. Every flow start or completion triggers a global rate
// recomputation; completions are scheduled on the event engine. This is
// the standard progressive-filling fluid model and captures the contention
// effects that drive FlexIO's placement trade-offs (staging traffic
// interfering with simulation MPI traffic, NIC injection limits, etc.).
type FluidNet struct {
	eng     *Engine
	nextID  int64
	active  map[int64]*Flow
	journal *flight.Journal
}

// NewFluidNet creates a fluid network bound to an engine.
func NewFluidNet(eng *Engine) *FluidNet {
	return &FluidNet{eng: eng, active: make(map[int64]*Flow)}
}

// Active reports the number of in-flight flows.
func (n *FluidNet) Active() int { return len(n.active) }

// StartFlow begins moving `bytes` across the given resources after a fixed
// `latency`. rateLimit caps the flow's own bandwidth (0 means unlimited —
// only resource shares apply). done is invoked at the virtual completion
// time. Zero-byte flows complete after latency alone.
func (n *FluidNet) StartFlow(bytes float64, latency float64, rateLimit float64, resources []*Resource, done func(finish float64)) {
	if bytes < 0 || math.IsNaN(bytes) {
		bytes = 0
	}
	n.eng.Schedule(latency, func() {
		if bytes == 0 {
			ev := n.recordFlowStart(0, resources)
			n.recordFlowEnd(ev, 0, resources)
			if done != nil {
				done(n.eng.Now())
			}
			return
		}
		f := &Flow{
			id:        n.nextID,
			remaining: bytes,
			limit:     rateLimit,
			res:       resources,
			done:      done,
			lastT:     n.eng.Now(),
			bytes:     bytes,
			startEv:   n.recordFlowStart(bytes, resources),
		}
		n.nextID++
		n.active[f.id] = f
		for _, r := range resources {
			r.flows[f.id] = f
		}
		n.rebalance()
	})
}

// settle advances each active flow's remaining bytes to the current time
// at its previously assigned rate.
func (n *FluidNet) settle() {
	now := n.eng.Now()
	for _, f := range n.active {
		dt := now - f.lastT
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 1e-9 {
				f.remaining = 0
			}
		}
		f.lastT = now
	}
}

// rebalance recomputes max-min fair rates for all flows and reschedules
// the earliest completion.
func (n *FluidNet) rebalance() {
	n.settle()

	// Progressive filling: repeatedly find the bottleneck resource (the
	// one whose per-unfrozen-flow share is smallest), freeze its flows at
	// that share, and subtract their usage.
	type resState struct {
		r      *Resource
		remCap float64
		open   int
	}
	states := make(map[*Resource]*resState)
	unfrozen := make(map[int64]*Flow, len(n.active))
	for _, f := range n.active {
		f.rate = 0
		unfrozen[f.id] = f
		for _, r := range f.res {
			if _, ok := states[r]; !ok {
				states[r] = &resState{r: r, remCap: r.Capacity}
			}
		}
	}
	for _, st := range states {
		for _, f := range st.r.flows {
			if _, ok := unfrozen[f.id]; ok {
				st.open++
			}
		}
	}
	for len(unfrozen) > 0 {
		// Candidate share per resource; also honor per-flow caps by
		// treating a capped flow as its own bottleneck.
		bestShare := math.Inf(1)
		for _, st := range states {
			if st.open <= 0 {
				continue
			}
			share := st.remCap / float64(st.open)
			if share < bestShare {
				bestShare = share
			}
		}
		// Per-flow rate limits can be tighter than any resource share.
		minLimit := math.Inf(1)
		for _, f := range unfrozen {
			if f.limit > 0 && f.limit < minLimit {
				minLimit = f.limit
			}
		}
		if math.IsInf(bestShare, 1) && math.IsInf(minLimit, 1) {
			// Flows with no resources and no limit: infinite rate is
			// meaningless; finish them instantaneously.
			for id, f := range unfrozen {
				f.rate = math.Inf(1)
				delete(unfrozen, id)
			}
			break
		}
		if minLimit < bestShare {
			// Freeze all flows at the limit; they stop consuming share
			// growth beyond their cap.
			for id, f := range unfrozen {
				if f.limit > 0 && f.limit <= minLimit {
					f.rate = f.limit
					delete(unfrozen, id)
					for _, r := range f.res {
						st := states[r]
						st.remCap -= f.rate
						st.open--
					}
				}
			}
			continue
		}
		// Freeze flows on the bottleneck resource(s) at bestShare.
		frozeAny := false
		for _, st := range states {
			if st.open <= 0 {
				continue
			}
			share := st.remCap / float64(st.open)
			if share <= bestShare*(1+1e-12) {
				ids := make([]int64, 0, st.open)
				for id := range st.r.flows {
					if _, ok := unfrozen[id]; ok {
						ids = append(ids, id)
					}
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				for _, id := range ids {
					f := unfrozen[id]
					if f == nil {
						continue
					}
					rate := bestShare
					if f.limit > 0 && f.limit < rate {
						rate = f.limit
					}
					f.rate = rate
					delete(unfrozen, id)
					frozeAny = true
					for _, r := range f.res {
						s2 := states[r]
						s2.remCap -= rate
						s2.open--
					}
				}
			}
		}
		if !frozeAny {
			// Should not happen; guard against infinite loops.
			for id, f := range unfrozen {
				f.rate = bestShare
				delete(unfrozen, id)
			}
		}
	}

	// Schedule the earliest completion.
	n.scheduleNextCompletion()
}

func (n *FluidNet) scheduleNextCompletion() {
	// Cancel and reschedule a single completion timer per flow set: we
	// instead find the global earliest finisher.
	var next *Flow
	nextAt := math.Inf(1)
	ids := make([]int64, 0, len(n.active))
	for id := range n.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.active[id]
		if f.timer != nil {
			f.timer.Cancel()
			f.timer = nil
		}
		var at float64
		switch {
		case f.remaining <= 0:
			at = n.eng.Now()
		case math.IsInf(f.rate, 1):
			at = n.eng.Now()
		case f.rate <= 0:
			continue // starved; will be rescheduled on next rebalance
		default:
			at = n.eng.Now() + f.remaining/f.rate
		}
		if at < nextAt {
			nextAt = at
			next = f
		}
	}
	if next == nil {
		return
	}
	f := next
	f.timer = n.eng.ScheduleAt(nextAt, func() { n.finish(f) })
}

func (n *FluidNet) finish(f *Flow) {
	if _, ok := n.active[f.id]; !ok {
		return
	}
	n.settle()
	if f.remaining > 1e-6 {
		// Rates changed since this completion was scheduled; rebalance
		// will reschedule.
		n.rebalance()
		return
	}
	delete(n.active, f.id)
	for _, r := range f.res {
		delete(r.flows, f.id)
	}
	n.recordFlowEnd(f.startEv, f.bytes, f.res)
	done := f.done
	n.rebalance()
	if done != nil {
		done(n.eng.Now())
	}
}

// String summarizes the network state for debugging.
func (n *FluidNet) String() string {
	return fmt.Sprintf("fluidnet{t=%.6fs active=%d}", n.eng.Now(), len(n.active))
}

// Package simnet provides a deterministic discrete-event simulation engine
// and a fluid-flow network contention model. Together they stand in for
// the Cray XK6 / InfiniBand hardware of the FlexIO paper: virtual time
// replaces wall-clock time, and shared resources (NIC injection bandwidth,
// bisection bandwidth, node memory bandwidth) replace the physical
// interconnect. All behaviour is deterministic for a given event sequence,
// which keeps the experiment harness reproducible.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event scheduler over virtual seconds. The zero
// value is not usable; call NewEngine.
type Engine struct {
	now   float64
	seq   int64
	queue eventQueue
}

type event struct {
	at  float64
	seq int64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now reports the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay virtual seconds. Negative delays are
// clamped to zero (run at the current time, after already-queued events at
// this time). It returns a handle usable with Cancel.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at (clamped to now).
func (e *Engine) ScheduleAt(at float64, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Timer is a handle to a scheduled event.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Safe to call after it fired.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
	}
}

// Step executes the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		if ev.fn != nil {
			fn := ev.fn
			ev.fn = nil
			fn()
			return true
		}
	}
	return false
}

// Run executes events until the queue drains. maxEvents guards against
// runaway simulations; it returns an error if exceeded.
func (e *Engine) Run(maxEvents int64) error {
	var n int64
	for e.Step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			return fmt.Errorf("simnet: exceeded %d events at t=%gs", maxEvents, e.now)
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if it is ahead of the last event).
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Pending reports the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

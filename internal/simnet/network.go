package simnet

import (
	"fmt"

	"flexio/internal/machine"
)

// MachineNet wires a FluidNet to a machine model: one injection (TX) and
// one ejection (RX) resource per node NIC, one global bisection resource,
// and one memory-system resource per node for intra-node (shared-memory
// transport) movement. It is the virtual hardware that FlexIO's RDMA and
// shm transports "run" on.
type MachineNet struct {
	Eng   *Engine
	Fluid *FluidNet
	M     *machine.Machine

	TX        []*Resource
	RX        []*Resource
	Bisection *Resource
	Mem       []*Resource
	FS        *Resource // parallel file system aggregate bandwidth
}

// NewMachineNet builds the resource graph for a machine.
func NewMachineNet(eng *Engine, m *machine.Machine) *MachineNet {
	n := &MachineNet{
		Eng:       eng,
		Fluid:     NewFluidNet(eng),
		M:         m,
		TX:        make([]*Resource, m.NumNodes),
		RX:        make([]*Resource, m.NumNodes),
		Mem:       make([]*Resource, m.NumNodes),
		Bisection: NewResource("bisection", m.Net.BisectionBandwidth),
		FS:        NewResource("pfs", m.FS.AggregateBandwidth),
	}
	for i := 0; i < m.NumNodes; i++ {
		n.TX[i] = NewResource(fmt.Sprintf("tx%d", i), m.Net.InjectionBandwidth)
		n.RX[i] = NewResource(fmt.Sprintf("rx%d", i), m.Net.InjectionBandwidth)
		// Node memory system: each NUMA domain contributes its local
		// copy bandwidth to the aggregate; per-flow caps then distinguish
		// NUMA-local from NUMA-remote streams.
		n.Mem[i] = NewResource(fmt.Sprintf("mem%d", i),
			m.Node.IntraNUMABandwidth*float64(m.Node.NUMADomains))
	}
	return n
}

// TransferInterNode moves bytes from srcNode to dstNode over the
// interconnect, respecting injection, ejection, and bisection contention
// plus the point-to-point link cap. done receives the completion time.
func (n *MachineNet) TransferInterNode(srcNode, dstNode int, bytes float64, done func(t float64)) {
	res := []*Resource{n.TX[srcNode], n.RX[dstNode], n.Bisection}
	n.Fluid.StartFlow(bytes, n.M.Net.Latency, n.M.Net.LinkBandwidth, res, done)
}

// TransferIntraNode moves bytes inside a node through the memory system.
// sameNUMA selects the intra- vs. inter-NUMA bandwidth cap and latency,
// reflecting the paper's NUMA-aware buffer placement concerns.
func (n *MachineNet) TransferIntraNode(node int, sameNUMA bool, bytes float64, done func(t float64)) {
	bw := n.M.Node.InterNUMABandwidth
	lat := n.M.Node.InterNUMALatency
	if sameNUMA {
		bw = n.M.Node.IntraNUMABandwidth
		lat = n.M.Node.IntraNUMALatency
	}
	n.Fluid.StartFlow(bytes, lat, bw, []*Resource{n.Mem[node]}, done)
}

// TransferToFS writes bytes from a node to the parallel file system,
// contending on the node NIC, the bisection, the FS aggregate bandwidth,
// and the per-client ceiling.
func (n *MachineNet) TransferToFS(srcNode int, bytes float64, done func(t float64)) {
	res := []*Resource{n.TX[srcNode], n.Bisection, n.FS}
	n.Fluid.StartFlow(bytes, n.M.Net.Latency+n.M.FS.OpenCost, n.M.FS.PerClientBandwidth, res, done)
}

// TransferFromFS reads bytes from the file system to a node.
func (n *MachineNet) TransferFromFS(dstNode int, bytes float64, done func(t float64)) {
	res := []*Resource{n.RX[dstNode], n.Bisection, n.FS}
	n.Fluid.StartFlow(bytes, n.M.Net.Latency+n.M.FS.OpenCost, n.M.FS.PerClientBandwidth, res, done)
}

// SmallMessageCost returns the modeled one-way cost of a small control
// message (handshake traffic) between two cores, without engaging the
// fluid model: latency-dominated costs don't contend measurably.
func (n *MachineNet) SmallMessageCost(coreA, coreB int) float64 {
	switch {
	case coreA == coreB:
		return 0
	case n.M.SameNUMA(coreA, coreB):
		return n.M.Node.IntraNUMALatency
	case n.M.SameNode(coreA, coreB):
		return n.M.Node.InterNUMALatency
	default:
		return n.M.Net.Latency
	}
}

package simnet

import (
	"math"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3.0, func() { order = append(order, 3) })
	e.Schedule(1.0, func() { order = append(order, 1) })
	e.Schedule(2.0, func() { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) || len(order) != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 3.0 {
		t.Fatalf("Now = %g, want 3.0", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events must run FIFO, got %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1.0, func() {
		times = append(times, e.Now())
		e.Schedule(0.5, func() { times = append(times, e.Now()) })
	})
	e.Run(0)
	if len(times) != 2 || times[0] != 1.0 || times[1] != 1.5 {
		t.Fatalf("nested schedule times = %v", times)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run(0)
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay should run at t=0, ran=%v now=%g", ran, e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.Schedule(1, func() { ran = true })
	tm.Cancel()
	e.Run(0)
	if ran {
		t.Fatal("cancelled event must not run")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []float64
	e.Schedule(1, func() { ran = append(ran, e.Now()) })
	e.Schedule(5, func() { ran = append(ran, e.Now()) })
	e.RunUntil(2)
	if len(ran) != 1 || e.Now() != 2 {
		t.Fatalf("RunUntil: ran=%v now=%g", ran, e.Now())
	}
	e.RunUntil(10)
	if len(ran) != 2 {
		t.Fatalf("second RunUntil should fire remaining event, ran=%v", ran)
	}
}

func TestEngineRunawayGuard(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	if err := e.Run(100); err == nil {
		t.Fatal("expected runaway guard to trip")
	}
}

func TestFluidSingleFlow(t *testing.T) {
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 100) // 100 B/s
	var finish float64 = -1
	n.StartFlow(1000, 0.5, 0, []*Resource{r}, func(t float64) { finish = t })
	e.Run(0)
	want := 0.5 + 1000.0/100.0
	if math.Abs(finish-want) > 1e-9 {
		t.Fatalf("finish = %g, want %g", finish, want)
	}
}

func TestFluidRateLimit(t *testing.T) {
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 1000)
	var finish float64
	n.StartFlow(100, 0, 10, []*Resource{r}, func(t float64) { finish = t })
	e.Run(0)
	if math.Abs(finish-10.0) > 1e-9 {
		t.Fatalf("rate-limited finish = %g, want 10", finish)
	}
}

func TestFluidFairSharing(t *testing.T) {
	// Two equal flows sharing one resource: each gets half the capacity,
	// so both finish at 2x the solo time.
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 100)
	var f1, f2 float64
	n.StartFlow(500, 0, 0, []*Resource{r}, func(t float64) { f1 = t })
	n.StartFlow(500, 0, 0, []*Resource{r}, func(t float64) { f2 = t })
	e.Run(0)
	if math.Abs(f1-10.0) > 1e-6 || math.Abs(f2-10.0) > 1e-6 {
		t.Fatalf("fair share finishes = %g, %g; want 10, 10", f1, f2)
	}
}

func TestFluidShortFlowDeparts(t *testing.T) {
	// A short flow shares the link, finishes, and the long flow speeds up:
	// long = 1000B: 250B in first 5s (shared), remaining 750B at full
	// 100 B/s => finish at 12.5s. Short = 250B at 50 B/s => 5s.
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 100)
	var long, short float64
	n.StartFlow(1000, 0, 0, []*Resource{r}, func(t float64) { long = t })
	n.StartFlow(250, 0, 0, []*Resource{r}, func(t float64) { short = t })
	e.Run(0)
	if math.Abs(short-5.0) > 1e-6 {
		t.Fatalf("short finish = %g, want 5", short)
	}
	if math.Abs(long-12.5) > 1e-6 {
		t.Fatalf("long finish = %g, want 12.5", long)
	}
}

func TestFluidLateArrival(t *testing.T) {
	// Flow B arrives at t=5 while A (1000B @ 100B/s solo) is half done.
	// From t=5 they share: A has 500B left at 50B/s => t=15.
	// B (250B) at 50 B/s => t=10... then A speeds up: at t=10 A has
	// 500-250=250B left, now at 100B/s => t=12.5.
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 100)
	var fa, fb float64
	n.StartFlow(1000, 0, 0, []*Resource{r}, func(t float64) { fa = t })
	e.Schedule(5, func() {
		n.StartFlow(250, 0, 0, []*Resource{r}, func(t float64) { fb = t })
	})
	e.Run(0)
	if math.Abs(fb-10.0) > 1e-6 {
		t.Fatalf("B finish = %g, want 10", fb)
	}
	if math.Abs(fa-12.5) > 1e-6 {
		t.Fatalf("A finish = %g, want 12.5", fa)
	}
}

func TestFluidMultiResourceBottleneck(t *testing.T) {
	// Flow crosses two resources; the slower one (50 B/s) governs.
	e := NewEngine()
	n := NewFluidNet(e)
	r1 := NewResource("fast", 1000)
	r2 := NewResource("slow", 50)
	var f float64
	n.StartFlow(100, 0, 0, []*Resource{r1, r2}, func(t float64) { f = t })
	e.Run(0)
	if math.Abs(f-2.0) > 1e-9 {
		t.Fatalf("finish = %g, want 2", f)
	}
}

func TestFluidMaxMinAsymmetric(t *testing.T) {
	// Flow A crosses shared(100); flow B crosses shared(100) AND
	// private(30). Max-min: B is capped at 30 by private; A then gets 70.
	e := NewEngine()
	n := NewFluidNet(e)
	shared := NewResource("shared", 100)
	private := NewResource("private", 30)
	var fa, fb float64
	n.StartFlow(700, 0, 0, []*Resource{shared}, func(t float64) { fa = t })
	n.StartFlow(300, 0, 0, []*Resource{shared, private}, func(t float64) { fb = t })
	e.Run(0)
	if math.Abs(fb-10.0) > 1e-6 {
		t.Fatalf("B finish = %g, want 10 (rate 30)", fb)
	}
	if math.Abs(fa-10.0) > 1e-6 {
		t.Fatalf("A finish = %g, want 10 (rate 70)", fa)
	}
}

func TestFluidZeroByteFlow(t *testing.T) {
	e := NewEngine()
	n := NewFluidNet(e)
	var f float64 = -1
	n.StartFlow(0, 0.25, 0, nil, func(t float64) { f = t })
	e.Run(0)
	if math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("zero-byte flow finish = %g, want 0.25 (latency only)", f)
	}
}

func TestFluidConservation(t *testing.T) {
	// N flows through one resource: total time = total bytes / capacity
	// regardless of arrival pattern (work conservation).
	e := NewEngine()
	n := NewFluidNet(e)
	r := NewResource("link", 100)
	var last float64
	total := 0.0
	for i := 0; i < 8; i++ {
		b := float64(100 * (i + 1))
		total += b
		delay := float64(i) * 0.1
		e.Schedule(delay, func() {
			n.StartFlow(b, 0, 0, []*Resource{r}, func(t float64) {
				if t > last {
					last = t
				}
			})
		})
	}
	e.Run(0)
	want := total / 100.0 // all arrivals well before completion
	if math.Abs(last-want) > 0.2 {
		t.Fatalf("last finish = %g, want ~%g (work conservation)", last, want)
	}
}

package rdma

import "flexio/internal/monitor"

// SetMonitor attaches a performance monitor to the fabric: from then on
// every verb folds its *modeled* cost into the monitor's latency
// histograms ("rdma.reg", "rdma.get", "rdma.put", "rdma.sendmsg") and
// counts the bytes each verb moved. A nil monitor detaches.
func (f *Fabric) SetMonitor(m *monitor.Monitor) {
	f.mu.Lock()
	f.mon = m
	f.mu.Unlock()
}

// monitor returns the attached monitor (nil when monitoring is off).
func (f *Fabric) monitor() *monitor.Monitor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mon
}

// observeVerb records one verb's modeled cost and payload size. All
// monitor methods are nil-safe, so callers pass the result of monitor()
// straight through.
func observeVerb(m *monitor.Monitor, verb string, cost float64, n int) {
	m.Observe(verb, cost)
	m.AddVolume(verb+".bytes", int64(n))
}

package rdma

import (
	"testing"

	"flexio/internal/machine"
	"flexio/internal/monitor"
)

func TestFabricObservesVerbCosts(t *testing.T) {
	f := NewFabric(machine.Titan(2).Net)
	m := monitor.New("fabric")
	f.SetMonitor(m)

	a, err := f.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	src, regCost, err := a.RegisterMemory(make([]byte, 8192))
	if err != nil {
		t.Fatal(err)
	}
	dst, _, err := b.RegisterMemory(make([]byte, 8192))
	if err != nil {
		t.Fatal(err)
	}
	getCost, err := b.Get(src.Handle(), 0, dst, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put(src, 0, dst.Handle(), 0, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SendMsg(b, []byte("ping")); err != nil {
		t.Fatal(err)
	}

	rep := m.Snapshot()
	if got := rep.Timings["rdma.reg"]; got.Count != 2 || got.Total != 2*regCost {
		t.Fatalf("rdma.reg: %+v (regCost %v)", got, regCost)
	}
	if got := rep.Timings["rdma.get"]; got.Count != 1 || got.Total != getCost {
		t.Fatalf("rdma.get: %+v", got)
	}
	if rep.Timings["rdma.put"].Count != 1 || rep.Timings["rdma.sendmsg"].Count != 1 {
		t.Fatalf("put/sendmsg not observed: %+v", rep.Timings)
	}
	if rep.Volumes["rdma.get.bytes"] != 4096 || rep.Volumes["rdma.put.bytes"] != 1024 {
		t.Fatalf("verb volumes: %+v", rep.Volumes)
	}

	// Detaching the monitor stops observation without breaking verbs.
	f.SetMonitor(nil)
	if _, err := b.Get(src.Handle(), 0, dst, 0, 64); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Timings["rdma.get"].Count; got != 1 {
		t.Fatalf("detached monitor still observed: count %d", got)
	}
}

package rdma

import "fmt"

// RegistrationMode selects how the bandwidth probe manages buffers,
// matching the two curves of Figure 4.
type RegistrationMode int

const (
	// DynamicRegistration allocates and registers fresh send and receive
	// buffers for every transfer — the unoptimized baseline, typical for
	// particle data whose size changes across timesteps.
	DynamicRegistration RegistrationMode = iota
	// StaticRegistration registers buffers once and reuses them (what the
	// persistent buffer/registration cache achieves automatically).
	StaticRegistration
	// CachedRegistration routes buffers through a RegCache: the first
	// transfer pays the dynamic cost, subsequent ones hit the cache.
	CachedRegistration
)

func (m RegistrationMode) String() string {
	switch m {
	case DynamicRegistration:
		return "dynamic"
	case StaticRegistration:
		return "static"
	case CachedRegistration:
		return "cached"
	}
	return fmt.Sprintf("RegistrationMode(%d)", int(m))
}

// BandwidthResult is one point of the Figure 4 curve.
type BandwidthResult struct {
	MsgBytes    int
	Mode        RegistrationMode
	SecPerXfer  float64 // modeled seconds per transfer, all costs included
	BandwidthBs float64 // payload bytes/second
}

// MeasureGetBandwidth runs the paper's point-to-point RDMA Get bandwidth
// test between two endpoints: `iters` transfers of msgBytes each, under
// the given registration mode. It moves real bytes (verifying the code
// path) and accumulates modeled costs from the fabric's interconnect to
// produce the bandwidth figure.
func MeasureGetBandwidth(f *Fabric, msgBytes, iters int, mode RegistrationMode) (BandwidthResult, error) {
	res := BandwidthResult{MsgBytes: msgBytes, Mode: mode}
	if msgBytes <= 0 || iters <= 0 {
		return res, fmt.Errorf("rdma: bandwidth probe needs positive size and iters")
	}
	src, err := f.Attach("bwprobe-src", 0)
	if err != nil {
		return res, err
	}
	defer f.Detach(src)
	dst, err := f.Attach("bwprobe-dst", 1)
	if err != nil {
		return res, err
	}
	defer f.Detach(dst)

	var total float64
	switch mode {
	case StaticRegistration:
		sbuf := make([]byte, msgBytes)
		sreg, c1, err := src.RegisterMemory(sbuf)
		if err != nil {
			return res, err
		}
		rbuf := make([]byte, msgBytes)
		rreg, c2, err := dst.RegisterMemory(rbuf)
		if err != nil {
			return res, err
		}
		total += c1 + c2 + f.AllocCost(msgBytes)*2
		for i := 0; i < iters; i++ {
			cost, err := dst.Get(sreg.Handle(), 0, rreg, 0, msgBytes)
			if err != nil {
				return res, err
			}
			total += cost
		}
	case DynamicRegistration:
		for i := 0; i < iters; i++ {
			sbuf := make([]byte, msgBytes)
			sreg, c1, err := src.RegisterMemory(sbuf)
			if err != nil {
				return res, err
			}
			rbuf := make([]byte, msgBytes)
			rreg, c2, err := dst.RegisterMemory(rbuf)
			if err != nil {
				return res, err
			}
			total += c1 + c2 + f.AllocCost(msgBytes)*2
			cost, err := dst.Get(sreg.Handle(), 0, rreg, 0, msgBytes)
			if err != nil {
				return res, err
			}
			total += cost
			if err := src.UnregisterMemory(sreg); err != nil {
				return res, err
			}
			if err := dst.UnregisterMemory(rreg); err != nil {
				return res, err
			}
		}
	case CachedRegistration:
		scache := NewRegCache(src, 0)
		rcache := NewRegCache(dst, 0)
		defer scache.Drain()
		defer rcache.Drain()
		for i := 0; i < iters; i++ {
			sreg, c1, err := scache.Acquire(msgBytes)
			if err != nil {
				return res, err
			}
			rreg, c2, err := rcache.Acquire(msgBytes)
			if err != nil {
				return res, err
			}
			total += c1 + c2
			cost, err := dst.Get(sreg.Handle(), 0, rreg, 0, msgBytes)
			if err != nil {
				return res, err
			}
			total += cost
			scache.Release(sreg)
			rcache.Release(rreg)
		}
	default:
		return res, fmt.Errorf("rdma: unknown registration mode %v", mode)
	}

	res.SecPerXfer = total / float64(iters)
	res.BandwidthBs = float64(msgBytes) / res.SecPerXfer
	return res, nil
}

// amortized static setup note: the one-time registration in static mode is
// divided across iters transfers, matching how sustained-bandwidth tests
// report their numbers.

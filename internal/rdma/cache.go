package rdma

import (
	"sort"
	"sync"
)

// CacheStats exposes registration cache behaviour for the monitor and the
// Figure 4 ablation.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Reclaims      int64
	BytesRetained int64
	ModeledCost   float64 // accumulated modeled alloc+registration seconds
}

// RegCache is the persistent buffer and registration cache of Section
// II.E: "allocated and registered send and receive buffers are temporarily
// kept in a buffer pool; later data transfers try to reuse those buffers
// whenever possible. A configurable threshold value controls total memory
// usage and triggers buffer reclamation." Acquire on a miss pays the
// modeled dynamic allocation + registration cost; on a hit it is free.
type RegCache struct {
	ep       *Endpoint
	maxBytes int64

	mu    sync.Mutex
	free  map[int][]*MemRegion // size class -> free registered regions
	stats CacheStats
}

// NewRegCache creates a cache for the endpoint bounded to maxBytes of
// retained registered memory (0 = unbounded).
func NewRegCache(ep *Endpoint, maxBytes int64) *RegCache {
	return &RegCache{ep: ep, maxBytes: maxBytes, free: make(map[int][]*MemRegion)}
}

// class rounds n up to a power-of-two size class (min 4 KiB — one page).
func (c *RegCache) class(n int) int {
	k := 4096
	for k < n {
		k <<= 1
	}
	return k
}

// Acquire returns a registered region with at least n bytes, plus the
// modeled cost paid (0 on a cache hit). The returned region's usable
// prefix is r.Bytes()[:n].
func (c *RegCache) Acquire(n int) (*MemRegion, float64, error) {
	cls := c.class(n)
	fab := c.ep.fab
	c.mu.Lock()
	if stack := c.free[cls]; len(stack) > 0 {
		r := stack[len(stack)-1]
		c.free[cls] = stack[:len(stack)-1]
		c.stats.Hits++
		c.stats.BytesRetained -= int64(cls)
		c.mu.Unlock()
		fab.cacheHits.Add(1)
		fab.cacheBytes.Add(-int64(cls))
		return r, 0, nil
	}
	c.stats.Misses++
	c.mu.Unlock()
	fab.cacheMisses.Add(1)

	buf := make([]byte, cls)
	cost := c.ep.fab.AllocCost(cls)
	r, regCost, err := c.ep.RegisterMemory(buf)
	if err != nil {
		return nil, 0, err
	}
	cost += regCost
	c.mu.Lock()
	c.stats.ModeledCost += cost
	c.mu.Unlock()
	return r, cost, nil
}

// Release parks the region for reuse. If retaining it would exceed the
// threshold, the region is unregistered and dropped (reclamation).
func (c *RegCache) Release(r *MemRegion) {
	cls := len(r.buf)
	fab := c.ep.fab
	c.mu.Lock()
	if c.maxBytes > 0 && c.stats.BytesRetained+int64(cls) > c.maxBytes {
		c.stats.Reclaims++
		c.mu.Unlock()
		fab.cacheReclaims.Add(1)
		c.ep.UnregisterMemory(r) //nolint:errcheck // best-effort reclaim
		return
	}
	c.free[cls] = append(c.free[cls], r)
	c.stats.BytesRetained += int64(cls)
	c.mu.Unlock()
	fab.cacheBytes.Add(int64(cls))
}

// Drain unregisters and drops every cached region; used at shutdown.
func (c *RegCache) Drain() {
	c.mu.Lock()
	classes := make([]int, 0, len(c.free))
	for cls := range c.free {
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	var regions []*MemRegion
	for _, cls := range classes {
		regions = append(regions, c.free[cls]...)
		delete(c.free, cls)
	}
	c.ep.fab.cacheBytes.Add(-c.stats.BytesRetained)
	c.stats.BytesRetained = 0
	c.mu.Unlock()
	for _, r := range regions {
		c.ep.UnregisterMemory(r) //nolint:errcheck
	}
}

// Stats returns a snapshot of cache counters.
func (c *RegCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Package rdma implements FlexIO's inter-node transport layer (Section
// II.E of the paper): an NNTI-like portability API offering Connect,
// memory Register/Unregister, RDMA Put and Get, and paired small-message
// queues, plus the optimizations the paper builds above NNTI — a
// persistent buffer/registration cache and receiver-directed Get
// scheduling for contention avoidance.
//
// There is no RDMA-capable NIC here, so the fabric is an in-process
// emulation: registered memory regions are real byte slices addressable by
// opaque handles, Put/Get perform real copies (so data integrity is
// testable end to end), and every verb additionally reports a *modeled*
// cost in seconds derived from a machine.Interconnect — registration cost
// per page, one-way latency, and payload bandwidth. The modeled costs are
// what reproduce Figure 4 (dynamic vs. static registration bandwidth).
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
)

// Common errors.
var (
	ErrUnknownPeer    = errors.New("rdma: unknown peer")
	ErrBadHandle      = errors.New("rdma: stale or unknown memory handle")
	ErrOutOfBounds    = errors.New("rdma: access outside registered region")
	ErrQueueFull      = errors.New("rdma: receiver message queue full")
	ErrClosed         = errors.New("rdma: endpoint closed")
	ErrNotRegistered  = errors.New("rdma: memory not registered")
	ErrDoubleRegister = errors.New("rdma: region already registered")
)

// Handle names a registered memory region fabric-wide; it is what control
// messages carry so a peer can Get from it.
type Handle uint64

// MemRegion is a registered memory region. Access through the fabric is
// only legal while registered.
type MemRegion struct {
	h      Handle
	buf    []byte
	owner  *Endpoint
	active bool
}

// Handle returns the fabric-wide handle for control messages.
func (r *MemRegion) Handle() Handle { return r.h }

// Bytes exposes the region's local storage (the owner's view).
func (r *MemRegion) Bytes() []byte { return r.buf }

// Len reports the region size in bytes.
func (r *MemRegion) Len() int { return len(r.buf) }

// Fabric is the in-process interconnect: the rendezvous point for
// endpoints and the owner of the handle table.
type Fabric struct {
	IC machine.Interconnect

	mu        sync.Mutex
	nextH     Handle
	regions   map[Handle]*MemRegion
	endpoints map[string]*Endpoint
	mon       *monitor.Monitor // attached via SetMonitor; nil = off
	journal   *flight.Journal  // attached via SetJournal; nil = off

	// Resource counters aggregated fabric-wide: registration caches are
	// created per connection inside the transport layer, so their stats
	// roll up here (see flightrec.go), as does the deepest observed
	// small-message queue.
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheReclaims atomic.Int64
	cacheBytes    atomic.Int64
	msgqHighWater atomic.Int64
}

// NewFabric creates a fabric with the given interconnect cost model.
func NewFabric(ic machine.Interconnect) *Fabric {
	return &Fabric{
		IC:        ic,
		nextH:     1,
		regions:   make(map[Handle]*MemRegion),
		endpoints: make(map[string]*Endpoint),
	}
}

// pages returns the page count for a buffer of n bytes.
func (f *Fabric) pages(n int) float64 {
	ps := f.IC.PageSize
	if ps <= 0 {
		ps = 4096
	}
	return float64((int64(n) + ps - 1) / ps)
}

// RegCost models the time to register n bytes with the NIC.
func (f *Fabric) RegCost(n int) float64 {
	return f.IC.RegBase + f.pages(n)*f.IC.RegPerPage
}

// AllocCost models the time to allocate n bytes of DMA-able memory.
func (f *Fabric) AllocCost(n int) float64 {
	return f.IC.AllocBase + f.pages(n)*f.IC.AllocPerPage
}

// XferCost models a point-to-point transfer of n payload bytes.
func (f *Fabric) XferCost(n int) float64 {
	return f.IC.Latency + float64(n)/f.IC.LinkBandwidth
}

// Endpoint is one process's attachment to the fabric (the NNTI transport
// handle). NodeID identifies the physical node for cost modelling.
type Endpoint struct {
	Name   string
	NodeID int

	fab    *Fabric
	mu     sync.Mutex
	closed bool
	msgQ   chan []byte // the receive message queue (RDMA Put target)
}

// MsgQueueDepth is the depth of the paired small-message queues the paper
// establishes between interacting processes.
const MsgQueueDepth = 128

// Attach creates an endpoint named name on the given node.
func (f *Fabric) Attach(name string, nodeID int) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.endpoints[name]; dup {
		return nil, fmt.Errorf("rdma: endpoint %q already attached", name)
	}
	ep := &Endpoint{Name: name, NodeID: nodeID, fab: f, msgQ: make(chan []byte, MsgQueueDepth)}
	f.endpoints[name] = ep
	return ep, nil
}

// Lookup finds an attached endpoint (the Connect step: in NNTI a peer URL
// resolves to a connection; here a name resolves to the endpoint).
func (f *Fabric) Lookup(name string) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep, ok := f.endpoints[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, name)
	}
	return ep, nil
}

// Detach closes the endpoint: its message queue is closed and its
// registrations are dropped.
func (f *Fabric) Detach(ep *Endpoint) {
	f.mu.Lock()
	for h, r := range f.regions {
		if r.owner == ep {
			r.active = false
			delete(f.regions, h)
		}
	}
	delete(f.endpoints, ep.Name)
	f.mu.Unlock()
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.msgQ)
	}
}

// RegisterMemory registers buf for RDMA and returns the region plus the
// modeled registration cost in seconds.
func (ep *Endpoint) RegisterMemory(buf []byte) (*MemRegion, float64, error) {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	r := &MemRegion{h: f.nextH, buf: buf, owner: ep, active: true}
	f.nextH++
	f.regions[r.h] = r
	cost := f.RegCost(len(buf))
	observeVerb(f.mon, "rdma.reg", cost, len(buf))
	if j := f.journal; j != nil { // f.mu held: read the field directly
		j.Record(flight.Event{
			Kind: flight.KindSend, Point: "rdma.reg", Channel: ep.Name,
			T: j.Now(), Dur: cost, Step: -1, Bytes: int64(len(buf)),
		})
	}
	return r, cost, nil
}

// UnregisterMemory removes the registration. Further fabric access through
// the handle fails.
func (ep *Endpoint) UnregisterMemory(r *MemRegion) error {
	f := ep.fab
	f.mu.Lock()
	defer f.mu.Unlock()
	if r == nil || !r.active {
		return ErrNotRegistered
	}
	r.active = false
	delete(f.regions, r.h)
	return nil
}

// lookupRegion resolves a handle, enforcing registration.
func (f *Fabric) lookupRegion(h Handle) (*MemRegion, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.regions[h]
	if !ok || !r.active {
		return nil, ErrBadHandle
	}
	return r, nil
}

// Get performs a receiver-directed RDMA Get: it copies n bytes starting at
// remoteOff from the remote registered region into local[localOff:]. The
// local region must also be registered (NICs DMA only into registered
// memory). Returns the modeled transfer cost. This is the BTE RDMA path
// on Gemini.
func (ep *Endpoint) Get(remote Handle, remoteOff int, local *MemRegion, localOff, n int) (float64, error) {
	if local == nil || !local.active {
		return 0, ErrNotRegistered
	}
	src, err := ep.fab.lookupRegion(remote)
	if err != nil {
		return 0, err
	}
	if remoteOff < 0 || remoteOff+n > len(src.buf) {
		return 0, fmt.Errorf("%w: remote [%d,%d) of %d", ErrOutOfBounds, remoteOff, remoteOff+n, len(src.buf))
	}
	if localOff < 0 || localOff+n > len(local.buf) {
		return 0, fmt.Errorf("%w: local [%d,%d) of %d", ErrOutOfBounds, localOff, localOff+n, len(local.buf))
	}
	copy(local.buf[localOff:localOff+n], src.buf[remoteOff:remoteOff+n])
	cost := ep.fab.XferCost(n)
	observeVerb(ep.fab.monitor(), "rdma.get", cost, n)
	ep.fab.recordVerb("rdma.get", src.owner.Name+">"+ep.Name, cost, n)
	return cost, nil
}

// Put writes n bytes from the local registered region into the remote one
// (FMA Put on Gemini; used for small messages and message-queue delivery).
func (ep *Endpoint) Put(local *MemRegion, localOff int, remote Handle, remoteOff, n int) (float64, error) {
	if local == nil || !local.active {
		return 0, ErrNotRegistered
	}
	dst, err := ep.fab.lookupRegion(remote)
	if err != nil {
		return 0, err
	}
	if localOff < 0 || localOff+n > len(local.buf) {
		return 0, fmt.Errorf("%w: local [%d,%d) of %d", ErrOutOfBounds, localOff, localOff+n, len(local.buf))
	}
	if remoteOff < 0 || remoteOff+n > len(dst.buf) {
		return 0, fmt.Errorf("%w: remote [%d,%d) of %d", ErrOutOfBounds, remoteOff, remoteOff+n, len(dst.buf))
	}
	copy(dst.buf[remoteOff:remoteOff+n], local.buf[localOff:localOff+n])
	cost := ep.fab.XferCost(n)
	observeVerb(ep.fab.monitor(), "rdma.put", cost, n)
	ep.fab.recordVerb("rdma.put", ep.Name+">"+dst.owner.Name, cost, n)
	return cost, nil
}

// SendMsg delivers a small message into the peer's message queue (the
// paper: "the sender process uses NNTI's RDMA Put to send a message into
// the receiver process' message queue"). Non-blocking: a full queue
// returns ErrQueueFull so callers can apply backpressure policies.
func (ep *Endpoint) SendMsg(peer *Endpoint, msg []byte) (float64, error) {
	peer.mu.Lock()
	defer peer.mu.Unlock()
	if peer.closed {
		return 0, ErrClosed
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case peer.msgQ <- cp:
		ep.fab.noteMsgQDepth(len(peer.msgQ))
		cost := ep.fab.XferCost(len(msg))
		observeVerb(ep.fab.monitor(), "rdma.sendmsg", cost, len(msg))
		ep.fab.recordVerb("rdma.sendmsg", ep.Name+">"+peer.Name, cost, len(msg))
		return cost, nil
	default:
		return 0, ErrQueueFull
	}
}

// RecvMsg blocks for the next small message; ok=false after Detach.
func (ep *Endpoint) RecvMsg() (msg []byte, ok bool) {
	m, ok := <-ep.msgQ
	return m, ok
}

// TryRecvMsg polls the message queue without blocking.
func (ep *Endpoint) TryRecvMsg() (msg []byte, ok bool) {
	select {
	case m, open := <-ep.msgQ:
		return m, open
	default:
		return nil, false
	}
}

package rdma

import (
	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// Flight-recorder and gauge wiring for the emulated fabric.
//
// Registration caches are created per connection deep inside the
// transport layer, so their counters aggregate up into fabric-level
// atomics (cacheHits/cacheMisses/...); likewise the small-message-queue
// high-watermark is tracked fabric-wide against MsgQueueDepth. ReportTo
// publishes both families as monitor gauges so they surface on /metrics,
// and SetJournal records every verb as a causal send event.

// SetJournal attaches a flight recorder: every verb is journaled as a
// send event ("rdma.put", "rdma.get", "rdma.sendmsg", "rdma.reg") with
// the endpoint pair as the channel and the modeled cost as the duration.
// Verb events carry Step -1 (the core layer owns step attribution). A
// nil journal detaches.
func (f *Fabric) SetJournal(j *flight.Journal) {
	f.mu.Lock()
	f.journal = j
	f.mu.Unlock()
}

// journalRef returns the attached journal (nil when recording is off).
func (f *Fabric) journalRef() *flight.Journal {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.journal
}

// recordVerb journals one verb with its modeled cost; nil-safe via the
// journal's own nil fast path.
func (f *Fabric) recordVerb(verb, channel string, cost float64, n int) {
	j := f.journalRef()
	if j == nil {
		return
	}
	j.Record(flight.Event{
		Kind: flight.KindSend, Point: verb, Channel: channel,
		T: j.Now(), Dur: cost, Step: -1, Bytes: int64(n),
	})
}

// noteMsgQDepth folds a post-enqueue queue depth into the fabric-wide
// high-watermark. Caller holds the receiving endpoint's mutex, so depth
// is exact at enqueue time.
func (f *Fabric) noteMsgQDepth(depth int) {
	for {
		cur := f.msgqHighWater.Load()
		if int64(depth) <= cur || f.msgqHighWater.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// MsgQueueHighWater reports the deepest any endpoint's small-message
// queue has been since the fabric was created (compare MsgQueueDepth).
func (f *Fabric) MsgQueueHighWater() int { return int(f.msgqHighWater.Load()) }

// CacheTotals reports registration-cache counters aggregated across
// every RegCache created on this fabric's endpoints.
func (f *Fabric) CacheTotals() CacheStats {
	return CacheStats{
		Hits:          f.cacheHits.Load(),
		Misses:        f.cacheMisses.Load(),
		Reclaims:      f.cacheReclaims.Load(),
		BytesRetained: f.cacheBytes.Load(),
	}
}

// ReportTo publishes the fabric's resource counters as monitor gauges
// under prefix (e.g. "rdma"): registration-cache hits/misses/reclaims
// and retained bytes, and the message-queue high-watermark alongside its
// capacity. Nil-safe on both receivers.
func (f *Fabric) ReportTo(m *monitor.Monitor, prefix string) {
	if f == nil || m == nil {
		return
	}
	cs := f.CacheTotals()
	m.Set(prefix+".cache.hits", cs.Hits)
	m.Set(prefix+".cache.misses", cs.Misses)
	m.Set(prefix+".cache.reclaims", cs.Reclaims)
	m.Set(prefix+".cache.bytes_retained", cs.BytesRetained)
	m.Set(prefix+".msgq.highwater", int64(f.MsgQueueHighWater()))
	m.Set(prefix+".msgq.cap", MsgQueueDepth)
}

package rdma

import (
	"sync"
	"sync/atomic"
)

// GetScheduler throttles receiver-directed RDMA Gets. The paper leverages
// a scheduling technique from the authors' data-staging work to "effectively
// reduce network contention": the receiver bounds the number of in-flight
// bulk Gets and can further pace itself to a fraction of link bandwidth so
// asynchronous staging traffic does not starve the simulation's MPI
// communication (Section IV.A: "We have to carefully set the asynchronous
// data movement scheduling policy to keep the GTS slowdown under 15%").
type GetScheduler struct {
	tokens chan struct{}

	// PacingFraction in (0,1] scales the effective bandwidth the
	// scheduler admits; the coupled-run simulator reads it to derate
	// staging flows. 0 means unpaced (treated as 1.0).
	PacingFraction float64

	inflight atomic.Int64
	peak     atomic.Int64
	total    atomic.Int64
}

// NewGetScheduler bounds concurrent Gets to maxInflight (minimum 1).
func NewGetScheduler(maxInflight int, pacing float64) *GetScheduler {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if pacing <= 0 || pacing > 1 {
		pacing = 1
	}
	return &GetScheduler{
		tokens:         make(chan struct{}, maxInflight),
		PacingFraction: pacing,
	}
}

// MaxInflight reports the concurrency bound.
func (s *GetScheduler) MaxInflight() int { return cap(s.tokens) }

// Do runs fn under an in-flight token, blocking while the bound is
// saturated.
func (s *GetScheduler) Do(fn func() error) error {
	s.tokens <- struct{}{}
	cur := s.inflight.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	s.total.Add(1)
	defer func() {
		s.inflight.Add(-1)
		<-s.tokens
	}()
	return fn()
}

// Stats reports (current in-flight, observed peak, total scheduled).
func (s *GetScheduler) Stats() (inflight, peak, total int64) {
	return s.inflight.Load(), s.peak.Load(), s.total.Load()
}

// FetchAll issues one scheduled Get per descriptor concurrently and waits
// for completion, returning the sum of modeled transfer costs and the
// first error. Descriptors name a remote handle range and a local
// registered destination.
type GetDesc struct {
	Remote    Handle
	RemoteOff int
	Local     *MemRegion
	LocalOff  int
	N         int
}

// FetchAll performs the receiver side of a bulk transfer under the
// scheduler's concurrency bound.
func (s *GetScheduler) FetchAll(ep *Endpoint, descs []GetDesc) (float64, error) {
	var (
		mu        sync.Mutex
		totalCost float64
		firstErr  error
		wg        sync.WaitGroup
	)
	for _, d := range descs {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Do(func() error {
				cost, err := ep.Get(d.Remote, d.RemoteOff, d.Local, d.LocalOff, d.N)
				mu.Lock()
				totalCost += cost
				mu.Unlock()
				return err
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return totalCost, firstErr
}

package rdma

import (
	"strings"
	"testing"

	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// TestFabricGaugesAndCacheTotals: registration-cache counters created on
// any endpoint aggregate into fabric totals, the message-queue
// high-watermark tracks the deepest enqueue, and ReportTo publishes both
// families as monitor gauges.
func TestFabricGaugesAndCacheTotals(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)

	c := NewRegCache(a, 1<<20)
	r1, _, err := c.Acquire(4096) // miss
	if err != nil {
		t.Fatal(err)
	}
	c.Release(r1)
	r2, _, err := c.Acquire(4096) // hit (same size class, retained)
	if err != nil {
		t.Fatal(err)
	}
	c.Release(r2)

	for i := 0; i < 5; i++ {
		if _, err := a.SendMsg(b, []byte("ping")); err != nil {
			t.Fatal(err)
		}
	}

	ct := f.CacheTotals()
	if ct.Hits != 1 || ct.Misses != 1 {
		t.Fatalf("cache totals = %+v, want 1 hit / 1 miss", ct)
	}
	if hw := f.MsgQueueHighWater(); hw != 5 {
		t.Fatalf("msgq highwater = %d, want 5", hw)
	}

	m := monitor.New("transport")
	f.ReportTo(m, "rdma")
	g := m.Snapshot().Gauges
	if g["rdma.cache.hits"] != 1 || g["rdma.cache.misses"] != 1 {
		t.Fatalf("cache gauges: %v", g)
	}
	if g["rdma.msgq.highwater"] != 5 || g["rdma.msgq.cap"] != MsgQueueDepth {
		t.Fatalf("msgq gauges: %v", g)
	}
	var nilFab *Fabric
	nilFab.ReportTo(m, "rdma") // nil-safe
	f.ReportTo(nil, "rdma")
}

// TestFabricJournalsVerbs: with a recorder attached every verb becomes a
// transport-level send event carrying the modeled cost and the endpoint
// pair; detaching stops recording.
func TestFabricJournalsVerbs(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	j := flight.NewJournal(0)
	f.SetJournal(j)

	src := make([]byte, 2048)
	sreg, _, err := a.RegisterMemory(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 2048)
	dreg, _, err := b.RegisterMemory(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(sreg.Handle(), 0, dreg, 0, 2048); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put(dreg, 0, sreg.Handle(), 0, 2048); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SendMsg(b, []byte("ping")); err != nil {
		t.Fatal(err)
	}

	points := map[string]int{}
	for _, ev := range j.Snapshot() {
		if ev.Step != -1 {
			t.Fatalf("verb event must be transport-level: %+v", ev)
		}
		if ev.Kind != flight.KindSend || ev.Dur <= 0 {
			t.Fatalf("verb event needs kind+cost: %+v", ev)
		}
		if ev.Point != "rdma.reg" && !strings.Contains(ev.Channel, ">") {
			t.Fatalf("verb event lacks endpoint pair: %+v", ev)
		}
		points[ev.Point]++
	}
	if points["rdma.reg"] != 2 || points["rdma.get"] != 1 || points["rdma.put"] != 1 || points["rdma.sendmsg"] != 1 {
		t.Fatalf("journaled verbs: %v", points)
	}

	f.SetJournal(nil)
	seen := j.Seen()
	if _, err := a.SendMsg(b, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if j.Seen() != seen {
		t.Fatal("detached fabric still journals")
	}
}

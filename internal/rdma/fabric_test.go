package rdma

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"flexio/internal/machine"
)

func testFabric() *Fabric {
	return NewFabric(machine.Titan(2).Net)
}

func TestAttachLookupDetach(t *testing.T) {
	f := testFabric()
	a, err := f.Attach("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("a", 0); err == nil {
		t.Fatal("duplicate attach must fail")
	}
	got, err := f.Lookup("a")
	if err != nil || got != a {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	f.Detach(a)
	if _, err := f.Lookup("a"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("lookup after detach = %v, want ErrUnknownPeer", err)
	}
}

func TestRegisterGetPut(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)

	src := []byte("the quick brown fox")
	sreg, cost, err := a.RegisterMemory(src)
	if err != nil || cost <= 0 {
		t.Fatalf("register: cost=%g err=%v", cost, err)
	}
	dst := make([]byte, len(src))
	dreg, _, err := b.RegisterMemory(dst)
	if err != nil {
		t.Fatal(err)
	}

	xc, err := b.Get(sreg.Handle(), 0, dreg, 0, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("Get copied %q, want %q", dst, src)
	}
	if want := f.XferCost(len(src)); xc != want {
		t.Fatalf("xfer cost = %g, want %g", xc, want)
	}

	// Put back a modified prefix.
	copy(dst, "THE QUICK")
	if _, err := b.Put(dreg, 0, sreg.Handle(), 0, 9); err != nil {
		t.Fatal(err)
	}
	if string(src[:9]) != "THE QUICK" {
		t.Fatalf("Put result = %q", src[:9])
	}
}

func TestGetPartialRange(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	src := []byte("0123456789")
	sreg, _, _ := a.RegisterMemory(src)
	dst := make([]byte, 4)
	dreg, _, _ := b.RegisterMemory(dst)
	if _, err := b.Get(sreg.Handle(), 3, dreg, 0, 4); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "3456" {
		t.Fatalf("partial get = %q", dst)
	}
}

func TestGetErrors(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	src := make([]byte, 8)
	sreg, _, _ := a.RegisterMemory(src)
	dst := make([]byte, 8)
	dreg, _, _ := b.RegisterMemory(dst)

	if _, err := b.Get(sreg.Handle(), 4, dreg, 0, 8); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("remote OOB = %v", err)
	}
	if _, err := b.Get(sreg.Handle(), 0, dreg, 4, 8); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("local OOB = %v", err)
	}
	if _, err := b.Get(Handle(9999), 0, dreg, 0, 4); !errors.Is(err, ErrBadHandle) {
		t.Errorf("bad handle = %v", err)
	}
	a.UnregisterMemory(sreg)
	if _, err := b.Get(sreg.Handle(), 0, dreg, 0, 4); !errors.Is(err, ErrBadHandle) {
		t.Errorf("unregistered handle = %v", err)
	}
	if _, err := b.Get(sreg.Handle(), 0, nil, 0, 4); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("nil local region = %v", err)
	}
	if err := a.UnregisterMemory(sreg); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("double unregister = %v", err)
	}
}

func TestDetachInvalidatesRegions(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	sreg, _, _ := a.RegisterMemory(make([]byte, 16))
	dreg, _, _ := b.RegisterMemory(make([]byte, 16))
	f.Detach(a)
	if _, err := b.Get(sreg.Handle(), 0, dreg, 0, 8); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("region must die with endpoint, got %v", err)
	}
}

func TestMessageQueue(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	if _, err := a.SendMsg(b, []byte("ctrl")); err != nil {
		t.Fatal(err)
	}
	msg, ok := b.RecvMsg()
	if !ok || string(msg) != "ctrl" {
		t.Fatalf("RecvMsg = %q, %v", msg, ok)
	}
	if _, ok := b.TryRecvMsg(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestMessageQueueFull(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	for i := 0; i < MsgQueueDepth; i++ {
		if _, err := a.SendMsg(b, []byte{1}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if _, err := a.SendMsg(b, []byte{1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue = %v, want ErrQueueFull", err)
	}
}

func TestMessageQueueClosed(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	f.Detach(b)
	if _, err := a.SendMsg(b, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed = %v", err)
	}
	if _, ok := b.RecvMsg(); ok {
		t.Fatal("recv on closed must report !ok")
	}
}

func TestMsgCopiesPayload(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	buf := []byte("mutable")
	a.SendMsg(b, buf)
	buf[0] = 'X'
	msg, _ := b.RecvMsg()
	if string(msg) != "mutable" {
		t.Fatal("SendMsg must copy the payload")
	}
}

func TestCostModel(t *testing.T) {
	f := testFabric()
	// Costs grow with size and registration dominates for small dynamic
	// transfers.
	if f.RegCost(4096) >= f.RegCost(1<<20) {
		t.Error("registration cost must grow with pages")
	}
	if f.XferCost(1) >= f.XferCost(1<<20) {
		t.Error("transfer cost must grow with bytes")
	}
	small := f.XferCost(1024)
	if f.RegCost(1024) < small/100 {
		t.Error("registration should be a visible fraction of small-transfer cost")
	}
}

func TestRegCacheHitsAndReclaim(t *testing.T) {
	f := testFabric()
	ep, _ := f.Attach("a", 0)
	c := NewRegCache(ep, 8192)
	r1, cost1, err := c.Acquire(4096)
	if err != nil || cost1 <= 0 {
		t.Fatalf("first acquire: %g, %v", cost1, err)
	}
	c.Release(r1)
	r2, cost2, err := c.Acquire(4000) // same class
	if err != nil || cost2 != 0 {
		t.Fatalf("cache hit must be free, got %g, %v", cost2, err)
	}
	if r2 != r1 {
		t.Fatal("expected region reuse")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Exceed threshold: 8K retained max; park two 8K regions.
	r3, _, _ := c.Acquire(8192)
	r4, _, _ := c.Acquire(8192)
	c.Release(r3)
	c.Release(r4) // 16K > 8K threshold -> reclaim
	if got := c.Stats().Reclaims; got != 1 {
		t.Fatalf("Reclaims = %d, want 1", got)
	}
}

func TestRegCacheDrain(t *testing.T) {
	f := testFabric()
	ep, _ := f.Attach("a", 0)
	peer, _ := f.Attach("b", 1)
	c := NewRegCache(ep, 0)
	r, _, _ := c.Acquire(4096)
	h := r.Handle()
	c.Release(r)
	c.Drain()
	dst, _, _ := peer.RegisterMemory(make([]byte, 16))
	if _, err := peer.Get(h, 0, dst, 0, 8); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("drained region must be unregistered, got %v", err)
	}
	if c.Stats().BytesRetained != 0 {
		t.Fatal("retained bytes must be zero after drain")
	}
}

func TestGetSchedulerBound(t *testing.T) {
	s := NewGetScheduler(3, 0)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(func() error {
				<-gate
				return nil
			})
		}()
	}
	// Give the workers a chance to saturate the bound, then release.
	for {
		inflight, _, _ := s.Stats()
		if inflight == 3 {
			break
		}
	}
	close(gate)
	wg.Wait()
	_, peak, total := s.Stats()
	if peak > 3 {
		t.Fatalf("peak inflight %d exceeded bound 3", peak)
	}
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
}

func TestGetSchedulerPacingDefaults(t *testing.T) {
	if s := NewGetScheduler(0, -1); s.MaxInflight() != 1 || s.PacingFraction != 1 {
		t.Fatalf("defaults: inflight=%d pacing=%g", s.MaxInflight(), s.PacingFraction)
	}
}

func TestFetchAll(t *testing.T) {
	f := testFabric()
	a, _ := f.Attach("a", 0)
	b, _ := f.Attach("b", 1)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	sreg, _, _ := a.RegisterMemory(src)
	dst := make([]byte, 1024)
	dreg, _, _ := b.RegisterMemory(dst)
	var descs []GetDesc
	for off := 0; off < 1024; off += 256 {
		descs = append(descs, GetDesc{
			Remote: sreg.Handle(), RemoteOff: off,
			Local: dreg, LocalOff: off, N: 256,
		})
	}
	s := NewGetScheduler(2, 0)
	cost, err := s.FetchAll(b, descs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("FetchAll data mismatch")
	}
	if want := 4 * f.XferCost(256); cost != want {
		t.Fatalf("cost = %g, want %g", cost, want)
	}
}

func TestFetchAllPropagatesError(t *testing.T) {
	f := testFabric()
	b, _ := f.Attach("b", 1)
	dst := make([]byte, 64)
	dreg, _, _ := b.RegisterMemory(dst)
	s := NewGetScheduler(2, 0)
	_, err := s.FetchAll(b, []GetDesc{{Remote: Handle(404), Local: dreg, N: 8}})
	if !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v, want ErrBadHandle", err)
	}
}

func TestMeasureGetBandwidthShapes(t *testing.T) {
	f := testFabric()
	sizes := []int{1 << 10, 64 << 10, 1 << 20, 16 << 20}
	var prevDyn, prevStat float64
	for _, sz := range sizes {
		dyn, err := MeasureGetBandwidth(f, sz, 4, DynamicRegistration)
		if err != nil {
			t.Fatal(err)
		}
		stat, err := MeasureGetBandwidth(f, sz, 4, StaticRegistration)
		if err != nil {
			t.Fatal(err)
		}
		if stat.BandwidthBs <= dyn.BandwidthBs {
			t.Errorf("size %d: static (%.0f) must beat dynamic (%.0f)", sz, stat.BandwidthBs, dyn.BandwidthBs)
		}
		if dyn.BandwidthBs < prevDyn || stat.BandwidthBs < prevStat {
			t.Errorf("size %d: bandwidth should be non-decreasing with size", sz)
		}
		prevDyn, prevStat = dyn.BandwidthBs, stat.BandwidthBs
	}
	// At large sizes the curves converge (Figure 4's shape): the gap at
	// 16 MiB is proportionally far smaller than at 1 KiB.
	dynS, _ := MeasureGetBandwidth(f, 1<<10, 4, DynamicRegistration)
	statS, _ := MeasureGetBandwidth(f, 1<<10, 4, StaticRegistration)
	dynL, _ := MeasureGetBandwidth(f, 16<<20, 4, DynamicRegistration)
	statL, _ := MeasureGetBandwidth(f, 16<<20, 4, StaticRegistration)
	gapSmall := statS.BandwidthBs / dynS.BandwidthBs
	gapLarge := statL.BandwidthBs / dynL.BandwidthBs
	if gapSmall < 2*gapLarge {
		t.Errorf("registration penalty should fade with size: small gap %.2fx, large gap %.2fx", gapSmall, gapLarge)
	}
}

func TestMeasureGetBandwidthCachedMatchesStatic(t *testing.T) {
	f := testFabric()
	cached, err := MeasureGetBandwidth(f, 1<<20, 16, CachedRegistration)
	if err != nil {
		t.Fatal(err)
	}
	static, err := MeasureGetBandwidth(f, 1<<20, 16, StaticRegistration)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cached.BandwidthBs / static.BandwidthBs
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("cached (%.0f) should approximate static (%.0f) after warmup", cached.BandwidthBs, static.BandwidthBs)
	}
}

func TestMeasureGetBandwidthErrors(t *testing.T) {
	f := testFabric()
	if _, err := MeasureGetBandwidth(f, 0, 4, StaticRegistration); err == nil {
		t.Error("zero size must error")
	}
	if _, err := MeasureGetBandwidth(f, 1024, 4, RegistrationMode(42)); err == nil {
		t.Error("unknown mode must error")
	}
}

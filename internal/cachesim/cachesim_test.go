package cachesim

import (
	"math"
	"testing"
	"testing/quick"

	"flexio/internal/machine"
)

func TestEffectiveShare(t *testing.T) {
	// Solo: whole cache (capped at cache size).
	if got := EffectiveShare(2<<20, 1<<20, 0); got != float64(2<<20) {
		t.Fatalf("solo small ws share = %g", got)
	}
	// Equal demands: half each.
	if got := EffectiveShare(1000, 500, 500); got != 500 {
		t.Fatalf("equal share = %g", got)
	}
	// Zero working set: degenerate, full cache.
	if got := EffectiveShare(1000, 0, 500); got != 1000 {
		t.Fatalf("zero ws share = %g", got)
	}
}

func TestMPKIMonotonicInFootprint(t *testing.T) {
	m := Default()
	c := machine.Smoky(1).Node.L3PerNUMA
	prev := -1.0
	for f := int64(0); f <= 8<<20; f += 1 << 20 {
		got := m.MPKI(c, GTSSmokyWorkingSet, f)
		if got < prev {
			t.Fatalf("MPKI decreased with co-runner footprint at %d", f)
		}
		prev = got
	}
}

func TestSlowdownNeverBelowOne(t *testing.T) {
	m := Default()
	f := func(cache, ws, co uint32) bool {
		s := m.Slowdown(int64(cache)+1, int64(ws), int64(co))
		return s >= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFigure8Calibration pins the model to the paper's measurements: GTS
// with analytics on the helper core sees ~47% more L3 misses and ~4.1%
// longer simulation time than GTS solo.
func TestFigure8Calibration(t *testing.T) {
	m := Default()
	cache := machine.Smoky(1).Node.L3PerNUMA // 2 MB Barcelona L3
	infl := m.MissInflation(cache, GTSSmokyWorkingSet, GTSAnalyticsFootprint)
	if infl < 1.42 || infl > 1.52 {
		t.Fatalf("miss inflation = %.3f, want ~1.47", infl)
	}
	slow := m.Slowdown(cache, GTSSmokyWorkingSet, GTSAnalyticsFootprint)
	if slow < 1.035 || slow > 1.047 {
		t.Fatalf("slowdown = %.4f, want ~1.041", slow)
	}
}

func TestNoInterferenceWhenCacheFits(t *testing.T) {
	m := Default()
	// Tiny working sets in a huge cache: sharing costs nothing.
	if s := m.Slowdown(64<<20, 1<<20, 1<<20); s != 1 {
		t.Fatalf("slowdown = %g, want 1 (everything fits)", s)
	}
	if infl := m.MissInflation(64<<20, 1<<20, 1<<20); infl != 1 {
		t.Fatalf("inflation = %g, want 1", infl)
	}
}

func TestMissInflationZeroBase(t *testing.T) {
	m := Model{BaseMPKI: 0, Alpha: 1, PenaltyPerMPKI: 1}
	if infl := m.MissInflation(100, 1000, 1000); infl != 1 {
		t.Fatalf("zero-base inflation = %g", infl)
	}
}

// Package cachesim models shared last-level-cache interference between
// co-located simulation and analytics processes — the effect measured
// with PAPI hardware counters in Figure 8 of the FlexIO paper: GTS
// experiences 47% more L3 misses when analytics shares its L3, and its
// simulation time grows by 4.1%. No hardware counters exist here, so the
// effect is modeled.
//
// Model: co-runners sharing an LLC of capacity C receive capacity in
// proportion to their demands (a standard approximation of LRU sharing):
// a workload with working set W sharing with total co-runner footprint F
// effectively owns S = C * W / (W + F). Misses grow linearly with the
// fraction of the working set that no longer fits:
//
//	MPKI(S) = BaseMPKI * (1 + Alpha * max(0, (W-S)/W))
//
// and the runtime penalty is PenaltyPerMPKI per additional miss per
// kilo-instruction. Alpha and PenaltyPerMPKI are calibrated so that the
// paper's GTS-on-Smoky configuration (3-thread GTS working set sharing a
// 2 MB Barcelona L3 with a one-core analytics process) reproduces the
// published +47% misses and +4.1% runtime.
package cachesim

// Model holds the interference parameters.
type Model struct {
	// BaseMPKI is the workload's L3 misses per kilo-instruction when it
	// owns the whole cache and nothing spills.
	BaseMPKI float64
	// Alpha scales capacity misses with the spilled working-set fraction.
	Alpha float64
	// PenaltyPerMPKI converts additional MPKI into fractional slowdown.
	PenaltyPerMPKI float64
}

// Default parameters calibrated against Figure 8 (see package comment and
// TestFigure8Calibration).
func Default() Model {
	return Model{
		BaseMPKI:       5.0,
		Alpha:          1.374,
		PenaltyPerMPKI: 0.0137,
	}
}

// EffectiveShare returns the cache capacity a workload with working set
// ws effectively owns when sharing cacheBytes with co-runners totalling
// coFootprint bytes of demand.
func EffectiveShare(cacheBytes, ws, coFootprint int64) float64 {
	if ws <= 0 {
		return float64(cacheBytes)
	}
	demand := float64(ws + coFootprint)
	if demand <= 0 {
		return float64(cacheBytes)
	}
	share := float64(cacheBytes) * float64(ws) / demand
	if share > float64(cacheBytes) {
		share = float64(cacheBytes)
	}
	return share
}

// MPKI returns the modeled miss rate (misses per 1K instructions) for a
// working set ws on a cache of cacheBytes shared with coFootprint bytes
// of co-runner demand.
func (m Model) MPKI(cacheBytes, ws, coFootprint int64) float64 {
	share := EffectiveShare(cacheBytes, ws, coFootprint)
	spill := 0.0
	if ws > 0 && share < float64(ws) {
		spill = (float64(ws) - share) / float64(ws)
	}
	return m.BaseMPKI * (1 + m.Alpha*spill)
}

// Slowdown returns the multiplicative runtime factor (>= 1) caused by
// co-runner interference relative to running solo on the same cache.
func (m Model) Slowdown(cacheBytes, ws, coFootprint int64) float64 {
	solo := m.MPKI(cacheBytes, ws, 0)
	shared := m.MPKI(cacheBytes, ws, coFootprint)
	d := shared - solo
	if d < 0 {
		d = 0
	}
	return 1 + d*m.PenaltyPerMPKI
}

// MissInflation returns the ratio shared/solo MPKI (Figure 8's metric).
func (m Model) MissInflation(cacheBytes, ws, coFootprint int64) float64 {
	solo := m.MPKI(cacheBytes, ws, 0)
	if solo == 0 {
		return 1
	}
	return m.MPKI(cacheBytes, ws, coFootprint) / solo
}

// GTSSmokyWorkingSet and GTSAnalyticsFootprint are the calibrated
// footprints for the paper's Figure 8 configuration: three GTS OpenMP
// threads stream a ~2.5 MB hot working set through the socket's 2 MB L3;
// the co-located analytics process (histogramming a 110 MB particle
// buffer) keeps a ~3 MB resident footprint hot.
const (
	GTSSmokyWorkingSet    int64 = 2_500_000
	GTSAnalyticsFootprint int64 = 3_000_000
)

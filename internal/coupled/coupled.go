// Package coupled simulates the execution of a simulation+analytics
// pipeline under a chosen placement, in virtual time. It is the engine
// that regenerates the paper's evaluation figures: Total Execution Time
// for GTS and S3D under inline / helper-core / staging / hybrid
// placements (Figures 6 and 9), the detailed per-phase timing breakdown
// (Figure 7), and the L3 interference numbers (Figure 8).
//
// The model is interval-structured: the simulation alternates compute
// phases and I/O actions; analytics consumes each emitted step. Costs
// come from three places:
//
//   - application models (internal/apps/...) supply compute times, data
//     volumes and cache footprints, calibrated to the configurations the
//     paper reports;
//   - data movement runs through the fluid-flow network model
//     (internal/simnet) over the machine's resources, so NIC injection
//     limits, bisection contention, per-client file-system ceilings and
//     shm vs. RDMA transport choices all shape the result;
//   - the shared-LLC model (internal/cachesim) inflates simulation time
//     when analytics processes share a NUMA domain's cache with
//     simulation threads.
package coupled

import (
	"fmt"
	"math"

	"flexio/internal/cachesim"
	"flexio/internal/core"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/placement"
	"flexio/internal/simnet"
)

// AppModel describes a coupled application pair for the simulator.
type AppModel struct {
	Name string

	// SimComputePerInterval is the pure compute time between two I/O
	// actions for one simulation process running with the given thread
	// count (no I/O, no interference).
	SimComputePerInterval func(threads int) float64
	// OutputBytesPerProc is the data each simulation process emits per
	// I/O action.
	OutputBytesPerProc float64
	// SimMPIBytesPerProc is each simulation process's internal MPI volume
	// per interval; used by resource allocation. Placement-dependent MPI
	// time is computed from the placement spec's communication graph.
	SimMPIBytesPerProc float64
	// NUMAStraddlePenalty is the fractional compute slowdown of a
	// simulation process whose OpenMP threads span a NUMA boundary
	// (GTS on Smoky: up to 7%).
	NUMAStraddlePenalty float64

	// AnaComputePerStep is the analytics time for one step on p
	// processes consuming totalBytes of input (the strong-scaling
	// function used by resource allocation).
	AnaComputePerStep func(p int, totalBytes float64) float64
	// AnaMPIBytesPerProc is analytics-internal MPI per step.
	AnaMPIBytesPerProc float64

	// InlineFraction is inline analytics cost as a fraction of the sim
	// compute interval (GTS: 23.6% of runtime).
	InlineFraction float64
	// InlineFileBytesPerProc is written to the parallel FS per process
	// per interval when running inline (S3D's image outputs); 0 if none.
	InlineFileBytesPerProc float64
	// InlineScalePerProc is the per-simulation-process cost added to the
	// inline analytics path (global reductions and output-metadata
	// contention that serialize across all ranks) — the "penalty of
	// running non-scalable analytics at large scales". Offloaded
	// analytics overlaps this cost; inline exposes it.
	InlineScalePerProc float64

	// VarsPerStep is the number of variables written per I/O action
	// (drives handshake and per-message costs; S3D: 22).
	VarsPerStep int

	// Cache interference inputs (Figure 8): the per-NUMA working set of
	// co-scheduled sim threads and the footprint of one analytics
	// process.
	SimWorkingSetPerNUMA int64
	AnaFootprint         int64
	Cache                cachesim.Model
}

// Config selects one run.
type Config struct {
	Machine *machine.Machine
	App     AppModel
	Place   *placement.Placement
	Steps   int

	// Async selects asynchronous writes (movement overlaps compute).
	Async bool
	// Caching is the handshake caching level.
	Caching core.CachingLevel
	// Batching packs all variables into one transfer per pair.
	Batching bool
	// PacingFraction derates bulk staging flows (the Get scheduling
	// policy); 0 means unpaced (1.0).
	PacingFraction float64
	// WritersPerReader maps simulation ranks onto analytics ranks
	// contiguously; 0 derives it from the placement's process counts.
	WritersPerReader int

	// Mon, when non-nil, receives one virtual-time span per phase per
	// step ("sim.compute", "sim.io", "analysis") plus the matching
	// latency histograms, so a modeled run exports the same Chrome trace
	// a real stream does. MonBase offsets the span timestamps and
	// MonStep the step labels (RunSwitched uses both to line up the two
	// epochs on one timeline); MonEpoch tags the spans' session epoch
	// (0 means epoch 1).
	Mon      *monitor.Monitor
	MonBase  float64
	MonStep  int
	MonEpoch uint64

	// Journal, when non-nil, additionally receives the per-step causal
	// event chain (sim.compute → sim.io → analysis, parent-linked) on the
	// same virtual timeline as the spans. The model is a single-threaded
	// discrete-event computation, so two runs of the same Config produce
	// byte-identical journals — the invariant the replay checker tests.
	Journal *flight.Journal
}

// Phases is the Figure 7 breakdown, per I/O interval (averaged).
type Phases struct {
	SimCompute float64 // cycle1 + cycle2
	SimVisIO   float64 // I/O time visible to the simulation
	Analysis   float64 // analytics busy time
	AnaIdle    float64 // analytics idle time within the interval
}

// Result is the outcome of one simulated run.
type Result struct {
	Name      string
	Policy    string
	Kind      placement.Kind
	TotalTime float64 // paper's Total Execution Time
	CPUHours  float64 // nodes used x total time / 3600
	NodesUsed int
	Phases    Phases
	// InterNodeBytes is the inter-program data volume that crossed the
	// interconnect per interval (Data Movement Volume metric).
	InterNodeBytes float64
	// MPKISolo/MPKIShared are the Figure 8 cache numbers for sim threads.
	MPKISolo, MPKIShared float64
	// SimSlowdown aggregates cache + network interference on the sim.
	SimSlowdown float64
	// MoveTime is the full transfer duration per interval (wall, not
	// necessarily visible to the simulation when async).
	MoveTime float64
}

// SoloTime returns the lower-bound runtime: the simulation running alone
// with the given threads, performing no I/O and no analytics ("data
// movement and analytics are free and infinitely fast").
func SoloTime(app AppModel, threads, steps int) float64 {
	return float64(steps) * app.SimComputePerInterval(threads)
}

// Run simulates the coupled execution.
func Run(cfg Config) (Result, error) {
	p := cfg.Place
	if p == nil {
		return Result{}, fmt.Errorf("coupled: nil placement")
	}
	spec := p.Spec
	m := cfg.Machine
	if m == nil {
		m = spec.Machine
	}
	app := cfg.App
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	threads := spec.SimThreads
	if threads < 1 {
		threads = 1
	}
	res := Result{
		Name:      app.Name,
		Policy:    p.Policy,
		Kind:      p.Kind(),
		NodesUsed: p.NodesUsed(),
	}

	simCompute := app.SimComputePerInterval(threads)

	// --- NUMA-straddling penalty (holistic vs. topology-aware) ---
	// A linear within-node layout can split a process's OpenMP threads
	// across NUMA boundaries; the topology-aware policy avoids this.
	// The simulation is bulk-synchronous, so a single straddling process
	// gates every interval: any straddler incurs the full penalty.
	straddleFactor := 1.0
	if threads > 1 && app.NUMAStraddlePenalty > 0 {
		for _, c := range p.SimCore {
			if m.NUMAOfCore(c) != m.NUMAOfCore(c+threads-1) {
				straddleFactor = 1 + app.NUMAStraddlePenalty
				break
			}
		}
	}

	// --- Cache interference (helper-core style placements) ---
	res.MPKISolo = app.Cache.MPKI(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, 0)
	res.MPKIShared = res.MPKISolo
	cacheFactor := 1.0
	if !p.InlineAnalytics && anaSharesSimNUMA(p, m) {
		cacheFactor = app.Cache.Slowdown(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, app.AnaFootprint)
		res.MPKIShared = app.Cache.MPKI(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, app.AnaFootprint)
	}
	simComputeAdj := simCompute * cacheFactor * straddleFactor

	// Placement-dependent internal MPI time: each program's per-interval
	// exchanges travel intra-NUMA, cross-NUMA or across the interconnect
	// depending on where the placement put the peers. This is how a
	// binding's communication cost becomes wall-clock time.
	simMPI, anaMPI := internalMPITimes(p, m)

	// --- Inline baseline: analytics is a function call in the sim ---
	if p.InlineAnalytics {
		inline := app.InlineFraction*simCompute + app.InlineScalePerProc*float64(spec.NSim)
		fileIO := inlineFileTime(cfg, m, spec)
		interval := simCompute + simMPI + inline + fileIO
		res.Phases = Phases{SimCompute: simCompute + simMPI, SimVisIO: fileIO, Analysis: inline}
		res.TotalTime = float64(cfg.Steps) * interval
		res.SimSlowdown = interval / (simCompute + simMPI)
		res.CPUHours = float64(res.NodesUsed) * res.TotalTime / 3600
		recordStepSpans(cfg, interval, res.Phases)
		recordStepEvents(cfg, interval, res.Phases)
		return res, nil
	}

	// --- Offline placement: data goes to the file system; analytics runs
	// as a separate job afterwards (the rightmost option in Figure 1).
	// Total Execution Time spans "the start of simulation and analytics
	// to the completion of both", so the offline pass is serialized after
	// the simulation.
	if spec.NAna == 0 {
		writeT := fsWriteTime(cfg, m, p, app.OutputBytesPerProc)
		interval := simComputeAdj + simMPI + writeT
		totalBytes := app.OutputBytesPerProc * float64(spec.NSim)
		// Offline analytics: read everything back, then analyze at the
		// same rate one process per node would (a modest offline job).
		offlineProcs := maxInt(1, spec.NSim/m.Node.Cores)
		readT := totalBytes / m.FS.AggregateBandwidth
		offline := float64(cfg.Steps) * (readT + app.AnaComputePerStep(offlineProcs, totalBytes))
		res.Phases = Phases{SimCompute: simComputeAdj + simMPI, SimVisIO: writeT}
		res.TotalTime = float64(cfg.Steps)*interval + offline
		res.SimSlowdown = interval / (simCompute + simMPI)
		res.CPUHours = float64(res.NodesUsed) * res.TotalTime / 3600
		recordStepSpans(cfg, interval, res.Phases)
		recordStepEvents(cfg, interval, res.Phases)
		return res, nil
	}

	// --- Stream placements: movement through the transports ---
	moveTime, visible, interNode, txMaxPerSimNode := movementTimes(cfg, m, p)
	res.MoveTime = moveTime
	res.InterNodeBytes = interNode

	// Asynchronous bulk movement interferes with the simulation in
	// proportion to the outbound volume leaving each *simulation* node:
	// NIC saturation, progress-engine CPU and host memory traffic all
	// scale with it. BurstInterference converts NIC-seconds of staging
	// egress into lost simulation time; the Get-scheduling policy bounds
	// the damage to the tuned budget ("keep the GTS slowdown under 15%").
	var mpiPenalty float64
	if cfg.Async && interNode > 0 {
		pacing := cfg.PacingFraction
		if pacing <= 0 || pacing > 1 {
			pacing = 1
		}
		mpiPenalty = BurstInterference * pacing * txMaxPerSimNode / m.Net.InjectionBandwidth
		if budget := MaxTunedSlowdown * simCompute; mpiPenalty > budget {
			mpiPenalty = budget
		}
	}

	totalBytes := app.OutputBytesPerProc * float64(spec.NSim)
	anaTime := app.AnaComputePerStep(spec.NAna, totalBytes) + anaMPI

	simInterval := simComputeAdj + simMPI + mpiPenalty + visible
	anaInterval := anaTime
	if cfg.Async {
		// Asynchronous: analytics waits for movement completion, which
		// overlaps sim compute; its stage extends only if movement
		// outlasts the sim interval.
		over := moveTime - simInterval
		if over > 0 {
			anaInterval = anaTime + over
		}
	}
	interval := math.Max(simInterval, anaInterval)

	res.Phases = Phases{
		SimCompute: simComputeAdj + simMPI + mpiPenalty,
		SimVisIO:   visible,
		Analysis:   anaTime,
		AnaIdle:    math.Max(0, interval-anaTime),
	}
	res.SimSlowdown = simInterval / (simCompute + simMPI)
	// Drain: the final step's movement + analysis happen after the last
	// sim interval.
	drain := anaTime
	if cfg.Async {
		drain += moveTime
	}
	res.TotalTime = float64(cfg.Steps)*interval + drain
	res.CPUHours = float64(res.NodesUsed) * res.TotalTime / 3600
	recordStepSpans(cfg, interval, res.Phases)
	recordStepEvents(cfg, interval, res.Phases)
	return res, nil
}

// recordStepSpans emits the run's per-step phase spans onto the config's
// monitor, on virtual time: each step occupies one interval, with the
// sim-visible I/O and the analytics stage laid out after the compute
// phase. RecordSpan also folds each duration into the point's latency
// histogram, so a modeled run reports p50/p95/p99 like a real one.
func recordStepSpans(cfg Config, interval float64, ph Phases) {
	if cfg.Mon == nil {
		return
	}
	epoch := cfg.MonEpoch
	if epoch == 0 {
		epoch = 1
	}
	for s := 0; s < cfg.Steps; s++ {
		step := int64(cfg.MonStep + s)
		base := cfg.MonBase + float64(s)*interval
		cfg.Mon.RecordSpan(monitor.Span{
			Point: "sim.compute", Step: step, Epoch: epoch,
			Start: base, Dur: ph.SimCompute,
		})
		if ph.SimVisIO > 0 {
			cfg.Mon.RecordSpan(monitor.Span{
				Point: "sim.io", Step: step, Epoch: epoch,
				Start: base + ph.SimCompute, Dur: ph.SimVisIO,
			})
		}
		if ph.Analysis > 0 {
			cfg.Mon.RecordSpan(monitor.Span{
				Point: "analysis", Step: step, Epoch: epoch,
				Start: base + ph.SimCompute + ph.SimVisIO, Dur: ph.Analysis,
			})
		}
	}
}

// recordStepEvents mirrors recordStepSpans into the flight journal: each
// step's phases become a parent-linked causal chain — sim.compute, then
// the sim-visible I/O (a send), then the analytics stage — laid out on
// the same virtual timeline as the spans. Because the chain is purely
// sequential, the step's critical path covers the whole envelope and its
// edge durations sum exactly to the span-measured interval, which is the
// invariant the critpath driver gates at 5%.
func recordStepEvents(cfg Config, interval float64, ph Phases) {
	j := cfg.Journal
	if j == nil {
		return
	}
	epoch := cfg.MonEpoch
	if epoch == 0 {
		epoch = 1
	}
	for s := 0; s < cfg.Steps; s++ {
		step := int64(cfg.MonStep + s)
		base := cfg.MonBase + float64(s)*interval
		parent := j.Record(flight.Event{
			Kind: flight.KindCompute, Point: "sim.compute",
			Rank: 0, Step: step, Epoch: epoch,
			T: base, Dur: ph.SimCompute,
		})
		t := base + ph.SimCompute
		if ph.SimVisIO > 0 {
			parent = j.Record(flight.Event{
				Kind: flight.KindSend, Point: "sim.io", Channel: "sim>ana",
				Rank: 0, Step: step, Epoch: epoch, Parent: parent,
				T: t, Dur: ph.SimVisIO,
			})
			t += ph.SimVisIO
		}
		if ph.Analysis > 0 {
			j.Record(flight.Event{
				Kind: flight.KindCompute, Point: "analysis",
				Rank: 1, Step: step, Epoch: epoch, Parent: parent,
				T: t, Dur: ph.Analysis,
			})
		}
	}
}

// anaSharesSimNUMA reports whether any analytics process shares a NUMA
// domain (and therefore an L3) with any simulation process's threads.
func anaSharesSimNUMA(p *placement.Placement, m *machine.Machine) bool {
	type dom struct{ node, numa int }
	simDoms := make(map[dom]bool)
	threads := p.Spec.SimThreads
	if threads < 1 {
		threads = 1
	}
	for _, c := range p.SimCore {
		for t := 0; t < threads; t++ {
			simDoms[dom{m.NodeOfCore(c + t), m.NUMAOfCore(c + t)}] = true
		}
	}
	for _, c := range p.AnaCore {
		if simDoms[dom{m.NodeOfCore(c), m.NUMAOfCore(c)}] {
			return true
		}
	}
	return false
}

// inlineFileTime models the inline baseline's file I/O (S3D writing
// rendered images): every sim process writes to the shared FS, which
// saturates the aggregate bandwidth at scale — the "insufficient
// scalability of file I/O".
func inlineFileTime(cfg Config, m *machine.Machine, spec *placement.Spec) float64 {
	return fsWriteTime(cfg, m, cfg.Place, cfg.App.InlineFileBytesPerProc)
}

// fsWriteTime is the per-interval time for every simulation process to
// write `bytes` to the shared file system, with full contention.
func fsWriteTime(cfg Config, m *machine.Machine, p *placement.Placement, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	eng := simnet.NewEngine()
	net := simnet.NewMachineNet(eng, m)
	var last float64
	for w := 0; w < p.Spec.NSim; w++ {
		node := m.NodeOfCore(p.SimCore[w])
		net.TransferToFS(node, bytes, func(t float64) {
			if t > last {
				last = t
			}
		})
	}
	if err := eng.Run(10_000_000); err != nil {
		return math.Inf(1)
	}
	return last
}

// movementTimes runs one interval's data movement through the fluid
// network and returns (full movement time, sim-visible time, inter-node
// bytes, max outbound staging bytes per simulation node).
func movementTimes(cfg Config, m *machine.Machine, p *placement.Placement) (moveTime, visible, interNode, txMaxPerSimNode float64) {
	spec := p.Spec
	app := cfg.App
	pacing := cfg.PacingFraction
	if pacing <= 0 || pacing > 1 {
		pacing = 1
	}
	wpr := cfg.WritersPerReader
	if wpr <= 0 {
		wpr = spec.NSim / maxInt(1, spec.NAna)
		if wpr < 1 {
			wpr = 1
		}
	}

	eng := simnet.NewEngine()
	net := simnet.NewMachineNet(eng, m)

	// Handshake costs: the four protocol phases exchange per-variable
	// distribution messages that serialize at the coordinator ranks, so
	// at scale the cost is (phases x vars x ranks) small messages, each
	// paying wire latency plus per-message software overhead. This is
	// what makes the untuned S3D configuration cost seconds at 1K cores
	// (Section IV.B.1). Caching amortizes the phases across steps;
	// batching aggregates the per-variable messages; one completion
	// round per step always remains.
	vars := maxInt(1, app.VarsPerStep)
	var hsPhases float64
	switch cfg.Caching {
	case core.NoCaching:
		hsPhases = 4
	case core.CachingLocal:
		hsPhases = 3
	case core.CachingAll:
		hsPhases = 4 / float64(maxInt(1, cfg.Steps)) // first step only
	}
	varsEff := float64(vars)
	if cfg.Batching {
		varsEff = 1 // handshake and data messages aggregate per batch
	}
	perMsg := m.Net.Latency + m.Net.SmallMsgOverhead
	hsTime := (hsPhases*varsEff + 1) * float64(spec.NSim) * perMsg

	// Data flows: writer w sends its output to its reader, one fluid flow
	// per pair (the per-variable message latencies are added analytically
	// below — modelling them as separate flows would only change the
	// latency term, not the bandwidth sharing).
	msgsPerPair := vars
	if cfg.Batching {
		msgsPerPair = 1
	}
	extraLatency := float64(msgsPerPair-1) * m.Net.Latency
	var last float64
	var copyMax float64
	txPerNode := make(map[int]float64)
	for w := 0; w < spec.NSim; w++ {
		r := minInt(w/wpr, spec.NAna-1)
		wNode := m.NodeOfCore(p.SimCore[w])
		rNode := m.NodeOfCore(p.AnaCore[r])
		bytes := app.OutputBytesPerProc
		done := func(t float64) {
			if t > last {
				last = t
			}
		}
		if wNode == rNode {
			sameNUMA := m.SameNUMA(p.SimCore[w], p.AnaCore[r]) || p.NUMAPinnedBuffers
			net.TransferIntraNode(wNode, sameNUMA, bytes, done)
		} else {
			interNode += bytes
			txPerNode[wNode] += bytes
			net.Fluid.StartFlow(bytes, m.Net.Latency,
				m.Net.LinkBandwidth*pacing,
				[]*simnet.Resource{net.TX[wNode], net.RX[rNode], net.Bisection}, done)
		}
		// Async visible cost: one local copy into the transport buffer.
		cp := bytes / m.Node.IntraNUMABandwidth
		if cp > copyMax {
			copyMax = cp
		}
	}
	if err := eng.Run(50_000_000); err != nil {
		return math.Inf(1), math.Inf(1), interNode, 0
	}
	moveTime = last + hsTime + extraLatency
	for _, b := range txPerNode {
		if b > txMaxPerSimNode {
			txMaxPerSimNode = b
		}
	}

	if cfg.Async {
		visible = copyMax + hsTime
	} else {
		visible = moveTime
	}
	return moveTime, visible, interNode, txMaxPerSimNode
}

// BurstInterference converts one NIC-second of unpaced bulk staging
// egress from a simulation node into lost simulation seconds. The
// multiplier above 1 folds in the costs the bandwidth term alone misses
// on real systems — async progress CPU, host memory traffic of
// registered-buffer copies, and switch-level burst collisions with the
// simulation's latency-sensitive MPI. Pacing the receiver-directed Gets
// (the paper's scheduling policy) reduces the collision probability
// proportionally, which is exactly the knob Section IV.A.1 turns to
// "keep the GTS slowdown under 15%". Calibrated so GTS staging lands in
// that band.
const BurstInterference = 20.0

// MaxTunedSlowdown is the hard interference budget the scheduling policy
// enforces on the simulation.
const MaxTunedSlowdown = 0.15

// internalMPITimes estimates each program's per-interval internal
// communication time under the placement: for every process, its
// incident intra-program edges are charged at the bandwidth of the
// actual path (intra-NUMA, cross-NUMA, or interconnect), and the
// program's time is the maximum over its processes (bulk-synchronous
// exchange).
func internalMPITimes(p *placement.Placement, m *machine.Machine) (simMPI, anaMPI float64) {
	spec := p.Spec
	g := spec.Comm
	if g == nil {
		return 0, 0
	}
	bw := func(cu, cv int) float64 {
		switch {
		case m.SameNUMA(cu, cv):
			return m.Node.IntraNUMABandwidth
		case m.SameNode(cu, cv):
			return m.Node.InterNUMABandwidth
		default:
			return m.Net.LinkBandwidth
		}
	}
	coreOf := func(v int) int {
		if v < spec.NSim {
			return p.SimCore[v]
		}
		return p.AnaCore[v-spec.NSim]
	}
	for u := 0; u < spec.NSim+spec.NAna; u++ {
		var t float64
		cu := coreOf(u)
		for _, v := range g.Neighbors(u) {
			// Intra-program edges only; the inter-program stream is
			// modeled by movementTimes.
			if (u < spec.NSim) != (v < spec.NSim) {
				continue
			}
			t += g.Weight(u, v) / bw(cu, coreOf(v))
		}
		if u < spec.NSim {
			if t > simMPI {
				simMPI = t
			}
		} else if t > anaMPI {
			anaMPI = t
		}
	}
	return simMPI, anaMPI
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package coupled_test

import (
	"math"
	"testing"

	. "flexio/internal/coupled"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/placement"
)

// steerPlacements builds a helper-core start (analytics sharing the sim
// NUMA domains, so cache interference is live) and a staging target on
// the second node.
func steerPlacements(t *testing.T, m *machine.Machine) (helper, staging *placement.Placement) {
	t.Helper()
	spec := buildGTSSpec(m, 4, 1)
	simCore := []int{0, 1, 4, 5}
	helper = &placement.Placement{Spec: spec, Policy: "manual-helper",
		SimCore: simCore, AnaCore: []int{2, 3, 6, 7}}
	staging = &placement.Placement{Spec: spec, Policy: "manual-staging",
		SimCore: simCore, AnaCore: []int{16, 17, 18, 19}}
	for _, p := range []*placement.Placement{helper, staging} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if helper.Kind() != placement.HelperCore || staging.Kind() != placement.Staging {
		t.Fatalf("placement kinds: %v / %v", helper.Kind(), staging.Kind())
	}
	return helper, staging
}

// TestSteeredSwitchFiresOnObservedInterference: the analytics working
// set grows over the run (a time-window accumulation); the steering loop
// watches the observed sim-interval inflation and fires the helper-core
// -> staging switch mid-run — no scripted SwitchAt anywhere.
func TestSteeredSwitchFiresOnObservedInterference(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	helper, staging := steerPlacements(t, m)

	const steps = 10
	mon := monitor.New("steer")
	out, err := RunSteered(SteerConfig{
		First:          Config{App: app, Place: helper, Steps: steps},
		Second:         Config{App: app, Place: staging, Steps: steps},
		TotalSteps:     steps,
		AnaFootprintAt: func(s int) int64 { return int64(s) * 600_000 },
		Threshold:      1.02,
		Patience:       2,
		Mon:            mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Switched {
		t.Fatalf("growing footprint never triggered the switch; signals %v", out.Signals)
	}
	if out.TriggerStep <= 0 || out.TriggerStep >= steps {
		t.Fatalf("trigger step %d not mid-run", out.TriggerStep)
	}
	// The signal the loop acted on must actually exceed the threshold for
	// `patience` consecutive epochs right before the trigger.
	n := len(out.Signals)
	if n < 2 || out.Signals[n-1] <= 1.02 || out.Signals[n-2] <= 1.02 {
		t.Fatalf("trigger without sustained signal: %v", out.Signals)
	}
	if out.First.Kind != placement.HelperCore || out.Second.Kind != placement.Staging {
		t.Fatalf("phase kinds: %v -> %v", out.First.Kind, out.Second.Kind)
	}
	if out.ReconfigTime <= 0 {
		t.Fatal("switch must pay a reconfiguration cost")
	}

	// The steered outcome equals a scripted switch at the same boundary.
	scripted, err := RunSwitched(SwitchConfig{
		First:      Config{App: app, Place: helper, Steps: steps},
		Second:     Config{App: app, Place: staging, Steps: steps},
		TotalSteps: steps,
		SwitchAt:   out.TriggerStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.TotalTime-scripted.TotalTime) > 1e-9 {
		t.Fatalf("steered total %v != scripted total %v", out.TotalTime, scripted.TotalTime)
	}

	// The monitor saw both the steering observations and the run's spans.
	rep := mon.Snapshot()
	if rep.Timings["sim.interval"].Count == 0 {
		t.Fatal("steering observations missing from monitor")
	}
	var epochs [3]int
	for _, sp := range rep.Spans {
		if sp.Epoch == 1 || sp.Epoch == 2 {
			epochs[sp.Epoch]++
		}
	}
	if epochs[1] == 0 || epochs[2] == 0 {
		t.Fatalf("spans do not cover both epochs: %v", epochs)
	}
}

// TestSteeredRunStaysPutWithoutInterference: a placement whose analytics
// never disturbs the simulation completes the whole run under First.
func TestSteeredRunStaysPutWithoutInterference(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	helper, staging := steerPlacements(t, m)

	const steps = 8
	out, err := RunSteered(SteerConfig{
		First:          Config{App: app, Place: helper, Steps: steps},
		Second:         Config{App: app, Place: staging, Steps: steps},
		TotalSteps:     steps,
		AnaFootprintAt: func(int) int64 { return 0 }, // tiny working set
		Threshold:      1.02,
		Patience:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Switched {
		t.Fatalf("switched with no observed interference; signals %v", out.Signals)
	}
	plain, err := Run(Config{App: app, Place: helper, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.TotalTime-plain.TotalTime) > 1e-9 {
		t.Fatalf("unswitched steered total %v != plain run %v", out.TotalTime, plain.TotalTime)
	}
}

// TestSwitchedRunRecordsSeamedTimeline: RunSwitched with a monitor lays
// both epochs' spans on one virtual timeline with the reconfig span as
// the seam.
func TestSwitchedRunRecordsSeamedTimeline(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	helper, staging := steerPlacements(t, m)

	const steps, at = 6, 3
	mon := monitor.New("switched")
	out, err := RunSwitched(SwitchConfig{
		First:      Config{App: app, Place: helper, Steps: steps},
		Second:     Config{App: app, Place: staging, Steps: steps},
		TotalSteps: steps,
		SwitchAt:   at,
		Mon:        mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := mon.Snapshot()
	var reconfig *monitor.Span
	firstEnd, secondStart := 0.0, math.Inf(1)
	for i := range rep.Spans {
		sp := rep.Spans[i]
		switch {
		case sp.Point == "reconfig":
			reconfig = &rep.Spans[i]
		case sp.Epoch == 1:
			if end := sp.Start + sp.Dur; end > firstEnd {
				firstEnd = end
			}
			if sp.Step >= at {
				t.Fatalf("epoch-1 span for step %d past the switch: %+v", sp.Step, sp)
			}
		case sp.Epoch == 2:
			if sp.Start < secondStart {
				secondStart = sp.Start
			}
			if sp.Step < at {
				t.Fatalf("epoch-2 span for pre-switch step %d: %+v", sp.Step, sp)
			}
		}
	}
	if reconfig == nil {
		t.Fatal("no reconfig span recorded")
	}
	if math.Abs(reconfig.Start-out.First.TotalTime) > 1e-9 || math.Abs(reconfig.Dur-out.ReconfigTime) > 1e-9 {
		t.Fatalf("reconfig span %+v, want start %v dur %v", reconfig, out.First.TotalTime, out.ReconfigTime)
	}
	// The second epoch begins after the seam, and the first ends at it.
	if firstEnd > reconfig.Start+1e-9 {
		t.Fatalf("epoch-1 spans end %v after reconfig start %v", firstEnd, reconfig.Start)
	}
	if secondStart < reconfig.Start+reconfig.Dur-1e-9 {
		t.Fatalf("epoch-2 spans start %v inside the reconfig gap ending %v", secondStart, reconfig.Start+reconfig.Dur)
	}
}

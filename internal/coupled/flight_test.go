package coupled_test

import (
	"strings"
	"testing"

	. "flexio/internal/coupled"
	"flexio/internal/flight"
	"flexio/internal/machine"
	"flexio/internal/monitor"
)

// runSwitchedJournal executes the helper-core -> staging switched run
// with a fresh flight recorder; scale perturbs the per-process output
// volume (1 = the canonical scenario).
func runSwitchedJournal(t *testing.T, scale float64) *flight.Journal {
	t.Helper()
	m := machine.Smoky(2)
	app := gtsApp()
	app.OutputBytesPerProc *= scale
	helper, staging := steerPlacements(t, m)
	j := flight.NewJournal(0)
	const steps = 10
	if _, err := RunSwitched(SwitchConfig{
		First:      Config{App: app, Place: helper, Steps: steps},
		Second:     Config{App: app, Place: staging, Steps: steps},
		TotalSteps: steps,
		SwitchAt:   5,
		Journal:    j,
	}); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestSwitchedJournalIsDeterministic is the replay invariant: two runs
// of the same configuration journal byte-identical event streams, and
// any model change shows up as a detected divergence.
func TestSwitchedJournalIsDeterministic(t *testing.T) {
	a := runSwitchedJournal(t, 1)
	b := runSwitchedJournal(t, 1)
	if a.Seen() == 0 {
		t.Fatal("switched run journaled no events")
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("identical configs hash %016x vs %016x", a.Hash(), b.Hash())
	}
	if d := flight.Diff(a.Snapshot(), b.Snapshot()); d != nil {
		t.Fatalf("identical configs diverge: %v", d)
	}

	c := runSwitchedJournal(t, 1.001)
	if a.Hash() == c.Hash() {
		t.Fatal("perturbed run must change the stream hash")
	}
	d := flight.Diff(a.Snapshot(), c.Snapshot())
	if d == nil {
		t.Fatal("perturbed run must produce a locatable divergence")
	}
	if !strings.Contains(d.Error(), "divergence at event") {
		t.Fatalf("divergence message %q lacks location", d.Error())
	}
}

// TestSwitchedJournalMarksReconfig: the journal shows the epoch seam —
// a "reconfig" mark between the two regimes, and events on both epochs.
func TestSwitchedJournalMarksReconfig(t *testing.T) {
	j := runSwitchedJournal(t, 1)
	epochs := map[uint64]bool{}
	var seam *flight.Event
	for _, ev := range j.Snapshot() {
		epochs[ev.Epoch] = true
		if ev.Point == "reconfig" {
			e := ev
			seam = &e
		}
	}
	if !epochs[1] || !epochs[2] {
		t.Fatalf("journal must span both epochs, got %v", epochs)
	}
	if seam == nil {
		t.Fatal("no reconfig mark journaled")
	}
	if seam.Kind != flight.KindMark || seam.Epoch != 2 || seam.Step != 5 || seam.Dur <= 0 {
		t.Fatalf("reconfig mark = %+v", *seam)
	}
}

// TestSteeredCostInputsCarryCriticalPath: the steered run folds the
// journaled critical-path shares into the placement cost inputs — the
// "observed shares steer the next placement" hook.
func TestSteeredCostInputsCarryCriticalPath(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	helper, staging := steerPlacements(t, m)

	const steps = 10
	mon := monitor.New("steer")
	j := flight.NewJournal(0)
	out, err := RunSteered(SteerConfig{
		First:          Config{App: app, Place: helper, Steps: steps},
		Second:         Config{App: app, Place: staging, Steps: steps},
		TotalSteps:     steps,
		AnaFootprintAt: func(s int) int64 { return int64(s) * 600_000 },
		Threshold:      1.02,
		Patience:       2,
		Mon:            mon,
		Journal:        j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Switched {
		t.Fatalf("scenario must switch; signals %v", out.Signals)
	}
	in := out.CostInputs
	if len(in.PathShares) == 0 || in.Dominant == "" {
		t.Fatalf("cost inputs lack critical-path shares: %+v", in)
	}
	var sum float64
	for _, s := range in.PathShares {
		sum += s
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("path shares sum to %f, want ~1", sum)
	}
	if in.PathShares[in.Dominant] < in.PathShares["sim.io"] {
		t.Fatalf("dominant %q share %f below sim.io %f",
			in.Dominant, in.PathShares[in.Dominant], in.PathShares["sim.io"])
	}
	// This scenario is compute-bound, so movement owns a minority share.
	if ts := in.TransportShare(); ts <= 0 || ts >= 0.5 {
		t.Fatalf("transport share = %f, want small positive", ts)
	}
}

// TestSteeredRequireDominantSuppressesSwitch: with the critical-path
// gate demanding a movement-dominated step, the compute-bound scenario's
// interference trigger is vetoed and the run stays under First.
func TestSteeredRequireDominantSuppressesSwitch(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	helper, staging := steerPlacements(t, m)

	const steps = 10
	cfg := SteerConfig{
		First:          Config{App: app, Place: helper, Steps: steps},
		Second:         Config{App: app, Place: staging, Steps: steps},
		TotalSteps:     steps,
		AnaFootprintAt: func(s int) int64 { return int64(s) * 600_000 },
		Threshold:      1.02,
		Patience:       2,
	}

	cfg.RequireDominant = "sim.io" // movement never dominates here
	out, err := RunSteered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Switched || !out.Suppressed {
		t.Fatalf("switch must be vetoed: switched=%v suppressed=%v", out.Switched, out.Suppressed)
	}

	cfg.RequireDominant = "sim.compute" // matches the probe's dominant
	out, err = RunSteered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Switched || out.Suppressed {
		t.Fatalf("matching gate must let the switch fire: switched=%v suppressed=%v", out.Switched, out.Suppressed)
	}
}

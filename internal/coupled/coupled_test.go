package coupled_test

import (
	"testing"

	"flexio/internal/apps/gts"
	"flexio/internal/apps/s3d"
	. "flexio/internal/coupled"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// buildGTSSpec mirrors the experiment harness: P GTS processes with the
// given threads, one analytics process each, paired PG streams.
func buildGTSSpec(m *machine.Machine, nSim, threads int) *placement.Spec {
	g := graph.New(nSim * 2)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i, gts.OutputBytesPerProc)
		g.AddEdge(i, (i+1)%nSim, 20e6)
		if i+1 < nSim {
			g.AddEdge(nSim+i, nSim+i+1, 2e6)
		}
	}
	return &placement.Spec{Machine: m, NSim: nSim, NAna: nSim, SimThreads: threads, Comm: g}
}

func buildS3DSpec(m *machine.Machine, nSim, nAna int) *placement.Spec {
	g := graph.New(nSim + nAna)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i/(nSim/nAna), s3d.OutputBytesPerProc)
		g.AddEdge(i, (i+1)%nSim, 50e6)
		if i+8 < nSim {
			g.AddEdge(i, i+8, 50e6)
		}
	}
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 30e6)
	}
	return &placement.Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: 1, Comm: g}
}

func gtsApp() AppModel {
	app := gts.Model()
	app.NUMAStraddlePenalty = 0.07
	return app
}

func TestGTSHelperCoreBeatsInline(t *testing.T) {
	m := machine.Smoky(16)
	app := gtsApp()
	const steps = 10

	// Inline: 4 threads fill nodes.
	inlSpec := buildGTSSpec(m, 32, 4)
	inl, err := placement.InlinePlacement(inlSpec)
	if err != nil {
		t.Fatal(err)
	}
	rInl, err := Run(Config{App: app, Place: inl, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}

	// Helper core: 3 threads + 1 analytics core per process.
	hcSpec := buildGTSSpec(m, 32, 3)
	hc, err := placement.TopologyAware(hcSpec)
	if err != nil {
		t.Fatal(err)
	}
	rHC, err := Run(Config{App: app, Place: hc, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}

	if rHC.TotalTime >= rInl.TotalTime {
		t.Fatalf("helper-core (%.1fs) must beat inline (%.1fs)", rHC.TotalTime, rInl.TotalTime)
	}
	improvement := 1 - rHC.TotalTime/rInl.TotalTime
	if improvement < 0.05 || improvement > 0.35 {
		t.Fatalf("improvement = %.1f%%, expected 5-35%% (paper: up to 30%%)", improvement*100)
	}
	// Same node count -> helper core also wins CPU-hours.
	if rHC.CPUHours >= rInl.CPUHours {
		t.Fatalf("helper-core CPU-hours %.2f must beat inline %.2f", rHC.CPUHours, rInl.CPUHours)
	}
}

func TestGTSTopoAwareBestHelperVariant(t *testing.T) {
	m := machine.Smoky(16)
	app := gtsApp()
	spec := buildGTSSpec(m, 32, 3)

	inter := graph.New(spec.NSim + spec.NAna)
	for i := 0; i < spec.NSim; i++ {
		inter.AddEdge(i, spec.NSim+i, gts.OutputBytesPerProc)
	}
	da, err := placement.DataAware(spec, inter)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := placement.Holistic(spec)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := placement.TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{App: app, Steps: 10}
	results := map[string]float64{}
	for name, p := range map[string]*placement.Placement{"da": da, "ho": ho, "ta": ta} {
		cfg.Place = p
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = r.TotalTime
	}
	if results["ta"] > results["ho"]*1.001 || results["ta"] > results["da"]*1.001 {
		t.Fatalf("topology-aware (%.2f) must be best: holistic %.2f, data-aware %.2f",
			results["ta"], results["ho"], results["da"])
	}
	// Paper: data-aware trails topology-aware by up to ~9.5%.
	if gap := results["da"]/results["ta"] - 1; gap > 0.15 {
		t.Fatalf("data-aware gap %.1f%% implausibly large", gap*100)
	}
}

func TestGTSStagingWorseThanHelperCore(t *testing.T) {
	m := machine.Smoky(24)
	app := gtsApp()
	hcSpec := buildGTSSpec(m, 32, 3)
	hc, err := placement.TopologyAware(hcSpec)
	if err != nil {
		t.Fatal(err)
	}
	rHC, err := Run(Config{App: app, Place: hc, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	stSpec := buildGTSSpec(m, 32, 4)
	st, err := placement.StagingPlacement(stSpec)
	if err != nil {
		t.Fatal(err)
	}
	rST, err := Run(Config{App: app, Place: st, Steps: 10, Async: true, PacingFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rST.TotalTime <= rHC.TotalTime {
		t.Fatalf("staging (%.1fs) should trail helper-core (%.1fs) for GTS", rST.TotalTime, rHC.TotalTime)
	}
	// The tuned scheduling policy keeps the simulation slowdown under 15%.
	if rST.SimSlowdown > 1.15 {
		t.Fatalf("staging sim slowdown %.3f exceeds the 15%% budget", rST.SimSlowdown)
	}
	// Staging uses extra nodes -> worse CPU-hours than helper core.
	if rST.CPUHours <= rHC.CPUHours {
		t.Fatalf("staging CPU-hours %.2f should exceed helper-core %.2f", rST.CPUHours, rHC.CPUHours)
	}
	// Helper core avoids ~all inter-node movement of particle data.
	if rHC.InterNodeBytes > 0.1*rST.InterNodeBytes {
		t.Fatalf("helper-core inter-node bytes %.0f not <10%% of staging %.0f",
			rHC.InterNodeBytes, rST.InterNodeBytes)
	}
}

func TestGTSLowerBoundProximity(t *testing.T) {
	// Paper: best placement within 8.4% of the solo lower bound on Smoky.
	m := machine.Smoky(16)
	app := gtsApp()
	spec := buildGTSSpec(m, 32, 3)
	ta, err := placement.TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 50
	r, err := Run(Config{App: app, Place: ta, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	lb := SoloTime(app, 4, steps)
	gap := r.TotalTime/lb - 1
	if gap < 0 || gap > 0.12 {
		t.Fatalf("gap to lower bound = %.1f%%, want 0-12%% (paper: <=8.4%%)", gap*100)
	}
}

func TestGTSPhaseBreakdownFig7(t *testing.T) {
	m := machine.Smoky(16)
	app := gtsApp()
	spec := buildGTSSpec(m, 32, 3)
	ta, err := placement.TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{App: app, Place: ta, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	ph := r.Phases
	// Case 1 of Figure 7: nearly invisible I/O thanks to shm transport...
	if ph.SimVisIO > 0.5 {
		t.Fatalf("helper-core visible I/O %.3fs should be near-invisible", ph.SimVisIO)
	}
	// ...and analytics idle a majority of the interval (paper: ~67%).
	idleFrac := ph.AnaIdle / (ph.AnaIdle + ph.Analysis)
	if idleFrac < 0.4 || idleFrac > 0.85 {
		t.Fatalf("analytics idle fraction = %.2f, want ~0.67", idleFrac)
	}
	// Cache sharing shows up in the counters (Figure 8).
	if r.MPKIShared <= r.MPKISolo {
		t.Fatal("helper-core run must show inflated MPKI")
	}
	infl := r.MPKIShared / r.MPKISolo
	if infl < 1.3 || infl > 1.6 {
		t.Fatalf("MPKI inflation = %.2f, want ~1.47", infl)
	}
}

func TestS3DStagingBeatsInlineAndHybrid(t *testing.T) {
	m := machine.Smoky(20)
	app := s3d.Model()
	const nSim, steps = 256, 50
	nAna := nSim / s3d.WritersPerReader

	inlSpec := buildS3DSpec(m, nSim, nAna)
	inl, err := placement.InlinePlacement(inlSpec)
	if err != nil {
		t.Fatal(err)
	}
	rInl, err := Run(Config{App: app, Place: inl, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}

	stSpec := buildS3DSpec(m, nSim, nAna)
	ho, err := placement.Holistic(stSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfgStream := Config{App: app, Steps: steps, Async: true, Batching: true,
		WritersPerReader: s3d.WritersPerReader, PacingFraction: 0.5}
	cfgStream.Place = ho
	rHO, err := Run(cfgStream)
	if err != nil {
		t.Fatal(err)
	}
	if rHO.Kind != placement.Staging {
		t.Fatalf("holistic S3D placement kind = %v, want staging", rHO.Kind)
	}
	if rHO.TotalTime >= rInl.TotalTime {
		t.Fatalf("staging (%.1fs) must beat inline (%.1fs) for S3D", rHO.TotalTime, rInl.TotalTime)
	}
	adv := 1 - rHO.TotalTime/rInl.TotalTime
	if adv < 0.08 || adv > 0.40 {
		t.Fatalf("staging advantage = %.1f%%, want ~10-35%% (paper: up to 19%% Smoky / 30%% Titan)", adv*100)
	}

	// Hybrid (data-aware) spreads viz processes among sim nodes,
	// pushing S3D's internal MPI across the interconnect.
	inter := graph.New(nSim + nAna)
	for i := 0; i < nSim; i++ {
		inter.AddEdge(i, nSim+i/(nSim/nAna), s3d.OutputBytesPerProc)
	}
	da, err := placement.DataAware(stSpec, inter)
	if err != nil {
		t.Fatal(err)
	}
	cfgStream.Place = da
	rDA, err := Run(cfgStream)
	if err != nil {
		t.Fatal(err)
	}
	if rDA.TotalTime < rHO.TotalTime {
		t.Fatalf("hybrid data-aware (%.1fs) should not beat staging holistic (%.1fs)",
			rDA.TotalTime, rHO.TotalTime)
	}
}

func TestS3DLowerBoundProximity(t *testing.T) {
	// Paper: staging within 5.1% of lower bound on Smoky (3.6% Titan).
	m := machine.Titan(40)
	app := s3d.Model()
	const nSim, steps = 512, 20
	nAna := nSim / s3d.WritersPerReader
	spec := buildS3DSpec(m, nSim, nAna)
	ta, err := placement.TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(Config{App: app, Place: ta, Steps: steps, Async: true,
		Batching: true, WritersPerReader: s3d.WritersPerReader, PacingFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lb := SoloTime(app, 1, steps)
	gap := r.TotalTime/lb - 1
	if gap < 0 || gap > 0.08 {
		t.Fatalf("gap to lower bound = %.1f%%, want <=8%% (paper: 3.6-5.1%%)", gap*100)
	}
	// Staging uses <1% extra resources (paper: 0.78%).
	extra := float64(r.NodesUsed)/float64((nSim+m.Node.Cores-1)/m.Node.Cores) - 1
	if extra > 0.05 {
		t.Fatalf("staging extra resources = %.2f%%, want ~1%%", extra*100)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil placement must error")
	}
}

func TestSoloTimeScalesWithSteps(t *testing.T) {
	app := gtsApp()
	if SoloTime(app, 4, 10) != 10*app.SimComputePerInterval(4) {
		t.Fatal("solo time must be steps x interval")
	}
}

func TestOfflinePlacementSlowest(t *testing.T) {
	// Offline placement (Figure 1's rightmost option): everything through
	// the file system, analytics afterwards. It must be the slowest
	// option for GTS — the motivation for online analytics.
	m := machine.Smoky(16)
	app := gtsApp()
	const nSim, steps = 32, 10

	offSpec := buildGTSSpecNoAna(m, nSim, 4)
	off := &placement.Placement{
		Spec:    offSpec,
		Policy:  "offline",
		SimCore: make([]int, nSim),
		AnaCore: nil,
	}
	perNode := m.Node.Cores / 4
	for i := 0; i < nSim; i++ {
		off.SimCore[i] = (i/perNode)*m.Node.Cores + (i%perNode)*4
	}
	rOff, err := Run(Config{App: app, Place: off, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.Kind != placement.Offline {
		t.Fatalf("kind = %v, want offline", rOff.Kind)
	}

	hcSpec := buildGTSSpec(m, nSim, 3)
	hc, err := placement.TopologyAware(hcSpec)
	if err != nil {
		t.Fatal(err)
	}
	rHC, err := Run(Config{App: app, Place: hc, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.TotalTime <= rHC.TotalTime {
		t.Fatalf("offline (%.1fs) must be slower than helper-core (%.1fs)",
			rOff.TotalTime, rHC.TotalTime)
	}
	// 110 MB/proc through a shared FS must show substantial visible I/O.
	if rOff.Phases.SimVisIO < 0.1 {
		t.Fatalf("offline visible I/O %.3fs implausibly small", rOff.Phases.SimVisIO)
	}
}

func buildGTSSpecNoAna(m *machine.Machine, nSim, threads int) *placement.Spec {
	g := graph.New(nSim)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, (i+1)%nSim, 20e6)
	}
	return &placement.Spec{Machine: m, NSim: nSim, NAna: 0, SimThreads: threads, Comm: g}
}

package coupled

import (
	"fmt"

	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/placement"
)

// Observation-driven re-placement (Section II.G): instead of scripting
// the switch step, RunSteered watches the monitoring signal the writer
// side would ship each epoch — the ratio of the observed simulation
// interval to its interference-free baseline — and triggers the
// helper-core -> staging switch when sustained interference crosses a
// threshold. The analytics footprint may grow over time (e.g. a
// time-window accumulation), which is exactly the situation where an
// a-priori placement goes stale mid-run.

// SteerConfig describes a steered run.
type SteerConfig struct {
	// First is the starting regime; Second is the regime to switch to
	// when the interference trigger fires.
	First, Second Config
	TotalSteps    int

	// AnaFootprintAt returns the analytics cache footprint at a given
	// step, modeling a working set that changes over the run. Nil means
	// the static First.App.AnaFootprint.
	AnaFootprintAt func(step int) int64

	// Threshold is the sim-interval inflation ratio that counts as
	// interference (e.g. 1.10 = 10% slowdown); Patience is how many
	// consecutive epochs must exceed it before the switch fires
	// (default 1).
	Threshold float64
	Patience  int

	// Mon, when non-nil, receives the per-epoch interference
	// observations and, after the decision, the full run's phase spans
	// (via RunSwitched or Run).
	Mon *monitor.Monitor

	// Journal, when non-nil, receives the chosen execution's causal
	// step events; RunSteered analyzes them afterwards and folds the
	// critical-path shares into SteerResult.CostInputs.
	Journal *flight.Journal

	// RequireDominant, when non-empty, adds a flight-recorder gate to
	// the interference trigger: before committing to the switch,
	// RunSteered journals a short probe of the First regime and only
	// re-places if the probe's critical path is dominated by the named
	// point (e.g. "sim.io" — switch only when movement, not compute,
	// owns the step). This keeps a noisy interference signal from
	// paying the reconfiguration cost when the critical path says the
	// new regime cannot help.
	RequireDominant string
}

// SteerResult is the outcome of a steered run.
type SteerResult struct {
	SwitchResult
	// Switched reports whether the observed-interference trigger fired
	// mid-run; if false, the whole run executed under First and only
	// SwitchResult.First/TotalTime/CPUHours are meaningful.
	Switched bool
	// TriggerStep is the first step executed under Second (valid when
	// Switched).
	TriggerStep int
	// Signals is the per-step interference signal the steering loop saw
	// (observed interval / baseline), for plotting and tests.
	Signals []float64
	// Suppressed reports that the interference trigger fired but the
	// RequireDominant critical-path gate vetoed the switch.
	Suppressed bool
	// CostInputs are the placement cost inputs observed from the run:
	// monitoring aggregates when Mon was supplied, critical-path shares
	// when Journal was supplied (see CostInputs.PathShares/Dominant).
	CostInputs placement.CostInputs
}

// RunSteered simulates the steering loop step by step: each step it
// observes the baseline compute interval and the cache-inflated one for
// the analytics footprint at that step, folds both into cumulative
// monitoring reports, and feeds the per-epoch delta signal to
// monitor.Steering. When the trigger fires at step k, the run is replayed
// as a RunSwitched with SwitchAt=k+1 — the boundary semantics of the
// session protocol (the step that revealed the interference still
// completes under the old regime). If the trigger never fires (or fires
// on the final step, too late to re-place), the run completes under
// First.
func RunSteered(cfg SteerConfig) (SteerResult, error) {
	var out SteerResult
	if cfg.TotalSteps <= 0 {
		return out, fmt.Errorf("coupled: steered run needs steps")
	}
	p := cfg.First.Place
	if p == nil {
		return out, fmt.Errorf("coupled: nil placement")
	}
	m := cfg.First.Machine
	if m == nil {
		m = p.Spec.Machine
	}
	app := cfg.First.App
	threads := p.Spec.SimThreads
	if threads < 1 {
		threads = 1
	}
	footprint := cfg.AnaFootprintAt
	if footprint == nil {
		footprint = func(int) int64 { return app.AnaFootprint }
	}

	// The steering loop observes into its own monitor when the caller did
	// not supply one: Steering consumes cumulative snapshots.
	obs := cfg.Mon
	if obs == nil {
		obs = monitor.New("steer")
	}
	st := &monitor.Steering{
		Point:     "sim.interval",
		Baseline:  "sim.compute",
		Threshold: cfg.Threshold,
		Patience:  cfg.Patience,
	}

	baseline := app.SimComputePerInterval(threads)
	shares := anaSharesSimNUMA(p, m)
	switchAt := -1
	for s := 0; s < cfg.TotalSteps; s++ {
		factor := 1.0
		if shares {
			factor = app.Cache.Slowdown(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, footprint(s))
		}
		obs.Observe("sim.compute", baseline)
		obs.Observe("sim.interval", baseline*factor)
		fired := st.Observe(obs.Snapshot())
		out.Signals = append(out.Signals, st.LastSignal())
		if fired && s+1 < cfg.TotalSteps {
			switchAt = s + 1
			break
		}
	}

	// Critical-path gate: the interference signal says the sim slowed
	// down; the probe's critical path says whether re-placing the
	// analytics can actually shorten the step.
	if switchAt >= 0 && cfg.RequireDominant != "" {
		dom, err := probeDominant(cfg.First)
		if err != nil {
			return out, err
		}
		if dom != cfg.RequireDominant {
			out.Suppressed = true
			switchAt = -1
		}
	}

	if switchAt < 0 {
		whole := cfg.First
		whole.Steps = cfg.TotalSteps
		whole.Mon = cfg.Mon
		whole.Journal = cfg.Journal
		res, err := Run(whole)
		if err != nil {
			return out, err
		}
		out.First = res
		out.TotalTime = res.TotalTime
		out.CPUHours = res.CPUHours
		out.CostInputs = steerCostInputs(cfg)
		return out, nil
	}

	sw, err := RunSwitched(SwitchConfig{
		First:      cfg.First,
		Second:     cfg.Second,
		TotalSteps: cfg.TotalSteps,
		SwitchAt:   switchAt,
		Mon:        cfg.Mon,
		Journal:    cfg.Journal,
	})
	if err != nil {
		return out, err
	}
	out.SwitchResult = sw
	out.Switched = true
	out.TriggerStep = switchAt
	out.CostInputs = steerCostInputs(cfg)
	return out, nil
}

// probeDominant journals a short run of the given regime into a scratch
// recorder and returns the dominant critical-path point. The probe is
// virtual-time only — it costs nothing on the modeled timeline.
func probeDominant(regime Config) (string, error) {
	probe := regime
	probe.Steps = 2
	probe.Mon = nil
	probe.Journal = flight.NewJournal(0)
	probe.MonEpoch = 0
	probe.MonBase = 0
	probe.MonStep = 0
	if _, err := Run(probe); err != nil {
		return "", err
	}
	a := flight.Analyze(probe.Journal.Snapshot())
	return a.Dominant, nil
}

// steerCostInputs distills whatever observability the caller attached
// into placement cost inputs: monitoring aggregates from Mon,
// critical-path shares from Journal.
func steerCostInputs(cfg SteerConfig) placement.CostInputs {
	in := placement.CostInputs{SimSlowdown: 1}
	if cfg.Mon != nil {
		in = placement.CostInputsFromReport(cfg.Mon.Snapshot(), int64(cfg.TotalSteps))
	}
	if cfg.Journal != nil {
		a := flight.Analyze(cfg.Journal.Snapshot())
		in.ApplyCriticalPath(&a)
	}
	return in
}

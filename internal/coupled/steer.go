package coupled

import (
	"fmt"

	"flexio/internal/monitor"
)

// Observation-driven re-placement (Section II.G): instead of scripting
// the switch step, RunSteered watches the monitoring signal the writer
// side would ship each epoch — the ratio of the observed simulation
// interval to its interference-free baseline — and triggers the
// helper-core -> staging switch when sustained interference crosses a
// threshold. The analytics footprint may grow over time (e.g. a
// time-window accumulation), which is exactly the situation where an
// a-priori placement goes stale mid-run.

// SteerConfig describes a steered run.
type SteerConfig struct {
	// First is the starting regime; Second is the regime to switch to
	// when the interference trigger fires.
	First, Second Config
	TotalSteps    int

	// AnaFootprintAt returns the analytics cache footprint at a given
	// step, modeling a working set that changes over the run. Nil means
	// the static First.App.AnaFootprint.
	AnaFootprintAt func(step int) int64

	// Threshold is the sim-interval inflation ratio that counts as
	// interference (e.g. 1.10 = 10% slowdown); Patience is how many
	// consecutive epochs must exceed it before the switch fires
	// (default 1).
	Threshold float64
	Patience  int

	// Mon, when non-nil, receives the per-epoch interference
	// observations and, after the decision, the full run's phase spans
	// (via RunSwitched or Run).
	Mon *monitor.Monitor
}

// SteerResult is the outcome of a steered run.
type SteerResult struct {
	SwitchResult
	// Switched reports whether the observed-interference trigger fired
	// mid-run; if false, the whole run executed under First and only
	// SwitchResult.First/TotalTime/CPUHours are meaningful.
	Switched bool
	// TriggerStep is the first step executed under Second (valid when
	// Switched).
	TriggerStep int
	// Signals is the per-step interference signal the steering loop saw
	// (observed interval / baseline), for plotting and tests.
	Signals []float64
}

// RunSteered simulates the steering loop step by step: each step it
// observes the baseline compute interval and the cache-inflated one for
// the analytics footprint at that step, folds both into cumulative
// monitoring reports, and feeds the per-epoch delta signal to
// monitor.Steering. When the trigger fires at step k, the run is replayed
// as a RunSwitched with SwitchAt=k+1 — the boundary semantics of the
// session protocol (the step that revealed the interference still
// completes under the old regime). If the trigger never fires (or fires
// on the final step, too late to re-place), the run completes under
// First.
func RunSteered(cfg SteerConfig) (SteerResult, error) {
	var out SteerResult
	if cfg.TotalSteps <= 0 {
		return out, fmt.Errorf("coupled: steered run needs steps")
	}
	p := cfg.First.Place
	if p == nil {
		return out, fmt.Errorf("coupled: nil placement")
	}
	m := cfg.First.Machine
	if m == nil {
		m = p.Spec.Machine
	}
	app := cfg.First.App
	threads := p.Spec.SimThreads
	if threads < 1 {
		threads = 1
	}
	footprint := cfg.AnaFootprintAt
	if footprint == nil {
		footprint = func(int) int64 { return app.AnaFootprint }
	}

	// The steering loop observes into its own monitor when the caller did
	// not supply one: Steering consumes cumulative snapshots.
	obs := cfg.Mon
	if obs == nil {
		obs = monitor.New("steer")
	}
	st := &monitor.Steering{
		Point:     "sim.interval",
		Baseline:  "sim.compute",
		Threshold: cfg.Threshold,
		Patience:  cfg.Patience,
	}

	baseline := app.SimComputePerInterval(threads)
	shares := anaSharesSimNUMA(p, m)
	switchAt := -1
	for s := 0; s < cfg.TotalSteps; s++ {
		factor := 1.0
		if shares {
			factor = app.Cache.Slowdown(m.Node.L3PerNUMA, app.SimWorkingSetPerNUMA, footprint(s))
		}
		obs.Observe("sim.compute", baseline)
		obs.Observe("sim.interval", baseline*factor)
		fired := st.Observe(obs.Snapshot())
		out.Signals = append(out.Signals, st.LastSignal())
		if fired && s+1 < cfg.TotalSteps {
			switchAt = s + 1
			break
		}
	}

	if switchAt < 0 {
		whole := cfg.First
		whole.Steps = cfg.TotalSteps
		whole.Mon = cfg.Mon
		res, err := Run(whole)
		if err != nil {
			return out, err
		}
		out.First = res
		out.TotalTime = res.TotalTime
		out.CPUHours = res.CPUHours
		return out, nil
	}

	sw, err := RunSwitched(SwitchConfig{
		First:      cfg.First,
		Second:     cfg.Second,
		TotalSteps: cfg.TotalSteps,
		SwitchAt:   switchAt,
		Mon:        cfg.Mon,
	})
	if err != nil {
		return out, err
	}
	out.SwitchResult = sw
	out.Switched = true
	out.TriggerStep = switchAt
	return out, nil
}

package coupled_test

import (
	"testing"

	. "flexio/internal/coupled"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// TestGTSSwitchHelperCoreToStaging scripts the paper's motivating
// flexibility scenario as a mid-run switch: GTS analytics starts on
// helper cores (shm transport) and moves to staging nodes (rdma) at the
// half-way step boundary, paying a modeled reconfiguration cost.
func TestGTSSwitchHelperCoreToStaging(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	spec := buildGTSSpec(m, 8, 1)

	simCore := []int{0, 1, 2, 3, 4, 5, 6, 7}
	helper := &placement.Placement{Spec: spec, Policy: "manual-helper",
		SimCore: simCore, AnaCore: []int{8, 9, 10, 11, 12, 13, 14, 15}}
	staging := &placement.Placement{Spec: spec, Policy: "manual-staging",
		SimCore: simCore, AnaCore: []int{16, 17, 18, 19, 20, 21, 22, 23}}
	if err := helper.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := staging.Validate(); err != nil {
		t.Fatal(err)
	}

	const steps = 10
	out, err := RunSwitched(SwitchConfig{
		First:      Config{App: app, Place: helper, Steps: steps},
		Second:     Config{App: app, Place: staging, Steps: steps},
		TotalSteps: steps,
		SwitchAt:   5,
	})
	if err != nil {
		t.Fatal(err)
	}

	if out.First.Kind != placement.HelperCore {
		t.Errorf("first phase kind = %v, want helper-core", out.First.Kind)
	}
	if out.Second.Kind != placement.Staging {
		t.Errorf("second phase kind = %v, want staging", out.Second.Kind)
	}
	if !out.Delta.KindChanged {
		t.Error("delta must report the kind change")
	}
	if len(out.Delta.MovedAna) != 8 {
		t.Errorf("moved %d ranks, want 8", len(out.Delta.MovedAna))
	}
	// Every surviving pair flips shm -> rdma.
	if len(out.Delta.Flipped) != 64 {
		t.Errorf("flipped %d pairs, want 64", len(out.Delta.Flipped))
	}
	if out.ReconfigTime <= 0 {
		t.Error("reconfiguration must cost time")
	}
	if out.RehandshakeTime <= 0 || out.RedialTime <= 0 {
		t.Errorf("rehandshake=%g redial=%g must both be positive",
			out.RehandshakeTime, out.RedialTime)
	}
	if out.DrainTime != 0 {
		t.Errorf("sync writer drain = %g, want 0 (already at boundary)", out.DrainTime)
	}
	want := out.First.TotalTime + out.ReconfigTime + out.Second.TotalTime
	if out.TotalTime != want {
		t.Errorf("TotalTime = %g, want %g", out.TotalTime, want)
	}
	// The switch cost must be a small perturbation, not a phase-sized one.
	if out.ReconfigTime > 0.1*out.TotalTime {
		t.Errorf("reconfig %.3fs dominates total %.3fs", out.ReconfigTime, out.TotalTime)
	}

	// Async first phase pays a drain.
	outAsync, err := RunSwitched(SwitchConfig{
		First:      Config{App: app, Place: helper, Steps: steps, Async: true},
		Second:     Config{App: app, Place: staging, Steps: steps},
		TotalSteps: steps,
		SwitchAt:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outAsync.DrainTime <= 0 {
		t.Error("async writer must pay a drain at the switch boundary")
	}
}

func TestRunSwitchedValidation(t *testing.T) {
	m := machine.Smoky(2)
	app := gtsApp()
	spec := buildGTSSpec(m, 8, 1)
	p := &placement.Placement{Spec: spec, Policy: "manual",
		SimCore: []int{0, 1, 2, 3, 4, 5, 6, 7}, AnaCore: []int{8, 9, 10, 11, 12, 13, 14, 15}}
	cfg := Config{App: app, Place: p, Steps: 10}

	for _, at := range []int{0, 10, -1} {
		if _, err := (RunSwitched(SwitchConfig{First: cfg, Second: cfg, TotalSteps: 10, SwitchAt: at})); err == nil {
			t.Errorf("SwitchAt=%d must be rejected", at)
		}
	}
	// Sim-side rebinding is rejected via placement.Replace.
	moved := &placement.Placement{Spec: spec, Policy: "manual",
		SimCore: []int{16, 17, 18, 19, 20, 21, 22, 23}, AnaCore: []int{8, 9, 10, 11, 12, 13, 14, 15}}
	if _, err := RunSwitched(SwitchConfig{
		First: cfg, Second: Config{App: app, Place: moved, Steps: 10},
		TotalSteps: 10, SwitchAt: 5,
	}); err == nil {
		t.Error("sim rebinding mid-run must be rejected")
	}
}

package coupled

import (
	"fmt"

	"flexio/internal/flight"
	"flexio/internal/monitor"
	"flexio/internal/placement"
)

// SwitchConfig scripts a mid-run placement switch: the pipeline runs
// SwitchAt steps under First, reconfigures (the session-epoch protocol:
// quiesce, re-handshake, re-dial changed pairs), then finishes under
// Second. First and Second must describe the same application on the
// same machine with an identical simulation-side binding — mid-run
// flexibility moves only the analytics.
type SwitchConfig struct {
	First, Second Config
	TotalSteps    int
	SwitchAt      int // steps executed under First (0 < SwitchAt < TotalSteps)

	// Mon, when non-nil, receives both epochs' per-step phase spans on a
	// single virtual timeline (epoch 1 / epoch 2) plus a "reconfig" span
	// covering the switch gap — the trace shows the drain, re-handshake
	// and re-dial as a visible seam between the two regimes.
	Mon *monitor.Monitor

	// Journal, when non-nil, receives both epochs' causal step events on
	// the same virtual timeline plus a "reconfig" mark spanning the
	// switch gap. RunSwitched is sequential in virtual time, so two runs
	// from identical configs produce byte-identical journals — the basis
	// of the replay divergence check.
	Journal *flight.Journal
}

// SwitchResult is the outcome of one switched run.
type SwitchResult struct {
	First, Second Result
	// Delta is the placement change applied at the switch point.
	Delta *placement.Delta
	// DrainTime models quiescing the data plane at the step boundary (an
	// in-flight asynchronously-queued step must finish flushing).
	DrainTime float64
	// RehandshakeTime models re-running the four-step distribution
	// exchange for every variable at the configured caching level.
	RehandshakeTime float64
	// RedialTime models tearing down and re-dialing the data connections
	// of every pair whose endpoint moved.
	RedialTime float64
	// ReconfigTime = DrainTime + RehandshakeTime + RedialTime.
	ReconfigTime float64
	// TotalTime includes both phases and the reconfiguration gap.
	TotalTime float64
	CPUHours  float64
}

// RunSwitched simulates a coupled run that re-places its analytics
// mid-stream. The reconfiguration cost model mirrors the runtime: the
// writer drains to a step boundary, both sides re-run the handshake
// (epoch bump invalidates all cached distributions, so the full four
// phases are paid regardless of caching level), and each pair touching a
// moved, added, or transport-flipped rank re-dials its data connection.
func RunSwitched(cfg SwitchConfig) (SwitchResult, error) {
	var out SwitchResult
	if cfg.TotalSteps <= 1 || cfg.SwitchAt <= 0 || cfg.SwitchAt >= cfg.TotalSteps {
		return out, fmt.Errorf("coupled: switch at step %d of %d is not mid-run", cfg.SwitchAt, cfg.TotalSteps)
	}
	delta, err := placement.Replace(cfg.First.Place, cfg.Second.Place)
	if err != nil {
		return out, err
	}
	out.Delta = delta

	first := cfg.First
	first.Steps = cfg.SwitchAt
	if cfg.Mon != nil {
		first.Mon, first.MonEpoch = cfg.Mon, 1
	}
	if cfg.Journal != nil {
		first.Journal, first.MonEpoch = cfg.Journal, 1
	}
	if out.First, err = Run(first); err != nil {
		return out, err
	}

	m := cfg.First.Machine
	if m == nil {
		m = cfg.First.Place.Spec.Machine
	}
	spec := cfg.First.Place.Spec

	// Drain: synchronous writers are already at a boundary when the
	// request parks; asynchronous writers may have a queued step whose
	// movement must complete first.
	if cfg.First.Async {
		out.DrainTime = out.First.MoveTime
	}

	// Re-handshake: all four phases for every (effective) variable across
	// the M writer ranks, plus the selection message — cached state is
	// epoch-invalidated, so this is paid even under CACHING_ALL.
	vars := maxInt(1, cfg.First.App.VarsPerStep)
	varsEff := float64(vars)
	if cfg.First.Batching {
		varsEff = 1
	}
	perMsg := m.Net.Latency + m.Net.SmallMsgOverhead
	out.RehandshakeTime = (4*varsEff + 1) * float64(spec.NSim) * perMsg

	// Re-dial: a connection handshake (request + accept) per pair whose
	// reader moved, was added, or flipped transports.
	changed := make(map[int]bool)
	for _, r := range delta.MovedAna {
		changed[r] = true
	}
	oldN := len(cfg.First.Place.AnaCore)
	newN := len(cfg.Second.Place.AnaCore)
	for r := oldN; r < newN; r++ {
		changed[r] = true
	}
	for _, f := range delta.Flipped {
		changed[f.Reader] = true
	}
	out.RedialTime = float64(spec.NSim*len(changed)) * 2 * perMsg

	out.ReconfigTime = out.DrainTime + out.RehandshakeTime + out.RedialTime

	// The second phase runs after the first plus the reconfiguration gap;
	// its spans continue the same timeline and step numbering under the
	// bumped epoch.
	second := cfg.Second
	second.Steps = cfg.TotalSteps - cfg.SwitchAt
	if cfg.Mon != nil || cfg.Journal != nil {
		second.MonEpoch = 2
		second.MonBase = out.First.TotalTime + out.ReconfigTime
		second.MonStep = cfg.SwitchAt
	}
	if cfg.Mon != nil {
		second.Mon = cfg.Mon
		cfg.Mon.RecordSpan(monitor.Span{
			Point: "reconfig", Step: int64(cfg.SwitchAt), Epoch: 2,
			Start: out.First.TotalTime, Dur: out.ReconfigTime,
		})
	}
	if cfg.Journal != nil {
		second.Journal = cfg.Journal
		cfg.Journal.Record(flight.Event{
			Kind: flight.KindMark, Point: "reconfig",
			Step: int64(cfg.SwitchAt), Epoch: 2,
			T: out.First.TotalTime, Dur: out.ReconfigTime,
		})
	}
	if out.Second, err = Run(second); err != nil {
		return out, err
	}

	out.TotalTime = out.First.TotalTime + out.ReconfigTime + out.Second.TotalTime
	nodes := maxInt(out.First.NodesUsed, out.Second.NodesUsed)
	out.CPUHours = out.First.CPUHours + out.Second.CPUHours +
		float64(nodes)*out.ReconfigTime/3600
	return out, nil
}

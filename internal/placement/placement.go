// Package placement implements Section III of the FlexIO paper:
// exploiting location flexibility by deciding (1) how many resources to
// give analytics (resource allocation) and (2) which cores each
// simulation and analytics process runs on (resource binding). Three
// policies are provided, in increasing awareness:
//
//   - Data-aware mapping [51]: graph-partition the inter-program
//     communication matrix into one group per node.
//   - Holistic placement: adds resource allocation (rate matching for
//     synchronous movement, interval fitting for asynchronous) and binds
//     using both inter- AND intra-program communication, mapped onto a
//     two-level machine tree (node -> core).
//   - Node-topology-aware placement: the same mapping against the full
//     cache hierarchy tree (node -> NUMA -> core), additionally pinning
//     FlexIO's shared-memory buffers into the producer's NUMA domain.
//
// A Placement both *evaluates* (modeled communication cost) and
// *enforces* (it yields the transport-selection function the adios layer
// consumes), mirroring how FlexIO auto-configures transports from
// placement decisions.
package placement

import (
	"fmt"
	"sort"

	"flexio/internal/evpath"
	"flexio/internal/graph"
	"flexio/internal/machine"
)

// Kind classifies a placement along the paper's Figure 1 spectrum.
type Kind int

const (
	Inline     Kind = iota // analytics runs inside simulation processes
	HelperCore             // analytics on dedicated cores of the same nodes
	Staging                // analytics on separate nodes
	Hybrid                 // mixture of on-node and off-node analytics
	Offline                // analytics reads from the file system later
)

func (k Kind) String() string {
	switch k {
	case Inline:
		return "inline"
	case HelperCore:
		return "helper-core"
	case Staging:
		return "staging"
	case Hybrid:
		return "hybrid"
	case Offline:
		return "offline"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec is the placement problem instance. The communication graph has
// NSim + NAna vertices: 0..NSim-1 are simulation processes, NSim.. are
// analytics processes. Edge weights are bytes moved per I/O interval
// (both programs' internal MPI traffic and the inter-program stream).
type Spec struct {
	Machine    *machine.Machine
	NSim       int
	NAna       int
	SimThreads int // cores per simulation process (OpenMP threads); >= 1
	Comm       *graph.Graph
}

func (s *Spec) threads() int {
	if s.SimThreads < 1 {
		return 1
	}
	return s.SimThreads
}

// sizes returns per-vertex core footprints (sim processes occupy their
// thread count, analytics processes one core).
func (s *Spec) sizes() []int {
	sz := make([]int, s.NSim+s.NAna)
	for i := 0; i < s.NSim; i++ {
		sz[i] = s.threads()
	}
	for i := s.NSim; i < len(sz); i++ {
		sz[i] = 1
	}
	return sz
}

// Validate checks the instance is well-formed and fits the machine.
func (s *Spec) Validate() error {
	if s.Machine == nil {
		return fmt.Errorf("placement: nil machine")
	}
	if s.NSim <= 0 || s.NAna < 0 {
		return fmt.Errorf("placement: NSim=%d NAna=%d", s.NSim, s.NAna)
	}
	if s.Comm == nil || s.Comm.N != s.NSim+s.NAna {
		return fmt.Errorf("placement: comm graph must have %d vertices", s.NSim+s.NAna)
	}
	need := s.NSim*s.threads() + s.NAna
	if need > s.Machine.TotalCores() {
		return fmt.Errorf("placement: need %d cores, machine has %d", need, s.Machine.TotalCores())
	}
	return nil
}

// Placement is a concrete process-to-core binding.
type Placement struct {
	Spec    *Spec
	Policy  string
	SimCore []int // first core of each sim process (occupies SimThreads consecutive cores)
	AnaCore []int // core of each analytics process
	// NUMAPinnedBuffers reports whether FlexIO's shm queues/pools are
	// pinned to the producer's NUMA domain (topology-aware policy).
	NUMAPinnedBuffers bool
	// InlineAnalytics marks the baseline where analytics is a direct
	// function call inside simulation processes (no separate cores).
	InlineAnalytics bool
}

// Kind classifies the binding by where analytics cores landed relative to
// simulation nodes.
func (p *Placement) Kind() Kind {
	if p.InlineAnalytics {
		return Inline
	}
	if len(p.AnaCore) == 0 {
		return Offline
	}
	m := p.Spec.Machine
	simNodes := make(map[int]bool)
	for _, c := range p.SimCore {
		simNodes[m.NodeOfCore(c)] = true
	}
	on, off := 0, 0
	for _, c := range p.AnaCore {
		if simNodes[m.NodeOfCore(c)] {
			on++
		} else {
			off++
		}
	}
	switch {
	case off == 0:
		return HelperCore
	case on == 0:
		return Staging
	default:
		return Hybrid
	}
}

// NodesUsed reports the number of distinct nodes the placement touches —
// the basis of the CPU-hours cost metric.
func (p *Placement) NodesUsed() int {
	m := p.Spec.Machine
	nodes := make(map[int]bool)
	for i, c := range p.SimCore {
		_ = i
		for t := 0; t < p.Spec.threads(); t++ {
			nodes[m.NodeOfCore(c+t)] = true
		}
	}
	for _, c := range p.AnaCore {
		nodes[m.NodeOfCore(c)] = true
	}
	return len(nodes)
}

// coreOf returns the core hosting a communication-graph vertex.
func (p *Placement) coreOf(v int) int {
	if v < p.Spec.NSim {
		return p.SimCore[v]
	}
	return p.AnaCore[v-p.Spec.NSim]
}

// CommCost evaluates the binding: sum over all edges of weight times the
// architecture-tree distance between the endpoints' cores. topoAware
// selects the evaluation tree depth (the objective each policy optimizes).
func (p *Placement) CommCost(topoAware bool) float64 {
	tree := p.Spec.Machine.Tree(topoAware)
	var cost float64
	n := p.Spec.NSim + p.Spec.NAna
	for u := 0; u < n; u++ {
		cu := p.coreOf(u)
		for _, v := range p.Spec.Comm.Neighbors(u) {
			if v <= u {
				continue
			}
			cost += p.Spec.Comm.Weight(u, v) * tree.LeafDistance(cu, p.coreOf(v))
		}
	}
	return cost
}

// InterNodeVolume reports the bytes per interval crossing node
// boundaries — the paper's Data Movement Volume metric for the
// interconnect.
func (p *Placement) InterNodeVolume() float64 {
	m := p.Spec.Machine
	var vol float64
	n := p.Spec.NSim + p.Spec.NAna
	for u := 0; u < n; u++ {
		cu := p.coreOf(u)
		for _, v := range p.Spec.Comm.Neighbors(u) {
			if v <= u {
				continue
			}
			if !m.SameNode(cu, p.coreOf(v)) {
				vol += p.Spec.Comm.Weight(u, v)
			}
		}
	}
	return vol
}

// TransportFor yields the adios/core transport-selection function that
// enforces this placement: shared memory on-node, RDMA across nodes —
// "intra- vs inter-node transports are automatically configured according
// to the placements".
func (p *Placement) TransportFor() func(w, r int) (evpath.TransportKind, int, int) {
	m := p.Spec.Machine
	return func(w, r int) (evpath.TransportKind, int, int) {
		if w < 0 || w >= len(p.SimCore) || r < 0 || r >= len(p.AnaCore) {
			return evpath.ChanTransport, 0, 0
		}
		wn := m.NodeOfCore(p.SimCore[w])
		rn := m.NodeOfCore(p.AnaCore[r])
		if wn == rn {
			return evpath.ShmTransport, wn, rn
		}
		return evpath.RDMATransport, wn, rn
	}
}

// Validate checks that the binding is feasible: cores in range, no two
// processes sharing a core (accounting for sim thread footprints).
func (p *Placement) Validate() error {
	m := p.Spec.Machine
	used := make(map[int]string)
	claim := func(core int, who string) error {
		if core < 0 || core >= m.TotalCores() {
			return fmt.Errorf("placement: %s on core %d outside machine", who, core)
		}
		if prev, taken := used[core]; taken {
			return fmt.Errorf("placement: core %d claimed by both %s and %s", core, prev, who)
		}
		used[core] = who
		return nil
	}
	for i, c := range p.SimCore {
		for t := 0; t < p.Spec.threads(); t++ {
			if err := claim(c+t, fmt.Sprintf("sim%d", i)); err != nil {
				return err
			}
		}
		// A sim process's threads must not straddle nodes.
		if m.NodeOfCore(c) != m.NodeOfCore(c+p.Spec.threads()-1) {
			return fmt.Errorf("placement: sim%d threads straddle nodes", i)
		}
	}
	for i, c := range p.AnaCore {
		if err := claim(c, fmt.Sprintf("ana%d", i)); err != nil {
			return err
		}
	}
	return nil
}

// layoutGroup places the vertices assigned to one node onto its cores:
// sim processes first (so their threads stay contiguous), then analytics.
// If topoAware, vertices are sub-partitioned across NUMA domains first so
// that heavy communicators share a domain and no sim process straddles a
// NUMA boundary gratuitously.
func layoutGroup(spec *Spec, verts []int, node int, topoAware bool, simCore, anaCore []int) error {
	m := spec.Machine
	base := node * m.Node.Cores
	if !topoAware {
		// Linear layout within the node (what plain holistic placement
		// does; the paper notes this can split OpenMP thread groups
		// across NUMA boundaries, costing up to 7% on Smoky).
		next := base
		for _, v := range orderSimFirst(spec, verts) {
			if v < spec.NSim {
				simCore[v] = next
				next += spec.threads()
			} else {
				anaCore[v-spec.NSim] = next
				next++
			}
		}
		if next > base+m.Node.Cores {
			return fmt.Errorf("placement: node %d over capacity", node)
		}
		return nil
	}
	// Topology-aware: partition the node's vertices across NUMA domains
	// by communication affinity, respecting per-domain core capacity and
	// keeping each sim process inside one domain.
	nd := m.Node.NUMADomains
	caps := make([]int, nd)
	for i := range caps {
		caps[i] = m.Node.CoresPerNUMA
	}
	sizes := make([]int, len(verts))
	allSizes := spec.sizes()
	for i, v := range verts {
		sizes[i] = allSizes[v]
	}
	part, err := graph.PartitionWeighted(spec.Comm, verts, sizes, caps)
	if err != nil {
		return fmt.Errorf("placement: node %d NUMA split: %w", node, err)
	}
	nextIn := make([]int, nd)
	for d := range nextIn {
		nextIn[d] = base + d*m.Node.CoresPerNUMA
	}
	for _, i := range orderIdxSimFirst(spec, verts) {
		v := verts[i]
		d := part[i]
		if v < spec.NSim {
			simCore[v] = nextIn[d]
			nextIn[d] += spec.threads()
		} else {
			anaCore[v-spec.NSim] = nextIn[d]
			nextIn[d]++
		}
		if nextIn[d] > base+(d+1)*m.Node.CoresPerNUMA {
			return fmt.Errorf("placement: node %d NUMA %d over capacity", node, d)
		}
	}
	return nil
}

// orderSimFirst returns verts with sim processes (multi-core footprints)
// first, preserving relative order — first-fit-decreasing layout.
func orderSimFirst(spec *Spec, verts []int) []int {
	out := make([]int, 0, len(verts))
	for _, v := range verts {
		if v < spec.NSim {
			out = append(out, v)
		}
	}
	for _, v := range verts {
		if v >= spec.NSim {
			out = append(out, v)
		}
	}
	return out
}

func orderIdxSimFirst(spec *Spec, verts []int) []int {
	idx := make([]int, len(verts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa := verts[idx[a]] < spec.NSim
		sb := verts[idx[b]] < spec.NSim
		return sa && !sb
	})
	return idx
}

package placement

import (
	"strings"

	"flexio/internal/flight"
)

// Critical-path cost inputs: beyond the scalar monitoring aggregates in
// CostInputsFromReport, the flight recorder's per-step critical paths
// say *where* each step's latency came from — which pipeline stage
// dominated, and how the step envelope splits across stages. Feeding
// those shares into CostInputs lets the allocation policies distinguish
// "steps are slow because the transport is saturated" (move analytics
// closer, prefer shm) from "steps are slow because analysis compute
// dominates" (more analytics cores, staging placement).

// ApplyCriticalPath folds a flight-recorder analysis into the cost
// inputs: PathShares gets the latency-weighted per-point shares,
// Dominant the point that owns the largest share. A nil or empty
// analysis leaves the inputs unchanged.
func (in *CostInputs) ApplyCriticalPath(a *flight.Analysis) {
	if in == nil || a == nil || len(a.Shares) == 0 {
		return
	}
	in.PathShares = make(map[string]float64, len(a.Shares))
	for point, share := range a.Shares {
		in.PathShares[point] = share
	}
	in.Dominant = a.Dominant
}

// TransportShare sums the critical-path shares attributable to data
// movement — send/recv points, transport verbs, and wait edges — as
// opposed to compute stages. Returns 0 when no shares were applied.
func (in CostInputs) TransportShare() float64 {
	var sum float64
	for point, share := range in.PathShares {
		if isTransportPoint(point) {
			sum += share
		}
	}
	return sum
}

func isTransportPoint(point string) bool {
	switch {
	case strings.HasPrefix(point, "send."),
		strings.HasPrefix(point, "recv."),
		strings.HasPrefix(point, "rdma."),
		strings.HasPrefix(point, "shm."),
		point == "wait", point == "sim.io", point == "reader.accept":
		return true
	}
	return false
}

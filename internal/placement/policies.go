package placement

import (
	"fmt"
	"math"

	"flexio/internal/graph"
)

// --- Resource allocation (Section III.B.2) ---

// SyncAllocation sizes the analytics so its data consumption rate matches
// the simulation's generation rate: the smallest process count p with
// anaStepTime(p) <= simInterval, minimizing pipeline stalls. anaStepTime
// is the profiled strong-scaling function of the analytics. Returns maxP
// (clamped) if even maxP cannot keep up.
func SyncAllocation(anaStepTime func(p int) float64, simInterval float64, maxP int) int {
	if maxP < 1 {
		maxP = 1
	}
	for p := 1; p <= maxP; p++ {
		if anaStepTime(p) <= simInterval {
			return p
		}
	}
	return maxP
}

// AsyncAllocation sizes analytics for asynchronous movement: data
// movement time plus analytics computation must fit inside the
// simulation's I/O interval. Movement time is estimated conservatively as
// total data size over point-to-point RDMA bandwidth (sequential
// arrival), which the paper notes may over-provision — acceptable
// because analytics is far smaller than the simulation.
func AsyncAllocation(bytesPerStep, p2pBandwidth float64, anaStepTime func(p int) float64, ioInterval float64, maxP int) int {
	if maxP < 1 {
		maxP = 1
	}
	move := 0.0
	if p2pBandwidth > 0 {
		move = bytesPerStep / p2pBandwidth
	}
	budget := ioInterval - move
	for p := 1; p <= maxP; p++ {
		if anaStepTime(p) <= budget {
			return p
		}
	}
	return maxP
}

// --- Resource binding policies ---

// DataAware implements the data-aware mapping algorithm [51]: it
// considers ONLY the inter-program communication matrix, partitions the
// combined process set into as many groups as nodes, and maps each group
// to a node with each process on one core. interOnly must be the comm
// graph restricted to sim<->analytics edges; the full spec graph is used
// for nothing here (that blindness to internal MPI is exactly what the
// holistic policy fixes).
func DataAware(spec *Spec, interOnly *graph.Graph) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if interOnly == nil || interOnly.N != spec.NSim+spec.NAna {
		return nil, fmt.Errorf("placement: inter-program graph must have %d vertices", spec.NSim+spec.NAna)
	}
	return bindByPartition(spec, interOnly, false, "data-aware")
}

// Holistic implements holistic placement: binding uses the full
// communication graph (inter- AND intra-program) mapped onto the
// two-level machine tree.
func Holistic(spec *Spec) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return bindByPartition(spec, spec.Comm, false, "holistic")
}

// TopologyAware extends holistic placement with the full cache-hierarchy
// tree: processes are additionally partitioned across NUMA domains inside
// each node, and FlexIO's shm buffers are pinned to producers' domains.
func TopologyAware(spec *Spec) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p, err := bindByPartition(spec, spec.Comm, true, "node-topology-aware")
	if err != nil {
		return nil, err
	}
	p.NUMAPinnedBuffers = true
	return p, nil
}

// bindByPartition is the shared binding engine: partition processes into
// node groups by communication affinity (capacity = cores per node), then
// lay each group out on its node (linearly, or NUMA-aware).
func bindByPartition(spec *Spec, g *graph.Graph, topoAware bool, policy string) (*Placement, error) {
	m := spec.Machine
	n := spec.NSim + spec.NAna
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	// Use only as many nodes as needed (ceil of core demand), not the
	// whole machine: unnecessary spreading inflates CPU-hours.
	need := spec.NSim*spec.threads() + spec.NAna
	nodes := (need + m.Node.Cores - 1) / m.Node.Cores
	if nodes > m.NumNodes {
		return nil, fmt.Errorf("placement: need %d nodes, machine has %d", nodes, m.NumNodes)
	}
	// Give the partitioner a little slack (one extra node if available)
	// so multi-core sim processes don't wedge on fragmentation, then
	// prefer the tighter solution when both work.
	best, bestCost := (*Placement)(nil), math.Inf(1)
	for _, tryNodes := range []int{nodes, nodes + 1} {
		if tryNodes > m.NumNodes {
			continue
		}
		caps := make([]int, tryNodes)
		for i := range caps {
			caps[i] = m.Node.Cores
		}
		part, err := graph.PartitionWeighted(g, verts, spec.sizes(), caps)
		if err != nil {
			continue
		}
		p := &Placement{
			Spec:    spec,
			Policy:  policy,
			SimCore: make([]int, spec.NSim),
			AnaCore: make([]int, spec.NAna),
		}
		failed := false
		for node := 0; node < tryNodes; node++ {
			var group []int
			for i, pt := range part {
				if pt == node {
					group = append(group, verts[i])
				}
			}
			if len(group) == 0 {
				continue
			}
			if err := layoutGroup(spec, group, node, topoAware, p.SimCore, p.AnaCore); err != nil {
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		if err := p.Validate(); err != nil {
			continue
		}
		cost := p.CommCost(topoAware)
		if cost < bestCost {
			best, bestCost = p, cost
		}
	}
	if best == nil {
		return nil, fmt.Errorf("placement: %s found no feasible binding", policy)
	}
	return best, nil
}

// InlinePlacement builds the baseline where analytics is called directly
// from simulation processes: sim processes fill whole nodes and there are
// no separate analytics processes (NAna must be 0 in the spec's inline
// variant, or analytics vertices are co-located with their sim ranks).
func InlinePlacement(spec *Spec) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Machine
	perNode := m.Node.Cores / spec.threads()
	if perNode < 1 {
		return nil, fmt.Errorf("placement: %d threads exceed node cores", spec.threads())
	}
	p := &Placement{
		Spec:            spec,
		Policy:          "inline",
		SimCore:         make([]int, spec.NSim),
		AnaCore:         make([]int, spec.NAna),
		InlineAnalytics: true,
	}
	for i := 0; i < spec.NSim; i++ {
		node := i / perNode
		slot := i % perNode
		p.SimCore[i] = node*m.Node.Cores + slot*spec.threads()
	}
	// Analytics vertices (if any) sit "inside" their sim ranks: core of
	// sim rank i for analytics i (used only for cost evaluation; inline
	// analytics is a function call, not a process).
	for i := 0; i < spec.NAna; i++ {
		p.AnaCore[i] = p.SimCore[i%spec.NSim]
	}
	return p, nil
}

// StagingPlacement builds the fixed baseline that packs simulation
// processes onto their own nodes and analytics onto separate nodes.
func StagingPlacement(spec *Spec) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Machine
	perNode := m.Node.Cores / spec.threads()
	if perNode < 1 {
		return nil, fmt.Errorf("placement: %d threads exceed node cores", spec.threads())
	}
	p := &Placement{
		Spec:    spec,
		Policy:  "staging",
		SimCore: make([]int, spec.NSim),
		AnaCore: make([]int, spec.NAna),
	}
	simNodes := (spec.NSim + perNode - 1) / perNode
	for i := 0; i < spec.NSim; i++ {
		node := i / perNode
		slot := i % perNode
		p.SimCore[i] = node*m.Node.Cores + slot*spec.threads()
	}
	for i := 0; i < spec.NAna; i++ {
		node := simNodes + i/m.Node.Cores
		if node >= m.NumNodes {
			return nil, fmt.Errorf("placement: staging needs node %d, machine has %d", node, m.NumNodes)
		}
		p.AnaCore[i] = node*m.Node.Cores + i%m.Node.Cores
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

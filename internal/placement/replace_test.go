package placement

import (
	"testing"

	"flexio/internal/evpath"
	"flexio/internal/machine"
)

// replaceSpec is a 2-sim / variable-ana instance on a 4-node Titan slice
// (16 cores per node) with a trivial comm graph.
func replaceSpec(nAna int) *Spec {
	return gtsLikeSpecN(machine.Titan(4), 2, nAna)
}

func gtsLikeSpecN(m *machine.Machine, nSim, nAna int) *Spec {
	s := gtsLikeSpec(m, nSim, 1)
	// gtsLikeSpec pairs one analytics per sim; widen/narrow by rebuilding.
	if nAna != nSim {
		s = s3dLikeSpec(m, nSim, nAna)
	}
	return s
}

func bound(spec *Spec, simCore, anaCore []int) *Placement {
	return &Placement{Spec: spec, Policy: "manual", SimCore: simCore, AnaCore: anaCore}
}

func TestReplaceHelperCoreToStaging(t *testing.T) {
	spec := replaceSpec(2)
	// Old: both analytics share node 0 with the sims (helper-core).
	old := bound(spec, []int{0, 1}, []int{2, 3})
	// New: both analytics move to node 1 (staging).
	neu := bound(spec, []int{0, 1}, []int{16, 17})

	d, err := Replace(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MovedAna) != 2 || d.AddedAna != 0 || d.RemovedAna != 0 {
		t.Fatalf("moved=%v added=%d removed=%d", d.MovedAna, d.AddedAna, d.RemovedAna)
	}
	if got := d.AnaNodes; len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("AnaNodes = %v", got)
	}
	// Every surviving pair flips shm -> rdma.
	if len(d.Flipped) != 4 {
		t.Fatalf("flipped %d pairs, want 4", len(d.Flipped))
	}
	for _, f := range d.Flipped {
		if f.From != evpath.ShmTransport || f.To != evpath.RDMATransport {
			t.Fatalf("pair (%d,%d): %v -> %v", f.Writer, f.Reader, f.From, f.To)
		}
	}
	if !d.KindChanged {
		t.Fatal("helper-core -> staging must report a kind change")
	}
	if d.Redials != 4 {
		t.Fatalf("Redials = %d, want 4", d.Redials)
	}
}

func TestReplaceRankCountChange(t *testing.T) {
	specOld := replaceSpec(2)
	specNew := replaceSpec(3)
	specNew.Machine = specOld.Machine
	old := bound(specOld, []int{0, 1}, []int{2, 3})
	neu := bound(specNew, []int{0, 1}, []int{2, 16, 17})

	d, err := Replace(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	if d.AddedAna != 1 || d.RemovedAna != 0 {
		t.Fatalf("added=%d removed=%d", d.AddedAna, d.RemovedAna)
	}
	// Rank 0 stays on node 0; rank 1 moves node 0 -> node 1.
	if len(d.MovedAna) != 1 || d.MovedAna[0] != 1 {
		t.Fatalf("MovedAna = %v", d.MovedAna)
	}
	// 2 sims x surviving rank 1 flip shm->rdma; rank 0's pairs keep shm.
	if len(d.Flipped) != 2 {
		t.Fatalf("flipped %d pairs, want 2", len(d.Flipped))
	}
	if d.Redials != 6 {
		t.Fatalf("Redials = %d, want 6 (2 sims x 3 ranks)", d.Redials)
	}
}

func TestReplaceNoChange(t *testing.T) {
	spec := replaceSpec(2)
	old := bound(spec, []int{0, 1}, []int{2, 3})
	neu := bound(spec, []int{0, 1}, []int{2, 3})
	d, err := Replace(old, neu)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MovedAna) != 0 || len(d.Flipped) != 0 || d.KindChanged {
		t.Fatalf("no-op replace reported changes: %+v", d)
	}
}

func TestReplaceRejectsSimChanges(t *testing.T) {
	spec := replaceSpec(2)
	old := bound(spec, []int{0, 1}, []int{2, 3})
	// Sim process 1 rebound to another core: illegal mid-run.
	if _, err := Replace(old, bound(spec, []int{0, 4}, []int{2, 3})); err == nil {
		t.Fatal("sim rebinding must be rejected")
	}
	if _, err := Replace(nil, old); err == nil {
		t.Fatal("nil placement must be rejected")
	}
	other := replaceSpec(2) // distinct *Machine
	if _, err := Replace(old, bound(other, []int{0, 1}, []int{2, 3})); err == nil {
		t.Fatal("cross-machine replace must be rejected")
	}
}

package placement

import (
	"flexio/internal/graph"
	"flexio/internal/monitor"
)

// Observed cost inputs (Section II.G): "monitoring data captured from the
// simulation side can be gathered online ... to dynamically schedule data
// movement and decide the placement". CostInputsFromReport distills a
// merged per-epoch monitoring report into the quantities the allocation
// policies (SyncAllocation, AsyncAllocation) and binding specs consume,
// replacing the profiled a-priori estimates with live measurements.

// CostInputs are the placement cost-model inputs observed at runtime.
type CostInputs struct {
	// BytesPerStep is the observed inter-program stream volume per
	// timestep ("data.bytes" over the steps the report covers).
	BytesPerStep float64
	// SimSlowdown is the observed inflation of the simulation interval
	// relative to its interference-free baseline (>= 1; 1 = no observed
	// interference). Derived from the "sim.interval" vs "sim.compute"
	// mean latencies when both are present.
	SimSlowdown float64
	// AnaStepTime is the tail (p95) analytics step latency in seconds
	// ("analysis" point) — the conservative input for SyncAllocation.
	AnaStepTime float64
	// Epoch is the session epoch the report covers ("session.epoch"
	// gauge; merged reports keep the max across ranks).
	Epoch uint64
	// PathShares attributes the observed step latency to pipeline
	// stages by point name (shares sum to ~1), as extracted by the
	// flight recorder's critical-path analysis. Nil when no flight
	// analysis was applied; see ApplyCriticalPath.
	PathShares map[string]float64
	// Dominant is the point owning the largest critical-path share
	// ("" when no flight analysis was applied).
	Dominant string
}

// CostInputsFromReport folds a monitoring report covering `steps`
// timesteps into cost inputs. Zero-valued fields mean the report lacked
// the corresponding measurement.
func CostInputsFromReport(rep monitor.Report, steps int64) CostInputs {
	if steps <= 0 {
		steps = 1
	}
	in := CostInputs{
		BytesPerStep: float64(rep.Volumes["data.bytes"]) / float64(steps),
		SimSlowdown:  1,
	}
	if base, ok := rep.Timings["sim.compute"]; ok && base.Count > 0 {
		if infl, ok2 := rep.Timings["sim.interval"]; ok2 && infl.Count > 0 {
			if ratio := infl.Mean() / base.Mean(); ratio > 1 {
				in.SimSlowdown = ratio
			}
		}
	}
	if ana, ok := rep.Timings["analysis"]; ok && ana.Count > 0 {
		in.AnaStepTime = ana.P95()
	}
	if e := rep.Gauges["session.epoch"]; e > 0 {
		in.Epoch = uint64(e)
	}
	return in
}

// ReweightInterProgram returns a copy of a placement spec's comm graph
// with every sim<->analytics edge rescaled so the inter-program traffic
// matches the observed bytes per step, keeping the original relative
// distribution across pairs. Internal (sim-sim, ana-ana) edges are
// untouched. A zero observation or an edgeless graph returns the graph
// unchanged.
func ReweightInterProgram(spec *Spec, in CostInputs) *graph.Graph {
	g := spec.Comm
	if g == nil || in.BytesPerStep <= 0 {
		return g
	}
	var interTotal float64
	for u := 0; u < spec.NSim; u++ {
		for v := spec.NSim; v < g.N; v++ {
			interTotal += g.Weight(u, v)
		}
	}
	if interTotal <= 0 {
		return g
	}
	scale := in.BytesPerStep / interTotal
	out := graph.New(g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			w := g.Weight(u, v)
			if u < spec.NSim && v >= spec.NSim {
				w *= scale
			}
			out.AddEdge(u, v, w)
		}
	}
	return out
}

package placement

import (
	"math"
	"testing"

	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/monitor"
)

func TestCostInputsFromReport(t *testing.T) {
	m := monitor.New("merged")
	m.AddVolume("data.bytes", 40<<20) // 4 steps of 10 MiB
	for i := 0; i < 4; i++ {
		m.Observe("sim.compute", 1.0)
		m.Observe("sim.interval", 1.3)
		m.Observe("analysis", 0.4)
	}
	m.Set("session.epoch", 2)

	in := CostInputsFromReport(m.Snapshot(), 4)
	if want := float64(10 << 20); in.BytesPerStep != want {
		t.Fatalf("BytesPerStep = %v, want %v", in.BytesPerStep, want)
	}
	if math.Abs(in.SimSlowdown-1.3) > 1e-9 {
		t.Fatalf("SimSlowdown = %v, want 1.3", in.SimSlowdown)
	}
	// P95 of four identical samples sits in the sample's bucket band.
	if in.AnaStepTime < 0.2 || in.AnaStepTime > 0.8 {
		t.Fatalf("AnaStepTime = %v, want ~0.4", in.AnaStepTime)
	}
	if in.Epoch != 2 {
		t.Fatalf("Epoch = %d, want 2", in.Epoch)
	}

	// Defaults when the report lacks the measurements.
	empty := CostInputsFromReport(monitor.Report{}, 0)
	if empty.SimSlowdown != 1 || empty.BytesPerStep != 0 || empty.AnaStepTime != 0 {
		t.Fatalf("empty-report inputs: %+v", empty)
	}
}

func TestReweightInterProgram(t *testing.T) {
	mach := machine.Titan(2)
	// 2 sim + 2 ana; a-priori estimate: each sim sends 100 B to its ana.
	g := graph.New(4)
	g.AddEdge(0, 1, 50) // sim-sim internal MPI
	g.AddEdge(0, 2, 100)
	g.AddEdge(1, 3, 100)
	spec := &Spec{Machine: mach, NSim: 2, NAna: 2, SimThreads: 1, Comm: g}

	// Observed: the stream actually moves 400 B/step (2x the estimate).
	out := ReweightInterProgram(spec, CostInputs{BytesPerStep: 400})
	if w := out.Weight(0, 2); w != 200 {
		t.Fatalf("inter edge 0-2 = %v, want 200", w)
	}
	if w := out.Weight(1, 3); w != 200 {
		t.Fatalf("inter edge 1-3 = %v, want 200", w)
	}
	if w := out.Weight(0, 1); w != 50 {
		t.Fatalf("internal edge rescaled: %v, want 50", w)
	}
	// No observation: the graph passes through untouched.
	if same := ReweightInterProgram(spec, CostInputs{}); same != g {
		t.Fatal("zero observation must return the original graph")
	}
}

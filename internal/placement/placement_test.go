package placement

import (
	"testing"

	"flexio/internal/evpath"
	"flexio/internal/graph"
	"flexio/internal/machine"
)

// gtsLikeSpec builds a GTS-style coupled instance: nSim sim processes
// with `threads` OpenMP threads each, one analytics process per sim
// process, heavy inter-program volume (110 MB) rank-to-rank, modest sim
// 2-D grid MPI, light analytics MPI.
func gtsLikeSpec(m *machine.Machine, nSim, threads int) *Spec {
	nAna := nSim
	g := graph.New(nSim + nAna)
	const interBytes = 110e6
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i, interBytes)
	}
	// Sim internal 2-D grid (ring simplification).
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, (i+1)%nSim, 5e6)
	}
	// Analytics internal reduction (light).
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 0.5e6)
	}
	return &Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: threads, Comm: g}
}

// s3dLikeSpec: tiny inter-program volume (1.7 MB per sim proc, fanned
// into nSim/128 analytics procs), dominant 3-D stencil MPI inside sim.
func s3dLikeSpec(m *machine.Machine, nSim, nAna int) *Spec {
	g := graph.New(nSim + nAna)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i%nAna, 1.7e6)
	}
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, (i+1)%nSim, 40e6) // heavy stencil exchange
		if i+4 < nSim {
			g.AddEdge(i, i+4, 40e6)
		}
	}
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 20e6) // viz compositing traffic
	}
	return &Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: 1, Comm: g}
}

func TestSyncAllocation(t *testing.T) {
	anaTime := func(p int) float64 { return 8.0 / float64(p) } // perfect scaling
	if got := SyncAllocation(anaTime, 2.0, 64); got != 4 {
		t.Fatalf("SyncAllocation = %d, want 4", got)
	}
	// Cannot keep up: clamp to max.
	if got := SyncAllocation(anaTime, 0.01, 16); got != 16 {
		t.Fatalf("clamped allocation = %d, want 16", got)
	}
	if got := SyncAllocation(anaTime, 100, 0); got != 1 {
		t.Fatalf("maxP floor = %d, want 1", got)
	}
}

func TestAsyncAllocationAccountsForMovement(t *testing.T) {
	anaTime := func(p int) float64 { return 4.0 / float64(p) }
	// interval 2s, movement 1s -> budget 1s -> p = 4.
	if got := AsyncAllocation(1e9, 1e9, anaTime, 2.0, 64); got != 4 {
		t.Fatalf("AsyncAllocation = %d, want 4", got)
	}
	// Without movement cost the same interval needs only p = 2.
	if got := AsyncAllocation(0, 1e9, anaTime, 2.0, 64); got != 2 {
		t.Fatalf("AsyncAllocation(no move) = %d, want 2", got)
	}
}

func TestSpecValidate(t *testing.T) {
	m := machine.Smoky(2)
	if err := (&Spec{Machine: m, NSim: 0, Comm: graph.New(0)}).Validate(); err == nil {
		t.Error("zero sim procs must fail")
	}
	if err := (&Spec{Machine: m, NSim: 4, NAna: 0, Comm: graph.New(3)}).Validate(); err == nil {
		t.Error("wrong graph size must fail")
	}
	big := &Spec{Machine: m, NSim: 100, NAna: 0, SimThreads: 1, Comm: graph.New(100)}
	if err := big.Validate(); err == nil {
		t.Error("overcommitted machine must fail")
	}
}

func TestGTSPoliciesChooseHelperCore(t *testing.T) {
	// Smoky: 16 cores/node, GTS with 3 threads -> 4 procs + 4 helper
	// cores per node. All three algorithms should land analytics on the
	// same nodes as their partner sim processes (the paper's result).
	m := machine.Smoky(8)
	spec := gtsLikeSpec(m, 16, 3)

	inter := graph.New(spec.NSim + spec.NAna)
	for i := 0; i < spec.NSim; i++ {
		inter.AddEdge(i, spec.NSim+i, 110e6)
	}

	da, err := DataAware(spec, inter)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := Holistic(spec)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Placement{da, ho, ta} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Policy, err)
		}
		if k := p.Kind(); k != HelperCore {
			t.Errorf("%s: kind = %v, want helper-core", p.Policy, k)
		}
		// Every analytics process must share a node with its partner.
		for i := 0; i < spec.NSim; i++ {
			if !m.SameNode(p.SimCore[i], p.AnaCore[i]) {
				t.Errorf("%s: pair %d split across nodes", p.Policy, i)
			}
		}
	}
	if !ta.NUMAPinnedBuffers || ho.NUMAPinnedBuffers {
		t.Error("buffer pinning flags wrong")
	}
}

func TestTopoAwareBeatsHolisticOnNUMA(t *testing.T) {
	// Evaluated against the full topology tree, the NUMA-aware layout
	// must be at least as good as the linear holistic layout.
	m := machine.Smoky(8)
	spec := gtsLikeSpec(m, 16, 3)
	ho, err := Holistic(spec)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ta.CommCost(true) > ho.CommCost(true)*1.0001 {
		t.Fatalf("topology-aware cost %g worse than holistic %g", ta.CommCost(true), ho.CommCost(true))
	}
}

func TestS3DHolisticPrefersStaging(t *testing.T) {
	// S3D: internal MPI dominates; clustering sim processes together and
	// analytics separately must beat the data-aware hybrid on comm cost.
	m := machine.Titan(10)
	spec := s3dLikeSpec(m, 128, 8)

	inter := graph.New(spec.NSim + spec.NAna)
	for i := 0; i < spec.NSim; i++ {
		inter.AddEdge(i, spec.NSim+i%spec.NAna, 1.7e6)
	}
	da, err := DataAware(spec, inter)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := Holistic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ho.CommCost(false) > da.CommCost(false)*1.0001 {
		t.Fatalf("holistic cost %g worse than data-aware %g on S3D shape",
			ho.CommCost(false), da.CommCost(false))
	}
}

func TestBaselines(t *testing.T) {
	m := machine.Smoky(8)
	spec := gtsLikeSpec(m, 16, 4) // 4 threads: sim fills whole nodes
	inl, err := InlinePlacement(spec)
	if err != nil {
		t.Fatal(err)
	}
	if inl.Kind() != Inline {
		t.Fatalf("inline kind = %v", inl.Kind())
	}
	// Inline: no inter-program inter-node traffic for paired ranks.
	spec2 := gtsLikeSpec(m, 16, 3)
	stg, err := StagingPlacement(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if err := stg.Validate(); err != nil {
		t.Fatal(err)
	}
	if stg.Kind() != Staging {
		t.Fatalf("staging kind = %v", stg.Kind())
	}
	// Staging moves all inter-program volume across the interconnect;
	// helper-core placements move ~none of it (the paper's ~90% data
	// movement reduction).
	ta, err := TopologyAware(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if ta.InterNodeVolume() > 0.2*stg.InterNodeVolume() {
		t.Fatalf("helper-core inter-node volume %g not <20%% of staging %g",
			ta.InterNodeVolume(), stg.InterNodeVolume())
	}
}

func TestStagingTooSmallMachine(t *testing.T) {
	m := machine.Smoky(1)
	spec := gtsLikeSpec(m, 4, 4)
	if _, err := StagingPlacement(spec); err == nil {
		t.Fatal("staging on a 1-node machine must fail")
	}
}

func TestTransportForMatchesPlacement(t *testing.T) {
	m := machine.Smoky(8)
	spec := gtsLikeSpec(m, 16, 3)
	ta, err := TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	fn := ta.TransportFor()
	for w := 0; w < spec.NSim; w++ {
		for r := 0; r < spec.NAna; r++ {
			kind, nw, nr := fn(w, r)
			sameNode := m.SameNode(ta.SimCore[w], ta.AnaCore[r])
			if sameNode && kind != evpath.ShmTransport {
				t.Fatalf("pair (%d,%d) on-node but kind %v", w, r, kind)
			}
			if !sameNode && kind != evpath.RDMATransport {
				t.Fatalf("pair (%d,%d) cross-node but kind %v", w, r, kind)
			}
			if nw != m.NodeOfCore(ta.SimCore[w]) || nr != m.NodeOfCore(ta.AnaCore[r]) {
				t.Fatalf("pair (%d,%d): node ids %d/%d wrong", w, r, nw, nr)
			}
		}
	}
	// Out-of-range pairs degrade gracefully.
	if kind, _, _ := fn(-1, 0); kind != evpath.ChanTransport {
		t.Fatal("out-of-range pair should fall back to chan")
	}
}

func TestPlacementValidateCatchesOverlap(t *testing.T) {
	m := machine.Smoky(2)
	spec := gtsLikeSpec(m, 2, 2)
	p := &Placement{
		Spec:    spec,
		SimCore: []int{0, 1}, // overlap: sim0 occupies 0-1, sim1 starts at 1
		AnaCore: []int{4, 5},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping thread footprints must fail")
	}
	p2 := &Placement{
		Spec:    spec,
		SimCore: []int{14, 4}, // 14+2 threads -> cores 14,15 ok; but straddle? 14,15 same node ok
		AnaCore: []int{0, 1},
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	p3 := &Placement{
		Spec:    spec,
		SimCore: []int{15, 4}, // 15,16 straddles node boundary
		AnaCore: []int{0, 1},
	}
	if err := p3.Validate(); err == nil {
		t.Fatal("node-straddling threads must fail")
	}
}

func TestNodesUsed(t *testing.T) {
	m := machine.Smoky(4)
	spec := gtsLikeSpec(m, 4, 3)
	ta, err := TopologyAware(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 4 procs x 3 threads + 4 ana = 16 cores = exactly 1 node.
	if got := ta.NodesUsed(); got != 1 {
		t.Fatalf("NodesUsed = %d, want 1", got)
	}
	stg, err := StagingPlacement(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := stg.NodesUsed(); got != 2 {
		t.Fatalf("staging NodesUsed = %d, want 2", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Inline: "inline", HelperCore: "helper-core", Staging: "staging",
		Hybrid: "hybrid", Offline: "offline",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
}

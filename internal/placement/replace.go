package placement

import (
	"fmt"

	"flexio/internal/evpath"
)

// PairChange records one writer-reader pair whose transport flips when a
// placement is replaced (e.g. shm -> rdma because the reader moved off
// the writer's node).
type PairChange struct {
	Writer, Reader int
	From, To       evpath.TransportKind
}

// Delta describes what a mid-run switch from one placement to another
// actually changes — the control-plane work a core.ReaderGroup.Reconfigure
// must perform. It separates the cheap part (ranks that stay put keep
// their transport kind) from the expensive part (moved ranks, flipped
// transports, added/removed ranks, all of which force re-dials).
type Delta struct {
	Old, New *Placement

	// AnaNodes is the node id of each analytics rank under the new
	// placement — exactly the Nodes field a core.ReconfigSpec wants.
	AnaNodes []int
	// MovedAna lists analytics ranks present in both placements whose node
	// changed.
	MovedAna []int
	// AddedAna / RemovedAna count rank-count changes (N -> N').
	AddedAna, RemovedAna int
	// Flipped lists surviving pairs whose transport kind changes. Pairs
	// involving added or removed ranks are not listed — they are covered
	// by the dial count below.
	Flipped []PairChange
	// Redials is the number of data connections the writer side dials
	// under the new regime (every pair re-dials at an epoch bump, even
	// unchanged ones — connections are epoch-scoped).
	Redials int
	// KindChanged reports that the placement class itself moved along the
	// paper's Figure 1 spectrum (helper-core -> staging, ...).
	KindChanged bool
}

// Replace computes the delta of switching analytics from placement old to
// placement new mid-run. The simulation side must be identical in both
// (mid-run re-placement moves analytics, never the running simulation):
// same machine, same sim process count, same sim bindings.
func Replace(oldP, newP *Placement) (*Delta, error) {
	if oldP == nil || newP == nil {
		return nil, fmt.Errorf("placement: Replace needs two placements")
	}
	if oldP.Spec == nil || newP.Spec == nil {
		return nil, fmt.Errorf("placement: Replace needs bound placements")
	}
	if oldP.Spec.Machine != newP.Spec.Machine {
		return nil, fmt.Errorf("placement: cannot replace across machines")
	}
	if oldP.Spec.NSim != newP.Spec.NSim {
		return nil, fmt.Errorf("placement: sim side changed (%d -> %d processes); only analytics can move mid-run",
			oldP.Spec.NSim, newP.Spec.NSim)
	}
	for i := range oldP.SimCore {
		if i < len(newP.SimCore) && oldP.SimCore[i] != newP.SimCore[i] {
			return nil, fmt.Errorf("placement: sim process %d rebound (core %d -> %d); only analytics can move mid-run",
				i, oldP.SimCore[i], newP.SimCore[i])
		}
	}

	m := newP.Spec.Machine
	d := &Delta{Old: oldP, New: newP}
	oldN, newN := len(oldP.AnaCore), len(newP.AnaCore)
	if newN > oldN {
		d.AddedAna = newN - oldN
	} else {
		d.RemovedAna = oldN - newN
	}
	d.AnaNodes = make([]int, newN)
	for r, c := range newP.AnaCore {
		d.AnaNodes[r] = m.NodeOfCore(c)
	}

	common := oldN
	if newN < common {
		common = newN
	}
	for r := 0; r < common; r++ {
		if m.NodeOfCore(oldP.AnaCore[r]) != m.NodeOfCore(newP.AnaCore[r]) {
			d.MovedAna = append(d.MovedAna, r)
		}
	}

	oldT := oldP.TransportFor()
	newT := newP.TransportFor()
	for w := 0; w < newP.Spec.NSim; w++ {
		for r := 0; r < common; r++ {
			fromKind, _, _ := oldT(w, r)
			toKind, _, _ := newT(w, r)
			if fromKind != toKind {
				d.Flipped = append(d.Flipped, PairChange{Writer: w, Reader: r, From: fromKind, To: toKind})
			}
		}
	}
	d.Redials = newP.Spec.NSim * newN
	d.KindChanged = oldP.Kind() != newP.Kind()
	return d, nil
}

package flexnode

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// Scenario is the deterministic coupled workload used to prove that a
// multi-process deployment moves exactly the same bytes as an in-process
// run: M writer ranks produce a 2-D global array whose every element is
// a pure function of (step, i, j); N reader ranks consume block
// selections and fold (step, box, data) into an FNV-1a digest. Because
// the data is coordinate-determined, each rank's digest has a closed
// form (ExpectedHash) independent of writer decomposition, transport,
// process placement, or injected faults — any byte lost, duplicated or
// reordered anywhere in the pipeline changes the digest.
type Scenario struct {
	Stream string
	// Tenant scopes the scenario under a tenant namespace: the stream
	// bootstrap, rank-host contacts and published stats/hash/epoch keys
	// all live under directory.Qualify(Tenant, Stream), so one daemon
	// (and one directory) can host ranks for many tenants concurrently.
	// "" runs in the legacy bare namespace.
	Tenant string
	// Shape is the global array shape; default {48, 64}.
	Shape []int64
	// M and N are the writer and reader rank counts.
	M, N int
	// Steps is the number of timesteps written.
	Steps int
	// ReconfigAfter, when >= 0, reconfigures the reader group (same N,
	// orthogonal block decomposition) after every rank has consumed this
	// step. Must be < Steps-1 so post-switch steps exist.
	ReconfigAfter int
}

const scenarioVar = "field"

// Key is the tenant-qualified stream name: the namespace under which
// every directory entry derived from this scenario is published.
func (sc *Scenario) Key() string { return directory.Qualify(sc.Tenant, sc.Stream) }

func (sc *Scenario) withDefaults() Scenario {
	out := *sc
	if len(out.Shape) == 0 {
		out.Shape = []int64{48, 64}
	}
	if out.Steps <= 0 {
		out.Steps = 6
	}
	return out
}

// WriterBoxes is the writer-rank decomposition of the global array.
func (sc *Scenario) WriterBoxes() ([]ndarray.Box, error) {
	s := sc.withDefaults()
	dec, err := ndarray.BlockDecompose(s.Shape, ndarray.FactorGrid(s.M, len(s.Shape)))
	if err != nil {
		return nil, err
	}
	return dec.Boxes, nil
}

// ReaderBoxes is the reader-rank selection decomposition: rows-split
// before the reconfiguration, columns-split after — deliberately
// orthogonal so the switch re-routes every writer-reader pair.
func (sc *Scenario) ReaderBoxes(post bool) ([]ndarray.Box, error) {
	s := sc.withDefaults()
	grid := []int{s.N, 1}
	if post {
		grid = []int{1, s.N}
	}
	dec, err := ndarray.BlockDecompose(s.Shape, grid)
	if err != nil {
		return nil, err
	}
	return dec.Boxes, nil
}

// ReconfigSpec builds the mid-run switch for the reader group.
func (sc *Scenario) ReconfigSpec() (core.ReconfigSpec, error) {
	boxes, err := sc.ReaderBoxes(true)
	if err != nil {
		return core.ReconfigSpec{}, err
	}
	return core.ReconfigSpec{
		NReaders: sc.withDefaults().N,
		Arrays:   map[string][]ndarray.Box{scenarioVar: boxes},
	}, nil
}

// elem is the deterministic element value at global (i, j) of step s.
func elem(step, i, j int64) uint64 {
	return uint64(step)*0x9E3779B97F4A7C15 ^ uint64(i)*0xC2B2AE3D27D4EB4F ^ uint64(j)*0x165667B19E3779F9
}

// Fill materializes a box of step data, row-major, 8 bytes per element.
func (sc *Scenario) Fill(step int64, box ndarray.Box) []byte {
	out := make([]byte, 0, box.NumElements()*8)
	for i := box.Lo[0]; i < box.Hi[0]; i++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			out = binary.LittleEndian.AppendUint64(out, elem(step, i, j))
		}
	}
	return out
}

// digest folds one consumed step into a rank's running hash.
func digestStep(h interface{ Write(p []byte) (int, error) }, step int64, box ndarray.Box, data []byte) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(step))
	h.Write(b[:]) //nolint:errcheck // fnv never fails
	for d := 0; d < box.NDims(); d++ {
		binary.LittleEndian.PutUint64(b[:], uint64(box.Lo[d]))
		h.Write(b[:]) //nolint:errcheck
		binary.LittleEndian.PutUint64(b[:], uint64(box.Hi[d]))
		h.Write(b[:]) //nolint:errcheck
	}
	h.Write(data) //nolint:errcheck
}

// ExpectedHash is the closed-form digest reader rank r must produce:
// what RunReader computes when every byte arrives intact, regardless of
// deployment shape.
func (sc *Scenario) ExpectedHash(r int) (string, error) {
	s := sc.withDefaults()
	pre, err := s.ReaderBoxes(false)
	if err != nil {
		return "", err
	}
	post, err := s.ReaderBoxes(true)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	for step := 0; step < s.Steps; step++ {
		box := pre[r]
		if s.ReconfigAfter >= 0 && step > s.ReconfigAfter {
			box = post[r]
		}
		digestStep(h, int64(step), box, s.Fill(int64(step), box))
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// RunWriter drives writer rank w through the whole scenario. hold, when
// non-nil, is called after the ReconfigAfter step boundary and must
// return once the reader's reconfiguration request has been parked at
// the writer group — keeping the switch window open (exactly the
// discipline of the reconfig benchmark). Pass nil for ranks in processes
// that cannot observe the group's session state.
func (sc *Scenario) RunWriter(w int, wr WriterRank, hold func()) error {
	s := sc.withDefaults()
	boxes, err := s.WriterBoxes()
	if err != nil {
		return err
	}
	box := boxes[w]
	meta := core.VarMeta{
		Name:        scenarioVar,
		Kind:        core.GlobalArrayVar,
		ElemSize:    8,
		GlobalShape: s.Shape,
		Box:         box,
	}
	for step := 0; step < s.Steps; step++ {
		if err := wr.BeginStep(int64(step)); err != nil {
			return fmt.Errorf("writer %d step %d: %w", w, step, err)
		}
		if err := wr.Write(meta, s.Fill(int64(step), box)); err != nil {
			return fmt.Errorf("writer %d step %d: %w", w, step, err)
		}
		if err := wr.EndStep(); err != nil {
			return fmt.Errorf("writer %d step %d: %w", w, step, err)
		}
		if hold != nil && s.ReconfigAfter >= 0 && step == s.ReconfigAfter {
			hold()
		}
	}
	return nil
}

// RunReader drives reader rank r through the whole scenario and returns
// its output digest. The rank selects its pre-switch box, consumes steps
// until EOS, and rendezvouses at the reconfiguration barrier after the
// agreed step.
func (sc *Scenario) RunReader(r int, rd ReaderRank) (string, error) {
	s := sc.withDefaults()
	pre, err := s.ReaderBoxes(false)
	if err != nil {
		return "", err
	}
	if err := rd.SelectArray(scenarioVar, pre[r]); err != nil {
		return "", fmt.Errorf("reader %d select: %w", r, err)
	}
	h := fnv.New64a()
	consumed := 0
	for {
		step, ok := rd.BeginStep()
		if !ok {
			break
		}
		data, box, err := rd.ReadArray(scenarioVar)
		if err != nil {
			return "", fmt.Errorf("reader %d step %d: %w", r, step, err)
		}
		digestStep(h, step, box, data)
		if err := rd.EndStep(); err != nil {
			return "", fmt.Errorf("reader %d step %d end: %w", r, step, err)
		}
		consumed++
		if s.ReconfigAfter >= 0 && step == int64(s.ReconfigAfter) {
			if err := rd.Barrier(step); err != nil {
				return "", fmt.Errorf("reader %d reconfig barrier: %w", r, err)
			}
		}
	}
	if consumed != s.Steps {
		return "", fmt.Errorf("reader %d consumed %d steps, want %d", r, consumed, s.Steps)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// holdForReconfig builds the writer-side hold callback: it spins until
// the group has parked a reconfiguration request (cf. the reconfig
// benchmark's boundary discipline).
func holdForReconfig(wg *core.WriterGroup) func() {
	return func() {
		for wg.SessionState() != core.StateReconfiguring {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// RunLocal executes the whole scenario in one process over the given
// transport kind (chan by default) and returns the per-rank reader
// digests. This is the reference run the multi-process deployment is
// compared against, and doubles as the scenario's own unit test harness.
func (sc *Scenario) RunLocal(kind evpath.TransportKind) ([]string, error) {
	s := sc.withDefaults()
	if s.Stream == "" {
		return nil, fmt.Errorf("flexnode: scenario needs a Stream")
	}
	net := evpath.NewNet(nil)
	dir := directory.NewMem()
	mon := monitor.New("local")
	opts := core.Options{
		Tenant:    s.Tenant,
		Transport: func(w, r int) (evpath.TransportKind, int, int) { return kind, 0, 0 },
	}
	wg, err := core.NewWriterGroup(net, dir, s.Stream, s.M, opts, mon)
	if err != nil {
		return nil, err
	}
	rg, err := core.NewReaderGroupOpts(net, dir, s.Stream, s.N, core.ReaderOptions{Tenant: s.Tenant}, nil)
	if err != nil {
		return nil, err
	}

	var ctl *ReconfigController
	if s.ReconfigAfter >= 0 {
		spec, err := s.ReconfigSpec()
		if err != nil {
			return nil, err
		}
		ctl = NewReconfigController(rg, spec, s.N)
	}

	errCh := make(chan error, s.M+s.N)
	var wrs sync.WaitGroup
	for w := 0; w < s.M; w++ {
		w := w
		var hold func()
		if w == 0 && s.ReconfigAfter >= 0 {
			hold = holdForReconfig(wg)
		}
		wrs.Add(1)
		go func() {
			defer wrs.Done()
			if err := s.RunWriter(w, wg.Writer(w), hold); err != nil {
				errCh <- err
			}
		}()
	}
	hashes := make([]string, s.N)
	var rds sync.WaitGroup
	for r := 0; r < s.N; r++ {
		r := r
		rds.Add(1)
		go func() {
			defer rds.Done()
			h, err := s.RunReader(r, NewLocalReader(rg, r, ctl))
			if err != nil {
				errCh <- err
				return
			}
			hashes[r] = h
		}()
	}
	wrs.Wait()
	if err := wg.Close(); err != nil {
		return nil, err
	}
	rds.Wait()
	rg.Close() //nolint:errcheck // EOS already consumed
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	return hashes, nil
}

// Package flexnode implements FlexIO's deployment daemon: a process that
// joins a multi-process coupled run, registers itself with the external
// directory under a lease, serves the TCP/TLS wire transport, and hosts
// writer or reader ranks on behalf of the stream's group leader. It is
// the piece that turns the in-process reproduction into a real
// location-flexible deployment — the same core.WriterGroup/ReaderGroup
// code runs unchanged, with placement decided by which flexnode hosts
// which rank.
//
// Naming inside the shared directory uses prefixed namespaces so one
// directory server can serve discovery, transport resolution, identity
// pinning and result collection at once:
//
//	<stream>         stream bootstrap (core's coordinator contact)
//	ev!<contact>     evpath contact -> wire address ("tcp://h:p" | "tls://h:p")
//	cert!<addr>      wire address -> base64(DER) of its pinned TLS certificate
//	node!<name>      flexnode liveness lease -> its wire address
//	hash!<s>.r<N>    reader rank N's output digest for stream <s>
//	obs!<name>       flexnode observability endpoint -> "http://h:p"
package flexnode

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/base64"
	"fmt"
	"math/big"
	"sync"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
)

// Directory namespace prefixes (see the package comment).
const (
	nsContact = "ev!"
	nsCert    = "cert!"
	nsNode    = "node!"
	nsHash    = "hash!"
	nsObs     = "obs!"
)

// ObsNamespace is the directory prefix under which daemons lease their
// observability (monitor HTTP) endpoints; the fleet collector lists it
// to discover scrape targets.
const ObsNamespace = nsObs

// ObsKey names the directory entry holding a flexnode's observability
// endpoint lease.
func ObsKey(name string) string { return nsObs + name }

// HashKey names the directory entry holding reader rank r's output
// digest for stream.
func HashKey(stream string, r int) string {
	return fmt.Sprintf("%s%s.r%d", nsHash, stream, r)
}

// NodeKey names the directory entry holding a flexnode's liveness lease.
func NodeKey(name string) string { return nsNode + name }

// Contacts adapts a directory.Directory into the wire transport's
// contact publisher and resolver: every local evpath listener is
// published as "ev!<contact>" -> this process's advertised address, and
// dials of non-local contacts resolve through the same namespace. When
// the directory supports leases and TTL is set, published contacts decay
// unless RenewAll heartbeats run — so a crashed flexnode's contacts
// vanish instead of black-holing dialers.
type Contacts struct {
	Dir directory.Directory
	// TTL is the lease on published contacts (0 = permanent).
	TTL time.Duration
	// Wait bounds how long Resolve blocks for a not-yet-published
	// contact (default 10s) — the cross-process analogue of dialing a
	// listener that is still being set up.
	Wait time.Duration

	mu        sync.Mutex
	published map[string]string // contact -> wire address
}

// PublishContact implements evpath.ContactPublisher.
func (c *Contacts) PublishContact(contact, addr string) error {
	if err := registerMaybeTTL(c.Dir, nsContact+contact, addr, c.TTL); err != nil {
		return err
	}
	c.mu.Lock()
	if c.published == nil {
		c.published = make(map[string]string)
	}
	c.published[contact] = addr
	c.mu.Unlock()
	return nil
}

// RetractContact implements evpath.ContactPublisher.
func (c *Contacts) RetractContact(contact string) error {
	c.mu.Lock()
	delete(c.published, contact)
	c.mu.Unlock()
	return c.Dir.Unregister(nsContact + contact)
}

// Resolve maps a contact to its wire address, waiting briefly for
// publication. It is installed as the Net's resolver.
func (c *Contacts) Resolve(contact string) (string, error) {
	wait := c.Wait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	return c.Dir.WaitLookup(nsContact+contact, wait)
}

// RenewAll heartbeats the leases of every published contact. Errors are
// collected but renewal continues — one dead binding must not stop the
// others' heartbeats.
func (c *Contacts) RenewAll() error {
	if c.TTL <= 0 {
		return nil
	}
	lsr, ok := c.Dir.(directory.Leaser)
	if !ok {
		return nil
	}
	c.mu.Lock()
	names := make([]string, 0, len(c.published))
	for name := range c.published {
		names = append(names, name)
	}
	c.mu.Unlock()
	var firstErr error
	for _, name := range names {
		if err := lsr.Renew(nsContact+name, c.TTL); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// registerMaybeTTL registers with a lease when the directory supports
// them and ttl > 0, falling back to a permanent binding.
func registerMaybeTTL(dir directory.Directory, name, contact string, ttl time.Duration) error {
	if ttl > 0 {
		if lsr, ok := dir.(directory.Leaser); ok {
			return lsr.RegisterTTL(name, contact, ttl)
		}
	}
	return dir.Register(name, contact)
}

// Identity is a flexnode's ephemeral TLS identity: a fresh ed25519
// self-signed certificate minted at startup. Peers authenticate it by
// pinning — the exact DER bytes are published in the directory under the
// node's wire address, and dialers compare what the handshake presents
// against what the directory says. No CA, no clock-sensitive chain
// verification, no names: possession of the directory entry is the trust
// root, exactly like the contact information itself.
type Identity struct {
	cert tls.Certificate
	der  []byte
}

// NewIdentity mints a fresh self-signed ed25519 identity.
func NewIdentity(name string) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, pub, priv)
	if err != nil {
		return nil, err
	}
	return &Identity{
		cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv},
		der:  der,
	}, nil
}

// ServerTLS is the tls.Config handed to evpath.ServeTCP.
func (id *Identity) ServerTLS() *tls.Config {
	return &tls.Config{Certificates: []tls.Certificate{id.cert}, MinVersion: tls.VersionTLS13}
}

// Publish binds the identity's certificate to the advertised wire
// address in the directory ("cert!<addr>" -> base64 DER).
func (id *Identity) Publish(dir directory.Directory, addr string, ttl time.Duration) error {
	return registerMaybeTTL(dir, nsCert+addr, base64.StdEncoding.EncodeToString(id.der), ttl)
}

// PinnedClientTLS returns the client TLS hook for evpath.SetClientTLS:
// given a "tls://host:port" address it looks the peer's published
// certificate up and returns a config that accepts exactly those DER
// bytes and nothing else.
func PinnedClientTLS(dir directory.Directory, wait time.Duration) func(addr string) *tls.Config {
	if wait <= 0 {
		wait = 10 * time.Second
	}
	return func(addr string) *tls.Config {
		b64, err := dir.WaitLookup(nsCert+addr, wait)
		if err != nil {
			return nil
		}
		want, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil
		}
		return &tls.Config{
			// Chain and name verification are replaced by the byte-exact
			// pin below; the handshake still authenticates possession of
			// the private key.
			InsecureSkipVerify: true,
			MinVersion:         tls.VersionTLS13,
			VerifyPeerCertificate: func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
				if len(rawCerts) == 1 && string(rawCerts[0]) == string(want) {
					return nil
				}
				return fmt.Errorf("flexnode: peer %s presented a certificate that does not match its directory pin", addr)
			},
		}
	}
}

// Bind wires a Contacts (and optionally a pinned-TLS dialer hook) into a
// Net: published listeners and resolved dials both go through the
// directory.
func (c *Contacts) Bind(n *evpath.Net) {
	n.SetPublisher(c)
	n.SetResolver(c.Resolve)
	n.SetClientTLS(PinnedClientTLS(c.Dir, c.Wait))
}

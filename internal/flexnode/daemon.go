package flexnode

import (
	"crypto/tls"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// State is a daemon lifecycle stage. Transitions are strictly forward:
//
//	Init -> Registering -> Serving -> Draining -> Deregistered
//
// Registering covers directory attachment, wire-transport startup and
// lease acquisition; Serving is the steady state in which ranks are
// hosted; Draining stops heartbeats and waits for hosted work to finish;
// Deregistered means the node's directory bindings are gone and the
// transport is closed.
type State int32

const (
	StateInit State = iota
	StateRegistering
	StateServing
	StateDraining
	StateDeregistered
)

func (s State) String() string {
	switch s {
	case StateInit:
		return "init"
	case StateRegistering:
		return "registering"
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateDeregistered:
		return "deregistered"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Config describes one flexnode.
type Config struct {
	// Name identifies the node in the directory ("node!<Name>").
	Name string
	// Dir is the shared directory (a directory.Client against the
	// deployment's dirserver, or a Mem in single-process tests).
	Dir directory.Directory
	// Bind is the wire listen address; default "127.0.0.1:0".
	Bind string
	// TLS serves the wire transport over TLS with a fresh pinned
	// identity published to the directory.
	TLS bool
	// LeaseTTL is the node's directory lease; heartbeats renew it at
	// TTL/3. 0 disables leasing (bindings are permanent).
	LeaseTTL time.Duration
	// MetricsAddr optionally serves monitor endpoints (/metrics, /report,
	// ...) over HTTP; "127.0.0.1:0" picks a free port.
	MetricsAddr string
	// TCP overrides wire-transport tunables (zero fields keep defaults).
	TCP evpath.TCPConfig
}

// Daemon is a running flexnode.
type Daemon struct {
	Net *evpath.Net
	Mon *monitor.Monitor
	// Jrn is the daemon's flight recorder. Roles hosted on the daemon
	// attach it to their groups; the monitor server exposes it at
	// /journal and /critpath, which is how the fleet collector stitches
	// this process's events into cross-process critical paths.
	Jrn *flight.Journal

	cfg      Config
	contacts *Contacts
	identity *Identity
	adv      string
	state    atomic.Int32
	msrv     *monitor.Server
	maddr    string

	stopHeartbeat chan struct{}
	heartbeatDone sync.WaitGroup

	mu        sync.Mutex
	listeners []interface{ Close() } // hosted rank listeners, closed on drain
	roles     sync.WaitGroup         // hosted rank servers; Close waits for them
}

// Start brings a flexnode up: Init -> Registering (transport + directory
// + lease) -> Serving.
func Start(cfg Config) (*Daemon, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("flexnode: config needs a Name")
	}
	if cfg.Dir == nil {
		return nil, fmt.Errorf("flexnode: config needs a Dir")
	}
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	d := &Daemon{
		Net:           evpath.NewNet(nil),
		Mon:           monitor.New(cfg.Name),
		Jrn:           flight.NewJournal(0),
		cfg:           cfg,
		stopHeartbeat: make(chan struct{}),
	}
	d.Mon.SetIdentity(cfg.Name, "")
	d.Jrn.SetIdentity(cfg.Name, "")
	if err := d.transition(StateInit, StateRegistering); err != nil {
		return nil, err
	}
	d.Net.ConfigureTCP(cfg.TCP)
	d.contacts = &Contacts{Dir: cfg.Dir, TTL: cfg.LeaseTTL}
	d.contacts.Bind(d.Net)

	var srvTLS *tls.Config
	if cfg.TLS {
		id, err := NewIdentity(cfg.Name)
		if err != nil {
			return nil, err
		}
		d.identity = id
		srvTLS = id.ServerTLS()
	}
	adv, err := d.Net.ServeTCP(cfg.Bind, srvTLS)
	if err != nil {
		return nil, err
	}
	d.adv = adv
	if d.identity != nil {
		if err := d.identity.Publish(cfg.Dir, adv, cfg.LeaseTTL); err != nil {
			d.Net.CloseTCP()
			return nil, err
		}
	}
	if err := registerMaybeTTL(cfg.Dir, NodeKey(cfg.Name), adv, cfg.LeaseTTL); err != nil {
		d.Net.CloseTCP()
		return nil, err
	}
	if cfg.LeaseTTL > 0 {
		d.heartbeatDone.Add(1)
		go d.heartbeat()
	}
	if cfg.MetricsAddr != "" {
		d.msrv = monitor.NewServer(func() monitor.Report {
			d.Net.ReportTCP(d.Mon, "tcp.")
			return d.Mon.Snapshot()
		})
		d.msrv.SetFlightSource(func() *flight.Journal { return d.Jrn })
		addr, err := d.msrv.Start(cfg.MetricsAddr)
		if err != nil {
			d.Net.CloseTCP()
			return nil, err
		}
		d.maddr = addr
		// Lease the scrape endpoint under obs! so the fleet collector's
		// directory listing always names exactly the live daemons.
		if err := registerMaybeTTL(cfg.Dir, ObsKey(cfg.Name), "http://"+addr, cfg.LeaseTTL); err != nil {
			d.msrv.Close() //nolint:errcheck
			d.Net.CloseTCP()
			return nil, err
		}
	}
	if err := d.transition(StateRegistering, StateServing); err != nil {
		d.Net.CloseTCP()
		return nil, err
	}
	return d, nil
}

// State reports the daemon's lifecycle stage.
func (d *Daemon) State() State { return State(d.state.Load()) }

func (d *Daemon) transition(from, to State) error {
	if !d.state.CompareAndSwap(int32(from), int32(to)) {
		return fmt.Errorf("flexnode %s: bad transition %s -> %s (now %s)",
			d.cfg.Name, from, to, d.State())
	}
	return nil
}

// Advertise reports the node's wire address ("tcp://..." or "tls://...").
func (d *Daemon) Advertise() string { return d.adv }

// MetricsAddr reports the monitor HTTP address ("" when not serving).
func (d *Daemon) MetricsAddr() string { return d.maddr }

// heartbeat renews the node lease, the published identity, and every
// published contact at a third of the TTL — fast enough that one missed
// beat never drops a live binding.
func (d *Daemon) heartbeat() {
	defer d.heartbeatDone.Done()
	lsr, ok := d.cfg.Dir.(directory.Leaser)
	if !ok {
		return
	}
	ttl := d.cfg.LeaseTTL
	tick := time.NewTicker(ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-d.stopHeartbeat:
			return
		case <-tick.C:
			lsr.Renew(NodeKey(d.cfg.Name), ttl) //nolint:errcheck // next beat retries
			if d.identity != nil {
				lsr.Renew(nsCert+d.adv, ttl) //nolint:errcheck
			}
			if d.maddr != "" {
				lsr.Renew(ObsKey(d.cfg.Name), ttl) //nolint:errcheck
			}
			d.contacts.RenewAll() //nolint:errcheck
			d.Mon.Incr("node.heartbeats", 1)
		}
	}
}

// trackRole registers hosted work that Close must wait for. done must be
// called exactly once when the role finishes; l (may be nil) is closed at
// drain time so a role stuck in Accept unblocks.
func (d *Daemon) trackRole(l interface{ Close() }) (done func()) {
	d.roles.Add(1)
	if l != nil {
		d.mu.Lock()
		d.listeners = append(d.listeners, l)
		d.mu.Unlock()
	}
	var once sync.Once
	return func() { once.Do(d.roles.Done) }
}

// Close drains and deregisters: Serving -> Draining (stop heartbeats,
// wait for hosted ranks) -> Deregistered (retract bindings, close the
// transport). Safe to call once; later calls are a no-op error.
func (d *Daemon) Close() error {
	if err := d.transition(StateServing, StateDraining); err != nil {
		return err
	}
	close(d.stopHeartbeat)
	d.heartbeatDone.Wait()
	d.mu.Lock()
	for _, l := range d.listeners {
		l.Close()
	}
	d.mu.Unlock()
	d.roles.Wait()

	d.cfg.Dir.Unregister(NodeKey(d.cfg.Name)) //nolint:errcheck
	if d.identity != nil {
		d.cfg.Dir.Unregister(nsCert + d.adv) //nolint:errcheck
	}
	if d.maddr != "" {
		d.cfg.Dir.Unregister(ObsKey(d.cfg.Name)) //nolint:errcheck
	}
	if d.msrv != nil {
		d.msrv.Close() //nolint:errcheck
	}
	d.Net.CloseTCP()
	return d.transition(StateDraining, StateDeregistered)
}

package flexnode

import (
	"fmt"
	"sync"

	"flexio/internal/core"
	"flexio/internal/evpath"
	"flexio/internal/ndarray"
)

// Rank hosting: core's WriterGroup/ReaderGroup aggregate their M (or N)
// ranks inside one address space — the group leader. A flexnode that is
// not the leader still hosts ranks by proxy: the leader daemon listens on
// one contact per rank ("<stream>.host.w<k>" / "<stream>.host.r<k>"),
// and a worker daemon drives its rank through a small request/response
// protocol over an ordinary evpath connection (which, across processes,
// rides the TCP/TLS wire transport). This mirrors the paper's staging
// deployment: the leader is the staging/analytics node owning the group,
// workers are the simulation or analytics processes whose rank I/O ships
// to it, while bulk redistribution between the writer and reader leaders
// crosses the wire directly.
//
// Protocol: each request is one evpath Event (meta Record + optional
// bulk Data), answered by exactly one reply event. Ops mirror the core
// per-rank API: begin/write/end for writers; select/begin/read/end plus
// the reconfig barrier for readers. Errors travel in the reply's "err"
// field; the connection is driven by a single client goroutine, so no
// request pipelining or correlation ids are needed.

// WriterRank is the per-rank writer API the scenario runs against —
// implemented locally by core.Writer and remotely by RemoteWriter.
type WriterRank interface {
	BeginStep(step int64) error
	Write(meta core.VarMeta, data []byte) error
	EndStep() error
}

// ReaderRank is the per-rank reader API — implemented locally by
// localReader (a core.Reader plus the reconfig controller) and remotely
// by RemoteReader. Barrier is the reconfiguration rendezvous: called
// between steps, it blocks until every rank of the group has arrived and
// the leader's Reconfigure has completed.
type ReaderRank interface {
	SelectArray(name string, box ndarray.Box) error
	BeginStep() (step int64, ok bool)
	ReadArray(name string) ([]byte, ndarray.Box, error)
	EndStep() error
	Barrier(step int64) error
}

// rankContact names the leader's listener for one hosted rank.
func rankContact(stream, role string, rank int) string {
	return fmt.Sprintf("%s.host.%s%d", stream, role, rank)
}

func rpcCall(conn evpath.Conn, meta evpath.Record, data []byte) (*evpath.Event, error) {
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta, Data: data})
	if err != nil {
		return nil, err
	}
	if err := conn.Send(buf); err != nil {
		return nil, err
	}
	raw, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	rep, err := evpath.DecodeEvent(raw)
	if err != nil {
		return nil, err
	}
	if msg, ok := rep.Meta.GetString("err"); ok && msg != "" {
		return rep, fmt.Errorf("flexnode: remote rank: %s", msg)
	}
	return rep, nil
}

func rpcReply(conn evpath.Conn, meta evpath.Record, data []byte) error {
	buf, err := evpath.EncodeEvent(&evpath.Event{Meta: meta, Data: data})
	if err != nil {
		return err
	}
	return conn.Send(buf)
}

func rpcError(conn evpath.Conn, err error) error {
	return rpcReply(conn, evpath.Record{"err": err.Error()}, nil)
}

// --- Remote writer rank (worker side) ---

// RemoteWriter drives a writer rank hosted by the stream's leader
// daemon.
type RemoteWriter struct{ conn evpath.Conn }

// DialWriterRank connects to the leader's host listener for rank w.
func DialWriterRank(n *evpath.Net, stream string, w int) (*RemoteWriter, error) {
	conn, err := n.Dial(rankContact(stream, "w", w), evpath.TCPTransport, 0, 0)
	if err != nil {
		return nil, err
	}
	return &RemoteWriter{conn: conn}, nil
}

// BeginStep implements WriterRank.
func (rw *RemoteWriter) BeginStep(step int64) error {
	_, err := rpcCall(rw.conn, evpath.Record{"op": "begin", "step": step}, nil)
	return err
}

// Write implements WriterRank.
func (rw *RemoteWriter) Write(meta core.VarMeta, data []byte) error {
	req := evpath.Record{
		"op":   "write",
		"name": meta.Name,
		"kind": int64(meta.Kind),
		"elem": int64(meta.ElemSize),
	}
	if len(meta.GlobalShape) > 0 {
		req["shape"] = append([]int64(nil), meta.GlobalShape...)
	}
	if meta.Box.NDims() > 0 {
		req["lo"] = append([]int64(nil), meta.Box.Lo...)
		req["hi"] = append([]int64(nil), meta.Box.Hi...)
	}
	_, err := rpcCall(rw.conn, req, data)
	return err
}

// EndStep implements WriterRank.
func (rw *RemoteWriter) EndStep() error {
	_, err := rpcCall(rw.conn, evpath.Record{"op": "end"}, nil)
	return err
}

// Close releases the rank: the leader's server loop returns.
func (rw *RemoteWriter) Close() error {
	rpcCall(rw.conn, evpath.Record{"op": "finish"}, nil) //nolint:errcheck // best-effort goodbye
	return rw.conn.Close()
}

// --- Remote reader rank (worker side) ---

// RemoteReader drives a reader rank hosted by the stream's reader-leader
// daemon.
type RemoteReader struct{ conn evpath.Conn }

// DialReaderRank connects to the leader's host listener for rank r.
func DialReaderRank(n *evpath.Net, stream string, r int) (*RemoteReader, error) {
	conn, err := n.Dial(rankContact(stream, "r", r), evpath.TCPTransport, 0, 0)
	if err != nil {
		return nil, err
	}
	return &RemoteReader{conn: conn}, nil
}

// SelectArray implements ReaderRank.
func (rr *RemoteReader) SelectArray(name string, box ndarray.Box) error {
	req := evpath.Record{"op": "select", "name": name}
	if box.NDims() > 0 {
		req["lo"] = append([]int64(nil), box.Lo...)
		req["hi"] = append([]int64(nil), box.Hi...)
	}
	_, err := rpcCall(rr.conn, req, nil)
	return err
}

// BeginStep implements ReaderRank. ok=false signals end of stream.
func (rr *RemoteReader) BeginStep() (int64, bool) {
	rep, err := rpcCall(rr.conn, evpath.Record{"op": "begin"}, nil)
	if err != nil {
		return 0, false
	}
	step, _ := rep.Meta.GetInt("step")
	more, _ := rep.Meta.GetBool("more")
	return step, more
}

// ReadArray implements ReaderRank.
func (rr *RemoteReader) ReadArray(name string) ([]byte, ndarray.Box, error) {
	rep, err := rpcCall(rr.conn, evpath.Record{"op": "read", "name": name}, nil)
	if err != nil {
		return nil, ndarray.Box{}, err
	}
	lo, _ := rep.Meta.GetInts("lo")
	hi, _ := rep.Meta.GetInts("hi")
	return rep.Data, ndarray.NewBox(lo, hi), nil
}

// EndStep implements ReaderRank.
func (rr *RemoteReader) EndStep() error {
	_, err := rpcCall(rr.conn, evpath.Record{"op": "end"}, nil)
	return err
}

// Barrier implements ReaderRank: blocks until the leader's
// reconfiguration completes.
func (rr *RemoteReader) Barrier(step int64) error {
	_, err := rpcCall(rr.conn, evpath.Record{"op": "barrier", "step": step}, nil)
	return err
}

// Close releases the rank.
func (rr *RemoteReader) Close() error {
	rpcCall(rr.conn, evpath.Record{"op": "finish"}, nil) //nolint:errcheck
	return rr.conn.Close()
}

// --- Leader-side rank servers ---

// ReconfigController coordinates one mid-run Reconfigure across all N
// reader ranks of a group: every rank Arrives between two steps, the
// last arrival performs the switch, and all ranks observe its result.
type ReconfigController struct {
	G    *core.ReaderGroup
	Spec core.ReconfigSpec
	N    int

	mu      sync.Mutex
	arrived int
	done    chan struct{}
	err     error
}

// NewReconfigController makes a controller for n ranks.
func NewReconfigController(g *core.ReaderGroup, spec core.ReconfigSpec, n int) *ReconfigController {
	return &ReconfigController{G: g, Spec: spec, N: n, done: make(chan struct{})}
}

// Arrive blocks until all ranks have arrived and the reconfiguration has
// run; it returns the Reconfigure error (shared by every rank).
func (c *ReconfigController) Arrive() error {
	c.mu.Lock()
	c.arrived++
	if c.arrived == c.N {
		c.err = c.G.Reconfigure(c.Spec)
		close(c.done)
	}
	c.mu.Unlock()
	<-c.done
	return c.err
}

// localReader adapts one core reader rank (plus the optional reconfig
// controller) to ReaderRank. After a barrier the core handle is
// re-fetched, as Reconfigure invalidates old handles.
type localReader struct {
	g    *core.ReaderGroup
	rank int
	ctl  *ReconfigController
	rd   *core.Reader
}

// NewLocalReader wraps rank r of g; ctl may be nil when the run has no
// reconfiguration.
func NewLocalReader(g *core.ReaderGroup, r int, ctl *ReconfigController) ReaderRank {
	return &localReader{g: g, rank: r, ctl: ctl, rd: g.Reader(r)}
}

func (lr *localReader) SelectArray(name string, box ndarray.Box) error {
	return lr.rd.SelectArray(name, box)
}
func (lr *localReader) BeginStep() (int64, bool) { return lr.rd.BeginStep() }
func (lr *localReader) ReadArray(name string) ([]byte, ndarray.Box, error) {
	return lr.rd.ReadArray(name)
}
func (lr *localReader) EndStep() error { return lr.rd.EndStep() }
func (lr *localReader) Barrier(step int64) error {
	if lr.ctl == nil {
		return fmt.Errorf("flexnode: rank %d hit a barrier but no reconfiguration is planned", lr.rank)
	}
	if err := lr.ctl.Arrive(); err != nil {
		return err
	}
	lr.rd = lr.g.Reader(lr.rank)
	return nil
}

// HostWriterRank exposes writer rank w of wg on the daemon's net: remote
// workers dial rankContact(stream, "w", w) and drive the rank. The
// listener serves exactly one worker connection; the returned channel
// closes when the worker finishes or hangs up.
func (d *Daemon) HostWriterRank(wg *core.WriterGroup, stream string, w int) (<-chan struct{}, error) {
	l, err := d.Net.Listen(rankContact(stream, "w", w))
	if err != nil {
		return nil, err
	}
	roleDone := d.trackRole(l)
	done := make(chan struct{})
	go func() {
		defer roleDone()
		defer close(done)
		defer l.Close()
		conn, ok := l.Accept()
		if !ok {
			return
		}
		defer conn.Close()
		serveWriterConn(conn, wg.Writer(w))
	}()
	return done, nil
}

// HostReaderRank exposes reader rank r of g, with ctl coordinating any
// mid-run reconfiguration (nil when none is planned). The returned
// channel closes when the worker finishes or hangs up.
func (d *Daemon) HostReaderRank(g *core.ReaderGroup, stream string, r int, ctl *ReconfigController) (<-chan struct{}, error) {
	l, err := d.Net.Listen(rankContact(stream, "r", r))
	if err != nil {
		return nil, err
	}
	roleDone := d.trackRole(l)
	done := make(chan struct{})
	go func() {
		defer roleDone()
		defer close(done)
		defer l.Close()
		conn, ok := l.Accept()
		if !ok {
			return
		}
		defer conn.Close()
		serveReaderConn(conn, NewLocalReader(g, r, ctl))
	}()
	return done, nil
}

func serveWriterConn(conn evpath.Conn, wr *core.Writer) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return // EOF or failed worker; the group's own EOS handles cleanup
		}
		req, err := evpath.DecodeEvent(raw)
		if err != nil {
			rpcError(conn, err) //nolint:errcheck
			continue
		}
		op, _ := req.Meta.GetString("op")
		switch op {
		case "begin":
			step, _ := req.Meta.GetInt("step")
			reply(conn, wr.BeginStep(step))
		case "write":
			name, _ := req.Meta.GetString("name")
			kind, _ := req.Meta.GetInt("kind")
			elem, _ := req.Meta.GetInt("elem")
			shape, _ := req.Meta.GetInts("shape")
			lo, _ := req.Meta.GetInts("lo")
			hi, _ := req.Meta.GetInts("hi")
			meta := core.VarMeta{
				Name:        name,
				Kind:        core.VarKind(kind),
				ElemSize:    int(elem),
				GlobalShape: shape,
				Box:         ndarray.NewBox(lo, hi),
			}
			reply(conn, wr.Write(meta, req.Data))
		case "end":
			reply(conn, wr.EndStep())
		case "finish":
			rpcReply(conn, evpath.Record{"ok": true}, nil) //nolint:errcheck
			return
		default:
			rpcError(conn, fmt.Errorf("unknown writer op %q", op)) //nolint:errcheck
		}
	}
}

func serveReaderConn(conn evpath.Conn, rd ReaderRank) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		req, err := evpath.DecodeEvent(raw)
		if err != nil {
			rpcError(conn, err) //nolint:errcheck
			continue
		}
		op, _ := req.Meta.GetString("op")
		switch op {
		case "select":
			name, _ := req.Meta.GetString("name")
			lo, _ := req.Meta.GetInts("lo")
			hi, _ := req.Meta.GetInts("hi")
			reply(conn, rd.SelectArray(name, ndarray.NewBox(lo, hi)))
		case "begin":
			step, more := rd.BeginStep()
			rpcReply(conn, evpath.Record{"step": step, "more": more}, nil) //nolint:errcheck
		case "read":
			name, _ := req.Meta.GetString("name")
			data, box, err := rd.ReadArray(name)
			if err != nil {
				rpcError(conn, err) //nolint:errcheck
				continue
			}
			rep := evpath.Record{}
			if box.NDims() > 0 {
				rep["lo"] = append([]int64(nil), box.Lo...)
				rep["hi"] = append([]int64(nil), box.Hi...)
			}
			// EncodeEvent copies data into the reply frame, so the pool
			// buffer can be released before Send (chan transports pass
			// slices by reference).
			buf, encErr := evpath.EncodeEvent(&evpath.Event{Meta: rep, Data: data})
			release(rd, data)
			if encErr != nil {
				rpcError(conn, encErr) //nolint:errcheck
				continue
			}
			if conn.Send(buf) != nil {
				return
			}
		case "end":
			reply(conn, rd.EndStep())
		case "barrier":
			reply(conn, rd.Barrier(mustInt(req.Meta, "step")))
		case "finish":
			rpcReply(conn, evpath.Record{"ok": true}, nil) //nolint:errcheck
			return
		default:
			rpcError(conn, fmt.Errorf("unknown reader op %q", op)) //nolint:errcheck
		}
	}
}

// release returns a ReadArray buffer to the pool when the rank is a
// local core reader (remote ranks hand out plain slices).
func release(rd ReaderRank, buf []byte) {
	if lr, ok := rd.(*localReader); ok {
		lr.rd.ReleaseArray(buf)
	}
}

func mustInt(r evpath.Record, name string) int64 {
	v, _ := r.GetInt(name)
	return v
}

func reply(conn evpath.Conn, err error) {
	if err != nil {
		rpcError(conn, err) //nolint:errcheck
		return
	}
	rpcReply(conn, evpath.Record{"ok": true}, nil) //nolint:errcheck
}

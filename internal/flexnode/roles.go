package flexnode

import (
	"fmt"

	"flexio/internal/core"
	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
)

// Role runners: the four jobs a flexnode takes in a deployed coupled
// scenario. The writer leader owns the WriterGroup and local writer
// ranks, and hosts the remaining writer ranks for worker daemons; the
// reader leader mirrors that for the ReaderGroup, and additionally
// drives the mid-run reconfiguration and the DC plug-in deployment.
// Workers attach to their leader's rank-host listeners and run exactly
// the same scenario code through the remote proxies. cmd/flexnode and
// the multiproc experiment's child processes are thin wrappers over
// these functions.

// RoleConfig parameterizes one role run.
type RoleConfig struct {
	// Node configures the daemon itself.
	Node Config
	// Scenario is the shared deterministic workload (all processes must
	// agree on it byte for byte).
	Scenario Scenario
	// Ranks lists the scenario ranks this process runs locally. For
	// leaders, the remaining ranks are hosted for workers; workers run
	// all their ranks through remote proxies.
	Ranks []int
	// Faults, for the writer leader, injects wire faults before
	// streaming (the deployment-level disconnect drill).
	Faults evpath.TCPFaults
	// Plugin, for the reader leader, is a DC plug-in source to ship to
	// the writer side over the control connection ("" ships nothing).
	Plugin string
	// PluginName names the shipped plug-in (default "flexnode-annot").
	PluginName string
}

// StatsKey names the directory entry under which the writer leader
// publishes its wire-transport counters after the run.
func StatsKey(stream string) string { return "stats!" + stream + ".wleader" }

// EpochKey names the directory entry under which the reader leader
// publishes the stream's final session epoch (2 after one mid-run
// reconfiguration).
func EpochKey(stream string) string { return "epoch!" + stream }

func others(total int, local []int) []int {
	mine := make(map[int]bool, len(local))
	for _, r := range local {
		mine[r] = true
	}
	var out []int
	for r := 0; r < total; r++ {
		if !mine[r] {
			out = append(out, r)
		}
	}
	return out
}

// tcpEverywhere is the placement for a deployed stream: every
// writer-reader pair crosses the wire.
func tcpEverywhere(w, r int) (evpath.TransportKind, int, int) {
	return evpath.TCPTransport, 0, 0
}

// RunWriterLeader starts a daemon, creates the stream's WriterGroup,
// runs cfg.Ranks locally, hosts the rest, closes the stream at EOS and
// publishes the node's wire counters for the driver's assertions.
func RunWriterLeader(cfg RoleConfig) error {
	sc := cfg.Scenario.withDefaults()
	d, err := Start(cfg.Node)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck
	if cfg.Faults != (evpath.TCPFaults{}) {
		d.Net.InjectTCPFaults(cfg.Faults)
	}
	opts := core.Options{Transport: tcpEverywhere, Tenant: sc.Tenant}
	wg, err := core.NewWriterGroup(d.Net, cfg.Node.Dir, sc.Stream, sc.M, opts, d.Mon)
	if err != nil {
		return err
	}
	wg.SetJournal(d.Jrn)

	var hosted []<-chan struct{}
	for _, w := range others(sc.M, cfg.Ranks) {
		ch, err := d.HostWriterRank(wg, sc.Key(), w)
		if err != nil {
			return err
		}
		hosted = append(hosted, ch)
	}
	errCh := make(chan error, len(cfg.Ranks))
	for i, w := range cfg.Ranks {
		w := w
		var hold func()
		if i == 0 && sc.ReconfigAfter >= 0 {
			hold = holdForReconfig(wg)
		}
		go func() { errCh <- sc.RunWriter(w, wg.Writer(w), hold) }()
	}
	for range cfg.Ranks {
		if err := <-errCh; err != nil {
			return err
		}
	}
	for _, ch := range hosted {
		<-ch
	}
	if err := wg.Close(); err != nil {
		return err
	}
	s := d.Net.TCPStatsSnapshot()
	stats := fmt.Sprintf("dials=%d,redials=%d,resumes=%d,drops=%d,bytes_tx=%d,bytes_rx=%d",
		s.Dials, s.Redials, s.Resumes, s.Drops, s.BytesTX, s.BytesRX)
	if err := cfg.Node.Dir.Register(StatsKey(sc.Key()), stats); err != nil {
		return err
	}
	return d.Close()
}

// RunReaderLeader starts a daemon, opens the stream's ReaderGroup, ships
// the DC plug-in, runs cfg.Ranks locally (publishing their digests),
// hosts the rest, and coordinates the mid-run reconfiguration.
func RunReaderLeader(cfg RoleConfig) error {
	sc := cfg.Scenario.withDefaults()
	d, err := Start(cfg.Node)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck
	rg, err := core.NewReaderGroupOpts(d.Net, cfg.Node.Dir, sc.Stream, sc.N, core.ReaderOptions{Tenant: sc.Tenant}, d.Mon)
	if err != nil {
		return err
	}
	rg.SetJournal(d.Jrn)
	if cfg.Plugin != "" {
		name := cfg.PluginName
		if name == "" {
			name = "flexnode-annot"
		}
		if err := rg.DeployPluginToWriters(dcplugin.Plugin{Name: name, Source: cfg.Plugin}); err != nil {
			return fmt.Errorf("flexnode: plug-in deploy: %w", err)
		}
	}
	var ctl *ReconfigController
	if sc.ReconfigAfter >= 0 {
		spec, err := sc.ReconfigSpec()
		if err != nil {
			return err
		}
		ctl = NewReconfigController(rg, spec, sc.N)
	}
	var hosted []<-chan struct{}
	for _, r := range others(sc.N, cfg.Ranks) {
		ch, err := d.HostReaderRank(rg, sc.Key(), r, ctl)
		if err != nil {
			return err
		}
		hosted = append(hosted, ch)
	}
	errCh := make(chan error, len(cfg.Ranks))
	for _, r := range cfg.Ranks {
		r := r
		go func() {
			h, err := sc.RunReader(r, NewLocalReader(rg, r, ctl))
			if err == nil {
				err = cfg.Node.Dir.Register(HashKey(sc.Key(), r), h)
			}
			errCh <- err
		}()
	}
	for range cfg.Ranks {
		if err := <-errCh; err != nil {
			return err
		}
	}
	for _, ch := range hosted {
		<-ch
	}
	if err := cfg.Node.Dir.Register(EpochKey(sc.Key()), fmt.Sprintf("%d", rg.SessionEpoch())); err != nil {
		return err
	}
	rg.Close() //nolint:errcheck // EOS already consumed by every rank
	return d.Close()
}

// RunWriterWorker starts a daemon and drives cfg.Ranks through the
// writer leader's rank-host listeners.
func RunWriterWorker(cfg RoleConfig) error {
	sc := cfg.Scenario.withDefaults()
	d, err := Start(cfg.Node)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck
	errCh := make(chan error, len(cfg.Ranks))
	for _, w := range cfg.Ranks {
		w := w
		go func() {
			rw, err := DialWriterRank(d.Net, sc.Key(), w)
			if err != nil {
				errCh <- err
				return
			}
			err = sc.RunWriter(w, rw, nil)
			rw.Close() //nolint:errcheck
			errCh <- err
		}()
	}
	for range cfg.Ranks {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return d.Close()
}

// RunReaderWorker starts a daemon, drives cfg.Ranks through the reader
// leader's rank-host listeners and publishes their digests.
func RunReaderWorker(cfg RoleConfig) error {
	sc := cfg.Scenario.withDefaults()
	d, err := Start(cfg.Node)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck
	errCh := make(chan error, len(cfg.Ranks))
	for _, r := range cfg.Ranks {
		r := r
		go func() {
			rr, err := DialReaderRank(d.Net, sc.Key(), r)
			if err != nil {
				errCh <- err
				return
			}
			h, err := sc.RunReader(r, rr)
			if err == nil {
				err = cfg.Node.Dir.Register(HashKey(sc.Key(), r), h)
			}
			rr.Close() //nolint:errcheck
			errCh <- err
		}()
	}
	for range cfg.Ranks {
		if err := <-errCh; err != nil {
			return err
		}
	}
	return d.Close()
}

package flexnode

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"flexio/internal/core"
	"flexio/internal/directory"
	"flexio/internal/evpath"
)

// TestDaemonLifecycle walks the state machine end to end on a leased
// directory: Serving with a visible node lease kept alive by heartbeats,
// live monitor endpoints, then Close -> Deregistered with the lease
// retracted.
func TestDaemonLifecycle(t *testing.T) {
	dir := directory.NewMem()
	d, err := Start(Config{
		Name:        "node-a",
		Dir:         dir,
		LeaseTTL:    80 * time.Millisecond,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got := d.State(); got != StateServing {
		t.Fatalf("state after Start = %v, want serving", got)
	}
	if !strings.HasPrefix(d.Advertise(), "tcp://") {
		t.Fatalf("Advertise = %q, want tcp://...", d.Advertise())
	}
	if c, err := dir.Lookup(NodeKey("node-a")); err != nil || c != d.Advertise() {
		t.Fatalf("node lease = %q, %v", c, err)
	}
	// Heartbeats must hold the lease well past its TTL.
	time.Sleep(250 * time.Millisecond)
	if _, err := dir.Lookup(NodeKey("node-a")); err != nil {
		t.Fatalf("node lease decayed despite heartbeats: %v", err)
	}
	// The monitor endpoint serves the wire-transport gauges.
	resp, err := http.Get("http://" + d.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "tcp.dials") {
		t.Fatalf("/metrics missing tcp gauges:\n%s", body)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := d.State(); got != StateDeregistered {
		t.Fatalf("state after Close = %v, want deregistered", got)
	}
	if _, err := dir.Lookup(NodeKey("node-a")); !errors.Is(err, directory.ErrNotFound) {
		t.Fatalf("node lease after Close = %v, want ErrNotFound", err)
	}
	// Double Close reports the bad transition instead of panicking.
	if err := d.Close(); err == nil {
		t.Fatal("second Close succeeded, want transition error")
	}
}

// TestScenarioMatchesClosedForm: the in-process reference run produces
// exactly the digests the closed form predicts — with and without a
// mid-run reconfiguration.
func TestScenarioMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct {
		name          string
		reconfigAfter int
	}{
		{"plain", -1},
		{"reconfig", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := Scenario{
				Stream:        "sc-" + tc.name,
				M:             2,
				N:             2,
				Steps:         6,
				ReconfigAfter: tc.reconfigAfter,
			}
			hashes, err := sc.RunLocal(evpath.ChanTransport)
			if err != nil {
				t.Fatalf("RunLocal: %v", err)
			}
			for r, got := range hashes {
				want, err := sc.ExpectedHash(r)
				if err != nil {
					t.Fatalf("ExpectedHash(%d): %v", r, err)
				}
				if got != want {
					t.Fatalf("rank %d digest = %s, want %s", r, got, want)
				}
			}
		})
	}
}

// TestDistributedScenario is the in-process twin of the multiproc
// experiment: four daemons with separate Nets — writer leader + worker,
// reader leader + worker — talk exclusively through real TCP+TLS
// sockets and a shared directory, survive an injected mid-run
// disconnect, reconfigure the reader decomposition mid-stream, ship a
// DC plug-in over the control connection, and still produce byte-exact
// digests.
func TestDistributedScenario(t *testing.T) {
	dir := directory.NewMem()
	sc := Scenario{
		Stream:        "dist",
		M:             2,
		N:             2,
		Steps:         6,
		ReconfigAfter: 2,
	}
	node := func(name string) Config {
		return Config{Name: name, Dir: dir, TLS: true, LeaseTTL: time.Second}
	}
	type result struct {
		role string
		err  error
	}
	results := make(chan result, 4)
	run := func(role string, fn func(RoleConfig) error, cfg RoleConfig) {
		go func() { results <- result{role, fn(cfg)} }()
	}
	run("writer-leader", RunWriterLeader, RoleConfig{
		Node:     node("wl"),
		Scenario: sc,
		Ranks:    []int{0},
		Faults:   evpath.TCPFaults{DropAfterSends: 9},
	})
	run("writer-worker", RunWriterWorker, RoleConfig{
		Node: node("ww"), Scenario: sc, Ranks: []int{1},
	})
	run("reader-leader", RunReaderLeader, RoleConfig{
		Node:     node("rl"),
		Scenario: sc,
		Ranks:    []int{0},
		Plugin:   `setstr("deployed-by","flexnode");`,
	})
	run("reader-worker", RunReaderWorker, RoleConfig{
		Node: node("rw"), Scenario: sc, Ranks: []int{1},
	})
	for i := 0; i < 4; i++ {
		res := <-results
		if res.err != nil {
			t.Fatalf("%s: %v", res.role, res.err)
		}
	}
	for r := 0; r < sc.N; r++ {
		want, err := sc.ExpectedHash(r)
		if err != nil {
			t.Fatalf("ExpectedHash(%d): %v", r, err)
		}
		got, err := dir.Lookup(HashKey(sc.Stream, r))
		if err != nil {
			t.Fatalf("digest for rank %d not published: %v", r, err)
		}
		if got != want {
			t.Fatalf("rank %d digest = %s, want %s (bytes diverged across the wire)", r, got, want)
		}
	}
	// The injected disconnect actually happened and was survived.
	stats, err := dir.Lookup(StatsKey(sc.Stream))
	if err != nil {
		t.Fatalf("writer-leader stats not published: %v", err)
	}
	if !strings.Contains(stats, "drops=1") {
		t.Fatalf("stats = %q, want exactly one injected drop", stats)
	}
	if strings.Contains(stats, "redials=0,") {
		t.Fatalf("stats = %q, want at least one redial", stats)
	}
}

// TestDaemonHostsTwoTenants: a single daemon owns writer groups for two
// tenants that share a stream name, hosts one writer rank of each for a
// remote peer, and runs both tenants' readers — concurrently, over one
// directory. The per-tenant digests must match the closed form, proving
// the tenant namespace keeps the coupled streams fully isolated.
func TestDaemonHostsTwoTenants(t *testing.T) {
	dir := directory.NewMem()
	host, err := Start(Config{Name: "host", Dir: dir, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Start host: %v", err)
	}
	defer host.Close() //nolint:errcheck
	peer, err := Start(Config{Name: "peer", Dir: dir, LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("Start peer: %v", err)
	}
	defer peer.Close() //nolint:errcheck

	scenarios := []Scenario{
		{Stream: "dual", Tenant: "acme", M: 2, N: 1, Steps: 4, ReconfigAfter: -1},
		{Stream: "dual", Tenant: "zephyr", M: 2, N: 1, Steps: 4, ReconfigAfter: -1},
	}
	errCh := make(chan error, 8)
	hashes := make([]string, len(scenarios))
	var wg sync.WaitGroup
	for i := range scenarios {
		sc := scenarios[i].withDefaults()
		w, err := core.NewWriterGroup(host.Net, dir, sc.Stream, sc.M,
			core.Options{Transport: tcpEverywhere, Tenant: sc.Tenant}, host.Mon)
		if err != nil {
			t.Fatalf("tenant %s writer group: %v", sc.Tenant, err)
		}
		hosted, err := host.HostWriterRank(w, sc.Key(), 1)
		if err != nil {
			t.Fatalf("tenant %s host rank: %v", sc.Tenant, err)
		}
		rg, err := core.NewReaderGroupOpts(host.Net, dir, sc.Stream, sc.N,
			core.ReaderOptions{Tenant: sc.Tenant}, nil)
		if err != nil {
			t.Fatalf("tenant %s reader group: %v", sc.Tenant, err)
		}

		i := i
		wg.Add(2)
		go func() { // both writer ranks: one local, one via the peer daemon
			defer wg.Done()
			var writers sync.WaitGroup
			writers.Add(2)
			go func() {
				defer writers.Done()
				if err := sc.RunWriter(0, w.Writer(0), nil); err != nil {
					errCh <- err
				}
			}()
			go func() {
				defer writers.Done()
				rw, err := DialWriterRank(peer.Net, sc.Key(), 1)
				if err != nil {
					errCh <- err
					return
				}
				err = sc.RunWriter(1, rw, nil)
				rw.Close() //nolint:errcheck
				if err != nil {
					errCh <- err
				}
			}()
			writers.Wait()
			<-hosted
			if err := w.Close(); err != nil {
				errCh <- err
			}
		}()
		go func() { // the tenant's reader, local to the host daemon
			defer wg.Done()
			h, err := sc.RunReader(0, NewLocalReader(rg, 0, nil))
			if err != nil {
				errCh <- err
				return
			}
			hashes[i] = h
			rg.Close() //nolint:errcheck // EOS already consumed
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range scenarios {
		want, err := scenarios[i].ExpectedHash(0)
		if err != nil {
			t.Fatalf("ExpectedHash: %v", err)
		}
		if hashes[i] != want {
			t.Fatalf("tenant %s digest = %s, want %s (tenant isolation broken)",
				scenarios[i].Tenant, hashes[i], want)
		}
	}
}

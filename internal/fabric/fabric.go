// Package fabric is the multi-tenant admission and placement service:
// the layer that turns FlexIO's per-run placement flexibility into a
// shared facility. Many tenants' coupled analytics pipelines are
// bin-packed onto one machine pool using internal/placement bindings and
// internal/graph communication costs; admissions beyond a tenant's quota
// are rejected, admissions beyond the pool's capacity are rejected or
// queued, and mid-run Resize calls close the elasticity loop by emitting
// the placement.Delta a core.ReaderGroup.Reconfigure consumes.
//
// The invariant the fabric maintains is single ownership: every core of
// the pool is held by at most one tenant at any instant, across
// concurrent Admit/Resize/Release from all tenants.
package fabric

import (
	"errors"
	"fmt"
	"sync"

	"flexio/internal/directory"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// Admission errors. ErrOverQuota is a policy rejection (waiting cannot
// help — the request itself exceeds the tenant's budget); ErrPoolFull is
// a capacity condition (a Block=true request waits it out instead).
var (
	ErrOverQuota = errors.New("fabric: tenant quota exceeded")
	ErrPoolFull  = errors.New("fabric: shared pool exhausted")
	ErrClosed    = errors.New("fabric: closed")
)

// Quota bounds one tenant's share of the pool. Zero fields are
// unlimited.
type Quota struct {
	// MaxCores caps the tenant's total held cores (sim threads +
	// analytics) across all of its grants.
	MaxCores int
	// MaxAna caps the tenant's total analytics ranks across grants —
	// the knob admission shares with core.TenantQuota.MaxRanks.
	MaxAna int
}

// Request asks the fabric to place one coupled pipeline.
type Request struct {
	Tenant     string
	NSim       int
	NAna       int
	SimThreads int // cores per sim process; <= 0 means 1
	// Comm optionally carries the pipeline's communication graph
	// (NSim+NAna vertices, placement.Spec layout). Nil builds a uniform
	// writer-to-reader graph.
	Comm *graph.Graph
	// Block queues the request behind ErrPoolFull until capacity frees
	// (Release/shrinking Resize) instead of failing. Quota rejections are
	// never queued.
	Block bool
}

func (r *Request) threads() int {
	if r.SimThreads < 1 {
		return 1
	}
	return r.SimThreads
}

func (r *Request) cores() int { return r.NSim*r.threads() + r.NAna }

// Grant is one admitted pipeline's standing allocation. The embedded
// Placement carries the core binding and yields the transport function /
// node ids the session layer consumes.
type Grant struct {
	Tenant    string
	Placement *placement.Placement

	f   *Fabric
	req Request
}

// NAna reports the grant's current analytics rank count (changes with
// Resize).
func (g *Grant) NAna() int { return len(g.Placement.AnaCore) }

// CommCost reports the modeled communication cost of the grant's current
// binding.
func (g *Grant) CommCost() float64 { return g.Placement.CommCost(false) }

// Fabric is the shared-pool admission service.
type Fabric struct {
	mu     sync.Mutex
	cond   *sync.Cond
	pool   *machine.Machine
	owner  []string // per-core owning tenant; "" = free
	quotas map[string]Quota
	grants []*Grant // standing allocations, for per-tenant accounting
	closed bool
}

// New creates a fabric over the machine pool.
func New(pool *machine.Machine) *Fabric {
	f := &Fabric{
		pool:   pool,
		owner:  make([]string, pool.TotalCores()),
		quotas: make(map[string]Quota),
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// SetQuota installs (or replaces) a tenant's quota. It applies to future
// admissions and resizes; standing grants are not revoked.
func (f *Fabric) SetQuota(tenant string, q Quota) {
	f.mu.Lock()
	f.quotas[tenant] = q
	f.mu.Unlock()
}

// FreeCores reports currently unowned cores.
func (f *Fabric) FreeCores() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.freeLocked()
}

// UsedCores reports the cores a tenant currently holds.
func (f *Fabric) UsedCores(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.usedLocked(tenant)
}

func (f *Fabric) freeLocked() int {
	n := 0
	for _, o := range f.owner {
		if o == "" {
			n++
		}
	}
	return n
}

func (f *Fabric) usedLocked(tenant string) int {
	n := 0
	for _, o := range f.owner {
		if o == tenant {
			n++
		}
	}
	return n
}

// checkQuotaLocked rejects an allocation that would push a tenant past
// its quota: addCores more owned cores, addAna more analytics ranks on
// top of heldAna standing ones. Caller holds f.mu.
func (f *Fabric) checkQuotaLocked(tenant string, addCores, addAna, heldAna int) error {
	q := f.quotas[tenant]
	if q.MaxCores > 0 && f.usedLocked(tenant)+addCores > q.MaxCores {
		return fmt.Errorf("%w: tenant %q would hold %d cores over MaxCores %d",
			ErrOverQuota, tenant, f.usedLocked(tenant)+addCores, q.MaxCores)
	}
	if q.MaxAna > 0 && heldAna+addAna > q.MaxAna {
		return fmt.Errorf("%w: tenant %q would run %d analytics ranks over MaxAna %d",
			ErrOverQuota, tenant, heldAna+addAna, q.MaxAna)
	}
	return nil
}

// Close fails all queued admissions.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Admit places one pipeline on the pool. Sim processes are packed
// first-fit onto whole runs of free cores; analytics ranks prefer free
// helper cores on the nodes hosting this pipeline's sim processes
// (minimizing modeled communication cost) and spill onto staging nodes
// otherwise. Over-quota requests fail with ErrOverQuota; over-capacity
// requests fail with ErrPoolFull or, with Block, wait for capacity.
func (f *Fabric) Admit(req Request) (*Grant, error) {
	if err := directory.ValidateTenant(req.Tenant); err != nil {
		return nil, err
	}
	if req.NSim <= 0 || req.NAna < 0 {
		return nil, fmt.Errorf("fabric: NSim=%d NAna=%d", req.NSim, req.NAna)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, ErrClosed
		}
		if err := f.checkQuotaLocked(req.Tenant, req.cores(), req.NAna, f.heldAnaLocked(req.Tenant)); err != nil {
			return nil, err
		}
		p, err := f.placeLocked(&req)
		if err == nil {
			f.claimLocked(req.Tenant, p)
			g := &Grant{Tenant: req.Tenant, Placement: p, f: f, req: req}
			f.grants = append(f.grants, g)
			return g, nil
		}
		if !errors.Is(err, ErrPoolFull) || !req.Block {
			return nil, err
		}
		f.cond.Wait()
	}
}

func (f *Fabric) heldAnaLocked(tenant string) int {
	n := 0
	for _, g := range f.grants {
		if g.Tenant == tenant {
			n += len(g.Placement.AnaCore)
		}
	}
	return n
}

// placeLocked computes a binding over the free cores without mutating
// the owner map. Caller holds f.mu.
func (f *Fabric) placeLocked(req *Request) (*placement.Placement, error) {
	threads := req.threads()
	simCore := make([]int, 0, req.NSim)
	taken := make(map[int]bool)
	free := func(c int) bool { return f.owner[c] == "" && !taken[c] }

	// Sim processes: first-fit runs of `threads` consecutive free cores
	// that do not straddle nodes.
	perNode := f.pool.Node.Cores
	for s := 0; s < req.NSim; s++ {
		found := -1
		for c := 0; c+threads <= len(f.owner); c++ {
			if c/perNode != (c+threads-1)/perNode {
				continue
			}
			ok := true
			for t := 0; t < threads; t++ {
				if !free(c + t) {
					ok = false
					break
				}
			}
			if ok {
				found = c
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: no room for sim process %d (%d threads)", ErrPoolFull, s, threads)
		}
		for t := 0; t < threads; t++ {
			taken[found+t] = true
		}
		simCore = append(simCore, found)
	}

	// Analytics: helper-core preference — a free core on the node of the
	// sim process this rank predominantly talks to (rank r ~ sim r mod
	// NSim under the uniform graph), else any free core.
	simNodes := make([]int, len(simCore))
	for i, c := range simCore {
		simNodes[i] = f.pool.NodeOfCore(c)
	}
	anaCore := make([]int, 0, req.NAna)
	pickOnNode := func(node int) int {
		for c := node * perNode; c < (node+1)*perNode && c < len(f.owner); c++ {
			if free(c) {
				return c
			}
		}
		return -1
	}
	for r := 0; r < req.NAna; r++ {
		c := pickOnNode(simNodes[r%len(simNodes)])
		if c < 0 {
			for cc := 0; cc < len(f.owner); cc++ {
				if free(cc) {
					c = cc
					break
				}
			}
		}
		if c < 0 {
			return nil, fmt.Errorf("%w: no room for analytics rank %d", ErrPoolFull, r)
		}
		taken[c] = true
		anaCore = append(anaCore, c)
	}

	spec := &placement.Spec{
		Machine:    f.pool,
		NSim:       req.NSim,
		NAna:       req.NAna,
		SimThreads: threads,
		Comm:       req.Comm,
	}
	if spec.Comm == nil || spec.Comm.N != req.NSim+req.NAna {
		spec.Comm = uniformComm(req.NSim, req.NAna)
	}
	p := &placement.Placement{Spec: spec, Policy: "fabric", SimCore: simCore, AnaCore: anaCore}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fabric: computed invalid placement: %w", err)
	}
	return p, nil
}

// claimLocked marks a placement's cores as owned. Caller holds f.mu.
func (f *Fabric) claimLocked(tenant string, p *placement.Placement) {
	threads := p.Spec.SimThreads
	if threads < 1 {
		threads = 1
	}
	for _, c := range p.SimCore {
		for t := 0; t < threads; t++ {
			f.owner[c+t] = tenant
		}
	}
	for _, c := range p.AnaCore {
		f.owner[c] = tenant
	}
}

// releaseCoresLocked frees a set of single cores. Caller holds f.mu.
func (f *Fabric) releaseCoresLocked(cores []int) {
	for _, c := range cores {
		f.owner[c] = ""
	}
}

// Release returns a grant's cores to the pool and wakes queued
// admissions. Idempotent.
func (f *Fabric) Release(g *Grant) {
	if g == nil || g.f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, og := range f.grants {
		if og == g {
			f.grants = append(f.grants[:i], f.grants[i+1:]...)
			threads := g.Placement.Spec.SimThreads
			if threads < 1 {
				threads = 1
			}
			for _, c := range g.Placement.SimCore {
				for t := 0; t < threads; t++ {
					f.owner[c+t] = ""
				}
			}
			f.releaseCoresLocked(g.Placement.AnaCore)
			f.cond.Broadcast()
			return
		}
	}
}

// Resize grows or shrinks a grant's analytics side to newNAna ranks,
// returning the placement.Delta that tells the session layer what to
// reconfigure (Delta.AnaNodes is exactly core.ReconfigSpec.Nodes). The
// simulation binding never moves. Growth allocates helper-preferred
// cores like Admit and can fail with ErrOverQuota or ErrPoolFull (never
// queued — the elasticity loop retries on the next signal); shrinking
// frees the highest ranks' cores and wakes queued admissions. The owner
// map is updated atomically under the fabric lock, so concurrent Resize
// calls from different tenants compose without double-allocating a core.
func (f *Fabric) Resize(g *Grant, newNAna int) (*placement.Delta, error) {
	if g == nil || g.f != f {
		return nil, fmt.Errorf("fabric: foreign grant")
	}
	if newNAna <= 0 {
		return nil, fmt.Errorf("fabric: resize to %d analytics ranks", newNAna)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	oldP := g.Placement
	oldN := len(oldP.AnaCore)
	if newNAna == oldN {
		return placement.Replace(oldP, oldP)
	}

	anaCore := make([]int, 0, newNAna)
	anaCore = append(anaCore, oldP.AnaCore...)
	if newNAna > oldN {
		add := newNAna - oldN
		if err := f.checkQuotaLocked(g.Tenant, add, add, f.heldAnaLocked(g.Tenant)); err != nil {
			return nil, err
		}
		perNode := f.pool.Node.Cores
		simNodes := make([]int, len(oldP.SimCore))
		for i, c := range oldP.SimCore {
			simNodes[i] = f.pool.NodeOfCore(c)
		}
		for r := oldN; r < newNAna; r++ {
			c := -1
			node := simNodes[r%len(simNodes)]
			for cc := node * perNode; cc < (node+1)*perNode && cc < len(f.owner); cc++ {
				if f.owner[cc] == "" {
					c = cc
					break
				}
			}
			if c < 0 {
				for cc := 0; cc < len(f.owner); cc++ {
					if f.owner[cc] == "" {
						c = cc
						break
					}
				}
			}
			if c < 0 {
				return nil, fmt.Errorf("%w: no room to grow tenant %q to %d analytics ranks", ErrPoolFull, g.Tenant, newNAna)
			}
			f.owner[c] = g.Tenant
			anaCore = append(anaCore, c)
		}
	} else {
		f.releaseCoresLocked(anaCore[newNAna:])
		anaCore = anaCore[:newNAna]
		f.cond.Broadcast()
	}

	spec := &placement.Spec{
		Machine:    f.pool,
		NSim:       oldP.Spec.NSim,
		NAna:       newNAna,
		SimThreads: oldP.Spec.SimThreads,
		Comm:       uniformComm(oldP.Spec.NSim, newNAna),
	}
	newP := &placement.Placement{Spec: spec, Policy: "fabric", SimCore: oldP.SimCore, AnaCore: anaCore}
	delta, err := placement.Replace(oldP, newP)
	if err != nil {
		// Roll the owner map back; the grant is unchanged.
		if newNAna > oldN {
			f.releaseCoresLocked(anaCore[oldN:])
		} else {
			for _, c := range oldP.AnaCore[newNAna:] {
				f.owner[c] = g.Tenant
			}
		}
		return nil, err
	}
	g.Placement = newP
	return delta, nil
}

// uniformComm builds the default communication graph: every writer
// talks to every reader with unit weight (the all-to-all worst case the
// redistribution mapping starts from).
func uniformComm(nSim, nAna int) *graph.Graph {
	gr := graph.New(nSim + nAna)
	for w := 0; w < nSim; w++ {
		for r := 0; r < nAna; r++ {
			gr.AddEdge(w, nSim+r, 1)
		}
	}
	return gr
}

package fabric

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"flexio/internal/machine"
)

// checkOwnership asserts the single-ownership invariant: every core of
// every grant's placement is owned by that grant's tenant, and no core
// is claimed by two grants.
func checkOwnership(t *testing.T, f *Fabric, grants []*Grant) {
	t.Helper()
	seen := make(map[int]string)
	for _, g := range grants {
		threads := g.Placement.Spec.SimThreads
		if threads < 1 {
			threads = 1
		}
		var cores []int
		for _, c := range g.Placement.SimCore {
			for k := 0; k < threads; k++ {
				cores = append(cores, c+k)
			}
		}
		cores = append(cores, g.Placement.AnaCore...)
		for _, c := range cores {
			if prev, dup := seen[c]; dup {
				t.Fatalf("core %d double-allocated: %s and %s", c, prev, g.Tenant)
			}
			seen[c] = g.Tenant
			if f.owner[c] != g.Tenant {
				t.Fatalf("core %d owned by %q, grant says %q", c, f.owner[c], g.Tenant)
			}
		}
	}
}

func TestAdmitHelperCorePreference(t *testing.T) {
	f := New(machine.Titan(4)) // 4 nodes x 16 cores
	g, err := f.Admit(Request{Tenant: "a", NSim: 4, NAna: 4, SimThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// All sim processes fit node 0 (8 cores), so every analytics rank
	// should land beside them — a helper-core placement.
	m := f.pool
	for r, c := range g.Placement.AnaCore {
		if m.NodeOfCore(c) != m.NodeOfCore(g.Placement.SimCore[r%4]) {
			t.Errorf("ana rank %d on node %d, sim partner on node %d (not helper-core)",
				r, m.NodeOfCore(c), m.NodeOfCore(g.Placement.SimCore[r%4]))
		}
	}
	if got := f.UsedCores("a"); got != 12 {
		t.Fatalf("UsedCores = %d, want 12", got)
	}
	f.Release(g)
	if got := f.FreeCores(); got != m.TotalCores() {
		t.Fatalf("FreeCores after release = %d, want %d", got, m.TotalCores())
	}
}

func TestQuotaRejectedCapacityQueued(t *testing.T) {
	f := New(machine.Titan(1)) // 16 cores
	f.SetQuota("small", Quota{MaxCores: 4})
	if _, err := f.Admit(Request{Tenant: "small", NSim: 2, NAna: 4}); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota admit: %v, want ErrOverQuota", err)
	}
	// Fill the pool with another tenant.
	big, err := f.Admit(Request{Tenant: "big", NSim: 4, NAna: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit(Request{Tenant: "small", NSim: 1, NAna: 1}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("over-capacity admit: %v, want ErrPoolFull", err)
	}
	// A blocking admit queues until the big tenant releases.
	admitted := make(chan *Grant, 1)
	go func() {
		g, err := f.Admit(Request{Tenant: "small", NSim: 1, NAna: 1, Block: true})
		if err != nil {
			t.Errorf("queued admit: %v", err)
		}
		admitted <- g
	}()
	select {
	case <-admitted:
		t.Fatal("queued admit succeeded while the pool was full")
	case <-time.After(50 * time.Millisecond):
	}
	f.Release(big)
	select {
	case g := <-admitted:
		if g != nil {
			checkOwnership(t, f, []*Grant{g})
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued admit never woke after capacity freed")
	}
}

func TestResizeGrowShrink(t *testing.T) {
	f := New(machine.Titan(2))
	g, err := f.Admit(Request{Tenant: "t", NSim: 2, NAna: 2})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := f.Resize(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if delta.AddedAna != 3 || len(delta.AnaNodes) != 5 {
		t.Fatalf("grow delta: AddedAna=%d AnaNodes=%d", delta.AddedAna, len(delta.AnaNodes))
	}
	if g.NAna() != 5 || f.UsedCores("t") != 7 {
		t.Fatalf("after grow: NAna=%d used=%d", g.NAna(), f.UsedCores("t"))
	}
	delta, err = f.Resize(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if delta.RemovedAna != 4 || len(delta.AnaNodes) != 1 {
		t.Fatalf("shrink delta: RemovedAna=%d AnaNodes=%d", delta.RemovedAna, len(delta.AnaNodes))
	}
	if f.UsedCores("t") != 3 {
		t.Fatalf("after shrink: used=%d, want 3", f.UsedCores("t"))
	}
	checkOwnership(t, f, []*Grant{g})

	f.SetQuota("t", Quota{MaxAna: 2})
	if _, err := f.Resize(g, 8); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota resize: %v, want ErrOverQuota", err)
	}
}

// Two tenants resize concurrently against the same pool snapshot — the
// placement.Replace deltas must compose without double-allocating a
// helper core, across many interleavings.
func TestConcurrentResizeNoDoubleAllocation(t *testing.T) {
	f := New(machine.Titan(4))
	ga, err := f.Admit(Request{Tenant: "a", NSim: 2, NAna: 2})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := f.Admit(Request{Tenant: "b", NSim: 2, NAna: 2})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{6, 2, 9, 1, 4, 8, 3, 5}
	var wg sync.WaitGroup
	for _, g := range []*Grant{ga, gb} {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range sizes {
				delta, err := f.Resize(g, n)
				if err != nil {
					t.Errorf("tenant %s resize to %d: %v", g.Tenant, n, err)
					return
				}
				if len(delta.AnaNodes) != n {
					t.Errorf("tenant %s: delta has %d nodes, want %d", g.Tenant, len(delta.AnaNodes), n)
					return
				}
			}
		}()
	}
	wg.Wait()
	checkOwnership(t, f, []*Grant{ga, gb})
	// Both ended at 5 analytics ranks + 2 sim cores each.
	if f.UsedCores("a") != 7 || f.UsedCores("b") != 7 {
		t.Fatalf("final usage a=%d b=%d, want 7/7", f.UsedCores("a"), f.UsedCores("b"))
	}
}

// Many tenants admitted concurrently never overlap and fully release.
func TestConcurrentAdmitRelease(t *testing.T) {
	f := New(machine.Titan(8)) // 128 cores
	const tenants = 16
	grants := make([]*Grant, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := f.Admit(Request{Tenant: fmt.Sprintf("t%02d", i), NSim: 2, NAna: 2, Block: true})
			if err != nil {
				t.Errorf("tenant %d: %v", i, err)
				return
			}
			grants[i] = g
		}()
	}
	wg.Wait()
	live := grants[:0:0]
	for _, g := range grants {
		if g != nil {
			live = append(live, g)
		}
	}
	checkOwnership(t, f, live)
	for _, g := range live {
		f.Release(g)
	}
	if got := f.FreeCores(); got != f.pool.TotalCores() {
		t.Fatalf("FreeCores = %d after all releases, want %d", got, f.pool.TotalCores())
	}
}

func TestCloseWakesQueuedAdmits(t *testing.T) {
	f := New(machine.Titan(1))
	g, err := f.Admit(Request{Tenant: "a", NSim: 4, NAna: 12})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Admit(Request{Tenant: "b", NSim: 1, NAna: 0, Block: true})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("queued admit after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the queued admit")
	}
	f.Release(g)
}

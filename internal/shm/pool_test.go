package shm

import (
	"testing"
	"testing/quick"
)

func TestSizeClass(t *testing.T) {
	cases := map[int]int{0: 256, 1: 256, 256: 256, 257: 512, 1000: 1024, 4096: 4096}
	for n, want := range cases {
		if got := sizeClass(n); got != want {
			t.Errorf("sizeClass(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewBufferPool(0)
	b1, err := p.Get(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 1000 || cap(b1) != 1024 {
		t.Fatalf("len/cap = %d/%d", len(b1), cap(b1))
	}
	p.Put(b1)
	b2, _ := p.Get(900) // same class: must reuse
	if &b1[0] != &b2[0] {
		t.Fatal("expected buffer reuse within size class")
	}
	st := p.Stats()
	if st.Allocs != 1 || st.Reuses != 1 || st.Returns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDistinctClasses(t *testing.T) {
	p := NewBufferPool(0)
	small, _ := p.Get(100)
	p.Put(small)
	big, _ := p.Get(100000)
	if cap(big) == cap(small) {
		t.Fatal("different classes must not collide")
	}
	if p.Stats().Allocs != 2 {
		t.Fatalf("Allocs = %d, want 2", p.Stats().Allocs)
	}
}

func TestPoolNegativeSize(t *testing.T) {
	p := NewBufferPool(0)
	if _, err := p.Get(-1); err == nil {
		t.Fatal("negative size must error")
	}
}

func TestPoolThresholdReclaims(t *testing.T) {
	p := NewBufferPool(2048) // room for two 1KiB buffers on the free list
	bufs := make([][]byte, 3)
	for i := range bufs {
		bufs[i], _ = p.Get(1024)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	st := p.Stats()
	if st.Reclaims != 1 {
		t.Fatalf("Reclaims = %d, want 1", st.Reclaims)
	}
	if st.BytesFree != 2048 {
		t.Fatalf("BytesFree = %d, want 2048", st.BytesFree)
	}
}

func TestPoolExplicitReclaim(t *testing.T) {
	p := NewBufferPool(0)
	b, _ := p.Get(512)
	p.Put(b)
	if released := p.Reclaim(); released != 512 {
		t.Fatalf("Reclaim released %d, want 512", released)
	}
	if p.Stats().BytesFree != 0 {
		t.Fatal("free bytes must be zero after Reclaim")
	}
	// Next Get must allocate fresh.
	p.Get(512)
	if p.Stats().Allocs != 2 {
		t.Fatalf("Allocs = %d, want 2", p.Stats().Allocs)
	}
}

func TestPoolAccountingProperty(t *testing.T) {
	// BytesInUse + BytesFree is consistent under any Get/Put sequence.
	f := func(ops []uint16) bool {
		p := NewBufferPool(0)
		var held [][]byte
		for _, op := range ops {
			if op%2 == 0 || len(held) == 0 {
				b, err := p.Get(int(op%8192) + 1)
				if err != nil {
					return false
				}
				held = append(held, b)
			} else {
				p.Put(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		st := p.Stats()
		var inUse int64
		for _, b := range held {
			inUse += int64(cap(b))
		}
		return st.BytesInUse == inUse && st.BytesFree >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

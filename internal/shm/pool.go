package shm

import (
	"fmt"
	"sort"
	"sync"
)

// PoolStats reports buffer pool behaviour for the performance monitor.
type PoolStats struct {
	Allocs     int64 // buffers newly allocated
	Reuses     int64 // buffers served from the free list
	Returns    int64 // buffers given back
	Reclaims   int64 // buffers dropped to enforce MaxBytes
	BytesInUse int64 // bytes currently lent out
	BytesFree  int64 // bytes parked on the free list
	HighWater  int64 // peak BytesInUse since the pool was created
}

// BufferPool is the producer-owned shared-memory buffer pool used for
// large messages (Section II.D): the producer acquires a buffer of the
// closest size from a free list (allocating on miss), fills it, and passes
// a control message; the consumer copies out and returns the buffer to the
// free list. MaxBytes bounds total pool memory — exceeding it triggers
// reclamation of free buffers, mirroring the paper's "configurable
// threshold value controls total memory usage".
type BufferPool struct {
	mu       sync.Mutex
	free     map[int][][]byte // size class -> stack of free buffers
	classes  []int            // sorted size classes present in free
	maxBytes int64
	stats    PoolStats
}

// NewBufferPool creates a pool bounded to maxBytes of total retained
// memory (0 means unbounded).
func NewBufferPool(maxBytes int64) *BufferPool {
	return &BufferPool{free: make(map[int][][]byte), maxBytes: maxBytes}
}

// sizeClass rounds n up to the next power of two (min 256 bytes) so that
// "a buffer of the closest size" can be found without an exact-match scan.
func sizeClass(n int) int {
	c := 256
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns a buffer with length n (capacity is the size class). It
// reuses a free buffer when one of the right class exists.
func (p *BufferPool) Get(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("shm: negative buffer size %d", n)
	}
	class := sizeClass(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	if stack := p.free[class]; len(stack) > 0 {
		buf := stack[len(stack)-1]
		p.free[class] = stack[:len(stack)-1]
		p.stats.Reuses++
		p.stats.BytesFree -= int64(class)
		p.stats.BytesInUse += int64(class)
		if p.stats.BytesInUse > p.stats.HighWater {
			p.stats.HighWater = p.stats.BytesInUse
		}
		return buf[:n], nil
	}
	p.stats.Allocs++
	p.stats.BytesInUse += int64(class)
	if p.stats.BytesInUse > p.stats.HighWater {
		p.stats.HighWater = p.stats.BytesInUse
	}
	return make([]byte, n, class), nil
}

// Put returns a buffer to the free list. The buffer must have come from
// Get (its capacity must be a size class). If retaining it would exceed
// MaxBytes, it is dropped for the garbage collector instead (reclaim).
func (p *BufferPool) Put(buf []byte) {
	class := cap(buf)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Returns++
	p.stats.BytesInUse -= int64(class)
	if p.maxBytes > 0 && p.stats.BytesFree+int64(class) > p.maxBytes {
		p.stats.Reclaims++
		return
	}
	if _, ok := p.free[class]; !ok {
		p.classes = append(p.classes, class)
		sort.Ints(p.classes)
	}
	p.free[class] = append(p.free[class], buf[:class])
	p.stats.BytesFree += int64(class)
}

// Stats returns a snapshot of pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reclaim drops all free buffers, returning the number of bytes released.
func (p *BufferPool) Reclaim() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	released := p.stats.BytesFree
	for c := range p.free {
		p.stats.Reclaims += int64(len(p.free[c]))
		delete(p.free, c)
	}
	p.classes = p.classes[:0]
	p.stats.BytesFree = 0
	return released
}

package shm

import (
	"testing"
	"time"

	"flexio/internal/flight"
	"flexio/internal/monitor"
)

func TestChannelReportTo(t *testing.T) {
	c, err := NewChannel(8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Send(make([]byte, 16)) { // inline
		t.Fatal("inline send failed")
	}
	if !c.Send(make([]byte, 4096)) { // pooled
		t.Fatal("pooled send failed")
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Recv(nil); !ok {
			t.Fatal("recv failed")
		}
	}

	m := monitor.New("transport")
	c.ReportTo(m, "shm.")
	rep := m.Snapshot()
	if rep.Gauges["shm.msgs"] != 2 || rep.Gauges["shm.bytes"] != 16+4096 {
		t.Fatalf("gauges: %+v", rep.Gauges)
	}
	if rep.Gauges["shm.inline"] != 1 || rep.Gauges["shm.pooled"] != 1 {
		t.Fatalf("mechanism gauges: %+v", rep.Gauges)
	}
	// Republishing after more traffic only moves gauges forward (merge
	// keeps the max), and a nil monitor is a no-op.
	c.Send(make([]byte, 8))
	c.ReportTo(m, "shm.")
	if got := m.Snapshot().Gauges["shm.msgs"]; got != 3 {
		t.Fatalf("republished msgs gauge = %d, want 3", got)
	}
	c.ReportTo(nil, "shm.")
}

// TestChannelPoolGauges: occupancy tracks outstanding pooled payloads,
// the high-water mark keeps the peak, and draining the channel returns
// occupancy to zero while the peak survives.
func TestChannelPoolGauges(t *testing.T) {
	c, err := NewChannel(8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if !c.Send(make([]byte, 4096)) {
			t.Fatal("pooled send failed")
		}
	}
	m := monitor.New("transport")
	c.ReportTo(m, "shm.")
	rep := m.Snapshot()
	if rep.Gauges["shm.pool.inuse"] <= 0 {
		t.Fatalf("in-flight pooled payloads must occupy the pool: %+v", rep.Gauges)
	}
	if rep.Gauges["shm.pool.highwater"] < rep.Gauges["shm.pool.inuse"] {
		t.Fatalf("highwater %d < inuse %d", rep.Gauges["shm.pool.highwater"], rep.Gauges["shm.pool.inuse"])
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Recv(nil); !ok {
			t.Fatal("recv failed")
		}
	}
	st := c.pool.Stats()
	if st.BytesInUse != 0 {
		t.Fatalf("drained channel still holds %d pool bytes", st.BytesInUse)
	}
	if st.HighWater <= 0 {
		t.Fatal("high-water mark lost on drain")
	}
}

// TestQueueWaitCounts: one count per blocking episode — a producer
// finding the ring full, a consumer finding it empty — not per spin.
func TestQueueWaitCounts(t *testing.T) {
	q, err := NewQueue(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if enq, deq := q.WaitCounts(); enq != 0 || deq != 0 {
		t.Fatalf("fresh queue waits = %d/%d", enq, deq)
	}

	// Fill the ring, then block the producer until the consumer drains.
	for q.TryEnqueue([]byte("x")) {
	}
	done := make(chan struct{})
	go func() {
		q.Enqueue([]byte("y"))
		close(done)
	}()
	time.Sleep(2 * time.Millisecond) // let the producer park on the full ring
	buf := make([]byte, 32)
	for {
		if _, ok := q.TryDequeue(buf); !ok {
			break
		}
	}
	<-done
	if enq, _ := q.WaitCounts(); enq != 1 {
		t.Fatalf("enqueue waits = %d, want 1 blocking episode", enq)
	}
	for { // the unblocked producer landed its message; empty the ring
		if _, ok := q.TryDequeue(buf); !ok {
			break
		}
	}

	// Block the consumer on the now-empty ring.
	got := make(chan struct{})
	go func() {
		q.Dequeue(buf)
		close(got)
	}()
	time.Sleep(2 * time.Millisecond)
	if !q.Enqueue([]byte("z")) {
		t.Fatal("enqueue failed")
	}
	<-got
	if _, deq := q.WaitCounts(); deq != 1 {
		t.Fatalf("dequeue waits = %d, want 1 blocking episode", deq)
	}
	q.Close()
}

// TestChannelJournalsQueueEvents: an attached recorder sees each send
// path as an enqueue event and each delivery as a dequeue, tagged as
// transport-level (Step -1) with the payload size.
func TestChannelJournalsQueueEvents(t *testing.T) {
	c, err := NewChannel(8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	j := flight.NewJournal(0)
	c.SetJournal(j)
	if !c.Send(make([]byte, 16)) { // inline
		t.Fatal("inline send failed")
	}
	if !c.Send(make([]byte, 4096)) { // pooled
		t.Fatal("pooled send failed")
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Recv(nil); !ok {
			t.Fatal("recv failed")
		}
	}
	points := map[string]int{}
	for _, ev := range j.Snapshot() {
		if ev.Step != -1 || ev.Channel != "shm" {
			t.Fatalf("queue event must be transport-level: %+v", ev)
		}
		points[ev.Point]++
	}
	if points["shm.send.inline"] != 1 || points["shm.send.pooled"] != 1 || points["shm.recv"] != 2 {
		t.Fatalf("journaled points: %v", points)
	}
	// Detach: no further events recorded.
	c.SetJournal(nil)
	seen := j.Seen()
	c.Send(make([]byte, 16))
	c.Recv(nil)
	if j.Seen() != seen {
		t.Fatal("detached channel still journals")
	}
}

package shm

import (
	"testing"

	"flexio/internal/monitor"
)

func TestChannelReportTo(t *testing.T) {
	c, err := NewChannel(8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Send(make([]byte, 16)) { // inline
		t.Fatal("inline send failed")
	}
	if !c.Send(make([]byte, 4096)) { // pooled
		t.Fatal("pooled send failed")
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Recv(nil); !ok {
			t.Fatal("recv failed")
		}
	}

	m := monitor.New("transport")
	c.ReportTo(m, "shm.")
	rep := m.Snapshot()
	if rep.Gauges["shm.msgs"] != 2 || rep.Gauges["shm.bytes"] != 16+4096 {
		t.Fatalf("gauges: %+v", rep.Gauges)
	}
	if rep.Gauges["shm.inline"] != 1 || rep.Gauges["shm.pooled"] != 1 {
		t.Fatalf("mechanism gauges: %+v", rep.Gauges)
	}
	// Republishing after more traffic only moves gauges forward (merge
	// keeps the max), and a nil monitor is a no-op.
	c.Send(make([]byte, 8))
	c.ReportTo(m, "shm.")
	if got := m.Snapshot().Gauges["shm.msgs"]; got != 3 {
		t.Fatalf("republished msgs gauge = %d, want 3", got)
	}
	c.ReportTo(nil, "shm.")
}

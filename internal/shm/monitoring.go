package shm

import (
	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// SetJournal attaches a flight recorder to the channel: every successful
// send is journaled as an enqueue event ("shm.send.inline" / ".pooled" /
// ".zerocopy" / ".handle") and every delivery as a dequeue ("shm.recv",
// or "shm.recv.handle" for by-reference deliveries), stamped on
// the journal's clock. These are transport-level events (Step -1): they
// feed trace export and queue-behaviour inspection, while step
// attribution happens at the core layer. A nil journal detaches.
func (c *Channel) SetJournal(j *flight.Journal) {
	c.journal.Store(j)
}

// recordQueueEvent journals one queue crossing; a nop when detached.
func (c *Channel) recordQueueEvent(kind flight.Kind, point string, n int) {
	j := c.journal.Load()
	if j == nil {
		return
	}
	j.Record(flight.Event{
		Kind: kind, Point: point, Channel: "shm",
		T: j.Now(), Step: -1, Bytes: int64(n),
	})
}

// ReportTo publishes the channel's cumulative counters into a monitor as
// gauges under the given prefix (e.g. "shm.ch0."): message/byte totals
// per send path, the buffer pool's occupancy, free bytes and high-water
// mark, and how often either side of the control ring had to wait
// (producer found it full / consumer found it empty — the backpressure
// signals that motivate placement moves). Gauges merge with
// max-semantics across reports, so republishing a growing counter is
// idempotent — call it from a metrics poll loop as often as needed.
func (c *Channel) ReportTo(m *monitor.Monitor, prefix string) {
	if m == nil {
		return
	}
	st := c.Stats()
	m.Set(prefix+"msgs", st.MessagesSent)
	m.Set(prefix+"bytes", st.BytesSent)
	m.Set(prefix+"inline", st.InlineSends)
	m.Set(prefix+"pooled", st.PooledSends)
	m.Set(prefix+"zerocopy", st.ZeroCopySends)
	m.Set(prefix+"handle", st.HandleSends)
	m.Set(prefix+"copied_bytes", st.CopiedBytes)

	ps := c.pool.Stats()
	m.Set(prefix+"pool.inuse", ps.BytesInUse)
	m.Set(prefix+"pool.free", ps.BytesFree)
	m.Set(prefix+"pool.highwater", ps.HighWater)
	m.Set(prefix+"pool.reclaims", ps.Reclaims)

	enq, deq := c.q.WaitCounts()
	m.Set(prefix+"q.enq_waits", enq)
	m.Set(prefix+"q.deq_waits", deq)
	m.Set(prefix+"q.cap", int64(c.q.Capacity()))
}

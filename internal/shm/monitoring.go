package shm

import "flexio/internal/monitor"

// ReportTo publishes the channel's cumulative counters into a monitor as
// gauges under the given prefix (e.g. "shm.ch0."). Gauges merge with
// max-semantics across reports, so republishing a growing counter is
// idempotent — call it from a metrics poll loop as often as needed.
func (c *Channel) ReportTo(m *monitor.Monitor, prefix string) {
	if m == nil {
		return
	}
	st := c.Stats()
	m.Set(prefix+"msgs", st.MessagesSent)
	m.Set(prefix+"bytes", st.BytesSent)
	m.Set(prefix+"inline", st.InlineSends)
	m.Set(prefix+"pooled", st.PooledSends)
	m.Set(prefix+"zerocopy", st.ZeroCopySends)
}

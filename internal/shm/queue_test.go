package shm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func TestQueueBasics(t *testing.T) {
	q, err := NewQueue(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != 4 || q.PayloadSize() != 32 {
		t.Fatalf("capacity/payload = %d/%d", q.Capacity(), q.PayloadSize())
	}
	if !q.TryEnqueue([]byte("hello")) {
		t.Fatal("enqueue into empty queue failed")
	}
	buf := make([]byte, 32)
	n, ok := q.TryDequeue(buf)
	if !ok || string(buf[:n]) != "hello" {
		t.Fatalf("dequeue = %q, %v", buf[:n], ok)
	}
	if _, ok := q.TryDequeue(buf); ok {
		t.Fatal("dequeue from empty queue should fail")
	}
}

func TestQueueRoundsUpCapacity(t *testing.T) {
	q, _ := NewQueue(5, 8)
	if q.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8 (next pow2)", q.Capacity())
	}
	q, _ = NewQueue(0, 8)
	if q.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2 (minimum)", q.Capacity())
	}
}

func TestQueueInvalidPayload(t *testing.T) {
	if _, err := NewQueue(4, 0); err == nil {
		t.Fatal("zero payload size must error")
	}
}

func TestQueueFull(t *testing.T) {
	q, _ := NewQueue(4, 8)
	for i := 0; i < 4; i++ {
		if !q.TryEnqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.TryEnqueue([]byte{9}) {
		t.Fatal("enqueue into full queue must fail")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	buf := make([]byte, 8)
	n, ok := q.TryDequeue(buf)
	if !ok || n != 1 || buf[0] != 0 {
		t.Fatal("FIFO violated")
	}
	if !q.TryEnqueue([]byte{9}) {
		t.Fatal("enqueue after drain must succeed (circularity)")
	}
}

func TestQueueOversizedMessageRejected(t *testing.T) {
	q, _ := NewQueue(4, 8)
	if q.TryEnqueue(make([]byte, 9)) {
		t.Fatal("oversized message must be rejected")
	}
}

func TestQueueWraparound(t *testing.T) {
	q, _ := NewQueue(4, 16)
	buf := make([]byte, 16)
	for i := 0; i < 100; i++ {
		msg := []byte(fmt.Sprintf("m%02d", i))
		if !q.TryEnqueue(msg) {
			t.Fatalf("enqueue %d failed", i)
		}
		n, ok := q.TryDequeue(buf)
		if !ok || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("iter %d: got %q want %q", i, buf[:n], msg)
		}
	}
}

func TestQueueCloseUnblocksConsumer(t *testing.T) {
	q, _ := NewQueue(4, 8)
	done := make(chan bool)
	go func() {
		buf := make([]byte, 8)
		_, ok := q.Dequeue(buf)
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Dequeue on closed empty queue should report !ok")
	}
}

func TestQueueCloseDrainsPending(t *testing.T) {
	q, _ := NewQueue(4, 8)
	q.TryEnqueue([]byte("x"))
	q.Close()
	buf := make([]byte, 8)
	if n, ok := q.Dequeue(buf); !ok || n != 1 {
		t.Fatal("pending entry must remain dequeueable after Close")
	}
	if _, ok := q.Dequeue(buf); ok {
		t.Fatal("drained closed queue must report !ok")
	}
}

func TestQueueCloseUnblocksProducer(t *testing.T) {
	q, _ := NewQueue(2, 8)
	q.TryEnqueue([]byte("a"))
	q.TryEnqueue([]byte("b"))
	done := make(chan bool)
	go func() { done <- q.Enqueue([]byte("c")) }()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Enqueue on closed full queue should report false")
	}
}

// TestQueueSPSCStress moves a long sequence across goroutines and checks
// ordering and integrity — the core lock-free correctness test.
func TestQueueSPSCStress(t *testing.T) {
	const total = 200000
	q, _ := NewQueue(64, 16)
	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, 1)
	go func() { // producer
		defer wg.Done()
		msg := make([]byte, 8)
		for i := 0; i < total; i++ {
			binary.LittleEndian.PutUint64(msg, uint64(i))
			if !q.Enqueue(msg) {
				select {
				case errCh <- fmt.Errorf("enqueue %d failed", i):
				default:
				}
				return
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		buf := make([]byte, 16)
		for i := 0; i < total; i++ {
			n, ok := q.Dequeue(buf)
			if !ok || n != 8 {
				select {
				case errCh <- fmt.Errorf("dequeue %d: n=%d ok=%v", i, n, ok):
				default:
				}
				return
			}
			if got := binary.LittleEndian.Uint64(buf); got != uint64(i) {
				select {
				case errCh <- fmt.Errorf("order violated at %d: got %d", i, got):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestQueueVariableSizeMessages(t *testing.T) {
	q, _ := NewQueue(8, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	const rounds = 5000
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 1+i%64)
			q.Enqueue(msg)
		}
	}()
	buf := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		n, ok := q.Dequeue(buf)
		if !ok {
			t.Fatalf("dequeue %d failed", i)
		}
		want := 1 + i%64
		if n != want {
			t.Fatalf("msg %d: len %d, want %d", i, n, want)
		}
		for _, b := range buf[:n] {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted", i)
			}
		}
	}
	wg.Wait()
}

package shm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestChannelInlineRoundTrip(t *testing.T) {
	c, err := NewChannel(8, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("small message")
	go c.Send(msg)
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("Recv = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.InlineSends != 1 || st.PooledSends != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChannelPooledRoundTrip(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := bytes.Repeat([]byte("x"), 10000)
	go c.Send(msg)
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("pooled Recv failed: ok=%v len=%d", ok, len(got))
	}
	if c.Stats().PooledSends != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// The pool buffer must have been returned.
	if ps := c.Pool().Stats(); ps.Returns != 1 {
		t.Fatalf("pool stats = %+v, want 1 return", ps)
	}
}

func TestChannelZeroCopyRoundTrip(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := bytes.Repeat([]byte("z"), 5000)
	done := make(chan bool)
	go func() { done <- c.SendZeroCopy(msg) }()
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatal("zero-copy Recv failed")
	}
	if !<-done {
		t.Fatal("SendZeroCopy should report true")
	}
	st := c.Stats()
	if st.ZeroCopySends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Zero-copy must not touch the pool.
	if ps := c.Pool().Stats(); ps.Allocs != 0 {
		t.Fatalf("zero-copy should not allocate pool buffers: %+v", ps)
	}
}

func TestChannelZeroCopyBlocksUntilConsumed(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := make([]byte, 1000)
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(started)
		c.SendZeroCopy(msg)
		close(finished)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("SendZeroCopy returned before consumer copied")
	default:
	}
	c.Recv(nil)
	<-finished // must complete now
}

func TestChannelRecvReusesDst(t *testing.T) {
	c, _ := NewChannel(8, 128, 0)
	defer c.Close()
	go c.Send([]byte("abc"))
	scratch := make([]byte, 0, 64)
	got, ok := c.Recv(scratch)
	if !ok {
		t.Fatal("recv failed")
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("Recv should reuse dst storage when large enough")
	}
}

func TestChannelCloseUnblocksAll(t *testing.T) {
	c, _ := NewChannel(2, 64, 0)
	recvDone := make(chan bool)
	go func() {
		_, ok := c.Recv(nil)
		recvDone <- ok
	}()
	zcDone := make(chan bool)
	// Fill the queue so the zero-copy control message blocks, then close.
	c.Send([]byte("a"))
	c.Send([]byte("b"))
	go func() { zcDone <- c.SendZeroCopy(make([]byte, 1000)) }()
	c.Close()
	// Receiver may get a pending message or a closed signal; either way
	// it must return.
	<-recvDone
	<-zcDone
}

func TestChannelMixedTrafficOrdered(t *testing.T) {
	c, _ := NewChannel(16, 64, 1<<20)
	defer c.Close()
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var msg []byte
			if i%3 == 0 {
				msg = bytes.Repeat([]byte{byte(i)}, 2000) // pooled
			} else {
				msg = bytes.Repeat([]byte{byte(i)}, 1+i%60) // inline
			}
			if !c.Send(msg) {
				t.Errorf("send %d failed", i)
				return
			}
		}
	}()
	var buf []byte
	for i := 0; i < rounds; i++ {
		var ok bool
		buf, ok = c.Recv(buf)
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		wantLen := 1 + i%60
		if i%3 == 0 {
			wantLen = 2000
		}
		if len(buf) != wantLen {
			t.Fatalf("msg %d: len %d, want %d (ordering broken)", i, len(buf), wantLen)
		}
		for _, b := range buf {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted", i)
			}
		}
	}
	wg.Wait()
	ps := c.Pool().Stats()
	if ps.Reuses == 0 {
		t.Error("pool should reuse buffers across pooled sends")
	}
}

func TestChannelHandleRoundTrip(t *testing.T) {
	c, _ := NewChannel(8, 128, 0)
	defer c.Close()
	hdr := []byte("header")
	payload := bytes.Repeat([]byte("p"), 8000)
	released := make(chan struct{})
	go func() {
		if err := c.SendHandle(hdr, payload, func() { close(released) }); err != nil {
			t.Errorf("SendHandle: %v", err)
		}
	}()
	got, ok := c.RecvMsg(nil)
	if !ok || !bytes.Equal(got.Msg, hdr) {
		t.Fatalf("RecvMsg msg = %q, %v", got.Msg, ok)
	}
	if &got.Payload[0] != &payload[0] {
		t.Fatal("handle payload should alias the producer's buffer")
	}
	select {
	case <-released:
		t.Fatal("released before consumer called Release")
	default:
	}
	got.Release()
	<-released
	got.Release() // idempotent
	st := c.Stats()
	if st.HandleSends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Only the header crossed by copy: once at send, once at receive.
	if want := int64(2 * len(hdr)); st.CopiedBytes != want {
		t.Fatalf("CopiedBytes = %d, want %d (payload must not be copied)", st.CopiedBytes, want)
	}
}

func TestChannelHandleCopyingRecvCompat(t *testing.T) {
	c, _ := NewChannel(8, 128, 0)
	defer c.Close()
	hdr := []byte("meta")
	payload := bytes.Repeat([]byte("q"), 3000)
	released := make(chan struct{})
	go c.SendHandle(hdr, payload, func() { close(released) })
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, append(append([]byte(nil), hdr...), payload...)) {
		t.Fatalf("copying Recv of handle message = %d bytes, ok=%v", len(got), ok)
	}
	<-released // plain Recv releases immediately after flattening
}

func TestChannelHandleHeaderTooLarge(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	err := c.SendHandle(make([]byte, 65), nil, func() { t.Fatal("onRelease must not run on error") })
	if err != ErrHandleTooLarge {
		t.Fatalf("err = %v, want ErrHandleTooLarge", err)
	}
}

func TestChannelCloseReleasesHandles(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	released := make(chan struct{})
	if err := c.SendHandle([]byte("h"), make([]byte, 100), func() { close(released) }); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-released // Close must hand the buffer back to the producer
}

// TestChannelHandleHandoffRace exercises the hand-off/release ordering
// under the race detector: the producer writes each payload before
// SendHandle and reuses it only after onRelease fires; the consumer reads
// the payload and then calls Release. Any missing happens-before edge
// between the producer's write, the consumer's read, and the buffer reuse
// is a data race.
func TestChannelHandleHandoffRace(t *testing.T) {
	c, _ := NewChannel(16, 64, 0)
	defer c.Close()
	const rounds = 500
	buf := make([]byte, 4096) // single buffer, recycled through onRelease
	free := make(chan []byte, 1)
	free <- buf
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			b := <-free
			for j := range b {
				b[j] = byte(i)
			}
			if err := c.SendHandle([]byte{byte(i)}, b, func() { free <- b }); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		got, ok := c.RecvMsg(nil)
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if got.Msg[0] != byte(i) {
			t.Fatalf("recv %d: header %d (ordering broken)", i, got.Msg[0])
		}
		for _, v := range got.Payload {
			if v != byte(i) {
				t.Fatalf("recv %d: payload corrupted (read %d)", i, v)
			}
		}
		got.Release()
	}
	wg.Wait()
}

func TestChannelStatsBytes(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	go func() {
		c.Send(make([]byte, 10))
		c.Send(make([]byte, 1000))
	}()
	c.Recv(nil)
	c.Recv(nil)
	st := c.Stats()
	if st.MessagesSent != 2 || st.BytesSent != 1010 {
		t.Fatalf("stats = %+v", st)
	}
}

func BenchmarkSPSCQueueInline(b *testing.B) {
	for _, size := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("msg%dB", size), func(b *testing.B) {
			q, _ := NewQueue(1024, 512)
			msg := make([]byte, size)
			buf := make([]byte, 512)
			b.SetBytes(int64(size))
			b.ResetTimer()
			done := make(chan struct{})
			go func() {
				for i := 0; i < b.N; i++ {
					q.Enqueue(msg)
				}
				close(done)
			}()
			for i := 0; i < b.N; i++ {
				q.Dequeue(buf)
			}
			<-done
		})
	}
}

func BenchmarkChannelPooledVsZeroCopy(b *testing.B) {
	const size = 1 << 20
	msg := make([]byte, size)
	b.Run("pooled-2copy", func(b *testing.B) {
		c, _ := NewChannel(64, 256, 64<<20)
		defer c.Close()
		b.SetBytes(size)
		done := make(chan struct{})
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				c.Send(msg)
			}
			close(done)
		}()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = c.Recv(buf)
		}
		<-done
	})
	b.Run("xpmem-1copy", func(b *testing.B) {
		c, _ := NewChannel(64, 256, 0)
		defer c.Close()
		b.SetBytes(size)
		done := make(chan struct{})
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				c.SendZeroCopy(msg)
			}
			close(done)
		}()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = c.Recv(buf)
		}
		<-done
	})
}

func BenchmarkBufferPoolGetPut(b *testing.B) {
	p := NewBufferPool(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := p.Get(110 << 10)
		p.Put(buf)
	}
}

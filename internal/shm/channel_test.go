package shm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestChannelInlineRoundTrip(t *testing.T) {
	c, err := NewChannel(8, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("small message")
	go c.Send(msg)
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("Recv = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.InlineSends != 1 || st.PooledSends != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChannelPooledRoundTrip(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := bytes.Repeat([]byte("x"), 10000)
	go c.Send(msg)
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatalf("pooled Recv failed: ok=%v len=%d", ok, len(got))
	}
	if c.Stats().PooledSends != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// The pool buffer must have been returned.
	if ps := c.Pool().Stats(); ps.Returns != 1 {
		t.Fatalf("pool stats = %+v, want 1 return", ps)
	}
}

func TestChannelZeroCopyRoundTrip(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := bytes.Repeat([]byte("z"), 5000)
	done := make(chan bool)
	go func() { done <- c.SendZeroCopy(msg) }()
	got, ok := c.Recv(nil)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatal("zero-copy Recv failed")
	}
	if !<-done {
		t.Fatal("SendZeroCopy should report true")
	}
	st := c.Stats()
	if st.ZeroCopySends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Zero-copy must not touch the pool.
	if ps := c.Pool().Stats(); ps.Allocs != 0 {
		t.Fatalf("zero-copy should not allocate pool buffers: %+v", ps)
	}
}

func TestChannelZeroCopyBlocksUntilConsumed(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	msg := make([]byte, 1000)
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(started)
		c.SendZeroCopy(msg)
		close(finished)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("SendZeroCopy returned before consumer copied")
	default:
	}
	c.Recv(nil)
	<-finished // must complete now
}

func TestChannelRecvReusesDst(t *testing.T) {
	c, _ := NewChannel(8, 128, 0)
	defer c.Close()
	go c.Send([]byte("abc"))
	scratch := make([]byte, 0, 64)
	got, ok := c.Recv(scratch)
	if !ok {
		t.Fatal("recv failed")
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("Recv should reuse dst storage when large enough")
	}
}

func TestChannelCloseUnblocksAll(t *testing.T) {
	c, _ := NewChannel(2, 64, 0)
	recvDone := make(chan bool)
	go func() {
		_, ok := c.Recv(nil)
		recvDone <- ok
	}()
	zcDone := make(chan bool)
	// Fill the queue so the zero-copy control message blocks, then close.
	c.Send([]byte("a"))
	c.Send([]byte("b"))
	go func() { zcDone <- c.SendZeroCopy(make([]byte, 1000)) }()
	c.Close()
	// Receiver may get a pending message or a closed signal; either way
	// it must return.
	<-recvDone
	<-zcDone
}

func TestChannelMixedTrafficOrdered(t *testing.T) {
	c, _ := NewChannel(16, 64, 1<<20)
	defer c.Close()
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var msg []byte
			if i%3 == 0 {
				msg = bytes.Repeat([]byte{byte(i)}, 2000) // pooled
			} else {
				msg = bytes.Repeat([]byte{byte(i)}, 1+i%60) // inline
			}
			if !c.Send(msg) {
				t.Errorf("send %d failed", i)
				return
			}
		}
	}()
	var buf []byte
	for i := 0; i < rounds; i++ {
		var ok bool
		buf, ok = c.Recv(buf)
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		wantLen := 1 + i%60
		if i%3 == 0 {
			wantLen = 2000
		}
		if len(buf) != wantLen {
			t.Fatalf("msg %d: len %d, want %d (ordering broken)", i, len(buf), wantLen)
		}
		for _, b := range buf {
			if b != byte(i) {
				t.Fatalf("msg %d corrupted", i)
			}
		}
	}
	wg.Wait()
	ps := c.Pool().Stats()
	if ps.Reuses == 0 {
		t.Error("pool should reuse buffers across pooled sends")
	}
}

func TestChannelStatsBytes(t *testing.T) {
	c, _ := NewChannel(8, 64, 0)
	defer c.Close()
	go func() {
		c.Send(make([]byte, 10))
		c.Send(make([]byte, 1000))
	}()
	c.Recv(nil)
	c.Recv(nil)
	st := c.Stats()
	if st.MessagesSent != 2 || st.BytesSent != 1010 {
		t.Fatalf("stats = %+v", st)
	}
}

func BenchmarkSPSCQueueInline(b *testing.B) {
	for _, size := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("msg%dB", size), func(b *testing.B) {
			q, _ := NewQueue(1024, 512)
			msg := make([]byte, size)
			buf := make([]byte, 512)
			b.SetBytes(int64(size))
			b.ResetTimer()
			done := make(chan struct{})
			go func() {
				for i := 0; i < b.N; i++ {
					q.Enqueue(msg)
				}
				close(done)
			}()
			for i := 0; i < b.N; i++ {
				q.Dequeue(buf)
			}
			<-done
		})
	}
}

func BenchmarkChannelPooledVsZeroCopy(b *testing.B) {
	const size = 1 << 20
	msg := make([]byte, size)
	b.Run("pooled-2copy", func(b *testing.B) {
		c, _ := NewChannel(64, 256, 64<<20)
		defer c.Close()
		b.SetBytes(size)
		done := make(chan struct{})
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				c.Send(msg)
			}
			close(done)
		}()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = c.Recv(buf)
		}
		<-done
	})
	b.Run("xpmem-1copy", func(b *testing.B) {
		c, _ := NewChannel(64, 256, 0)
		defer c.Close()
		b.SetBytes(size)
		done := make(chan struct{})
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				c.SendZeroCopy(msg)
			}
			close(done)
		}()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = c.Recv(buf)
		}
		<-done
	})
}

func BenchmarkBufferPoolGetPut(b *testing.B) {
	p := NewBufferPool(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ := p.Get(110 << 10)
		p.Put(buf)
	}
}

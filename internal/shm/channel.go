package shm

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"flexio/internal/flight"
)

// Message kinds carried in the control queue.
const (
	msgInline byte = 1 // payload lives in the queue slot itself
	msgPooled byte = 2 // payload lives in a pool buffer; async, two copies
	msgXpmem  byte = 3 // payload is the producer's own buffer; sync, one copy
	msgHandle byte = 4 // header inline, payload passed by reference; async, zero payload copies
)

const ctlHeader = 1 + 8 // kind + buffer id or inline length

// Errors returned by the handle-passing send path.
var (
	// ErrHandleTooLarge means the header exceeds the inline budget; the
	// caller should fall back to a copying send.
	ErrHandleTooLarge = errors.New("shm: handle header exceeds inline budget")
	// ErrClosed means the channel was closed before the message could be
	// enqueued.
	ErrClosed = errors.New("shm: channel closed")
)

// ChannelStats counts transport activity for the performance monitor.
// CopiedBytes counts every payload byte memcpy'd through channel-owned
// memory (inline and pooled messages copy on both ends, xpmem once,
// handle messages only their headers) — the quantity the zero-copy path
// is meant to collapse.
type ChannelStats struct {
	MessagesSent  int64
	BytesSent     int64
	InlineSends   int64
	PooledSends   int64
	ZeroCopySends int64
	HandleSends   int64
	CopiedBytes   int64
}

// Channel is a one-directional intra-node transport between one producer
// and one consumer, combining the paper's three mechanisms: small messages
// travel inline through the FastForward data queue; large asynchronous
// messages go through the producer's shared buffer pool (two copies); and
// large synchronous messages use the XPMEM-style path where the consumer
// copies directly out of the producer's source buffer (one copy).
type Channel struct {
	q    *Queue
	pool *BufferPool

	inlineMax int

	mu          sync.Mutex
	outstanding map[uint64]*outEntry
	nextID      uint64

	journal atomic.Pointer[flight.Journal] // attached via SetJournal

	stats struct {
		sync.Mutex
		ChannelStats
	}
}

type outEntry struct {
	buf       []byte
	done      chan struct{} // non-nil for zero-copy sends: closed when consumed
	onRelease func()        // non-nil for handle sends: returns the buffer to its owner
	once      sync.Once     // guards the release (Recv, RecvMsg and Close may race)
}

// release hands the buffer back to its producer exactly once: it runs the
// handle-send release callback and unblocks a synchronous zero-copy
// sender.
func (e *outEntry) release() {
	e.once.Do(func() {
		if e.onRelease != nil {
			e.onRelease()
		}
		if e.done != nil {
			close(e.done)
		}
	})
}

// NewChannel creates a channel with `entries` control-queue slots,
// messages up to inlineMax bytes sent inline, and a buffer pool bounded to
// poolMax bytes (0 = unbounded).
func NewChannel(entries, inlineMax int, poolMax int64) (*Channel, error) {
	if inlineMax < 64 {
		inlineMax = 64
	}
	q, err := NewQueue(entries, ctlHeader+inlineMax)
	if err != nil {
		return nil, err
	}
	return &Channel{
		q:           q,
		pool:        NewBufferPool(poolMax),
		inlineMax:   inlineMax,
		outstanding: make(map[uint64]*outEntry),
	}, nil
}

// Pool exposes the channel's buffer pool (for stats and tests).
func (c *Channel) Pool() *BufferPool { return c.pool }

// Send delivers msg to the consumer asynchronously. Small messages are
// copied inline into the queue slot; large ones are copied into a pool
// buffer, with only a control message in the queue ("two memory copies
// ... for sending large messages asynchronously"). It returns false if
// the channel is closed.
func (c *Channel) Send(msg []byte) bool {
	c.countSend(len(msg))
	if len(msg) <= c.inlineMax {
		frame := make([]byte, ctlHeader+len(msg))
		frame[0] = msgInline
		binary.LittleEndian.PutUint64(frame[1:], uint64(len(msg)))
		copy(frame[ctlHeader:], msg)
		ok := c.q.Enqueue(frame)
		if ok {
			c.bump(func(s *ChannelStats) { s.InlineSends++; s.CopiedBytes += int64(len(msg)) })
			c.recordQueueEvent(flight.KindEnqueue, "shm.send.inline", len(msg))
		}
		return ok
	}
	buf, err := c.pool.Get(len(msg))
	if err != nil {
		return false
	}
	copy(buf, msg) // first copy
	id := c.register(&outEntry{buf: buf})
	var frame [ctlHeader]byte
	frame[0] = msgPooled
	binary.LittleEndian.PutUint64(frame[1:], id)
	if !c.q.Enqueue(frame[:]) {
		c.unregister(id)
		c.pool.Put(buf)
		return false
	}
	c.bump(func(s *ChannelStats) { s.PooledSends++; s.CopiedBytes += int64(len(msg)) })
	c.recordQueueEvent(flight.KindEnqueue, "shm.send.pooled", len(msg))
	return true
}

// SendHandle delivers a small header inline and the payload by reference:
// no payload byte is copied by the channel on either end. Ownership of
// payload transfers to the channel until the consumer (or Close) invokes
// the release path, at which point onRelease — typically "return the
// buffer to the producer's pool" — runs exactly once. The consumer
// receives the payload via RecvMsg and must call Release when done; a
// consumer using plain Recv gets header⧺payload as one copied message and
// the buffer is released immediately. On error the channel has taken no
// ownership: onRelease does not run and the caller keeps the payload.
func (c *Channel) SendHandle(hdr, payload []byte, onRelease func()) error {
	if len(hdr) > c.inlineMax {
		return ErrHandleTooLarge
	}
	c.countSend(len(hdr) + len(payload))
	id := c.register(&outEntry{buf: payload, onRelease: onRelease})
	frame := make([]byte, ctlHeader+len(hdr))
	frame[0] = msgHandle
	binary.LittleEndian.PutUint64(frame[1:], id)
	copy(frame[ctlHeader:], hdr)
	if !c.q.Enqueue(frame) {
		c.unregister(id)
		return ErrClosed
	}
	c.bump(func(s *ChannelStats) { s.HandleSends++; s.CopiedBytes += int64(len(hdr)) })
	c.recordQueueEvent(flight.KindEnqueue, "shm.send.handle", len(hdr))
	return nil
}

// SendZeroCopy delivers msg synchronously via the XPMEM-style path: the
// consumer copies directly out of msg, and SendZeroCopy returns only after
// that copy completes (the equivalent of xpmem_make/xpmem_get round trip).
// The caller must not mutate msg until SendZeroCopy returns. It reports
// false if the channel closed first.
func (c *Channel) SendZeroCopy(msg []byte) bool {
	c.countSend(len(msg))
	e := &outEntry{buf: msg, done: make(chan struct{})}
	id := c.register(e)
	var frame [ctlHeader]byte
	frame[0] = msgXpmem
	binary.LittleEndian.PutUint64(frame[1:], id)
	if !c.q.Enqueue(frame[:]) {
		c.unregister(id)
		return false
	}
	<-e.done
	c.bump(func(s *ChannelStats) { s.ZeroCopySends++ })
	c.recordQueueEvent(flight.KindEnqueue, "shm.send.zerocopy", len(msg))
	return true
}

// Received is one message delivered by RecvMsg. For handle messages,
// Payload references the producer's buffer and Release must be called
// (exactly once, from any goroutine) when the consumer is done with it;
// for all other kinds Payload is nil and Release may be nil. Msg never
// aliases producer memory.
type Received struct {
	Msg     []byte
	Payload []byte
	Release func()
}

// Recv returns the next message, reusing dst's storage when large enough.
// ok=false means the channel is closed and drained. Handle messages are
// flattened to header⧺payload (both copied) and released immediately, so
// a copying consumer interoperates with a handle-passing producer.
func (c *Channel) Recv(dst []byte) (msg []byte, ok bool) {
	r, ok := c.recvMsg(dst, false)
	return r.Msg, ok
}

// RecvMsg returns the next message without flattening handle payloads:
// the zero-copy receive path. dst is reused for Msg storage when large
// enough.
func (c *Channel) RecvMsg(dst []byte) (Received, bool) {
	return c.recvMsg(dst, true)
}

func (c *Channel) recvMsg(dst []byte, byRef bool) (Received, bool) {
	frame := make([]byte, c.q.PayloadSize())
	n, ok := c.q.Dequeue(frame)
	if !ok {
		return Received{}, false
	}
	kind := frame[0]
	switch kind {
	case msgInline:
		ln := int(binary.LittleEndian.Uint64(frame[1:]))
		if ln > n-ctlHeader {
			ln = n - ctlHeader
		}
		dst = grow(dst, ln)
		copy(dst, frame[ctlHeader:ctlHeader+ln])
		c.bump(func(s *ChannelStats) { s.CopiedBytes += int64(ln) })
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", ln)
		return Received{Msg: dst}, true
	case msgPooled:
		id := binary.LittleEndian.Uint64(frame[1:])
		e := c.take(id)
		if e == nil {
			return Received{}, false
		}
		dst = grow(dst, len(e.buf))
		copy(dst, e.buf) // second copy
		c.pool.Put(e.buf)
		c.bump(func(s *ChannelStats) { s.CopiedBytes += int64(len(dst)) })
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", len(dst))
		return Received{Msg: dst}, true
	case msgXpmem:
		id := binary.LittleEndian.Uint64(frame[1:])
		e := c.take(id)
		if e == nil {
			return Received{}, false
		}
		dst = grow(dst, len(e.buf))
		copy(dst, e.buf) // the only copy
		e.release()
		c.bump(func(s *ChannelStats) { s.CopiedBytes += int64(len(dst)) })
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", len(dst))
		return Received{Msg: dst}, true
	case msgHandle:
		id := binary.LittleEndian.Uint64(frame[1:])
		e := c.take(id)
		if e == nil {
			return Received{}, false
		}
		hdr := frame[ctlHeader:n]
		c.bump(func(s *ChannelStats) { s.CopiedBytes += int64(len(hdr)) })
		if byRef {
			c.recordQueueEvent(flight.KindDequeue, "shm.recv.handle", len(e.buf))
			return Received{Msg: hdr, Payload: e.buf, Release: e.release}, true
		}
		// Copying consumer: flatten to one contiguous message and release
		// the producer's buffer right away.
		dst = grow(dst, len(hdr)+len(e.buf))
		copy(dst, hdr)
		copy(dst[len(hdr):], e.buf)
		e.release()
		c.bump(func(s *ChannelStats) { s.CopiedBytes += int64(len(e.buf)) })
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", len(dst))
		return Received{Msg: dst}, true
	}
	return Received{}, false
}

// Close shuts down the channel. Blocked senders and receivers return
// false once the queue drains; messages already enqueued (inline or
// pooled) remain receivable. Outstanding zero-copy senders are released
// so they cannot deadlock, and outstanding handle payloads run their
// onRelease so producer buffers are never stranded; entries stay takeable
// for a receiver that drains the queue afterwards.
func (c *Channel) Close() {
	c.q.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.outstanding {
		e.release()
	}
}

// Stats returns a snapshot of channel counters.
func (c *Channel) Stats() ChannelStats {
	c.stats.Lock()
	defer c.stats.Unlock()
	return c.stats.ChannelStats
}

func (c *Channel) countSend(n int) {
	c.bump(func(s *ChannelStats) {
		s.MessagesSent++
		s.BytesSent += int64(n)
	})
}

func (c *Channel) bump(f func(*ChannelStats)) {
	c.stats.Lock()
	f(&c.stats.ChannelStats)
	c.stats.Unlock()
}

func (c *Channel) register(e *outEntry) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.outstanding[id] = e
	return id
}

func (c *Channel) unregister(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.outstanding, id)
}

func (c *Channel) take(id uint64) *outEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.outstanding[id]
	delete(c.outstanding, id)
	return e
}

func grow(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

package shm

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"flexio/internal/flight"
)

// Message kinds carried in the control queue.
const (
	msgInline byte = 1 // payload lives in the queue slot itself
	msgPooled byte = 2 // payload lives in a pool buffer; async, two copies
	msgXpmem  byte = 3 // payload is the producer's own buffer; sync, one copy
)

const ctlHeader = 1 + 8 // kind + buffer id or inline length

// ChannelStats counts transport activity for the performance monitor.
type ChannelStats struct {
	MessagesSent  int64
	BytesSent     int64
	InlineSends   int64
	PooledSends   int64
	ZeroCopySends int64
}

// Channel is a one-directional intra-node transport between one producer
// and one consumer, combining the paper's three mechanisms: small messages
// travel inline through the FastForward data queue; large asynchronous
// messages go through the producer's shared buffer pool (two copies); and
// large synchronous messages use the XPMEM-style path where the consumer
// copies directly out of the producer's source buffer (one copy).
type Channel struct {
	q    *Queue
	pool *BufferPool

	inlineMax int

	mu          sync.Mutex
	outstanding map[uint64]*outEntry
	nextID      uint64

	journal atomic.Pointer[flight.Journal] // attached via SetJournal

	stats struct {
		sync.Mutex
		ChannelStats
	}
}

type outEntry struct {
	buf  []byte
	done chan struct{} // non-nil for zero-copy sends: closed when consumed
	once sync.Once     // guards the close (Recv and Close may race)
}

// release unblocks a zero-copy sender exactly once.
func (e *outEntry) release() {
	if e.done != nil {
		e.once.Do(func() { close(e.done) })
	}
}

// NewChannel creates a channel with `entries` control-queue slots,
// messages up to inlineMax bytes sent inline, and a buffer pool bounded to
// poolMax bytes (0 = unbounded).
func NewChannel(entries, inlineMax int, poolMax int64) (*Channel, error) {
	if inlineMax < 64 {
		inlineMax = 64
	}
	q, err := NewQueue(entries, ctlHeader+inlineMax)
	if err != nil {
		return nil, err
	}
	return &Channel{
		q:           q,
		pool:        NewBufferPool(poolMax),
		inlineMax:   inlineMax,
		outstanding: make(map[uint64]*outEntry),
	}, nil
}

// Pool exposes the channel's buffer pool (for stats and tests).
func (c *Channel) Pool() *BufferPool { return c.pool }

// Send delivers msg to the consumer asynchronously. Small messages are
// copied inline into the queue slot; large ones are copied into a pool
// buffer, with only a control message in the queue ("two memory copies
// ... for sending large messages asynchronously"). It returns false if
// the channel is closed.
func (c *Channel) Send(msg []byte) bool {
	c.countSend(len(msg))
	if len(msg) <= c.inlineMax {
		frame := make([]byte, ctlHeader+len(msg))
		frame[0] = msgInline
		binary.LittleEndian.PutUint64(frame[1:], uint64(len(msg)))
		copy(frame[ctlHeader:], msg)
		ok := c.q.Enqueue(frame)
		if ok {
			c.bump(func(s *ChannelStats) { s.InlineSends++ })
			c.recordQueueEvent(flight.KindEnqueue, "shm.send.inline", len(msg))
		}
		return ok
	}
	buf, err := c.pool.Get(len(msg))
	if err != nil {
		return false
	}
	copy(buf, msg) // first copy
	id := c.register(&outEntry{buf: buf})
	var frame [ctlHeader]byte
	frame[0] = msgPooled
	binary.LittleEndian.PutUint64(frame[1:], id)
	if !c.q.Enqueue(frame[:]) {
		c.unregister(id)
		c.pool.Put(buf)
		return false
	}
	c.bump(func(s *ChannelStats) { s.PooledSends++ })
	c.recordQueueEvent(flight.KindEnqueue, "shm.send.pooled", len(msg))
	return true
}

// SendZeroCopy delivers msg synchronously via the XPMEM-style path: the
// consumer copies directly out of msg, and SendZeroCopy returns only after
// that copy completes (the equivalent of xpmem_make/xpmem_get round trip).
// The caller must not mutate msg until SendZeroCopy returns. It reports
// false if the channel closed first.
func (c *Channel) SendZeroCopy(msg []byte) bool {
	c.countSend(len(msg))
	e := &outEntry{buf: msg, done: make(chan struct{})}
	id := c.register(e)
	var frame [ctlHeader]byte
	frame[0] = msgXpmem
	binary.LittleEndian.PutUint64(frame[1:], id)
	if !c.q.Enqueue(frame[:]) {
		c.unregister(id)
		return false
	}
	<-e.done
	c.bump(func(s *ChannelStats) { s.ZeroCopySends++ })
	c.recordQueueEvent(flight.KindEnqueue, "shm.send.zerocopy", len(msg))
	return true
}

// Recv returns the next message, reusing dst's storage when large enough.
// ok=false means the channel is closed and drained.
func (c *Channel) Recv(dst []byte) (msg []byte, ok bool) {
	frame := make([]byte, c.q.PayloadSize())
	n, ok := c.q.Dequeue(frame)
	if !ok {
		return nil, false
	}
	kind := frame[0]
	switch kind {
	case msgInline:
		ln := int(binary.LittleEndian.Uint64(frame[1:]))
		if ln > n-ctlHeader {
			ln = n - ctlHeader
		}
		dst = grow(dst, ln)
		copy(dst, frame[ctlHeader:ctlHeader+ln])
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", ln)
		return dst, true
	case msgPooled:
		id := binary.LittleEndian.Uint64(frame[1:])
		e := c.take(id)
		if e == nil {
			return nil, false
		}
		dst = grow(dst, len(e.buf))
		copy(dst, e.buf) // second copy
		c.pool.Put(e.buf)
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", len(dst))
		return dst, true
	case msgXpmem:
		id := binary.LittleEndian.Uint64(frame[1:])
		e := c.take(id)
		if e == nil {
			return nil, false
		}
		dst = grow(dst, len(e.buf))
		copy(dst, e.buf) // the only copy
		e.release()
		c.recordQueueEvent(flight.KindDequeue, "shm.recv", len(dst))
		return dst, true
	}
	return nil, false
}

// Close shuts down the channel. Blocked senders and receivers return
// false once the queue drains; messages already enqueued (inline or
// pooled) remain receivable. Outstanding zero-copy senders are released
// so they cannot deadlock; their entries stay takeable for a receiver
// that drains the queue afterwards.
func (c *Channel) Close() {
	c.q.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.outstanding {
		e.release()
	}
}

// Stats returns a snapshot of channel counters.
func (c *Channel) Stats() ChannelStats {
	c.stats.Lock()
	defer c.stats.Unlock()
	return c.stats.ChannelStats
}

func (c *Channel) countSend(n int) {
	c.bump(func(s *ChannelStats) {
		s.MessagesSent++
		s.BytesSent += int64(n)
	})
}

func (c *Channel) bump(f func(*ChannelStats)) {
	c.stats.Lock()
	f(&c.stats.ChannelStats)
	c.stats.Unlock()
}

func (c *Channel) register(e *outEntry) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	c.outstanding[id] = e
	return id
}

func (c *Channel) unregister(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.outstanding, id)
}

func (c *Channel) take(id uint64) *outEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.outstanding[id]
	delete(c.outstanding, id)
	return e
}

func grow(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

// Package shm implements FlexIO's intra-node shared-memory transport
// (Section II.D of the paper): a single-producer single-consumer circular
// lock-free FIFO queue inspired by FastForward, a producer-owned buffer
// pool with a free list for large messages, and an XPMEM-style
// zero-intermediate-copy path for synchronous large transfers.
//
// On the real system these structures live in System V / mmap / XPMEM
// shared memory segments between OS processes; here producer and consumer
// are goroutines sharing the Go heap, which preserves every concurrency
// property (lock-freedom, cache-line isolation of producer and consumer
// state, full/empty flag signalling) while removing only the OS mapping
// syscalls.
package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// CacheLineSize is the assumed cache line size used for padding. 64 bytes
// matches the AMD Opteron processors of both Titan and Smoky.
const CacheLineSize = 64

const (
	slotEmpty uint32 = iota
	slotFull
)

// slot is one queue entry: a status flag plus a fixed-size payload. Each
// slot is padded so that two slots never share a cache line, avoiding the
// false sharing the paper calls out ("entries are carefully aligned and
// padded").
type slot struct {
	flag atomic.Uint32
	size uint32
	_pad [CacheLineSize - 8]byte // keep flag+size in their own line
	data []byte                  // payload storage, len == payloadSize
}

// Queue is a single-producer single-consumer circular lock-free FIFO.
// Exactly one goroutine may call Enqueue* and exactly one may call
// Dequeue*; this matches FlexIO's per-connection data queues. The
// producer's and consumer's ring positions live in different cache lines
// to reduce coherency traffic.
type Queue struct {
	slots       []slot
	mask        uint64
	payloadSize int

	_pad0 [CacheLineSize]byte
	head  uint64 // next slot to dequeue; owned by the consumer
	_pad1 [CacheLineSize]byte
	tail  uint64 // next slot to enqueue; owned by the producer
	_pad2 [CacheLineSize]byte

	closed atomic.Bool

	// Wait accounting: one count per *blocking episode* (an Enqueue that
	// found the ring full, a Dequeue that found it empty), not per spin
	// iteration — the paper's backpressure signal, cheap enough to leave
	// on. Reported via WaitCounts and the channel's monitor gauges.
	enqWaits atomic.Int64
	deqWaits atomic.Int64
}

// NewQueue creates a queue with the given number of entries (rounded up to
// a power of two, minimum 2) and per-entry payload capacity in bytes.
func NewQueue(entries, payloadSize int) (*Queue, error) {
	if entries < 2 {
		entries = 2
	}
	if payloadSize <= 0 {
		return nil, fmt.Errorf("shm: payload size %d must be positive", payloadSize)
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	q := &Queue{
		slots:       make([]slot, n),
		mask:        uint64(n - 1),
		payloadSize: payloadSize,
	}
	// One backing allocation for all payloads, sliced per slot and padded
	// to cache-line multiples so payloads don't share lines either.
	stride := (payloadSize + CacheLineSize - 1) &^ (CacheLineSize - 1)
	backing := make([]byte, n*stride)
	for i := range q.slots {
		q.slots[i].data = backing[i*stride : i*stride+payloadSize]
	}
	return q, nil
}

// Capacity reports the number of entries in the ring.
func (q *Queue) Capacity() int { return len(q.slots) }

// PayloadSize reports the per-entry payload capacity.
func (q *Queue) PayloadSize() int { return q.payloadSize }

// TryEnqueue copies msg into the next slot if it is empty. It returns
// false when the queue is full or msg exceeds the payload size (callers
// must route oversized messages through the buffer pool instead). Only
// the producer goroutine may call it.
func (q *Queue) TryEnqueue(msg []byte) bool {
	if len(msg) > q.payloadSize {
		return false
	}
	s := &q.slots[q.tail&q.mask]
	if s.flag.Load() != slotEmpty {
		return false // consumer hasn't drained this slot yet
	}
	copy(s.data, msg)
	s.size = uint32(len(msg))
	// The atomic store publishes size+payload to the consumer (release
	// semantics; Go atomics are sequentially consistent, which also
	// provides the memory fences the paper inserts on weakly ordered
	// machines).
	s.flag.Store(slotFull)
	q.tail++
	return true
}

// Enqueue blocks (spinning with escalating yields) until the message is
// enqueued or the queue is closed. It reports false if closed first.
func (q *Queue) Enqueue(msg []byte) bool {
	waited := false
	for spin := 0; ; spin++ {
		if q.closed.Load() {
			return false
		}
		if q.TryEnqueue(msg) {
			return true
		}
		if !waited {
			waited = true
			q.enqWaits.Add(1)
		}
		backoff(spin)
	}
}

// TryDequeue copies the next message into dst and returns its length. It
// returns ok=false when the queue is empty. dst must be at least
// PayloadSize bytes to guarantee any message fits; shorter messages are
// fine in shorter buffers. Only the consumer goroutine may call it.
func (q *Queue) TryDequeue(dst []byte) (n int, ok bool) {
	s := &q.slots[q.head&q.mask]
	if s.flag.Load() != slotFull {
		return 0, false
	}
	n = int(s.size)
	if n > len(dst) {
		n = len(dst)
	}
	copy(dst[:n], s.data[:int(s.size)])
	s.flag.Store(slotEmpty) // release the entry back to the producer
	q.head++
	return n, true
}

// Dequeue blocks until a message arrives or the queue is closed and
// drained; it reports ok=false in the latter case.
func (q *Queue) Dequeue(dst []byte) (int, bool) {
	waited := false
	for spin := 0; ; spin++ {
		if n, ok := q.TryDequeue(dst); ok {
			return n, true
		}
		if q.closed.Load() {
			// Re-check: producer may have enqueued before closing.
			if n, ok := q.TryDequeue(dst); ok {
				return n, true
			}
			return 0, false
		}
		if !waited {
			waited = true
			q.deqWaits.Add(1)
		}
		backoff(spin)
	}
}

// Close marks the queue closed. Pending entries remain dequeueable; a
// blocked Dequeue returns ok=false once drained and a blocked Enqueue
// aborts. Close is safe to call from either side, once.
func (q *Queue) Close() { q.closed.Store(true) }

// Closed reports whether Close was called.
func (q *Queue) Closed() bool { return q.closed.Load() }

// WaitCounts reports how many blocking Enqueue calls found the ring full
// and how many blocking Dequeue calls found it empty.
func (q *Queue) WaitCounts() (enq, deq int64) {
	return q.enqWaits.Load(), q.deqWaits.Load()
}

// Len reports an instantaneous (racy, advisory) count of full entries.
func (q *Queue) Len() int {
	n := 0
	for i := range q.slots {
		if q.slots[i].flag.Load() == slotFull {
			n++
		}
	}
	return n
}

// backoff spins briefly, then yields the processor. The polling consumer
// in the paper busy-waits on the flag; in Go we must eventually yield to
// the scheduler to avoid starving the peer on a loaded machine.
func backoff(spin int) {
	if spin < 64 {
		return // pure spin: cheapest when the peer is actively running
	}
	runtime.Gosched()
}

package directory

import (
	"errors"
	"testing"
	"time"
)

// TestMemLeaseExpiry: a leased binding resolves until its TTL lapses,
// then is purged; Len reflects the purge.
func TestMemLeaseExpiry(t *testing.T) {
	d := NewMem()
	if err := d.RegisterTTL("s", "contact-1", 40*time.Millisecond); err != nil {
		t.Fatalf("RegisterTTL: %v", err)
	}
	if c, err := d.Lookup("s"); err != nil || c != "contact-1" {
		t.Fatalf("Lookup before expiry = %q, %v", c, err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err := d.Lookup("s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after expiry = %v, want ErrNotFound", err)
	}
	if n := d.Len(); n != 0 {
		t.Fatalf("Len after expiry = %d, want 0", n)
	}
}

// TestMemLeaseRenewal: heartbeat renewals keep a binding alive well past
// its original TTL; stopping them lets it decay. Renewing a dead lease
// fails.
func TestMemLeaseRenewal(t *testing.T) {
	d := NewMem()
	const ttl = 50 * time.Millisecond
	if err := d.RegisterTTL("s", "contact-1", ttl); err != nil {
		t.Fatalf("RegisterTTL: %v", err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(ttl / 2)
		if err := d.Renew("s", ttl); err != nil {
			t.Fatalf("Renew %d: %v", i, err)
		}
	}
	// Alive at 2.5x the original TTL thanks to the heartbeats.
	if _, err := d.Lookup("s"); err != nil {
		t.Fatalf("Lookup during heartbeats: %v", err)
	}
	time.Sleep(2 * ttl)
	if err := d.Renew("s", ttl); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Renew after decay = %v, want ErrNotFound", err)
	}
}

// TestMemWaitLookupObservesPurge: a WaitLookup issued while an expired
// entry still sits in the map must not resolve to the dead contact —
// the purge happens-before any successful wait.
func TestMemWaitLookupObservesPurge(t *testing.T) {
	d := NewMem()
	if err := d.RegisterTTL("s", "dead", 30*time.Millisecond); err != nil {
		t.Fatalf("RegisterTTL: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	// The entry has expired; WaitLookup must treat it as absent and time
	// out rather than returning "dead".
	if c, err := d.WaitLookup("s", 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitLookup on expired entry = %q, %v; want timeout", c, err)
	}
	// A fresh registration wakes the waiter as usual.
	go func() {
		time.Sleep(20 * time.Millisecond)
		d.RegisterTTL("s", "alive", 500*time.Millisecond) //nolint:errcheck
	}()
	if c, err := d.WaitLookup("s", time.Second); err != nil || c != "alive" {
		t.Fatalf("WaitLookup after re-register = %q, %v", c, err)
	}
}

// TestLeaseOverTCP drives the lease protocol end to end through a real
// Server/Client pair: REG with TTL, heartbeat RENEWs, decay after the
// heartbeats stop, and WaitLookup observing the purge.
func TestLeaseOverTCP(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	const ttl = 80 * time.Millisecond
	if err := cl.RegisterTTL("stream", "tcp://1.2.3.4:5", ttl); err != nil {
		t.Fatalf("RegisterTTL: %v", err)
	}
	for i := 0; i < 3; i++ {
		time.Sleep(ttl / 2)
		if err := cl.Renew("stream", ttl); err != nil {
			t.Fatalf("Renew %d: %v", i, err)
		}
	}
	if c, err := cl.Lookup("stream"); err != nil || c != "tcp://1.2.3.4:5" {
		t.Fatalf("Lookup during heartbeats = %q, %v", c, err)
	}

	// Stop heartbeating; the server purges the lease and WaitLookup
	// observes the absence.
	time.Sleep(2 * ttl)
	if _, err := cl.Lookup("stream"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup after decay = %v, want ErrNotFound", err)
	}
	if _, err := cl.WaitLookup("stream", 40*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitLookup after decay = %v, want ErrTimeout", err)
	}
	if err := cl.Renew("stream", ttl); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Renew after decay = %v, want ErrNotFound", err)
	}

	// Lease-free REG through the same protocol stays permanent.
	if err := cl.Register("perm", "tcp://5.6.7.8:9"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	time.Sleep(2 * ttl)
	if c, err := cl.Lookup("perm"); err != nil || c != "tcp://5.6.7.8:9" {
		t.Fatalf("permanent Lookup = %q, %v", c, err)
	}
}
